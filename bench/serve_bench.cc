// Serving-engine load generator: QPS and latency percentiles vs kernel
// thread count, written to a JSON table (BENCH_serving.json by default).
//
// Two load modes per thread count:
//   closed  N client threads issue Submit().get() back-to-back — measures
//           the engine's saturated throughput and in-line latency.
//   open    requests arrive on a fixed schedule at --qps regardless of
//           completions — measures queueing latency under a target load.
// A publisher thread hot-swaps a fresh snapshot every --swap_ms
// milliseconds throughout both phases, so every row also exercises the
// reader/writer-concurrent publish path.
//
// Flags:
//   --users=N --items=N --dim=D   synthetic snapshot size (default
//                                 4000 x 8000 x 32)
//   --k=N                         list length per request (default 10)
//   --seconds=F                   measurement window per row (default 1.0)
//   --clients=N                   closed-loop client threads (default 8)
//   --qps=N                       open-loop arrival rate (default 2000)
//   --threads=a,b,c               kernel thread counts (default 1,2,4)
//   --batch=N --wait_us=N         micro-batcher shape (default 64 / 200)
//   --swap_ms=N                   snapshot republish period (default 100;
//                                 0 disables)
//   --seed=N                      RNG seed (default 7)
//   --json_out=PATH               output table; parent directories are
//                                 created (default BENCH_serving.json)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "recsys/matrix_factorization.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

struct ServeBenchFlags {
  int64_t users = 4000;
  int64_t items = 8000;
  int64_t dim = 32;
  int k = 10;
  double seconds = 1.0;
  int clients = 8;
  int qps = 2000;
  std::vector<int> threads = {1, 2, 4};
  int batch = 64;
  int64_t wait_us = 200;
  int64_t swap_ms = 100;
  uint64_t seed = 7;
  std::string json_out = "BENCH_serving.json";

  static ServeBenchFlags Parse(int argc, char** argv) {
    ServeBenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&](const char* prefix) -> const char* {
        const size_t n = std::string(prefix).size();
        if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
        return nullptr;
      };
      if (const char* v = value_of("--users=")) {
        flags.users = std::atoll(v);
      } else if (const char* v = value_of("--items=")) {
        flags.items = std::atoll(v);
      } else if (const char* v = value_of("--dim=")) {
        flags.dim = std::atoll(v);
      } else if (const char* v = value_of("--k=")) {
        flags.k = std::atoi(v);
      } else if (const char* v = value_of("--seconds=")) {
        flags.seconds = std::atof(v);
      } else if (const char* v = value_of("--clients=")) {
        flags.clients = std::atoi(v);
      } else if (const char* v = value_of("--qps=")) {
        flags.qps = std::atoi(v);
      } else if (const char* v = value_of("--threads=")) {
        flags.threads.clear();
        for (auto& part : StrSplit(v, ','))
          flags.threads.push_back(std::atoi(part.c_str()));
      } else if (const char* v = value_of("--batch=")) {
        flags.batch = std::atoi(v);
      } else if (const char* v = value_of("--wait_us=")) {
        flags.wait_us = std::atoll(v);
      } else if (const char* v = value_of("--swap_ms=")) {
        flags.swap_ms = std::atoll(v);
      } else if (const char* v = value_of("--seed=")) {
        flags.seed = static_cast<uint64_t>(std::atoll(v));
      } else if (const char* v = value_of("--json_out=")) {
        flags.json_out = v;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return flags;
  }
};

// An untrained (randomly initialized) MF snapshot is enough for a latency
// benchmark — the scoring cost depends only on the shapes.
std::shared_ptr<const serve::ModelSnapshot> MakeSnapshot(
    const ServeBenchFlags& flags, uint64_t version) {
  Rng rng(flags.seed + version);
  Dataset dataset;
  dataset.name = "serve_bench";
  dataset.num_users = flags.users;
  dataset.num_items = flags.items;
  // ~20 seen items per user so exclusion has realistic work to do.
  for (int64_t u = 0; u < flags.users; ++u) {
    for (int r = 0; r < 20; ++r) {
      const int64_t item = rng.UniformInt(flags.items);
      if (!dataset.HasRating(u, item)) {
        dataset.ratings.push_back({u, item, 5.0});
      }
    }
  }
  MfConfig config;
  config.latent_dim = flags.dim;
  MatrixFactorization model(flags.users, flags.items, config, 3.5, &rng);
  serve::SnapshotOptions options;
  options.version = version;
  options.source = "mf-bench";
  return serve::ModelSnapshot::FromModel(&model, dataset, options);
}

struct RowResult {
  std::string mode;
  int threads = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  serve::EngineStats stats;
};

// Publisher sidecar: republishes a snapshot every swap_ms until stopped.
class SwapLoop {
 public:
  SwapLoop(serve::ServingEngine* engine, const ServeBenchFlags& flags)
      : engine_(engine), flags_(flags) {
    if (flags_.swap_ms > 0) {
      worker_ = std::thread([this] { Loop(); });
    }
  }
  ~SwapLoop() {
    stop_.store(true);
    if (worker_.joinable()) worker_.join();
  }

 private:
  void Loop() {
    uint64_t version = 2;
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(flags_.swap_ms));
      if (stop_.load()) break;
      engine_->Publish(MakeSnapshot(flags_, version++));
    }
  }

  serve::ServingEngine* engine_;
  ServeBenchFlags flags_;
  std::atomic<bool> stop_{false};
  std::thread worker_;
};

RowResult RunClosedLoop(const ServeBenchFlags& flags, int threads) {
  ThreadPool::Global().SetNumThreads(threads);
  serve::EngineOptions options;
  options.max_batch_size = flags.batch;
  options.max_wait_us = flags.wait_us;
  serve::ServingEngine engine(options);
  engine.Publish(MakeSnapshot(flags, 1));
  SwapLoop swaps(&engine, flags);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(flags.seed * 1000 + static_cast<uint64_t>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        serve::ServeRequest request;
        request.user = rng.UniformInt(flags.users);
        request.k = flags.k;
        engine.ServeSync(request);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(flags.seconds));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RowResult row;
  row.mode = "closed";
  row.threads = threads;
  row.requests = completed.load();
  row.seconds = elapsed;
  row.qps = elapsed > 0 ? static_cast<double>(row.requests) / elapsed : 0.0;
  row.stats = engine.Stats();
  return row;
}

RowResult RunOpenLoop(const ServeBenchFlags& flags, int threads) {
  ThreadPool::Global().SetNumThreads(threads);
  serve::EngineOptions options;
  options.max_batch_size = flags.batch;
  options.max_wait_us = flags.wait_us;
  serve::ServingEngine engine(options);
  engine.Publish(MakeSnapshot(flags, 1));
  SwapLoop swaps(&engine, flags);

  Rng rng(flags.seed);
  const auto start = std::chrono::steady_clock::now();
  const auto period =
      std::chrono::nanoseconds(static_cast<int64_t>(1e9 / flags.qps));
  const int64_t total =
      static_cast<int64_t>(flags.seconds * static_cast<double>(flags.qps));
  std::vector<std::future<serve::ServeResponse>> inflight;
  inflight.reserve(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(start + period * i);
    serve::ServeRequest request;
    request.user = rng.UniformInt(flags.users);
    request.k = flags.k;
    inflight.push_back(engine.Submit(request));
  }
  for (auto& future : inflight) future.get();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RowResult row;
  row.mode = "open";
  row.threads = threads;
  row.requests = total;
  row.seconds = elapsed;
  row.qps = elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;
  row.stats = engine.Stats();
  return row;
}

void WriteTable(const ServeBenchFlags& flags,
                const std::vector<RowResult>& rows) {
  JsonWriter json;
  json.BeginObject();
  json.Key("users").Int(flags.users);
  json.Key("items").Int(flags.items);
  json.Key("dim").Int(flags.dim);
  json.Key("k").Int(flags.k);
  json.Key("clients").Int(flags.clients);
  json.Key("target_qps").Int(flags.qps);
  json.Key("max_batch_size").Int(flags.batch);
  json.Key("max_wait_us").Int(flags.wait_us);
  json.Key("swap_ms").Int(flags.swap_ms);
  json.Key("cases").BeginArray();
  for (const RowResult& row : rows) {
    json.BeginObject();
    json.Key("mode").String(row.mode);
    json.Key("threads").Int(row.threads);
    json.Key("requests").Int(row.requests);
    json.Key("seconds").Double(row.seconds);
    json.Key("qps").Double(row.qps);
    json.Key("p50_us").Int(row.stats.p50_us);
    json.Key("p95_us").Int(row.stats.p95_us);
    json.Key("p99_us").Int(row.stats.p99_us);
    json.Key("max_us").Int(row.stats.max_us);
    json.Key("batches").Int(row.stats.batches);
    json.Key("mean_batch_size").Double(row.stats.mean_batch_size);
    json.Key("publishes").Int(row.stats.publishes);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (WriteJsonFile(flags.json_out, json.TakeString())) {
    std::fprintf(stderr, "[serve] wrote %zu row(s) to %s\n", rows.size(),
                 flags.json_out.c_str());
  }
}

int Main(int argc, char** argv) {
  const ServeBenchFlags flags = ServeBenchFlags::Parse(argc, argv);
  std::printf("%-8s %8s %10s %12s %10s %10s %10s %8s\n", "mode", "threads",
              "requests", "qps", "p50_us", "p95_us", "p99_us", "swaps");
  std::vector<RowResult> rows;
  for (int threads : flags.threads) {
    for (const bool open : {false, true}) {
      const RowResult row =
          open ? RunOpenLoop(flags, threads) : RunClosedLoop(flags, threads);
      std::printf("%-8s %8d %10lld %12.1f %10lld %10lld %10lld %8lld\n",
                  row.mode.c_str(), row.threads,
                  static_cast<long long>(row.requests), row.qps,
                  static_cast<long long>(row.stats.p50_us),
                  static_cast<long long>(row.stats.p95_us),
                  static_cast<long long>(row.stats.p99_us),
                  static_cast<long long>(row.stats.publishes));
      rows.push_back(row);
    }
  }
  WriteTable(flags, rows);
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
