// Serving-engine load generator: QPS, latency percentiles, and overload/
// chaos robustness counters vs kernel thread count, written to a JSON
// table (BENCH_serving.json by default).
//
// Load modes per thread count:
//   closed    N client threads issue Submit().get() back-to-back through
//             a retry/backoff client — measures the engine's saturated
//             throughput and in-line latency.
//   open      requests arrive on a fixed schedule at --qps regardless of
//             completions — measures queueing latency under a target load.
//   overload  (--overload=1, default) paced arrivals at --overload_factor
//             times the measured closed-loop capacity, once with
//             admission control ON (queue cap + deadline shedding:
//             bounded queue depth, bounded p99 for admitted requests) and
//             once with the cap DISABLED (unbounded queue growth) — the
//             two curves the robustness trajectory tracks.
//   chaos     (any --fault_* probability > 0) sequential deterministic
//             replay under injected publish failures, batch-flush latency
//             spikes, and scoring faults: identical --fault_seed gives
//             identical reject/shed/degraded counts at any thread count.
// A publisher thread hot-swaps a fresh snapshot every --swap_ms
// milliseconds during closed/open/overload phases; the chaos phase
// republishes deterministically every 50 requests instead.
//
// Flags:
//   --users=N --items=N --dim=D   synthetic snapshot size (default
//                                 4000 x 8000 x 32)
//   --k=N                         list length per request (default 10)
//   --seconds=F                   measurement window per row (default 1.0)
//   --clients=N                   closed-loop client threads (default 8)
//   --qps=N                       open-loop arrival rate (default 2000)
//   --threads=a,b,c               kernel thread counts (default 1,2,4)
//   --batch=N --wait_us=N         micro-batcher shape (default 64 / 200)
//   --max_queue=N                 admission queue cap (default 0 = off for
//                                 closed/open rows; overload row uses
//                                 4*batch when set to 0)
//   --deadline_us=N               enforced per-request deadline (default
//                                 0 = off; overload row uses 50000)
//   --degrade_depth=N             queue depth that routes to the
//                                 popularity fallback (default 0 = off)
//   --max_batch_cost=N            per-batch cost cap in units of k
//                                 (default 0 = off)
//   --retry_attempts=N            retry client attempts (default 4)
//   --retry_budget_us=N           retry client total budget (default
//                                 200000)
//   --overload=0/1                emit the overload pair (default 1)
//   --overload_factor=F           offered load vs capacity (default 2.0)
//   --chaos_requests=N            chaos phase length (default 200)
//   --fault_seed=N --fault_publish=P --fault_score=P
//   --fault_batch_delay=P --fault_batch_delay_us=N
//                                 chaos fault plan (all off by default)
//   --precision=fp64|fp16|int8    snapshot storage precision published to
//                                 the engine (default fp64); rows record it
//   --swap_ms=N                   snapshot republish period (default 100;
//                                 0 disables)
//   --seed=N                      RNG seed (default 7)
//   --json_out=PATH               output table; parent directories are
//                                 created (default BENCH_serving.json)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "recsys/matrix_factorization.h"
#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "util/fault.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

struct ServeBenchFlags {
  int64_t users = 4000;
  int64_t items = 8000;
  int64_t dim = 32;
  int k = 10;
  double seconds = 1.0;
  int clients = 8;
  int qps = 2000;
  std::vector<int> threads = {1, 2, 4};
  int batch = 64;
  int64_t wait_us = 200;
  int64_t max_queue = 0;
  int64_t deadline_us = 0;
  int64_t degrade_depth = 0;
  int64_t max_batch_cost = 0;
  int retry_attempts = 4;
  int64_t retry_budget_us = 200000;
  bool overload = true;
  double overload_factor = 2.0;
  int chaos_requests = 200;
  uint64_t fault_seed = 17;
  double fault_publish = 0.0;
  double fault_score = 0.0;
  double fault_batch_delay = 0.0;
  int64_t fault_batch_delay_us = 50000;
  int64_t swap_ms = 100;
  serve::SnapshotPrecision precision = serve::SnapshotPrecision::kFp64;
  uint64_t seed = 7;
  std::string json_out = "BENCH_serving.json";

  bool chaos_enabled() const {
    return fault_publish > 0.0 || fault_score > 0.0 ||
           fault_batch_delay > 0.0;
  }

  static ServeBenchFlags Parse(int argc, char** argv) {
    ServeBenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&](const char* prefix) -> const char* {
        const size_t n = std::string(prefix).size();
        if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
        return nullptr;
      };
      if (const char* v = value_of("--users=")) {
        flags.users = std::atoll(v);
      } else if (const char* v = value_of("--items=")) {
        flags.items = std::atoll(v);
      } else if (const char* v = value_of("--dim=")) {
        flags.dim = std::atoll(v);
      } else if (const char* v = value_of("--k=")) {
        flags.k = std::atoi(v);
      } else if (const char* v = value_of("--seconds=")) {
        flags.seconds = std::atof(v);
      } else if (const char* v = value_of("--clients=")) {
        flags.clients = std::atoi(v);
      } else if (const char* v = value_of("--qps=")) {
        flags.qps = std::atoi(v);
      } else if (const char* v = value_of("--threads=")) {
        flags.threads.clear();
        for (auto& part : StrSplit(v, ','))
          flags.threads.push_back(std::atoi(part.c_str()));
      } else if (const char* v = value_of("--batch=")) {
        flags.batch = std::atoi(v);
      } else if (const char* v = value_of("--wait_us=")) {
        flags.wait_us = std::atoll(v);
      } else if (const char* v = value_of("--max_queue=")) {
        flags.max_queue = std::atoll(v);
      } else if (const char* v = value_of("--deadline_us=")) {
        flags.deadline_us = std::atoll(v);
      } else if (const char* v = value_of("--degrade_depth=")) {
        flags.degrade_depth = std::atoll(v);
      } else if (const char* v = value_of("--max_batch_cost=")) {
        flags.max_batch_cost = std::atoll(v);
      } else if (const char* v = value_of("--retry_attempts=")) {
        flags.retry_attempts = std::atoi(v);
      } else if (const char* v = value_of("--retry_budget_us=")) {
        flags.retry_budget_us = std::atoll(v);
      } else if (const char* v = value_of("--overload=")) {
        flags.overload = std::atoi(v) != 0;
      } else if (const char* v = value_of("--overload_factor=")) {
        flags.overload_factor = std::atof(v);
      } else if (const char* v = value_of("--chaos_requests=")) {
        flags.chaos_requests = std::atoi(v);
      } else if (const char* v = value_of("--fault_seed=")) {
        flags.fault_seed = static_cast<uint64_t>(std::atoll(v));
      } else if (const char* v = value_of("--fault_publish=")) {
        flags.fault_publish = std::atof(v);
      } else if (const char* v = value_of("--fault_score=")) {
        flags.fault_score = std::atof(v);
      } else if (const char* v = value_of("--fault_batch_delay=")) {
        flags.fault_batch_delay = std::atof(v);
      } else if (const char* v = value_of("--fault_batch_delay_us=")) {
        flags.fault_batch_delay_us = std::atoll(v);
      } else if (const char* v = value_of("--swap_ms=")) {
        flags.swap_ms = std::atoll(v);
      } else if (const char* v = value_of("--precision=")) {
        if (!serve::ParseSnapshotPrecision(v, &flags.precision)) {
          std::fprintf(stderr, "bad --precision (fp64|fp16|int8): %s\n", v);
          std::exit(2);
        }
      } else if (const char* v = value_of("--seed=")) {
        flags.seed = static_cast<uint64_t>(std::atoll(v));
      } else if (const char* v = value_of("--json_out=")) {
        flags.json_out = v;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return flags;
  }

  serve::EngineOptions MakeEngineOptions() const {
    serve::EngineOptions options;
    options.max_batch_size = batch;
    options.max_wait_us = wait_us;
    options.deadline_us = deadline_us;
    options.max_queue = max_queue;
    options.degrade_queue_depth = degrade_depth;
    options.max_batch_cost = max_batch_cost;
    return options;
  }

  serve::RetryPolicy MakeRetryPolicy() const {
    serve::RetryPolicy policy;
    policy.max_attempts = retry_attempts;
    policy.budget_us = retry_budget_us;
    return policy;
  }
};

// An untrained (randomly initialized) MF snapshot is enough for a latency
// benchmark — the scoring cost depends only on the shapes.
std::shared_ptr<const serve::ModelSnapshot> MakeSnapshot(
    const ServeBenchFlags& flags, uint64_t version) {
  Rng rng(flags.seed + version);
  Dataset dataset;
  dataset.name = "serve_bench";
  dataset.num_users = flags.users;
  dataset.num_items = flags.items;
  // ~20 seen items per user so exclusion has realistic work to do.
  for (int64_t u = 0; u < flags.users; ++u) {
    for (int r = 0; r < 20; ++r) {
      const int64_t item = rng.UniformInt(flags.items);
      if (!dataset.HasRating(u, item)) {
        dataset.ratings.push_back({u, item, 5.0});
      }
    }
  }
  MfConfig config;
  config.latent_dim = flags.dim;
  MatrixFactorization model(flags.users, flags.items, config, 3.5, &rng);
  serve::SnapshotOptions options;
  options.version = version;
  options.source = "mf-bench";
  options.precision = flags.precision;
  return serve::ModelSnapshot::FromModel(&model, dataset, options);
}

struct RowResult {
  std::string mode;
  int threads = 0;
  int64_t requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  int64_t retries = 0;
  serve::EngineStats stats;
};

// Publisher sidecar: republishes a snapshot every swap_ms until stopped.
class SwapLoop {
 public:
  SwapLoop(serve::ServingEngine* engine, const ServeBenchFlags& flags)
      : engine_(engine), flags_(flags) {
    if (flags_.swap_ms > 0) {
      worker_ = std::thread([this] { Loop(); });
    }
  }
  ~SwapLoop() {
    stop_.store(true);
    if (worker_.joinable()) worker_.join();
  }

 private:
  void Loop() {
    uint64_t version = 2;
    while (!stop_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(flags_.swap_ms));
      if (stop_.load()) break;
      engine_->Publish(MakeSnapshot(flags_, version++));
    }
  }

  serve::ServingEngine* engine_;
  ServeBenchFlags flags_;
  std::atomic<bool> stop_{false};
  std::thread worker_;
};

RowResult RunClosedLoop(const ServeBenchFlags& flags, int threads) {
  ThreadPool::Global().SetNumThreads(threads);
  serve::ServingEngine engine(flags.MakeEngineOptions());
  engine.Publish(MakeSnapshot(flags, 1));
  SwapLoop swaps(&engine, flags);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> retries{0};
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(flags.seed * 1000 + static_cast<uint64_t>(c));
      serve::RetryingClient client(
          &engine, flags.MakeRetryPolicy(),
          flags.seed * 777 + static_cast<uint64_t>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        serve::ServeRequest request;
        request.user = rng.UniformInt(flags.users);
        request.k = flags.k;
        client.Serve(request);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      retries.fetch_add(client.retries(), std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(flags.seconds));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RowResult row;
  row.mode = "closed";
  row.threads = threads;
  row.requests = completed.load();
  row.seconds = elapsed;
  row.qps = elapsed > 0 ? static_cast<double>(row.requests) / elapsed : 0.0;
  row.retries = retries.load();
  row.stats = engine.Stats();
  return row;
}

// Paced arrivals at `target_qps` with engine options `options`; shared by
// the open-loop and overload rows.
RowResult RunPaced(const ServeBenchFlags& flags, int threads,
                   const serve::EngineOptions& options, double target_qps,
                   const std::string& mode) {
  ThreadPool::Global().SetNumThreads(threads);
  serve::ServingEngine engine(options);
  engine.Publish(MakeSnapshot(flags, 1));
  SwapLoop swaps(&engine, flags);

  Rng rng(flags.seed);
  const auto start = std::chrono::steady_clock::now();
  const auto period =
      std::chrono::nanoseconds(static_cast<int64_t>(1e9 / target_qps));
  const int64_t total =
      static_cast<int64_t>(flags.seconds * target_qps);
  std::vector<std::future<serve::ServeResponse>> inflight;
  inflight.reserve(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(start + period * i);
    serve::ServeRequest request;
    request.user = rng.UniformInt(flags.users);
    request.k = flags.k;
    inflight.push_back(engine.Submit(request));
  }
  for (auto& future : inflight) future.get();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RowResult row;
  row.mode = mode;
  row.threads = threads;
  row.requests = total;
  row.seconds = elapsed;
  row.qps = elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0;
  row.stats = engine.Stats();
  return row;
}

RowResult RunOpenLoop(const ServeBenchFlags& flags, int threads) {
  return RunPaced(flags, threads, flags.MakeEngineOptions(),
                  static_cast<double>(flags.qps), "open");
}

// Offered load >= overload_factor x measured capacity, with admission
// control on (bounded queue depth, shed past-deadline requests, bounded
// p99 for admitted requests) or off (queue and latency grow with the
// backlog) — the two curves of the robustness acceptance criterion.
RowResult RunOverload(const ServeBenchFlags& flags, int threads,
                      double capacity_qps, bool capped) {
  serve::EngineOptions options = flags.MakeEngineOptions();
  if (capped) {
    if (options.max_queue == 0) options.max_queue = 4 * flags.batch;
    if (options.deadline_us == 0) options.deadline_us = 50000;
  } else {
    options.max_queue = 0;
    options.deadline_us = 0;
    options.degrade_queue_depth = 0;
  }
  const double offered =
      std::max(1.0, capacity_qps * flags.overload_factor);
  return RunPaced(flags, threads, options, offered,
                  capped ? "overload_capped" : "overload_uncapped");
}

// Deterministic chaos replay: sequential requests (one micro-batch each)
// under the configured fault plan, republishing every 50 requests. The
// reject/shed/degraded counters and every full-fidelity list are a pure
// function of --fault_seed and the request sequence — identical at any
// kernel thread count.
RowResult RunChaos(const ServeBenchFlags& flags, int threads) {
  ThreadPool::Global().SetNumThreads(threads);
  FaultConfig fault;
  fault.seed = flags.fault_seed;
  fault.publish_fail_probability = flags.fault_publish;
  fault.scoring_error_probability = flags.fault_score;
  fault.batch_delay_probability = flags.fault_batch_delay;
  fault.batch_delay_us = flags.fault_batch_delay_us;
  ScopedFaultInjection inject(fault);

  serve::EngineOptions options = flags.MakeEngineOptions();
  options.max_wait_us = 0;  // flush each request immediately
  if (options.deadline_us == 0 && flags.fault_batch_delay > 0.0) {
    // A spiked batch (batch_delay_us) must overshoot this and an unspiked
    // one must not, even when the scheduler hiccups: a fifth of the spike
    // keeps both margins wide (10ms vs. a 50ms default spike, ~100x the
    // idle pickup latency), so the shed count stays a pure function of
    // the fault plan.
    options.deadline_us = std::max<int64_t>(1, flags.fault_batch_delay_us / 5);
  }
  serve::ServingEngine engine(options);
  uint64_t version = 1;
  while (!engine.Publish(MakeSnapshot(flags, version))) ++version;

  Rng rng(flags.seed);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < flags.chaos_requests; ++i) {
    if (i > 0 && i % 50 == 0) {
      engine.Publish(MakeSnapshot(flags, ++version));
    }
    serve::ServeRequest request;
    request.user = rng.UniformInt(flags.users);
    request.k = flags.k;
    engine.ServeSync(request);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RowResult row;
  row.mode = "chaos";
  row.threads = threads;
  row.requests = flags.chaos_requests;
  row.seconds = elapsed;
  row.qps = elapsed > 0
                ? static_cast<double>(flags.chaos_requests) / elapsed
                : 0.0;
  row.stats = engine.Stats();
  return row;
}

void WriteTable(const ServeBenchFlags& flags,
                const std::vector<RowResult>& rows) {
  JsonWriter json;
  json.BeginObject();
  json.Key("users").Int(flags.users);
  json.Key("items").Int(flags.items);
  json.Key("dim").Int(flags.dim);
  json.Key("k").Int(flags.k);
  json.Key("clients").Int(flags.clients);
  json.Key("target_qps").Int(flags.qps);
  json.Key("max_batch_size").Int(flags.batch);
  json.Key("max_wait_us").Int(flags.wait_us);
  json.Key("max_queue").Int(flags.max_queue);
  json.Key("deadline_us").Int(flags.deadline_us);
  json.Key("degrade_depth").Int(flags.degrade_depth);
  json.Key("max_batch_cost").Int(flags.max_batch_cost);
  json.Key("overload_factor").Double(flags.overload_factor);
  json.Key("fault_seed").Int(static_cast<int64_t>(flags.fault_seed));
  json.Key("fault_publish").Double(flags.fault_publish);
  json.Key("fault_score").Double(flags.fault_score);
  json.Key("fault_batch_delay").Double(flags.fault_batch_delay);
  json.Key("fault_batch_delay_us").Int(flags.fault_batch_delay_us);
  json.Key("swap_ms").Int(flags.swap_ms);
  WriteStaticChecksFields(&json, StaticCheckStats::Sample());
  json.Key("cases").BeginArray();
  for (const RowResult& row : rows) {
    json.BeginObject();
    json.Key("mode").String(row.mode);
    json.Key("threads").Int(row.threads);
    json.Key("requests").Int(row.requests);
    json.Key("seconds").Double(row.seconds);
    json.Key("qps").Double(row.qps);
    json.Key("p50_us").Int(row.stats.p50_us);
    json.Key("p95_us").Int(row.stats.p95_us);
    json.Key("p99_us").Int(row.stats.p99_us);
    json.Key("max_us").Int(row.stats.max_us);
    json.Key("batches").Int(row.stats.batches);
    json.Key("mean_batch_size").Double(row.stats.mean_batch_size);
    json.Key("publishes").Int(row.stats.publishes);
    WriteRobustnessFields(&json, row.stats, row.retries,
                          serve::SnapshotPrecisionName(flags.precision));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (WriteJsonFile(flags.json_out, json.TakeString())) {
    std::fprintf(stderr, "[serve] wrote %zu row(s) to %s\n", rows.size(),
                 flags.json_out.c_str());
  }
}

void PrintRow(const RowResult& row) {
  std::printf(
      "%-18s %8d %10lld %12.1f %10lld %10lld %8lld %8lld %8lld %8lld\n",
      row.mode.c_str(), row.threads, static_cast<long long>(row.requests),
      row.qps, static_cast<long long>(row.stats.p50_us),
      static_cast<long long>(row.stats.p99_us),
      static_cast<long long>(row.stats.rejected),
      static_cast<long long>(row.stats.shed),
      static_cast<long long>(row.stats.degraded),
      static_cast<long long>(row.stats.max_queue_depth));
}

int Main(int argc, char** argv) {
  const ServeBenchFlags flags = ServeBenchFlags::Parse(argc, argv);
  std::printf("%-18s %8s %10s %12s %10s %10s %8s %8s %8s %8s\n", "mode",
              "threads", "requests", "qps", "p50_us", "p99_us", "rejected",
              "shed", "degraded", "maxq");
  std::vector<RowResult> rows;
  for (int threads : flags.threads) {
    const RowResult closed = RunClosedLoop(flags, threads);
    PrintRow(closed);
    rows.push_back(closed);
    const RowResult open = RunOpenLoop(flags, threads);
    PrintRow(open);
    rows.push_back(open);
    if (flags.overload) {
      for (const bool capped : {true, false}) {
        const RowResult row =
            RunOverload(flags, threads, closed.qps, capped);
        PrintRow(row);
        rows.push_back(row);
      }
    }
    if (flags.chaos_enabled()) {
      const RowResult row = RunChaos(flags, threads);
      PrintRow(row);
      rows.push_back(row);
    }
  }
  WriteTable(flags, rows);
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
