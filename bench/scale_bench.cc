// Million-user substrate bench (DESIGN.md §17): measures the users ×
// wall-time × peak-RSS trajectory of the out-of-core data path against
// the fully-resident one, and commits it as BENCH_scale.json.
//
// For each synthetic user count the bench writes a ratings/trust TSV
// pair, then runs four arms:
//
//   inmem      1 shard, every shard held resident for the whole run
//              (the whole-dataset baseline: RSS grows with the dataset);
//   ooc x1/x4/x16  shard-at-a-time streaming at 1 / 4 / 16 shards
//              (RSS bounded by the largest shard + model parameters).
//
// Every ingest and train phase runs in a fresh subprocess of this binary
// (--phase=...), so each row's peak RSS (VmHWM) is that phase's own
// high-water mark, not an earlier phase's. The training arms are
// bit-identical to each other by the TrainMfOutOfCore contract; the
// JSON records final_loss so a drift would be visible in review.
//
// Flags (master mode):
//   --users=a,b,c        user counts (default 65536,262144,1048576)
//   --ratings_per_user=N rating rows per user (default 6)
//   --epochs=N           training epochs per arm (default 2)
//   --dim=D              MF latent dim (default 8)
//   --seed=N             RNG seed (default 7)
//   --work_dir=PATH      scratch root (default <tmp>/msopds_scale_bench)
//   --keep_work_dir      do not delete the scratch tree at the end
//   --json_out=PATH      output table (default BENCH_scale.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "recsys/matrix_factorization.h"
#include "recsys/trainer.h"
#include "scale/block_trainer.h"
#include "scale/ingest.h"
#include "scale/sharded_dataset.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/string_util.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace msopds {
namespace {

struct ScaleBenchFlags {
  std::vector<int64_t> users = {65536, 262144, 1048576};
  int64_t ratings_per_user = 6;
  int epochs = 2;
  int64_t dim = 8;
  uint64_t seed = 7;
  std::string work_dir;
  bool keep_work_dir = false;
  std::string json_out = "BENCH_scale.json";

  // Subprocess-phase plumbing (not for interactive use).
  std::string phase;  // "" = master, "ingest" or "train"
  std::string ratings_path;
  std::string trust_path;
  std::string shard_dir;
  int64_t shards = 1;
  bool resident = false;
  std::string result_out;
};

ScaleBenchFlags ParseFlags(int argc, char** argv) {
  ScaleBenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
      return nullptr;
    };
    if (const char* v = value_of("--users=")) {
      flags.users.clear();
      for (auto& part : StrSplit(v, ','))
        flags.users.push_back(std::atoll(part.c_str()));
    } else if (const char* v = value_of("--ratings_per_user=")) {
      flags.ratings_per_user = std::atoll(v);
    } else if (const char* v = value_of("--epochs=")) {
      flags.epochs = std::atoi(v);
    } else if (const char* v = value_of("--dim=")) {
      flags.dim = std::atoll(v);
    } else if (const char* v = value_of("--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value_of("--work_dir=")) {
      flags.work_dir = v;
    } else if (arg == "--keep_work_dir") {
      flags.keep_work_dir = true;
    } else if (const char* v = value_of("--json_out=")) {
      flags.json_out = v;
    } else if (const char* v = value_of("--phase=")) {
      flags.phase = v;
    } else if (const char* v = value_of("--ratings=")) {
      flags.ratings_path = v;
    } else if (const char* v = value_of("--trust=")) {
      flags.trust_path = v;
    } else if (const char* v = value_of("--shard_dir=")) {
      flags.shard_dir = v;
    } else if (const char* v = value_of("--shards=")) {
      flags.shards = std::atoll(v);
    } else if (const char* v = value_of("--resident=")) {
      flags.resident = std::atoi(v) != 0;
    } else if (const char* v = value_of("--result_out=")) {
      flags.result_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Writes a deterministic ratings/trust TSV pair sized by (users,
/// ratings_per_user). Plain splitmix streams — no GenerateSynthetic, so
/// the generator stays O(rows) with O(1) memory at a million users.
void WriteSyntheticTsv(const ScaleBenchFlags& flags, int64_t num_users,
                       const std::string& ratings_path,
                       const std::string& trust_path) {
  const int64_t num_items = std::max<int64_t>(num_users / 4, 16);
  Rng rng(flags.seed ^ static_cast<uint64_t>(num_users));
  std::string buffer;
  buffer.reserve(1 << 20);
  {
    std::ofstream out(ratings_path, std::ios::trunc);
    for (int64_t u = 0; u < num_users; ++u) {
      for (int64_t k = 0; k < flags.ratings_per_user; ++k) {
        // Distinct items per user: stride through a coprime-ish offset.
        const int64_t item =
            (u * 131 + k * 7919 + static_cast<int64_t>(rng.Next() % 97)) %
            num_items;
        const int64_t value = 1 + static_cast<int64_t>(rng.Next() % 5);
        buffer += std::to_string(u + 1);
        buffer += '\t';
        buffer += std::to_string(item + 1);
        buffer += '\t';
        buffer += std::to_string(value);
        buffer += '\n';
        if (buffer.size() > (1 << 20) - 64) {
          out << buffer;
          buffer.clear();
        }
      }
    }
    out << buffer;
    buffer.clear();
  }
  {
    std::ofstream out(trust_path, std::ios::trunc);
    const int64_t num_links = num_users / 2;
    for (int64_t e = 0; e < num_links; ++e) {
      const int64_t a = static_cast<int64_t>(
          rng.Next() % static_cast<uint64_t>(num_users));
      const int64_t b = static_cast<int64_t>(
          rng.Next() % static_cast<uint64_t>(num_users));
      buffer += std::to_string(a + 1);
      buffer += '\t';
      buffer += std::to_string(b + 1);
      buffer += '\n';
      if (buffer.size() > (1 << 20) - 32) {
        out << buffer;
        buffer.clear();
      }
    }
    out << buffer;
  }
}

void WriteResult(const std::string& path,
                 const std::map<std::string, double>& values) {
  std::ofstream out(path, std::ios::trunc);
  for (const auto& [key, value] : values) {
    out << key << ' ' << StrFormat("%.9g", value) << '\n';
  }
}

bool ReadResult(const std::string& path,
                std::map<std::string, double>* values) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::string key;
  double value = 0.0;
  while (in >> key >> value) (*values)[key] = value;
  return !values->empty();
}

/// --phase=ingest: stream the TSV pair into a shard set and report wall
/// time, ingest-process peak RSS, and the resulting global counts.
int IngestPhase(const ScaleBenchFlags& flags) {
  std::filesystem::remove_all(flags.shard_dir);
  scale::IngestOptions options;
  options.name = "scale-bench";
  options.num_shards = flags.shards;
  // Strict per-shard memory: the item co-rating graph would cost one
  // O(total ratings) resident pass and MF never reads it.
  options.build_item_graph = false;
  const auto start = std::chrono::steady_clock::now();
  auto stats = scale::IngestTsvToShards(flags.ratings_path, flags.trust_path,
                                        flags.shard_dir, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  WriteResult(flags.result_out,
              {{"seconds", SecondsSince(start)},
               {"peak_rss_bytes", static_cast<double>(PeakRssBytes())},
               {"num_users", static_cast<double>(stats.value().num_users)},
               {"num_items", static_cast<double>(stats.value().num_items)},
               {"num_ratings", static_cast<double>(stats.value().num_ratings)}});
  return 0;
}

/// --phase=train: full-batch MF over the shard set, streaming or
/// resident, reporting wall time, train-process peak RSS, and the
/// working-set bound (largest shard file).
int TrainPhase(const ScaleBenchFlags& flags) {
  auto paths = scale::ListShardPaths(flags.shard_dir);
  if (!paths.ok()) {
    std::fprintf(stderr, "%s\n", paths.status().ToString().c_str());
    return 1;
  }
  auto header = scale::ShardReader::Open(paths.value().front());
  if (!header.ok()) {
    std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
    return 1;
  }
  const int64_t num_users = header.value().num_users();
  const int64_t num_items = header.value().num_items();

  Rng rng(flags.seed);
  MfConfig config;
  config.latent_dim = flags.dim;
  MatrixFactorization model(num_users, num_items, config, 3.0, &rng);
  TrainOptions options;
  options.epochs = flags.epochs;

  const auto start = std::chrono::steady_clock::now();
  auto result =
      scale::TrainMfOutOfCore(&model, paths.value(), options, flags.resident);
  if (!result.ok()) {
    std::fprintf(stderr, "train failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  WriteResult(
      flags.result_out,
      {{"seconds", SecondsSince(start)},
       {"peak_rss_bytes", static_cast<double>(PeakRssBytes())},
       {"peak_shard_bytes", static_cast<double>(result.value().peak_shard_bytes)},
       {"final_loss", result.value().final_loss},
       {"healthy", result.value().healthy ? 1.0 : 0.0}});
  return 0;
}

std::string SelfExecutable(const char* argv0) {
#if defined(__linux__)
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return buffer;
  }
#endif
  return argv0;
}

struct PhaseOutcome {
  std::map<std::string, double> values;
};

bool RunPhase(const std::string& command, const std::string& result_path,
              PhaseOutcome* outcome) {
  std::remove(result_path.c_str());
  const int status = std::system(command.c_str());  // NOLINT
  if (status != 0) {
    std::fprintf(stderr, "phase failed (%d): %s\n", status, command.c_str());
    return false;
  }
  return ReadResult(result_path, &outcome->values);
}

int MasterMain(const ScaleBenchFlags& flags, const char* argv0) {
  const std::string self = SelfExecutable(argv0);
  const std::string work =
      flags.work_dir.empty()
          ? (std::filesystem::temp_directory_path() / "msopds_scale_bench")
                .string()
          : flags.work_dir;
  std::filesystem::create_directories(work);

  struct Arm {
    const char* mode;
    int64_t shards;
    bool resident;
  };
  const std::vector<Arm> arms = {
      {"inmem", 1, true}, {"ooc", 1, false}, {"ooc", 4, false},
      {"ooc", 16, false}};

  std::vector<ScaleRowStats> rows;
  std::printf("%10s %6s %7s %10s %10s %14s %14s %14s\n", "users", "mode",
              "shards", "ingest_s", "train_s", "ingest_rss_mb", "train_rss_mb",
              "shard_mb");
  for (int64_t num_users : flags.users) {
    const std::string user_dir =
        work + StrFormat("/u%lld", static_cast<long long>(num_users));
    std::filesystem::create_directories(user_dir);
    const std::string ratings_path = user_dir + "/ratings.tsv";
    const std::string trust_path = user_dir + "/trust.tsv";
    WriteSyntheticTsv(flags, num_users, ratings_path, trust_path);

    // One ingest per shard count; the inmem and ooc x1 arms share it.
    std::map<int64_t, PhaseOutcome> ingests;
    for (const Arm& arm : arms) {
      const std::string shard_dir =
          user_dir + StrFormat("/shards_%lld",
                               static_cast<long long>(arm.shards));
      const std::string result_path =
          user_dir + StrFormat("/result_%s_%lld.txt", arm.mode,
                               static_cast<long long>(arm.shards));
      if (ingests.count(arm.shards) == 0) {
        PhaseOutcome ingest;
        const std::string command = StrFormat(
            "%s --phase=ingest --ratings=%s --trust=%s --shard_dir=%s "
            "--shards=%lld --result_out=%s",
            self.c_str(), ratings_path.c_str(), trust_path.c_str(),
            shard_dir.c_str(), static_cast<long long>(arm.shards),
            result_path.c_str());
        if (!RunPhase(command, result_path, &ingest)) return 1;
        ingests[arm.shards] = ingest;
      }
      const PhaseOutcome& ingest = ingests[arm.shards];

      PhaseOutcome train;
      const std::string command = StrFormat(
          "%s --phase=train --shard_dir=%s --resident=%d --epochs=%d "
          "--dim=%lld --seed=%llu --result_out=%s",
          self.c_str(), shard_dir.c_str(), arm.resident ? 1 : 0, flags.epochs,
          static_cast<long long>(flags.dim),
          static_cast<unsigned long long>(flags.seed), result_path.c_str());
      if (!RunPhase(command, result_path, &train)) return 1;
      if (train.values.count("healthy") == 0 ||
          train.values.at("healthy") != 1.0) {
        std::fprintf(stderr, "training arm was unhealthy; aborting\n");
        return 1;
      }

      ScaleRowStats row;
      row.num_users = static_cast<int64_t>(ingest.values.at("num_users"));
      row.num_items = static_cast<int64_t>(ingest.values.at("num_items"));
      row.num_ratings = static_cast<int64_t>(ingest.values.at("num_ratings"));
      row.mode = arm.mode;
      row.num_shards = arm.shards;
      row.ingest_seconds = ingest.values.at("seconds");
      row.train_seconds = train.values.at("seconds");
      row.ingest_peak_rss_bytes =
          static_cast<int64_t>(ingest.values.at("peak_rss_bytes"));
      row.train_peak_rss_bytes =
          static_cast<int64_t>(train.values.at("peak_rss_bytes"));
      row.peak_shard_bytes =
          static_cast<int64_t>(train.values.at("peak_shard_bytes"));
      row.final_loss = train.values.at("final_loss");
      rows.push_back(row);
      std::printf("%10lld %6s %7lld %10.2f %10.2f %14.1f %14.1f %14.1f\n",
                  static_cast<long long>(row.num_users), row.mode.c_str(),
                  static_cast<long long>(row.num_shards), row.ingest_seconds,
                  row.train_seconds,
                  static_cast<double>(row.ingest_peak_rss_bytes) / (1 << 20),
                  static_cast<double>(row.train_peak_rss_bytes) / (1 << 20),
                  static_cast<double>(row.peak_shard_bytes) / (1 << 20));
      std::fflush(stdout);
    }
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("ratings_per_user").Int(flags.ratings_per_user);
  json.Key("epochs").Int(flags.epochs);
  json.Key("dim").Int(flags.dim);
  json.Key("seed").Int(static_cast<int64_t>(flags.seed));
  WriteStaticChecksFields(&json, StaticCheckStats::Sample());
  json.Key("rows").BeginArray();
  for (const ScaleRowStats& row : rows) {
    json.BeginObject();
    WriteScaleFields(&json, row);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  if (!WriteJsonFile(flags.json_out, json.TakeString())) return 1;
  std::printf("wrote %s (%zu rows)\n", flags.json_out.c_str(), rows.size());

  if (!flags.keep_work_dir && flags.work_dir.empty()) {
    std::filesystem::remove_all(work);
  }
  return 0;
}

int Main(int argc, char** argv) {
  const ScaleBenchFlags flags = ParseFlags(argc, argv);
  if (flags.phase == "ingest") return IngestPhase(flags);
  if (flags.phase == "train") return TrainPhase(flags);
  if (!flags.phase.empty()) {
    std::fprintf(stderr, "unknown --phase=%s\n", flags.phase.c_str());
    return 2;
  }
  return MasterMain(flags, argv[0]);
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
