// EXTENSION (beyond the paper's measured experiments): platform
// moderation. §VI-F of the paper argues that poisoning through *real*
// users is more durable because "website moderators usually detect and
// remove fake user accounts". This bench quantifies that claim with the
// behavioural fake-account detector in src/defense/: after each attack
// lands (and the opponent reacts), the platform flags and removes the
// most suspicious accounts, the victim is retrained on the moderated
// data, and we measure how much of the attack survives.
//
// Expected shape: injection attacks (all poison mass on fake profiles)
// lose most of their uplift; MSOPDS — whose plan leans on hired real
// users and graph links — retains far more.

#include "bench/bench_util.h"
#include "core/bopds.h"
#include "defense/fake_detector.h"
#include "recsys/metrics.h"
#include "recsys/trainer.h"

namespace msopds {
namespace {

struct ModeratedResult {
  double rbar_before = 0.0;
  double rbar_after = 0.0;
};

ModeratedResult RunModeratedGame(const Dataset& base,
                                 const GameConfig& game_config,
                                 const std::string& method, int budget_level,
                                 uint64_t seed) {
  Rng rng(seed);
  GameContext context;
  context.base = &base;
  context.demos = SampleDemographics(base, 1 + game_config.num_opponents,
                                     &rng);
  context.config = game_config;
  context.attacker_budget = AttackBudget::FromLevel(budget_level, base);

  Dataset world = base;
  auto attack = MakeAttackFactory(method)(context);
  Rng attacker_rng = rng.Split();
  attack->Execute(&world, context.demos[0], context.attacker_budget,
                  &attacker_rng);
  for (int q = 0; q < game_config.num_opponents; ++q) {
    BopdsConfig opponent_config;
    opponent_config.pds = game_config.opponent_pds;
    opponent_config.step = game_config.opponent_step;
    opponent_config.iterations = game_config.opponent_iterations;
    opponent_config.comprehensive = false;
    opponent_config.demote = true;
    opponent_config.preset_rating = kMinRating;
    Bopds opponent(opponent_config);
    AttackBudget opponent_budget = AttackBudget::FromLevel(
        game_config.opponent_budget_level, world);
    opponent_budget.promote_rating = kMinRating;
    Rng opponent_rng = rng.Split();
    opponent.Execute(&world, context.demos[static_cast<size_t>(q + 1)],
                     opponent_budget, &opponent_rng);
  }

  const Demographics& market = context.demos[0];
  ModeratedResult result;
  {
    Rng victim_rng(seed + 1000);
    HetRecSys victim(world, game_config.victim, &victim_rng);
    TrainModel(&victim, world.ratings, game_config.victim_training);
    result.rbar_before = AverageTargetRating(&victim, market.target_audience,
                                             market.target_item);
  }

  // Moderation: flag as many accounts as the attacker injected fakes
  // (a budget-matched moderator), remove them, retrain.
  const int64_t flag_count = context.attacker_budget.num_fake_users;
  const std::vector<int64_t> flagged = DetectFakeUsers(world, flag_count);
  std::vector<int64_t> id_map;
  const Dataset moderated = RemoveUsers(world, flagged, &id_map);

  // Audience ids after compaction (members are real and typically kept).
  std::vector<int64_t> audience;
  for (int64_t user : market.target_audience) {
    const int64_t mapped = id_map[static_cast<size_t>(user)];
    if (mapped >= 0) audience.push_back(mapped);
  }
  if (audience.empty()) {
    result.rbar_after = result.rbar_before;
    return result;
  }
  Rng victim_rng(seed + 2000);
  HetRecSys victim(moderated, game_config.victim, &victim_rng);
  TrainModel(&victim, moderated.ratings, game_config.victim_training);
  result.rbar_after =
      AverageTargetRating(&victim, audience, market.target_item);
  return result;
}

int Main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.repeats = flags.ResolveRepeats(2);
  if (flags.methods.empty()) {
    flags.methods = {"Random", "RevAdv", "Trial", "MSOPDS-real", "MSOPDS"};
  }
  if (flags.datasets.size() == 3) flags.datasets = {"epinions"};
  const int budget = 5;

  std::printf(
      "=== Extension: moderation survival (one opponent, budget-matched "
      "fake-account takedowns), scale %.2f ===\n",
      flags.scale);

  for (const std::string& dataset_name : flags.datasets) {
    const Dataset base =
        MakeExperimentDataset(dataset_name, flags.scale, flags.seed);
    std::printf("\n[%s] %s\n", dataset_name.c_str(), base.Summary().c_str());
    std::printf("%-14s %10s %10s %10s\n", "method", "rbar", "moderated",
                "retained");
    const GameConfig game_config = DefaultGameConfig();
    for (const std::string& method : flags.methods) {
      double before = 0.0, after = 0.0;
      for (int r = 0; r < flags.repeats; ++r) {
        const ModeratedResult result = RunModeratedGame(
            base, game_config, method, budget,
            flags.seed + 1 + static_cast<uint64_t>(r));
        before += result.rbar_before;
        after += result.rbar_after;
      }
      before /= flags.repeats;
      after /= flags.repeats;
      std::printf("%-14s %10.4f %10.4f %9.1f%%\n", method.c_str(), before,
                  after, before > 0 ? 100.0 * after / before : 0.0);
    }
  }
  std::printf(
      "\nExpected shape (paper §VI-F discussion): real-user channels\n"
      "retain more of their uplift under fake-account takedowns than\n"
      "pure injection attacks.\n");
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
