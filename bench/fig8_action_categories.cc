// Reproduces paper Fig. 8: effect of the poisoning-action categories on
// the Epinions profile (single opponent). Variants:
//   MSOPDS-ratings        poison ratings only
//   MSOPDS-ratings+item   ratings + item-graph links
//   MSOPDS-ratings+user   ratings + social-network links
//   MSOPDS                all three categories
//
// Expected shape (paper): full MSOPDS best; item-graph actions help more
// than social-network actions (they hit the target item's embedding
// directly); each partial variant trails the full method.

#include "bench/bench_util.h"

namespace msopds {
namespace {

int Main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.repeats = flags.ResolveRepeats(2);
  if (flags.methods.empty()) flags.methods = Fig8Methods();
  // The paper runs this ablation on Epinions.
  if (flags.datasets.size() == 3) flags.datasets = {"epinions"};

  std::printf(
      "=== Fig. 8: poisoning-action categories (one opponent), scale %.2f "
      "===\n",
      flags.scale);

  SweepRunner runner(flags);
  for (const std::string& dataset_name : flags.datasets) {
    const Dataset base =
        MakeExperimentDataset(dataset_name, flags.scale, flags.seed);
    std::printf("\n[%s] %s\n", dataset_name.c_str(), base.Summary().c_str());
    std::vector<std::string> columns;
    for (int b : flags.budgets) columns.push_back(StrFormat("b=%d", b));
    PrintHeader("variant", columns);

    MultiplayerGame game(base, DefaultGameConfig());
    for (const std::string& method : flags.methods) {
      std::vector<CellRecord> row;
      for (int b : flags.budgets) {
        row.push_back(runner.Cell(
            StrFormat("%s|%s|b=%d", dataset_name.c_str(), method.c_str(), b),
            game, method, b, flags.seed + 1, flags.repeats));
      }
      PrintRow(method, row);
    }
  }
  std::printf(
      "\nExpected ordering (paper): MSOPDS >= ratings+item >= ratings+user "
      ">= ratings-only on average.\n");
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
