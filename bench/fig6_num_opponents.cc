// Reproduces paper Fig. 6: impact of the number of subsequent opponents
// (each running a BOPDS rating-only demotion with b_op = 2) on the
// attacker's rbar and HitRate@3, at attacker budget b = 5.
//
// Expected shape (paper): every method degrades as opponents are added,
// but MSOPDS degrades least and stays on top; baselines can collapse to
// HR@3 = 0 while MSOPDS remains positive (esp. the Epinions profile).

#include "bench/bench_util.h"

namespace msopds {
namespace {

int Main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.repeats = flags.ResolveRepeats(1);
  const std::vector<std::string> methods =
      flags.methods.empty() ? StandardMethods() : flags.methods;
  const int attacker_budget = 5;

  std::printf(
      "=== Fig. 6: number of opponents (b = %d, b_op = 2), scale %.2f ===\n",
      attacker_budget, flags.scale);

  SweepRunner runner(flags);
  for (const std::string& dataset_name : flags.datasets) {
    const Dataset base =
        MakeExperimentDataset(dataset_name, flags.scale, flags.seed);
    std::printf("\n[%s] %s\n", dataset_name.c_str(), base.Summary().c_str());
    std::vector<std::string> columns;
    for (int n : flags.opponents) columns.push_back(StrFormat("N=%d", n));
    PrintHeader("method", columns);

    std::vector<double> msopds_series;
    std::vector<double> best_baseline_series(flags.opponents.size(), 0.0);
    for (const std::string& method : methods) {
      std::vector<CellRecord> row;
      for (size_t i = 0; i < flags.opponents.size(); ++i) {
        GameConfig config = DefaultGameConfig();
        config.num_opponents = flags.opponents[i];
        MultiplayerGame game(base, config);
        const CellRecord cell = runner.Cell(
            StrFormat("%s|%s|N=%d", dataset_name.c_str(), method.c_str(),
                      flags.opponents[i]),
            game, method, attacker_budget, flags.seed + 1, flags.repeats);
        if (method == "MSOPDS") {
          msopds_series.push_back(cell.mean_average_rating);
        } else {
          best_baseline_series[i] =
              std::max(best_baseline_series[i], cell.mean_average_rating);
        }
        row.push_back(cell);
      }
      PrintRow(method, row);
    }
    if (msopds_series.size() == flags.opponents.size()) {
      std::printf("  -> MSOPDS rbar drop over opponent sweep: %.4f; best "
                  "baseline drop: %.4f (paper: MSOPDS degrades less)\n",
                  msopds_series.front() - msopds_series.back(),
                  best_baseline_series.front() - best_baseline_series.back());
    }
  }
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
