// Reproduces paper Fig. 9: poisoning via hired real users vs injected
// fake accounts on the Epinions profile (single opponent; item-graph
// actions excluded from every variant for fairness, as in the paper).
//   MSOPDS-real           hired real raters only (no fake accounts)
//   MSOPDS-fake           fake accounts + their social links only
//   MSOPDS-ratings+user   both channels (the Fig. 9 "MSOPDS" reference)
//
// Expected shape (paper): the combined variant is best, and real users
// beat fake accounts (real users are better embedded in the social
// network; fakes only reach the graph through their created links).

#include "bench/bench_util.h"

namespace msopds {
namespace {

int Main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.repeats = flags.ResolveRepeats(2);
  if (flags.methods.empty()) flags.methods = Fig9Methods();
  if (flags.datasets.size() == 3) flags.datasets = {"epinions"};

  std::printf(
      "=== Fig. 9: real users vs fake accounts (one opponent), scale %.2f "
      "===\n",
      flags.scale);

  SweepRunner runner(flags);
  for (const std::string& dataset_name : flags.datasets) {
    const Dataset base =
        MakeExperimentDataset(dataset_name, flags.scale, flags.seed);
    std::printf("\n[%s] %s\n", dataset_name.c_str(), base.Summary().c_str());
    std::vector<std::string> columns;
    for (int b : flags.budgets) columns.push_back(StrFormat("b=%d", b));
    PrintHeader("variant", columns);

    MultiplayerGame game(base, DefaultGameConfig());
    for (const std::string& method : flags.methods) {
      std::vector<CellRecord> row;
      for (int b : flags.budgets) {
        row.push_back(runner.Cell(
            StrFormat("%s|%s|b=%d", dataset_name.c_str(), method.c_str(), b),
            game, method, b, flags.seed + 1, flags.repeats));
      }
      PrintRow(method, row);
    }
  }
  std::printf(
      "\nExpected ordering (paper): combined >= real-only >= fake-only.\n");
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
