#ifndef MSOPDS_BENCH_PARALLEL_BENCH_H_
#define MSOPDS_BENCH_PARALLEL_BENCH_H_

// Serial-vs-parallel comparison harness for the micro-benches.
//
// A comparison case is a google-benchmark whose *last* argument is the
// kernel thread count. Register the grid with ParallelArgs(), set the
// pool inside the body with SetThreadsFromState(), and replace
// BENCHMARK_MAIN() with MSOPDS_PARALLEL_BENCH_MAIN(path): after the
// normal console output, rows that differ only in "/threads:N" are
// paired against their "/threads:1" baseline and written to `path` as a
// JSON speedup table (speedup = serial wall time / parallel wall time;
// the kernels are bit-identical at any thread count, so the table
// measures scheduling overhead and scaling, never accuracy).
//
// MSOPDS_BENCH_THREADS overrides the parallel side of the comparison
// (default 4). On a single-core host speedups near (or below) 1.0 are
// expected; the table still records pool overhead.
//
// Memory profile: benches that publish counters prefixed "mem_" (peak
// tape bytes, allocations per step, arena hit rate — see the BM_Mem*
// cases) are additionally collected into a second JSON table, written by
// the same main to the macro's `memory_json_path`, together with a
// process-level MemStats sample (bench/bench_util.h).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/json_writer.h"
#include "util/thread_pool.h"

namespace msopds {
namespace bench {

/// Thread count of the parallel side of each comparison pair.
inline int ComparisonThreads() {
  if (const char* env = std::getenv("MSOPDS_BENCH_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 4;
}

/// Registers (size, 1) and (size, ComparisonThreads()) argument pairs so
/// every size runs once serial and once parallel.
inline void ParallelArgs(benchmark::internal::Benchmark* b,
                         std::initializer_list<int64_t> sizes) {
  b->ArgNames({"n", "threads"});
  for (int64_t n : sizes) {
    b->Args({n, 1});
    b->Args({n, ComparisonThreads()});
  }
}

/// Applies the case's thread-count argument — range(1) of the
/// (size, threads) pairs ParallelArgs() registers — to the global pool.
/// Call once at the top of the benchmark body.
inline void SetThreadsFromState(const benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(static_cast<int>(state.range(1)));
}

/// Console reporter that additionally captures per-iteration rows so the
/// main can pair "/threads:1" against "/threads:N" after the run.
class SpeedupReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      bool has_memory_counters = false;
      for (const auto& [counter_name, counter] : run.counters) {
        if (counter_name.rfind("mem_", 0) == 0) {
          memory_[name][counter_name] = counter.value;
          has_memory_counters = true;
        }
      }
      if (has_memory_counters) {
        memory_times_ns_[name] = run.GetAdjustedRealTime();
      }
      const size_t pos = name.rfind("/threads:");
      if (pos == std::string::npos) continue;
      const int threads = std::atoi(name.c_str() + pos + 9);
      if (threads <= 0) continue;
      times_[name.substr(0, pos)][threads] = run.GetAdjustedRealTime();
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  /// Writes the speedup table (one entry per case that ran at both
  /// thread counts) and returns the number of pairs written.
  int WriteSpeedupTable(const std::string& path) const {
    JsonWriter json;
    json.BeginObject();
    json.Key("threads_compared").Int(ComparisonThreads());
    WriteStaticChecksFields(&json, StaticCheckStats::Sample());
    json.Key("cases").BeginArray();
    int pairs = 0;
    for (const auto& [name, by_threads] : times_) {
      const auto serial = by_threads.find(1);
      if (serial == by_threads.end()) continue;
      for (const auto& [threads, time] : by_threads) {
        if (threads == 1) continue;
        json.BeginObject();
        json.Key("name").String(name);
        json.Key("threads").Int(threads);
        json.Key("t_serial_ns").Double(serial->second);
        json.Key("t_parallel_ns").Double(time);
        json.Key("speedup").Double(time > 0.0 ? serial->second / time : 0.0);
        json.EndObject();
        ++pairs;
      }
    }
    json.EndArray();
    json.EndObject();
    if (!WriteJsonFile(path, json.TakeString())) return pairs;
    std::fprintf(stderr, "[parallel] wrote %d speedup pair(s) to %s\n", pairs,
                 path.c_str());
    return pairs;
  }

  /// Writes the memory profile: one entry per case that published
  /// "mem_"-prefixed counters (its counters plus wall time), then a
  /// process-level MemStats sample. Returns the number of cases written.
  int WriteMemoryTable(const std::string& path) const {
    const MemStats process = MemStats::Sample();
    JsonWriter json;
    json.BeginObject();
    json.Key("peak_rss_kb").Int(process.peak_rss_kb);
    json.Key("arena").BeginObject();
    json.Key("alloc_calls").Int(process.arena.alloc_calls);
    json.Key("pool_hits").Int(process.arena.pool_hits);
    json.Key("hit_rate").Double(process.arena.hit_rate());
    json.Key("high_water_bytes").Int(process.arena.high_water_bytes);
    json.Key("bytes_cached").Int(process.arena.bytes_cached);
    json.Key("trims").Int(process.arena.trims);
    json.EndObject();
    json.Key("cases").BeginArray();
    int cases = 0;
    for (const auto& [name, counters] : memory_) {
      json.BeginObject();
      json.Key("name").String(name);
      const auto time = memory_times_ns_.find(name);
      if (time != memory_times_ns_.end()) {
        json.Key("t_ns").Double(time->second);
      }
      for (const auto& [counter_name, value] : counters) {
        json.Key(counter_name).Double(value);
      }
      json.EndObject();
      ++cases;
    }
    json.EndArray();
    json.EndObject();
    if (!WriteJsonFile(path, json.TakeString())) return cases;
    std::fprintf(stderr, "[memory] wrote %d memory case(s) to %s\n", cases,
                 path.c_str());
    return cases;
  }

 private:
  // base name -> thread count -> adjusted wall time (ns).
  std::map<std::string, std::map<int, double>> times_;
  // full case name -> "mem_*" counters published by the run.
  std::map<std::string, std::map<std::string, double>> memory_;
  // full case name -> adjusted wall time (ns), memory cases only.
  std::map<std::string, double> memory_times_ns_;
};

}  // namespace bench
}  // namespace msopds

/// Drop-in replacement for BENCHMARK_MAIN() that also emits the
/// serial-vs-parallel speedup table to `json_path` and the memory
/// profile (cases with "mem_" counters + MemStats) to `memory_json_path`.
#define MSOPDS_PARALLEL_BENCH_MAIN(json_path, memory_json_path)         \
  int main(int argc, char** argv) {                                     \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::msopds::bench::SpeedupReporter reporter;                          \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    reporter.WriteSpeedupTable(json_path);                              \
    reporter.WriteMemoryTable(memory_json_path);                        \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }

#endif  // MSOPDS_BENCH_PARALLEL_BENCH_H_
