// Reproduces paper Table III: the attacker's target-item average
// predicted rating (rbar) and HitRate@3 on the ConsisRec-like victim,
// facing a single subsequent opponent (BOPDS, b_op = 2), for every method
// and budget level b in {2, 3, 4, 5} on all three dataset profiles.
//
// Expected shape (paper): MSOPDS is best in every cell by a clear margin;
// IA baselines cluster together well below it.

#include "bench/bench_util.h"

namespace msopds {
namespace {

int Main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.repeats = flags.ResolveRepeats(2);
  const std::vector<std::string> methods =
      flags.methods.empty() ? StandardMethods() : flags.methods;

  std::printf(
      "=== Table III: single opponent (b_op = 2), scale %.2f, %d "
      "repeat(s) ===\n",
      flags.scale, flags.repeats);

  SweepRunner runner(flags);
  int msopds_best_cells = 0;
  int total_cells = 0;
  for (const std::string& dataset_name : flags.datasets) {
    const Dataset base =
        MakeExperimentDataset(dataset_name, flags.scale, flags.seed);
    std::printf("\n[%s] %s\n", dataset_name.c_str(),
                base.Summary().c_str());
    std::vector<std::string> columns;
    for (int b : flags.budgets) columns.push_back(StrFormat("b=%d", b));
    PrintHeader("method", columns);

    MultiplayerGame game(base, DefaultGameConfig());
    std::vector<std::vector<CellRecord>> table;
    for (const std::string& method : methods) {
      std::vector<CellRecord> row;
      for (int b : flags.budgets) {
        row.push_back(runner.Cell(
            StrFormat("%s|%s|b=%d", dataset_name.c_str(), method.c_str(), b),
            game, method, b, flags.seed + 1, flags.repeats));
      }
      PrintRow(method, row);
      table.push_back(std::move(row));
    }

    // Win count: is MSOPDS best-or-tied per (budget, metric) cell?
    size_t msopds_row = methods.size();
    for (size_t row = 0; row < methods.size(); ++row) {
      if (methods[row] == "MSOPDS") msopds_row = row;
    }
    for (size_t column = 0; column < flags.budgets.size(); ++column) {
      for (int metric = 0; metric < 2; ++metric) {
        double best = -1.0;
        for (size_t row = 0; row < methods.size(); ++row) {
          const double value = metric == 0
                                   ? table[row][column].mean_average_rating
                                   : table[row][column].mean_hit_rate;
          best = std::max(best, value);
        }
        ++total_cells;
        if (msopds_row < methods.size()) {
          const double msopds_value =
              metric == 0 ? table[msopds_row][column].mean_average_rating
                          : table[msopds_row][column].mean_hit_rate;
          if (msopds_value >= best - 1e-12) ++msopds_best_cells;
        }
      }
    }
  }
  std::printf(
      "\nSummary: MSOPDS best or tied in %d/%d (budget x metric x dataset) "
      "cells; the paper reports it best in every cell of Table III.\n",
      msopds_best_cells, total_cells);
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
