// Reproduces paper Fig. 7: impact of the single opponent's budget b_op on
// the attacker's rbar and HitRate@3, at attacker budget b = 5.
//
// Expected shape (paper): raising the opponent's budget hurts every
// attacker, but MSOPDS degrades less than the baselines because it
// anticipated the demotion campaign; Epinions/LibraryThing profiles are
// more sensitive than Ciao (sparser ratings).

#include "bench/bench_util.h"

namespace msopds {
namespace {

int Main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  flags.repeats = flags.ResolveRepeats(1);
  const std::vector<std::string> methods =
      flags.methods.empty() ? StandardMethods() : flags.methods;
  const int attacker_budget = 5;

  std::printf(
      "=== Fig. 7: opponent capacity sweep (b = %d, one opponent), scale "
      "%.2f ===\n",
      attacker_budget, flags.scale);

  SweepRunner runner(flags);
  for (const std::string& dataset_name : flags.datasets) {
    const Dataset base =
        MakeExperimentDataset(dataset_name, flags.scale, flags.seed);
    std::printf("\n[%s] %s\n", dataset_name.c_str(), base.Summary().c_str());
    std::vector<std::string> columns;
    for (int bop : flags.opponents)
      columns.push_back(StrFormat("b_op=%d", bop));
    PrintHeader("method", columns);

    std::vector<double> msopds_series;
    std::vector<double> baseline_best(flags.opponents.size(), 0.0);
    for (const std::string& method : methods) {
      std::vector<CellRecord> row;
      for (size_t i = 0; i < flags.opponents.size(); ++i) {
        GameConfig config = DefaultGameConfig();
        config.num_opponents = 1;
        config.opponent_budget_level = flags.opponents[i];
        MultiplayerGame game(base, config);
        const CellRecord cell = runner.Cell(
            StrFormat("%s|%s|b_op=%d", dataset_name.c_str(), method.c_str(),
                      flags.opponents[i]),
            game, method, attacker_budget, flags.seed + 1, flags.repeats);
        if (method == "MSOPDS") {
          msopds_series.push_back(cell.mean_average_rating);
        } else {
          baseline_best[i] =
              std::max(baseline_best[i], cell.mean_average_rating);
        }
        row.push_back(cell);
      }
      PrintRow(method, row);
    }
    if (msopds_series.size() == flags.opponents.size()) {
      std::printf(
          "  -> MSOPDS rbar drop across b_op sweep: %.4f; best baseline "
          "drop: %.4f (paper: MSOPDS suffers smaller degradation)\n",
          msopds_series.front() - msopds_series.back(),
          baseline_best.front() - baseline_best.back());
    }
  }
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
