// Quantized-serving A/B bench (DESIGN.md §15): publishes one synthetic
// MF snapshot at fp64 / fp16 / int8 and measures, per precision,
//
//   * snapshot payload bytes and factor bytes per user row (the memory
//     the quantized formats shrink),
//   * the serve-dot hot path in isolation: one user row scored against
//     every item row through the width-matched kernel, single thread,
//   * batched TopKForUsers QPS at each --threads entry,
//   * ranking fidelity vs the fp64 reference (mean top-k overlap and
//     top-1 agreement over a user sample — the bench-side echo of the
//     ctest -L quant ranking-parity bounds).
//
// Cells run --reps times; the committed numbers use the min with median
// and spread recorded per cell (bench_util.h RepStats), matching the
// simd_bench reporter. tools/bench_snapshot.sh --quant writes the
// committed BENCH_quant.json at the repo root.
//
// Flags:
//   --users=N --items=N --dim=D   synthetic snapshot size (default
//                                 2000 x 4000 x 64)
//   --k=N                         list length (default 10)
//   --threads=a,b                 kernel thread counts (default 1,4)
//   --reps=N                      repetitions per cell (default 3)
//   --dot_ms=F                    min milliseconds per dot repetition
//                                 (default 50)
//   --sample_users=N              users scored per TopK/fidelity cell
//                                 (default 256)
//   --seed=N                      RNG seed (default 7)
//   --json_out=PATH               output table (default BENCH_quant.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "recsys/matrix_factorization.h"
#include "serve/model_snapshot.h"
#include "serve/quantize.h"
#include "serve/topk.h"
#include "tensor/simd.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

struct QuantBenchFlags {
  int64_t users = 2000;
  int64_t items = 4000;
  int64_t dim = 64;
  int k = 10;
  std::vector<int> threads = {1, 4};
  int reps = 3;
  double dot_ms = 50.0;
  int64_t sample_users = 256;
  uint64_t seed = 7;
  std::string json_out = "BENCH_quant.json";

  static QuantBenchFlags Parse(int argc, char** argv) {
    QuantBenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&](const char* prefix) -> const char* {
        const size_t n = std::string(prefix).size();
        if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
        return nullptr;
      };
      if (const char* v = value_of("--users=")) {
        flags.users = std::atoll(v);
      } else if (const char* v = value_of("--items=")) {
        flags.items = std::atoll(v);
      } else if (const char* v = value_of("--dim=")) {
        flags.dim = std::atoll(v);
      } else if (const char* v = value_of("--k=")) {
        flags.k = std::atoi(v);
      } else if (const char* v = value_of("--threads=")) {
        flags.threads.clear();
        for (auto& part : StrSplit(v, ','))
          flags.threads.push_back(std::atoi(part.c_str()));
      } else if (const char* v = value_of("--reps=")) {
        flags.reps = std::atoi(v);
      } else if (const char* v = value_of("--dot_ms=")) {
        flags.dot_ms = std::atof(v);
      } else if (const char* v = value_of("--sample_users=")) {
        flags.sample_users = std::atoll(v);
      } else if (const char* v = value_of("--seed=")) {
        flags.seed = static_cast<uint64_t>(std::atoll(v));
      } else if (const char* v = value_of("--json_out=")) {
        flags.json_out = v;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return flags;
  }
};

// Untrained (randomly initialized) MF snapshot — scoring cost depends
// only on the shapes, and random factors exercise the quantizer's full
// code range.
std::shared_ptr<const serve::ModelSnapshot> MakeFp64Snapshot(
    const QuantBenchFlags& flags) {
  Rng rng(flags.seed);
  Dataset dataset;
  dataset.name = "quant_bench";
  dataset.num_users = flags.users;
  dataset.num_items = flags.items;
  for (int64_t u = 0; u < flags.users; ++u) {
    for (int r = 0; r < 20; ++r) {
      const int64_t item = rng.UniformInt(flags.items);
      if (!dataset.HasRating(u, item)) {
        dataset.ratings.push_back({u, item, 5.0});
      }
    }
  }
  MfConfig config;
  config.latent_dim = flags.dim;
  MatrixFactorization model(flags.users, flags.items, config, 3.5, &rng);
  serve::SnapshotOptions options;
  options.version = 1;
  options.source = "mf-quant-bench";
  return serve::ModelSnapshot::FromModel(&model, dataset, options);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ns per full-catalog user scoring pass (items * one dot each), single
// thread, through the snapshot's width-matched kernel. Each repetition
// runs at least dot_ms of wall time.
RepStats TimeServeDot(const serve::ModelSnapshot& snapshot,
                      const QuantBenchFlags& flags) {
  const int64_t items = snapshot.num_items();
  std::vector<double> samples;
  double sink = 0.0;
  for (int rep = 0; rep < flags.reps; ++rep) {
    const serve::ModelSnapshot::UserRef row =
        snapshot.UserRefFor(rep % snapshot.num_users());
    const int64_t user = rep % snapshot.num_users();
    int64_t passes = 0;
    const auto start = std::chrono::steady_clock::now();
    do {
      for (int64_t i = 0; i < items; ++i) {
        sink += snapshot.ScoreRef(row, user, i);
      }
      ++passes;
    } while (SecondsSince(start) * 1e3 < flags.dot_ms);
    const double elapsed = SecondsSince(start);
    samples.push_back(elapsed * 1e9 / static_cast<double>(passes));
  }
  // Defeat dead-code elimination of the scoring loop.
  if (sink == 0.12345) std::fprintf(stderr, "sink %f\n", sink);
  return RepStats::Of(std::move(samples));
}

// Seconds per TopKForUsers pass over the user sample at `threads`.
RepStats TimeTopK(const serve::ModelSnapshot& snapshot,
                  const std::vector<int64_t>& users, int threads,
                  const QuantBenchFlags& flags) {
  ThreadPool::Global().SetNumThreads(threads);
  serve::TopKOptions options;
  options.k = flags.k;
  std::vector<double> samples;
  for (int rep = 0; rep < flags.reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const serve::TopKResult result =
        serve::TopKForUsers(snapshot, users, options);
    const double elapsed = SecondsSince(start);
    if (result.counts.empty()) std::abort();
    samples.push_back(elapsed * 1e9);  // RepStats fields are ns
  }
  return RepStats::Of(std::move(samples));
}

struct Fidelity {
  double mean_overlap = 1.0;  // |top-k ∩ reference top-k| / k
  double top1_agreement = 1.0;
};

Fidelity MeasureFidelity(const serve::TopKResult& reference,
                         const serve::TopKResult& quantized,
                         int64_t num_users, int k) {
  Fidelity fidelity;
  double overlap_sum = 0.0;
  int64_t top1 = 0;
  for (int64_t u = 0; u < num_users; ++u) {
    const int64_t* ref = reference.ItemsForUser(u);
    const int64_t* got = quantized.ItemsForUser(u);
    int64_t shared = 0;
    for (int64_t a = 0; a < k; ++a) {
      for (int64_t b = 0; b < k; ++b) {
        if (ref[a] >= 0 && ref[a] == got[b]) {
          ++shared;
          break;
        }
      }
    }
    overlap_sum += static_cast<double>(shared) / static_cast<double>(k);
    if (ref[0] == got[0]) ++top1;
  }
  if (num_users > 0) {
    fidelity.mean_overlap = overlap_sum / static_cast<double>(num_users);
    fidelity.top1_agreement =
        static_cast<double>(top1) / static_cast<double>(num_users);
  }
  return fidelity;
}

struct PrecisionRow {
  serve::SnapshotPrecision precision = serve::SnapshotPrecision::kFp64;
  int64_t payload_bytes = 0;
  int64_t factor_bytes = 0;
  double factor_bytes_per_user = 0.0;
  double bytes_reduction = 1.0;  // vs fp64
  RepStats dot;
  double dot_speedup = 1.0;  // vs fp64, min-over-reps basis
  Fidelity fidelity;
  std::vector<std::pair<int, RepStats>> topk;  // (threads, pass time)
};

int Main(int argc, char** argv) {
  const QuantBenchFlags flags = QuantBenchFlags::Parse(argc, argv);
  const auto fp64 = MakeFp64Snapshot(flags);

  const int64_t sample =
      std::min<int64_t>(flags.sample_users, flags.users);
  std::vector<int64_t> users(static_cast<size_t>(sample));
  std::iota(users.begin(), users.end(), 0);
  ThreadPool::Global().SetNumThreads(1);
  serve::TopKOptions topk_options;
  topk_options.k = flags.k;
  const serve::TopKResult reference =
      serve::TopKForUsers(*fp64, users, topk_options);

  std::printf("%-6s %14s %12s %14s %12s %10s %8s\n", "prec", "factor_bytes",
              "B/user", "dot_ns/pass", "speedup", "overlap", "top1");
  std::vector<PrecisionRow> rows;
  for (const serve::SnapshotPrecision precision :
       {serve::SnapshotPrecision::kFp64, serve::SnapshotPrecision::kFp16,
        serve::SnapshotPrecision::kInt8}) {
    const std::shared_ptr<const serve::ModelSnapshot> snapshot =
        precision == serve::SnapshotPrecision::kFp64
            ? fp64
            : serve::QuantizeSnapshot(*fp64, precision);
    PrecisionRow row;
    row.precision = precision;
    row.payload_bytes = snapshot->PayloadBytes();
    row.factor_bytes = snapshot->FactorPayloadBytes();
    row.factor_bytes_per_user =
        static_cast<double>(row.factor_bytes) /
        static_cast<double>(flags.users + flags.items);
    row.dot = TimeServeDot(*snapshot, flags);
    if (precision == serve::SnapshotPrecision::kFp64) {
      row.fidelity = Fidelity{};
    } else {
      ThreadPool::Global().SetNumThreads(1);
      const serve::TopKResult quantized =
          serve::TopKForUsers(*snapshot, users, topk_options);
      row.fidelity = MeasureFidelity(reference, quantized, sample, flags.k);
    }
    for (const int threads : flags.threads) {
      row.topk.emplace_back(threads, TimeTopK(*snapshot, users, threads,
                                              flags));
    }
    rows.push_back(std::move(row));
  }
  const PrecisionRow& base = rows.front();
  for (PrecisionRow& row : rows) {
    row.bytes_reduction = row.factor_bytes > 0
                              ? static_cast<double>(base.factor_bytes) /
                                    static_cast<double>(row.factor_bytes)
                              : 0.0;
    row.dot_speedup = row.dot.min > 0.0 ? base.dot.min / row.dot.min : 0.0;
    std::printf("%-6s %14lld %12.1f %14.0f %12.2f %10.3f %8.3f\n",
                serve::SnapshotPrecisionName(row.precision),
                static_cast<long long>(row.factor_bytes),
                row.factor_bytes_per_user, row.dot.min, row.dot_speedup,
                row.fidelity.mean_overlap, row.fidelity.top1_agreement);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("users").Int(flags.users);
  json.Key("items").Int(flags.items);
  json.Key("dim").Int(flags.dim);
  json.Key("k").Int(flags.k);
  json.Key("reps").Int(flags.reps);
  json.Key("sample_users").Int(sample);
  json.Key("backend").String(simd::BackendName());
  json.Key("vector_active").Bool(simd::VectorActive());
  WriteStaticChecksFields(&json, StaticCheckStats::Sample());
  json.Key("cases").BeginArray();
  for (const PrecisionRow& row : rows) {
    json.BeginObject();
    json.Key("precision").String(serve::SnapshotPrecisionName(row.precision));
    json.Key("payload_bytes").Int(row.payload_bytes);
    json.Key("factor_bytes").Int(row.factor_bytes);
    json.Key("factor_bytes_per_user").Double(row.factor_bytes_per_user);
    json.Key("bytes_reduction_vs_fp64").Double(row.bytes_reduction);
    WriteRepStatsFields(&json, "dot_pass", row.dot);
    json.Key("dot_speedup_vs_fp64").Double(row.dot_speedup);
    json.Key("mean_topk_overlap_vs_fp64").Double(row.fidelity.mean_overlap);
    json.Key("top1_agreement_vs_fp64").Double(row.fidelity.top1_agreement);
    json.Key("topk").BeginArray();
    for (const auto& [threads, stats] : row.topk) {
      json.BeginObject();
      json.Key("threads").Int(threads);
      WriteRepStatsFields(&json, "pass", stats);
      json.Key("qps").Double(stats.min > 0.0
                                 ? static_cast<double>(sample) * 1e9 /
                                       stats.min
                                 : 0.0);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  // Acceptance summary (ISSUE 9): int8 must shrink factor bytes ≥3.5x
  // and speed the single-thread serve dot ≥2x vs the full-precision
  // baseline.
  json.Key("summary").BeginObject();
  for (const PrecisionRow& row : rows) {
    if (row.precision == serve::SnapshotPrecision::kFp64) continue;
    const std::string name = serve::SnapshotPrecisionName(row.precision);
    json.Key(name + "_bytes_reduction").Double(row.bytes_reduction);
    json.Key(name + "_dot_speedup").Double(row.dot_speedup);
  }
  json.EndObject();
  json.EndObject();
  if (WriteJsonFile(flags.json_out, json.TakeString())) {
    std::fprintf(stderr, "[quant] wrote %zu precision row(s) to %s\n",
                 rows.size(), flags.json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
