// Scalar-vs-SIMD and eager-vs-compiled-tape A/B benches (DESIGN.md §14).
//
// Every case runs twice over identical inputs at one kernel thread:
// once with the scalar reference backend forced and once on the probed
// vector backend ("/simd:0" vs "/simd:1"), or once eagerly and once
// through a CompiledTape replay ("/compiled:0" vs "/compiled:1"). The
// kernels are bit-identical across backends and the tape replays are
// bit-identical to eager, so the pairs measure pure speed, never
// accuracy. After the console output the main pairs the rows and writes
// tools/bench_snapshot.sh's BENCH_simd.json speedup table (machine info
// + one entry per pair).
//
// Seeds are pinned so the committed snapshot is reproducible.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/poison_plan.h"
#include "bench/bench_util.h"
#include "core/pds_surrogate.h"
#include "data/demographics.h"
#include "data/synthetic.h"
#include "tensor/compile.h"
#include "tensor/grad.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace msopds {
namespace bench {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = rng->Uniform(-1, 1);
  return t;
}

// The backend the runtime probe picked at startup, before any case
// forces the scalar side of a comparison.
simd::Backend ProbedBackend() {
  static const simd::Backend probed = simd::ActiveBackend();
  return probed;
}

// Forces the "/simd:0|1" side of a pair for the duration of one case.
class ScopedBackend {
 public:
  explicit ScopedBackend(bool vector_side)
      : previous_(simd::internal::SetBackendForTesting(
            vector_side ? ProbedBackend() : simd::Backend::kScalar)) {}
  ~ScopedBackend() { simd::internal::SetBackendForTesting(previous_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  simd::Backend previous_;
};

// --- scalar-vs-SIMD kernel pairs -------------------------------------------

// The forward MatMul hot loop exactly as ops.cc runs it: k-blocked row
// accumulation with contributing k-steps fused four at a time through
// simd::Axpy4, stragglers flushed through Axpy.
void TiledAccumulate(const double* pa, const double* pb, double* po,
                     int64_t n, int64_t k, int64_t m, bool transpose_a) {
  constexpr int64_t kKBlock = 32;
  for (int64_t kb = 0; kb < k; kb += kKBlock) {
    const int64_t kb_end = std::min(kb + kKBlock, k);
    for (int64_t i = 0; i < n; ++i) {
      double* orow = po + i * m;
      double coeff[4];
      const double* rows[4];
      int pending = 0;
      for (int64_t kk = kb; kk < kb_end; ++kk) {
        const double aik = transpose_a ? pa[kk * n + i] : pa[i * k + kk];
        if (aik == 0.0) continue;
        coeff[pending] = aik;
        rows[pending] = pb + kk * m;
        if (++pending == 4) {
          simd::Axpy4(coeff, rows[0], rows[1], rows[2], rows[3], orow, m);
          pending = 0;
        }
      }
      for (int p = 0; p < pending; ++p) {
        simd::Axpy(coeff[p], rows[p], orow, m);
      }
    }
  }
}

void BM_SimdMatMulForward(benchmark::State& state) {
  // The MatMul forward kernel in isolation (ops.cc). The op adds graph
  // and arena bookkeeping identical on both backends; this row measures
  // the kernel they differ in.
  ThreadPool::Global().SetNumThreads(1);
  const int64_t n = state.range(0);
  ScopedBackend backend(state.range(1) != 0);
  Rng rng(1);
  const Tensor a = RandomTensor({n, n}, &rng);
  const Tensor b = RandomTensor({n, n}, &rng);
  std::vector<double> out(static_cast<size_t>(n * n));
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0);
    TiledAccumulate(a.data(), b.data(), out.data(), n, n, n,
                    /*transpose_a=*/false);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_SimdMatMulForward)
    ->ArgNames({"n", "simd"})
    ->Args({128, 0})
    ->Args({128, 1});

void BM_SimdMatMulBackward(benchmark::State& state) {
  // The two backward kernels in isolation (ops.cc): grad_a = g·Bᵀ via
  // the MatMulNT row-dot kernel, grad_b = Aᵀ·g via the MatMulTN fused
  // accumulation kernel.
  ThreadPool::Global().SetNumThreads(1);
  const int64_t n = state.range(0);
  ScopedBackend backend(state.range(1) != 0);
  Rng rng(2);
  const Tensor a = RandomTensor({n, n}, &rng);
  const Tensor b = RandomTensor({n, n}, &rng);
  const Tensor g = RandomTensor({n, n}, &rng);
  std::vector<double> grad_a(static_cast<size_t>(n * n));
  std::vector<double> grad_b(static_cast<size_t>(n * n));
  for (auto _ : state) {
    for (int64_t i = 0; i < n; ++i) {
      const double* grow = g.data() + i * n;
      double* orow = grad_a.data() + i * n;
      for (int64_t j = 0; j < n; ++j) {
        orow[j] = simd::Dot(grow, b.data() + j * n, n);
      }
    }
    std::fill(grad_b.begin(), grad_b.end(), 0.0);
    TiledAccumulate(a.data(), g.data(), grad_b.data(), n, n, n,
                    /*transpose_a=*/true);
    benchmark::DoNotOptimize(grad_a.data());
    benchmark::DoNotOptimize(grad_b.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_SimdMatMulBackward)
    ->ArgNames({"n", "simd"})
    ->Args({96, 0})
    ->Args({96, 1});

void BM_SimdSpMMRowAccumulate(benchmark::State& state) {
  // The SpMM forward hot loop in isolation (ops.cc): scaled-row
  // accumulations into destination rows, with runs of same-destination
  // edges fused four at a time through simd::Axpy4 exactly as the
  // kernel does. Edges are grouped by destination as real rating lists
  // are. The op-level SpMM adds graph bookkeeping on top; this row
  // measures the kernel the backends actually differ in.
  ThreadPool::Global().SetNumThreads(1);
  const int64_t nodes = state.range(0);
  const int64_t per_node = 40;
  const int64_t edges = nodes * per_node;
  const int64_t dim = 64;
  ScopedBackend backend(state.range(1) != 0);
  Rng rng(3);
  std::vector<int64_t> dst, src;
  for (int64_t e = 0; e < edges; ++e) {
    dst.push_back(e / per_node);
    src.push_back(rng.UniformInt(nodes));
  }
  const Tensor w = RandomTensor({edges}, &rng);
  const Tensor x = RandomTensor({nodes, dim}, &rng);
  std::vector<double> out(static_cast<size_t>(nodes * dim), 0.0);
  for (auto _ : state) {
    int64_t e = 0;
    while (e < edges) {
      const int64_t row = dst[static_cast<size_t>(e)];
      double* orow = out.data() + row * dim;
      double coeff[4];
      const double* rows[4];
      int pending = 0;
      while (e < edges && dst[static_cast<size_t>(e)] == row) {
        coeff[pending] = w.data()[e];
        rows[pending] = x.data() + src[static_cast<size_t>(e)] * dim;
        ++e;
        if (++pending == 4) {
          simd::Axpy4(coeff, rows[0], rows[1], rows[2], rows[3], orow, dim);
          pending = 0;
        }
      }
      for (int p = 0; p < pending; ++p) {
        simd::Axpy(coeff[p], rows[p], orow, dim);
      }
    }
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * edges * dim);
}
BENCHMARK(BM_SimdSpMMRowAccumulate)
    ->ArgNames({"n", "simd"})
    ->Args({256, 0})
    ->Args({256, 1});

void BM_SimdElementwiseChain(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(1);
  // L1-resident buffers: the chain measures lane throughput, not DRAM.
  const int64_t n = 1 << 12;
  ScopedBackend backend(state.range(0) != 0);
  Rng rng(4);
  const Tensor a = RandomTensor({n}, &rng);
  const Tensor b = RandomTensor({n}, &rng);
  std::vector<double> t1(static_cast<size_t>(n));
  std::vector<double> t2(static_cast<size_t>(n));
  std::vector<double> out(static_cast<size_t>(n));
  for (auto _ : state) {
    simd::Add(a.data(), b.data(), t1.data(), n);
    simd::Mul(t1.data(), a.data(), t2.data(), n);
    simd::Scale(t2.data(), 0.5, out.data(), n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
}
BENCHMARK(BM_SimdElementwiseChain)->ArgNames({"simd"})->Arg(0)->Arg(1);

void BM_SimdServeScoreRow(benchmark::State& state) {
  // The serve-path scorer: one user factor row dotted against every
  // item factor row (serve/model_snapshot.h ScoreRow).
  ThreadPool::Global().SetNumThreads(1);
  const int64_t items = 512;
  const int64_t dim = 64;
  ScopedBackend backend(state.range(0) != 0);
  Rng rng(5);
  const Tensor user = RandomTensor({dim}, &rng);
  const Tensor factors = RandomTensor({items, dim}, &rng);
  std::vector<double> scores(static_cast<size_t>(items));
  for (auto _ : state) {
    for (int64_t i = 0; i < items; ++i) {
      scores[static_cast<size_t>(i)] =
          simd::Dot(user.data(), factors.data() + i * dim, dim);
    }
    benchmark::DoNotOptimize(scores.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * items * dim);
}
BENCHMARK(BM_SimdServeScoreRow)->ArgNames({"simd"})->Arg(0)->Arg(1);

// --- eager-vs-compiled-tape pairs ------------------------------------------

void BM_TapeUnrolledToySgd(benchmark::State& state) {
  ThreadPool::Global().SetNumThreads(1);
  const bool compiled = state.range(0) != 0;
  Rng rng(7);
  const Tensor theta0 = RandomTensor({256}, &rng);
  const Tensor target = RandomTensor({256}, &rng);
  double loss_out = 0.0;
  std::vector<Tensor> grads;
  const auto build = [&]() {
    Variable x = Param(theta0.Clone());
    Variable h = x;
    for (int step = 0; step < 8; ++step) {
      Variable inner = Sum(Square(Sub(h, Constant(target.Clone()))));
      Variable g = Grad(inner, {h})[0];
      h = Sub(h, ScalarMul(g, 0.05));
    }
    Variable loss = Sum(Square(h));
    loss_out = loss.value().item();
    grads = GradValues(loss, {x});
    return loss;
  };
  std::shared_ptr<CompiledTape> tape;
  if (compiled) tape = CompiledTape::Compile(build);
  for (auto _ : state) {
    if (compiled) {
      tape->Replay(build);
    } else {
      build();
    }
    benchmark::DoNotOptimize(loss_out);
  }
}
BENCHMARK(BM_TapeUnrolledToySgd)->ArgNames({"compiled"})->Arg(0)->Arg(1);

void BM_TapeUnrolledMfAttack(benchmark::State& state) {
  // The planning hot loop: PdsSurrogate::CheckpointedGrad over the
  // unrolled MF inner training (Algorithm 1 steps 6-10), eager vs the
  // compile-once-replay-many path.
  ThreadPool::Global().SetNumThreads(1);
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.num_ratings = 320;
  config.num_social_links = 120;
  Rng world_rng(55);
  Dataset world = GenerateSynthetic(config, &world_rng);
  const Demographics demo = SampleDemographics(world, 1, &world_rng)[0];
  const std::vector<int64_t> fakes = AddFakeUsers(&world, 2);
  for (int64_t fake : fakes) {
    world.ratings.push_back({fake, demo.target_item, 5.0});
  }
  const CapacitySet capacity =
      CapacitySet::MakeComprehensive(world, demo, fakes, 5.0);
  std::vector<int64_t> users = demo.target_audience;
  std::vector<int64_t> items(users.size(), demo.target_item);

  PdsConfig pds;
  pds.embedding_dim = 8;
  pds.inner_steps = 4;
  pds.compile_first_order = state.range(0) != 0;
  Rng rng(22);
  const PdsSurrogate surrogate(world, {&capacity}, pds, &rng);
  Variable xhat = Param(Tensor::Full({capacity.size()}, 0.5));
  const auto readout = [&](const PdsSurrogate::Outcome& outcome) {
    return Neg(Mean(surrogate.Predict(outcome, users, items)));
  };
  // Warm-up call: on the compiled side this is where the tape compiles,
  // so the timed loop measures the steady-state replay path.
  surrogate.CheckpointedGrad({xhat}, readout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surrogate.CheckpointedGrad({xhat}, readout).loss);
  }
}
BENCHMARK(BM_TapeUnrolledMfAttack)->ArgNames({"compiled"})->Arg(0)->Arg(1);

// --- A/B pairing reporter ---------------------------------------------------

class AbReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      // Record every repetition; the table uses the minimum (the
      // least-interfered-with measurement on a shared machine) for the
      // committed ratios, and reports the per-cell median and spread
      // alongside so one noisy repetition is visible in the JSON.
      samples_[run.benchmark_name()].push_back(run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  /// Pairs "<case>/simd:0" with "<case>/simd:1" (scalar vs probed
  /// vector backend) and "<case>/compiled:0" with "<case>/compiled:1"
  /// (eager vs tape replay) and writes the speedup table. Returns the
  /// number of pairs written.
  int WriteTable(const std::string& path) const {
    JsonWriter json;
    json.BeginObject();
    json.Key("backend").String(simd::BackendName());
    json.Key("vector_active").Bool(simd::VectorActive());
    json.Key("threads").Int(1);
    WriteStaticChecksFields(&json, StaticCheckStats::Sample());
    json.Key("cases").BeginArray();
    int pairs = 0;
    for (const auto& [name, baseline_samples] : samples_) {
      for (const std::string kind : {"simd", "compiled"}) {
        const std::string suffix = "/" + kind + ":0";
        if (name.size() < suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
          continue;
        }
        const std::string variant_name =
            name.substr(0, name.size() - 1) + "1";
        const auto variant = samples_.find(variant_name);
        if (variant == samples_.end()) continue;
        const RepStats baseline = RepStats::Of(baseline_samples);
        const RepStats against = RepStats::Of(variant->second);
        json.BeginObject();
        json.Key("name").String(name.substr(0, name.size() - suffix.size()));
        json.Key("kind").String(kind);
        json.Key("baseline").String(kind == "simd" ? "scalar" : "eager");
        json.Key("variant").String(kind == "simd" ? simd::BackendName()
                                                  : "compiled_tape");
        WriteRepStatsFields(&json, "t_baseline", baseline);
        WriteRepStatsFields(&json, "t_variant", against);
        json.Key("speedup").Double(
            against.min > 0.0 ? baseline.min / against.min : 0.0);
        json.EndObject();
        ++pairs;
      }
    }
    json.EndArray();
    json.EndObject();
    if (!WriteJsonFile(path, json.TakeString())) return pairs;
    std::fprintf(stderr, "[simd] wrote %d speedup pair(s) to %s\n", pairs,
                 path.c_str());
    return pairs;
  }

 private:
  // full case name -> adjusted wall time (ns) of every repetition.
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace
}  // namespace bench
}  // namespace msopds

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::msopds::bench::AbReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("MSOPDS_BENCH_SIMD_JSON");
  reporter.WriteTable(path != nullptr ? path : "BENCH_simd.json");
  ::benchmark::Shutdown();
  return 0;
}
