// Micro-benchmarks of the recommender substrates and the PDS pipeline:
// victim training epochs, PDS unrolled evaluation, first-order gradients
// through the unroll, and one full MSO leader update (with CG).
// Also sweeps the eta^p / eta^q ratio ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/parallel_bench.h"

#include "attack/baselines.h"
#include "core/losses.h"
#include "core/mso_optimizer.h"
#include "core/pds_surrogate.h"
#include "data/demographics.h"
#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/trainer.h"
#include "tensor/optim.h"
#include "tensor/grad.h"
#include "util/arena.h"

namespace msopds {
namespace {

struct World {
  Dataset dataset;
  Demographics demo;
  CapacitySet capacity;
  CapacitySet opponent_capacity;

  explicit World(int64_t users) {
    SyntheticConfig config;
    config.num_users = users;
    config.num_items = users + users / 2;
    config.num_ratings = users * 12;
    config.num_social_links = users * 6;
    Rng rng(9);
    dataset = GenerateSynthetic(config, &rng);
    demo = SampleDemographics(dataset, 1, &rng)[0];
    const auto fakes = AddFakeUsers(&dataset, users / 25 + 1);
    for (int64_t fake : fakes) {
      dataset.ratings.push_back({fake, demo.target_item, 5.0});
    }
    capacity = CapacitySet::MakeComprehensive(dataset, demo, fakes, 5.0);
    opponent_capacity = CapacitySet::MakeRatingOnly(dataset, demo, 1.0);
  }
};

void BM_VictimTrainingEpoch(benchmark::State& state) {
  World world(state.range(0));
  Rng rng(1);
  HetRecSys model(world.dataset, HetRecSysConfig{}, &rng);
  std::vector<Variable>* params = model.MutableParams();
  Adam optimizer(0.05);
  for (auto _ : state) {
    Variable loss = model.TrainingLoss(world.dataset.ratings);
    optimizer.Step(params, GradValues(loss, *params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world.dataset.ratings.size()));
}
BENCHMARK(BM_VictimTrainingEpoch)->Arg(100)->Arg(300);

void BM_PdsUnrolledForward(benchmark::State& state) {
  World world(state.range(0));
  PdsConfig config;
  Rng rng(2);
  PdsSurrogate surrogate(world.dataset, {&world.capacity}, config, &rng);
  Variable xhat = Param(Tensor::Full({world.capacity.size()}, 0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(surrogate.TrainUnrolled({xhat}));
  }
}
BENCHMARK(BM_PdsUnrolledForward)->Arg(100)->Arg(300);

void BM_PdsGradientThroughUnroll(benchmark::State& state) {
  World world(state.range(0));
  PdsConfig config;
  Rng rng(3);
  PdsSurrogate surrogate(world.dataset, {&world.capacity}, config, &rng);
  std::vector<int64_t> users = world.demo.target_audience;
  std::vector<int64_t> items(users.size(), world.demo.target_item);
  for (auto _ : state) {
    Variable xhat = Param(Tensor::Full({world.capacity.size()}, 0.5));
    const auto outcome = surrogate.TrainUnrolled({xhat});
    Variable loss = Neg(Mean(surrogate.Predict(outcome, users, items)));
    benchmark::DoNotOptimize(GradValues(loss, {xhat}));
  }
}
BENCHMARK(BM_PdsGradientThroughUnroll)->Arg(100)->Arg(300);

void BM_MsoLeaderIteration(benchmark::State& state) {
  // One full MSO outer iteration: binarize, unrolled losses, gradients,
  // CG Hessian solve, mixed vector-Jacobian, updates.
  World world(state.range(0));
  PdsConfig pds_config;
  Rng rng(4);
  PdsSurrogate surrogate(world.dataset,
                         {&world.capacity, &world.opponent_capacity},
                         pds_config, &rng);
  std::vector<int64_t> tu = world.demo.target_audience;
  std::vector<int64_t> ti(tu.size(), world.demo.target_item);
  std::vector<int64_t> cu, ci;
  for (int64_t user : world.demo.target_audience) {
    for (int64_t item : world.demo.compete_items) {
      cu.push_back(user);
      ci.push_back(item);
    }
  }
  const int64_t num_compete =
      static_cast<int64_t>(world.demo.compete_items.size());
  MsoOptimizer::LossFn losses = [&](const std::vector<Variable>& xhats) {
    const auto outcome = surrogate.TrainUnrolled(xhats);
    Variable tp = surrogate.Predict(outcome, tu, ti);
    Variable cp = surrogate.Predict(outcome, cu, ci);
    return std::vector<Variable>{
        ComprehensiveLossFromPredictions(tp, cp, num_compete, false),
        ComprehensiveLossFromPredictions(tp, cp, num_compete, true)};
  };
  MsoConfig mso;
  mso.outer_iterations = 1;
  const MsoOptimizer optimizer(mso);
  Rng iv_rng(5);
  ImportanceVector leader(&world.capacity, &iv_rng);
  ImportanceVector follower(&world.opponent_capacity, &iv_rng);
  const Budget leader_budget{10, 20, 10};
  const Budget follower_budget{10, 0, 0};
  for (auto _ : state) {
    optimizer.Optimize(losses, {&leader, &follower},
                       {leader_budget, follower_budget});
  }
}
BENCHMARK(BM_MsoLeaderIteration)->Arg(100)->Arg(200);

// Serial-vs-parallel comparison of a full victim training epoch (the
// end-to-end path every sweep cell spends most of its time in); rows
// pair into BENCH_parallel_recsys.json. Results are bit-identical at
// either thread count — only the wall time may differ.
void BM_VictimTrainingEpochParallel(benchmark::State& state) {
  bench::SetThreadsFromState(state);
  World world(state.range(0));
  Rng rng(11);
  HetRecSys model(world.dataset, HetRecSysConfig{}, &rng);
  std::vector<Variable>* params = model.MutableParams();
  Adam optimizer(0.05);
  for (auto _ : state) {
    Variable loss = model.TrainingLoss(world.dataset.ratings);
    optimizer.Step(params, GradValues(loss, *params));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world.dataset.ratings.size()));
}
BENCHMARK(BM_VictimTrainingEpochParallel)
    ->Apply([](benchmark::internal::Benchmark* b) {
      bench::ParallelArgs(b, {300});
    });

// --- Memory-profile cases (collected into BENCH_memory_recsys.json). ---

void BM_MemVictimEpochAllocs(benchmark::State& state) {
  // Heap allocations per victim training epoch with the arena off
  // (arena:0) vs on (arena:1); one warm-up epoch populates the pool.
  const bool arena_on = state.range(0) != 0;
  World world(100);
  Rng rng(21);
  HetRecSys model(world.dataset, HetRecSysConfig{}, &rng);
  std::vector<Variable>* params = model.MutableParams();
  Adam optimizer(0.05);
  Arena& arena = Arena::Global();
  const bool previous = arena.SetEnabled(arena_on);
  arena.Trim();
  {
    Variable loss = model.TrainingLoss(world.dataset.ratings);
    optimizer.Step(params, GradValues(loss, *params));
  }
  arena.ResetStats();
  int64_t epochs = 0;
  for (auto _ : state) {
    Variable loss = model.TrainingLoss(world.dataset.ratings);
    optimizer.Step(params, GradValues(loss, *params));
    ++epochs;
  }
  const ArenaStats stats = arena.stats();
  const double denom = epochs > 0 ? static_cast<double>(epochs) : 1.0;
  state.counters["mem_arena_on"] = arena_on ? 1.0 : 0.0;
  state.counters["mem_allocs_per_step"] =
      static_cast<double>(stats.alloc_calls) / denom;
  state.counters["mem_heap_allocs_per_step"] =
      static_cast<double>(stats.heap_allocs()) / denom;
  state.counters["mem_arena_hit_rate"] = stats.hit_rate();
  arena.SetEnabled(previous);
  arena.Trim();
}
BENCHMARK(BM_MemVictimEpochAllocs)->ArgName("arena")->Arg(0)->Arg(1);

void BM_MemPdsCheckpointSweep(benchmark::State& state) {
  // Peak tape bytes vs checkpoint_every for the first-order PDS planning
  // gradient (PdsSurrogate::CheckpointedGrad). k:0 runs the full tape;
  // the gradients are bit-identical at every setting (asserted by
  // mem_bit_identical against the k:0 reference).
  const int k = static_cast<int>(state.range(0));
  World world(100);
  PdsConfig config;
  config.inner_steps = 8;
  Rng rng(22);
  auto make_surrogate = [&](int checkpoint_every) {
    PdsConfig c = config;
    c.checkpoint_every = checkpoint_every;
    Rng local(22);
    return PdsSurrogate(world.dataset, {&world.capacity}, c, &local);
  };
  const PdsSurrogate surrogate = make_surrogate(k);
  const PdsSurrogate reference_surrogate = make_surrogate(0);
  std::vector<int64_t> users = world.demo.target_audience;
  std::vector<int64_t> items(users.size(), world.demo.target_item);
  Variable xhat = Param(Tensor::Full({world.capacity.size()}, 0.5));
  auto readout = [&](const PdsSurrogate& s) {
    return [&s, &users, &items](const PdsSurrogate::Outcome& outcome) {
      return Neg(Mean(s.Predict(outcome, users, items)));
    };
  };
  const PdsSurrogate::FirstOrderResult reference =
      reference_surrogate.CheckpointedGrad({xhat},
                                           readout(reference_surrogate));

  Arena& arena = Arena::Global();
  arena.ResetPeak();
  const int64_t bytes_before = arena.stats().bytes_live;
  const PdsSurrogate::FirstOrderResult probe =
      surrogate.CheckpointedGrad({xhat}, readout(surrogate));
  const int64_t bytes_peak = arena.stats().high_water_bytes - bytes_before;
  const bool identical =
      probe.gradients[0].size() == reference.gradients[0].size() &&
      std::memcmp(probe.gradients[0].data(), reference.gradients[0].data(),
                  static_cast<size_t>(probe.gradients[0].size()) *
                      sizeof(double)) == 0 &&
      probe.loss == reference.loss;

  for (auto _ : state) {
    benchmark::DoNotOptimize(surrogate.CheckpointedGrad({xhat},
                                                        readout(surrogate)));
  }
  state.counters["mem_checkpoint_every"] = static_cast<double>(k);
  state.counters["mem_bytes_peak"] = static_cast<double>(bytes_peak);
  state.counters["mem_bit_identical"] = identical ? 1.0 : 0.0;
}
BENCHMARK(BM_MemPdsCheckpointSweep)
    ->ArgName("k")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void BM_StepRatioAblation(benchmark::State& state) {
  // eta^p fixed at eta^q / ratio; reports the leader loss reached after
  // 5 iterations for each ratio (larger counter = stronger separation of
  // time scales, the push-pull condition).
  const int ratio = static_cast<int>(state.range(0));
  World world(120);
  PdsConfig pds_config;
  pds_config.inner_steps = 3;
  Rng rng(6);
  PdsSurrogate surrogate(world.dataset,
                         {&world.capacity, &world.opponent_capacity},
                         pds_config, &rng);
  std::vector<int64_t> tu = world.demo.target_audience;
  std::vector<int64_t> ti(tu.size(), world.demo.target_item);
  std::vector<int64_t> cu, ci;
  for (int64_t user : world.demo.target_audience) {
    for (int64_t item : world.demo.compete_items) {
      cu.push_back(user);
      ci.push_back(item);
    }
  }
  const int64_t num_compete =
      static_cast<int64_t>(world.demo.compete_items.size());
  MsoOptimizer::LossFn losses = [&](const std::vector<Variable>& xhats) {
    const auto outcome = surrogate.TrainUnrolled(xhats);
    Variable tp = surrogate.Predict(outcome, tu, ti);
    Variable cp = surrogate.Predict(outcome, cu, ci);
    return std::vector<Variable>{
        ComprehensiveLossFromPredictions(tp, cp, num_compete, false),
        ComprehensiveLossFromPredictions(tp, cp, num_compete, true)};
  };
  double final_loss = 0.0;
  for (auto _ : state) {
    MsoConfig mso;
    mso.follower_step = 0.05;
    mso.leader_step = 0.05 / ratio;
    mso.outer_iterations = 5;
    Rng iv_rng(7);
    ImportanceVector leader(&world.capacity, &iv_rng);
    ImportanceVector follower(&world.opponent_capacity, &iv_rng);
    const auto history =
        MsoOptimizer(mso).Optimize(losses, {&leader, &follower},
                                   {Budget{10, 20, 10}, Budget{10, 0, 0}});
    final_loss = history.back().leader_loss;
  }
  state.counters["final_leader_loss"] = final_loss;
}
BENCHMARK(BM_StepRatioAblation)->Arg(2)->Arg(10)->Arg(50);

}  // namespace
}  // namespace msopds

MSOPDS_PARALLEL_BENCH_MAIN("BENCH_parallel_recsys.json",
                           "BENCH_memory_recsys.json");
