#ifndef MSOPDS_BENCH_BENCH_UTIL_H_
#define MSOPDS_BENCH_BENCH_UTIL_H_

// Shared flag parsing and table formatting for the experiment benches.
// Every table/figure binary accepts:
//   --scale=F      synthetic dataset scale (default 0.12; paper size = 1.0)
//   --repeats=N    games averaged per cell (default 1)
//   --seed=N       base RNG seed (default 7)
//   --datasets=a,b comma list from {ciao, epinions, librarything}
//   --budgets=2,3  attacker budget levels b
//   --opponents=1,2 opponent counts (fig6) / opponent budgets (fig7)
//   --methods=a,b  override the method list

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/string_util.h"

namespace msopds {

struct BenchFlags {
  double scale = 0.12;
  /// 0 = "use the bench's own default" (see ResolveRepeats).
  int repeats = 0;
  uint64_t seed = 7;
  std::vector<std::string> datasets = {"ciao", "epinions", "librarything"};
  std::vector<int> budgets = {2, 3, 4, 5};
  std::vector<int> opponents = {1, 2, 3, 4};
  std::vector<std::string> methods;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&](const char* prefix) -> const char* {
        const size_t n = std::string(prefix).size();
        if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
        return nullptr;
      };
      if (const char* v = value_of("--scale=")) {
        flags.scale = std::atof(v);
      } else if (const char* v = value_of("--repeats=")) {
        flags.repeats = std::atoi(v);
      } else if (const char* v = value_of("--seed=")) {
        flags.seed = static_cast<uint64_t>(std::atoll(v));
      } else if (const char* v = value_of("--datasets=")) {
        flags.datasets.clear();
        for (auto& part : StrSplit(v, ',')) flags.datasets.push_back(part);
      } else if (const char* v = value_of("--budgets=")) {
        flags.budgets.clear();
        for (auto& part : StrSplit(v, ','))
          flags.budgets.push_back(std::atoi(part.c_str()));
      } else if (const char* v = value_of("--opponents=")) {
        flags.opponents.clear();
        for (auto& part : StrSplit(v, ','))
          flags.opponents.push_back(std::atoi(part.c_str()));
      } else if (const char* v = value_of("--methods=")) {
        flags.methods.clear();
        for (auto& part : StrSplit(v, ',')) flags.methods.push_back(part);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return flags;
  }

  /// Repeats to use given this bench's default.
  int ResolveRepeats(int bench_default) const {
    return repeats > 0 ? repeats : bench_default;
  }
};

/// Prints one table row: method name then (rbar, hr) pairs per column.
inline void PrintRow(const std::string& label,
                     const std::vector<CellStats>& cells) {
  std::printf("%-22s", label.c_str());
  for (const CellStats& cell : cells) {
    std::printf("  %6.4f %6.4f", cell.mean_average_rating,
                cell.mean_hit_rate);
  }
  std::printf("\n");
}

inline void PrintHeader(const std::string& first,
                        const std::vector<std::string>& columns) {
  std::printf("%-22s", first.c_str());
  for (const std::string& column : columns) {
    std::printf("  %13s", column.c_str());
  }
  std::printf("\n%-22s", "");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("  %6s %6s", "rbar", "HR@3");
  }
  std::printf("\n");
}

}  // namespace msopds

#endif  // MSOPDS_BENCH_BENCH_UTIL_H_
