#ifndef MSOPDS_BENCH_BENCH_UTIL_H_
#define MSOPDS_BENCH_BENCH_UTIL_H_

// Shared flag parsing and table formatting for the experiment benches.
// Every table/figure binary accepts:
//   --scale=F      synthetic dataset scale (default 0.12; paper size = 1.0)
//   --repeats=N    games averaged per cell (default 1)
//   --seed=N       base RNG seed (default 7)
//   --datasets=a,b comma list from {ciao, epinions, librarything}
//   --budgets=2,3  attacker budget levels b
//   --opponents=1,2 opponent counts (fig6) / opponent budgets (fig7)
//   --methods=a,b  override the method list
//   --threads=N    kernel thread count (0 = MSOPDS_THREADS / hardware);
//                  metrics are bit-identical at any N, timings are not
//
// Resilience-runtime flags (see DESIGN.md "Resilience runtime"):
//   --checkpoint=PATH       JSONL cell checkpoint file; completed cells are
//                           skipped on rerun, so an interrupted sweep
//                           resumes where it stopped
//   --fault_nan=P           inject NaNs into trainer + surrogate gradient
//                           steps with probability P per step
//   --fault_cg=P            simulated CG operator breakdown probability
//   --fault_seed=N          seed of the deterministic fault streams
//   --fault_crash_cell=N    simulate a harness crash (exit 42) before the
//                           N-th executed (non-resumed) cell

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "core/experiment.h"
#include "serve/engine.h"
#include "util/arena.h"
#include "util/checkpoint.h"
#include "util/determinism_lint.h"
#include "util/fault.h"
#include "util/json_writer.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace msopds {

/// Writes a JSON document (plus trailing newline) to `path`, creating
/// missing parent directories first — "--json_out=out/run1/x.json" must
/// produce the file, not silently skip it. Returns false (with a stderr
/// diagnostic) when the directory or file cannot be created.
inline bool WriteJsonFile(const std::string& path,
                          const std::string& payload) {
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "cannot create directory %s: %s\n",
                   target.parent_path().string().c_str(),
                   ec.message().c_str());
      return false;
    }
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << payload << '\n';
  return out.good();
}

/// Process-lifetime peak resident set in bytes (VmHWM from
/// /proc/self/status, reported by the kernel in kB). Returns 0 where
/// procfs is unavailable — the portable fallback — so callers must treat
/// 0 as "unknown", never as "tiny".
inline int64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atoll(line.c_str() + 6) * 1024;
    }
  }
  return 0;
}

/// Resets the kernel's peak-RSS watermark (Linux: "5" into
/// /proc/self/clear_refs) so a bench can attribute peaks to phases —
/// scale_bench splits ingest from training this way. Returns false where
/// the platform does not support it; callers then report one
/// whole-process peak instead of per-phase peaks.
inline bool ResetPeakRss() {
  std::ofstream clear_refs("/proc/self/clear_refs");
  if (!clear_refs.is_open()) return false;
  clear_refs << "5";
  clear_refs.flush();
  return clear_refs.good();
}

/// Point-in-time memory snapshot: process peak RSS (PeakRssBytes; 0
/// where procfs is unavailable) plus the tensor arena's counters.
/// Sample() at the end of a bench to report how much memory the run
/// actually touched alongside the arena's own accounting of live /
/// cached / high-water tape bytes.
struct MemStats {
  int64_t peak_rss_kb = 0;
  ArenaStats arena;

  static MemStats Sample() {
    MemStats stats;
    stats.arena = Arena::Global().stats();
    stats.peak_rss_kb = PeakRssBytes() / 1024;
    return stats;
  }
};

/// One BENCH_scale.json row: synthetic dataset size × storage mode, with
/// the ingest and training phases' wall time and peak RSS reported
/// separately (ResetPeakRss between the phases where supported).
struct ScaleRowStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_ratings = 0;
  /// "inmem" (whole dataset resident) or "ooc" (shard-at-a-time).
  std::string mode = "inmem";
  /// Shard count of the out-of-core arms; 0 for the in-memory arm.
  int64_t num_shards = 0;
  double ingest_seconds = 0.0;
  double train_seconds = 0.0;
  int64_t ingest_peak_rss_bytes = 0;
  int64_t train_peak_rss_bytes = 0;
  /// Largest single shard file; the out-of-core working-set bound.
  int64_t peak_shard_bytes = 0;
  double final_loss = 0.0;
};

/// Emits one scale-trajectory row into the current JSON object. Call
/// between Key/Value pairs of an open object, like WriteRobustnessFields.
inline void WriteScaleFields(JsonWriter* json, const ScaleRowStats& row) {
  json->Key("users").Int(row.num_users);
  json->Key("items").Int(row.num_items);
  json->Key("ratings").Int(row.num_ratings);
  json->Key("mode").String(row.mode);
  json->Key("shards").Int(row.num_shards);
  json->Key("ingest_seconds").Double(row.ingest_seconds);
  json->Key("train_seconds").Double(row.train_seconds);
  json->Key("ingest_peak_rss_bytes").Int(row.ingest_peak_rss_bytes);
  json->Key("train_peak_rss_bytes").Int(row.train_peak_rss_bytes);
  json->Key("peak_shard_bytes").Int(row.peak_shard_bytes);
  json->Key("final_loss").Double(row.final_loss);
}

/// Static-analysis posture the bench numbers were produced under: the
/// determinism linter's counts over the source tree this binary was
/// built from (DESIGN.md §13), and whether the Clang thread-safety
/// annotations were active in this build. Benches record it in their
/// JSON headers the same way they record thread counts and fault
/// plans, so a result file carries the hygiene of its build.
struct StaticCheckStats {
  /// False when the build does not know its source root (or the tree
  /// moved): the lint_* fields are then meaningless zeros.
  bool sampled = false;
  int64_t lint_files = 0;
  int64_t lint_checks = 0;
  int64_t lint_findings = 0;
  /// True when util/sync.h's annotations expand to real Clang
  /// attributes in this translation unit (Clang builds), i.e. a
  /// -Wthread-safety pass over this build would be enforceable.
  bool thread_safety_annotations = false;

  static StaticCheckStats Sample() {
    StaticCheckStats stats;
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
    stats.thread_safety_annotations = true;
#endif
#endif
#ifdef MSOPDS_SOURCE_ROOT
    const std::filesystem::path src =
        std::filesystem::path(MSOPDS_SOURCE_ROOT) / "src";
    std::error_code ec;
    if (std::filesystem::is_directory(src, ec)) {
      const LintReport report = RunDeterminismLint(src.string());
      stats.sampled = true;
      stats.lint_files = report.files_scanned;
      stats.lint_checks = report.checks_run;
      stats.lint_findings = static_cast<int64_t>(report.findings.size());
    }
#endif
    return stats;
  }
};

/// Emits one "static_checks" object into the current JSON object.
/// Call between Key/Value pairs of an open object, like
/// WriteRobustnessFields.
inline void WriteStaticChecksFields(JsonWriter* json,
                                    const StaticCheckStats& stats) {
  json->Key("static_checks").BeginObject();
  json->Key("sampled").Bool(stats.sampled);
  json->Key("lint_files").Int(stats.lint_files);
  json->Key("lint_checks").Int(stats.lint_checks);
  json->Key("lint_findings").Int(stats.lint_findings);
  json->Key("lint_clean").Bool(stats.sampled && stats.lint_findings == 0);
  json->Key("thread_safety_annotations").Bool(stats.thread_safety_annotations);
  json->EndObject();
}

/// Emits the serving engine's robustness counters (plus client-side
/// retry totals) into the current JSON object, so BENCH_serving.json
/// rows track the shed/reject/degraded trajectory the same way the perf
/// tables track latency. `precision` is the snapshot storage mode the
/// run published ("fp64" / "fp16" / "int8"), so quantized rows are
/// distinguishable from full-precision ones. Call between Key/Value
/// pairs of an open object.
inline void WriteRobustnessFields(JsonWriter* json,
                                  const serve::EngineStats& stats,
                                  int64_t retries,
                                  const std::string& precision = "fp64") {
  json->Key("precision").String(precision);
  json->Key("admitted").Int(stats.admitted);
  json->Key("rejected").Int(stats.rejected);
  json->Key("shed").Int(stats.shed);
  json->Key("degraded").Int(stats.degraded);
  json->Key("cancelled").Int(stats.cancelled);
  json->Key("retries").Int(retries);
  json->Key("deadline_misses").Int(stats.deadline_misses);
  json->Key("max_queue_depth").Int(stats.max_queue_depth);
  json->Key("publish_failures").Int(stats.publish_failures);
}

/// Summary of one benchmark cell's repetitions. The committed speedup
/// tables use the min (least-noise estimate); median and relative
/// spread ride along so a single noisy repetition is visible in the
/// JSON instead of silently shifting a claim.
struct RepStats {
  double min = 0.0;
  double median = 0.0;
  /// (max - min) / min; 0 for a single repetition.
  double spread = 0.0;

  static RepStats Of(std::vector<double> samples) {
    RepStats stats;
    if (samples.empty()) return stats;
    std::sort(samples.begin(), samples.end());
    stats.min = samples.front();
    stats.median = samples[samples.size() / 2];
    if (stats.min > 0.0) {
      stats.spread = (samples.back() - samples.front()) / stats.min;
    }
    return stats;
  }
};

/// Emits one cell's repetition statistics under `prefix` ("<prefix>_ns",
/// "<prefix>_median_ns", "<prefix>_spread") into the current object.
inline void WriteRepStatsFields(JsonWriter* json, const std::string& prefix,
                                const RepStats& stats) {
  json->Key(prefix + "_ns").Double(stats.min);
  json->Key(prefix + "_median_ns").Double(stats.median);
  json->Key(prefix + "_spread").Double(stats.spread);
}

struct BenchFlags {
  double scale = 0.12;
  /// 0 = "use the bench's own default" (see ResolveRepeats).
  int repeats = 0;
  uint64_t seed = 7;
  std::vector<std::string> datasets = {"ciao", "epinions", "librarything"};
  std::vector<int> budgets = {2, 3, 4, 5};
  std::vector<int> opponents = {1, 2, 3, 4};
  std::vector<std::string> methods;
  /// Kernel thread count; 0 keeps the global pool's default
  /// (MSOPDS_THREADS or hardware concurrency).
  int threads = 0;

  /// Checkpoint file (JSONL); empty = no persistence.
  std::string checkpoint;
  /// Fault-injection plan (all zero/disabled by default).
  double fault_nan = 0.0;
  double fault_cg = 0.0;
  uint64_t fault_seed = 17;
  int fault_crash_cell = -1;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value_of = [&](const char* prefix) -> const char* {
        const size_t n = std::string(prefix).size();
        if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
        return nullptr;
      };
      if (const char* v = value_of("--scale=")) {
        flags.scale = std::atof(v);
      } else if (const char* v = value_of("--repeats=")) {
        flags.repeats = std::atoi(v);
      } else if (const char* v = value_of("--seed=")) {
        flags.seed = static_cast<uint64_t>(std::atoll(v));
      } else if (const char* v = value_of("--datasets=")) {
        flags.datasets.clear();
        for (auto& part : StrSplit(v, ',')) flags.datasets.push_back(part);
      } else if (const char* v = value_of("--budgets=")) {
        flags.budgets.clear();
        for (auto& part : StrSplit(v, ','))
          flags.budgets.push_back(std::atoi(part.c_str()));
      } else if (const char* v = value_of("--opponents=")) {
        flags.opponents.clear();
        for (auto& part : StrSplit(v, ','))
          flags.opponents.push_back(std::atoi(part.c_str()));
      } else if (const char* v = value_of("--methods=")) {
        flags.methods.clear();
        for (auto& part : StrSplit(v, ',')) flags.methods.push_back(part);
      } else if (const char* v = value_of("--threads=")) {
        flags.threads = std::atoi(v);
      } else if (const char* v = value_of("--checkpoint=")) {
        flags.checkpoint = v;
      } else if (const char* v = value_of("--fault_nan=")) {
        flags.fault_nan = std::atof(v);
      } else if (const char* v = value_of("--fault_cg=")) {
        flags.fault_cg = std::atof(v);
      } else if (const char* v = value_of("--fault_seed=")) {
        flags.fault_seed = static_cast<uint64_t>(std::atoll(v));
      } else if (const char* v = value_of("--fault_crash_cell=")) {
        flags.fault_crash_cell = std::atoi(v);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return flags;
  }

  /// Repeats to use given this bench's default.
  int ResolveRepeats(int bench_default) const {
    return repeats > 0 ? repeats : bench_default;
  }

  FaultConfig MakeFaultConfig() const {
    FaultConfig config;
    config.seed = fault_seed;
    config.trainer_nan_probability = fault_nan;
    config.surrogate_nan_probability = fault_nan;
    config.solver_breakdown_probability = fault_cg;
    config.crash_at_cell = fault_crash_cell;
    return config;
  }
};

/// Runs one sweep's cells with checkpoint/resume and fault injection
/// (the bench-layer leg of the resilience runtime). Completed cells found
/// in the checkpoint are returned without re-running the game; fresh
/// cells run through RunRepeatedCellChecked, so a cell that exhausts the
/// recovery budget degrades to an explicit recorded failure instead of a
/// silent NaN row. Installs the fault plan from the flags on
/// construction, so fault-free runs with no checkpoint behave (and
/// print) exactly as before this layer existed.
class SweepRunner {
 public:
  explicit SweepRunner(const BenchFlags& flags) : store_(flags.checkpoint) {
    FaultInjector::Global().Configure(flags.MakeFaultConfig());
    if (flags.threads > 0) {
      ThreadPool::Global().SetNumThreads(flags.threads);
    }
    threads_ = ThreadPool::Global().num_threads();
    if (store_.persistent() && store_.size() > 0) {
      std::fprintf(stderr,
                   "[checkpoint] %s: %zu completed cell(s) will be skipped\n",
                   store_.path().c_str(), store_.size());
    }
  }

  /// Runs (or restores) the cell identified by `key`. Simulates the
  /// configured harness crash (exit 42) before the crash_at_cell-th
  /// *executed* cell, so a rerun with the same checkpoint resumes past
  /// the crash point.
  CellRecord Cell(const std::string& key, const MultiplayerGame& game,
                  const std::string& method, int budget_level, uint64_t seed,
                  int repeats) {
    if (const CellRecord* cached = store_.Find(key)) {
      // Metrics are thread-count invariant, but a sweep whose timings mix
      // cells run at different thread counts is not one experiment.
      // Refuse to resume rather than produce a silently inconsistent run.
      if (cached->threads != threads_) {
        std::fprintf(stderr,
                     "[checkpoint] %s:%lld: cell '%s' was recorded at %d "
                     "thread(s) by worker %d but this run uses %d; rerun "
                     "with --threads=%d or a fresh --checkpoint file\n",
                     store_.path().c_str(),
                     static_cast<long long>(cached->source_line), key.c_str(),
                     cached->threads, cached->worker_id, threads_,
                     cached->threads);
        std::exit(2);
      }
      return *cached;
    }
    if (FaultInjector::Global().ShouldCrashAtCell(executed_cells_)) {
      std::fprintf(stderr,
                   "[fault] simulated crash before cell '%s' (executed %d); "
                   "rerun with the same --checkpoint to resume\n",
                   key.c_str(), executed_cells_);
      std::exit(42);
    }
    ++executed_cells_;
    const CellOutcome outcome =
        RunRepeatedCellChecked(game, method, budget_level, seed, repeats);
    CellRecord record;
    record.key = key;
    record.ok = outcome.ok;
    record.mean_average_rating = outcome.stats.mean_average_rating;
    record.mean_hit_rate = outcome.stats.mean_hit_rate;
    record.repeats = outcome.stats.repeats;
    record.unhealthy_repeats = outcome.unhealthy_repeats;
    record.threads = threads_;
    record.worker_id = worker_id_;
    record.error = outcome.error;
    store_.Append(record);
    return record;
  }

  /// Executed (non-resumed) cells so far.
  int executed_cells() const { return executed_cells_; }

  /// Kernel thread count this sweep runs (and records) its cells at.
  int threads() const { return threads_; }

  /// Stamps records with a sweep-orchestrator worker id (0, the
  /// default, is the single-process driver).
  void set_worker_id(int worker_id) { worker_id_ = worker_id; }

 private:
  CheckpointStore store_;
  int executed_cells_ = 0;
  int threads_ = 1;
  int worker_id_ = 0;
};

/// Prints one table row: method name then (rbar, hr) pairs per column.
inline void PrintRow(const std::string& label,
                     const std::vector<CellStats>& cells) {
  std::printf("%-22s", label.c_str());
  for (const CellStats& cell : cells) {
    std::printf("  %6.4f %6.4f", cell.mean_average_rating,
                cell.mean_hit_rate);
  }
  std::printf("\n");
}

/// Record-aware row: recorded-failure cells print as FAIL instead of a
/// bogus 0.0000 metric pair; healthy cells print exactly like PrintRow.
inline void PrintRow(const std::string& label,
                     const std::vector<CellRecord>& cells) {
  std::printf("%-22s", label.c_str());
  for (const CellRecord& cell : cells) {
    if (cell.ok) {
      std::printf("  %6.4f %6.4f", cell.mean_average_rating,
                  cell.mean_hit_rate);
    } else {
      std::printf("  %6s %6s", "FAIL", "-");
    }
  }
  std::printf("\n");
}

inline void PrintHeader(const std::string& first,
                        const std::vector<std::string>& columns) {
  std::printf("%-22s", first.c_str());
  for (const std::string& column : columns) {
    std::printf("  %13s", column.c_str());
  }
  std::printf("\n%-22s", "");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("  %6s %6s", "rbar", "HR@3");
  }
  std::printf("\n");
}

}  // namespace msopds

#endif  // MSOPDS_BENCH_BENCH_UTIL_H_
