// Micro-benchmarks of the autodiff substrate and the conjugate-gradient
// solver: the kernels whose cost dominates MSOPDS planning (Algorithm 1
// steps 6-10). Uses google-benchmark.

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/parallel_bench.h"
#include "solver/conjugate_gradient.h"
#include "tensor/grad.h"
#include "tensor/ops.h"
#include "tensor/remat.h"
#include "util/arena.h"
#include "util/rng.h"

namespace msopds {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = rng->Uniform(-1, 1);
  return t;
}

void BM_MatMulForward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Variable a = Constant(RandomTensor({n, n}, &rng));
  Variable b = Constant(RandomTensor({n, n}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).value().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulForward)->Arg(16)->Arg(64)->Arg(128);

void BM_MatMulBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Variable a = Param(RandomTensor({n, n}, &rng));
  Variable b = Param(RandomTensor({n, n}, &rng));
  for (auto _ : state) {
    Variable loss = Sum(MatMul(a, b));
    benchmark::DoNotOptimize(GradValues(loss, {a, b}));
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(16)->Arg(64);

void BM_SpMMForwardBackward(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  const int64_t edges = nodes * 10;
  const int64_t dim = 8;
  Rng rng(3);
  std::vector<int64_t> dst, src;
  for (int64_t e = 0; e < edges; ++e) {
    dst.push_back(rng.UniformInt(nodes));
    src.push_back(rng.UniformInt(nodes));
  }
  const IndexVec dst_index = MakeIndex(std::move(dst));
  const IndexVec src_index = MakeIndex(std::move(src));
  Variable w = Param(RandomTensor({edges}, &rng));
  Variable x = Param(RandomTensor({nodes, dim}, &rng));
  for (auto _ : state) {
    Variable out = SpMM(dst_index, src_index, w, x, nodes);
    Variable loss = Sum(Square(out));
    benchmark::DoNotOptimize(GradValues(loss, {w, x}));
  }
  state.SetItemsProcessed(state.iterations() * edges * dim);
}
BENCHMARK(BM_SpMMForwardBackward)->Arg(256)->Arg(1024);

void BM_SegmentSoftmaxBackward(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  const int64_t edges = nodes * 8;
  Rng rng(4);
  std::vector<int64_t> seg;
  for (int64_t e = 0; e < edges; ++e) seg.push_back(rng.UniformInt(nodes));
  const IndexVec seg_index = MakeIndex(std::move(seg));
  Variable scores = Param(RandomTensor({edges}, &rng));
  for (auto _ : state) {
    Variable out = SegmentSoftmax(scores, seg_index, nodes);
    benchmark::DoNotOptimize(GradValues(Sum(Square(out)), {scores}));
  }
}
BENCHMARK(BM_SegmentSoftmaxBackward)->Arg(256)->Arg(1024);

void BM_DoubleBackwardUnrolledStep(benchmark::State& state) {
  // Hessian-vector product through one recorded SGD step: the inner-most
  // operation of MSO's CG solve.
  const int64_t n = state.range(0);
  Rng rng(5);
  const Tensor theta0 = RandomTensor({n}, &rng);
  const Tensor target = RandomTensor({n}, &rng);
  const Tensor direction = RandomTensor({n}, &rng);
  for (auto _ : state) {
    Variable x = Param(theta0.Clone());
    Variable inner = Sum(Square(Sub(Square(x), Constant(target.Clone()))));
    Variable g = Grad(inner, {x})[0];
    Variable theta1 = Sub(x, ScalarMul(g, 0.1));
    Variable outer = Sum(Square(theta1));
    Variable outer_grad = Grad(outer, {x})[0];
    benchmark::DoNotOptimize(
        HessianVectorProduct(outer_grad, x, direction));
  }
}
BENCHMARK(BM_DoubleBackwardUnrolledStep)->Arg(64)->Arg(512);

// --- Serial-vs-parallel comparison cases (bench/parallel_bench.h). ---
// Each runs at threads:1 and threads:N over identical inputs; the main
// pairs the rows into the BENCH_parallel.json speedup table. Sizes are
// chosen so every kernel spans several chunks of the fixed grid.

void BM_MatMulForwardParallel(benchmark::State& state) {
  bench::SetThreadsFromState(state);
  const int64_t n = state.range(0);
  Rng rng(11);
  Variable a = Constant(RandomTensor({n, n}, &rng));
  Variable b = Constant(RandomTensor({n, n}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).value().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulForwardParallel)
    ->Apply([](benchmark::internal::Benchmark* b) {
      bench::ParallelArgs(b, {128, 256});
    });

void BM_MatMulBackwardParallel(benchmark::State& state) {
  bench::SetThreadsFromState(state);
  const int64_t n = state.range(0);
  Rng rng(12);
  Variable a = Param(RandomTensor({n, n}, &rng));
  Variable b = Param(RandomTensor({n, n}, &rng));
  for (auto _ : state) {
    Variable loss = Sum(MatMul(a, b));
    benchmark::DoNotOptimize(GradValues(loss, {a, b}));
  }
}
BENCHMARK(BM_MatMulBackwardParallel)
    ->Apply([](benchmark::internal::Benchmark* b) {
      bench::ParallelArgs(b, {128, 256});
    });

void BM_SpMMParallel(benchmark::State& state) {
  bench::SetThreadsFromState(state);
  const int64_t nodes = state.range(0);
  const int64_t edges = nodes * 10;
  const int64_t dim = 8;
  Rng rng(13);
  std::vector<int64_t> dst, src;
  for (int64_t e = 0; e < edges; ++e) {
    dst.push_back(rng.UniformInt(nodes));
    src.push_back(rng.UniformInt(nodes));
  }
  const IndexVec dst_index = MakeIndex(std::move(dst));
  const IndexVec src_index = MakeIndex(std::move(src));
  Variable w = Param(RandomTensor({edges}, &rng));
  Variable x = Param(RandomTensor({nodes, dim}, &rng));
  for (auto _ : state) {
    Variable out = SpMM(dst_index, src_index, w, x, nodes);
    Variable loss = Sum(Square(out));
    benchmark::DoNotOptimize(GradValues(loss, {w, x}));
  }
  state.SetItemsProcessed(state.iterations() * edges * dim);
}
BENCHMARK(BM_SpMMParallel)->Apply([](benchmark::internal::Benchmark* b) {
  bench::ParallelArgs(b, {2048, 8192});
});

void BM_SegmentSoftmaxParallel(benchmark::State& state) {
  bench::SetThreadsFromState(state);
  const int64_t nodes = state.range(0);
  const int64_t edges = nodes * 8;
  Rng rng(14);
  std::vector<int64_t> seg;
  for (int64_t e = 0; e < edges; ++e) seg.push_back(rng.UniformInt(nodes));
  const IndexVec seg_index = MakeIndex(std::move(seg));
  Variable scores = Param(RandomTensor({edges}, &rng));
  for (auto _ : state) {
    Variable out = SegmentSoftmax(scores, seg_index, nodes);
    benchmark::DoNotOptimize(GradValues(Sum(Square(out)), {scores}));
  }
}
BENCHMARK(BM_SegmentSoftmaxParallel)
    ->Apply([](benchmark::internal::Benchmark* b) {
      bench::ParallelArgs(b, {4096});
    });

// --- Memory-profile cases (collected into BENCH_memory.json). ---
// Counters prefixed "mem_" are picked up by SpeedupReporter and written
// alongside a process MemStats sample (see bench/parallel_bench.h).

void BM_MemTrainStepAllocs(benchmark::State& state) {
  // Heap allocations per autodiff training step with the arena off
  // (arena:0) vs on (arena:1). One warm-up step populates the free lists
  // so the arena-on row measures the recycling steady state.
  const bool arena_on = state.range(0) != 0;
  const int64_t n = 64;
  Rng rng(21);
  Variable a = Param(RandomTensor({n, n}, &rng));
  Variable b = Param(RandomTensor({n, n}, &rng));
  Arena& arena = Arena::Global();
  const bool previous = arena.SetEnabled(arena_on);
  arena.Trim();
  {
    Variable loss = Sum(MatMul(a, b));
    benchmark::DoNotOptimize(GradValues(loss, {a, b}));
  }
  arena.ResetStats();
  int64_t steps = 0;
  for (auto _ : state) {
    Variable loss = Sum(MatMul(a, b));
    benchmark::DoNotOptimize(GradValues(loss, {a, b}));
    ++steps;
  }
  const ArenaStats stats = arena.stats();
  const double denom = steps > 0 ? static_cast<double>(steps) : 1.0;
  state.counters["mem_arena_on"] = arena_on ? 1.0 : 0.0;
  state.counters["mem_allocs_per_step"] =
      static_cast<double>(stats.alloc_calls) / denom;
  state.counters["mem_heap_allocs_per_step"] =
      static_cast<double>(stats.heap_allocs()) / denom;
  state.counters["mem_arena_hit_rate"] = stats.hit_rate();
  arena.SetEnabled(previous);
  arena.Trim();
}
BENCHMARK(BM_MemTrainStepAllocs)->ArgName("arena")->Arg(0)->Arg(1);

void BM_MemCheckpointUnroll(benchmark::State& state) {
  // Peak tape bytes vs checkpoint_every for an 8-step unrolled training
  // loop (each step records a full inner backward, the shape of the PDS
  // inner loop). k:0 is the full tape; the sweep reports the
  // time-for-memory trade and asserts (mem_bit_identical) that every
  // setting reproduces the full tape's gradient byte for byte.
  const int64_t k = state.range(0);
  const int64_t num_steps = 8;
  const int64_t n = 96;
  Rng rng(22);
  const Tensor theta0 = RandomTensor({n, n}, &rng);
  const Tensor target = RandomTensor({n, n}, &rng);
  Variable coupling = Param(RandomTensor({n, n}, &rng));
  // Remat contract: every op built from the handed state + leaves only.
  auto step = [&](const std::vector<Variable>& s, int64_t) {
    Variable residual = Sub(MatMul(s[0], coupling), Constant(target.Clone()));
    Variable inner = Sum(Square(residual));
    Variable g = Grad(inner, {s[0]})[0];
    return std::vector<Variable>{Sub(s[0], ScalarMul(g, 1e-3))};
  };
  auto terminal = [](const std::vector<Variable>& s) {
    return Sum(Square(s[0]));
  };
  auto run = [&]() {
    return CheckpointedUnrollGrad({theta0}, {coupling}, num_steps, k, step,
                                  terminal);
  };
  const CheckpointedGradResult reference = CheckpointedUnrollGrad(
      {theta0}, {coupling}, num_steps, 0, step, terminal);

  Arena& arena = Arena::Global();
  arena.ResetPeak();
  const int64_t bytes_before = arena.stats().bytes_live;
  const CheckpointedGradResult probe = run();
  const int64_t bytes_peak = arena.stats().high_water_bytes - bytes_before;
  auto bytes_equal = [](const Tensor& x, const Tensor& y) {
    return x.size() == y.size() &&
           std::memcmp(x.data(), y.data(),
                       static_cast<size_t>(x.size()) * sizeof(double)) == 0;
  };
  const bool identical = bytes_equal(probe.input_grads[0],
                                     reference.input_grads[0]) &&
                         bytes_equal(probe.state_grads[0],
                                     reference.state_grads[0]) &&
                         bytes_equal(probe.loss, reference.loss);

  for (auto _ : state) {
    benchmark::DoNotOptimize(run());
  }
  state.counters["mem_checkpoint_every"] = static_cast<double>(k);
  state.counters["mem_bytes_peak"] = static_cast<double>(bytes_peak);
  state.counters["mem_segments"] = static_cast<double>(probe.segments);
  state.counters["mem_bit_identical"] = identical ? 1.0 : 0.0;
}
BENCHMARK(BM_MemCheckpointUnroll)
    ->ArgName("k")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void BM_ConjugateGradientSolve(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  // SPD operator: (A A^T + I) x implemented densely.
  Tensor a = RandomTensor({n, n}, &rng);
  auto apply = [&](const Tensor& v) {
    Tensor tmp({n});
    for (int64_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (int64_t j = 0; j < n; ++j) s += a.at(j, i) * v.at(j);
      tmp.at(i) = s;
    }
    Tensor out({n});
    for (int64_t i = 0; i < n; ++i) {
      double s = v.at(i);
      for (int64_t j = 0; j < n; ++j) s += a.at(i, j) * tmp.at(j);
      out.at(i) = s;
    }
    return out;
  };
  const Tensor b = RandomTensor({n}, &rng);
  CgOptions options;
  options.max_iterations = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConjugateGradient(apply, b, options));
  }
}
BENCHMARK(BM_ConjugateGradientSolve)->Arg(64)->Arg(256);

}  // namespace
}  // namespace msopds

MSOPDS_PARALLEL_BENCH_MAIN("BENCH_parallel.json", "BENCH_memory.json");
