#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_stats.h"
#include "graph/item_graph_builder.h"
#include "graph/undirected_graph.h"
#include "util/rng.h"

namespace msopds {
namespace {

TEST(UndirectedGraphTest, AddAndQueryEdges) {
  UndirectedGraph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(UndirectedGraphTest, RejectsSelfLoopsAndDuplicates) {
  UndirectedGraph g(3);
  EXPECT_FALSE(g.AddEdge(1, 1));
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(UndirectedGraphTest, RemoveEdge) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.RemoveEdge(1, 0));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(1), 1);
}

TEST(UndirectedGraphTest, NeighborsAndDegree) {
  UndirectedGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(3), 1);
  const auto& n = g.Neighbors(0);
  EXPECT_EQ(n.size(), 3u);
}

TEST(UndirectedGraphTest, EdgesAreCanonical) {
  UndirectedGraph g(3);
  g.AddEdge(2, 0);
  g.AddEdge(1, 2);
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const auto& [a, b] : edges) EXPECT_LT(a, b);
}

TEST(UndirectedGraphTest, AppendDirectedEdgesBothDirections) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  std::vector<int64_t> dst, src;
  g.AppendDirectedEdges(&dst, &src);
  ASSERT_EQ(dst.size(), 2u);
  // Both (0<-1) and (1<-0) present.
  const bool forward = dst[0] == 0 && src[0] == 1;
  const bool backward = dst[1] == 1 && src[1] == 0;
  EXPECT_TRUE(forward || (dst[0] == 1 && src[0] == 0));
  EXPECT_TRUE(backward || (dst[1] == 0 && src[1] == 1));
}

TEST(UndirectedGraphTest, AddNodesGrowsIsolated) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1);
  g.AddNodes(2);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.Degree(3), 0);
  EXPECT_TRUE(g.AddEdge(3, 0));
}

TEST(UndirectedGraphTest, OutOfRangeHasEdgeIsFalse) {
  UndirectedGraph g(2);
  EXPECT_FALSE(g.HasEdge(-1, 0));
  EXPECT_FALSE(g.HasEdge(0, 5));
}

TEST(ItemGraphTest, ConnectsHighOverlapPairs) {
  // Items 0 and 1 share all raters; item 2 shares none.
  std::vector<RaterRecord> records = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {3, 2}};
  const UndirectedGraph g = BuildItemGraph(records, 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(ItemGraphTest, ThresholdExcludesWeakOverlap) {
  // Items 0 and 1: raters(0) = {0,1,2,3}, raters(1) = {0}; Jaccard = 1/4.
  std::vector<RaterRecord> records = {
      {0, 0}, {1, 0}, {2, 0}, {3, 0}, {0, 1}};
  const UndirectedGraph g = BuildItemGraph(records, 2);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(ItemGraphTest, ExactlyHalfOverlapIsExcluded) {
  // raters(0) = {0,1}, raters(1) = {0, 2} -> Jaccard = 1/3 < 0.5: excluded.
  // raters(2) = {0,1}: Jaccard(0,2) = 1.0 > 0.5: included.
  std::vector<RaterRecord> records = {{0, 0}, {1, 0}, {0, 1},
                                      {2, 1}, {0, 2}, {1, 2}};
  const UndirectedGraph g = BuildItemGraph(records, 3);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
}

TEST(ItemGraphTest, MinRatersGuards) {
  std::vector<RaterRecord> records = {{0, 0}, {0, 1}};
  ItemGraphOptions options;
  options.min_raters = 2;
  const UndirectedGraph g = BuildItemGraph(records, 2, options);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(ItemGraphTest, PowerUsersAreSkipped) {
  std::vector<RaterRecord> records;
  for (int64_t i = 0; i < 10; ++i) records.push_back({0, i});
  ItemGraphOptions options;
  options.max_items_per_user = 5;
  const UndirectedGraph g = BuildItemGraph(records, 10, options);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphStatsTest, EmptyGraph) {
  const GraphStats stats = ComputeGraphStats(UndirectedGraph(0));
  EXPECT_EQ(stats.num_nodes, 0);
  EXPECT_EQ(stats.connected_components, 0);
}

TEST(GraphStatsTest, TriangleHasFullClustering) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.connected_components, 1);
  EXPECT_EQ(stats.largest_component, 3);
  EXPECT_DOUBLE_EQ(stats.clustering_coefficient, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 2.0);
}

TEST(GraphStatsTest, PathHasZeroClustering) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_DOUBLE_EQ(stats.clustering_coefficient, 0.0);
  EXPECT_EQ(stats.max_degree, 2);
}

TEST(GraphStatsTest, ComponentsAndIsolatedNodes) {
  UndirectedGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.connected_components, 3);
  EXPECT_EQ(stats.isolated_nodes, 1);
  EXPECT_EQ(stats.largest_component, 2);
}

TEST(GraphStatsTest, ToStringMentionsCounts) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1);
  const std::string s = ComputeGraphStats(g).ToString();
  EXPECT_NE(s.find("nodes=2"), std::string::npos);
  EXPECT_NE(s.find("edges=1"), std::string::npos);
}

}  // namespace
}  // namespace msopds
