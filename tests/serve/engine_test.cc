#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/lightgcn.h"
#include "recsys/matrix_factorization.h"
#include "recsys/metrics.h"
#include "recsys/trainer.h"
#include "serve/model_snapshot.h"
#include "serve/topk.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace msopds {
namespace serve {
namespace {

Dataset SmallWorld(uint64_t seed = 21) {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 60;
  config.num_ratings = 500;
  config.num_social_links = 150;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

// The correctness anchor of the serving subsystem: for every model kind,
// thread count, and arena mode, the engine's served lists must be
// BIT-IDENTICAL to the offline reference (recsys/metrics.h TopKItems)
// computed through the live model.
void ExpectServedListsMatchOffline(RatingModel* model, const Dataset& world) {
  std::vector<int64_t> users;
  for (int64_t u = 0; u < world.num_users; ++u) users.push_back(u);
  TopKOptions options;
  options.k = 7;
  const TopKResult offline = TopKItems(model, world, users, options);

  ServingEngine engine;
  engine.Publish(ModelSnapshot::FromModel(model, world));
  for (int64_t u = 0; u < world.num_users; ++u) {
    ServeRequest request;
    request.user = u;
    request.k = options.k;
    const ServeResponse response = engine.ServeSync(request);
    ASSERT_EQ(static_cast<int64_t>(response.items.size()),
              offline.counts[u]);
    for (size_t r = 0; r < response.items.size(); ++r) {
      EXPECT_EQ(response.items[r], offline.ItemsForUser(u)[r])
          << "user " << u << " rank " << r;
      EXPECT_EQ(response.scores[r], offline.ScoresForUser(u)[r])
          << "user " << u << " rank " << r;
    }
  }
}

void RunAnchorForAllModels(const Dataset& world) {
  {
    Rng rng(1);
    MatrixFactorization model(world.num_users, world.num_items, MfConfig{},
                              3.5, &rng);
    TrainOptions options;
    options.epochs = 5;
    TrainModel(&model, world.ratings, options);
    ExpectServedListsMatchOffline(&model, world);
  }
  {
    Rng rng(2);
    LightGcn model(world, LightGcnConfig{}, &rng);
    ExpectServedListsMatchOffline(&model, world);
  }
  {
    Rng rng(3);
    HetRecSys model(world, HetRecSysConfig{}, &rng);
    ExpectServedListsMatchOffline(&model, world);
  }
}

class EngineAnchorTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineAnchorTest, ServedListsMatchOfflineReference) {
  const Dataset world = SmallWorld();
  ThreadPool& pool = ThreadPool::Global();
  const int previous = pool.num_threads();
  pool.SetNumThreads(GetParam());
  RunAnchorForAllModels(world);
  pool.SetNumThreads(previous);
}

TEST_P(EngineAnchorTest, ServedListsMatchOfflineReferenceArenaOn) {
  const Dataset world = SmallWorld();
  ThreadPool& pool = ThreadPool::Global();
  const int previous = pool.num_threads();
  pool.SetNumThreads(GetParam());
  const bool arena_previous = Arena::Global().SetEnabled(true);
  RunAnchorForAllModels(world);
  Arena::Global().SetEnabled(arena_previous);
  pool.SetNumThreads(previous);
}

INSTANTIATE_TEST_SUITE_P(Threads, EngineAnchorTest, ::testing::Values(1, 4));

TEST(ServingEngineTest, RequestBeforePublishResolvesEmpty) {
  ServingEngine engine;
  const ServeResponse response = engine.ServeSync(ServeRequest{});
  EXPECT_TRUE(response.items.empty());
  EXPECT_EQ(response.snapshot_version, 0u);
  // No snapshot = degraded by definition; the marker keeps the
  // bit-identical guarantee scoped to full-fidelity responses.
  EXPECT_TRUE(response.served_degraded);
  EXPECT_EQ(response.degraded_reason, DegradedReason::kNoSnapshot);
}

std::shared_ptr<const ModelSnapshot> TinySnapshot(uint64_t version,
                                                  double scale) {
  const int64_t num_users = 8, num_items = 32;
  std::vector<double> user_factors(static_cast<size_t>(num_users), 1.0);
  std::vector<double> item_factors;
  for (int64_t i = 0; i < num_items; ++i) {
    item_factors.push_back(scale * static_cast<double>(num_items - i));
  }
  SnapshotOptions options;
  options.version = version;
  return std::make_shared<const ModelSnapshot>(
      num_users, num_items, /*dim=*/1, std::move(user_factors),
      std::move(item_factors), std::vector<double>{}, std::vector<double>{},
      /*offset=*/0.0, SeenItemsCsr::FromRatings(num_users, num_items, {}),
      options);
}

TEST(ServingEngineTest, ResponsesCarryThePublishedVersion) {
  ServingEngine engine;
  engine.Publish(TinySnapshot(7, 1.0));
  const ServeResponse response = engine.ServeSync(ServeRequest{});
  EXPECT_EQ(response.snapshot_version, 7u);
  ASSERT_FALSE(response.items.empty());
  EXPECT_EQ(response.items[0], 0);  // highest factor = item 0
}

TEST(ServingEngineTest, MicroBatcherGroupsConcurrentRequests) {
  EngineOptions options;
  options.max_batch_size = 16;
  options.max_wait_us = 20000;  // wide window so submissions coalesce
  ServingEngine engine(options);
  engine.Publish(TinySnapshot(1, 1.0));
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    ServeRequest request;
    request.user = i % 8;
    futures.push_back(engine.Submit(request));
  }
  for (auto& future : futures) future.get();
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.requests, 16);
  // 16 requests in a 20ms window must not take 16 singleton batches.
  EXPECT_LT(stats.batches, 16);
  EXPECT_GT(stats.mean_batch_size, 1.0);
}

TEST(ServingEngineTest, EnforcedDeadlineShedsLateRequests) {
  EngineOptions options;
  options.deadline_us = 1000;   // 1ms budget...
  options.max_wait_us = 20000;  // ...but batch pickup waits 20ms
  ServingEngine engine(options);
  engine.Publish(TinySnapshot(1, 1.0));
  const ServeResponse response = engine.ServeSync(ServeRequest{});
  // Deadlines are enforced, not advisory: the request is shed before any
  // scoring work, not served late with a flag.
  EXPECT_EQ(response.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(response.deadline_missed);
  EXPECT_TRUE(response.items.empty());
  const EngineStats stats = engine.Stats();
  EXPECT_GE(stats.deadline_misses, 1);
  EXPECT_EQ(stats.shed, 1);
}

TEST(ServingEngineTest, StopDrainsOutstandingRequests) {
  ServingEngine engine;
  engine.Publish(TinySnapshot(1, 1.0));
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(engine.Submit({}));
  engine.Stop();
  for (auto& future : futures) {
    EXPECT_FALSE(future.get().items.empty());
  }
}

// Hot-swap under concurrent traffic — the test TSan must pass: reader
// threads hammer ServeSync while the main thread republishes snapshots;
// every response must come from one of the published versions, and the
// swap itself must never block or tear.
TEST(ServingEngineTest, HotSwapUnderConcurrentTraffic) {
  ServingEngine engine;
  engine.Publish(TinySnapshot(1, 1.0));
  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad_versions{0};
  std::vector<std::thread> readers;
  const uint64_t max_version = 12;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        ServeRequest request;
        request.user = rng.UniformInt(8);
        const ServeResponse response = engine.ServeSync(request);
        if (response.snapshot_version < 1 ||
            response.snapshot_version > max_version) {
          bad_versions.fetch_add(1);
        }
      }
    });
  }
  for (uint64_t version = 2; version <= max_version; ++version) {
    engine.Publish(TinySnapshot(version, 1.0 / static_cast<double>(version)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  engine.Stop();
  EXPECT_EQ(bad_versions.load(), 0);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.publishes, static_cast<int64_t>(max_version));
  EXPECT_GT(stats.requests, 0);
}

// A snapshot handed out before a swap stays valid after it: the engine's
// double buffer pins the retired snapshot, and the shared_ptr keeps it
// alive for holders beyond that.
TEST(ServingEngineTest, RetiredSnapshotStaysValidForHolders) {
  ServingEngine engine;
  engine.Publish(TinySnapshot(1, 1.0));
  const std::shared_ptr<const ModelSnapshot> held = engine.CurrentSnapshot();
  engine.Publish(TinySnapshot(2, 2.0));
  engine.Publish(TinySnapshot(3, 3.0));
  EXPECT_EQ(held->version(), 1u);
  EXPECT_EQ(held->Score(0, 0), 32.0);  // scale 1.0 * (32 - 0)
  EXPECT_EQ(engine.CurrentSnapshot()->version(), 3u);
}

// Regression for a latent join race surfaced by the thread-safety
// annotations: two concurrent Stop() calls could both observe the
// batcher thread joinable and both join it (UB). Stop() now swaps the
// thread handle out under queue_mu_, so exactly one caller joins and
// the rest (including the destructor's Stop()) return immediately.
TEST(ServingEngineTest, ConcurrentStopIsSafe) {
  for (int round = 0; round < 20; ++round) {
    ServingEngine engine;
    engine.Publish(TinySnapshot(1, 1.0));
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&engine] { engine.Stop(); });
    }
    for (std::thread& stopper : stoppers) stopper.join();
    // The destructor's Stop() must also be a no-op, not a double join.
  }
}

}  // namespace
}  // namespace serve
}  // namespace msopds
