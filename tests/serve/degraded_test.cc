// Graceful-degradation tests: the popularity fallback's deterministic
// ranking, the no-snapshot / saturation / scoring-fault routes into it,
// and publish-failure rollback. Fault-driven cases install a seeded
// ScopedFaultInjection and assert the same seed gives the same
// degraded/full split.

#include "serve/degraded.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "util/fault.h"

namespace msopds {
namespace serve {
namespace {

// 4 users x 6 items; item popularity (seen count): item 2 -> 3, item
// 0 -> 2, items 1 and 4 -> 1, items 3 and 5 -> 0.
SeenItemsCsr PopularSeen() {
  std::vector<Rating> ratings = {
      {0, 2, 5.0}, {1, 2, 4.0}, {2, 2, 3.0},  // item 2: 3 users
      {0, 0, 5.0}, {3, 0, 2.0},               // item 0: 2 users
      {1, 1, 1.0},                            // item 1: 1 user
      {2, 4, 2.0},                            // item 4: 1 user
  };
  return SeenItemsCsr::FromRatings(/*num_users=*/4, /*num_items=*/6, ratings);
}

std::shared_ptr<const ModelSnapshot> SnapshotWithSeen(uint64_t version = 1) {
  const int64_t num_users = 4, num_items = 6;
  std::vector<double> user_factors(static_cast<size_t>(num_users), 1.0);
  std::vector<double> item_factors;
  for (int64_t i = 0; i < num_items; ++i) {
    item_factors.push_back(static_cast<double>(num_items - i));
  }
  SnapshotOptions options;
  options.version = version;
  return std::make_shared<const ModelSnapshot>(
      num_users, num_items, /*dim=*/1, std::move(user_factors),
      std::move(item_factors), std::vector<double>{}, std::vector<double>{},
      /*offset=*/0.0, PopularSeen(), options);
}

TEST(PopularityCatalogTest, RanksBySeenCountWithItemTieBreak) {
  auto catalog = PopularityCatalog::FromSeen(PopularSeen(), /*num_items=*/6,
                                             /*snapshot_version=*/3);
  ASSERT_EQ(catalog->items.size(), 6u);
  EXPECT_EQ(catalog->snapshot_version, 3u);
  // Count desc, item asc on ties: 2(3), 0(2), 1(1), 4(1), 3(0), 5(0).
  const std::vector<int64_t> expected = {2, 0, 1, 4, 3, 5};
  EXPECT_EQ(catalog->items, expected);
  EXPECT_EQ(catalog->counts[0], 3.0);
  EXPECT_EQ(catalog->counts[1], 2.0);
}

TEST(PopularityCatalogTest, ServeExcludesSeenItems) {
  auto catalog = PopularityCatalog::FromSeen(PopularSeen(), 6, 1);
  const SeenItemsCsr seen = PopularSeen();
  ServeRequest request;
  request.user = 0;  // has seen items 0 and 2
  request.k = 3;
  ServeResponse response;
  ServeFromPopularity(catalog.get(), &seen, request,
                      DegradedReason::kSaturated, &response);
  EXPECT_TRUE(response.served_degraded);
  EXPECT_EQ(response.degraded_reason, DegradedReason::kSaturated);
  const std::vector<int64_t> expected = {1, 4, 3};
  EXPECT_EQ(response.items, expected);
}

TEST(PopularityCatalogTest, NullCatalogServesEmpty) {
  ServeResponse response;
  ServeFromPopularity(nullptr, nullptr, ServeRequest{},
                      DegradedReason::kNoSnapshot, &response);
  EXPECT_TRUE(response.served_degraded);
  EXPECT_TRUE(response.items.empty());
}

TEST(DegradedServeTest, ScoringFaultFallsBackToPopularity) {
  FaultConfig fault;
  fault.seed = 5;
  fault.scoring_error_probability = 1.0;  // every scoring pass throws
  ScopedFaultInjection inject(fault);
  ServingEngine engine;
  ASSERT_TRUE(engine.Publish(SnapshotWithSeen()));
  ServeRequest request;
  request.user = 0;
  request.k = 3;
  const ServeResponse response = engine.ServeSync(request);
  EXPECT_TRUE(response.ok());
  EXPECT_TRUE(response.served_degraded);
  EXPECT_EQ(response.degraded_reason, DegradedReason::kScoringFault);
  // Popularity order with user 0's seen items (0, 2) excluded.
  const std::vector<int64_t> expected = {1, 4, 3};
  EXPECT_EQ(response.items, expected);
  EXPECT_EQ(engine.Stats().degraded, 1);
}

// Same fault seed => the same requests fall back; the split between
// full-fidelity and degraded responses is replayable, not a coin toss
// per run.
TEST(DegradedServeTest, ScoringFaultSplitIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    FaultConfig fault;
    fault.seed = seed;
    fault.scoring_error_probability = 0.5;
    ScopedFaultInjection inject(fault);
    ServingEngine engine;
    EXPECT_TRUE(engine.Publish(SnapshotWithSeen()));
    std::vector<bool> degraded_pattern;
    for (int i = 0; i < 24; ++i) {
      ServeRequest request;
      request.user = i % 4;
      request.k = 3;
      // Sequential => one micro-batch (and one fault query) per request.
      degraded_pattern.push_back(engine.ServeSync(request).served_degraded);
    }
    return degraded_pattern;
  };
  const std::vector<bool> a = run(12);
  const std::vector<bool> b = run(12);
  EXPECT_EQ(a, b);
}

TEST(DegradedServeTest, SaturatedQueueRoutesToPopularity) {
  EngineOptions options;
  options.degrade_queue_depth = 2;
  options.max_wait_us = 50000;  // submissions land in one window
  ServingEngine engine(options);
  ASSERT_TRUE(engine.Publish(SnapshotWithSeen()));
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    ServeRequest request;
    request.user = i % 4;
    request.k = 2;
    futures.push_back(engine.Submit(request));
  }
  int full = 0, degraded = 0;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    EXPECT_TRUE(response.ok());
    if (response.served_degraded) {
      EXPECT_EQ(response.degraded_reason, DegradedReason::kSaturated);
      ++degraded;
    } else {
      ++full;
    }
  }
  // Depths 0 and 1 score full fidelity; depths 2..4 degrade.
  EXPECT_EQ(full, 2);
  EXPECT_EQ(degraded, 3);
  EXPECT_EQ(engine.Stats().degraded, 3);
}

TEST(DegradedServeTest, FailedPublishKeepsOldSnapshotLive) {
  ServingEngine engine;
  ASSERT_TRUE(engine.Publish(SnapshotWithSeen(/*version=*/1)));
  {
    FaultConfig fault;
    fault.seed = 5;
    fault.publish_fail_probability = 1.0;
    ScopedFaultInjection inject(fault);
    EXPECT_FALSE(engine.Publish(SnapshotWithSeen(/*version=*/2)));
  }
  // Rollback: v1 serves on, full fidelity, as if the bad publish never
  // happened.
  ASSERT_NE(engine.CurrentSnapshot(), nullptr);
  EXPECT_EQ(engine.CurrentSnapshot()->version(), 1u);
  ServeRequest request;
  request.user = 1;
  const ServeResponse response = engine.ServeSync(request);
  EXPECT_TRUE(response.ok());
  EXPECT_FALSE(response.served_degraded);
  EXPECT_EQ(response.snapshot_version, 1u);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.publishes, 1);
  EXPECT_EQ(stats.publish_failures, 1);
}

}  // namespace
}  // namespace serve
}  // namespace msopds
