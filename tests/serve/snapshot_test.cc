#include "serve/model_snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/lightgcn.h"
#include "recsys/matrix_factorization.h"
#include "recsys/trainer.h"
#include "util/arena.h"
#include "util/rng.h"

namespace msopds {
namespace serve {
namespace {

Dataset SmallWorld(uint64_t seed = 21) {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 60;
  config.num_ratings = 500;
  config.num_social_links = 150;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

// Every (user, item) pair: the snapshot must reproduce the live model's
// PredictPairs bit for bit — not approximately.
void ExpectBitIdenticalScores(RatingModel* model,
                              const ModelSnapshot& snapshot,
                              const Dataset& world) {
  std::vector<int64_t> users, items;
  for (int64_t u = 0; u < world.num_users; ++u) {
    for (int64_t i = 0; i < world.num_items; ++i) {
      users.push_back(u);
      items.push_back(i);
    }
  }
  const Tensor predictions = model->PredictPairs(users, items);
  for (size_t p = 0; p < users.size(); ++p) {
    const double live = predictions.at(static_cast<int64_t>(p));
    const double snap = snapshot.Score(users[p], items[p]);
    ASSERT_EQ(live, snap) << "user " << users[p] << " item " << items[p];
  }
}

TEST(ModelSnapshotTest, MatrixFactorizationScoresBitIdentical) {
  const Dataset world = SmallWorld();
  Rng rng(1);
  MatrixFactorization model(world.num_users, world.num_items, MfConfig{}, 3.5,
                            &rng);
  TrainOptions options;
  options.epochs = 5;
  TrainModel(&model, world.ratings, options);
  auto snapshot = ModelSnapshot::FromModel(&model, world);
  ASSERT_TRUE(snapshot->has_user_bias());
  ASSERT_TRUE(snapshot->has_item_bias());
  ExpectBitIdenticalScores(&model, *snapshot, world);
}

TEST(ModelSnapshotTest, LightGcnScoresBitIdentical) {
  const Dataset world = SmallWorld();
  Rng rng(2);
  LightGcn model(world, LightGcnConfig{}, &rng);
  auto snapshot = ModelSnapshot::FromModel(&model, world);
  EXPECT_FALSE(snapshot->has_user_bias());
  EXPECT_FALSE(snapshot->has_item_bias());
  ExpectBitIdenticalScores(&model, *snapshot, world);
}

TEST(ModelSnapshotTest, HetRecSysScoresBitIdentical) {
  const Dataset world = SmallWorld();
  Rng rng(3);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  auto snapshot = ModelSnapshot::FromModel(&model, world);
  ExpectBitIdenticalScores(&model, *snapshot, world);
}

TEST(ModelSnapshotTest, CarriesVersionAndSource) {
  const Dataset world = SmallWorld();
  Rng rng(4);
  MatrixFactorization model(world.num_users, world.num_items, MfConfig{}, 3.5,
                            &rng);
  SnapshotOptions options;
  options.version = 42;
  options.source = "mf-test";
  auto snapshot = ModelSnapshot::FromModel(&model, world, options);
  EXPECT_EQ(snapshot->version(), 42u);
  EXPECT_EQ(snapshot->source(), "mf-test");
  EXPECT_GT(snapshot->PayloadBytes(), 0);
}

// The arena-lifetime regression the snapshot exists to prevent: build the
// snapshot from an ArenaRegion-scoped model, let the region exit AND the
// model die AND the arena recycle its buffers, then score. If the
// snapshot aliased any TensorStorage this reads recycled (Debug/ASan:
// poisoned) memory; the deep-copied snapshot must still reproduce the
// values captured while the model was alive.
TEST(ModelSnapshotTest, SnapshotOutlivesArenaRegionAndModel) {
  const Dataset world = SmallWorld();
  const bool previous = Arena::Global().SetEnabled(true);
  std::shared_ptr<const ModelSnapshot> snapshot;
  std::vector<double> expected;
  {
    ArenaRegion region;
    Rng rng(5);
    MatrixFactorization model(world.num_users, world.num_items, MfConfig{},
                              3.5, &rng);
    TrainOptions options;
    options.epochs = 3;
    TrainModel(&model, world.ratings, options);
    snapshot = ModelSnapshot::FromModel(&model, world);
    for (int64_t u = 0; u < world.num_users; ++u) {
      expected.push_back(snapshot->Score(u, u % world.num_items));
    }
  }
  // Churn the arena so any aliased buffer is certainly reused.
  {
    ArenaRegion region;
    Rng rng(6);
    MatrixFactorization churn(world.num_users, world.num_items, MfConfig{},
                              3.5, &rng);
    TrainOptions options;
    options.epochs = 3;
    TrainModel(&churn, world.ratings, options);
  }
  for (int64_t u = 0; u < world.num_users; ++u) {
    EXPECT_EQ(snapshot->Score(u, u % world.num_items),
              expected[static_cast<size_t>(u)]);
  }
  Arena::Global().SetEnabled(previous);
}

TEST(SeenItemsCsrTest, RowsAreSortedAndComplete) {
  std::vector<Rating> ratings = {
      {0, 5, 4.0}, {0, 2, 3.0}, {0, 9, 5.0},  // user 0, out of order
      {2, 1, 2.0},                            // user 1 empty
  };
  const SeenItemsCsr csr = SeenItemsCsr::FromRatings(3, 10, ratings);
  ASSERT_EQ(csr.num_users(), 3);
  ASSERT_EQ(csr.RowSize(0), 3);
  EXPECT_EQ(csr.Row(0)[0], 2);
  EXPECT_EQ(csr.Row(0)[1], 5);
  EXPECT_EQ(csr.Row(0)[2], 9);
  EXPECT_EQ(csr.RowSize(1), 0);
  ASSERT_EQ(csr.RowSize(2), 1);
  EXPECT_EQ(csr.Row(2)[0], 1);
  EXPECT_TRUE(csr.Contains(0, 5));
  EXPECT_FALSE(csr.Contains(0, 4));
  EXPECT_FALSE(csr.Contains(1, 5));
}

TEST(SeenItemsCsrTest, DuplicateRatingsKeepOneEntry) {
  std::vector<Rating> ratings = {{0, 3, 4.0}, {0, 3, 5.0}, {0, 3, 1.0}};
  const SeenItemsCsr csr = SeenItemsCsr::FromRatings(1, 5, ratings);
  // Duplicates may repeat in the row (CSR mirrors the rating list), but
  // the row stays sorted so the exclusion cursor handles them.
  ASSERT_GE(csr.RowSize(0), 1);
  for (int64_t i = 1; i < csr.RowSize(0); ++i) {
    EXPECT_LE(csr.Row(0)[i - 1], csr.Row(0)[i]);
  }
  EXPECT_TRUE(csr.Contains(0, 3));
}

}  // namespace
}  // namespace serve
}  // namespace msopds
