// Quantized-serving contract tests (`ctest -L quant`, DESIGN.md §15):
// quantize/dequantize round-trip bounds, int8/fp16 kernel dispatch-vs-
// scalar bit parity over every vector-tail remainder class, the fixed
// int8 score association, per-precision top-K bit-identity across
// threads and SIMD on/off, cross-precision ranking parity (NDCG / hit
// rate vs the fp64 reference) for all three victim models, deterministic
// tie order, and precision hot-swap under live traffic.

#include "serve/quantize.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/lightgcn.h"
#include "recsys/matrix_factorization.h"
#include "recsys/trainer.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "serve/topk.h"
#include "tensor/simd.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace msopds {
namespace serve {
namespace {

Dataset SmallWorld(uint64_t seed = 21) {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 60;
  config.num_ratings = 500;
  config.num_social_links = 150;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

// --- round-trip bounds ---------------------------------------------------

TEST(QuantRoundTripTest, HalfRoundTripWithinHalfUlp) {
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const double v =
        (rng.Uniform() * 2.0 - 1.0) * std::ldexp(1.0, rng.UniformInt(30) - 14);
    const double back = simd::HalfToDouble(DoubleToHalf(v));
    // Normal binary16 half-ulp bound plus the subnormal absolute step.
    const double bound =
        std::fabs(v) * std::ldexp(1.0, -11) + std::ldexp(1.0, -24);
    ASSERT_LE(std::fabs(back - v), bound) << "v=" << v << " back=" << back;
  }
}

TEST(QuantRoundTripTest, HalfRepresentablesAndSpecialsExact) {
  const double exact[] = {0.0,  -0.0, 1.0,    -1.0,   2.0,
                          0.5,  0.25, 1024.0, -512.0, 65504.0};
  for (const double v : exact) {
    EXPECT_EQ(simd::HalfToDouble(DoubleToHalf(v)), v);
  }
  EXPECT_TRUE(std::isinf(simd::HalfToDouble(DoubleToHalf(1e300))));
  EXPECT_TRUE(std::isinf(simd::HalfToDouble(DoubleToHalf(65520.0))));
  EXPECT_TRUE(std::isnan(simd::HalfToDouble(DoubleToHalf(std::nan("")))));
}

TEST(QuantRoundTripTest, Int8RoundTripWithinHalfStep) {
  const int64_t rows = 48, dim = 24;
  Rng rng(32);
  std::vector<double> block(static_cast<size_t>(rows * dim));
  for (double& v : block) v = rng.Uniform() * 6.0 - 3.0;
  for (int64_t j = 0; j < dim; ++j) block[static_cast<size_t>(j)] = 0.0;
  std::vector<int8_t> codes;
  std::vector<float> scales;
  QuantizeRowsInt8(block.data(), rows, dim, &codes, &scales);
  ASSERT_EQ(codes.size(), block.size());
  ASSERT_EQ(scales.size(), static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    const double scale = static_cast<double>(scales[static_cast<size_t>(r)]);
    for (int64_t j = 0; j < dim; ++j) {
      const double v = block[static_cast<size_t>(r * dim + j)];
      const double deq =
          static_cast<double>(codes[static_cast<size_t>(r * dim + j)]) * scale;
      // Half a quantization step, widened a binary32 ulp for the scale's
      // own rounding.
      ASSERT_LE(std::fabs(deq - v), scale * 0.5 * (1.0 + 1e-6))
          << "row " << r << " j " << j;
    }
  }
  // The planted all-zero row must get scale 0 and all-zero codes.
  EXPECT_EQ(scales[0], 0.0f);
  for (int64_t j = 0; j < dim; ++j) EXPECT_EQ(codes[static_cast<size_t>(j)], 0);
}

// --- kernel dispatch parity over every remainder class -------------------

// The AVX2 int8 pipeline is 16-wide and the fp16 pipeline 4-wide, so
// n in [0, 48] covers every n mod 16 (and mod 4) tail the vector loops
// can take. SetBackendForTesting pins the scalar reference for the B arm.
TEST(QuantKernelParityTest, DotI8DispatchMatchesScalarForAllRemainders) {
  Rng rng(33);
  for (int64_t n = 0; n <= 48; ++n) {
    std::vector<int8_t> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] = static_cast<int8_t>(rng.UniformInt(255) - 127);
      b[static_cast<size_t>(i)] = static_cast<int8_t>(rng.UniformInt(255) - 127);
    }
    if (n > 0) {
      a[0] = 127;  // saturated codes exercise the widening paths
      b[static_cast<size_t>(n - 1)] = -127;
    }
    const int32_t active = simd::DotI8(a.data(), b.data(), n);
    const simd::Backend prev =
        simd::internal::SetBackendForTesting(simd::Backend::kScalar);
    const int32_t scalar = simd::DotI8(a.data(), b.data(), n);
    simd::internal::SetBackendForTesting(prev);
    ASSERT_EQ(active, scalar) << "n=" << n;
  }
}

TEST(QuantKernelParityTest, DotF16DispatchMatchesScalarForAllRemainders) {
  Rng rng(34);
  for (int64_t n = 0; n <= 48; ++n) {
    std::vector<uint16_t> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      a[static_cast<size_t>(i)] = DoubleToHalf(rng.Uniform() * 8.0 - 4.0);
      b[static_cast<size_t>(i)] = DoubleToHalf(rng.Uniform() * 8.0 - 4.0);
    }
    const double active = simd::DotF16(a.data(), b.data(), n);
    const simd::Backend prev =
        simd::internal::SetBackendForTesting(simd::Backend::kScalar);
    const double scalar = simd::DotF16(a.data(), b.data(), n);
    simd::internal::SetBackendForTesting(prev);
    ASSERT_EQ(std::memcmp(&active, &scalar, sizeof(double)), 0) << "n=" << n;
  }
}

// --- the fixed int8 score association ------------------------------------

// An int8 snapshot's Score must equal the documented recipe exactly:
// ((double)DotI8 * user_scale) * item_scale + biases + offset, with the
// codes and scales QuantizeRowsInt8 produces for the exported rows.
TEST(QuantScoreTest, Int8ScoreMatchesDequantizedReference) {
  const int64_t users = 6, items = 9, dim = 12;
  Rng rng(35);
  std::vector<double> uf(static_cast<size_t>(users * dim)),
      itf(static_cast<size_t>(items * dim));
  std::vector<double> ub(static_cast<size_t>(users)),
      ib(static_cast<size_t>(items));
  for (double& v : uf) v = rng.Normal();
  for (double& v : itf) v = rng.Normal();
  for (double& v : ub) v = rng.Normal() * 0.1;
  for (double& v : ib) v = rng.Normal() * 0.1;
  SnapshotOptions options;
  options.version = 9;
  const ModelSnapshot full(users, items, dim, uf, itf, ub, ib,
                           /*offset=*/3.25,
                           SeenItemsCsr::FromRatings(users, items, {}),
                           options);
  const auto quant = QuantizeSnapshot(full, SnapshotPrecision::kInt8);
  ASSERT_EQ(quant->precision(), SnapshotPrecision::kInt8);
  EXPECT_EQ(quant->version(), 9u);

  std::vector<int8_t> qu, qi;
  std::vector<float> su, si;
  QuantizeRowsInt8(uf.data(), users, dim, &qu, &su);
  QuantizeRowsInt8(itf.data(), items, dim, &qi, &si);
  for (int64_t u = 0; u < users; ++u) {
    for (int64_t i = 0; i < items; ++i) {
      const int32_t dot = simd::DotI8(qu.data() + u * dim,
                                      qi.data() + i * dim, dim);
      const double expected =
          (static_cast<double>(dot) *
           static_cast<double>(su[static_cast<size_t>(u)])) *
              static_cast<double>(si[static_cast<size_t>(i)]) +
          ub[static_cast<size_t>(u)] + ib[static_cast<size_t>(i)] + 3.25;
      ASSERT_EQ(quant->Score(u, i), expected) << "u=" << u << " i=" << i;
    }
  }
}

// --- per-precision bit-identity across threads and backends --------------

bool SameResult(const TopKResult& a, const TopKResult& b) {
  return a.k == b.k && a.items == b.items && a.counts == b.counts &&
         a.scores.size() == b.scores.size() &&
         std::memcmp(a.scores.data(), b.scores.data(),
                     a.scores.size() * sizeof(double)) == 0;
}

std::shared_ptr<const ModelSnapshot> TrainedMfSnapshot(
    const Dataset& world, SnapshotPrecision precision) {
  Rng rng(1);
  MatrixFactorization model(world.num_users, world.num_items, MfConfig{}, 3.5,
                            &rng);
  TrainOptions options;
  options.epochs = 5;
  TrainModel(&model, world.ratings, options);
  SnapshotOptions snapshot_options;
  snapshot_options.version = 1;
  snapshot_options.precision = precision;
  return ModelSnapshot::FromModel(&model, world, snapshot_options);
}

TEST(QuantTopKTest, BitIdenticalAcrossThreadsAndBackendsPerPrecision) {
  const Dataset world = SmallWorld();
  std::vector<int64_t> users(static_cast<size_t>(world.num_users));
  std::iota(users.begin(), users.end(), 0);
  TopKOptions options;
  options.k = 10;
  ThreadPool& pool = ThreadPool::Global();
  const int previous = pool.num_threads();
  for (const SnapshotPrecision precision :
       {SnapshotPrecision::kFp64, SnapshotPrecision::kFp16,
        SnapshotPrecision::kInt8}) {
    const auto snapshot = TrainedMfSnapshot(world, precision);
    ASSERT_EQ(snapshot->precision(), precision);
    pool.SetNumThreads(1);
    const TopKResult t1 = TopKForUsers(*snapshot, users, options);
    pool.SetNumThreads(4);
    const TopKResult t4 = TopKForUsers(*snapshot, users, options);
    pool.SetNumThreads(1);
    const simd::Backend prev =
        simd::internal::SetBackendForTesting(simd::Backend::kScalar);
    const TopKResult scalar = TopKForUsers(*snapshot, users, options);
    simd::internal::SetBackendForTesting(prev);
    EXPECT_TRUE(SameResult(t1, t4))
        << "threads 1 vs 4, precision " << SnapshotPrecisionName(precision);
    EXPECT_TRUE(SameResult(t1, scalar))
        << "vector vs scalar, precision " << SnapshotPrecisionName(precision);
  }
  pool.SetNumThreads(previous);
}

// --- cross-precision ranking parity --------------------------------------

// NDCG of the quantized list against the fp64 list as graded ground
// truth (reference rank r gets gain k - r), normalized by the reference
// list's own DCG, averaged over users.
double MeanNdcg(const TopKResult& reference, const TopKResult& quantized,
                int64_t num_users, int k) {
  double total = 0.0;
  for (int64_t u = 0; u < num_users; ++u) {
    const int64_t* ref = reference.ItemsForUser(u);
    const int64_t* got = quantized.ItemsForUser(u);
    double dcg = 0.0, idcg = 0.0;
    for (int r = 0; r < k; ++r) {
      const double discount = 1.0 / std::log2(static_cast<double>(r) + 2.0);
      idcg += static_cast<double>(k - r) * discount;
      if (got[r] < 0) continue;
      for (int s = 0; s < k; ++s) {
        if (ref[s] == got[r]) {
          dcg += static_cast<double>(k - s) * discount;
          break;
        }
      }
    }
    total += idcg > 0.0 ? dcg / idcg : 1.0;
  }
  return num_users > 0 ? total / static_cast<double>(num_users) : 1.0;
}

// Fraction of users whose fp64 top-1 item survives in the quantized
// top-k (the serving analogue of HitRate@k with the reference winner as
// the target).
double Top1HitRate(const TopKResult& reference, const TopKResult& quantized,
                   int64_t num_users, int k) {
  int64_t hits = 0;
  for (int64_t u = 0; u < num_users; ++u) {
    const int64_t top1 = reference.ItemsForUser(u)[0];
    const int64_t* got = quantized.ItemsForUser(u);
    for (int r = 0; r < k; ++r) {
      if (got[r] == top1) {
        ++hits;
        break;
      }
    }
  }
  return num_users > 0
             ? static_cast<double>(hits) / static_cast<double>(num_users)
             : 1.0;
}

void ExpectRankingParity(RatingModel* model, const Dataset& world,
                         const char* tag) {
  std::vector<int64_t> users(static_cast<size_t>(world.num_users));
  std::iota(users.begin(), users.end(), 0);
  TopKOptions options;
  options.k = 10;
  const auto fp64 = ModelSnapshot::FromModel(model, world);
  ThreadPool& pool = ThreadPool::Global();
  const int previous = pool.num_threads();
  pool.SetNumThreads(1);
  const TopKResult reference = TopKForUsers(*fp64, users, options);
  for (const SnapshotPrecision precision :
       {SnapshotPrecision::kFp16, SnapshotPrecision::kInt8}) {
    const auto quant = QuantizeSnapshot(*fp64, precision);
    pool.SetNumThreads(1);
    const TopKResult q1 = TopKForUsers(*quant, users, options);
    pool.SetNumThreads(4);
    const TopKResult q4 = TopKForUsers(*quant, users, options);
    pool.SetNumThreads(1);
    // Parity metrics are computed from the threads=1 lists; threads=4
    // must produce the same bits, so the bounds cover both.
    EXPECT_TRUE(SameResult(q1, q4))
        << tag << " " << SnapshotPrecisionName(precision);
    const double ndcg = MeanNdcg(reference, q1, world.num_users, options.k);
    const double hit = Top1HitRate(reference, q1, world.num_users, options.k);
    if (precision == SnapshotPrecision::kFp16) {
      EXPECT_GE(ndcg, 0.98) << tag << " fp16 NDCG";
      EXPECT_GE(hit, 0.95) << tag << " fp16 top-1 hit rate";
    } else {
      EXPECT_GE(ndcg, 0.85) << tag << " int8 NDCG";
      EXPECT_GE(hit, 0.80) << tag << " int8 top-1 hit rate";
    }
  }
  pool.SetNumThreads(previous);
}

TEST(QuantRankingParityTest, MatrixFactorization) {
  const Dataset world = SmallWorld();
  Rng rng(1);
  MatrixFactorization model(world.num_users, world.num_items, MfConfig{}, 3.5,
                            &rng);
  TrainOptions options;
  options.epochs = 5;
  TrainModel(&model, world.ratings, options);
  ExpectRankingParity(&model, world, "mf");
}

TEST(QuantRankingParityTest, LightGcn) {
  const Dataset world = SmallWorld();
  Rng rng(2);
  LightGcn model(world, LightGcnConfig{}, &rng);
  ExpectRankingParity(&model, world, "lightgcn");
}

TEST(QuantRankingParityTest, HetRecSys) {
  const Dataset world = SmallWorld();
  Rng rng(3);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  ExpectRankingParity(&model, world, "het_recsys");
}

// --- deterministic tie order ---------------------------------------------

// All-zero factors make every score equal the offset at every precision,
// so RanksBefore's item-ascending tie break must yield items 0..k-1 for
// every user — quantization must not perturb the total order on ties.
TEST(QuantTieOrderTest, ZeroFactorsGiveAscendingItemIds) {
  const int64_t users = 5, items = 20, dim = 8;
  const ModelSnapshot full(
      users, items, dim,
      std::vector<double>(static_cast<size_t>(users * dim), 0.0),
      std::vector<double>(static_cast<size_t>(items * dim), 0.0), {}, {},
      /*offset=*/1.5, SeenItemsCsr::FromRatings(users, items, {}),
      SnapshotOptions{});
  std::vector<int64_t> all_users(static_cast<size_t>(users));
  std::iota(all_users.begin(), all_users.end(), 0);
  TopKOptions options;
  options.k = 6;
  options.exclude_seen = false;
  for (const SnapshotPrecision precision :
       {SnapshotPrecision::kFp64, SnapshotPrecision::kFp16,
        SnapshotPrecision::kInt8}) {
    const std::shared_ptr<const ModelSnapshot> snapshot =
        precision == SnapshotPrecision::kFp64
            ? std::shared_ptr<const ModelSnapshot>(&full, [](auto*) {})
            : QuantizeSnapshot(full, precision);
    const TopKResult result = TopKForUsers(*snapshot, all_users, options);
    for (int64_t u = 0; u < users; ++u) {
      for (int r = 0; r < options.k; ++r) {
        ASSERT_EQ(result.ItemsForUser(u)[r], r)
            << SnapshotPrecisionName(precision) << " user " << u;
        ASSERT_EQ(result.ScoresForUser(u)[r], 1.5);
      }
    }
  }
}

// --- precision hot-swap under traffic ------------------------------------

// Publishing fp64 -> int8 -> fp64 while a client hammers the engine must
// never produce a response whose (version, precision) pair disagrees
// with what was published, and each regime must actually be observed.
TEST(QuantHotSwapTest, PrecisionFollowsPublishUnderTraffic) {
  const Dataset world = SmallWorld();
  Rng rng(1);
  MatrixFactorization model(world.num_users, world.num_items, MfConfig{}, 3.5,
                            &rng);
  TrainOptions train_options;
  train_options.epochs = 2;
  TrainModel(&model, world.ratings, train_options);
  auto snapshot_at = [&](uint64_t version, SnapshotPrecision precision) {
    SnapshotOptions options;
    options.version = version;
    options.precision = precision;
    return ModelSnapshot::FromModel(&model, world, options);
  };

  ServingEngine engine;
  engine.Publish(snapshot_at(1, SnapshotPrecision::kFp64));

  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad_pairs{0};
  std::thread client([&] {
    uint64_t user = 0;
    while (!stop.load()) {
      ServeRequest request;
      request.user = static_cast<int64_t>(user++ % world.num_users);
      request.k = 5;
      const ServeResponse response = engine.ServeSync(request);
      const bool ok =
          (response.snapshot_version == 1 &&
           response.snapshot_precision == SnapshotPrecision::kFp64) ||
          (response.snapshot_version == 2 &&
           response.snapshot_precision == SnapshotPrecision::kInt8) ||
          (response.snapshot_version == 3 &&
           response.snapshot_precision == SnapshotPrecision::kFp64);
      if (!ok) bad_pairs.fetch_add(1);
    }
  });

  auto observe = [&](uint64_t version, SnapshotPrecision precision) {
    // The engine serves the new snapshot as soon as Publish returns.
    ServeRequest request;
    request.user = 0;
    request.k = 5;
    const ServeResponse response = engine.ServeSync(request);
    EXPECT_EQ(response.snapshot_version, version);
    EXPECT_EQ(response.snapshot_precision, precision);
  };
  observe(1, SnapshotPrecision::kFp64);
  engine.Publish(snapshot_at(2, SnapshotPrecision::kInt8));
  observe(2, SnapshotPrecision::kInt8);
  engine.Publish(snapshot_at(3, SnapshotPrecision::kFp64));
  observe(3, SnapshotPrecision::kFp64);

  stop.store(true);
  client.join();
  EXPECT_EQ(bad_pairs.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace msopds
