// Serve-path chaos harness replay tests: under a seeded fault plan
// (publish failures + batch-flush latency spikes + scoring exceptions),
// a sequentially driven engine must produce the identical trace —
// statuses, degraded markers, shed/served split, snapshot versions, and
// every full-fidelity item list — at any kernel thread count and on any
// rerun. Sequential ServeSync gives one micro-batch per request, so the
// per-site fault streams are queried in a fixed order regardless of how
// many threads the scoring kernel fans out to.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace msopds {
namespace serve {
namespace {

std::shared_ptr<const ModelSnapshot> ChaosSnapshot(uint64_t version) {
  const int64_t num_users = 16, num_items = 40;
  std::vector<double> user_factors;
  for (int64_t u = 0; u < num_users; ++u) {
    user_factors.push_back(1.0 + 0.01 * static_cast<double>(u));
  }
  std::vector<double> item_factors;
  for (int64_t i = 0; i < num_items; ++i) {
    // Version-dependent scores so a response provably came from the
    // snapshot whose version it reports.
    item_factors.push_back(
        static_cast<double>((i * 7 + static_cast<int64_t>(version) * 13) %
                            num_items));
  }
  std::vector<Rating> ratings;
  for (int64_t u = 0; u < num_users; ++u) {
    ratings.push_back({u, u % num_items, 5.0});
    ratings.push_back({u, (u * 3 + 1) % num_items, 4.0});
  }
  SnapshotOptions options;
  options.version = version;
  return std::make_shared<const ModelSnapshot>(
      num_users, num_items, /*dim=*/1, std::move(user_factors),
      std::move(item_factors), std::vector<double>{}, std::vector<double>{},
      /*offset=*/0.0,
      SeenItemsCsr::FromRatings(num_users, num_items, ratings), options);
}

struct ChaosTrace {
  /// One line per request: status|degraded|reason|version|items.
  std::vector<std::string> responses;
  int64_t shed = 0;
  int64_t degraded = 0;
  int64_t publishes = 0;
  int64_t publish_failures = 0;

  bool operator==(const ChaosTrace& other) const {
    return responses == other.responses && shed == other.shed &&
           degraded == other.degraded && publishes == other.publishes &&
           publish_failures == other.publish_failures;
  }
};

std::string Fingerprint(const ServeResponse& response) {
  std::ostringstream out;
  out << ServeStatusName(response.status) << '|' << response.served_degraded
      << '|' << DegradedReasonName(response.degraded_reason) << '|'
      << response.snapshot_version << '|';
  for (int64_t item : response.items) out << item << ',';
  return out.str();
}

ChaosTrace RunChaos(uint64_t fault_seed, int threads) {
  ThreadPool& pool = ThreadPool::Global();
  const int previous = pool.num_threads();
  pool.SetNumThreads(threads);

  FaultConfig fault;
  fault.seed = fault_seed;
  fault.publish_fail_probability = 0.2;
  fault.batch_delay_probability = 0.3;
  fault.batch_delay_us = 50000;  // spiked batches overshoot the deadline
  fault.scoring_error_probability = 0.3;
  ScopedFaultInjection inject(fault);

  ChaosTrace trace;
  {
    EngineOptions options;
    options.max_wait_us = 0;      // one micro-batch per request
    options.deadline_us = 10000;  // 10ms: only spiked batches shed
    ServingEngine engine(options);
    uint64_t version = 1;
    // First publish must land (consuming the publish stream
    // deterministically) so full-fidelity requests have a snapshot.
    while (!engine.Publish(ChaosSnapshot(version))) {
    }
    for (int i = 0; i < 40; ++i) {
      if (i > 0 && i % 10 == 0) {
        // Mid-traffic republish attempt; failures roll back and serving
        // continues on the previous version.
        engine.Publish(ChaosSnapshot(++version));
      }
      ServeRequest request;
      request.user = i % 16;
      request.k = 5;
      trace.responses.push_back(Fingerprint(engine.ServeSync(request)));
    }
    const EngineStats stats = engine.Stats();
    trace.shed = stats.shed;
    trace.degraded = stats.degraded;
    trace.publishes = stats.publishes;
    trace.publish_failures = stats.publish_failures;
  }
  pool.SetNumThreads(previous);
  return trace;
}

TEST(ServeChaosTest, ReplayIsBitStableAcrossRuns) {
  const ChaosTrace a = RunChaos(/*fault_seed=*/21, /*threads=*/1);
  const ChaosTrace b = RunChaos(/*fault_seed=*/21, /*threads=*/1);
  EXPECT_EQ(a, b);
}

TEST(ServeChaosTest, ReplayIsBitStableAcrossThreadCounts) {
  const ChaosTrace t1 = RunChaos(/*fault_seed=*/21, /*threads=*/1);
  const ChaosTrace t4 = RunChaos(/*fault_seed=*/21, /*threads=*/4);
  // Identical reject/shed/degraded counts AND identical full-fidelity
  // top-K lists: the determinism contract survives the chaos harness.
  EXPECT_EQ(t1, t4);
}

TEST(ServeChaosTest, FaultPlanActuallyFires) {
  const ChaosTrace trace = RunChaos(/*fault_seed=*/21, /*threads=*/1);
  // With p=0.3 over 40 batches / publishes at p=0.2, a trace with zero
  // injected events would mean the hooks are dead, not that we got
  // lucky.
  EXPECT_GT(trace.shed + trace.degraded + trace.publish_failures, 0);
  EXPECT_GE(trace.publishes, 1);
  EXPECT_EQ(trace.responses.size(), 40u);
}

// The engine keeps answering under chaos: every request resolves with an
// explicit status, never a hang or dropped promise.
TEST(ServeChaosTest, EveryRequestResolvesExplicitly) {
  const ChaosTrace trace = RunChaos(/*fault_seed=*/33, /*threads=*/1);
  for (const std::string& line : trace.responses) {
    EXPECT_TRUE(line.rfind("OK|", 0) == 0 ||
                line.rfind("DEADLINE_EXCEEDED|", 0) == 0)
        << line;
  }
}

}  // namespace
}  // namespace serve
}  // namespace msopds
