#include "serve/topk.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serve/model_snapshot.h"
#include "util/thread_pool.h"

namespace msopds {
namespace serve {
namespace {

// Hand-built snapshot: scores are u·i dot products over dim 1, i.e.
// score(u, i) = user_factor[u] * item_factor[i] — easy to reason about.
std::shared_ptr<const ModelSnapshot> TinySnapshot(
    int64_t num_users, int64_t num_items, std::vector<double> user_factors,
    std::vector<double> item_factors, std::vector<Rating> seen_ratings = {}) {
  SeenItemsCsr seen =
      SeenItemsCsr::FromRatings(num_users, num_items, seen_ratings);
  return std::make_shared<const ModelSnapshot>(
      num_users, num_items, /*dim=*/1, std::move(user_factors),
      std::move(item_factors), std::vector<double>{}, std::vector<double>{},
      /*offset=*/0.0, std::move(seen), SnapshotOptions{});
}

TEST(RanksBeforeTest, TotalOrderScoreThenItemId) {
  EXPECT_TRUE(RanksBefore({1, 2.0}, {0, 1.0}));
  EXPECT_FALSE(RanksBefore({0, 1.0}, {1, 2.0}));
  // Equal scores: lower item id wins.
  EXPECT_TRUE(RanksBefore({3, 1.5}, {7, 1.5}));
  EXPECT_FALSE(RanksBefore({7, 1.5}, {3, 1.5}));
}

TEST(TopKSelectorTest, KeepsBestKInOrder) {
  TopKSelector selector(3);
  const double scores[] = {0.1, 0.9, 0.5, 0.7, 0.3, 0.9};
  for (int64_t i = 0; i < 6; ++i) selector.Offer(i, scores[i]);
  const std::vector<ScoredItem> top = selector.Take();
  ASSERT_EQ(top.size(), 3u);
  // 0.9 twice (items 1, 5; lower id first), then 0.7 (item 3).
  EXPECT_EQ(top[0], (ScoredItem{1, 0.9}));
  EXPECT_EQ(top[1], (ScoredItem{5, 0.9}));
  EXPECT_EQ(top[2], (ScoredItem{3, 0.7}));
}

TEST(TopKSelectorTest, SelectionIndependentOfOfferOrder) {
  const std::vector<double> scores = {0.4, 0.8, 0.8, 0.2, 0.6, 0.1, 0.8};
  TopKSelector forward(4), backward(4);
  for (int64_t i = 0; i < 7; ++i) forward.Offer(i, scores[i]);
  for (int64_t i = 6; i >= 0; --i) backward.Offer(i, scores[i]);
  EXPECT_EQ(forward.Take(), backward.Take());
}

TEST(SelectTopKTest, DuplicateScoresBreakTiesByItemId) {
  // All items score the same: the top-k must be the k lowest ids.
  const std::vector<double> scores(8, 2.5);
  const std::vector<ScoredItem> top =
      SelectTopK(scores.data(), 8, 3, nullptr, 0);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 0);
  EXPECT_EQ(top[1].item, 1);
  EXPECT_EQ(top[2].item, 2);
}

TEST(SelectTopKTest, ExclusionSkipsSeenItems) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  const std::vector<int64_t> seen = {0, 2};
  const std::vector<ScoredItem> top =
      SelectTopK(scores.data(), 4, 2, seen.data(),
                 static_cast<int64_t>(seen.size()));
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1);
  EXPECT_EQ(top[1].item, 3);
}

TEST(SelectTopKTest, KLargerThanUnseenReturnsShortList) {
  const std::vector<double> scores = {0.9, 0.8, 0.7};
  const std::vector<int64_t> seen = {1};
  const std::vector<ScoredItem> top =
      SelectTopK(scores.data(), 3, 10, seen.data(), 1);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 0);
  EXPECT_EQ(top[1].item, 2);
}

TEST(SelectTopKTest, AllItemsSeenReturnsEmpty) {
  const std::vector<double> scores = {0.9, 0.8};
  const std::vector<int64_t> seen = {0, 1};
  EXPECT_TRUE(SelectTopK(scores.data(), 2, 5, seen.data(), 2).empty());
}

TEST(PackTopKTest, PadsShortListsWithSentinels) {
  const std::vector<std::vector<ScoredItem>> per_user = {
      {{4, 0.9}, {1, 0.5}},
      {},
  };
  const TopKResult result = PackTopK(per_user, 3);
  EXPECT_EQ(result.k, 3);
  ASSERT_EQ(result.counts.size(), 2u);
  EXPECT_EQ(result.counts[0], 2);
  EXPECT_EQ(result.counts[1], 0);
  EXPECT_EQ(result.ItemsForUser(0)[0], 4);
  EXPECT_EQ(result.ItemsForUser(0)[1], 1);
  EXPECT_EQ(result.ItemsForUser(0)[2], -1);
  EXPECT_EQ(result.ItemsForUser(1)[0], -1);
  EXPECT_EQ(result.ScoresForUser(0)[0], 0.9);
  EXPECT_EQ(result.ScoresForUser(0)[2], 0.0);
}

// --- Batched kernel over a snapshot ---

TEST(TopKForUsersTest, UserWithEveryItemSeenGetsEmptyList) {
  std::vector<Rating> seen;
  for (int64_t i = 0; i < 4; ++i) seen.push_back({0, i, 5.0});
  auto snapshot = TinySnapshot(2, 4, {1.0, 1.0}, {0.4, 0.3, 0.2, 0.1}, seen);
  TopKOptions options;
  options.k = 3;
  const TopKResult result = TopKForUsers(*snapshot, {0, 1}, options);
  EXPECT_EQ(result.counts[0], 0);
  EXPECT_EQ(result.ItemsForUser(0)[0], -1);
  // User 1 saw nothing: full list, best first.
  EXPECT_EQ(result.counts[1], 3);
  EXPECT_EQ(result.ItemsForUser(1)[0], 0);
  EXPECT_EQ(result.ItemsForUser(1)[1], 1);
  EXPECT_EQ(result.ItemsForUser(1)[2], 2);
}

TEST(TopKForUsersTest, EmptyHistoryAndExclusionDisabled) {
  std::vector<Rating> seen = {{0, 0, 5.0}};
  auto snapshot = TinySnapshot(1, 3, {1.0}, {0.9, 0.5, 0.1}, seen);
  TopKOptions exclude;
  exclude.k = 3;
  const TopKResult with = TopKForUsers(*snapshot, {0}, exclude);
  EXPECT_EQ(with.counts[0], 2);
  EXPECT_EQ(with.ItemsForUser(0)[0], 1);
  TopKOptions keep;
  keep.k = 3;
  keep.exclude_seen = false;
  const TopKResult without = TopKForUsers(*snapshot, {0}, keep);
  EXPECT_EQ(without.counts[0], 3);
  EXPECT_EQ(without.ItemsForUser(0)[0], 0);
}

TEST(TopKForUsersTest, DuplicateScoresOrderedByItemIdAcrossTiles) {
  // 600 items (> one 256-item tile) all scoring identically: the top-k
  // must be ids 0..k-1 regardless of tiling.
  const int64_t num_items = 600;
  std::vector<double> item_factors(static_cast<size_t>(num_items), 1.0);
  auto snapshot = TinySnapshot(1, num_items, {1.0}, std::move(item_factors));
  TopKOptions options;
  options.k = 5;
  const TopKResult result = TopKForUsers(*snapshot, {0}, options);
  ASSERT_EQ(result.counts[0], 5);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.ItemsForUser(0)[i], i);
  }
}

TEST(TopKForUsersTest, MatchesSelectTopKAndIsThreadCountInvariant) {
  const int64_t num_users = 37, num_items = 801;
  std::vector<double> user_factors, item_factors;
  // Deterministic pseudo-random factors without an RNG dependency.
  for (int64_t u = 0; u < num_users; ++u) {
    user_factors.push_back(static_cast<double>((u * 37 + 11) % 101) / 101.0);
  }
  for (int64_t i = 0; i < num_items; ++i) {
    item_factors.push_back(static_cast<double>((i * 53 + 29) % 211) / 211.0);
  }
  std::vector<Rating> seen;
  for (int64_t u = 0; u < num_users; ++u) {
    for (int64_t i = u; i < num_items; i += 97) seen.push_back({u, i, 4.0});
  }
  auto snapshot = TinySnapshot(num_users, num_items, user_factors,
                               item_factors, seen);
  std::vector<int64_t> users;
  for (int64_t u = 0; u < num_users; ++u) users.push_back(u);
  TopKOptions options;
  options.k = 12;

  ThreadPool& pool = ThreadPool::Global();
  const int previous = pool.num_threads();
  pool.SetNumThreads(1);
  const TopKResult serial = TopKForUsers(*snapshot, users, options);
  pool.SetNumThreads(4);
  const TopKResult parallel = TopKForUsers(*snapshot, users, options);
  pool.SetNumThreads(previous);

  EXPECT_EQ(serial.items, parallel.items);
  EXPECT_EQ(serial.scores, parallel.scores);
  EXPECT_EQ(serial.counts, parallel.counts);

  // And both agree with the scalar reference selection per user.
  for (int64_t u = 0; u < num_users; ++u) {
    std::vector<double> scores;
    for (int64_t i = 0; i < num_items; ++i) {
      scores.push_back(snapshot->Score(u, i));
    }
    const std::vector<ScoredItem> reference = SelectTopK(
        scores.data(), num_items, options.k, snapshot->seen().Row(u),
        snapshot->seen().RowSize(u));
    ASSERT_EQ(serial.counts[u], static_cast<int64_t>(reference.size()));
    for (size_t r = 0; r < reference.size(); ++r) {
      EXPECT_EQ(serial.ItemsForUser(u)[r], reference[r].item);
      EXPECT_EQ(serial.ScoresForUser(u)[r], reference[r].score);
    }
  }
}

TEST(RankWithTiesTest, TiesFavorTheCandidate) {
  const std::vector<double> competitors = {2.0, 1.0, 1.0, 0.5};
  // One strictly greater, two equal: rank 2 (ties don't push down).
  EXPECT_EQ(RankWithTiesFavoringCandidate(1.0, competitors.data(), 4), 2);
  EXPECT_EQ(RankWithTiesFavoringCandidate(3.0, competitors.data(), 4), 1);
  EXPECT_EQ(RankWithTiesFavoringCandidate(0.0, competitors.data(), 4), 5);
}

}  // namespace
}  // namespace serve
}  // namespace msopds
