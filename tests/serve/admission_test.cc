// Overload-path tests: bounded admission, enforced deadlines, cost-aware
// batching, cancel-safe shutdown, and the retry/backoff client. Tests
// that depend on queue timing use wide micro-batch windows so the
// fill/shed outcome is deterministic, not a race with the batcher.

#include "serve/admission.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "serve/engine.h"
#include "serve/model_snapshot.h"
#include "util/rng.h"

namespace msopds {
namespace serve {
namespace {

std::shared_ptr<const ModelSnapshot> TinySnapshot(uint64_t version = 1) {
  const int64_t num_users = 8, num_items = 32;
  std::vector<double> user_factors(static_cast<size_t>(num_users), 1.0);
  std::vector<double> item_factors;
  for (int64_t i = 0; i < num_items; ++i) {
    item_factors.push_back(static_cast<double>(num_items - i));
  }
  SnapshotOptions options;
  options.version = version;
  return std::make_shared<const ModelSnapshot>(
      num_users, num_items, /*dim=*/1, std::move(user_factors),
      std::move(item_factors), std::vector<double>{}, std::vector<double>{},
      /*offset=*/0.0, SeenItemsCsr::FromRatings(num_users, num_items, {}),
      options);
}

TEST(AdmissionControllerTest, DecisionsFollowQueueDepth) {
  AdmissionOptions options;
  options.max_queue = 4;
  options.degrade_queue_depth = 2;
  AdmissionController admission(options);
  EXPECT_EQ(admission.Admit(0), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(1), AdmissionDecision::kAdmit);
  EXPECT_EQ(admission.Admit(2), AdmissionDecision::kAdmitDegraded);
  EXPECT_EQ(admission.Admit(3), AdmissionDecision::kAdmitDegraded);
  EXPECT_EQ(admission.Admit(4), AdmissionDecision::kReject);
  EXPECT_EQ(admission.admitted(), 4);
  EXPECT_EQ(admission.rejected(), 1);
  EXPECT_EQ(admission.max_queue_depth(), 4);
}

TEST(AdmissionControllerTest, ZeroMaxQueueNeverRejects) {
  AdmissionController admission(AdmissionOptions{});
  for (int64_t depth = 0; depth < 1000; depth += 100) {
    EXPECT_EQ(admission.Admit(depth), AdmissionDecision::kAdmit);
  }
  EXPECT_EQ(admission.rejected(), 0);
}

TEST(AdmissionTest, QueueCapRejectsExcessSubmits) {
  EngineOptions options;
  options.max_queue = 4;
  options.max_wait_us = 100000;  // queue holds its fill during the window
  ServingEngine engine(options);
  engine.Publish(TinySnapshot());
  std::vector<std::future<ServeResponse>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(engine.Submit({}));
  int served = 0, rejected = 0;
  for (auto& future : futures) {
    const ServeResponse response = future.get();
    if (response.status == ServeStatus::kResourceExhausted) {
      // Rejection is explicit and empty — never a truncated list.
      EXPECT_TRUE(response.items.empty());
      ++rejected;
    } else {
      EXPECT_EQ(response.status, ServeStatus::kOk);
      ++served;
    }
  }
  EXPECT_EQ(served, 4);
  EXPECT_EQ(rejected, 6);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.admitted, 4);
  EXPECT_EQ(stats.rejected, 6);
  EXPECT_EQ(stats.max_queue_depth, 4);
}

TEST(AdmissionTest, PerRequestDeadlineOverridesEngineDefault) {
  EngineOptions options;
  options.deadline_us = 10000000;  // 10s engine default: never sheds here
  options.max_wait_us = 20000;     // pickup happens after ~20ms
  ServingEngine engine(options);
  engine.Publish(TinySnapshot());
  ServeRequest tight;
  tight.deadline_us = 1000;  // 1ms << 20ms pickup
  EXPECT_EQ(engine.ServeSync(tight).status, ServeStatus::kDeadlineExceeded);
  ServeRequest roomy;
  roomy.deadline_us = 10000000;
  EXPECT_EQ(engine.ServeSync(roomy).status, ServeStatus::kOk);
  EXPECT_EQ(engine.Stats().shed, 1);
}

TEST(AdmissionTest, CostAwareBatchingSplitsHugeK) {
  EngineOptions options;
  options.max_batch_size = 64;
  options.max_batch_cost = 100;
  options.max_wait_us = 50000;  // all six requests land in one window
  ServingEngine engine(options);
  engine.Publish(TinySnapshot());
  std::vector<std::future<ServeResponse>> futures;
  ServeRequest huge;
  huge.k = 95;  // 95 + 10 > 100: nothing rides with it
  futures.push_back(engine.Submit(huge));
  for (int i = 0; i < 5; ++i) {
    ServeRequest small;
    small.k = 10;
    futures.push_back(engine.Submit(small));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  // The huge-K request flushes alone; the five cheap ones share a batch.
  EXPECT_EQ(engine.Stats().batches, 2);
}

TEST(AdmissionTest, SubmitAfterStopResolvesCancelled) {
  ServingEngine engine;
  engine.Publish(TinySnapshot());
  engine.Stop();
  const ServeResponse response = engine.ServeSync(ServeRequest{});
  EXPECT_EQ(response.status, ServeStatus::kCancelled);
  EXPECT_TRUE(response.items.empty());
  EXPECT_GE(engine.Stats().cancelled, 1);
}

TEST(BackoffTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  Rng rng_a(11), rng_b(11);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(BackoffDelayUs(policy, attempt, &rng_a),
              BackoffDelayUs(policy, attempt, &rng_b));
  }
}

TEST(BackoffTest, NoJitterIsExactExponential) {
  RetryPolicy policy;
  policy.initial_backoff_us = 200;
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(BackoffDelayUs(policy, 1, &rng), 200);
  EXPECT_EQ(BackoffDelayUs(policy, 2, &rng), 400);
  EXPECT_EQ(BackoffDelayUs(policy, 3, &rng), 800);
}

TEST(BackoffTest, JitterStaysWithinBand) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1000;
  policy.jitter = 0.5;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const int64_t delay = BackoffDelayUs(policy, 1, &rng);
    EXPECT_GE(delay, 500);
    EXPECT_LE(delay, 1500);
  }
}

TEST(RetryingClientTest, RetriesRejectionsThenGivesUp) {
  EngineOptions options;
  options.max_queue = 1;
  options.max_wait_us = 100000;  // the one admitted request parks 100ms
  ServingEngine engine(options);
  engine.Publish(TinySnapshot());
  std::future<ServeResponse> parked = engine.Submit({});

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 500;
  RetryingClient client(&engine, policy, /*seed=*/9);
  const ServeResponse response = client.Serve(ServeRequest{});
  // The queue stays full for the whole window, so every attempt rejects.
  EXPECT_EQ(response.status, ServeStatus::kResourceExhausted);
  EXPECT_EQ(client.retries(), 2);  // attempts 2 and 3
  EXPECT_EQ(client.gave_up(), 1);
  EXPECT_TRUE(parked.get().ok());
}

TEST(RetryingClientTest, BudgetBoundsTotalWait) {
  EngineOptions options;
  options.max_queue = 1;
  options.max_wait_us = 100000;
  ServingEngine engine(options);
  engine.Publish(TinySnapshot());
  std::future<ServeResponse> parked = engine.Submit({});

  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_us = 2000;
  policy.jitter = 0.0;
  policy.budget_us = 10000;  // covers only a few backoffs
  RetryingClient client(&engine, policy, /*seed=*/9);
  const ServeResponse response = client.Serve(ServeRequest{});
  EXPECT_EQ(response.status, ServeStatus::kResourceExhausted);
  EXPECT_EQ(client.gave_up(), 1);
  // 2000 + 4000 = 6000 fits the 10ms budget; +8000 cannot.
  EXPECT_LE(client.retries(), 2);
  EXPECT_TRUE(parked.get().ok());
}

}  // namespace
}  // namespace serve
}  // namespace msopds
