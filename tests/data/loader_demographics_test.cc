#include <gtest/gtest.h>

#include <cstdio>
#include <unordered_set>

#include "data/demographics.h"
#include "data/synthetic.h"
#include "data/tsv_loader.h"

namespace msopds {
namespace {

TEST(TsvLoaderTest, MissingFilesReturnNotFound) {
  EXPECT_FALSE(LoadTsv("/no/ratings", "/no/trust").ok());
}

TEST(TsvLoaderTest, RoundTripThroughSave) {
  SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 40;
  config.num_ratings = 200;
  config.num_social_links = 60;
  Rng rng(5);
  const Dataset original = GenerateSynthetic(config, &rng);

  const std::string ratings_path = ::testing::TempDir() + "/ratings.tsv";
  const std::string trust_path = ::testing::TempDir() + "/trust.tsv";
  ASSERT_TRUE(SaveTsv(original, ratings_path, trust_path).ok());

  auto loaded = LoadTsv(ratings_path, trust_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().ratings.size(), original.ratings.size());
  // Social links between rating users survive; ids are re-compacted, so
  // compare counts only.
  EXPECT_EQ(loaded.value().social.num_edges(), original.social.num_edges());
  EXPECT_TRUE(loaded.value().Validate().ok());
  std::remove(ratings_path.c_str());
  std::remove(trust_path.c_str());
}

TEST(TsvLoaderTest, RejectsMalformedRows) {
  const std::string ratings_path = ::testing::TempDir() + "/bad_ratings.tsv";
  const std::string trust_path = ::testing::TempDir() + "/bad_trust.tsv";
  {
    FILE* f = fopen(ratings_path.c_str(), "w");
    fputs("1\t2\tnot_a_number\n", f);
    fclose(f);
    f = fopen(trust_path.c_str(), "w");
    fclose(f);
  }
  EXPECT_FALSE(LoadTsv(ratings_path, trust_path).ok());
  std::remove(ratings_path.c_str());
  std::remove(trust_path.c_str());
}

TEST(TsvLoaderTest, RejectsOutOfRangeRating) {
  const std::string ratings_path = ::testing::TempDir() + "/oor_ratings.tsv";
  const std::string trust_path = ::testing::TempDir() + "/oor_trust.tsv";
  {
    FILE* f = fopen(ratings_path.c_str(), "w");
    fputs("1\t2\t9\n", f);
    fclose(f);
    f = fopen(trust_path.c_str(), "w");
    fclose(f);
  }
  EXPECT_FALSE(LoadTsv(ratings_path, trust_path).ok());
  std::remove(ratings_path.c_str());
  std::remove(trust_path.c_str());
}

TEST(TsvLoaderTest, ErrorsCarryPathAndLineNumber) {
  const std::string ratings_path = ::testing::TempDir() + "/loc_ratings.tsv";
  const std::string trust_path = ::testing::TempDir() + "/loc_trust.tsv";
  {
    FILE* f = fopen(ratings_path.c_str(), "w");
    fputs("# comment\n1\t2\t3\n1\t2\tgarbage\n", f);
    fclose(f);
    f = fopen(trust_path.c_str(), "w");
    fclose(f);
  }
  auto loaded = LoadTsv(ratings_path, trust_path);
  ASSERT_FALSE(loaded.ok());
  // "path:line (byte N): reason" — the bad row sits on line 3 of the
  // file, 16 bytes in ("# comment\n" + "1\t2\t3\n").
  EXPECT_NE(loaded.status().message().find(ratings_path + ":3 (byte 16):"),
            std::string::npos)
      << loaded.status().ToString();
  std::remove(ratings_path.c_str());
  std::remove(trust_path.c_str());
}

TEST(TsvLoaderTest, MaxBadRowsToleratesCorruptLines) {
  const std::string ratings_path = ::testing::TempDir() + "/tol_ratings.tsv";
  const std::string trust_path = ::testing::TempDir() + "/tol_trust.tsv";
  {
    FILE* f = fopen(ratings_path.c_str(), "w");
    // Two good rows, one malformed, one out of range.
    fputs("1\t2\t3\nbroken row\n2\t3\t4\n3\t4\t99\n", f);
    fclose(f);
    f = fopen(trust_path.c_str(), "w");
    fputs("1\t2\nonly_one_field\n", f);
    fclose(f);
  }
  TsvOptions strict;
  EXPECT_FALSE(LoadTsv(ratings_path, trust_path, strict).ok());

  TsvOptions tolerant;
  tolerant.max_bad_rows = 3;  // budget shared across both files
  auto loaded = LoadTsv(ratings_path, trust_path, tolerant);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().ratings.size(), 2u);
  EXPECT_EQ(loaded.value().social.num_edges(), 1);

  TsvOptions too_tight;
  too_tight.max_bad_rows = 2;  // the third bad row exhausts the budget
  EXPECT_FALSE(LoadTsv(ratings_path, trust_path, too_tight).ok());

  std::remove(ratings_path.c_str());
  std::remove(trust_path.c_str());
}

TEST(TsvLoaderTest, LastDuplicateWins) {
  const std::string ratings_path = ::testing::TempDir() + "/dup_ratings.tsv";
  const std::string trust_path = ::testing::TempDir() + "/dup_trust.tsv";
  {
    FILE* f = fopen(ratings_path.c_str(), "w");
    fputs("1\t2\t3\n1\t2\t5\n", f);
    fclose(f);
    f = fopen(trust_path.c_str(), "w");
    fclose(f);
  }
  auto loaded = LoadTsv(ratings_path, trust_path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().ratings.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.value().ratings[0].value, 5.0);
  std::remove(ratings_path.c_str());
  std::remove(trust_path.c_str());
}

class DemographicsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_users = 120;
    config.num_items = 200;
    config.num_ratings = 1500;
    config.num_social_links = 400;
    Rng rng(17);
    dataset_ = GenerateSynthetic(config, &rng);
  }
  Dataset dataset_;
};

TEST_F(DemographicsTest, SharedMarketAcrossPlayers) {
  Rng rng(3);
  const auto players = SampleDemographics(dataset_, 3, &rng);
  ASSERT_EQ(players.size(), 3u);
  for (size_t p = 1; p < players.size(); ++p) {
    EXPECT_EQ(players[p].target_item, players[0].target_item);
    EXPECT_EQ(players[p].target_audience, players[0].target_audience);
    EXPECT_EQ(players[p].compete_items, players[0].compete_items);
  }
}

TEST_F(DemographicsTest, TargetIsLowestRatedOfPoolAndExcluded) {
  Rng rng(4);
  const auto players = SampleDemographics(dataset_, 1, &rng);
  const auto averages = dataset_.ItemAverageRatings();
  const double target_avg =
      averages[static_cast<size_t>(players[0].target_item)];
  for (int64_t item : players[0].compete_items) {
    EXPECT_NE(item, players[0].target_item);
    EXPECT_LE(target_avg, averages[static_cast<size_t>(item)]);
  }
}

TEST_F(DemographicsTest, SizesFollowOptions) {
  Rng rng(5);
  DemographicsOptions options;
  options.target_audience_fraction = 0.10;
  options.customer_base_size = 25;
  options.compete_items = 20;
  options.product_items = 30;
  const auto players = SampleDemographics(dataset_, 2, &rng, options);
  EXPECT_EQ(players[0].target_audience.size(), 12u);
  EXPECT_EQ(players[0].customer_base.size(), 25u);
  EXPECT_EQ(players[0].compete_items.size(), 19u);  // pool minus target
  EXPECT_EQ(players[0].product_items.size(), 30u);
}

TEST_F(DemographicsTest, ProductsExcludeMarketItems) {
  Rng rng(6);
  const auto players = SampleDemographics(dataset_, 2, &rng);
  std::unordered_set<int64_t> market(players[0].compete_items.begin(),
                                     players[0].compete_items.end());
  market.insert(players[0].target_item);
  for (const auto& player : players) {
    for (int64_t item : player.product_items) {
      EXPECT_EQ(market.count(item), 0u);
    }
  }
}

TEST_F(DemographicsTest, PlayersGetDistinctBases) {
  Rng rng(7);
  const auto players = SampleDemographics(dataset_, 2, &rng);
  // Random 100-of-120 samples almost surely differ in order/content.
  EXPECT_NE(players[0].customer_base, players[1].customer_base);
}

}  // namespace
}  // namespace msopds
