#include "data/split.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.h"

namespace msopds {
namespace {

Dataset SplitWorld() {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.num_ratings = 500;
  config.num_social_links = 100;
  Rng rng(61);
  return GenerateSynthetic(config, &rng);
}

class SplitTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitTest, PartitionIsExactAndDisjoint) {
  const Dataset world = SplitWorld();
  Rng rng(1);
  SplitOptions options;
  options.test_fraction = GetParam();
  const RatingSplit split = SplitRatings(world, &rng, options);
  EXPECT_EQ(split.train.size() + split.test.size(), world.ratings.size());

  std::set<std::pair<int64_t, int64_t>> train_pairs;
  for (const Rating& r : split.train) train_pairs.insert({r.user, r.item});
  for (const Rating& r : split.test) {
    EXPECT_EQ(train_pairs.count({r.user, r.item}), 0u);
  }
  // Test size within one of the target (user-floor constraint may shave).
  const double target =
      GetParam() * static_cast<double>(world.ratings.size());
  EXPECT_LE(static_cast<double>(split.test.size()), target + 1.0);
}

TEST_P(SplitTest, EveryUserKeepsATrainingRating) {
  const Dataset world = SplitWorld();
  Rng rng(2);
  SplitOptions options;
  options.test_fraction = GetParam();
  const RatingSplit split = SplitRatings(world, &rng, options);
  std::set<int64_t> train_users;
  for (const Rating& r : split.train) train_users.insert(r.user);
  for (int64_t u = 0; u < world.num_users; ++u) {
    if (world.UserRatingCounts()[static_cast<size_t>(u)] > 0) {
      EXPECT_EQ(train_users.count(u), 1u) << "user " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitTest,
                         ::testing::Values(0.1, 0.2, 0.5));

TEST(SplitTest, ZeroFractionKeepsEverythingInTrain) {
  const Dataset world = SplitWorld();
  Rng rng(3);
  SplitOptions options;
  options.test_fraction = 0.0;
  const RatingSplit split = SplitRatings(world, &rng, options);
  EXPECT_TRUE(split.test.empty());
  EXPECT_EQ(split.train.size(), world.ratings.size());
}

TEST(SplitTest, DeterministicGivenSeed) {
  const Dataset world = SplitWorld();
  Rng rng1(9), rng2(9);
  const RatingSplit a = SplitRatings(world, &rng1);
  const RatingSplit b = SplitRatings(world, &rng2);
  ASSERT_EQ(a.test.size(), b.test.size());
  for (size_t i = 0; i < a.test.size(); ++i) {
    EXPECT_TRUE(a.test[i] == b.test[i]);
  }
}

}  // namespace
}  // namespace msopds
