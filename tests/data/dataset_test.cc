#include "data/dataset.h"

#include <gtest/gtest.h>

namespace msopds {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.name = "tiny";
  d.num_users = 3;
  d.num_items = 2;
  d.social = UndirectedGraph(3);
  d.items = UndirectedGraph(2);
  d.ratings = {{0, 0, 5.0}, {0, 1, 3.0}, {1, 0, 1.0}};
  d.social.AddEdge(0, 1);
  return d;
}

TEST(DatasetTest, ValidatesConsistentData) {
  EXPECT_TRUE(TinyDataset().Validate().ok());
}

TEST(DatasetTest, RejectsGraphSizeMismatch) {
  Dataset d = TinyDataset();
  d.social = UndirectedGraph(2);
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, RejectsOutOfRangeUser) {
  Dataset d = TinyDataset();
  d.ratings.push_back({5, 0, 3.0});
  EXPECT_EQ(d.Validate().code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, RejectsOutOfRangeRatingValue) {
  Dataset d = TinyDataset();
  d.ratings.push_back({2, 1, 6.0});
  EXPECT_EQ(d.Validate().code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, RejectsDuplicatePairs) {
  Dataset d = TinyDataset();
  d.ratings.push_back({0, 0, 2.0});
  EXPECT_EQ(d.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, ItemAverageRatings) {
  const auto averages = TinyDataset().ItemAverageRatings();
  EXPECT_DOUBLE_EQ(averages[0], 3.0);
  EXPECT_DOUBLE_EQ(averages[1], 3.0);
}

TEST(DatasetTest, CountsPerUserAndItem) {
  const Dataset d = TinyDataset();
  const auto items = d.ItemRatingCounts();
  EXPECT_EQ(items[0], 2);
  EXPECT_EQ(items[1], 1);
  const auto users = d.UserRatingCounts();
  EXPECT_EQ(users[0], 2);
  EXPECT_EQ(users[2], 0);
}

TEST(DatasetTest, HasRating) {
  const Dataset d = TinyDataset();
  EXPECT_TRUE(d.HasRating(0, 1));
  EXPECT_FALSE(d.HasRating(2, 0));
}

TEST(DatasetTest, SummaryMentionsName) {
  EXPECT_NE(TinyDataset().Summary().find("tiny"), std::string::npos);
}

TEST(FilterCoreUsersTest, DropsUsersBelowThresholds) {
  Dataset d;
  d.num_users = 4;
  d.num_items = 1;
  d.social = UndirectedGraph(4);
  d.items = UndirectedGraph(1);
  // Users 0,1,2 form a triangle; user 3 isolated. All rate item 0
  // except user 3.
  d.social.AddEdge(0, 1);
  d.social.AddEdge(1, 2);
  d.social.AddEdge(0, 2);
  d.ratings = {{0, 0, 4.0}, {1, 0, 3.0}, {2, 0, 5.0}};
  const Dataset filtered = FilterCoreUsers(d, /*min_friends=*/2,
                                           /*min_ratings=*/1);
  EXPECT_EQ(filtered.num_users, 3);
  EXPECT_EQ(filtered.ratings.size(), 3u);
  EXPECT_EQ(filtered.social.num_edges(), 3);
  EXPECT_TRUE(filtered.Validate().ok());
}

TEST(FilterCoreUsersTest, CascadingRemoval) {
  // A chain 0-1-2: with min_friends = 2 only removal cascades to empty.
  Dataset d;
  d.num_users = 3;
  d.num_items = 1;
  d.social = UndirectedGraph(3);
  d.items = UndirectedGraph(1);
  d.social.AddEdge(0, 1);
  d.social.AddEdge(1, 2);
  d.ratings = {{0, 0, 3.0}, {1, 0, 3.0}, {2, 0, 3.0}};
  const Dataset filtered = FilterCoreUsers(d, 2, 1);
  EXPECT_EQ(filtered.num_users, 0);
}

}  // namespace
}  // namespace msopds
