#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_stats.h"

namespace msopds {
namespace {

class ProfileTest : public ::testing::TestWithParam<const char*> {
 protected:
  SyntheticConfig Config() const {
    const std::string name = GetParam();
    if (name == "ciao") return CiaoProfile(0.1);
    if (name == "epinions") return EpinionsProfile(0.1);
    return LibraryThingProfile(0.1);
  }
};

TEST_P(ProfileTest, GeneratesValidDataset) {
  Rng rng(7);
  const Dataset d = GenerateSynthetic(Config(), &rng);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.name, Config().name);
}

TEST_P(ProfileTest, HitsConfiguredSizesApproximately) {
  Rng rng(8);
  const SyntheticConfig config = Config();
  const Dataset d = GenerateSynthetic(config, &rng);
  EXPECT_EQ(d.num_users, config.num_users);
  EXPECT_EQ(d.num_items, config.num_items);
  // Rating and link volume within 25% of target (rejection sampling may
  // fall short on dense configs).
  EXPECT_GT(static_cast<double>(d.ratings.size()),
            0.75 * static_cast<double>(config.num_ratings));
  EXPECT_GT(static_cast<double>(d.social.num_edges()),
            0.75 * static_cast<double>(config.num_social_links));
}

TEST_P(ProfileTest, DeterministicGivenSeed) {
  Rng rng1(42), rng2(42);
  const Dataset a = GenerateSynthetic(Config(), &rng1);
  const Dataset b = GenerateSynthetic(Config(), &rng2);
  ASSERT_EQ(a.ratings.size(), b.ratings.size());
  for (size_t i = 0; i < a.ratings.size(); ++i) {
    EXPECT_TRUE(a.ratings[i] == b.ratings[i]);
  }
  EXPECT_EQ(a.social.num_edges(), b.social.num_edges());
  EXPECT_EQ(a.items.num_edges(), b.items.num_edges());
}

TEST_P(ProfileTest, EveryUserHasAtLeastOneRating) {
  Rng rng(9);
  const Dataset d = GenerateSynthetic(Config(), &rng);
  for (int64_t count : d.UserRatingCounts()) EXPECT_GE(count, 1);
}

TEST_P(ProfileTest, RatingsAreSkewedPositive) {
  Rng rng(10);
  const Dataset d = GenerateSynthetic(Config(), &rng);
  int64_t high = 0;
  for (const Rating& r : d.ratings) {
    EXPECT_GE(r.value, kMinRating);
    EXPECT_LE(r.value, kMaxRating);
    if (r.value >= 4.0) ++high;
  }
  // The J-shaped histogram yields far more 4-5s than a uniform draw.
  EXPECT_GT(static_cast<double>(high),
            0.45 * static_cast<double>(d.ratings.size()));
}

TEST_P(ProfileTest, SocialDegreeIsHeavyTailed) {
  Rng rng(11);
  const Dataset d = GenerateSynthetic(Config(), &rng);
  const GraphStats stats = ComputeGraphStats(d.social);
  EXPECT_GT(static_cast<double>(stats.max_degree), 3.0 * stats.mean_degree);
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileTest,
                         ::testing::Values("ciao", "epinions",
                                           "librarything"));

TEST(SyntheticTest, ProfilesMatchPaperRatios) {
  // At scale 1.0 the profile sizes are exactly the published counts.
  EXPECT_EQ(CiaoProfile(1.0).num_users, 2611);
  EXPECT_EQ(CiaoProfile(1.0).num_items, 3823);
  EXPECT_EQ(CiaoProfile(1.0).num_ratings, 44453);
  EXPECT_EQ(CiaoProfile(1.0).num_social_links, 49953);
  EXPECT_EQ(EpinionsProfile(1.0).num_users, 1929);
  EXPECT_EQ(EpinionsProfile(1.0).num_items, 9962);
  EXPECT_EQ(LibraryThingProfile(1.0).num_users, 1108);
  EXPECT_EQ(LibraryThingProfile(1.0).num_ratings, 19615);
}

TEST(SyntheticTest, ScaleShrinksLinearly) {
  const SyntheticConfig half = CiaoProfile(0.5);
  EXPECT_NEAR(static_cast<double>(half.num_users), 2611 * 0.5, 1.0);
  EXPECT_NEAR(static_cast<double>(half.num_ratings), 44453 * 0.5, 1.0);
}

TEST(SyntheticTest, TinyConfigStillValid) {
  SyntheticConfig config;
  config.num_users = 5;
  config.num_items = 4;
  config.num_ratings = 30;  // more than the 20 possible pairs
  config.num_social_links = 100;
  Rng rng(3);
  const Dataset d = GenerateSynthetic(config, &rng);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_LE(static_cast<int64_t>(d.ratings.size()), 20);
  EXPECT_LE(d.social.num_edges(), 10);
}

}  // namespace
}  // namespace msopds
