#include "defense/fake_detector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/baselines.h"
#include "data/demographics.h"
#include "data/synthetic.h"

namespace msopds {
namespace {

Dataset World(uint64_t seed = 77) {
  SyntheticConfig config;
  config.num_users = 90;
  config.num_items = 110;
  config.num_ratings = 1100;
  config.num_social_links = 350;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

TEST(FakeDetectorTest, ScoresHaveOnePerUser) {
  const Dataset world = World();
  const auto scores = SuspicionScores(world);
  EXPECT_EQ(static_cast<int64_t>(scores.size()), world.num_users);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 3.01);
  }
}

TEST(FakeDetectorTest, InjectedShillsScoreAboveMedian) {
  Dataset world = World();
  Rng rng(3);
  const Demographics demo = SampleDemographics(world, 1, &rng)[0];
  AttackBudget budget = AttackBudget::FromLevel(4, world);
  const int64_t real_users = world.num_users;
  RandomAttack attack;
  attack.Execute(&world, demo, budget, &rng);

  const auto scores = SuspicionScores(world);
  std::vector<double> real_scores(scores.begin(),
                                  scores.begin() + real_users);
  std::nth_element(real_scores.begin(),
                   real_scores.begin() + real_scores.size() / 2,
                   real_scores.end());
  const double median = real_scores[real_scores.size() / 2];
  for (int64_t fake = real_users; fake < world.num_users; ++fake) {
    EXPECT_GT(scores[static_cast<size_t>(fake)], median)
        << "fake user " << fake;
  }
}

TEST(FakeDetectorTest, DetectFindsMostInjectedFakes) {
  Dataset world = World(78);
  Rng rng(4);
  const Demographics demo = SampleDemographics(world, 1, &rng)[0];
  const int64_t real_users = world.num_users;
  RandomAttack attack;
  attack.Execute(&world, demo, AttackBudget::FromLevel(5, world), &rng);
  const int64_t num_fakes = world.num_users - real_users;

  // Distribution-fitted shills are deliberately hard to spot; require
  // at least half of them within the top 3k suspicious accounts
  // (recall@3k), which is far above the ~15% random-rank baseline.
  const auto flagged = DetectFakeUsers(world, 3 * num_fakes);
  int64_t caught = 0;
  for (int64_t u : flagged) {
    if (u >= real_users) ++caught;
  }
  EXPECT_GE(caught, num_fakes / 2);
}

TEST(FakeDetectorTest, DetectCountClamped) {
  const Dataset world = World();
  const auto flagged = DetectFakeUsers(world, world.num_users + 50);
  EXPECT_EQ(static_cast<int64_t>(flagged.size()), world.num_users);
}

TEST(RemoveUsersTest, RemovesRatingsLinksAndRemaps) {
  Dataset world = World();
  const int64_t before_users = world.num_users;
  std::vector<int64_t> id_map;
  const Dataset cleaned = RemoveUsers(world, {0, 5}, &id_map);
  EXPECT_EQ(cleaned.num_users, before_users - 2);
  EXPECT_TRUE(cleaned.Validate().ok());
  EXPECT_EQ(id_map[0], -1);
  EXPECT_EQ(id_map[5], -1);
  EXPECT_EQ(id_map[1], 0);
  for (const Rating& r : cleaned.ratings) {
    EXPECT_LT(r.user, cleaned.num_users);
  }
}

TEST(RemoveUsersTest, RemovingNobodyIsIdentityUpToName) {
  const Dataset world = World();
  const Dataset same = RemoveUsers(world, {});
  EXPECT_EQ(same.num_users, world.num_users);
  EXPECT_EQ(same.ratings.size(), world.ratings.size());
  EXPECT_EQ(same.social.num_edges(), world.social.num_edges());
}

TEST(ModerationTest, ModerationGuttingInjectionAttack) {
  // Injection attacks lose their fake profiles to moderation; the
  // cleaned dataset is close to the original.
  Dataset world = World(79);
  Rng rng(5);
  const Demographics demo = SampleDemographics(world, 1, &rng)[0];
  const int64_t real_users = world.num_users;
  const size_t clean_ratings = world.ratings.size();
  RandomAttack attack;
  attack.Execute(&world, demo, AttackBudget::FromLevel(5, world), &rng);
  const int64_t num_fakes = world.num_users - real_users;

  const auto flagged = DetectFakeUsers(world, num_fakes);
  const Dataset moderated = RemoveUsers(world, flagged);
  EXPECT_EQ(moderated.num_users, world.num_users - num_fakes);
  // Most of the poison volume is gone.
  EXPECT_LT(moderated.ratings.size(),
            clean_ratings + static_cast<size_t>(num_fakes) * 20);
}

}  // namespace
}  // namespace msopds
