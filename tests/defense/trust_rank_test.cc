#include "defense/trust_rank.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/baselines.h"
#include "attack/capacity.h"
#include "data/demographics.h"
#include "data/synthetic.h"

namespace msopds {
namespace {

Dataset TrustWorld(uint64_t seed = 91) {
  SyntheticConfig config;
  config.num_users = 80;
  config.num_items = 90;
  config.num_ratings = 900;
  config.num_social_links = 320;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

TEST(TrustRankTest, ScoresNormalizedAndComplete) {
  const Dataset world = TrustWorld();
  const auto trust = TrustScores(world);
  ASSERT_EQ(static_cast<int64_t>(trust.size()), world.num_users);
  double max_trust = 0.0;
  for (double t : trust) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
    max_trust = std::max(max_trust, t);
  }
  EXPECT_DOUBLE_EQ(max_trust, 1.0);
}

TEST(TrustRankTest, HubsOutrankIsolatedAccounts) {
  Dataset world = TrustWorld();
  const auto fakes = AddFakeUsers(&world, 3);  // isolated accounts
  const auto trust = TrustScores(world);
  // Highest-degree real account.
  int64_t hub = 0;
  for (int64_t u = 1; u < world.num_users; ++u) {
    if (world.social.Degree(u) > world.social.Degree(hub)) hub = u;
  }
  for (int64_t fake : fakes) {
    EXPECT_LT(trust[static_cast<size_t>(fake)],
              trust[static_cast<size_t>(hub)]);
    EXPECT_DOUBLE_EQ(trust[static_cast<size_t>(fake)], 0.0);
  }
}

TEST(TrustRankTest, BoughtLinksBuyOnlyLimitedTrust) {
  // A fake account wired to a handful of hired users must still rank
  // below the typical organic account.
  Dataset world = TrustWorld();
  Rng rng(5);
  const Demographics demo = SampleDemographics(world, 1, &rng)[0];
  const auto fakes = AddFakeUsers(&world, 2);
  for (int64_t fake : fakes) {
    for (size_t k = 0; k < 5; ++k) {
      world.social.AddEdge(demo.customer_base[k], fake);
    }
  }
  const auto trust = TrustScores(world);
  std::vector<double> real_trust(trust.begin(),
                                 trust.begin() + (world.num_users - 2));
  std::nth_element(real_trust.begin(),
                   real_trust.begin() + real_trust.size() / 2,
                   real_trust.end());
  const double median = real_trust[real_trust.size() / 2];
  for (int64_t fake : fakes) {
    EXPECT_LT(trust[static_cast<size_t>(fake)], median) << "fake " << fake;
  }
}

TEST(TrustRankTest, DetectByTrustFlagsIsolatedFakesFirst) {
  Dataset world = TrustWorld(92);
  const int64_t real_users = world.num_users;
  const auto fakes = AddFakeUsers(&world, 4);
  const auto flagged = DetectByTrust(world, 4);
  int64_t caught = 0;
  for (int64_t u : flagged) {
    if (u >= real_users) ++caught;
  }
  // Isolated accounts have exactly zero trust; only organic isolated
  // accounts can compete with them, and this profile has none.
  EXPECT_EQ(caught + static_cast<int64_t>(std::count_if(
                         flagged.begin(), flagged.end(),
                         [&](int64_t u) {
                           return u < real_users &&
                                  world.social.Degree(u) == 0;
                         })),
            4);
  (void)fakes;
}

TEST(TrustRankTest, DetectCountClamped) {
  const Dataset world = TrustWorld();
  EXPECT_EQ(static_cast<int64_t>(
                DetectByTrust(world, world.num_users + 99).size()),
            world.num_users);
}

TEST(TrustRankTest, SeedFractionControlsSeeds) {
  const Dataset world = TrustWorld();
  TrustRankOptions narrow;
  narrow.seed_fraction = 0.02;
  TrustRankOptions broad;
  broad.seed_fraction = 0.5;
  const auto trust_narrow = TrustScores(world, narrow);
  const auto trust_broad = TrustScores(world, broad);
  // Broad seeding spreads trust: more users with non-trivial trust.
  auto nontrivial = [](const std::vector<double>& t) {
    int64_t count = 0;
    for (double v : t) count += v > 0.05;
    return count;
  };
  EXPECT_GT(nontrivial(trust_broad), nontrivial(trust_narrow));
}

}  // namespace
}  // namespace msopds
