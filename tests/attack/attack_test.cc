#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "attack/baselines.h"
#include "attack/importance_vector.h"
#include "attack/pga_attack.h"
#include "attack/revadv_attack.h"
#include "attack/sattack.h"
#include "attack/trial_attack.h"
#include "data/demographics.h"
#include "data/synthetic.h"

namespace msopds {
namespace {

struct Fixture {
  Dataset world;
  Demographics demo;
  AttackBudget budget;

  explicit Fixture(uint64_t seed = 33) {
    SyntheticConfig config;
    config.num_users = 80;
    config.num_items = 100;
    config.num_ratings = 900;
    config.num_social_links = 250;
    Rng rng(seed);
    world = GenerateSynthetic(config, &rng);
    DemographicsOptions options;
    options.customer_base_size = 20;
    options.compete_items = 10;
    options.product_items = 15;
    demo = SampleDemographics(world, 1, &rng, options)[0];
    budget = AttackBudget::FromLevel(2, world);
  }
};

TEST(AttackBudgetTest, FollowsPaperFormulas) {
  Fixture f;
  const AttackBudget b = AttackBudget::FromLevel(2, f.world);
  // fake users = 2% of 80 = 1.6 -> 2; N = 2 * 5% * 80 = 8.
  EXPECT_EQ(b.num_fake_users, 2);
  EXPECT_EQ(b.hired_raters, 8);
  EXPECT_EQ(b.social_links, 16);
  EXPECT_EQ(b.item_links, 8);
  EXPECT_DOUBLE_EQ(b.promote_rating, 5.0);
  const AttackBudget b5 = AttackBudget::FromLevel(5, f.world);
  EXPECT_GT(b5.num_fake_users, b.num_fake_users);
  EXPECT_GT(b5.hired_raters, b.hired_raters);
}

TEST(CapacityTest, ComprehensiveLayoutAndCounts) {
  Fixture f;
  Dataset world = f.world;
  const auto fakes = AddFakeUsers(&world, 2);
  const CapacitySet capacity =
      CapacitySet::MakeComprehensive(world, f.demo, fakes, 5.0);
  // Ratings first, then social, then item actions.
  EXPECT_LE(capacity.num_ratings(), 20);
  EXPECT_EQ(capacity.num_social_edges(), 20 * 2);
  EXPECT_LE(capacity.num_item_edges(), 15);
  int64_t index = 0;
  for (const PoisonAction& action : capacity.actions()) {
    if (index < capacity.num_ratings()) {
      EXPECT_EQ(action.type, ActionType::kRating);
      EXPECT_EQ(action.b, f.demo.target_item);
      EXPECT_DOUBLE_EQ(action.rating, 5.0);
    } else if (index < capacity.num_ratings() + capacity.num_social_edges()) {
      EXPECT_EQ(action.type, ActionType::kSocialEdge);
    } else {
      EXPECT_EQ(action.type, ActionType::kItemEdge);
      EXPECT_EQ(action.b, f.demo.target_item);
    }
    ++index;
  }
}

TEST(CapacityTest, RatingOnly) {
  Fixture f;
  const CapacitySet capacity =
      CapacitySet::MakeRatingOnly(f.world, f.demo, 1.0);
  EXPECT_EQ(capacity.num_social_edges(), 0);
  EXPECT_EQ(capacity.num_item_edges(), 0);
  EXPECT_GT(capacity.num_ratings(), 0);
  for (const PoisonAction& action : capacity.actions()) {
    EXPECT_DOUBLE_EQ(action.rating, 1.0);
  }
}

TEST(CapacityTest, SkipsExistingRatingsAndEdges) {
  Fixture f;
  Dataset world = f.world;
  // Pre-rate the target with the first base user; pre-link a product.
  world.ratings.push_back({f.demo.customer_base[0], f.demo.target_item, 3.0});
  world.items.AddEdge(f.demo.product_items[0], f.demo.target_item);
  const CapacitySet capacity =
      CapacitySet::MakeComprehensive(world, f.demo, {}, 5.0);
  for (const PoisonAction& action : capacity.actions()) {
    if (action.type == ActionType::kRating) {
      EXPECT_NE(action.a, f.demo.customer_base[0]);
    } else if (action.type == ActionType::kItemEdge) {
      EXPECT_NE(action.a, f.demo.product_items[0]);
    }
  }
}

TEST(CapacityTest, FilterTypes) {
  Fixture f;
  Dataset world = f.world;
  const auto fakes = AddFakeUsers(&world, 1);
  const CapacitySet capacity =
      CapacitySet::MakeComprehensive(world, f.demo, fakes, 5.0);
  const CapacitySet ratings_only = capacity.FilterTypes(true, false, false);
  EXPECT_EQ(ratings_only.num_social_edges(), 0);
  EXPECT_EQ(ratings_only.num_item_edges(), 0);
  EXPECT_EQ(ratings_only.num_ratings(), capacity.num_ratings());
}

TEST(CapacityTest, ClampBudget) {
  Fixture f;
  const CapacitySet capacity =
      CapacitySet::MakeRatingOnly(f.world, f.demo, 5.0);
  const Budget clamped =
      capacity.ClampBudget(Budget{1000000, 1000000, 1000000});
  EXPECT_EQ(clamped.max_ratings, capacity.num_ratings());
  EXPECT_EQ(clamped.max_social_edges, 0);
}

class ImportanceVectorTest : public ::testing::TestWithParam<int> {};

TEST_P(ImportanceVectorTest, BinarizeRespectsBudgetPerType) {
  Fixture f(100 + static_cast<uint64_t>(GetParam()));
  Dataset world = f.world;
  const auto fakes = AddFakeUsers(&world, 2);
  const CapacitySet capacity =
      CapacitySet::MakeComprehensive(world, f.demo, fakes, 5.0);
  Rng rng(GetParam());
  ImportanceVector iv(&capacity, &rng);
  const Budget budget{3 + GetParam() % 4, 5, 2};
  const Tensor mask = iv.Binarize(budget);
  const Budget clamped = capacity.ClampBudget(budget);
  int64_t ratings = 0, social = 0, item = 0;
  for (int64_t i = 0; i < mask.size(); ++i) {
    if (mask.at(i) == 0.0) continue;
    switch (capacity.actions()[static_cast<size_t>(i)].type) {
      case ActionType::kRating:
        ++ratings;
        break;
      case ActionType::kSocialEdge:
        ++social;
        break;
      case ActionType::kItemEdge:
        ++item;
        break;
    }
  }
  EXPECT_EQ(ratings, clamped.max_ratings);
  EXPECT_EQ(social, clamped.max_social_edges);
  EXPECT_EQ(item, clamped.max_item_edges);
}

INSTANTIATE_TEST_SUITE_P(Budgets, ImportanceVectorTest,
                         ::testing::Range(0, 6));

TEST(ImportanceVectorTest, SelectsTopValuedActions) {
  Fixture f;
  const CapacitySet capacity =
      CapacitySet::MakeRatingOnly(f.world, f.demo, 5.0);
  Rng rng(1);
  ImportanceVector iv(&capacity, &rng, /*init_scale=*/0.0);
  // Push up two specific entries with a negative-gradient update.
  Tensor gradient = Tensor::Zeros({capacity.size()});
  gradient.at(3) = -10.0;
  gradient.at(7) = -5.0;
  iv.ApplyUpdate(gradient, 1.0);
  const Tensor mask = iv.Binarize(Budget{2, 0, 0});
  EXPECT_DOUBLE_EQ(mask.at(3), 1.0);
  EXPECT_DOUBLE_EQ(mask.at(7), 1.0);
}

TEST(ImportanceVectorTest, ExtractPlanMatchesBinarize) {
  Fixture f;
  const CapacitySet capacity =
      CapacitySet::MakeRatingOnly(f.world, f.demo, 5.0);
  Rng rng(2);
  ImportanceVector iv(&capacity, &rng);
  const Budget budget{4, 0, 0};
  const PoisonPlan plan = iv.ExtractPlan(budget);
  EXPECT_EQ(static_cast<int64_t>(plan.actions.size()),
            capacity.ClampBudget(budget).max_ratings);
}

TEST(PoisonPlanTest, ApplyAddsRatingsAndEdges) {
  Fixture f;
  Dataset world = f.world;
  const int64_t before = static_cast<int64_t>(world.ratings.size());
  PoisonPlan plan;
  plan.actions.push_back({ActionType::kRating, 0, f.demo.target_item, 5.0});
  plan.actions.push_back({ActionType::kSocialEdge, 0, 1, 0.0});
  plan.actions.push_back(
      {ActionType::kItemEdge, f.demo.product_items[0], f.demo.target_item, 0.0});
  plan.ApplyTo(&world);
  EXPECT_EQ(static_cast<int64_t>(world.ratings.size()), before + 1);
  EXPECT_TRUE(world.social.HasEdge(0, 1));
  EXPECT_TRUE(
      world.items.HasEdge(f.demo.product_items[0], f.demo.target_item));
}

TEST(PoisonPlanTest, ApplyOverwritesExistingRating) {
  Dataset world;
  world.num_users = 2;
  world.num_items = 1;
  world.social = UndirectedGraph(2);
  world.items = UndirectedGraph(1);
  world.ratings = {{0, 0, 2.0}};
  PoisonPlan plan;
  plan.actions.push_back({ActionType::kRating, 0, 0, 5.0});
  plan.ApplyTo(&world);
  ASSERT_EQ(world.ratings.size(), 1u);
  EXPECT_DOUBLE_EQ(world.ratings[0].value, 5.0);
}

TEST(BaselinesTest, FitRatingDistributionMatchesMoments) {
  Dataset world;
  world.num_users = 3;
  world.num_items = 2;
  world.social = UndirectedGraph(3);
  world.items = UndirectedGraph(2);
  world.ratings = {{0, 0, 2.0}, {1, 0, 4.0}, {2, 1, 3.0}};
  const RatingDistribution dist = FitRatingDistribution(world);
  EXPECT_DOUBLE_EQ(dist.mean, 3.0);
  EXPECT_NEAR(dist.stddev, std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(BaselinesTest, SampleRatingInRangeAndInteger) {
  RatingDistribution dist{3.5, 1.5};
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double r = SampleRating(dist, &rng);
    EXPECT_GE(r, kMinRating);
    EXPECT_LE(r, kMaxRating);
    EXPECT_DOUBLE_EQ(r, std::round(r));
  }
}

TEST(BaselinesTest, NoneAttackLeavesWorldUntouched) {
  Fixture f;
  Dataset world = f.world;
  NoneAttack attack;
  Rng rng(1);
  const PoisonPlan plan = attack.Execute(&world, f.demo, f.budget, &rng);
  EXPECT_TRUE(plan.actions.empty());
  EXPECT_EQ(world.num_users, f.world.num_users);
  EXPECT_EQ(world.ratings.size(), f.world.ratings.size());
}

// Shared checks for all Injection Attack implementations.
void CheckInjectionAttack(Attack* attack, bool expect_filler_variety) {
  Fixture f;
  Dataset world = f.world;
  Rng rng(5);
  const PoisonPlan plan = attack->Execute(&world, f.demo, f.budget, &rng);
  EXPECT_TRUE(world.Validate().ok()) << attack->name();
  EXPECT_EQ(world.num_users, f.world.num_users + f.budget.num_fake_users);

  // Every fake user 5-stars the target.
  std::unordered_set<int64_t> fake_target_raters;
  int64_t filler_ratings = 0;
  for (const PoisonAction& action : plan.actions) {
    ASSERT_EQ(action.type, ActionType::kRating) << attack->name();
    EXPECT_GE(action.a, f.world.num_users) << "IA only uses fake users";
    EXPECT_GE(action.rating, kMinRating);
    EXPECT_LE(action.rating, kMaxRating);
    if (action.b == f.demo.target_item) {
      EXPECT_DOUBLE_EQ(action.rating, 5.0);
      fake_target_raters.insert(action.a);
    } else {
      ++filler_ratings;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(fake_target_raters.size()),
            f.budget.num_fake_users);
  if (expect_filler_variety) {
    EXPECT_GT(filler_ratings, 0);
  }
}

TEST(BaselinesTest, RandomAttackInjectsValidProfile) {
  RandomAttack attack;
  CheckInjectionAttack(&attack, true);
}

TEST(BaselinesTest, PopularAttackInjectsValidProfile) {
  PopularAttack attack;
  CheckInjectionAttack(&attack, true);
}

TEST(BaselinesTest, PopularAttackIncludesMostPopularItem) {
  Fixture f;
  Dataset world = f.world;
  const auto counts = world.ItemRatingCounts();
  int64_t most_popular = 0;
  for (int64_t i = 1; i < world.num_items; ++i) {
    if (counts[static_cast<size_t>(i)] >
        counts[static_cast<size_t>(most_popular)]) {
      most_popular = i;
    }
  }
  PopularAttack attack;
  Rng rng(6);
  const PoisonPlan plan = attack.Execute(&world, f.demo, f.budget, &rng);
  bool found = false;
  for (const PoisonAction& action : plan.actions) {
    if (action.b == most_popular) found = true;
  }
  if (most_popular != f.demo.target_item) {
    EXPECT_TRUE(found);
  }
}

TEST(PgaAttackTest, ProducesValidOptimizedProfile) {
  UnrolledMfOptions options;
  options.pretrain_epochs = 10;
  options.outer_iterations = 3;
  PgaAttack attack(options);
  CheckInjectionAttack(&attack, true);
}

TEST(RevAdvAttackTest, ProducesValidOptimizedProfile) {
  UnrolledMfOptions options = RevAdvAttack::DefaultOptions();
  options.pretrain_epochs = 10;
  options.outer_iterations = 4;
  options.refresh_every = 2;
  RevAdvAttack attack(options);
  CheckInjectionAttack(&attack, true);
}

TEST(SAttackTest, ProducesValidInfluenceProfile) {
  SAttack attack;
  CheckInjectionAttack(&attack, true);
}

TEST(TrialAttackTest, ProducesValidSelectedProfile) {
  TrialOptions options;
  options.surrogate_epochs = 10;
  options.candidates_per_fake = 3;
  TrialAttack attack(options);
  CheckInjectionAttack(&attack, true);
}

TEST(UnrolledSurrogateTest, OptimizationImprovesInjectionObjective) {
  Fixture f;
  Dataset world = f.world;
  const int64_t real_users = world.num_users;
  const auto fakes = AddFakeUsers(&world, 2);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  Rng rng(11);
  for (int64_t fake : fakes) {
    for (int64_t item : rng.SampleWithoutReplacement(world.num_items, 10)) {
      if (item != f.demo.target_item) pairs.emplace_back(fake, item);
    }
  }
  Tensor init({static_cast<int64_t>(pairs.size())});
  init.Fill(3.0);
  UnrolledMfOptions options;
  options.pretrain_epochs = 15;
  options.outer_iterations = 5;
  const Tensor optimized = OptimizeFakeRatings(world, f.demo, pairs, init,
                                               real_users, options, &rng);
  ASSERT_EQ(optimized.size(), init.size());
  double moved = 0.0;
  for (int64_t i = 0; i < optimized.size(); ++i) {
    EXPECT_GE(optimized.at(i), kMinRating);
    EXPECT_LE(optimized.at(i), kMaxRating);
    moved += std::fabs(optimized.at(i) - 3.0);
  }
  EXPECT_GT(moved, 0.0) << "gradient steps should move some values";
}

}  // namespace
}  // namespace msopds
