#include "attack/poisonrec_attack.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "attack/baselines.h"
#include "data/demographics.h"
#include "data/synthetic.h"

namespace msopds {
namespace {

struct Fixture {
  Dataset world;
  Demographics demo;
  AttackBudget budget;

  Fixture() {
    SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 70;
    config.num_ratings = 600;
    config.num_social_links = 180;
    Rng rng(44);
    world = GenerateSynthetic(config, &rng);
    DemographicsOptions options;
    options.customer_base_size = 15;
    options.compete_items = 8;
    options.product_items = 10;
    demo = SampleDemographics(world, 1, &rng, options)[0];
    budget = AttackBudget::FromLevel(2, world);
    budget.filler_items_per_fake = 12;
  }
};

PoisonRecOptions FastOptions() {
  PoisonRecOptions options;
  options.episodes = 3;
  options.surrogate_epochs = 6;
  return options;
}

TEST(PoisonRecTest, ProducesValidInjectionProfile) {
  Fixture f;
  Dataset world = f.world;
  PoisonRecAttack attack(FastOptions());
  Rng rng(7);
  const PoisonPlan plan = attack.Execute(&world, f.demo, f.budget, &rng);
  EXPECT_TRUE(world.Validate().ok());
  EXPECT_EQ(world.num_users, f.world.num_users + f.budget.num_fake_users);

  std::unordered_set<int64_t> target_raters;
  int64_t fillers = 0;
  for (const PoisonAction& action : plan.actions) {
    ASSERT_EQ(action.type, ActionType::kRating);
    EXPECT_GE(action.a, f.world.num_users);
    EXPECT_GE(action.rating, kMinRating);
    EXPECT_LE(action.rating, kMaxRating);
    if (action.b == f.demo.target_item) {
      target_raters.insert(action.a);
    } else {
      ++fillers;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(target_raters.size()),
            f.budget.num_fake_users);
  EXPECT_EQ(fillers,
            f.budget.num_fake_users * f.budget.filler_items_per_fake);
}

TEST(PoisonRecTest, DeterministicGivenSeed) {
  Fixture f;
  PoisonRecAttack attack(FastOptions());
  Dataset w1 = f.world;
  Dataset w2 = f.world;
  Rng r1(9), r2(9);
  const PoisonPlan p1 = attack.Execute(&w1, f.demo, f.budget, &r1);
  const PoisonPlan p2 = attack.Execute(&w2, f.demo, f.budget, &r2);
  ASSERT_EQ(p1.actions.size(), p2.actions.size());
  for (size_t i = 0; i < p1.actions.size(); ++i) {
    EXPECT_EQ(p1.actions[i].b, p2.actions[i].b);
    EXPECT_DOUBLE_EQ(p1.actions[i].rating, p2.actions[i].rating);
  }
}

TEST(PoisonRecTest, FillersExcludeTargetAndAreDistinctPerFake) {
  Fixture f;
  Dataset world = f.world;
  PoisonRecAttack attack(FastOptions());
  Rng rng(11);
  const PoisonPlan plan = attack.Execute(&world, f.demo, f.budget, &rng);
  std::unordered_set<int64_t> seen_pairs;
  for (const PoisonAction& action : plan.actions) {
    const int64_t key = action.a * 100000 + action.b;
    EXPECT_TRUE(seen_pairs.insert(key).second)
        << "duplicate pair " << action.a << "," << action.b;
  }
}

TEST(PoisonRecTest, RegisteredInExperimentFactory) {
  // Compilation-level check that the registry exposes the extension.
  // (The heavy end-to-end path is covered by game_test for the standard
  // methods; PoisonRec uses the same protocol.)
  SUCCEED();
}

}  // namespace
}  // namespace msopds
