// Exhaustive registry sweep: every op with a gradcheck example must pass
// first-order (MaxGradError) and second-order (MaxHvpError) checks, its
// example graph must verify cleanly, and the registry must cover every
// primitive ops.cc records. This is the ctest twin of tools/verify_graph.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/verify.h"

namespace msopds {
namespace {

constexpr double kMaxGradError = 1e-6;
constexpr double kMaxHvpError = 1e-5;

int64_t OpCount(const GraphStats& stats, const std::string& name) {
  const auto it = stats.op_counts.find(name);
  return it == stats.op_counts.end() ? 0 : it->second;
}

TEST(OpRegistryTest, CoversEveryRecordedPrimitive) {
  const std::set<std::string> expected = {
      "Add",        "Sub",        "Mul",        "Div",
      "Neg",        "ScalarMul",  "AddScalar",  "Exp",
      "Log",        "Sqrt",       "Reshape",    "Where",
      "MatMul",     "MatMulNT",   "MatMulTN",   "Transpose",
      "Sum",        "RowSum",
      "TileCols",   "ConcatCols", "SliceCols",  "PadCols",
      "Concat1",    "Slice1",     "Pad1",       "GatherRows",
      "ScatterAddRows", "Gather1", "ScatterAdd1", "SpMM",
      "EdgeDot"};
  std::set<std::string> registered;
  for (const OpSpec& spec : OpRegistry()) {
    EXPECT_TRUE(registered.insert(spec.name).second)
        << "duplicate registry entry: " << spec.name;
  }
  EXPECT_EQ(registered, expected);
}

TEST(OpRegistryTest, EverySpecHasAnInferFunction) {
  for (const OpSpec& spec : OpRegistry()) {
    EXPECT_TRUE(static_cast<bool>(spec.infer)) << spec.name;
    EXPECT_GT(spec.arity, 0) << spec.name;
  }
}

TEST(OpRegistryTest, ExamplesVerifyCleanAndExerciseTheirOp) {
  for (const OpSpec& spec : OpRegistry()) {
    if (!spec.example) continue;
    const GradcheckCase c = spec.example();
    std::vector<Variable> params;
    params.reserve(c.points.size());
    for (const Tensor& p : c.points) params.push_back(Param(p.Clone()));
    Variable out = c.fn(params);
    const VerifyResult result = GraphVerifier().Verify(out, params);
    EXPECT_TRUE(result.ok()) << spec.name << ":\n" << result.Report();
    EXPECT_TRUE(result.diagnostics.empty()) << spec.name << ":\n"
                                            << result.Report();
    EXPECT_GT(OpCount(result.stats, spec.name), 0)
        << spec.name << " example does not record the op it documents";
  }
}

TEST(OpRegistryTest, ExhaustiveFirstOrderGradcheck) {
  int checked = 0;
  for (const OpSpec& spec : OpRegistry()) {
    if (!spec.example) continue;
    const GradcheckCase c = spec.example();
    EXPECT_LT(MaxGradError(c.fn, c.points), kMaxGradError)
        << spec.name << " (" << c.description << ")";
    ++checked;
  }
  // PadCols/Pad1 are only reachable as backwards of SliceCols/Slice1.
  EXPECT_EQ(checked, static_cast<int>(OpRegistry().size()) - 2);
}

TEST(OpRegistryTest, ExhaustiveSecondOrderGradcheck) {
  for (const OpSpec& spec : OpRegistry()) {
    if (!spec.example) continue;
    const GradcheckCase c = spec.example();
    const Tensor direction = Tensor::Full(c.points[c.hvp_arg].shape(), 0.35);
    EXPECT_LT(MaxHvpError(c.fn, c.points, c.hvp_arg, direction), kMaxHvpError)
        << spec.name << " (" << c.description << ")";
  }
}

TEST(OpRegistryTest, BackwardOnlyOpsAreExercisedThroughTheirForward) {
  // The two example-less ops must appear in the gradient graphs of the ops
  // whose backward they implement, so the sweep still covers them.
  struct Pair {
    const char* forward;
    const char* backward_only;
  };
  for (const Pair& pair : {Pair{"SliceCols", "PadCols"},
                           Pair{"Slice1", "Pad1"}}) {
    const OpSpec* spec = FindOpSpec(pair.forward);
    ASSERT_NE(spec, nullptr) << pair.forward;
    ASSERT_TRUE(static_cast<bool>(spec->example)) << pair.forward;
    const GradcheckCase c = spec->example();
    std::vector<Variable> params;
    for (const Tensor& p : c.points) params.push_back(Param(p.Clone()));
    Variable out = c.fn(params);
    Variable grad = Grad(out, {params[0]})[0];
    const VerifyResult result = VerifyGraph(grad);
    EXPECT_TRUE(result.ok()) << result.Report();
    EXPECT_GT(OpCount(result.stats, pair.backward_only), 0)
        << pair.backward_only << " missing from " << pair.forward
        << "'s gradient graph";
  }
}

TEST(OpRegistryTest, FindOpSpecLookup) {
  ASSERT_NE(FindOpSpec("SpMM"), nullptr);
  EXPECT_EQ(FindOpSpec("SpMM")->arity, 2);
  EXPECT_EQ(FindOpSpec("NoSuchOp"), nullptr);
}

}  // namespace
}  // namespace msopds
