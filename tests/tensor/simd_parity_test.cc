// Scalar-vs-vector bit-parity for the SIMD kernel backends (DESIGN.md
// §14): every dispatch wrapper in tensor/simd.h must produce the exact
// bits of the scalar reference path, because both implement one fixed
// 4-lane schedule. The sweep covers remainder-lane sizes (n mod 8 in
// 1..7) where the tail handling lives, and every op-registry example
// end-to-end (forward + gradients). On machines where the probe picks
// the scalar backend these tests degenerate to scalar-vs-scalar and
// pass vacuously — the CI matrix runs them on AVX2 hardware.

#include "tensor/simd.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/grad.h"
#include "tensor/ops.h"
#include "tensor/verify.h"

namespace msopds {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool BitEqual(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

// Deterministic non-trivial fill with mixed signs and magnitudes.
std::vector<double> TestValues(int64_t n, uint64_t salt) {
  std::vector<double> values(static_cast<size_t>(n));
  uint64_t state = salt * 2654435761u + 12345u;
  for (int64_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double unit =
        static_cast<double>(state >> 11) / 9007199254740992.0;  // [0, 1)
    values[static_cast<size_t>(i)] = (unit - 0.5) * 3.7;
  }
  return values;
}

// Strictly positive variant (Div / Sqrt operands).
std::vector<double> PositiveValues(int64_t n, uint64_t salt) {
  std::vector<double> values = TestValues(n, salt);
  for (double& v : values) v = 0.25 + (v < 0.0 ? -v : v);
  return values;
}

class ScopedScalarBackend {
 public:
  ScopedScalarBackend()
      : previous_(
            simd::internal::SetBackendForTesting(simd::Backend::kScalar)) {}
  ~ScopedScalarBackend() { simd::internal::SetBackendForTesting(previous_); }
  ScopedScalarBackend(const ScopedScalarBackend&) = delete;
  ScopedScalarBackend& operator=(const ScopedScalarBackend&) = delete;

 private:
  simd::Backend previous_;
};

// Sizes straddling the vector width: every remainder class mod 8 at
// several magnitudes, including grain-sized buffers.
std::vector<int64_t> ParitySizes() {
  std::vector<int64_t> sizes;
  for (int64_t base : {int64_t{0}, int64_t{8}, int64_t{16}, int64_t{64},
                       int64_t{4096}}) {
    for (int64_t r = 0; r < 8; ++r) {
      if (base + r > 0) sizes.push_back(base + r);
    }
  }
  return sizes;
}

TEST(SimdParityTest, ReductionsMatchScalarReferenceBitForBit) {
  for (int64_t n : ParitySizes()) {
    const std::vector<double> a = TestValues(n, 1);
    const std::vector<double> b = TestValues(n, 2);
    EXPECT_TRUE(BitEqual(simd::Dot(a.data(), b.data(), n),
                         simd::scalar::Dot(a.data(), b.data(), n)))
        << "Dot n=" << n;
    EXPECT_TRUE(BitEqual(simd::Sum(a.data(), n), simd::scalar::Sum(a.data(), n)))
        << "Sum n=" << n;
    EXPECT_TRUE(BitEqual(simd::MaxAbs(a.data(), n),
                         simd::scalar::MaxAbs(a.data(), n)))
        << "MaxAbs n=" << n;
  }
}

TEST(SimdParityTest, ElementwiseMapsMatchScalarReferenceBitForBit) {
  for (int64_t n : ParitySizes()) {
    const std::vector<double> a = TestValues(n, 3);
    const std::vector<double> b = PositiveValues(n, 4);
    std::vector<double> out_vector(static_cast<size_t>(n));
    std::vector<double> out_scalar(static_cast<size_t>(n));

    simd::Add(a.data(), b.data(), out_vector.data(), n);
    simd::scalar::Add(a.data(), b.data(), out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Add n=" << n;

    simd::Sub(a.data(), b.data(), out_vector.data(), n);
    simd::scalar::Sub(a.data(), b.data(), out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Sub n=" << n;

    simd::Mul(a.data(), b.data(), out_vector.data(), n);
    simd::scalar::Mul(a.data(), b.data(), out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Mul n=" << n;

    simd::Div(a.data(), b.data(), out_vector.data(), n);
    simd::scalar::Div(a.data(), b.data(), out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Div n=" << n;

    simd::Scale(a.data(), 1.7, out_vector.data(), n);
    simd::scalar::Scale(a.data(), 1.7, out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Scale n=" << n;

    simd::Offset(a.data(), -0.9, out_vector.data(), n);
    simd::scalar::Offset(a.data(), -0.9, out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Offset n=" << n;

    simd::Neg(a.data(), out_vector.data(), n);
    simd::scalar::Neg(a.data(), out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Neg n=" << n;

    simd::Sqrt(b.data(), out_vector.data(), n);
    simd::scalar::Sqrt(b.data(), out_scalar.data(), n);
    EXPECT_TRUE(BitEqual(out_vector, out_scalar)) << "Sqrt n=" << n;

    std::vector<double> acc_vector = TestValues(n, 5);
    std::vector<double> acc_scalar = acc_vector;
    simd::Axpy(0.31, a.data(), acc_vector.data(), n);
    simd::scalar::Axpy(0.31, a.data(), acc_scalar.data(), n);
    EXPECT_TRUE(BitEqual(acc_vector, acc_scalar)) << "Axpy n=" << n;

    simd::AddInPlace(acc_vector.data(), b.data(), n);
    simd::scalar::AddInPlace(acc_scalar.data(), b.data(), n);
    EXPECT_TRUE(BitEqual(acc_vector, acc_scalar)) << "AddInPlace n=" << n;

    // Axpy4 parity, plus its documented contract: bit-identical to the
    // four sequential Axpy calls it fuses.
    const std::vector<double> x1 = TestValues(n, 6);
    const std::vector<double> x2 = TestValues(n, 7);
    const std::vector<double> x3 = PositiveValues(n, 8);
    const double coeff[4] = {0.31, -1.25, 0.0078125, 3.5};
    std::vector<double> fused_vector = TestValues(n, 9);
    std::vector<double> fused_scalar = fused_vector;
    std::vector<double> sequential = fused_vector;
    simd::Axpy4(coeff, a.data(), x1.data(), x2.data(), x3.data(),
                fused_vector.data(), n);
    simd::scalar::Axpy4(coeff, a.data(), x1.data(), x2.data(), x3.data(),
                        fused_scalar.data(), n);
    EXPECT_TRUE(BitEqual(fused_vector, fused_scalar)) << "Axpy4 n=" << n;
    simd::scalar::Axpy(coeff[0], a.data(), sequential.data(), n);
    simd::scalar::Axpy(coeff[1], x1.data(), sequential.data(), n);
    simd::scalar::Axpy(coeff[2], x2.data(), sequential.data(), n);
    simd::scalar::Axpy(coeff[3], x3.data(), sequential.data(), n);
    EXPECT_TRUE(BitEqual(fused_vector, sequential))
        << "Axpy4 vs sequential Axpy n=" << n;
  }
}

// One registry example evaluated end-to-end: forward value plus the
// gradient of every parameter.
struct ExampleResult {
  Tensor output;
  std::vector<Tensor> gradients;
};

ExampleResult EvalExample(const OpSpec& spec) {
  const GradcheckCase c = spec.example();
  std::vector<Variable> params;
  params.reserve(c.points.size());
  for (const Tensor& p : c.points) params.push_back(Param(p.Clone()));
  Variable out = c.fn(params);
  ExampleResult result;
  result.gradients = GradValues(out, params);
  result.output = out.value();
  return result;
}

TEST(SimdParityTest, EveryRegistryExampleMatchesScalarBackendBitForBit) {
  int checked = 0;
  for (const OpSpec& spec : OpRegistry()) {
    if (!spec.example) continue;
    const ExampleResult active = EvalExample(spec);
    ExampleResult scalar;
    {
      ScopedScalarBackend force_scalar;
      scalar = EvalExample(spec);
    }
    EXPECT_TRUE(BitEqual(active.output, scalar.output))
        << spec.name << " forward differs between backends";
    ASSERT_EQ(active.gradients.size(), scalar.gradients.size()) << spec.name;
    for (size_t i = 0; i < active.gradients.size(); ++i) {
      EXPECT_TRUE(BitEqual(active.gradients[i], scalar.gradients[i]))
          << spec.name << " gradient " << i << " differs between backends";
    }
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(SimdParityTest, RemainderLaneGraphsMatchScalarBackendBitForBit) {
  for (int64_t r = 1; r <= 7; ++r) {
    const int64_t n = 8 + r;
    const Tensor ta = Tensor::FromVector(TestValues(n, 6));
    const Tensor tb = Tensor::FromVector(PositiveValues(n, 7));
    const auto run = [&]() {
      Variable a = Param(ta.Clone());
      Variable b = Param(tb.Clone());
      Variable loss = Sum(Mul(Div(a, b), Add(a, b)));
      ExampleResult result;
      result.gradients = GradValues(loss, {a, b});
      result.output = loss.value();
      return result;
    };
    const ExampleResult active = run();
    ExampleResult scalar;
    {
      ScopedScalarBackend force_scalar;
      scalar = run();
    }
    EXPECT_TRUE(BitEqual(active.output, scalar.output)) << "n=" << n;
    for (size_t i = 0; i < active.gradients.size(); ++i) {
      EXPECT_TRUE(BitEqual(active.gradients[i], scalar.gradients[i]))
          << "n=" << n << " grad " << i;
    }
  }
}

TEST(SimdParityTest, BackendNameIsConsistentWithActiveBackend) {
  const simd::Backend backend = simd::ActiveBackend();
  const std::string name = simd::BackendName();
  if (backend == simd::Backend::kScalar) {
    EXPECT_EQ(name, "scalar");
    EXPECT_FALSE(simd::VectorActive());
  } else {
    EXPECT_TRUE(name == "avx2" || name == "neon") << name;
    EXPECT_TRUE(simd::VectorActive());
  }
}

}  // namespace
}  // namespace msopds
