#include "tensor/gradcheck.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace msopds {
namespace {

constexpr double kTolerance = 1e-6;

Tensor RandomVector(int64_t n, Rng* rng, double lo = -1.0, double hi = 1.0) {
  Tensor t({n});
  for (int64_t i = 0; i < n; ++i) t.at(i) = rng->Uniform(lo, hi);
  return t;
}

Tensor RandomMatrix(int64_t r, int64_t c, Rng* rng) {
  Tensor t({r, c});
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = rng->Uniform(-1, 1);
  return t;
}

// A named scalar function plus the points it is checked at.
struct GradCase {
  std::string name;
  ScalarFn fn;
  std::vector<Tensor> points;
};

class GradCheckTest : public ::testing::TestWithParam<int> {};

std::vector<GradCase> MakeCases() {
  Rng rng(42);
  std::vector<GradCase> cases;

  cases.push_back({"sum_add",
                   [](const std::vector<Variable>& v) {
                     return Sum(Add(v[0], v[1]));
                   },
                   {RandomVector(4, &rng), RandomVector(4, &rng)}});
  cases.push_back({"sum_sub_neg",
                   [](const std::vector<Variable>& v) {
                     return Sum(Sub(Neg(v[0]), v[1]));
                   },
                   {RandomVector(4, &rng), RandomVector(4, &rng)}});
  cases.push_back({"mean_mul",
                   [](const std::vector<Variable>& v) {
                     return Mean(Mul(v[0], v[1]));
                   },
                   {RandomVector(5, &rng), RandomVector(5, &rng)}});
  cases.push_back({"sum_div",
                   [](const std::vector<Variable>& v) {
                     return Sum(Div(v[0], v[1]));
                   },
                   {RandomVector(4, &rng), RandomVector(4, &rng, 0.5, 2.0)}});
  cases.push_back({"scalar_broadcast_mul",
                   [](const std::vector<Variable>& v) {
                     return Sum(Mul(v[0], v[1]));
                   },
                   {RandomVector(4, &rng), Tensor::Scalar(0.7)}});
  cases.push_back({"exp_of_product",
                   [](const std::vector<Variable>& v) {
                     return Sum(Exp(Mul(v[0], v[1])));
                   },
                   {RandomVector(3, &rng), RandomVector(3, &rng)}});
  cases.push_back({"log",
                   [](const std::vector<Variable>& v) {
                     return Sum(Log(v[0]));
                   },
                   {RandomVector(4, &rng, 0.5, 3.0)}});
  cases.push_back({"sqrt",
                   [](const std::vector<Variable>& v) {
                     return Sum(Sqrt(v[0]));
                   },
                   {RandomVector(4, &rng, 0.5, 3.0)}});
  cases.push_back({"matmul_sum",
                   [](const std::vector<Variable>& v) {
                     return Sum(MatMul(v[0], v[1]));
                   },
                   {RandomMatrix(3, 2, &rng), RandomMatrix(2, 4, &rng)}});
  cases.push_back({"transpose_matmul",
                   [](const std::vector<Variable>& v) {
                     return Sum(MatMul(Transpose(v[0]), v[0]));
                   },
                   {RandomMatrix(3, 2, &rng)}});
  cases.push_back({"rowsum_square",
                   [](const std::vector<Variable>& v) {
                     return Sum(Square(RowSum(v[0])));
                   },
                   {RandomMatrix(3, 4, &rng)}});
  cases.push_back({"tilecols_mul",
                   [](const std::vector<Variable>& v) {
                     return Sum(Mul(TileCols(v[0], 3), v[1]));
                   },
                   {RandomVector(2, &rng), RandomMatrix(2, 3, &rng)}});
  cases.push_back({"concat_slice_cols",
                   [](const std::vector<Variable>& v) {
                     Variable c = ConcatCols(v[0], v[1]);
                     return Sum(Square(SliceCols(c, 1, 3)));
                   },
                   {RandomMatrix(2, 2, &rng), RandomMatrix(2, 2, &rng)}});
  cases.push_back({"concat1_slice1",
                   [](const std::vector<Variable>& v) {
                     Variable c = Concat1(v[0], v[1]);
                     return Sum(Square(Slice1(c, 1, 4)));
                   },
                   {RandomVector(3, &rng), RandomVector(2, &rng)}});
  cases.push_back({"gather_rows",
                   [](const std::vector<Variable>& v) {
                     return Sum(
                         Square(GatherRows(v[0], MakeIndex({0, 2, 2}))));
                   },
                   {RandomMatrix(3, 2, &rng)}});
  cases.push_back({"scatter_add_rows",
                   [](const std::vector<Variable>& v) {
                     return Sum(
                         Square(ScatterAddRows(v[0], MakeIndex({1, 1, 0}), 2)));
                   },
                   {RandomMatrix(3, 2, &rng)}});
  cases.push_back({"gather1",
                   [](const std::vector<Variable>& v) {
                     return Sum(Square(Gather1(v[0], MakeIndex({0, 0, 2}))));
                   },
                   {RandomVector(3, &rng)}});
  cases.push_back({"scatter_add1",
                   [](const std::vector<Variable>& v) {
                     return Sum(
                         Square(ScatterAdd1(v[0], MakeIndex({0, 1, 1}), 2)));
                   },
                   {RandomVector(3, &rng)}});
  cases.push_back(
      {"spmm_weights_and_features",
       [](const std::vector<Variable>& v) {
         return Sum(Square(
             SpMM(MakeIndex({0, 1, 1}), MakeIndex({1, 0, 2}), v[0], v[1], 2)));
       },
       {RandomVector(3, &rng), RandomMatrix(3, 2, &rng)}});
  cases.push_back({"edge_dot",
                   [](const std::vector<Variable>& v) {
                     return Sum(Square(EdgeDot(v[0], v[1], MakeIndex({0, 1}),
                                               MakeIndex({1, 0}))));
                   },
                   {RandomMatrix(2, 3, &rng), RandomMatrix(2, 3, &rng)}});
  cases.push_back({"relu",
                   [](const std::vector<Variable>& v) {
                     return Sum(Relu(v[0]));
                   },
                   // Away from the kink for clean finite differences.
                   {Tensor::FromVector({-0.9, -0.3, 0.4, 1.2})}});
  cases.push_back({"selu",
                   [](const std::vector<Variable>& v) {
                     return Sum(Selu(v[0]));
                   },
                   {Tensor::FromVector({-1.5, -0.4, 0.3, 2.0})}});
  cases.push_back({"sigmoid",
                   [](const std::vector<Variable>& v) {
                     return Sum(Sigmoid(v[0]));
                   },
                   {RandomVector(4, &rng)}});
  cases.push_back({"pair_dot",
                   [](const std::vector<Variable>& v) {
                     return Sum(Square(PairDot(v[0], v[1])));
                   },
                   {RandomMatrix(3, 2, &rng), RandomMatrix(3, 2, &rng)}});
  cases.push_back({"dot",
                   [](const std::vector<Variable>& v) {
                     return Square(Dot(v[0], v[1]));
                   },
                   {RandomVector(4, &rng), RandomVector(4, &rng)}});
  cases.push_back(
      {"segment_softmax",
       [](const std::vector<Variable>& v) {
         Variable sm = SegmentSoftmax(v[0], MakeIndex({0, 0, 1, 1, 1}), 2);
         return Sum(Mul(sm, v[1]));
       },
       {RandomVector(5, &rng), RandomVector(5, &rng)}});
  cases.push_back({"squared_norm",
                   [](const std::vector<Variable>& v) {
                     return SquaredNorm(v[0]);
                   },
                   {RandomMatrix(2, 3, &rng)}});
  cases.push_back({"diamond_reuse",
                   [](const std::vector<Variable>& v) {
                     Variable s = Mul(v[0], v[0]);
                     return Sum(Add(Mul(s, v[0]), s));
                   },
                   {RandomVector(3, &rng)}});
  cases.push_back({"same_input_twice",
                   [](const std::vector<Variable>& v) {
                     return Sum(Mul(v[0], v[0]));
                   },
                   {RandomVector(3, &rng)}});
  cases.push_back({"reshape_roundtrip",
                   [](const std::vector<Variable>& v) {
                     Variable flat = Reshape(v[0], {6});
                     return Sum(Square(Reshape(flat, {3, 2})));
                   },
                   {RandomMatrix(2, 3, &rng)}});
  cases.push_back({"where_mixing",
                   [](const std::vector<Variable>& v) {
                     Tensor mask = Tensor::FromVector({1, 0, 1, 0});
                     return Sum(Square(Where(mask, v[0], v[1])));
                   },
                   {RandomVector(4, &rng), RandomVector(4, &rng)}});
  cases.push_back({"tile_then_transpose",
                   [](const std::vector<Variable>& v) {
                     return Sum(Mul(Transpose(TileCols(v[0], 2)), v[1]));
                   },
                   {RandomVector(3, &rng), RandomMatrix(2, 3, &rng)}});
  return cases;
}

const std::vector<GradCase>& Cases() {
  static const std::vector<GradCase>& cases = *new std::vector<GradCase>(
      MakeCases());
  return cases;
}

TEST_P(GradCheckTest, AnalyticMatchesFiniteDifference) {
  const GradCase& gcase = Cases()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(gcase.name);
  EXPECT_LT(MaxGradError(gcase.fn, gcase.points), kTolerance);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest,
    ::testing::Range(0, static_cast<int>(Cases().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return Cases()[static_cast<size_t>(info.param)].name;
    });

class HvpCheckTest : public ::testing::TestWithParam<int> {};

// Cases with non-trivial curvature for double-backward checks.
const std::vector<GradCase>& CurvedCases() {
  static const std::vector<GradCase>& cases = *new std::vector<GradCase>([] {
    Rng rng(7);
    std::vector<GradCase> cases;
    cases.push_back({"cubic",
                     [](const std::vector<Variable>& v) {
                       return Sum(Mul(Mul(v[0], v[0]), v[0]));
                     },
                     {RandomVector(4, &rng)}});
    cases.push_back({"exp_square",
                     [](const std::vector<Variable>& v) {
                       return Sum(Exp(Square(v[0])));
                     },
                     {RandomVector(3, &rng)}});
    cases.push_back({"matmul_quartic",
                     [](const std::vector<Variable>& v) {
                       Variable g = MatMul(Transpose(v[0]), v[0]);
                       return Sum(Square(g));
                     },
                     {RandomMatrix(3, 2, &rng)}});
    cases.push_back(
        {"spmm_square",
         [](const std::vector<Variable>& v) {
           Variable out = SpMM(MakeIndex({0, 1}), MakeIndex({1, 0}), v[0],
                               TileCols(Square(v[0]), 2), 2);
           return Sum(Square(out));
         },
         {RandomVector(2, &rng)}});
    cases.push_back({"softmax_entropyish",
                     [](const std::vector<Variable>& v) {
                       Variable sm = SegmentSoftmax(
                           v[0], MakeIndex({0, 0, 0, 0}), 1);
                       return Sum(Square(sm));
                     },
                     {RandomVector(4, &rng)}});
    return cases;
  }());
  return cases;
}

TEST_P(HvpCheckTest, DoubleBackwardMatchesFiniteDifferenceOfGradient) {
  const GradCase& gcase = CurvedCases()[static_cast<size_t>(GetParam())];
  SCOPED_TRACE(gcase.name);
  Rng rng(1234 + static_cast<uint64_t>(GetParam()));
  Tensor direction(gcase.points[0].shape());
  for (int64_t i = 0; i < direction.size(); ++i)
    direction.data()[i] = rng.Uniform(-1, 1);
  EXPECT_LT(MaxHvpError(gcase.fn, gcase.points, 0, direction), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Curved, HvpCheckTest,
    ::testing::Range(0, static_cast<int>(CurvedCases().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return CurvedCases()[static_cast<size_t>(info.param)].name;
    });

}  // namespace
}  // namespace msopds
