#include "tensor/verify.h"

#include <gtest/gtest.h>

#include "tensor/grad.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace msopds {
namespace {

using internal::MakeTestNode;

// Restores the global toggles after each test so ordering never matters.
class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_auto_verify_ = internal::SetAutoVerify(false);
    previous_guard_ = internal::SetLeafMutationGuard(false);
  }
  void TearDown() override {
    internal::SetAutoVerify(previous_auto_verify_);
    internal::SetLeafMutationGuard(previous_guard_);
  }

 private:
  bool previous_auto_verify_ = false;
  bool previous_guard_ = false;
};

Variable SmallLoss(const Variable& a, const Variable& b) {
  return Add(Sum(Square(MatMul(a, b))), SquaredNorm(a));
}

TEST_F(VerifyTest, CleanGraphHasNoDiagnostics) {
  Variable a = Param(Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6}));
  Variable b = Param(Tensor::FromMatrix(3, 2, {1, 0, 0, 1, 1, 1}));
  Variable loss = SmallLoss(a, b);
  const VerifyResult result = GraphVerifier().Verify(loss, {a, b});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.diagnostics.empty()) << result.Report();
}

TEST_F(VerifyTest, CleanGradGraphHasNoDiagnostics) {
  Variable a = Param(Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6}));
  Variable b = Param(Tensor::FromMatrix(3, 2, {1, 0, 0, 1, 1, 1}));
  Variable grad = Grad(SmallLoss(a, b), {a})[0];
  const VerifyResult result = VerifyGraph(grad);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.diagnostics.empty()) << result.Report();
}

TEST_F(VerifyTest, StatsAccounting) {
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable c = Constant(Tensor::FromVector({4, 5, 6}));
  Variable y = Sum(Mul(x, c));  // nodes: x, c, Mul, Sum
  const VerifyResult result = VerifyGraph(y);
  EXPECT_EQ(result.stats.num_nodes, 4);
  EXPECT_EQ(result.stats.num_edges, 3);
  EXPECT_EQ(result.stats.num_leaves, 2);
  EXPECT_EQ(result.stats.num_params, 1);
  EXPECT_EQ(result.stats.max_depth, 3);
  // 3 + 3 + 3 + 1 doubles across the four nodes.
  EXPECT_EQ(result.stats.value_bytes, 10 * static_cast<int64_t>(sizeof(double)));
  EXPECT_EQ(result.stats.op_counts.at("Mul"), 1);
  EXPECT_EQ(result.stats.op_counts.at("leaf"), 2);
}

TEST_F(VerifyTest, DetectsShapeMismatch) {
  Variable a = Param(Tensor::FromVector({1, 2, 3}));
  Variable b = Param(Tensor::FromVector({4, 5, 6}));
  // An "Add" whose recorded output shape is impossible given its inputs.
  Variable bad = MakeTestNode("Add", Tensor::Zeros({5}), {a, b},
                              /*requires_grad=*/true);
  const VerifyResult result = VerifyGraph(bad);
  ASSERT_EQ(result.num_errors(), 1) << result.Report();
  EXPECT_NE(result.Report().find("shape check failed"), std::string::npos);
  EXPECT_EQ(result.diagnostics[0].node, bad.node().get());
}

TEST_F(VerifyTest, DetectsArityMismatch) {
  Variable a = Param(Tensor::FromVector({1, 2, 3}));
  Variable bad =
      MakeTestNode("MatMul", Tensor::Zeros({3}), {a}, /*requires_grad=*/true);
  const VerifyResult result = VerifyGraph(bad);
  ASSERT_EQ(result.num_errors(), 1) << result.Report();
  EXPECT_NE(result.Report().find("arity mismatch"), std::string::npos);
}

TEST_F(VerifyTest, DetectsCycle) {
  Variable a = Param(Tensor::FromVector({1, 2}));
  Variable u = MakeTestNode("Neg", Tensor::Zeros({2}), {a}, true);
  Variable v = MakeTestNode("Neg", Tensor::Zeros({2}), {u}, true);
  // Close the loop u -> v -> u by hand (impossible through the op API).
  u.node()->inputs.push_back(v);
  u.node()->input_generations.push_back(v.value().generation());

  const VerifyResult result = VerifyGraph(v);
  EXPECT_GE(result.num_errors(), 1);
  EXPECT_NE(result.Report().find("cycle"), std::string::npos);

  // Break the shared_ptr cycle so the graph can actually be freed (the
  // hazard the verifier is warning about).
  u.node()->inputs.clear();
  u.node()->input_generations.clear();
}

TEST_F(VerifyTest, DetectsStaleLeafMutation) {
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable y = Sum(Square(x));
  EXPECT_TRUE(VerifyGraph(y).ok());
  x.mutable_value().Fill(7.0);  // graph now disagrees with its recording
  const VerifyResult result = VerifyGraph(y);
  ASSERT_GE(result.num_errors(), 1) << result.Report();
  EXPECT_NE(result.Report().find("stale input"), std::string::npos);
}

TEST_F(VerifyTest, AutoVerifyRejectsStaleGraphInGrad) {
  internal::SetAutoVerify(true);
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable y = Sum(Square(x));
  x.mutable_value().Fill(7.0);
  EXPECT_DEATH(Grad(y, {x}), "failed verification");
}

TEST_F(VerifyTest, DetectsDetachedRequiresGradLeaf) {
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable detached = Param(Tensor::FromVector({9, 9, 9}));
  Variable y = Sum(Square(x));
  const VerifyResult result = GraphVerifier().Verify(y, {x, detached});
  EXPECT_TRUE(result.ok());  // dead subgraphs warn rather than error
  ASSERT_EQ(result.num_warnings(), 1) << result.Report();
  EXPECT_NE(result.Report().find("detached"), std::string::npos);
}

TEST_F(VerifyTest, WarnsOnInputNotRequiringGrad) {
  Variable x = Param(Tensor::FromVector({1, 2}));
  Variable c = Constant(Tensor::FromVector({3, 4}));
  Variable y = Sum(Mul(x, c));
  const VerifyResult result = GraphVerifier().Verify(y, {c});
  ASSERT_EQ(result.num_warnings(), 1) << result.Report();
  EXPECT_NE(result.Report().find("does not require grad"), std::string::npos);
}

TEST_F(VerifyTest, DetectsDroppedRequiresGrad) {
  Variable x = Param(Tensor::FromVector({1, 2}));
  // Interior node claiming to be constant while consuming a param.
  Variable bad =
      MakeTestNode("Neg", Tensor::Zeros({2}), {x}, /*requires_grad=*/false);
  const VerifyResult result = VerifyGraph(bad);
  ASSERT_EQ(result.num_errors(), 1) << result.Report();
  EXPECT_NE(result.Report().find("requires_grad dropped"), std::string::npos);
}

TEST_F(VerifyTest, DetectsUnsoundRequiresGradPromotion) {
  Variable c = Constant(Tensor::FromVector({1, 2}));
  Variable bad =
      MakeTestNode("Neg", Tensor::Zeros({2}), {c}, /*requires_grad=*/true);
  const VerifyResult result = VerifyGraph(bad);
  ASSERT_EQ(result.num_errors(), 1) << result.Report();
  EXPECT_NE(result.Report().find("no input requires grad"), std::string::npos);
}

TEST_F(VerifyTest, WarnsOnUnknownOp) {
  Variable x = Param(Tensor::FromVector({1, 2}));
  Variable odd = MakeTestNode("FusedMystery", Tensor::Zeros({2}), {x}, true);
  const VerifyResult result = VerifyGraph(odd);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.num_warnings(), 1) << result.Report();
  EXPECT_NE(result.Report().find("not in the shape-inference registry"),
            std::string::npos);
}

TEST_F(VerifyTest, DotExportMarksFailingNodes) {
  Variable a = Param(Tensor::FromVector({1, 2, 3}));
  Variable b = Param(Tensor::FromVector({4, 5, 6}));
  Variable bad = MakeTestNode("Add", Tensor::Zeros({5}), {a, b}, true);
  const VerifyResult result = VerifyGraph(bad);
  const std::string dot = GraphToDot(bad, result.diagnostics);
  EXPECT_NE(dot.find("digraph autodiff"), std::string::npos);
  EXPECT_NE(dot.find("Add"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=salmon"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Params render as double-bordered boxes.
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST_F(VerifyTest, UndefinedRootIsAnError) {
  const VerifyResult result = VerifyGraph(Variable());
  EXPECT_EQ(result.num_errors(), 1);
}

// --- mutable_value() leaf-mutation guard ------------------------------------

TEST_F(VerifyTest, GuardAllowsMutationAfterGradValuesDropsTheGraph) {
  internal::SetLeafMutationGuard(true);
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable loss = Sum(Square(x));
  // The trainer flow: detached gradients, then an in-place step while only
  // the forward graph is still alive. Must not CHECK-fail.
  const std::vector<Tensor> grads = GradValues(loss, {x});
  x.mutable_value().at(0) -= 0.1 * grads[0].at(0);
  SUCCEED();
}

TEST_F(VerifyTest, GuardRejectsMutationWhileGradGraphIsLive) {
  internal::SetLeafMutationGuard(true);
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable loss = Sum(Square(x));
  Variable grad = Grad(loss, {x})[0];  // graph-carrying gradient held live
  EXPECT_DEATH(x.mutable_value(), "live gradient graph");
  // Dropping the gradient graph lifts the guard.
  grad = Variable();
  x.mutable_value().Fill(0.0);
  SUCCEED();
}

TEST_F(VerifyTest, OptimizerStepGuardRegression) {
  internal::SetLeafMutationGuard(true);
  std::vector<Variable> params = {Param(Tensor::FromVector({1, 2, 3}))};
  Sgd sgd(0.1);
  // The supported trainer flow: detached gradients, step. Fine.
  std::vector<Tensor> grads = GradValues(Sum(Square(params[0])), params);
  sgd.Step(&params, grads);
  // Holding a graph-carrying gradient across a step is the hazard.
  Variable live_grad = Grad(Sum(Square(params[0])), params)[0];
  EXPECT_DEATH(sgd.Step(&params, grads), "live gradient graph");
}

TEST_F(VerifyTest, GuardDisabledAllowsHazardousMutation) {
  internal::SetLeafMutationGuard(false);
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable loss = Sum(Square(x));
  Variable grad = Grad(loss, {x})[0];
  x.mutable_value().Fill(0.0);  // hazardous but permitted when disabled
  EXPECT_TRUE(grad.defined());
}

}  // namespace
}  // namespace msopds
