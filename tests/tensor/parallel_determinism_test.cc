// Bit-exactness contract of the parallel tensor runtime: every kernel,
// and an end-to-end TrainModel run, must produce byte-identical results
// at any thread count (DESIGN.md "Parallel runtime"). The registry sweep
// covers every op via its OpSpec example; the large-kernel cases force
// multi-chunk grids (registry examples are small enough to be single
// chunk, which is exact by construction).

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/trainer.h"
#include "tensor/grad.h"
#include "tensor/ops.h"
#include "tensor/verify.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

::testing::AssertionResult BitIdentical(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(double) * static_cast<size_t>(a.size())) != 0) {
    for (int64_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(a.data() + i, b.data() + i, sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first differing element " << i << ": " << a.data()[i]
               << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Tensor RandomTensor(std::vector<int64_t> shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = rng->Uniform(-1.0, 1.0);
  }
  return t;
}

IndexVec RandomIndex(int64_t count, int64_t limit, Rng* rng) {
  std::vector<int64_t> idx(static_cast<size_t>(count));
  for (int64_t& v : idx) v = rng->UniformInt(limit);
  return MakeIndex(std::move(idx));
}

// Forward value followed by the gradient w.r.t. every parameter.
std::vector<Tensor> ForwardAndGrads(const Variable& out,
                                    const std::vector<Variable>& params) {
  std::vector<Tensor> results;
  results.push_back(out.value().Clone());
  for (Tensor& g : GradValues(out, params)) {
    results.push_back(std::move(g));
  }
  return results;
}

std::vector<Tensor> EvalExample(const GradcheckCase& example) {
  std::vector<Variable> params;
  params.reserve(example.points.size());
  for (const Tensor& point : example.points) {
    params.push_back(Param(point.Clone()));
  }
  return ForwardAndGrads(example.fn(params), params);
}

// Runs `eval` at each thread count and asserts every returned tensor is
// byte-identical to the single-threaded baseline.
template <typename Eval>
void ExpectBitIdenticalAcrossThreads(const char* what, const Eval& eval) {
  ThreadPool::Global().SetNumThreads(1);
  const std::vector<Tensor> baseline = eval();
  for (int threads : {2, 7}) {
    ThreadPool::Global().SetNumThreads(threads);
    const std::vector<Tensor> got = eval();
    ASSERT_EQ(baseline.size(), got.size()) << what << " threads=" << threads;
    for (size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(BitIdentical(baseline[i], got[i]))
          << what << " tensor " << i << " at threads=" << threads;
    }
  }
  ThreadPool::Global().SetNumThreads(1);
}

TEST(ParallelDeterminismTest, EveryRegisteredOpBitIdenticalAcrossThreads) {
  int checked = 0;
  for (const OpSpec& spec : OpRegistry()) {
    if (!spec.example) continue;  // exercised through another op's backward
    const GradcheckCase example = spec.example();
    ExpectBitIdenticalAcrossThreads(spec.name.c_str(),
                                    [&example] { return EvalExample(example); });
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(ParallelDeterminismTest, TiledMatMulMultiChunk) {
  Rng rng(31);
  // 120x90 @ 90x70: wide enough that forward and both backward products
  // span several row chunks and k blocks.
  const Tensor a0 = RandomTensor({120, 90}, &rng);
  const Tensor b0 = RandomTensor({90, 70}, &rng);
  ExpectBitIdenticalAcrossThreads("MatMul", [&] {
    std::vector<Variable> params = {Param(a0.Clone()), Param(b0.Clone())};
    return ForwardAndGrads(Sum(Square(MatMul(params[0], params[1]))), params);
  });
}

TEST(ParallelDeterminismTest, SpMMMultiChunk) {
  Rng rng(32);
  constexpr int64_t kNumSrc = 500;
  constexpr int64_t kNumDst = 3000;  // several destination buckets at D=8
  constexpr int64_t kDim = 8;
  constexpr int64_t kNumEdges = 20000;
  const IndexVec dst = RandomIndex(kNumEdges, kNumDst, &rng);
  const IndexVec src = RandomIndex(kNumEdges, kNumSrc, &rng);
  const Tensor w0 = RandomTensor({kNumEdges}, &rng);
  const Tensor x0 = RandomTensor({kNumSrc, kDim}, &rng);
  ExpectBitIdenticalAcrossThreads("SpMM", [&] {
    std::vector<Variable> params = {Param(w0.Clone()), Param(x0.Clone())};
    return ForwardAndGrads(
        Sum(Square(SpMM(dst, src, params[0], params[1], kNumDst))), params);
  });
}

TEST(ParallelDeterminismTest, EdgeDotMultiChunk) {
  Rng rng(33);
  constexpr int64_t kRows = 300;
  constexpr int64_t kDim = 12;
  constexpr int64_t kNumEdges = 20000;
  const IndexVec ai = RandomIndex(kNumEdges, kRows, &rng);
  const IndexVec bi = RandomIndex(kNumEdges, kRows, &rng);
  const Tensor a0 = RandomTensor({kRows, kDim}, &rng);
  const Tensor b0 = RandomTensor({kRows, kDim}, &rng);
  ExpectBitIdenticalAcrossThreads("EdgeDot", [&] {
    std::vector<Variable> params = {Param(a0.Clone()), Param(b0.Clone())};
    return ForwardAndGrads(
        Sum(Square(EdgeDot(params[0], params[1], ai, bi))), params);
  });
}

TEST(ParallelDeterminismTest, SegmentSoftmaxMultiChunk) {
  Rng rng(34);
  constexpr int64_t kNumSegments = 9000;
  constexpr int64_t kNumEdges = 40000;
  const IndexVec seg = RandomIndex(kNumEdges, kNumSegments, &rng);
  const Tensor scores0 = RandomTensor({kNumEdges}, &rng);
  ExpectBitIdenticalAcrossThreads("SegmentSoftmax", [&] {
    std::vector<Variable> params = {Param(scores0.Clone())};
    return ForwardAndGrads(
        Sum(Square(SegmentSoftmax(params[0], seg, kNumSegments))), params);
  });
}

TEST(ParallelDeterminismTest, LargeReductionMultiChunk) {
  Rng rng(35);
  const Tensor x0 = RandomTensor({100000}, &rng);  // ~4 reduce chunks
  ExpectBitIdenticalAcrossThreads("Sum", [&] {
    std::vector<Variable> params = {Param(x0.Clone())};
    return ForwardAndGrads(Sum(Mul(params[0], params[0])), params);
  });
}

// End-to-end acceptance criterion: one full TrainModel run produces
// byte-identical parameters and loss history at 1 vs 4 threads.
TEST(ParallelDeterminismTest, TrainModelBitIdenticalAtOneVsFourThreads) {
  auto train = [](int threads, std::vector<double>* losses) {
    SyntheticConfig config;
    config.num_users = 60;
    config.num_items = 80;
    config.num_ratings = 700;
    config.num_social_links = 200;
    Rng world_rng(21);
    const Dataset world = GenerateSynthetic(config, &world_rng);
    Rng model_rng(7);
    HetRecSys model(world, HetRecSysConfig{}, &model_rng);
    TrainOptions options;
    options.epochs = 8;
    options.num_threads = threads;
    const TrainResult result = TrainModel(&model, world.ratings, options);
    EXPECT_TRUE(result.healthy);
    *losses = result.loss_history;
    std::vector<Tensor> snapshot;
    for (const Variable& param : *model.MutableParams()) {
      snapshot.push_back(param.value().Clone());
    }
    return snapshot;
  };

  std::vector<double> losses1, losses4;
  const std::vector<Tensor> params1 = train(1, &losses1);
  const std::vector<Tensor> params4 = train(4, &losses4);
  ThreadPool::Global().SetNumThreads(1);

  ASSERT_EQ(losses1.size(), losses4.size());
  ASSERT_FALSE(losses1.empty());
  EXPECT_EQ(std::memcmp(losses1.data(), losses4.data(),
                        sizeof(double) * losses1.size()),
            0);
  ASSERT_EQ(params1.size(), params4.size());
  ASSERT_FALSE(params1.empty());
  for (size_t i = 0; i < params1.size(); ++i) {
    EXPECT_TRUE(BitIdentical(params1[i], params4[i])) << "param " << i;
  }
}

}  // namespace
}  // namespace msopds
