#include "tensor/grad.h"

#include <gtest/gtest.h>

namespace msopds {
namespace {

TEST(GradTest, IdentityGradient) {
  Variable x = Param(Tensor::FromVector({1, 2, 3}));
  Variable y = Sum(x);
  const Tensor g = Grad(y, {x})[0].value();
  EXPECT_TRUE(AllClose(g, Tensor::FromVector({1, 1, 1})));
}

TEST(GradTest, UnusedInputGetsZeros) {
  Variable x = Param(Tensor::FromVector({1, 2}));
  Variable z = Param(Tensor::FromVector({5, 6, 7}));
  Variable y = Sum(x);
  const std::vector<Variable> grads = Grad(y, {x, z});
  EXPECT_TRUE(AllClose(grads[1].value(), Tensor::Zeros({3})));
}

TEST(GradTest, OutputAsItsOwnInput) {
  Variable x = Param(Tensor::Scalar(4.0));
  Variable y = Mul(x, x);
  const std::vector<Variable> grads = Grad(y, {y, x});
  EXPECT_DOUBLE_EQ(grads[0].value().item(), 1.0);
  EXPECT_DOUBLE_EQ(grads[1].value().item(), 8.0);
}

TEST(GradTest, DiamondAccumulation) {
  // y = x*x + x*x uses x through two paths of a shared node.
  Variable x = Param(Tensor::Scalar(3.0));
  Variable s = Mul(x, x);
  Variable y = Add(s, s);
  EXPECT_DOUBLE_EQ(Grad(y, {x})[0].value().item(), 12.0);
}

TEST(GradTest, CustomSeedScalesGradient) {
  Variable x = Param(Tensor::FromVector({1, 2}));
  Variable y = Mul(x, x);
  Variable seed = Constant(Tensor::FromVector({10, 100}));
  const Tensor g = Grad(y, {x}, seed)[0].value();
  EXPECT_TRUE(AllClose(g, Tensor::FromVector({20, 400})));
}

TEST(GradTest, GradientOfGradient) {
  // f = x^3, f' = 3x^2, f'' = 6x.
  Variable x = Param(Tensor::Scalar(2.0));
  Variable f = Mul(Mul(x, x), x);
  Variable df = Grad(f, {x})[0];
  EXPECT_DOUBLE_EQ(df.value().item(), 12.0);
  EXPECT_TRUE(df.requires_grad());
  Variable ddf = Grad(df, {x})[0];
  EXPECT_DOUBLE_EQ(ddf.value().item(), 12.0);
  // Third order: f''' = 6.
  EXPECT_DOUBLE_EQ(Grad(ddf, {x})[0].value().item(), 6.0);
}

TEST(GradTest, HessianVectorProductQuadratic) {
  // f = 0.5 x^T A x with A = [[2, 1], [1, 4]]; Hv = A v.
  Variable x = Param(Tensor::FromVector({1.0, -1.0}));
  Variable x0 = Slice1(x, 0, 1);
  Variable x1 = Slice1(x, 1, 2);
  Variable f = ScalarMul(
      Add(Add(ScalarMul(Mul(x0, x0), 2.0), ScalarMul(Mul(x0, x1), 2.0)),
          ScalarMul(Mul(x1, x1), 4.0)),
      0.5);
  Variable grad = Grad(Sum(f), {x})[0];
  const Tensor hv =
      HessianVectorProduct(grad, x, Tensor::FromVector({1.0, 0.0}));
  EXPECT_TRUE(AllClose(hv, Tensor::FromVector({2.0, 1.0}), 1e-9));
  const Tensor hv2 =
      HessianVectorProduct(grad, x, Tensor::FromVector({0.0, 1.0}));
  EXPECT_TRUE(AllClose(hv2, Tensor::FromVector({1.0, 4.0}), 1e-9));
}

TEST(GradTest, HvpOfLinearFunctionIsZero) {
  Variable x = Param(Tensor::FromVector({1.0, 2.0}));
  Variable f = Sum(ScalarMul(x, 3.0));
  Variable grad = Grad(f, {x})[0];
  const Tensor hv =
      HessianVectorProduct(grad, x, Tensor::FromVector({1.0, 1.0}));
  EXPECT_TRUE(AllClose(hv, Tensor::Zeros({2})));
}

TEST(GradTest, MixedVectorJacobianBilinear) {
  // L(x, y) = x^T B y with B = [[1, 2], [3, 4]]:
  // dL/dy = B^T x, and d/dx <dL/dy, xi> = B xi.
  Variable x = Param(Tensor::FromVector({1.0, 1.0}));
  Variable y = Param(Tensor::FromVector({2.0, -1.0}));
  Variable x0 = Slice1(x, 0, 1), x1 = Slice1(x, 1, 2);
  Variable y0 = Slice1(y, 0, 1), y1 = Slice1(y, 1, 2);
  Variable loss = Sum(Add(
      Add(Mul(x0, y0), ScalarMul(Mul(x0, y1), 2.0)),
      Add(ScalarMul(Mul(x1, y0), 3.0), ScalarMul(Mul(x1, y1), 4.0))));
  Variable grad_y = Grad(loss, {y})[0];
  const Tensor xi = Tensor::FromVector({1.0, 2.0});
  const Tensor mixed = MixedVectorJacobian(grad_y, x, xi);
  // B xi = [1*1+2*2, 3*1+4*2] = [5, 11].
  EXPECT_TRUE(AllClose(mixed, Tensor::FromVector({5.0, 11.0}), 1e-9));
}

TEST(GradTest, GradThroughUnrolledSgdStep) {
  // theta' = theta - 0.1 * dL/dtheta with L = (theta - t)^2;
  // final = (theta')^2. d final / d t should be nonzero: theta' depends
  // on t through the inner gradient.
  Variable theta = Param(Tensor::Scalar(1.0));
  Variable t = Param(Tensor::Scalar(0.5));
  Variable inner = Square(Sub(theta, t));
  Variable g = Grad(inner, {theta})[0];  // 2(theta - t) = 1.0
  Variable theta_next = Sub(theta, ScalarMul(g, 0.1));  // 1 - 0.1 = 0.9
  EXPECT_NEAR(theta_next.value().item(), 0.9, 1e-12);
  Variable final = Square(theta_next);
  // d final/dt = 2 theta' * d theta'/dt = 2*0.9*(+0.2) = 0.36.
  const Tensor dt = Grad(final, {t})[0].value();
  EXPECT_NEAR(dt.item(), 0.36, 1e-12);
}

TEST(GradTest, GradValuesDetaches) {
  Variable x = Param(Tensor::Scalar(2.0));
  Variable y = Mul(x, x);
  const std::vector<Tensor> grads = GradValues(y, {x});
  EXPECT_DOUBLE_EQ(grads[0].item(), 4.0);
}

}  // namespace
}  // namespace msopds
