// Compiled-vs-eager parity for the AOT tape compiler (tensor/compile.h,
// DESIGN.md §14): Compile() plans a slab layout for one tape structure
// and Replay() re-runs the builder with every allocation served from the
// plan. The contract under test: replay changes only where buffers live,
// never a single output bit; structural divergence degrades gracefully
// to the arena; and the end-to-end users (TrainModel, PdsSurrogate)
// produce bit-identical results with the compiled path on and off.

#include "tensor/compile.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "attack/poison_plan.h"
#include "core/pds_surrogate.h"
#include "data/demographics.h"
#include "data/synthetic.h"
#include "recsys/matrix_factorization.h"
#include "recsys/trainer.h"
#include "tensor/grad.h"
#include "tensor/ops.h"
#include "util/arena.h"

namespace msopds {
namespace {

bool BitIdentical(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

// A small loss with a reduction, elementwise chain, and matmul so the
// tape exercises fusion planning and mixed lifetimes. Leaves are taken
// by reference: mutating them between replays must flow through.
struct ToyProblem {
  Tensor w = Tensor::Full({6, 4}, 0.25);
  Tensor x = Tensor::Full({4, 3}, -0.5);

  struct Eval {
    double loss = 0.0;
    std::vector<Tensor> grads;
  };

  Eval* out = nullptr;

  Variable Build() {
    Variable vw = Param(w.Clone());
    Variable vx = Param(x.Clone());
    Variable y = MatMul(vw, vx);
    Variable z = Mul(Add(y, y), ScalarMul(y, 0.75));
    Variable loss = Sum(Neg(z));
    if (out != nullptr) {
      out->loss = loss.value().item();
      out->grads = GradValues(loss, {vw, vx});
      for (Tensor& g : out->grads) g = g.Clone();
    }
    return loss;
  }
};

TEST(CompiledTapeTest, CompilePlansSlabAndValidates) {
  ToyProblem problem;
  auto tape = CompiledTape::Compile([&]() { return problem.Build(); });
  ASSERT_NE(tape, nullptr);
  const TapeStats& stats = tape->stats();
  EXPECT_GT(stats.allocations, 0);
  EXPECT_GT(stats.ops, 0);
  EXPECT_GT(stats.slab_doubles, 0);
  // Liveness-based reuse must never plan a slab larger than the sum of
  // all allocations, and peak-live is a lower bound on the slab.
  EXPECT_LE(stats.slab_doubles, stats.naive_doubles);
  EXPECT_LE(stats.peak_live_doubles, stats.slab_doubles);
  const Status status = tape->Validate();
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(CompiledTapeTest, ReplayIsBitIdenticalToEagerAcrossLeafMutation) {
  ToyProblem problem;
  ToyProblem::Eval compiled;
  problem.out = &compiled;
  auto tape = CompiledTape::Compile([&]() { return problem.Build(); });

  for (double shift : {0.0, 0.125, -1.5}) {
    problem.w.data()[3] = 0.25 + shift;
    problem.x.data()[0] = -0.5 - shift;

    ToyProblem::Eval eager;
    problem.out = &eager;
    problem.Build();  // no hook installed: plain arena evaluation

    problem.out = &compiled;
    tape->Replay([&]() { return problem.Build(); });

    EXPECT_EQ(compiled.loss, eager.loss) << "shift=" << shift;
    ASSERT_EQ(compiled.grads.size(), eager.grads.size());
    for (size_t i = 0; i < compiled.grads.size(); ++i) {
      EXPECT_TRUE(BitIdentical(compiled.grads[i], eager.grads[i]))
          << "shift=" << shift << " grad " << i;
    }
  }
  EXPECT_EQ(tape->stats().replays, 3);
  EXPECT_EQ(tape->stats().replay_fallbacks, 0);
}

TEST(CompiledTapeTest, ReplayServesAllocationsFromTheSlab) {
  ToyProblem problem;
  ToyProblem::Eval sink;
  problem.out = &sink;
  auto tape = CompiledTape::Compile([&]() { return problem.Build(); });
  tape->Replay([&]() { return problem.Build(); });  // slab now allocated

  const int64_t before = Arena::Global().stats().alloc_calls;
  tape->Replay([&]() { return problem.Build(); });
  const int64_t after = Arena::Global().stats().alloc_calls;
  EXPECT_EQ(after - before, 0);
}

TEST(CompiledTapeTest, StructuralDivergenceFallsBackToArena) {
  ToyProblem problem;
  ToyProblem::Eval sink;
  problem.out = &sink;
  auto tape = CompiledTape::Compile([&]() { return problem.Build(); });

  // A structurally different graph: wider leaves, so the first replayed
  // allocation's size disagrees with the plan.
  Tensor wide_w = Tensor::Full({6, 8}, 0.1);
  Tensor wide_x = Tensor::Full({8, 3}, 0.2);
  double fallback_loss = 0.0;
  tape->Replay([&]() {
    Variable vw = Param(wide_w.Clone());
    Variable vx = Param(wide_x.Clone());
    Variable loss = Sum(MatMul(vw, vx));
    fallback_loss = loss.value().item();
    return loss;
  });
  EXPECT_GE(tape->stats().replay_fallbacks, 1);

  // The fallback still computes the right value: 6*3 inner products of
  // 8 terms each, every term 0.1 * 0.2.
  Variable vw = Param(wide_w.Clone());
  Variable vx = Param(wide_x.Clone());
  const double eager_loss = Sum(MatMul(vw, vx)).value().item();
  EXPECT_EQ(fallback_loss, eager_loss);
}

TEST(CompiledTapeTest, ElementwiseChainsAreFused) {
  Tensor leaf = Tensor::Full({64}, 0.3);
  auto tape = CompiledTape::Compile([&]() {
    Variable v = Param(leaf.Clone());
    // Four single-consumer same-shape elementwise ops in a row.
    return Sum(Sqrt(Exp(Neg(ScalarMul(v, 0.5)))));
  });
  EXPECT_GE(tape->stats().fusion_chains, 1);
  EXPECT_GE(tape->stats().fused_ops, 2);
  const Status status = tape->Validate();
  EXPECT_TRUE(status.ok()) << status.message();
}

Dataset SmallWorld(uint64_t seed = 21) {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.num_ratings = 700;
  config.num_social_links = 200;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

TEST(CompiledTapeTest, TrainModelCompiledPathIsBitIdentical) {
  const Dataset world = SmallWorld();
  const auto train = [&](bool compile_tape) {
    Rng rng(7);
    MatrixFactorization model(world.num_users, world.num_items, MfConfig{},
                              3.5, &rng);
    TrainOptions options;
    options.epochs = 8;
    options.compile_tape = compile_tape;
    TrainResult result = TrainModel(&model, world.ratings, options);
    std::vector<Tensor> params;
    for (Variable& p : *model.MutableParams()) {
      params.push_back(p.value().Clone());
    }
    return std::make_pair(result, params);
  };

  const auto eager = train(false);
  const auto compiled = train(true);
  ASSERT_EQ(eager.first.loss_history.size(), compiled.first.loss_history.size());
  for (size_t e = 0; e < eager.first.loss_history.size(); ++e) {
    EXPECT_EQ(eager.first.loss_history[e], compiled.first.loss_history[e])
        << "epoch " << e;
  }
  ASSERT_EQ(eager.second.size(), compiled.second.size());
  for (size_t i = 0; i < eager.second.size(); ++i) {
    EXPECT_TRUE(BitIdentical(eager.second[i], compiled.second[i]))
        << "param " << i;
  }
}

TEST(CompiledTapeTest, PdsCheckpointedGradCompiledPathIsBitIdentical) {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.num_ratings = 320;
  config.num_social_links = 120;
  Rng world_rng(55);
  Dataset world = GenerateSynthetic(config, &world_rng);
  const Demographics demo = SampleDemographics(world, 1, &world_rng)[0];
  const std::vector<int64_t> fakes = AddFakeUsers(&world, 2);
  for (int64_t fake : fakes) {
    world.ratings.push_back({fake, demo.target_item, 5.0});
  }
  const CapacitySet capacity =
      CapacitySet::MakeComprehensive(world, demo, fakes, 5.0);

  std::vector<int64_t> users = demo.target_audience;
  std::vector<int64_t> items(users.size(), demo.target_item);

  const auto run = [&](bool compiled, double xhat_value) {
    PdsConfig pds;
    pds.embedding_dim = 4;
    pds.inner_steps = 3;
    pds.compile_first_order = compiled;
    Rng rng(22);
    const PdsSurrogate surrogate(world, {&capacity}, pds, &rng);
    Variable xhat = Param(Tensor::Full({capacity.size()}, xhat_value));
    // Two calls so the compiled variant exercises both Compile (first
    // call) and Replay (second call, different x-hat values).
    surrogate.CheckpointedGrad(
        {xhat}, [&](const PdsSurrogate::Outcome& outcome) {
          return Neg(Mean(surrogate.Predict(outcome, users, items)));
        });
    Variable xhat2 = Param(Tensor::Full({capacity.size()}, xhat_value + 0.25));
    return surrogate.CheckpointedGrad(
        {xhat2}, [&](const PdsSurrogate::Outcome& outcome) {
          return Neg(Mean(surrogate.Predict(outcome, users, items)));
        });
  };

  const PdsSurrogate::FirstOrderResult eager = run(false, 0.5);
  const PdsSurrogate::FirstOrderResult compiled = run(true, 0.5);
  EXPECT_EQ(eager.loss, compiled.loss);
  ASSERT_EQ(eager.gradients.size(), compiled.gradients.size());
  for (size_t i = 0; i < eager.gradients.size(); ++i) {
    EXPECT_GT(eager.gradients[i].MaxAbs(), 0.0);
    EXPECT_TRUE(BitIdentical(eager.gradients[i], compiled.gradients[i]))
        << "gradient " << i;
  }
}

}  // namespace
}  // namespace msopds
