#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace msopds {
namespace {

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(TensorTest, ScalarRoundTrip) {
  Tensor t = Tensor::Scalar(2.5);
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.size(), 1);
  EXPECT_DOUBLE_EQ(t.item(), 2.5);
}

TEST(TensorTest, ZerosInitializesAllElements) {
  Tensor t = Tensor::Zeros({3, 4});
  EXPECT_EQ(t.size(), 12);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(t.at(i, j), 0.0);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full({5}, 7.0);
  for (int64_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(t.at(i), 7.0);
  t.Fill(-1.0);
  for (int64_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(t.at(i), -1.0);
}

TEST(TensorTest, FromVectorPreservesOrder) {
  Tensor t = Tensor::FromVector({1.0, 2.0, 3.0});
  EXPECT_EQ(t.rank(), 1);
  EXPECT_DOUBLE_EQ(t.at(0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(2), 3.0);
}

TEST(TensorTest, FromMatrixIsRowMajor) {
  Tensor t = Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(t.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 4.0);
}

TEST(TensorTest, CopySharesBufferCloneDoesNot) {
  Tensor a = Tensor::FromVector({1.0, 2.0});
  Tensor shared = a;
  Tensor cloned = a.Clone();
  a.at(0) = 9.0;
  EXPECT_DOUBLE_EQ(shared.at(0), 9.0);
  EXPECT_DOUBLE_EQ(cloned.at(0), 1.0);
}

TEST(TensorTest, SumAndMaxAbs) {
  Tensor t = Tensor::FromVector({1.0, -4.0, 2.0});
  EXPECT_DOUBLE_EQ(t.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(t.MaxAbs(), 4.0);
}

TEST(TensorTest, AllCloseDetectsDifferences) {
  Tensor a = Tensor::FromVector({1.0, 2.0});
  Tensor b = Tensor::FromVector({1.0, 2.0 + 1e-12});
  Tensor c = Tensor::FromVector({1.0, 2.1});
  EXPECT_TRUE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_FALSE(AllClose(a, Tensor::FromMatrix(1, 2, {1.0, 2.0})));
}

TEST(TensorTest, EmptyRankOneTensorIsAllowed) {
  Tensor t = Tensor::Zeros({0});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.size(), 0);
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
}

TEST(TensorTest, DebugStringTruncates) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5});
  const std::string s = t.DebugString(2);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace msopds
