// Bit-exactness contract of the memory runtime (DESIGN.md "Memory
// model"): recycling buffers through the arena and segmenting the tape
// with gradient checkpointing are pure memory optimizations — every
// gradient, loss, and trained parameter must be byte-identical with the
// arena on or off and at any checkpoint_every setting, including off.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "attack/poison_plan.h"
#include "attack/unrolled_surrogate.h"
#include "core/pds_surrogate.h"
#include "data/demographics.h"
#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/trainer.h"
#include "tensor/grad.h"
#include "tensor/ops.h"
#include "tensor/remat.h"
#include "util/arena.h"
#include "util/rng.h"

namespace msopds {
namespace {

::testing::AssertionResult BitIdentical(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(),
                  sizeof(double) * static_cast<size_t>(a.size())) != 0) {
    for (int64_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(a.data() + i, b.data() + i, sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first differing element " << i << ": " << a.data()[i]
               << " vs " << b.data()[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Tensor RandomTensor(std::vector<int64_t> shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.data()[i] = rng->Uniform(-1, 1);
  return t;
}

// Runs `fn` once with the arena enabled and once disabled and returns
// both result sets for comparison.
template <typename Fn>
std::pair<std::vector<Tensor>, std::vector<Tensor>> ArenaOnOff(const Fn& fn) {
  Arena& arena = Arena::Global();
  const bool previous = arena.SetEnabled(true);
  std::vector<Tensor> with = fn();
  arena.SetEnabled(false);
  arena.Trim();
  std::vector<Tensor> without = fn();
  arena.SetEnabled(previous);
  arena.Trim();
  return {std::move(with), std::move(without)};
}

TEST(MemoryDeterminismTest, GradValuesBitIdenticalArenaOnOff) {
  auto run = [] {
    Rng rng(3);
    Variable a = Param(RandomTensor({16, 16}, &rng));
    Variable b = Param(RandomTensor({16, 16}, &rng));
    Variable loss = Sum(Square(MatMul(a, b)));
    return GradValues(loss, {a, b});
  };
  const auto [with, without] = ArenaOnOff(run);
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_TRUE(BitIdentical(with[i], without[i])) << "grad " << i;
  }
}

TEST(MemoryDeterminismTest, HvpBitIdenticalArenaOnOff) {
  auto run = [] {
    Rng rng(4);
    const Tensor point = RandomTensor({24}, &rng);
    const Tensor direction = RandomTensor({24}, &rng);
    Variable x = Param(point.Clone());
    Variable inner = Sum(Square(Square(x)));
    Variable g = Grad(inner, {x})[0];
    return std::vector<Tensor>{HessianVectorProduct(g, x, direction)};
  };
  const auto [with, without] = ArenaOnOff(run);
  EXPECT_TRUE(BitIdentical(with[0], without[0]));
}

TEST(MemoryDeterminismTest, TrainModelBitIdenticalArenaOnOff) {
  auto run = [] {
    SyntheticConfig config;
    config.num_users = 40;
    config.num_items = 50;
    config.num_ratings = 400;
    config.num_social_links = 120;
    Rng world_rng(21);
    const Dataset world = GenerateSynthetic(config, &world_rng);
    Rng model_rng(7);
    HetRecSys model(world, HetRecSysConfig{}, &model_rng);
    TrainOptions options;
    options.epochs = 4;
    const TrainResult result = TrainModel(&model, world.ratings, options);
    EXPECT_TRUE(result.healthy);
    std::vector<Tensor> snapshot;
    for (const Variable& param : *model.MutableParams()) {
      snapshot.push_back(param.value().Clone());
    }
    return snapshot;
  };
  const auto [with, without] = ArenaOnOff(run);
  ASSERT_EQ(with.size(), without.size());
  ASSERT_FALSE(with.empty());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_TRUE(BitIdentical(with[i], without[i])) << "param " << i;
  }
}

// The unrolled problem used by the checkpointing tests: a functional-SGD
// loop whose step differentiates w.r.t. the handed state (the shape of
// the PDS inner loop, and a regression guard for the snapshot pass,
// which must hand out requires-grad leaves for exactly this reason).
struct UnrolledProblem {
  Tensor theta0;
  Tensor target;
  Variable coupling;

  explicit UnrolledProblem(uint64_t seed) {
    Rng rng(seed);
    theta0 = RandomTensor({12, 12}, &rng);
    target = RandomTensor({12, 12}, &rng);
    coupling = Param(RandomTensor({12, 12}, &rng));
  }

  CheckpointedGradResult Run(int64_t num_steps, int64_t k) const {
    auto step = [this](const std::vector<Variable>& s, int64_t) {
      Variable residual =
          Sub(MatMul(s[0], coupling), Constant(target.Clone()));
      Variable inner = Sum(Square(residual));
      Variable g = Grad(inner, {s[0]})[0];
      return std::vector<Variable>{Sub(s[0], ScalarMul(g, 1e-2))};
    };
    auto terminal = [](const std::vector<Variable>& s) {
      return Sum(Square(s[0]));
    };
    return CheckpointedUnrollGrad({theta0}, {coupling}, num_steps, k, step,
                                  terminal);
  }
};

TEST(MemoryDeterminismTest, CheckpointedUnrollGradBitIdenticalAcrossK) {
  const UnrolledProblem problem(11);
  const int64_t num_steps = 8;
  const CheckpointedGradResult full = problem.Run(num_steps, 0);
  ASSERT_EQ(full.segments, 1);
  EXPECT_GT(full.input_grads[0].MaxAbs(), 0.0);
  EXPECT_GT(full.state_grads[0].MaxAbs(), 0.0);
  for (int64_t k : {1, 2, 3, 4, 8}) {
    const CheckpointedGradResult segmented = problem.Run(num_steps, k);
    EXPECT_EQ(segmented.segments, (num_steps + k - 1) / k) << "k=" << k;
    EXPECT_TRUE(BitIdentical(segmented.input_grads[0], full.input_grads[0]))
        << "input grad, k=" << k;
    EXPECT_TRUE(BitIdentical(segmented.state_grads[0], full.state_grads[0]))
        << "state grad, k=" << k;
    EXPECT_TRUE(BitIdentical(segmented.loss, full.loss)) << "loss, k=" << k;
    EXPECT_TRUE(BitIdentical(segmented.final_state[0], full.final_state[0]))
        << "final state, k=" << k;
  }
}

TEST(MemoryDeterminismTest, CheckpointedUnrollGradBitIdenticalArenaOnOff) {
  const UnrolledProblem problem(12);
  auto run = [&problem] {
    const CheckpointedGradResult r = problem.Run(6, 2);
    return std::vector<Tensor>{r.input_grads[0], r.state_grads[0], r.loss};
  };
  const auto [with, without] = ArenaOnOff(run);
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_TRUE(BitIdentical(with[i], without[i])) << "tensor " << i;
  }
}

TEST(MemoryDeterminismTest, PdsCheckpointedGradBitIdenticalAcrossK) {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 60;
  config.num_ratings = 480;
  config.num_social_links = 240;
  Rng world_rng(9);
  Dataset world = GenerateSynthetic(config, &world_rng);
  const Demographics demo = SampleDemographics(world, 1, &world_rng)[0];
  const std::vector<int64_t> fakes = AddFakeUsers(&world, 3);
  for (int64_t fake : fakes) {
    world.ratings.push_back({fake, demo.target_item, 5.0});
  }
  const CapacitySet capacity =
      CapacitySet::MakeComprehensive(world, demo, fakes, 5.0);

  std::vector<int64_t> users = demo.target_audience;
  std::vector<int64_t> items(users.size(), demo.target_item);
  Variable xhat = Param(Tensor::Full({capacity.size()}, 0.5));

  auto run = [&](int checkpoint_every) {
    PdsConfig pds;
    pds.inner_steps = 6;
    pds.checkpoint_every = checkpoint_every;
    Rng rng(22);
    const PdsSurrogate surrogate(world, {&capacity}, pds, &rng);
    return surrogate.CheckpointedGrad(
        {xhat}, [&](const PdsSurrogate::Outcome& outcome) {
          return Neg(Mean(surrogate.Predict(outcome, users, items)));
        });
  };

  const PdsSurrogate::FirstOrderResult full = run(0);
  EXPECT_GT(full.gradients[0].MaxAbs(), 0.0);
  for (int k : {1, 2, 3}) {
    const PdsSurrogate::FirstOrderResult segmented = run(k);
    EXPECT_TRUE(BitIdentical(segmented.gradients[0], full.gradients[0]))
        << "k=" << k;
    EXPECT_EQ(segmented.loss, full.loss) << "k=" << k;
  }
}

TEST(MemoryDeterminismTest, UnrolledMfAttackBitIdenticalAcrossCheckpointing) {
  // The unrolled-MF injection attack threads checkpoint_every through
  // the same remat path; its step callback differentiates w.r.t. the
  // handed parameters (FunctionalSgdStep), so this guards the full
  // attack-layer wiring end to end.
  SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 40;
  config.num_ratings = 300;
  config.num_social_links = 90;
  Rng world_rng(15);
  Dataset world = GenerateSynthetic(config, &world_rng);
  const Demographics demo = SampleDemographics(world, 1, &world_rng)[0];
  const int64_t real_users = world.num_users;
  const std::vector<int64_t> fakes = AddFakeUsers(&world, 2);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t fake : fakes) {
    for (int64_t item = 0; item < 6; ++item) {
      if (item != demo.target_item) pairs.emplace_back(fake, item);
    }
  }
  Tensor init({static_cast<int64_t>(pairs.size())});
  init.Fill(3.0);

  auto run = [&](int checkpoint_every) {
    UnrolledMfOptions options;
    options.pretrain_epochs = 5;
    options.unroll_steps = 4;
    options.outer_iterations = 2;
    options.checkpoint_every = checkpoint_every;
    Rng rng(31);
    return OptimizeFakeRatings(world, demo, pairs, init, real_users, options,
                               &rng);
  };
  const Tensor full = run(0);
  for (int k : {1, 2}) {
    EXPECT_TRUE(BitIdentical(run(k), full)) << "checkpoint_every=" << k;
  }
}

TEST(MemoryDeterminismTest, CheckpointingBoundsPeakTapeBytes) {
  // The memory half of the trade: segmenting an 8-step unroll at k=2
  // must cut peak tape bytes well past the 35% acceptance floor.
  const UnrolledProblem problem(13);
  Arena& arena = Arena::Global();
  const bool previous = arena.SetEnabled(true);
  auto peak_bytes = [&](int64_t k) {
    arena.Trim();
    arena.ResetPeak();
    const int64_t before = arena.stats().bytes_live;
    problem.Run(8, k);
    return arena.stats().high_water_bytes - before;
  };
  const int64_t full = peak_bytes(0);
  const int64_t segmented = peak_bytes(2);
  EXPECT_LT(segmented, full - full * 35 / 100)
      << "full tape " << full << " bytes, k=2 " << segmented << " bytes";
  arena.SetEnabled(previous);
  arena.Trim();
}

}  // namespace
}  // namespace msopds
