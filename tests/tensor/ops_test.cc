#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/grad.h"

namespace msopds {
namespace {

TEST(OpsTest, AddSameShape) {
  Variable a = Constant(Tensor::FromVector({1, 2}));
  Variable b = Constant(Tensor::FromVector({3, 4}));
  EXPECT_TRUE(AllClose(Add(a, b).value(), Tensor::FromVector({4, 6})));
}

TEST(OpsTest, AddScalarBroadcast) {
  Variable a = Constant(Tensor::FromVector({1, 2}));
  Variable s = ConstantScalar(10.0);
  EXPECT_TRUE(AllClose(Add(a, s).value(), Tensor::FromVector({11, 12})));
  EXPECT_TRUE(AllClose(Add(s, a).value(), Tensor::FromVector({11, 12})));
}

TEST(OpsTest, MulDivNeg) {
  Variable a = Constant(Tensor::FromVector({2, -3}));
  Variable b = Constant(Tensor::FromVector({4, 2}));
  EXPECT_TRUE(AllClose(Mul(a, b).value(), Tensor::FromVector({8, -6})));
  EXPECT_TRUE(AllClose(Div(a, b).value(), Tensor::FromVector({0.5, -1.5})));
  EXPECT_TRUE(AllClose(Neg(a).value(), Tensor::FromVector({-2, 3})));
}

TEST(OpsTest, ScalarMulAndAddScalar) {
  Variable a = Constant(Tensor::FromVector({1, 2}));
  EXPECT_TRUE(AllClose(ScalarMul(a, 3.0).value(), Tensor::FromVector({3, 6})));
  EXPECT_TRUE(AllClose(AddScalar(a, 1.5).value(),
                       Tensor::FromVector({2.5, 3.5})));
}

TEST(OpsTest, ExpLogSqrtSquare) {
  Variable a = Constant(Tensor::FromVector({0.0, 1.0}));
  EXPECT_NEAR(Exp(a).value().at(1), std::exp(1.0), 1e-12);
  Variable b = Constant(Tensor::FromVector({1.0, std::exp(2.0)}));
  EXPECT_NEAR(Log(b).value().at(1), 2.0, 1e-12);
  Variable c = Constant(Tensor::FromVector({4.0, 9.0}));
  EXPECT_TRUE(AllClose(Sqrt(c).value(), Tensor::FromVector({2, 3})));
  EXPECT_TRUE(AllClose(Square(c).value(), Tensor::FromVector({16, 81})));
}

TEST(OpsTest, MatMulKnownValues) {
  Variable a = Constant(Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6}));
  Variable b = Constant(Tensor::FromMatrix(3, 2, {7, 8, 9, 10, 11, 12}));
  const Tensor expected = Tensor::FromMatrix(2, 2, {58, 64, 139, 154});
  EXPECT_TRUE(AllClose(MatMul(a, b).value(), expected));
}

TEST(OpsTest, TransposeRoundTrip) {
  Variable a = Constant(Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6}));
  Variable t = Transpose(a);
  EXPECT_EQ(t.value().dim(0), 3);
  EXPECT_DOUBLE_EQ(t.value().at(2, 1), 6.0);
  EXPECT_TRUE(AllClose(Transpose(t).value(), a.value()));
}

TEST(OpsTest, SumMeanRowSum) {
  Variable a = Constant(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(Sum(a).value().item(), 10.0);
  EXPECT_DOUBLE_EQ(Mean(a).value().item(), 2.5);
  EXPECT_TRUE(AllClose(RowSum(a).value(), Tensor::FromVector({3, 7})));
}

TEST(OpsTest, TileColsExpandsVector) {
  Variable v = Constant(Tensor::FromVector({1, 2}));
  const Tensor expected = Tensor::FromMatrix(2, 3, {1, 1, 1, 2, 2, 2});
  EXPECT_TRUE(AllClose(TileCols(v, 3).value(), expected));
}

TEST(OpsTest, ConcatAndSliceCols) {
  Variable a = Constant(Tensor::FromMatrix(2, 1, {1, 2}));
  Variable b = Constant(Tensor::FromMatrix(2, 2, {3, 4, 5, 6}));
  Variable c = ConcatCols(a, b);
  EXPECT_EQ(c.value().dim(1), 3);
  EXPECT_DOUBLE_EQ(c.value().at(1, 2), 6.0);
  EXPECT_TRUE(AllClose(SliceCols(c, 0, 1).value(), a.value()));
  EXPECT_TRUE(AllClose(SliceCols(c, 1, 3).value(), b.value()));
}

TEST(OpsTest, ConcatAndSlice1) {
  Variable a = Constant(Tensor::FromVector({1, 2}));
  Variable b = Constant(Tensor::FromVector({3}));
  Variable c = Concat1(a, b);
  EXPECT_TRUE(AllClose(c.value(), Tensor::FromVector({1, 2, 3})));
  EXPECT_TRUE(AllClose(Slice1(c, 1, 3).value(), Tensor::FromVector({2, 3})));
}

TEST(OpsTest, Concat1WithEmpty) {
  Variable a = Constant(Tensor::Zeros({0}));
  Variable b = Constant(Tensor::FromVector({5}));
  EXPECT_TRUE(AllClose(Concat1(a, b).value(), Tensor::FromVector({5})));
}

TEST(OpsTest, GatherRowsRepeatsAllowed) {
  Variable x = Constant(Tensor::FromMatrix(3, 2, {1, 2, 3, 4, 5, 6}));
  Variable g = GatherRows(x, MakeIndex({2, 0, 2}));
  const Tensor expected = Tensor::FromMatrix(3, 2, {5, 6, 1, 2, 5, 6});
  EXPECT_TRUE(AllClose(g.value(), expected));
}

TEST(OpsTest, ScatterAddRowsAccumulates) {
  Variable g = Constant(Tensor::FromMatrix(3, 1, {1, 2, 3}));
  Variable s = ScatterAddRows(g, MakeIndex({0, 1, 0}), 2);
  EXPECT_TRUE(AllClose(s.value(), Tensor::FromMatrix(2, 1, {4, 2})));
}

TEST(OpsTest, Gather1AndScatterAdd1) {
  Variable x = Constant(Tensor::FromVector({10, 20, 30}));
  EXPECT_TRUE(AllClose(Gather1(x, MakeIndex({2, 2, 0})).value(),
                       Tensor::FromVector({30, 30, 10})));
  Variable g = Constant(Tensor::FromVector({1, 2, 3}));
  EXPECT_TRUE(AllClose(ScatterAdd1(g, MakeIndex({1, 1, 0}), 3).value(),
                       Tensor::FromVector({3, 3, 0})));
}

TEST(OpsTest, SpMMWeightedAggregation) {
  // Two nodes; edges 0<-1 (w=2) and 1<-0 (w=0.5).
  Variable x = Constant(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  Variable w = Constant(Tensor::FromVector({2.0, 0.5}));
  Variable out = SpMM(MakeIndex({0, 1}), MakeIndex({1, 0}), w, x, 2);
  const Tensor expected = Tensor::FromMatrix(2, 2, {6, 8, 0.5, 1});
  EXPECT_TRUE(AllClose(out.value(), expected));
}

TEST(OpsTest, SpMMZeroWeightDropsEdge) {
  Variable x = Constant(Tensor::FromMatrix(2, 1, {1, 1}));
  Variable w = Constant(Tensor::FromVector({0.0}));
  Variable out = SpMM(MakeIndex({0}), MakeIndex({1}), w, x, 2);
  EXPECT_TRUE(AllClose(out.value(), Tensor::FromMatrix(2, 1, {0, 0})));
}

TEST(OpsTest, EdgeDotMatchesManual) {
  Variable a = Constant(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  Variable b = Constant(Tensor::FromMatrix(2, 2, {5, 6, 7, 8}));
  Variable out = EdgeDot(a, b, MakeIndex({0, 1}), MakeIndex({1, 0}));
  // dot([1,2],[7,8]) = 23; dot([3,4],[5,6]) = 39.
  EXPECT_TRUE(AllClose(out.value(), Tensor::FromVector({23, 39})));
}

TEST(OpsTest, ReluSeluSigmoidValues) {
  Variable x = Constant(Tensor::FromVector({-1.0, 0.5}));
  EXPECT_TRUE(AllClose(Relu(x).value(), Tensor::FromVector({0.0, 0.5})));
  const Tensor selu = Selu(x).value();
  EXPECT_NEAR(selu.at(1), 1.0507009873554805 * 0.5, 1e-12);
  EXPECT_NEAR(selu.at(0),
              1.0507009873554805 * 1.6732632423543772 * (std::exp(-1.0) - 1),
              1e-12);
  const Tensor sig = Sigmoid(x).value();
  EXPECT_NEAR(sig.at(0), 1.0 / (1.0 + std::exp(1.0)), 1e-12);
}

TEST(OpsTest, SeluIsContinuousAtZero) {
  Variable eps = Constant(Tensor::FromVector({-1e-12, 0.0, 1e-12}));
  const Tensor out = Selu(eps).value();
  EXPECT_NEAR(out.at(0), 0.0, 1e-10);
  EXPECT_NEAR(out.at(1), 0.0, 1e-10);
  EXPECT_NEAR(out.at(2), 0.0, 1e-10);
}

TEST(OpsTest, PairDotAndDot) {
  Variable a = Constant(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  Variable b = Constant(Tensor::FromMatrix(2, 2, {5, 6, 7, 8}));
  EXPECT_TRUE(AllClose(PairDot(a, b).value(), Tensor::FromVector({17, 53})));
  Variable u = Constant(Tensor::FromVector({1, 2}));
  Variable v = Constant(Tensor::FromVector({3, 4}));
  EXPECT_DOUBLE_EQ(Dot(u, v).value().item(), 11.0);
}

TEST(OpsTest, SegmentSoftmaxNormalizesPerSegment) {
  Variable scores = Constant(Tensor::FromVector({1.0, 2.0, 3.0, -1.0}));
  Variable out = SegmentSoftmax(scores, MakeIndex({0, 0, 1, 1}), 2);
  const Tensor t = out.value();
  EXPECT_NEAR(t.at(0) + t.at(1), 1.0, 1e-12);
  EXPECT_NEAR(t.at(2) + t.at(3), 1.0, 1e-12);
  EXPECT_GT(t.at(1), t.at(0));
  EXPECT_GT(t.at(2), t.at(3));
}

TEST(OpsTest, SegmentSoftmaxIsStableForLargeScores) {
  Variable scores = Constant(Tensor::FromVector({1000.0, 1001.0}));
  const Tensor out =
      SegmentSoftmax(scores, MakeIndex({0, 0}), 1).value();
  EXPECT_NEAR(out.at(0) + out.at(1), 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(out.at(0)));
}

TEST(OpsTest, SquaredNorm) {
  Variable x = Constant(Tensor::FromVector({3, 4}));
  EXPECT_DOUBLE_EQ(SquaredNorm(x).value().item(), 25.0);
}

TEST(OpsTest, WhereSelectsByMask) {
  Tensor mask = Tensor::FromVector({1, 0, 1});
  Variable a = Constant(Tensor::FromVector({1, 2, 3}));
  Variable b = Constant(Tensor::FromVector({10, 20, 30}));
  EXPECT_TRUE(AllClose(Where(mask, a, b).value(),
                       Tensor::FromVector({1, 20, 3})));
}

TEST(OpsTest, RequiresGradPropagates) {
  Variable p = Param(Tensor::FromVector({1, 2}));
  Variable c = Constant(Tensor::FromVector({3, 4}));
  EXPECT_TRUE(Add(p, c).requires_grad());
  EXPECT_FALSE(Add(c, c).requires_grad());
}

TEST(OpsTest, OperatorSugar) {
  Variable a = Constant(Tensor::FromVector({1, 2}));
  Variable b = Constant(Tensor::FromVector({3, 4}));
  EXPECT_TRUE(AllClose((a + b).value(), Tensor::FromVector({4, 6})));
  EXPECT_TRUE(AllClose((a - b).value(), Tensor::FromVector({-2, -2})));
  EXPECT_TRUE(AllClose((a * b).value(), Tensor::FromVector({3, 8})));
  EXPECT_TRUE(AllClose((-a).value(), Tensor::FromVector({-1, -2})));
}

}  // namespace
}  // namespace msopds
