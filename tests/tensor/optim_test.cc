#include "tensor/optim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/grad.h"
#include "tensor/ops.h"

namespace msopds {
namespace {

// Minimizes f(x) = sum((x - t)^2) and returns the final point.
Tensor Minimize(Optimizer* optimizer, const Tensor& start, const Tensor& t,
                int steps) {
  std::vector<Variable> params = {Param(start.Clone())};
  for (int i = 0; i < steps; ++i) {
    Variable loss = Sum(Square(Sub(params[0], Constant(t.Clone()))));
    optimizer->Step(&params, GradValues(loss, params));
  }
  return params[0].value();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Sgd sgd(0.1);
  const Tensor t = Tensor::FromVector({1.0, -2.0, 0.5});
  const Tensor x = Minimize(&sgd, Tensor::Zeros({3}), t, 100);
  EXPECT_TRUE(AllClose(x, t, 1e-6));
}

TEST(SgdTest, OneStepMatchesHandComputation) {
  // x0 = 0, target 1: grad = 2(x - 1) = -2; x1 = 0 - 0.1 * -2 = 0.2.
  Sgd sgd(0.1);
  const Tensor x =
      Minimize(&sgd, Tensor::Zeros({1}), Tensor::FromVector({1.0}), 1);
  EXPECT_NEAR(x.at(0), 0.2, 1e-12);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Sgd plain(0.02);
  Sgd momentum(0.02, 0.9);
  const Tensor t = Tensor::FromVector({3.0});
  const Tensor x_plain = Minimize(&plain, Tensor::Zeros({1}), t, 10);
  const Tensor x_momentum = Minimize(&momentum, Tensor::Zeros({1}), t, 10);
  EXPECT_GT(x_momentum.at(0), x_plain.at(0));
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Sgd sgd(0.1, 0.0, /*weight_decay=*/0.5);
  std::vector<Variable> params = {Param(Tensor::FromVector({1.0}))};
  // Zero task gradient: only decay acts. x1 = 1 - 0.1 * 0.5 * 1 = 0.95.
  sgd.Step(&params, {Tensor::Zeros({1})});
  EXPECT_NEAR(params[0].value().at(0), 0.95, 1e-12);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Adam adam(0.2);
  const Tensor t = Tensor::FromVector({-1.0, 4.0});
  const Tensor x = Minimize(&adam, Tensor::Zeros({2}), t, 200);
  EXPECT_TRUE(AllClose(x, t, 1e-3));
}

TEST(AdamTest, FirstStepHasUnitScale) {
  // Adam's bias correction makes the first step ~lr * sign(grad).
  Adam adam(0.1);
  std::vector<Variable> params = {Param(Tensor::Zeros({1}))};
  Tensor grad = Tensor::FromVector({123.0});
  adam.Step(&params, {grad});
  EXPECT_NEAR(params[0].value().at(0), -0.1, 1e-6);
}

TEST(AdamTest, HandlesMultipleParameterBlocks) {
  Adam adam(0.3);
  std::vector<Variable> params = {Param(Tensor::Zeros({2})),
                                  Param(Tensor::Zeros({3}))};
  const Tensor t1 = Tensor::FromVector({1.0, 2.0});
  const Tensor t2 = Tensor::FromVector({-1.0, 0.5, 3.0});
  for (int i = 0; i < 300; ++i) {
    Variable loss = Add(Sum(Square(Sub(params[0], Constant(t1.Clone())))),
                        Sum(Square(Sub(params[1], Constant(t2.Clone())))));
    adam.Step(&params, GradValues(loss, params));
  }
  EXPECT_TRUE(AllClose(params[0].value(), t1, 1e-2));
  EXPECT_TRUE(AllClose(params[1].value(), t2, 1e-2));
}

TEST(OptimizerTest, StepsAreDeterministic) {
  for (int trial = 0; trial < 2; ++trial) {
    Adam adam(0.1);
    const Tensor x = Minimize(&adam, Tensor::Zeros({2}),
                              Tensor::FromVector({1.0, 1.0}), 5);
    static Tensor first;
    if (trial == 0) {
      first = x.Clone();
    } else {
      EXPECT_TRUE(AllClose(first, x));
    }
  }
}

}  // namespace
}  // namespace msopds
