#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tensor/variable.h"
#include "tensor/verify.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

// A well-formed single-grid plan: `chunks` chunks of `grain` units, each
// writing `width` contiguous elements per unit. The planted-violation
// tests below each break exactly one invariant of this shape.
WritePlan GoodPlan(int64_t units = 100, int64_t grain = 10,
                   int64_t width = 8) {
  WritePlan plan;
  plan.units = units;
  plan.grain = grain;
  plan.num_chunks = NumChunks(units, grain);
  plan.output_elems = units * width;
  for (int64_t c = 0; c < plan.num_chunks; ++c) {
    const int64_t begin = c * grain;
    const int64_t end = std::min(begin + grain, units);
    plan.writes.push_back({c, begin * width, end * width});
  }
  return plan;
}

TEST(VerifyWritePlanTest, AcceptsDisjointCoveringGrid) {
  EXPECT_TRUE(VerifyWritePlan("good", GoodPlan()).ok());
}

TEST(VerifyWritePlanTest, RejectsOverlappingChunks) {
  WritePlan plan = GoodPlan();
  plan.writes[1].end += 1;  // reaches one element into chunk 2's range
  const Status status = VerifyWritePlan("bad", plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("parallel write overlap"),
            std::string::npos);
}

TEST(VerifyWritePlanTest, RejectsCoverageGap) {
  WritePlan plan = GoodPlan();
  plan.writes[3].begin += 2;  // claims covers_output but skips 2 elements
  EXPECT_FALSE(VerifyWritePlan("bad", plan).ok());
}

TEST(VerifyWritePlanTest, AcceptsPartialWritesWhenNotCovering) {
  WritePlan plan = GoodPlan();
  plan.writes[3].begin += 2;
  plan.covers_output = false;  // zero-filled destination: gaps are fine
  EXPECT_TRUE(VerifyWritePlan("scatterish", plan).ok());
}

TEST(VerifyWritePlanTest, RejectsDuplicateChunkRanges) {
  WritePlan plan = GoodPlan();
  plan.writes[4].chunk = 3;
  EXPECT_FALSE(VerifyWritePlan("bad", plan).ok());
}

TEST(VerifyWritePlanTest, RejectsOutOfBoundsRange) {
  WritePlan plan = GoodPlan();
  plan.writes.back().end = plan.output_elems + 1;
  EXPECT_FALSE(VerifyWritePlan("bad", plan).ok());
}

TEST(VerifyWritePlanTest, RejectsGridArithmeticMismatch) {
  WritePlan plan = GoodPlan();
  plan.grain = 7;  // NumChunks(100, 7) = 15 != the 10 chunks declared
  EXPECT_FALSE(VerifyWritePlan("bad", plan).ok());
}

TEST(VerifyWritePlanTest, MultiGridPlanSkipsArithmeticButNotOverlap) {
  // Concat1-style: two sequential grids, chunk ids renumbered. The
  // units/grain arithmetic no longer applies, overlap detection still
  // does.
  WritePlan plan = GoodPlan();
  plan.grids = 2;
  plan.num_chunks += 1;
  plan.writes.push_back(
      {plan.num_chunks - 1, plan.output_elems, plan.output_elems});
  EXPECT_TRUE(VerifyWritePlan("concatish", plan).ok());
  plan.writes.back() = {plan.num_chunks - 1, 0, 1};
  EXPECT_FALSE(VerifyWritePlan("concatish", plan).ok());
}

TEST(VerifyWritePlanTest, RejectsPermutedReductionLanes) {
  WritePlan plan;
  plan.units = 100;
  plan.grain = 10;
  plan.num_chunks = 10;
  plan.output_elems = 10;
  plan.reduction = true;
  for (int64_t c = 0; c < 10; ++c) {
    plan.writes.push_back({c, c, c + 1});
    plan.reduction_lanes.push_back(c);
  }
  ASSERT_TRUE(VerifyWritePlan("sum", plan).ok());
  std::swap(plan.reduction_lanes[2], plan.reduction_lanes[5]);
  const Status status = VerifyWritePlan("sum", plan);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("fixed ascending tree"), std::string::npos);
}

TEST(VerifyWritePlanTest, RejectsLanesOnNonReduction) {
  WritePlan plan = GoodPlan();
  plan.reduction_lanes = {0};
  EXPECT_FALSE(VerifyWritePlan("bad", plan).ok());
}

// Every registered parallel kernel must carry a plan, the plan must be
// disjoint at its example shapes, and the example must exercise a real
// multi-chunk grid (a one-chunk grid proves nothing).
TEST(OpRegistryWritePlanTest, AllParallelKernelsPlanDisjointWrites) {
  int planned = 0;
  for (const OpSpec& spec : OpRegistry()) {
    EXPECT_EQ(spec.parallel_kernel, spec.write_plan != nullptr)
        << spec.name << ": parallel_kernel and write_plan must agree";
    if (!spec.write_plan) continue;
    ASSERT_TRUE(spec.plan_example != nullptr) << spec.name;
    const PlanExample example = spec.plan_example();
    const WritePlan plan =
        spec.write_plan(example.input_shapes, example.output_shape);
    EXPECT_GE(plan.num_chunks, 2) << spec.name << ": one-chunk example";
    const Status status = VerifyWritePlan(spec.name, plan);
    EXPECT_TRUE(status.ok()) << status.message();
    ++planned;
  }
  EXPECT_GE(planned, 29);  // every kernel scheduled on the chunk grid
}

// The pass runs on recorded graphs: a real multi-chunk MatMul node gets
// its plan rebuilt from recorded shapes and overlap-checked.
TEST(GraphWriteOverlapTest, RecordedNodesAreOverlapChecked) {
  Variable a = Param(Tensor::Full({700, 16}, 0.25));
  Variable b = Param(Tensor::Full({16, 8}, -0.5));
  Variable loss = Sum(MatMul(a, b));
  const VerifyResult result = VerifyGraph(loss);
  EXPECT_TRUE(result.ok()) << result.Report();
  // MatMul (700x8, RowGrain(8)=512 -> 2 chunks) and Sum both planned.
  EXPECT_GE(result.stats.num_write_planned_nodes, 2);
  EXPECT_GE(result.stats.num_planned_chunks, 3);
}

TEST(GraphWriteOverlapTest, OptionDisablesThePass) {
  Variable a = Param(Tensor::Full({700, 16}, 0.25));
  Variable b = Param(Tensor::Full({16, 8}, -0.5));
  Variable loss = Sum(MatMul(a, b));
  GraphVerifier::Options options;
  options.check_write_overlap = false;
  const VerifyResult result = GraphVerifier(options).Verify(loss);
  EXPECT_TRUE(result.ok()) << result.Report();
  EXPECT_EQ(result.stats.num_write_planned_nodes, 0);
  EXPECT_EQ(result.stats.num_planned_chunks, 0);
}

// A node that fails shape inference must not reach the write planner
// (plans assume infer-consistent shapes).
TEST(GraphWriteOverlapTest, ShapeFailureSkipsThePlanner) {
  Variable a = Param(Tensor::Full({700, 16}, 0.25));
  Variable b = Param(Tensor::Full({16, 8}, -0.5));
  Variable bad = internal::MakeTestNode("MatMul", Tensor::Full({3, 3}, 0.0),
                                        {a, b}, /*requires_grad=*/true);
  const VerifyResult result = VerifyGraph(bad);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.stats.num_write_planned_nodes, 0);
}

}  // namespace
}  // namespace msopds
