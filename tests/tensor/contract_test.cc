// API-contract death tests: the library CHECK-fails loudly on misuse
// instead of corrupting state (Google style: no exceptions).

#include <gtest/gtest.h>

#include "tensor/grad.h"
#include "tensor/ops.h"

namespace msopds {
namespace {

TEST(TensorContractTest, RankThreeRejected) {
  EXPECT_DEATH(Tensor({2, 2, 2}), "rank 0..2");
}

TEST(TensorContractTest, OutOfRangeAccessDies) {
  Tensor t = Tensor::FromVector({1, 2});
  EXPECT_DEATH(t.at(2), "Check failed");
  EXPECT_DEATH(t.at(-1), "Check failed");
}

TEST(TensorContractTest, ItemRequiresSizeOne) {
  Tensor t = Tensor::FromVector({1, 2});
  EXPECT_DEATH(t.item(), "Check failed");
}

TEST(OpsContractTest, ShapeMismatchDies) {
  Variable a = Constant(Tensor::FromVector({1, 2}));
  Variable b = Constant(Tensor::FromVector({1, 2, 3}));
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

TEST(OpsContractTest, MatMulInnerDimMismatchDies) {
  Variable a = Constant(Tensor::FromMatrix(2, 3, {1, 2, 3, 4, 5, 6}));
  Variable b = Constant(Tensor::FromMatrix(2, 2, {1, 2, 3, 4}));
  EXPECT_DEATH(MatMul(a, b), "Check failed");
}

TEST(OpsContractTest, GatherOutOfRangeDies) {
  Variable x = Constant(Tensor::FromVector({1, 2}));
  EXPECT_DEATH(Gather1(x, MakeIndex({5})), "Check failed");
}

TEST(OpsContractTest, ReshapeMustPreserveSize) {
  Variable x = Constant(Tensor::FromVector({1, 2, 3}));
  EXPECT_DEATH(Reshape(x, {2, 2}), "keep size");
}

TEST(OpsContractTest, SliceBoundsChecked) {
  Variable x = Constant(Tensor::FromVector({1, 2, 3}));
  EXPECT_DEATH(Slice1(x, 1, 5), "Check failed");
  EXPECT_DEATH(Slice1(x, -1, 2), "Check failed");
}

TEST(GradContractTest, GradOfConstantDies) {
  Variable c = Constant(Tensor::Scalar(1.0));
  EXPECT_DEATH(Grad(c, {c}), "does not require grad");
}

TEST(GradContractTest, SeedShapeMismatchDies) {
  Variable x = Param(Tensor::FromVector({1, 2}));
  Variable y = Mul(x, x);
  Variable bad_seed = Constant(Tensor::Scalar(1.0));
  EXPECT_DEATH(Grad(y, {x}, bad_seed), "grad_output shape mismatch");
}

TEST(VariableContractTest, MutableValueOnDerivedNodeDies) {
  Variable x = Param(Tensor::Scalar(1.0));
  Variable y = Neg(x);
  EXPECT_DEATH(y.mutable_value(), "derived node");
}

TEST(VariableContractTest, UndefinedValueDies) {
  Variable empty;
  EXPECT_DEATH(empty.value(), "Check failed");
}

}  // namespace
}  // namespace msopds
