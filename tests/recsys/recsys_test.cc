#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/matrix_factorization.h"
#include "recsys/metrics.h"
#include "recsys/trainer.h"
#include "tensor/grad.h"

namespace msopds {
namespace {

Dataset SmallWorld(uint64_t seed = 21) {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.num_ratings = 700;
  config.num_social_links = 200;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

TEST(HetRecSysTest, TrainingLossDecreases) {
  const Dataset world = SmallWorld();
  Rng rng(1);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 30;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  ASSERT_GE(result.loss_history.size(), 2u);
  EXPECT_LT(result.final_loss, result.loss_history.front() * 0.5);
}

TEST(HetRecSysTest, PredictionsApproachTargetsAfterTraining) {
  const Dataset world = SmallWorld();
  Rng rng(2);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 60;
  TrainModel(&model, world.ratings, options);
  EXPECT_LT(Rmse(&model, world.ratings), 1.2);
}

TEST(HetRecSysTest, PredictPairsShapeAndDeterminism) {
  const Dataset world = SmallWorld();
  Rng rng(3);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  const std::vector<int64_t> users = {0, 1, 2};
  const std::vector<int64_t> items = {0, 0, 1};
  const Tensor a = model.PredictPairs(users, items);
  const Tensor b = model.PredictPairs(users, items);
  EXPECT_EQ(a.size(), 3);
  EXPECT_TRUE(AllClose(a, b));
}

TEST(HetRecSysTest, MeanAggregationFallbackTrains) {
  const Dataset world = SmallWorld();
  Rng rng(4);
  HetRecSysConfig config;
  config.use_attention = false;
  HetRecSys model(world, config, &rng);
  TrainOptions options;
  options.epochs = 20;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front());
}

TEST(HetRecSysTest, EmptyGraphsStillWork) {
  Dataset world = SmallWorld();
  world.social = UndirectedGraph(world.num_users);
  world.items = UndirectedGraph(world.num_items);
  Rng rng(5);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 10;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front());
}

TEST(MatrixFactorizationTest, TrainingLossDecreases) {
  const Dataset world = SmallWorld();
  Rng rng(6);
  MatrixFactorization model(world.num_users, world.num_items, MfConfig{}, 3.5,
                            &rng);
  TrainOptions options;
  options.epochs = 40;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front() * 0.5);
}

TEST(MatrixFactorizationTest, FunctionalPredictMatchesClassPredict) {
  Rng rng(7);
  MfParams params = MakeMfParams(4, 5, MfConfig{}, 3.0, &rng);
  const Variable pred =
      MfPredict(params, MakeIndex({0, 1}), MakeIndex({2, 3}));
  EXPECT_EQ(pred.value().size(), 2);
  // mu + biases (0) + small dot product: near the global mean.
  EXPECT_NEAR(pred.value().at(0), 3.0, 0.5);
}

TEST(MatrixFactorizationTest, LossIsDifferentiableInTargets) {
  Rng rng(8);
  MfParams params = MakeMfParams(3, 3, MfConfig{}, 3.0, &rng);
  Variable targets = Param(Tensor::FromVector({4.0, 2.0}));
  Variable loss = MfLoss(params, MakeIndex({0, 1}), MakeIndex({1, 2}),
                         targets, 0.0);
  const Tensor g = GradValues(loss, {targets})[0];
  EXPECT_GT(g.MaxAbs(), 0.0);
}

TEST(TrainerTest, SgdAndAdamBothConverge) {
  const Dataset world = SmallWorld();
  for (OptimizerKind kind : {OptimizerKind::kAdam, OptimizerKind::kSgd}) {
    Rng rng(9);
    MatrixFactorization model(world.num_users, world.num_items, MfConfig{},
                              3.5, &rng);
    TrainOptions options;
    options.optimizer = kind;
    options.epochs = 30;
    options.learning_rate = kind == OptimizerKind::kSgd ? 0.5 : 0.05;
    const TrainResult result = TrainModel(&model, world.ratings, options);
    EXPECT_LT(result.final_loss, result.loss_history.front());
  }
}

TEST(MetricsTest, AverageTargetRatingClampsToRange) {
  const Dataset world = SmallWorld();
  Rng rng(10);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  const double r = AverageTargetRating(&model, {0, 1, 2, 3}, 5);
  EXPECT_GE(r, kMinRating);
  EXPECT_LE(r, kMaxRating);
}

TEST(MetricsTest, HitRateBoundsAndMonotonicityInK) {
  const Dataset world = SmallWorld();
  Rng rng(11);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  const std::vector<int64_t> audience = {0, 1, 2, 3, 4};
  const std::vector<int64_t> compete = {10, 11, 12, 13, 14, 15};
  const double h1 = HitRateAtK(&model, audience, 20, compete, 1);
  const double h3 = HitRateAtK(&model, audience, 20, compete, 3);
  const double h6 = HitRateAtK(&model, audience, 20, compete, 6);
  EXPECT_GE(h1, 0.0);
  EXPECT_LE(h1, h3);
  EXPECT_LE(h3, h6);
  EXPECT_LE(h6, 1.0);
}

TEST(MetricsTest, HitRateIsOneWhenKExceedsCompetitors) {
  const Dataset world = SmallWorld();
  Rng rng(12);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  const double h = HitRateAtK(&model, {0, 1}, 3, {7, 8}, 3);
  EXPECT_DOUBLE_EQ(h, 1.0);
}

}  // namespace
}  // namespace msopds
