#include <cmath>

#include <gtest/gtest.h>

#include <unordered_map>

#include "recsys/metrics.h"

namespace msopds {
namespace {

// A deterministic stub model with scripted predictions per (user, item).
class StubModel : public RatingModel {
 public:
  void Set(int64_t user, int64_t item, double value) {
    table_[user * 1000 + item] = value;
  }
  std::vector<Variable>* MutableParams() override { return &params_; }
  Variable TrainingLoss(const std::vector<Rating>&) override {
    return ConstantScalar(0.0);
  }
  Tensor PredictPairs(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items) override {
    Tensor out({static_cast<int64_t>(users.size())});
    for (size_t k = 0; k < users.size(); ++k) {
      auto it = table_.find(users[k] * 1000 + items[k]);
      out.at(static_cast<int64_t>(k)) = it == table_.end() ? 0.0 : it->second;
    }
    return out;
  }

 private:
  std::vector<Variable> params_;
  std::unordered_map<int64_t, double> table_;
};

// Audience {0}: target ranks 2nd of {target, c1, c2, c3}.
StubModel RankTwoModel(int64_t target = 10) {
  StubModel model;
  model.Set(0, target, 3.0);
  model.Set(0, 11, 4.0);  // one competitor above
  model.Set(0, 12, 2.0);
  model.Set(0, 13, 1.0);
  return model;
}

TEST(RankingMetricsTest, HitRateRespectsRank) {
  StubModel model = RankTwoModel();
  EXPECT_DOUBLE_EQ(HitRateAtK(&model, {0}, 10, {11, 12, 13}, 1), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(&model, {0}, 10, {11, 12, 13}, 2), 1.0);
}

TEST(RankingMetricsTest, PrecisionScalesByK) {
  StubModel model = RankTwoModel();
  EXPECT_DOUBLE_EQ(PrecisionAtK(&model, {0}, 10, {11, 12, 13}, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(&model, {0}, 10, {11, 12, 13}, 1), 0.0);
  EXPECT_NEAR(PrecisionAtK(&model, {0}, 10, {11, 12, 13}, 3), 1.0 / 3.0,
              1e-12);
}

TEST(RankingMetricsTest, NdcgDiscountsByLogRank) {
  StubModel model = RankTwoModel();
  // Rank 2 -> 1/log2(3).
  EXPECT_NEAR(NdcgAtK(&model, {0}, 10, {11, 12, 13}, 3),
              1.0 / std::log2(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK(&model, {0}, 10, {11, 12, 13}, 1), 0.0);
}

TEST(RankingMetricsTest, PerfectRankGivesFullNdcg) {
  StubModel model;
  model.Set(0, 10, 9.0);
  model.Set(0, 11, 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(&model, {0}, 10, {11}, 3), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(&model, {0}, 10, {11}, 1), 1.0);
}

TEST(RankingMetricsTest, AveragesOverAudience) {
  StubModel model;
  // User 0: target on top. User 1: target below both competitors.
  model.Set(0, 10, 9.0);
  model.Set(0, 11, 1.0);
  model.Set(0, 12, 1.0);
  model.Set(1, 10, 0.5);
  model.Set(1, 11, 2.0);
  model.Set(1, 12, 3.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(&model, {0, 1}, 10, {11, 12}, 1), 0.5);
  EXPECT_NEAR(NdcgAtK(&model, {0, 1}, 10, {11, 12}, 3),
              0.5 * (1.0 + 1.0 / std::log2(4.0)), 1e-12);
}

TEST(RankingMetricsTest, TiesFavorTheTarget) {
  StubModel model;
  model.Set(0, 10, 2.0);
  model.Set(0, 11, 2.0);  // tie
  EXPECT_DOUBLE_EQ(HitRateAtK(&model, {0}, 10, {11}, 1), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(&model, {0}, 10, {11}, 1), 1.0);
}

}  // namespace
}  // namespace msopds
