#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/trainer.h"
#include "util/fault.h"
#include "util/health.h"

namespace msopds {
namespace {

Dataset SmallWorld(uint64_t seed = 21) {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.num_ratings = 400;
  config.num_social_links = 120;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

bool ParamsAllFinite(RatingModel* model) {
  for (const Variable& param : *model->MutableParams()) {
    if (!AllFinite(param.value())) return false;
  }
  return true;
}

TEST(TrainerRecoveryTest, GuardIsANoOpOnHealthyRuns) {
  const Dataset world = SmallWorld();
  TrainOptions guarded;
  guarded.epochs = 12;
  TrainOptions unguarded = guarded;
  unguarded.guard_numerics = false;

  Rng rng_a(5);
  HetRecSys model_a(world, HetRecSysConfig{}, &rng_a);
  const TrainResult result_a = TrainModel(&model_a, world.ratings, guarded);

  Rng rng_b(5);
  HetRecSys model_b(world, HetRecSysConfig{}, &rng_b);
  const TrainResult result_b = TrainModel(&model_b, world.ratings, unguarded);

  // Bit-identical: with no faults the guard must not change one update.
  ASSERT_EQ(result_a.loss_history.size(), result_b.loss_history.size());
  for (size_t i = 0; i < result_a.loss_history.size(); ++i) {
    EXPECT_EQ(result_a.loss_history[i], result_b.loss_history[i]);
  }
  EXPECT_EQ(result_a.final_loss, result_b.final_loss);
  EXPECT_TRUE(result_a.healthy);
  EXPECT_EQ(result_a.retries, 0);
  EXPECT_EQ(result_a.fault_events, 0);
}

TEST(TrainerRecoveryTest, PersistentFaultExhaustsRetriesButStaysFinite) {
  const Dataset world = SmallWorld();
  FaultConfig faults;
  faults.trainer_nan_probability = 1.0;  // every epoch is corrupted
  ScopedFaultInjection scope(faults);

  Rng rng(6);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 10;
  options.max_retries = 3;
  const TrainResult result = TrainModel(&model, world.ratings, options);

  EXPECT_FALSE(result.healthy);
  EXPECT_EQ(result.retries, 3);
  EXPECT_EQ(result.fault_events, 4);  // 3 retried epochs + the terminal one
  EXPECT_FALSE(result.failure.empty());
  // The rollback kept every injected NaN out of the parameters.
  EXPECT_TRUE(ParamsAllFinite(&model));
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

TEST(TrainerRecoveryTest, OccasionalFaultsAreAbsorbedByRetries) {
  const Dataset world = SmallWorld();
  FaultConfig faults;
  faults.seed = 3;
  faults.trainer_nan_probability = 0.25;
  ScopedFaultInjection scope(faults);

  Rng rng(7);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 20;
  options.max_retries = 100;  // ample budget: training must survive
  const TrainResult result = TrainModel(&model, world.ratings, options);

  EXPECT_TRUE(result.healthy) << result.failure;
  EXPECT_GT(result.retries, 0);
  EXPECT_EQ(result.loss_history.size(), 20u);
  EXPECT_TRUE(ParamsAllFinite(&model));
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

TEST(TrainerRecoveryTest, DisabledGuardLetsNansThroughAndReportsThem) {
  const Dataset world = SmallWorld();
  FaultConfig faults;
  faults.trainer_nan_probability = 1.0;
  ScopedFaultInjection scope(faults);

  Rng rng(8);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 3;
  options.guard_numerics = false;
  const TrainResult result = TrainModel(&model, world.ratings, options);

  // Without the guard the NaN reaches the parameters — the run must at
  // least be flagged unhealthy rather than returning a silent NaN model.
  EXPECT_FALSE(std::isfinite(result.final_loss));
  EXPECT_FALSE(result.healthy);
  EXPECT_FALSE(result.failure.empty());
}

TEST(TrainerRecoveryTest, MinibatchPathRollsBackMidEpochFaults) {
  const Dataset world = SmallWorld();
  FaultConfig faults;
  faults.trainer_nan_probability = 1.0;
  ScopedFaultInjection scope(faults);

  Rng rng(9);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 4;
  options.batch_size = 64;
  options.max_retries = 2;
  const TrainResult result = TrainModel(&model, world.ratings, options);

  EXPECT_FALSE(result.healthy);
  EXPECT_EQ(result.retries, 2);
  EXPECT_TRUE(ParamsAllFinite(&model));
}

}  // namespace
}  // namespace msopds
