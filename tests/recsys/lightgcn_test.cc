#include "recsys/lightgcn.h"

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"
#include "recsys/metrics.h"
#include "recsys/trainer.h"

namespace msopds {
namespace {

Dataset GcnWorld(uint64_t seed = 51) {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.num_ratings = 700;
  config.num_social_links = 200;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

TEST(LightGcnTest, TrainingLossDecreases) {
  const Dataset world = GcnWorld();
  Rng rng(1);
  LightGcn model(world, LightGcnConfig{}, &rng);
  TrainOptions options;
  options.epochs = 30;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front() * 0.5);
}

TEST(LightGcnTest, FitsTrainingRatings) {
  const Dataset world = GcnWorld();
  Rng rng(2);
  LightGcn model(world, LightGcnConfig{}, &rng);
  TrainOptions options;
  options.epochs = 60;
  TrainModel(&model, world.ratings, options);
  EXPECT_LT(Rmse(&model, world.ratings), 1.2);
}

TEST(LightGcnTest, ZeroLayersIsPureMatrixFactorization) {
  const Dataset world = GcnWorld();
  LightGcnConfig config;
  config.num_layers = 0;
  Rng rng(3);
  LightGcn model(world, config, &rng);
  TrainOptions options;
  options.epochs = 20;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front());
}

TEST(LightGcnTest, MoreLayersStillTrain) {
  const Dataset world = GcnWorld();
  LightGcnConfig config;
  config.num_layers = 3;
  Rng rng(4);
  LightGcn model(world, config, &rng);
  TrainOptions options;
  options.epochs = 20;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front());
}

TEST(LightGcnTest, SocialWeightChangesPredictions) {
  const Dataset world = GcnWorld();
  LightGcnConfig with_social;
  LightGcnConfig without_social;
  without_social.social_weight = 0.0;
  Rng rng_a(5), rng_b(5);
  LightGcn a(world, with_social, &rng_a);
  LightGcn b(world, without_social, &rng_b);
  const std::vector<int64_t> users = {0, 1, 2};
  const std::vector<int64_t> items = {0, 1, 2};
  // Same initialization (same rng seed), different propagation.
  EXPECT_FALSE(
      AllClose(a.PredictPairs(users, items), b.PredictPairs(users, items)));
}

TEST(LightGcnTest, HeldOutRmseIsReasonable) {
  const Dataset world = GcnWorld();
  Rng split_rng(6);
  const RatingSplit split = SplitRatings(world, &split_rng);
  Rng rng(7);
  LightGcn model(world, LightGcnConfig{}, &rng);
  TrainOptions options;
  options.epochs = 50;
  TrainModel(&model, split.train, options);
  // Generalization sanity: better than predicting the extremes.
  EXPECT_LT(Rmse(&model, split.test), 1.8);
}

TEST(LightGcnTest, MiniBatchTrainingConverges) {
  const Dataset world = GcnWorld();
  Rng rng(8);
  LightGcn model(world, LightGcnConfig{}, &rng);
  TrainOptions options;
  options.epochs = 15;
  options.batch_size = 128;
  const TrainResult result = TrainModel(&model, world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front());
}

}  // namespace
}  // namespace msopds
