// Semantic tests of the poisoning channels on the victim model: each of
// the three heterogeneous channels (ratings, social edges, item edges)
// must actually influence the trained Het-RecSys in the direction the
// attack framework assumes.

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/metrics.h"
#include "recsys/trainer.h"

namespace msopds {
namespace {

Dataset BaseWorld() {
  SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 60;
  config.num_ratings = 600;
  config.num_social_links = 150;
  Rng rng(88);
  return GenerateSynthetic(config, &rng);
}

double TrainedTargetRating(const Dataset& world, int64_t target,
                           const std::vector<int64_t>& audience) {
  Rng rng(5);
  HetRecSys model(world, HetRecSysConfig{}, &rng);
  TrainOptions options;
  options.epochs = 40;
  TrainModel(&model, world.ratings, options);
  return AverageTargetRating(&model, audience, target);
}

int64_t ColdItem(const Dataset& world) {
  const auto counts = world.ItemRatingCounts();
  int64_t best = 0;
  for (int64_t i = 1; i < world.num_items; ++i) {
    if (counts[static_cast<size_t>(i)] < counts[static_cast<size_t>(best)])
      best = i;
  }
  return best;
}

TEST(PoisonChannelTest, FiveStarRatingsRaiseTargetPrediction) {
  Dataset world = BaseWorld();
  const int64_t target = ColdItem(world);
  const std::vector<int64_t> audience = {0, 1, 2, 3, 4};
  const double before = TrainedTargetRating(world, target, audience);

  Dataset poisoned = world;
  for (int64_t u = 10; u < 25; ++u) {
    if (!poisoned.HasRating(u, target)) {
      poisoned.ratings.push_back({u, target, 5.0});
    }
  }
  const double after = TrainedTargetRating(poisoned, target, audience);
  EXPECT_GT(after, before + 0.2);
}

TEST(PoisonChannelTest, OneStarRatingsLowerTargetPrediction) {
  Dataset world = BaseWorld();
  // A popular, well-liked item, judged by an audience that has NOT rated
  // it (members with their own rating are anchored by it and barely
  // move — which is correct model behaviour, not a demotion failure).
  const auto counts = world.ItemRatingCounts();
  int64_t target = 0;
  for (int64_t i = 1; i < world.num_items; ++i) {
    if (counts[static_cast<size_t>(i)] > counts[static_cast<size_t>(target)])
      target = i;
  }
  std::vector<int64_t> audience;
  for (int64_t u = 0; u < world.num_users && audience.size() < 5; ++u) {
    if (!world.HasRating(u, target)) audience.push_back(u);
  }
  ASSERT_GE(audience.size(), 3u);
  const double before = TrainedTargetRating(world, target, audience);
  Dataset poisoned = world;
  // Overwhelm the item's signal: every non-audience rating becomes 1.
  for (Rating& r : poisoned.ratings) {
    if (r.item == target) r.value = 1.0;
  }
  for (int64_t u = 0; u < world.num_users; ++u) {
    bool is_audience = false;
    for (int64_t a : audience) is_audience = is_audience || a == u;
    if (!is_audience && !poisoned.HasRating(u, target)) {
      poisoned.ratings.push_back({u, target, 1.0});
    }
  }
  const double after = TrainedTargetRating(poisoned, target, audience);
  EXPECT_LT(after, before - 0.5);
}

TEST(PoisonChannelTest, ItemGraphLinksCoupleEmbeddings) {
  // Linking a cold target to several highly-rated items must lift the
  // target's predictions through the item-graph convolution.
  Dataset world = BaseWorld();
  const int64_t target = ColdItem(world);
  const std::vector<int64_t> audience = {0, 1, 2, 3, 4};
  const double before = TrainedTargetRating(world, target, audience);

  const auto averages = world.ItemAverageRatings();
  const auto counts = world.ItemRatingCounts();
  Dataset poisoned = world;
  int added = 0;
  for (int64_t i = 0; i < world.num_items && added < 6; ++i) {
    if (i != target && counts[static_cast<size_t>(i)] >= 5 &&
        averages[static_cast<size_t>(i)] >= 4.0) {
      if (poisoned.items.AddEdge(i, target)) ++added;
    }
  }
  ASSERT_GT(added, 0);
  // Item links couple the target's final embedding to its neighbors —
  // the channel must be live (a material prediction change). Whether a
  // specific link helps or hurts a specific audience depends on the
  // embeddings, which is exactly why PDS selects links by gradient
  // instead of assuming all product links help.
  const double after = TrainedTargetRating(poisoned, target, audience);
  EXPECT_GT(std::fabs(after - before), 0.05);
}

TEST(PoisonChannelTest, SocialLinksPropagateTaste) {
  // Connecting audience members to enthusiastic raters of the target
  // changes their final embeddings (the social channel is live).
  Dataset world = BaseWorld();
  const int64_t target = ColdItem(world);
  const std::vector<int64_t> audience = {0, 1, 2};
  // Create two enthusiast accounts and wire the audience to them.
  Dataset poisoned = world;
  poisoned.num_users += 2;
  poisoned.social.AddNodes(2);
  for (int64_t fan = world.num_users; fan < poisoned.num_users; ++fan) {
    poisoned.ratings.push_back({fan, target, 5.0});
    for (int64_t member : audience) poisoned.social.AddEdge(member, fan);
  }
  const double before = TrainedTargetRating(world, target, audience);
  const double after = TrainedTargetRating(poisoned, target, audience);
  EXPECT_NE(after, before);
  EXPECT_GT(after, before - 0.05);  // should not hurt, typically helps
}

}  // namespace
}  // namespace msopds
