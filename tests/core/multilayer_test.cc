// Multi-layer propagation tests: the "iteratively computes the
// embeddings" generalization of Eq. (15). The key risk of deeper
// recorded graphs is silent gradient corruption, so the finite-
// difference checks are repeated at depth 2.

#include <cmath>

#include <gtest/gtest.h>

#include "attack/poison_plan.h"
#include "core/losses.h"
#include "core/pds_surrogate.h"
#include "data/demographics.h"
#include "data/synthetic.h"
#include "recsys/het_recsys.h"
#include "recsys/trainer.h"
#include "tensor/grad.h"

namespace msopds {
namespace {

struct DeepWorld {
  Dataset world;
  Demographics demo;
  CapacitySet capacity;

  DeepWorld() {
    SyntheticConfig config;
    config.num_users = 24;
    config.num_items = 28;
    config.num_ratings = 220;
    config.num_social_links = 70;
    Rng rng(501);
    world = GenerateSynthetic(config, &rng);
    DemographicsOptions options;
    options.customer_base_size = 6;
    options.compete_items = 5;
    options.product_items = 5;
    demo = SampleDemographics(world, 1, &rng, options)[0];
    const auto fakes = AddFakeUsers(&world, 1);
    world.ratings.push_back({fakes[0], demo.target_item, 5.0});
    capacity = CapacitySet::MakeComprehensive(world, demo, fakes, 5.0);
  }
};

TEST(MultiLayerHetRecSysTest, TwoLayersTrain) {
  DeepWorld w;
  HetRecSysConfig config;
  config.embedding_dim = 8;
  config.num_layers = 2;
  Rng rng(1);
  HetRecSys model(w.world, config, &rng);
  EXPECT_EQ(model.MutableParams()->size(), 6u);  // 2 tables + 2x2 proj
  TrainOptions options;
  options.epochs = 25;
  const TrainResult result = TrainModel(&model, w.world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front());
}

TEST(MultiLayerHetRecSysTest, TanhBetweenLayersTrains) {
  DeepWorld w;
  HetRecSysConfig config;
  config.embedding_dim = 8;
  config.num_layers = 2;
  config.tanh_between_layers = true;
  Rng rng(2);
  HetRecSys model(w.world, config, &rng);
  TrainOptions options;
  options.epochs = 25;
  const TrainResult result = TrainModel(&model, w.world.ratings, options);
  EXPECT_LT(result.final_loss, result.loss_history.front());
}

TEST(MultiLayerHetRecSysTest, DepthChangesPredictions) {
  DeepWorld w;
  HetRecSysConfig one;
  one.embedding_dim = 8;
  HetRecSysConfig two = one;
  two.num_layers = 2;
  Rng rng_a(3), rng_b(3);
  HetRecSys a(w.world, one, &rng_a);
  HetRecSys b(w.world, two, &rng_b);
  const std::vector<int64_t> users = {0, 1, 2};
  const std::vector<int64_t> items = {0, 1, 2};
  EXPECT_FALSE(
      AllClose(a.PredictPairs(users, items), b.PredictPairs(users, items)));
}

TEST(MultiLayerPdsTest, GradientMatchesFiniteDifferenceAtDepthTwo) {
  DeepWorld w;
  PdsConfig config;
  config.embedding_dim = 4;
  config.inner_steps = 2;
  config.num_layers = 2;
  Rng rng(4);
  PdsSurrogate surrogate(w.world, {&w.capacity}, config, &rng);

  auto loss_at = [&](const Tensor& point) {
    Variable xhat = Param(point.Clone());
    const auto outcome = surrogate.TrainUnrolled({xhat});
    std::vector<int64_t> tu, ti, cu, ci;
    for (int64_t user : w.demo.target_audience) {
      tu.push_back(user);
      ti.push_back(w.demo.target_item);
      for (int64_t item : w.demo.compete_items) {
        cu.push_back(user);
        ci.push_back(item);
      }
    }
    return ComprehensiveLossFromPredictions(
        surrogate.Predict(outcome, tu, ti), surrogate.Predict(outcome, cu, ci),
        static_cast<int64_t>(w.demo.compete_items.size()), false);
  };

  Rng point_rng(5);
  Tensor point({w.capacity.size()});
  for (int64_t i = 0; i < point.size(); ++i)
    point.at(i) = point_rng.Uniform(0.2, 0.8);

  Variable xhat = Param(point.Clone());
  const auto outcome = surrogate.TrainUnrolled({xhat});
  std::vector<int64_t> tu, ti, cu, ci;
  for (int64_t user : w.demo.target_audience) {
    tu.push_back(user);
    ti.push_back(w.demo.target_item);
    for (int64_t item : w.demo.compete_items) {
      cu.push_back(user);
      ci.push_back(item);
    }
  }
  Variable loss = ComprehensiveLossFromPredictions(
      surrogate.Predict(outcome, tu, ti), surrogate.Predict(outcome, cu, ci),
      static_cast<int64_t>(w.demo.compete_items.size()), false);
  const Tensor analytic = Grad(loss, {xhat})[0].value();

  const double eps = 1e-5;
  for (int64_t i : {int64_t{0}, w.capacity.size() / 2,
                    w.capacity.size() - 1}) {
    Tensor plus = point.Clone();
    Tensor minus = point.Clone();
    plus.at(i) += eps;
    minus.at(i) -= eps;
    const double numeric = (loss_at(plus).value().item() -
                            loss_at(minus).value().item()) /
                           (2 * eps);
    EXPECT_NEAR(numeric, analytic.at(i), 1e-5) << "coordinate " << i;
  }
}

TEST(MultiLayerPdsTest, SecondOrderStillExactAtDepthTwo) {
  DeepWorld w;
  PdsConfig config;
  config.embedding_dim = 4;
  config.inner_steps = 2;
  config.num_layers = 2;
  Rng rng(6);
  PdsSurrogate surrogate(w.world, {&w.capacity}, config, &rng);

  Rng point_rng(7);
  Tensor point({w.capacity.size()});
  Tensor direction({w.capacity.size()});
  for (int64_t i = 0; i < point.size(); ++i) {
    point.at(i) = point_rng.Uniform(0.2, 0.8);
    direction.at(i) = point_rng.Uniform(-1.0, 1.0);
  }

  std::vector<int64_t> tu, ti;
  for (int64_t user : w.demo.target_audience) {
    tu.push_back(user);
    ti.push_back(w.demo.target_item);
  }
  auto grad_at = [&](const Tensor& p) {
    Variable xhat = Param(p.Clone());
    const auto outcome = surrogate.TrainUnrolled({xhat});
    Variable loss = Neg(Mean(surrogate.Predict(outcome, tu, ti)));
    return Grad(loss, {xhat})[0];
  };

  Variable xhat = Param(point.Clone());
  const auto outcome = surrogate.TrainUnrolled({xhat});
  Variable loss = Neg(Mean(surrogate.Predict(outcome, tu, ti)));
  Variable grad = Grad(loss, {xhat})[0];
  const Tensor exact = HessianVectorProduct(grad, xhat, direction);

  const double eps = 1e-5;
  Tensor plus = point.Clone();
  Tensor minus = point.Clone();
  for (int64_t i = 0; i < point.size(); ++i) {
    plus.at(i) += eps * direction.at(i);
    minus.at(i) -= eps * direction.at(i);
  }
  const Tensor gp = grad_at(plus).value();
  const Tensor gm = grad_at(minus).value();
  double max_error = 0.0;
  for (int64_t i = 0; i < exact.size(); ++i) {
    const double numeric = (gp.at(i) - gm.at(i)) / (2 * eps);
    max_error = std::max(max_error, std::fabs(numeric - exact.at(i)));
  }
  EXPECT_LT(max_error, 1e-4);
}

}  // namespace
}  // namespace msopds
