#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/checkpoint.h"
#include "util/fault.h"

namespace msopds {
namespace {

Dataset TinyWorld() {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 50;
  config.num_ratings = 400;
  config.num_social_links = 120;
  Rng rng(31);
  return GenerateSynthetic(config, &rng);
}

GameConfig FastGameConfig() {
  GameConfig config = DefaultGameConfig();
  config.victim_training.epochs = 8;
  config.num_opponents = 0;  // skip the BOPDS opponent: cheap cells
  return config;
}

struct Cell {
  std::string method;
  int budget = 2;
};

std::vector<Cell> SweepCells() {
  return {{"None", 2}, {"None", 3}, {"Random", 2}, {"Random", 3}};
}

std::string CellKey(const Cell& cell) {
  return cell.method + "|b=" + std::to_string(cell.budget);
}

// One sweep pass over `cells`, skipping completed cells in `store` and
// stopping after `max_cells` fresh executions (simulated interrupt).
// Returns the number of cells actually executed.
int RunSweep(const MultiplayerGame& game, CheckpointStore* store,
             int max_cells) {
  int executed = 0;
  for (const Cell& cell : SweepCells()) {
    if (store->Find(CellKey(cell)) != nullptr) continue;
    if (executed >= max_cells) break;  // simulated crash between cells
    const CellOutcome outcome =
        RunRepeatedCellChecked(game, cell.method, cell.budget, /*seed=*/8,
                               /*repeats=*/1);
    CellRecord record;
    record.key = CellKey(cell);
    record.ok = outcome.ok;
    record.mean_average_rating = outcome.stats.mean_average_rating;
    record.mean_hit_rate = outcome.stats.mean_hit_rate;
    record.repeats = outcome.stats.repeats;
    record.unhealthy_repeats = outcome.unhealthy_repeats;
    record.error = outcome.error;
    store->Append(record);
    ++executed;
  }
  return executed;
}

TEST(ResilienceTest, InterruptedSweepResumesToIdenticalRecords) {
  const Dataset world = TinyWorld();
  const MultiplayerGame game(world, FastGameConfig());
  const std::string path = testing::TempDir() + "/resume_sweep.jsonl";
  std::remove(path.c_str());

  // Uninterrupted reference sweep (in memory).
  CheckpointStore reference("");
  EXPECT_EQ(RunSweep(game, &reference, 1000), 4);

  // Interrupted after two cells, then resumed from the file.
  {
    CheckpointStore store(path);
    EXPECT_EQ(RunSweep(game, &store, 2), 2);
  }
  {
    CheckpointStore resumed(path);
    EXPECT_EQ(resumed.size(), 2u);
    // Only the two missing cells run; the first two come from the file.
    EXPECT_EQ(RunSweep(game, &resumed, 1000), 2);
    EXPECT_EQ(resumed.size(), 4u);
  }

  CheckpointStore final_store(path);
  ASSERT_EQ(final_store.size(), 4u);
  for (const Cell& cell : SweepCells()) {
    const CellRecord* got = final_store.Find(CellKey(cell));
    const CellRecord* want = reference.Find(CellKey(cell));
    ASSERT_NE(got, nullptr);
    ASSERT_NE(want, nullptr);
    EXPECT_TRUE(got->ok);
    // Games are deterministic in the seed, so resuming must reproduce
    // the uninterrupted sweep bit-for-bit (modulo JSON round-trip, which
    // is covered by %.10g precision on these metric magnitudes).
    EXPECT_NEAR(got->mean_average_rating, want->mean_average_rating, 1e-9);
    EXPECT_NEAR(got->mean_hit_rate, want->mean_hit_rate, 1e-9);
    EXPECT_EQ(got->repeats, want->repeats);
  }
}

TEST(ResilienceTest, ExhaustedRetriesDegradeToRecordedFailure) {
  const Dataset world = TinyWorld();
  GameConfig config = FastGameConfig();
  config.victim_training.max_retries = 1;
  const MultiplayerGame game(world, config);

  FaultConfig faults;
  faults.trainer_nan_probability = 1.0;  // victim training cannot succeed
  ScopedFaultInjection scope(faults);

  const CellOutcome outcome =
      RunRepeatedCellChecked(game, "None", 2, /*seed=*/8, /*repeats=*/2);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.unhealthy_repeats, 2);
  EXPECT_EQ(outcome.stats.repeats, 0);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ(outcome.stats.mean_average_rating, 0.0);
}

TEST(ResilienceTest, PartiallyUnhealthyCellAveragesOnlyHealthyRepeats) {
  // Same cell, fault-free: the checked runner must agree with the
  // legacy runner exactly.
  const Dataset world = TinyWorld();
  const MultiplayerGame game(world, FastGameConfig());
  const CellOutcome checked =
      RunRepeatedCellChecked(game, "Random", 2, /*seed=*/8, /*repeats=*/2);
  const CellStats legacy = RunRepeatedCell(game, "Random", 2, 8, 2);
  EXPECT_TRUE(checked.ok);
  EXPECT_EQ(checked.unhealthy_repeats, 0);
  EXPECT_EQ(checked.stats.mean_average_rating, legacy.mean_average_rating);
  EXPECT_EQ(checked.stats.mean_hit_rate, legacy.mean_hit_rate);
  EXPECT_EQ(checked.stats.repeats, 2);
}

}  // namespace
}  // namespace msopds
