// The paper's central claim in miniature: against subsequent opponents,
// the Stackelberg planner (MSOPDS) must beat both the oblivious
// bi-level planner with the same capacities (BOPDS) and the injection
// baselines, on average over seeds. Everything here is deterministic
// given the seeds, so this is a regression test of the claim, not a
// flaky statistical test.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "data/synthetic.h"

namespace msopds {
namespace {

Dataset ArenaWorld() {
  SyntheticConfig config;
  config.num_users = 70;
  config.num_items = 90;
  config.num_ratings = 800;
  config.num_social_links = 260;
  Rng rng(101);
  return GenerateSynthetic(config, &rng);
}

GameConfig ArenaConfig() {
  GameConfig config = DefaultGameConfig();
  config.victim.embedding_dim = 8;
  config.victim_training.epochs = 25;
  config.opponent_pds.embedding_dim = 4;
  config.opponent_pds.inner_steps = 3;
  config.opponent_iterations = 5;
  return config;
}

double MeanRating(const MultiplayerGame& game, const std::string& method,
                  const std::vector<uint64_t>& seeds) {
  double total = 0.0;
  for (uint64_t seed : seeds) {
    total += game.Run(MakeAttackFactory(method), /*budget_level=*/4, seed)
                 .average_rating;
  }
  return total / static_cast<double>(seeds.size());
}

TEST(AnticipationTest, MsopdsBeatsNoAttackByWideMargin) {
  MultiplayerGame game(ArenaWorld(), ArenaConfig());
  const std::vector<uint64_t> seeds = {11, 22, 33};
  const double none = MeanRating(game, "None", seeds);
  const double msopds = MeanRating(game, "MSOPDS", seeds);
  EXPECT_GT(msopds, none + 0.5);
}

TEST(AnticipationTest, MsopdsStaysFarAheadUnderHeavyOpposition) {
  // Fig. 6's qualitative claim in miniature: with two subsequent
  // demotion campaigns running, the Stackelberg-planned comprehensive
  // attack keeps a large absolute lead over the injection baselines
  // (which collapse towards the no-attack level).
  GameConfig config = ArenaConfig();
  config.num_opponents = 2;
  config.opponent_budget_level = 3;
  MultiplayerGame game(ArenaWorld(), config);
  const std::vector<uint64_t> seeds = {11, 22, 33};
  const double msopds = MeanRating(game, "MSOPDS", seeds);
  for (const char* baseline : {"Random", "Popular"}) {
    EXPECT_GT(msopds, MeanRating(game, baseline, seeds) + 1.0) << baseline;
  }
}

TEST(AnticipationTest, MsopdsBeatsInjectionBaselinesOnAverage) {
  MultiplayerGame game(ArenaWorld(), ArenaConfig());
  const std::vector<uint64_t> seeds = {11, 22, 33};
  const double msopds = MeanRating(game, "MSOPDS", seeds);
  for (const char* baseline : {"Random", "Popular"}) {
    EXPECT_GT(msopds, MeanRating(game, baseline, seeds)) << baseline;
  }
}

}  // namespace
}  // namespace msopds
