#include "core/pds_surrogate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "attack/poison_plan.h"
#include "core/losses.h"
#include "data/demographics.h"
#include "data/synthetic.h"
#include "tensor/grad.h"

namespace msopds {
namespace {

struct PdsFixture {
  Dataset world;
  Demographics demo;
  std::vector<int64_t> fakes;
  CapacitySet capacity;
  PdsConfig config;

  explicit PdsFixture(uint64_t seed = 55, int64_t users = 40,
                      int64_t items = 50) {
    SyntheticConfig synth;
    synth.num_users = users;
    synth.num_items = items;
    synth.num_ratings = users * 8;
    synth.num_social_links = users * 3;
    Rng rng(seed);
    world = GenerateSynthetic(synth, &rng);
    DemographicsOptions options;
    options.customer_base_size = 8;
    options.compete_items = 6;
    options.product_items = 6;
    demo = SampleDemographics(world, 1, &rng, options)[0];
    fakes = AddFakeUsers(&world, 2);
    // The fakes' unconditional 5-star ratings on the target.
    for (int64_t fake : fakes) {
      world.ratings.push_back({fake, demo.target_item, 5.0});
    }
    capacity = CapacitySet::MakeComprehensive(world, demo, fakes, 5.0);
    config.embedding_dim = 4;
    config.inner_steps = 2;
  }

  Variable LeaderLoss(const PdsSurrogate& surrogate, const Variable& xhat,
                      bool demote = false) const {
    const PdsSurrogate::Outcome outcome = surrogate.TrainUnrolled({xhat});
    std::vector<int64_t> tu, ti, cu, ci;
    for (int64_t user : demo.target_audience) {
      tu.push_back(user);
      ti.push_back(demo.target_item);
      for (int64_t item : demo.compete_items) {
        cu.push_back(user);
        ci.push_back(item);
      }
    }
    return ComprehensiveLossFromPredictions(
        surrogate.Predict(outcome, tu, ti), surrogate.Predict(outcome, cu, ci),
        static_cast<int64_t>(demo.compete_items.size()), demote);
  }
};

TEST(PdsSurrogateTest, OutcomeShapesMatchWorld) {
  PdsFixture f;
  Rng rng(1);
  PdsSurrogate surrogate(f.world, {&f.capacity}, f.config, &rng);
  Variable xhat = Param(Tensor::Zeros({f.capacity.size()}));
  const auto outcome = surrogate.TrainUnrolled({xhat});
  EXPECT_EQ(outcome.user_final.value().dim(0), f.world.num_users);
  EXPECT_EQ(outcome.item_final.value().dim(0), f.world.num_items);
  EXPECT_EQ(outcome.user_final.value().dim(1), f.config.embedding_dim);
}

TEST(PdsSurrogateTest, DeterministicAcrossCalls) {
  PdsFixture f;
  Rng rng(2);
  PdsSurrogate surrogate(f.world, {&f.capacity}, f.config, &rng);
  Variable xhat = Param(Tensor::Zeros({f.capacity.size()}));
  const auto a = surrogate.TrainUnrolled({xhat});
  const auto b = surrogate.TrainUnrolled({xhat});
  EXPECT_TRUE(AllClose(a.user_final.value(), b.user_final.value()));
  EXPECT_TRUE(AllClose(a.item_final.value(), b.item_final.value()));
}

TEST(PdsSurrogateTest, SelectingActionsChangesOutcome) {
  PdsFixture f;
  Rng rng(3);
  PdsSurrogate surrogate(f.world, {&f.capacity}, f.config, &rng);
  Variable none = Param(Tensor::Zeros({f.capacity.size()}));
  Variable all = Param(Tensor::Ones({f.capacity.size()}));
  const auto off = surrogate.TrainUnrolled({none});
  const auto on = surrogate.TrainUnrolled({all});
  EXPECT_FALSE(AllClose(off.item_final.value(), on.item_final.value(), 1e-9));
}

TEST(PdsSurrogateTest, SelectedPoisonRaisesTargetPredictions) {
  PdsFixture f;
  PdsConfig config = f.config;
  config.inner_steps = 6;
  Rng rng(4);
  PdsSurrogate surrogate(f.world, {&f.capacity}, config, &rng);
  Variable none = Param(Tensor::Zeros({f.capacity.size()}));
  Variable all = Param(Tensor::Ones({f.capacity.size()}));
  std::vector<int64_t> users = f.demo.target_audience;
  std::vector<int64_t> items(users.size(), f.demo.target_item);
  const double before = surrogate
                            .Predict(surrogate.TrainUnrolled({none}), users,
                                     items)
                            .value()
                            .Sum();
  const double after = surrogate
                           .Predict(surrogate.TrainUnrolled({all}), users,
                                    items)
                           .value()
                           .Sum();
  EXPECT_GT(after, before);
}

TEST(PdsSurrogateTest, GradientMatchesFiniteDifference) {
  PdsFixture f(56, /*users=*/25, /*items=*/30);
  Rng rng(5);
  PdsSurrogate surrogate(f.world, {&f.capacity}, f.config, &rng);

  // Continuous x-hat point (the surrogate accepts any values).
  Rng point_rng(6);
  Tensor point({f.capacity.size()});
  for (int64_t i = 0; i < point.size(); ++i)
    point.at(i) = point_rng.Uniform(0.2, 0.8);

  Variable xhat = Param(point.Clone());
  Variable loss = f.LeaderLoss(surrogate, xhat);
  const Tensor analytic = Grad(loss, {xhat})[0].value();

  // Spot-check a handful of coordinates (full sweep would be slow).
  const double eps = 1e-5;
  std::vector<int64_t> probe = {0, f.capacity.num_ratings(),
                                f.capacity.size() - 1,
                                f.capacity.size() / 2};
  for (int64_t i : probe) {
    Tensor plus = point.Clone();
    Tensor minus = point.Clone();
    plus.at(i) += eps;
    minus.at(i) -= eps;
    const double up =
        f.LeaderLoss(surrogate, Param(plus)).value().item();
    const double down =
        f.LeaderLoss(surrogate, Param(minus)).value().item();
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(numeric, analytic.at(i), 1e-5)
        << "coordinate " << i << " of " << f.capacity.size();
  }
}

TEST(PdsSurrogateTest, SecondOrderHvpMatchesFiniteDifference) {
  PdsFixture f(57, /*users=*/20, /*items=*/24);
  Rng rng(7);
  PdsSurrogate surrogate(f.world, {&f.capacity}, f.config, &rng);

  Rng point_rng(8);
  Tensor point({f.capacity.size()});
  for (int64_t i = 0; i < point.size(); ++i)
    point.at(i) = point_rng.Uniform(0.2, 0.8);
  Tensor direction({f.capacity.size()});
  for (int64_t i = 0; i < direction.size(); ++i)
    direction.at(i) = point_rng.Uniform(-1.0, 1.0);

  // Exact HVP via double backward through the unrolled training.
  Variable xhat = Param(point.Clone());
  Variable loss = f.LeaderLoss(surrogate, xhat, /*demote=*/true);
  Variable grad = Grad(loss, {xhat})[0];
  ASSERT_TRUE(grad.requires_grad())
      << "gradient must stay differentiable for MSO second-order terms";
  const Tensor exact = HessianVectorProduct(grad, xhat, direction);

  // Finite difference of first-order gradients along the direction.
  const double eps = 1e-5;
  Tensor plus = point.Clone();
  Tensor minus = point.Clone();
  for (int64_t i = 0; i < point.size(); ++i) {
    plus.at(i) += eps * direction.at(i);
    minus.at(i) -= eps * direction.at(i);
  }
  Variable xp = Param(plus);
  const Tensor gp =
      Grad(f.LeaderLoss(surrogate, xp, true), {xp})[0].value();
  Variable xm = Param(minus);
  const Tensor gm =
      Grad(f.LeaderLoss(surrogate, xm, true), {xm})[0].value();
  double max_err = 0.0;
  for (int64_t i = 0; i < exact.size(); ++i) {
    const double numeric = (gp.at(i) - gm.at(i)) / (2 * eps);
    max_err = std::max(max_err, std::fabs(numeric - exact.at(i)));
  }
  EXPECT_LT(max_err, 1e-4);
}

TEST(PdsSurrogateTest, TwoPlayerGradientsFlowToBothVectors) {
  PdsFixture f;
  CapacitySet opponent_capacity =
      CapacitySet::MakeRatingOnly(f.world, f.demo, 1.0);
  Rng rng(9);
  PdsSurrogate surrogate(f.world, {&f.capacity, &opponent_capacity},
                         f.config, &rng);
  Variable xp = Param(Tensor::Full({f.capacity.size()}, 0.5));
  Variable xq = Param(Tensor::Full({opponent_capacity.size()}, 0.5));
  const auto outcome = surrogate.TrainUnrolled({xp, xq});
  std::vector<int64_t> users = f.demo.target_audience;
  std::vector<int64_t> items(users.size(), f.demo.target_item);
  Variable score = Sum(surrogate.Predict(outcome, users, items));
  const auto grads = GradValues(score, {xp, xq});
  EXPECT_GT(grads[0].MaxAbs(), 0.0);
  EXPECT_GT(grads[1].MaxAbs(), 0.0);
}

TEST(PdsSurrogateTest, OpponentOneStarSelectionLowersTarget) {
  PdsFixture f;
  CapacitySet opponent_capacity =
      CapacitySet::MakeRatingOnly(f.world, f.demo, 1.0);
  PdsConfig config = f.config;
  config.inner_steps = 6;
  Rng rng(10);
  PdsSurrogate surrogate(f.world, {&f.capacity, &opponent_capacity}, config,
                         &rng);
  Variable xp = Param(Tensor::Zeros({f.capacity.size()}));
  Variable xq_off = Param(Tensor::Zeros({opponent_capacity.size()}));
  Variable xq_on = Param(Tensor::Ones({opponent_capacity.size()}));
  std::vector<int64_t> users = f.demo.target_audience;
  std::vector<int64_t> items(users.size(), f.demo.target_item);
  const double clean = surrogate
                           .Predict(surrogate.TrainUnrolled({xp, xq_off}),
                                    users, items)
                           .value()
                           .Sum();
  const double demoted = surrogate
                             .Predict(surrogate.TrainUnrolled({xp, xq_on}),
                                      users, items)
                             .value()
                             .Sum();
  EXPECT_LT(demoted, clean);
}

}  // namespace
}  // namespace msopds
