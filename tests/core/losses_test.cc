#include "core/losses.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/grad.h"

namespace msopds {
namespace {

TEST(LossesTest, InjectionLossIsNegatedMean) {
  Variable preds = Constant(Tensor::FromVector({2.0, 4.0}));
  EXPECT_DOUBLE_EQ(InjectionLossFromPredictions(preds).value().item(), -3.0);
}

TEST(LossesTest, ComprehensiveLossZeroWhenTargetDominates) {
  // Target far above all competitors: SELU of a very negative number
  // saturates near -scale*alpha, so the loss is negative and small.
  Variable target = Constant(Tensor::FromVector({50.0, 50.0}));
  Variable compete = Constant(Tensor::FromVector({1.0, 2.0, 1.0, 2.0}));
  const double loss =
      ComprehensiveLossFromPredictions(target, compete, 2, false)
          .value()
          .item();
  // Each saturated SELU term is about -1.7581; 2 terms per user.
  EXPECT_LT(loss, 0.0);
  EXPECT_NEAR(loss, 2 * -1.7581, 0.01);
}

TEST(LossesTest, ComprehensiveLossGrowsWhenTargetLoses) {
  Variable target = Constant(Tensor::FromVector({1.0}));
  Variable compete_close = Constant(Tensor::FromVector({2.0}));
  Variable compete_far = Constant(Tensor::FromVector({4.0}));
  const double close_loss =
      ComprehensiveLossFromPredictions(target, compete_close, 1, false)
          .value()
          .item();
  const double far_loss =
      ComprehensiveLossFromPredictions(target, compete_far, 1, false)
          .value()
          .item();
  EXPECT_GT(far_loss, close_loss);
  // SELU is linear-positive above zero: difference 3 -> ~3 * 1.0507.
  EXPECT_NEAR(far_loss, 3.0 * 1.0507009873554805, 1e-9);
}

TEST(LossesTest, DemoteReversesTheDifference) {
  Variable target = Constant(Tensor::FromVector({4.0}));
  Variable compete = Constant(Tensor::FromVector({1.0}));
  const double promote =
      ComprehensiveLossFromPredictions(target, compete, 1, false)
          .value()
          .item();
  const double demote =
      ComprehensiveLossFromPredictions(target, compete, 1, true)
          .value()
          .item();
  EXPECT_LT(promote, 0.0);  // target winning: promote loss saturated low
  EXPECT_GT(demote, 0.0);   // demoter unhappy: positive loss
  EXPECT_NEAR(demote, 3.0 * 1.0507009873554805, 1e-9);
}

TEST(LossesTest, AveragesOverAudienceNotCompetitors) {
  // Two users, one competitor each, identical differences: the loss must
  // equal the single-user case (mean over audience, sum over compete).
  Variable target1 = Constant(Tensor::FromVector({1.0}));
  Variable compete1 = Constant(Tensor::FromVector({3.0}));
  Variable target2 = Constant(Tensor::FromVector({1.0, 1.0}));
  Variable compete2 = Constant(Tensor::FromVector({3.0, 3.0}));
  const double single =
      ComprehensiveLossFromPredictions(target1, compete1, 1, false)
          .value()
          .item();
  const double doubled =
      ComprehensiveLossFromPredictions(target2, compete2, 1, false)
          .value()
          .item();
  EXPECT_NEAR(single, doubled, 1e-12);
}

TEST(LossesTest, GradientFavorsRaisingTarget) {
  Variable target = Param(Tensor::FromVector({2.0, 2.5}));
  Variable compete = Param(Tensor::FromVector({3.0, 2.0, 3.5, 1.0}));
  Variable loss =
      ComprehensiveLossFromPredictions(target, compete, 2, false);
  const auto grads = GradValues(loss, {target, compete});
  // Raising the target lowers the loss -> negative gradient on target.
  EXPECT_LT(grads[0].at(0), 0.0);
  EXPECT_LT(grads[0].at(1), 0.0);
  // Raising a winning competitor raises the loss.
  EXPECT_GT(grads[1].at(0), 0.0);
}

}  // namespace
}  // namespace msopds
