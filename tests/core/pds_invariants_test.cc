// Invariant sweeps of the PDS training dynamics (TEST_P property style):
// the recorded inner loop must actually descend the Eq. (16) objective,
// and more inner steps must not hurt the fit, across different world
// seeds and player counts.

#include <cmath>

#include <gtest/gtest.h>

#include "attack/poison_plan.h"
#include "core/pds_surrogate.h"
#include "data/demographics.h"
#include "data/synthetic.h"
#include "tensor/grad.h"

namespace msopds {
namespace {

struct PdsWorld {
  Dataset world;
  Demographics demo;
  CapacitySet capacity;

  explicit PdsWorld(uint64_t seed) {
    SyntheticConfig config;
    config.num_users = 30;
    config.num_items = 36;
    config.num_ratings = 260;
    config.num_social_links = 90;
    Rng rng(seed);
    world = GenerateSynthetic(config, &rng);
    DemographicsOptions options;
    options.customer_base_size = 6;
    options.compete_items = 5;
    options.product_items = 5;
    demo = SampleDemographics(world, 1, &rng, options)[0];
    const auto fakes = AddFakeUsers(&world, 1);
    world.ratings.push_back({fakes[0], demo.target_item, 5.0});
    capacity = CapacitySet::MakeComprehensive(world, demo, fakes, 5.0);
  }
};

// Measures the training MSE on the base ratings given an outcome.
double FitError(const PdsSurrogate& surrogate,
                const PdsSurrogate::Outcome& outcome, const Dataset& world) {
  std::vector<int64_t> users, items;
  for (const Rating& r : world.ratings) {
    users.push_back(r.user);
    items.push_back(r.item);
  }
  const Tensor preds =
      surrogate.Predict(outcome, users, items).value();
  double total = 0.0;
  for (size_t k = 0; k < world.ratings.size(); ++k) {
    const double e = preds.at(static_cast<int64_t>(k)) -
                     world.ratings[k].value;
    total += e * e;
  }
  return total / static_cast<double>(world.ratings.size());
}

class PdsInvariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(PdsInvariantsTest, InnerLoopReducesFitError) {
  PdsWorld w(200 + static_cast<uint64_t>(GetParam()));
  Variable xhat = Param(Tensor::Zeros({w.capacity.size()}));

  PdsConfig shallow;
  shallow.embedding_dim = 4;
  shallow.inner_steps = 1;
  PdsConfig deep = shallow;
  deep.inner_steps = 8;

  Rng rng_a(7), rng_b(7);
  PdsSurrogate sa(w.world, {&w.capacity}, shallow, &rng_a);
  PdsSurrogate sb(w.world, {&w.capacity}, deep, &rng_b);
  const double shallow_error =
      FitError(sa, sa.TrainUnrolled({xhat}), w.world);
  const double deep_error = FitError(sb, sb.TrainUnrolled({xhat}), w.world);
  EXPECT_LT(deep_error, shallow_error);
}

TEST_P(PdsInvariantsTest, GradientIsNonTrivialAndFinite) {
  PdsWorld w(300 + static_cast<uint64_t>(GetParam()));
  PdsConfig config;
  config.embedding_dim = 4;
  config.inner_steps = 3;
  Rng rng(11);
  PdsSurrogate surrogate(w.world, {&w.capacity}, config, &rng);

  Variable xhat = Param(Tensor::Full({w.capacity.size()}, 0.5));
  const auto outcome = surrogate.TrainUnrolled({xhat});
  std::vector<int64_t> users = w.demo.target_audience;
  std::vector<int64_t> items(users.size(), w.demo.target_item);
  Variable loss = Neg(Mean(surrogate.Predict(outcome, users, items)));
  const Tensor gradient = Grad(loss, {xhat})[0].value();
  EXPECT_GT(gradient.MaxAbs(), 0.0);
  for (int64_t i = 0; i < gradient.size(); ++i) {
    EXPECT_TRUE(std::isfinite(gradient.at(i))) << "coordinate " << i;
  }
}

TEST_P(PdsInvariantsTest, RaisingRatingActionPriorityHelpsTarget) {
  // Property: enabling the hired-rater actions (5-star on the target)
  // adds those pairs to the Eq. (16) loss, so the surrogate's predicted
  // rating *for the hired raters themselves* must move up toward 5.
  // (The effect on untouched audience users is second-order and can be
  // of either tiny sign — that is the attack optimizer's job to sort
  // out, not an invariant.)
  PdsWorld w(400 + static_cast<uint64_t>(GetParam()));
  PdsConfig config;
  config.embedding_dim = 4;
  // Deep enough that the direct MSE pull dominates early-training noise
  // (at shallow unrolls the per-pair effect is within noise; see the
  // gradient tests for the differentiation correctness guarantees).
  config.inner_steps = 30;
  Rng rng(13);
  PdsSurrogate surrogate(w.world, {&w.capacity}, config, &rng);

  Tensor off = Tensor::Zeros({w.capacity.size()});
  Tensor ratings_on = off.Clone();
  std::vector<int64_t> hired_users;
  for (int64_t i = 0; i < w.capacity.num_ratings(); ++i) {
    ratings_on.at(i) = 1.0;
    hired_users.push_back(w.capacity.actions()[static_cast<size_t>(i)].a);
  }
  if (hired_users.empty()) {
    GTEST_SKIP() << "every base user already rated the target in this world";
  }
  const std::vector<int64_t> items(hired_users.size(), w.demo.target_item);
  const double baseline = surrogate
                              .Predict(surrogate.TrainUnrolled({Param(off)}),
                                       hired_users, items)
                              .value()
                              .Sum();
  const double promoted =
      surrogate
          .Predict(surrogate.TrainUnrolled({Param(ratings_on)}), hired_users,
                   items)
          .value()
          .Sum();
  EXPECT_GT(promoted, baseline + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Worlds, PdsInvariantsTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace msopds
