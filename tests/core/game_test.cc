#include <gtest/gtest.h>

#include "core/bopds.h"
#include "core/experiment.h"
#include "core/msopds.h"
#include "core/multiplayer_game.h"
#include "data/synthetic.h"

namespace msopds {
namespace {

Dataset TestWorld(uint64_t seed = 71) {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 70;
  config.num_ratings = 650;
  config.num_social_links = 220;
  Rng rng(seed);
  return GenerateSynthetic(config, &rng);
}

GameConfig FastGameConfig() {
  GameConfig config = DefaultGameConfig();
  config.victim.embedding_dim = 8;
  config.victim_training.epochs = 15;
  config.opponent_pds.embedding_dim = 4;
  config.opponent_pds.inner_steps = 2;
  config.opponent_iterations = 3;
  return config;
}

MsopdsConfig FastMsopdsConfig() {
  MsopdsConfig config = DefaultMsopdsConfig();
  config.pds.embedding_dim = 4;
  config.pds.inner_steps = 2;
  config.mso.outer_iterations = 4;
  config.mso.cg.max_iterations = 4;
  return config;
}

TEST(BopdsTest, PlanRespectsBudgetAndApplies) {
  Dataset world = TestWorld();
  Rng rng(1);
  Demographics demo = SampleDemographics(world, 1, &rng)[0];
  BopdsConfig config;
  config.pds.embedding_dim = 4;
  config.pds.inner_steps = 2;
  config.iterations = 3;
  Bopds attack(config);
  const AttackBudget budget = AttackBudget::FromLevel(2, world);
  const int64_t users_before = world.num_users;
  const PoisonPlan plan = attack.Execute(&world, demo, budget, &rng);
  EXPECT_TRUE(world.Validate().ok());
  EXPECT_EQ(world.num_users, users_before + budget.num_fake_users);
  EXPECT_LE(plan.CountType(ActionType::kRating),
            budget.hired_raters + budget.num_fake_users);
  EXPECT_LE(plan.CountType(ActionType::kSocialEdge), budget.social_links);
  EXPECT_LE(plan.CountType(ActionType::kItemEdge), budget.item_links);
  EXPECT_EQ(attack.last_losses().size(), 3u);
}

TEST(BopdsTest, RatingOnlyOpponentDemotes) {
  Dataset world = TestWorld();
  Rng rng(2);
  Demographics demo = SampleDemographics(world, 1, &rng)[0];
  BopdsConfig config;
  config.pds.embedding_dim = 4;
  config.pds.inner_steps = 2;
  config.iterations = 3;
  config.comprehensive = false;
  config.demote = true;
  config.preset_rating = kMinRating;
  Bopds attack(config);
  AttackBudget budget = AttackBudget::FromLevel(2, world);
  const int64_t users_before = world.num_users;
  const PoisonPlan plan = attack.Execute(&world, demo, budget, &rng);
  // No fake accounts, only 1-star hired ratings on the target.
  EXPECT_EQ(world.num_users, users_before);
  for (const PoisonAction& action : plan.actions) {
    EXPECT_EQ(action.type, ActionType::kRating);
    EXPECT_EQ(action.b, demo.target_item);
    EXPECT_DOUBLE_EQ(action.rating, kMinRating);
  }
  EXPECT_LE(static_cast<int64_t>(plan.actions.size()), budget.hired_raters);
}

TEST(MsopdsTest, ExecuteProducesValidBudgetedPlan) {
  Dataset world = TestWorld();
  Rng rng(3);
  const auto demos = SampleDemographics(world, 2, &rng);
  OpponentSpec spec;
  spec.demo = demos[1];
  spec.budget_level = 2;
  Msopds attack(FastMsopdsConfig(), {spec});
  const AttackBudget budget = AttackBudget::FromLevel(3, world);
  const int64_t users_before = world.num_users;
  const PoisonPlan plan = attack.Execute(&world, demos[0], budget, &rng);
  EXPECT_TRUE(world.Validate().ok());
  EXPECT_EQ(world.num_users, users_before + budget.num_fake_users);
  // Planned actions stay within budget (plus the unconditional fake
  // target ratings).
  EXPECT_LE(plan.CountType(ActionType::kRating),
            budget.hired_raters + budget.num_fake_users);
  EXPECT_LE(plan.CountType(ActionType::kSocialEdge), budget.social_links);
  EXPECT_LE(plan.CountType(ActionType::kItemEdge), budget.item_links);
  EXPECT_GT(plan.CountType(ActionType::kItemEdge), 0);
  EXPECT_EQ(attack.last_history().size(), 4u);
}

TEST(MsopdsTest, AblationFlagsRestrictActionTypes) {
  Dataset world = TestWorld();
  Rng rng(4);
  const auto demos = SampleDemographics(world, 2, &rng);
  OpponentSpec spec;
  spec.demo = demos[1];
  MsopdsConfig config = FastMsopdsConfig();
  config.include_social_actions = false;
  config.include_item_actions = false;
  Msopds attack(config, {spec});
  Dataset copy = world;
  const PoisonPlan plan =
      attack.Execute(&copy, demos[0], AttackBudget::FromLevel(2, world), &rng);
  EXPECT_EQ(plan.CountType(ActionType::kSocialEdge), 0);
  EXPECT_EQ(plan.CountType(ActionType::kItemEdge), 0);
  EXPECT_GT(plan.CountType(ActionType::kRating), 0);
}

TEST(MsopdsTest, RealOnlyVariantInjectsNoFakes) {
  Dataset world = TestWorld();
  Rng rng(5);
  const auto demos = SampleDemographics(world, 2, &rng);
  OpponentSpec spec;
  spec.demo = demos[1];
  MsopdsConfig config = FastMsopdsConfig();
  config.inject_fake_accounts = false;
  config.include_item_actions = false;
  config.include_social_actions = false;
  Msopds attack(config, {spec});
  Dataset copy = world;
  const int64_t users_before = copy.num_users;
  attack.Execute(&copy, demos[0], AttackBudget::FromLevel(2, world), &rng);
  EXPECT_EQ(copy.num_users, users_before);
}

TEST(GameTest, DeterministicGivenSeed) {
  const Dataset base = TestWorld();
  MultiplayerGame game(base, FastGameConfig());
  const AttackFactory factory = MakeAttackFactory("Random");
  const GameResult a = game.Run(factory, 2, 99);
  const GameResult b = game.Run(factory, 2, 99);
  EXPECT_DOUBLE_EQ(a.average_rating, b.average_rating);
  EXPECT_DOUBLE_EQ(a.hit_rate_at_3, b.hit_rate_at_3);
}

TEST(GameTest, OpponentsInjectDemotionRatings) {
  const Dataset base = TestWorld();
  GameConfig config = FastGameConfig();
  config.num_opponents = 2;
  MultiplayerGame game(base, config);
  const GameResult result = game.Run(MakeAttackFactory("None"), 2, 7);
  EXPECT_GT(result.opponent_ratings, 0);
}

TEST(GameTest, MetricsWithinValidRanges) {
  const Dataset base = TestWorld();
  MultiplayerGame game(base, FastGameConfig());
  for (const char* method : {"None", "Random", "MSOPDS"}) {
    GameResult result = game.Run(MakeAttackFactory(method), 2, 11);
    EXPECT_GE(result.average_rating, kMinRating) << method;
    EXPECT_LE(result.average_rating, kMaxRating) << method;
    EXPECT_GE(result.hit_rate_at_3, 0.0) << method;
    EXPECT_LE(result.hit_rate_at_3, 1.0) << method;
    EXPECT_EQ(result.method, method);
  }
}

TEST(ExperimentTest, RegistryCoversAllMethods) {
  for (const auto& method : StandardMethods()) {
    EXPECT_NE(MakeAttackFactory(method), nullptr) << method;
  }
  for (const auto& method : Fig8Methods()) {
    EXPECT_NE(MakeAttackFactory(method), nullptr) << method;
  }
  for (const auto& method : Fig9Methods()) {
    EXPECT_NE(MakeAttackFactory(method), nullptr) << method;
  }
}

TEST(ExperimentTest, MakeExperimentDatasetProfiles) {
  const Dataset d = MakeExperimentDataset("ciao", 0.05, 3);
  EXPECT_EQ(d.name, "ciao");
  EXPECT_TRUE(d.Validate().ok());
}

TEST(ExperimentTest, GameResultJsonIsWellFormed) {
  const Dataset base = TestWorld();
  MultiplayerGame game(base, FastGameConfig());
  const GameResult result = game.Run(MakeAttackFactory("Random"), 2, 3);
  const std::string json = GameResultToJson(result);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"method\":\"Random\""), std::string::npos);
  EXPECT_NE(json.find("\"average_rating\":"), std::string::npos);
  EXPECT_NE(json.find("\"attacker_plan\":{"), std::string::npos);
}

TEST(ExperimentTest, RunRepeatedCellAverages) {
  const Dataset base = TestWorld();
  MultiplayerGame game(base, FastGameConfig());
  const CellStats stats = RunRepeatedCell(game, "Random", 2, 5, 2);
  EXPECT_EQ(stats.repeats, 2);
  EXPECT_GE(stats.mean_average_rating, kMinRating);
  EXPECT_LE(stats.mean_average_rating, kMaxRating);
}

}  // namespace
}  // namespace msopds
