#include "core/mso_optimizer.h"

#include <gtest/gtest.h>

#include "data/demographics.h"
#include "data/synthetic.h"
#include "tensor/grad.h"
#include "tensor/ops.h"

namespace msopds {
namespace {

// A transparent two-player Stackelberg toy over rating capacities.
//
// Leader has two candidate actions (x0, x1); the opponent has one (y).
//   L^q = 0.5 (y - k x0)^2          -> best response y* = k x0
//   L^p = -a0 x0 - a1 x1 + c y
// Substituting the response: the *effective* coefficient of x0 is
// (-a0 + c k). With a0 = 1.0, a1 = 0.8, c = 0.5, k = 1.0:
//   naive (first-order) gradient ranks x0 (coefficient -1.0) above x1
//   (-0.8), but the Stackelberg total derivative ranks x1 (-0.8) above
//   x0 (-0.5). MSO must therefore select x1 under budget 1 while a
//   first-order planner selects x0.
struct StackelbergToy {
  Dataset world;
  Demographics leader_demo;
  Demographics opponent_demo;
  CapacitySet leader_capacity;
  CapacitySet opponent_capacity;

  static constexpr double kA0 = 1.0;
  static constexpr double kA1 = 0.8;
  static constexpr double kC = 0.5;
  static constexpr double kK = 1.0;

  StackelbergToy() {
    world.name = "toy";
    world.num_users = 3;
    world.num_items = 1;
    world.social = UndirectedGraph(3);
    world.items = UndirectedGraph(1);
    leader_demo.customer_base = {0, 1};
    leader_demo.target_item = 0;
    opponent_demo.customer_base = {2};
    opponent_demo.target_item = 0;
    leader_capacity =
        CapacitySet::MakeRatingOnly(world, leader_demo, 5.0);
    opponent_capacity =
        CapacitySet::MakeRatingOnly(world, opponent_demo, 1.0);
  }

  MsoOptimizer::LossFn Losses() const {
    return [](const std::vector<Variable>& xhats) {
      const Variable& xp = xhats[0];
      const Variable& xq = xhats[1];
      Variable x0 = Slice1(xp, 0, 1);
      Variable x1 = Slice1(xp, 1, 2);
      Variable leader = Sum(Add(
          Add(ScalarMul(x0, -kA0), ScalarMul(x1, -kA1)),
          ScalarMul(xq, kC)));
      Variable follower =
          ScalarMul(Sum(Square(Sub(xq, ScalarMul(x0, kK)))), 0.5);
      return std::vector<Variable>{leader, follower};
    };
  }
};

TEST(MsoOptimizerTest, RejectsLeaderStepAboveFollowerStep) {
  MsoConfig config;
  config.leader_step = 0.1;
  config.follower_step = 0.05;
  EXPECT_DEATH(MsoOptimizer{config}, "leader step");
}

TEST(MsoOptimizerTest, TotalDerivativeSelectsStackelbergAction) {
  StackelbergToy toy;
  ASSERT_EQ(toy.leader_capacity.size(), 2);
  ASSERT_EQ(toy.opponent_capacity.size(), 1);

  Rng rng(3);
  ImportanceVector leader(&toy.leader_capacity, &rng, /*init_scale=*/1e-6);
  ImportanceVector opponent(&toy.opponent_capacity, &rng, 1e-6);

  MsoConfig config;
  config.leader_step = 0.01;
  config.follower_step = 0.1;
  config.outer_iterations = 15;
  const MsoOptimizer optimizer(config);
  const auto history = optimizer.Optimize(
      toy.Losses(), {&leader, &opponent},
      {Budget{1, 0, 0}, Budget{1, 0, 0}});

  EXPECT_EQ(history.size(), 15u);
  // The anticipating leader must rank the "safe" action 1 on top.
  EXPECT_GT(leader.values().at(1), leader.values().at(0));
  const Tensor mask = leader.Binarize(Budget{1, 0, 0});
  EXPECT_DOUBLE_EQ(mask.at(1), 1.0);
  EXPECT_DOUBLE_EQ(mask.at(0), 0.0);
}

TEST(MsoOptimizerTest, FirstOrderBaselinePrefersTheTrapAction) {
  // The same toy driven by only the partial derivative (what BOPDS does)
  // must pick the trap action x0 — demonstrating exactly the failure
  // mode MSO fixes.
  StackelbergToy toy;
  Rng rng(4);
  ImportanceVector leader(&toy.leader_capacity, &rng, 1e-6);
  ImportanceVector opponent(&toy.opponent_capacity, &rng, 1e-6);
  auto losses = toy.Losses();
  for (int iteration = 0; iteration < 15; ++iteration) {
    Variable xp = leader.BinarizedParam(Budget{1, 0, 0});
    Variable xq = opponent.BinarizedParam(Budget{1, 0, 0});
    const auto values = losses({xp, xq});
    leader.ApplyUpdate(GradValues(values[0], {xp})[0], 0.01);
    opponent.ApplyUpdate(GradValues(values[1], {xq})[0], 0.1);
  }
  EXPECT_GT(leader.values().at(0), leader.values().at(1));
}

TEST(MsoOptimizerTest, ImplicitTermMatchesAnalyticFormula) {
  StackelbergToy toy;
  Rng rng(5);
  ImportanceVector leader(&toy.leader_capacity, &rng, 1e-6);
  ImportanceVector opponent(&toy.opponent_capacity, &rng, 1e-6);
  MsoConfig config;
  config.leader_step = 0.01;
  config.follower_step = 0.1;
  config.outer_iterations = 1;
  config.cg.damping = 0.0;  // exact Hessian solve for the analytic check
  const auto history = MsoOptimizer(config).Optimize(
      toy.Losses(), {&leader, &opponent},
      {Budget{1, 0, 0}, Budget{1, 0, 0}});
  // Analytic: grad = (-1 + ck, -0.8) => after one update of step 0.01,
  // values gain (0.005, 0.008) over the tiny random init.
  EXPECT_NEAR(leader.values().at(0), 0.005, 1e-4);
  EXPECT_NEAR(leader.values().at(1), 0.008, 1e-4);
  // The implicit-term norm is |c * k| = 0.5 for the x0 coordinate.
  ASSERT_EQ(history.size(), 1u);
  EXPECT_NEAR(history[0].implicit_term_norm, 0.5, 1e-9);
}

TEST(MsoOptimizerTest, FollowerFeelsDeselectionPressureWhenUnhappy) {
  // The follower's single action is always selected (budget 1 of 1), so
  // xhat_q is pinned at 1 and its partial derivative is (xhat_q - k
  // xhat_p0). With the leader's x0 unselected the follower is unhappy
  // (gradient +1) and its continuous priority must fall monotonically;
  // with x0 selected (leader budget 2) the gradient vanishes and the
  // priority stays put.
  StackelbergToy toy;
  MsoConfig config;
  config.leader_step = 0.001;
  config.follower_step = 0.5;
  config.outer_iterations = 5;

  Rng rng(6);
  ImportanceVector leader(&toy.leader_capacity, &rng, 1e-6);
  ImportanceVector opponent(&toy.opponent_capacity, &rng, 1e-6);
  const double before = opponent.values().at(0);
  // Leader budget 0: x0 never selected.
  MsoOptimizer(config).Optimize(toy.Losses(), {&leader, &opponent},
                                {Budget{0, 0, 0}, Budget{1, 0, 0}});
  EXPECT_NEAR(opponent.values().at(0), before - 5 * 0.5, 1e-9);

  Rng rng2(6);
  ImportanceVector leader2(&toy.leader_capacity, &rng2, 1e-6);
  ImportanceVector opponent2(&toy.opponent_capacity, &rng2, 1e-6);
  const double before2 = opponent2.values().at(0);
  // Leader budget 2: x0 always selected -> follower gradient is zero.
  MsoOptimizer(config).Optimize(toy.Losses(), {&leader2, &opponent2},
                                {Budget{2, 0, 0}, Budget{1, 0, 0}});
  EXPECT_NEAR(opponent2.values().at(0), before2, 1e-9);
}

TEST(MsoOptimizerTest, HistoryRecordsLossesAndCg) {
  StackelbergToy toy;
  Rng rng(7);
  ImportanceVector leader(&toy.leader_capacity, &rng, 1e-6);
  ImportanceVector opponent(&toy.opponent_capacity, &rng, 1e-6);
  MsoConfig config;
  config.outer_iterations = 3;
  const auto history = MsoOptimizer(config).Optimize(
      toy.Losses(), {&leader, &opponent},
      {Budget{1, 0, 0}, Budget{1, 0, 0}});
  ASSERT_EQ(history.size(), 3u);
  for (const auto& stats : history) {
    EXPECT_EQ(stats.follower_losses.size(), 1u);
    EXPECT_GT(stats.leader_grad_norm, 0.0);
  }
}

}  // namespace
}  // namespace msopds
