#include "scale/ingest.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/tsv_loader.h"
#include "scale/sharded_dataset.h"
#include "util/string_util.h"

namespace msopds {
namespace scale {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << content;
}

/// A fixture TSV pair exercising every loader quirk the ingester must
/// mirror: interleaved user/item first occurrences (interning order),
/// duplicate (user, item) pairs (last value wins, sequence = first
/// occurrence), comments and blank lines, trust rows with unknown users,
/// self-loops, and duplicate/reversed edges.
struct TsvFixture {
  std::string ratings_path;
  std::string trust_path;
};

TsvFixture WriteFixture(const std::string& dir) {
  TsvFixture fixture;
  fixture.ratings_path = dir + "/ratings.tsv";
  fixture.trust_path = dir + "/trust.tsv";
  WriteFile(fixture.ratings_path,
            "# header comment\n"
            "10\t500\t4\n"
            "11\t501\t3\n"
            "\n"
            "10\t501\t5\n"
            "12\t500\t2\n"
            "10\t500\t1\n"  // duplicate pair: value 1 wins, seq stays first
            "13\t502\t4\n"
            "11\t500\t5\n"
            "14\t503\t3\n"
            "12\t502\t1\n");
  WriteFile(fixture.trust_path,
            "# trust dump\n"
            "10\t11\n"
            "11\t10\n"      // reverse duplicate: ignored
            "12\t12\n"      // self-loop: ignored
            "10\t99\n"      // unknown user: ignored
            "13\t10\n"
            "12\t14\n"
            "10\t11\n");    // exact duplicate: ignored
  return fixture;
}

TEST(IngestTest, ShardsMergeBitIdenticalToLoadTsvAtEveryShardCount) {
  const std::string dir = FreshDir("ingest_equiv");
  const TsvFixture fixture = WriteFixture(dir);

  TsvOptions tsv_options;
  tsv_options.name = "ingest-equiv";
  auto reference =
      LoadTsv(fixture.ratings_path, fixture.trust_path, tsv_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (int64_t shards : {1, 3, 5}) {
    const std::string shard_dir = dir + StrFormat("/shards_%lld",
                                                  static_cast<long long>(shards));
    IngestOptions options;
    options.name = "ingest-equiv";
    options.num_shards = shards;
    auto stats = IngestTsvToShards(fixture.ratings_path, fixture.trust_path,
                                   shard_dir, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(static_cast<int64_t>(stats.value().shard_paths.size()), shards);
    EXPECT_EQ(stats.value().num_users, reference.value().num_users);
    EXPECT_EQ(stats.value().num_items, reference.value().num_items);
    EXPECT_EQ(stats.value().num_ratings,
              static_cast<int64_t>(reference.value().ratings.size()));
    EXPECT_EQ(stats.value().social_edges,
              reference.value().social.num_edges());

    auto merged = MergeShards(stats.value().shard_paths);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    std::string why;
    EXPECT_TRUE(DatasetsIdentical(reference.value(), merged.value(), &why))
        << "shards=" << shards << ": " << why;
  }
}

TEST(IngestTest, MatchesLoadTsvUnderBadRowTolerance) {
  const std::string dir = FreshDir("ingest_tolerance");
  TsvFixture fixture;
  fixture.ratings_path = dir + "/ratings.tsv";
  fixture.trust_path = dir + "/trust.tsv";
  WriteFile(fixture.ratings_path,
            "10\t500\t4\n"
            "not-a-number\t500\t4\n"  // bad row 1
            "11\t501\t9\n"            // bad row 2: rating out of [1, 5]
            "12\t502\t3\n");
  WriteFile(fixture.trust_path, "10\t11\n");

  TsvOptions tsv_options;
  tsv_options.name = "tolerant";
  tsv_options.max_bad_rows = 2;
  auto reference =
      LoadTsv(fixture.ratings_path, fixture.trust_path, tsv_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  IngestOptions options;
  options.name = "tolerant";
  options.max_bad_rows = 2;
  options.num_shards = 2;
  auto stats = IngestTsvToShards(fixture.ratings_path, fixture.trust_path,
                                 dir + "/shards", options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().bad_rows, 2);

  auto merged = MergeShards(stats.value().shard_paths);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  std::string why;
  EXPECT_TRUE(DatasetsIdentical(reference.value(), merged.value(), &why))
      << why;
}

TEST(IngestTest, StrictModeReportsFileLineAndByteOffset) {
  const std::string dir = FreshDir("ingest_strict");
  TsvFixture fixture;
  fixture.ratings_path = dir + "/ratings.tsv";
  fixture.trust_path = dir + "/trust.tsv";
  WriteFile(fixture.ratings_path,
            "10\t500\t4\n"
            "garbage row\n");
  WriteFile(fixture.trust_path, "");

  IngestOptions options;  // max_bad_rows = 0: strict
  auto stats = IngestTsvToShards(fixture.ratings_path, fixture.trust_path,
                                 dir + "/shards", options);
  ASSERT_FALSE(stats.ok());
  const std::string message(stats.status().message());
  // The operator must be able to seek straight to the offending bytes:
  // "path:line (byte N): reason". Line 1 is "10\t500\t4\n" = 9 bytes.
  EXPECT_NE(message.find(fixture.ratings_path + ":2"), std::string::npos)
      << message;
  EXPECT_NE(message.find("(byte 9)"), std::string::npos) << message;
}

TEST(IngestTest, BuildItemGraphFalseYieldsEmptyItemGraphOnly) {
  const std::string dir = FreshDir("ingest_no_item_graph");
  const TsvFixture fixture = WriteFixture(dir);

  TsvOptions tsv_options;
  tsv_options.name = "no-item-graph";
  auto reference =
      LoadTsv(fixture.ratings_path, fixture.trust_path, tsv_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  IngestOptions options;
  options.name = "no-item-graph";
  options.num_shards = 2;
  options.build_item_graph = false;
  auto stats = IngestTsvToShards(fixture.ratings_path, fixture.trust_path,
                                 dir + "/shards", options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto merged = MergeShards(stats.value().shard_paths);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  // Same ratings and social network; the item graph is the only field the
  // strict-memory mode gives up.
  EXPECT_EQ(merged.value().items.num_edges(), 0);
  Dataset expected = reference.value();
  expected.items = UndirectedGraph(expected.num_items);
  std::string why;
  EXPECT_TRUE(DatasetsIdentical(expected, merged.value(), &why)) << why;
}

TEST(IngestTest, CleansUpSpillDirectory) {
  const std::string dir = FreshDir("ingest_spill_cleanup");
  const TsvFixture fixture = WriteFixture(dir);
  const std::string shard_dir = dir + "/shards";
  IngestOptions options;
  options.num_shards = 3;
  auto stats = IngestTsvToShards(fixture.ratings_path, fixture.trust_path,
                                 shard_dir, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(std::filesystem::exists(shard_dir + "/.ingest-spill"));
}

}  // namespace
}  // namespace scale
}  // namespace msopds
