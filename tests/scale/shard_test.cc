#include "scale/sharded_dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "scale/shard_io.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace msopds {
namespace scale {
namespace {

Dataset TestDataset() {
  SyntheticConfig config;
  config.name = "shard-test";
  // Deliberately not divisible by any tested shard count, so partition
  // boundaries land mid-range.
  config.num_users = 57;
  config.num_items = 41;
  config.num_ratings = 400;
  config.num_social_links = 150;
  Rng rng(123);
  return GenerateSynthetic(config, &rng);
}

std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

void FlipByte(const std::string& path, int64_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekg(offset);
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x5a;
  file.seekp(offset);
  file.write(&byte, 1);
}

/// Writes the test dataset as one shard and returns its path.
std::string WriteOneShard(const std::string& dir_name) {
  const std::string dir = FreshDir(dir_name);
  auto paths = WriteShards(TestDataset(), dir, 1);
  EXPECT_TRUE(paths.ok()) << paths.status().ToString();
  EXPECT_EQ(paths.value().size(), 1u);
  return paths.value().front();
}

TEST(PartitionTest, RangesTileExactlyAndOwnerAgrees) {
  for (int64_t total : {0, 1, 5, 57, 97}) {
    for (int64_t shards : {1, 2, 4, 7, 13}) {
      int64_t cursor = 0;
      for (int64_t s = 0; s < shards; ++s) {
        const ShardRange range = PartitionRange(total, shards, s);
        EXPECT_EQ(range.begin, cursor)
            << "total=" << total << " shards=" << shards << " s=" << s;
        EXPECT_LE(range.begin, range.end);
        for (int64_t id = range.begin; id < range.end; ++id) {
          EXPECT_EQ(OwnerShard(id, total, shards), s)
              << "id=" << id << " total=" << total << " shards=" << shards;
        }
        cursor = range.end;
      }
      EXPECT_EQ(cursor, total) << "total=" << total << " shards=" << shards;
    }
  }
}

TEST(ShardFileNameTest, FixedWidthSoLexicographicOrderIsIndexOrder) {
  EXPECT_EQ(ShardFileName(3, 16), "shard-00003-of-00016.msd");
  EXPECT_EQ(ShardFileName(0, 1), "shard-00000-of-00001.msd");
}

TEST(ShardRoundTripTest, MergeIsBitIdenticalAtEveryShardCount) {
  const Dataset dataset = TestDataset();
  for (int64_t shards : {1, 2, 4, 7}) {
    const std::string dir =
        FreshDir(StrFormat("shard_roundtrip_%lld", static_cast<long long>(shards)));
    auto paths = WriteShards(dataset, dir, shards);
    ASSERT_TRUE(paths.ok()) << paths.status().ToString();
    ASSERT_EQ(static_cast<int64_t>(paths.value().size()), shards);

    auto listed = ListShardPaths(dir);
    ASSERT_TRUE(listed.ok()) << listed.status().ToString();
    EXPECT_EQ(listed.value(), paths.value());

    auto merged = MergeShards(listed.value());
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    std::string why;
    EXPECT_TRUE(DatasetsIdentical(dataset, merged.value(), &why))
        << "shards=" << shards << ": " << why;
  }
}

TEST(ShardRoundTripTest, SurvivesMoreShardsThanUsers) {
  const Dataset dataset = TestDataset();
  const std::string dir = FreshDir("shard_roundtrip_sparse");
  auto paths = WriteShards(dataset, dir, 100);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  auto merged = MergeShards(paths.value());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  std::string why;
  EXPECT_TRUE(DatasetsIdentical(dataset, merged.value(), &why)) << why;
}

TEST(ShardRoundTripTest, UserMajorViewPreservesWithinUserOrder) {
  const Dataset dataset = TestDataset();
  const std::vector<Rating> view = UserMajorRatings(dataset);
  // Sorted by user; ties keep the original (first-occurrence) order —
  // i.e. the view is exactly the stable sort of the original rows.
  std::vector<Rating> expected = dataset.ratings;
  std::stable_sort(
      expected.begin(), expected.end(),
      [](const Rating& a, const Rating& b) { return a.user < b.user; });
  ASSERT_EQ(view.size(), expected.size());
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i], expected[i]) << "row " << i;
  }
}

TEST(MergeShardsTest, RefusesIncompleteShardSet) {
  const Dataset dataset = TestDataset();
  const std::string dir = FreshDir("shard_incomplete");
  auto paths = WriteShards(dataset, dir, 4);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  std::vector<std::string> missing_one(paths.value().begin(),
                                       paths.value().end() - 1);
  auto merged = MergeShards(missing_one);
  EXPECT_FALSE(merged.ok());
}

TEST(ShardReaderTest, MissingFileIsNotFound) {
  auto reader = ShardReader::Open(testing::TempDir() + "/no_such_shard.msd");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(ShardReaderTest, RejectsBadMagicWithPathAndOffset) {
  const std::string path = WriteOneShard("shard_bad_magic");
  FlipByte(path, 0);
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  const std::string message(reader.status().message());
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find("offset 0:"), std::string::npos) << message;
  EXPECT_NE(message.find("bad magic"), std::string::npos) << message;
}

TEST(ShardReaderTest, RejectsUnsupportedVersionWithOffset) {
  const std::string path = WriteOneShard("shard_bad_version");
  // The version int64 lives at offset 8, right after the magic. The
  // version gate fires before the header checksum so old readers give the
  // actionable message, not a generic corruption one.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    const int64_t bogus = 99;
    file.seekp(8);
    file.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  const std::string message(reader.status().message());
  EXPECT_NE(message.find("offset 8:"), std::string::npos) << message;
  EXPECT_NE(message.find("unsupported shard format version 99"),
            std::string::npos)
      << message;
}

TEST(ShardReaderTest, RejectsHeaderCorruptionViaChecksum) {
  const std::string path = WriteOneShard("shard_bad_header");
  FlipByte(path, 16);  // inside the shard_index field
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  const std::string message(reader.status().message());
  EXPECT_NE(message.find("offset 120:"), std::string::npos) << message;
  EXPECT_NE(message.find("header checksum mismatch"), std::string::npos)
      << message;
}

TEST(ShardReaderTest, RejectsPayloadCorruptionViaChecksum) {
  const std::string path = WriteOneShard("shard_bad_payload");
  const int64_t size =
      static_cast<int64_t>(std::filesystem::file_size(path));
  ASSERT_GT(size, kShardHeaderBytes);
  FlipByte(path, size - 1);
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  const std::string message(reader.status().message());
  EXPECT_NE(message.find("offset 128:"), std::string::npos) << message;
  EXPECT_NE(message.find("payload checksum mismatch"), std::string::npos)
      << message;
}

TEST(ShardReaderTest, RejectsTruncatedHeader) {
  const std::string path = WriteOneShard("shard_truncated_header");
  std::filesystem::resize_file(path, 100);
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  const std::string message(reader.status().message());
  EXPECT_NE(message.find("offset 0:"), std::string::npos) << message;
  EXPECT_NE(message.find("truncated header"), std::string::npos) << message;
}

TEST(ShardReaderTest, RejectsTruncatedPayload) {
  const std::string path = WriteOneShard("shard_truncated_payload");
  const int64_t size =
      static_cast<int64_t>(std::filesystem::file_size(path));
  std::filesystem::resize_file(path, size - 8);
  auto reader = ShardReader::Open(path);
  ASSERT_FALSE(reader.ok());
  const std::string message(reader.status().message());
  EXPECT_NE(message.find(StrFormat("offset %lld:", static_cast<long long>(
                                       kShardHeaderBytes))),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("header implies"), std::string::npos) << message;
}

TEST(ShardReaderTest, RoundTripsHeaderFieldsAndName) {
  const Dataset dataset = TestDataset();
  const std::string dir = FreshDir("shard_header_fields");
  auto paths = WriteShards(dataset, dir, 2);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  int64_t total_seen = 0;
  for (int64_t s = 0; s < 2; ++s) {
    auto reader = ShardReader::Open(paths.value()[static_cast<size_t>(s)]);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.value().shard_index(), s);
    EXPECT_EQ(reader.value().num_shards(), 2);
    EXPECT_EQ(reader.value().num_users(), dataset.num_users);
    EXPECT_EQ(reader.value().num_items(), dataset.num_items);
    EXPECT_EQ(reader.value().total_ratings(),
              static_cast<int64_t>(dataset.ratings.size()));
    EXPECT_EQ(reader.value().name(), dataset.name);
    const ShardRange range = PartitionRange(dataset.num_users, 2, s);
    EXPECT_EQ(reader.value().user_begin(), range.begin);
    EXPECT_EQ(reader.value().user_end(), range.end);
    total_seen += reader.value().num_ratings();
  }
  EXPECT_EQ(total_seen, static_cast<int64_t>(dataset.ratings.size()));
}

}  // namespace
}  // namespace scale
}  // namespace msopds
