#include "scale/orchestrator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/checkpoint.h"
#include "util/string_util.h"

namespace msopds {
namespace scale {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

/// Serialized record with the per-run provenance (worker id, source row)
/// zeroed — the form in which multi-process and single-process sweeps
/// must agree.
std::string Normalized(const CellRecord& record) {
  CellRecord copy = record;
  copy.worker_id = 0;
  copy.source_line = 0;
  return CellRecordToJson(copy);
}

std::vector<CellRecord> LoadMerged(const std::string& work_dir) {
  CheckpointStore store(work_dir + "/sweep.ckpt");
  return store.records();
}

CellRecord ToyRecord(const std::string& key, double rbar, int worker_id) {
  CellRecord record;
  record.key = key;
  record.mean_average_rating = rbar;
  record.mean_hit_rate = 0.5;
  record.repeats = 1;
  record.worker_id = worker_id;
  return record;
}

/// Deterministic executor for the in-process tests (the subprocess tests
/// use sweep_runner's MF cell instead).
CellRecord DeterministicCell(const std::string& key) {
  double rbar = 0.0;
  for (char c : key) rbar += static_cast<double>(c);
  return ToyRecord(key, rbar, 0);
}

std::vector<std::string> Keys(int n) {
  std::vector<std::string> keys;
  for (int k = 0; k < n; ++k) keys.push_back(StrFormat("cell-%03d", k));
  return keys;
}

TEST(WorkerLoopTest, ExecutesCellsAppendsSegmentAndAcks) {
  std::istringstream in("CELL cell-000\nCELL cell-001\n");
  std::ostringstream out;
  CheckpointStore segment("");  // in-memory
  const int status = RunWorkerLoop(in, out, &segment, /*worker_id=*/7,
                                   DeterministicCell);
  EXPECT_EQ(status, 0);
  EXPECT_EQ(out.str(), "DONE cell-000\nDONE cell-001\n");
  ASSERT_EQ(segment.size(), 2u);
  ASSERT_NE(segment.Find("cell-000"), nullptr);
  EXPECT_EQ(segment.Find("cell-000")->worker_id, 7);
  EXPECT_EQ(segment.Find("cell-001")->worker_id, 7);
}

TEST(WorkerLoopTest, MalformedCommandFails) {
  std::istringstream in("NOPE cell-000\n");
  std::ostringstream out;
  CheckpointStore segment("");
  EXPECT_EQ(RunWorkerLoop(in, out, &segment, 1, DeterministicCell), 1);
}

TEST(RunInlineTest, ResumesCompletedCellsFromSurvivingSegments) {
  const std::string work_dir = FreshDir("orch_resume");
  OrchestratorOptions options;
  options.work_dir = work_dir;
  SweepOrchestrator orchestrator(options);

  int calls = 0;
  const CellExecutor counting = [&](const std::string& key) {
    ++calls;
    return DeterministicCell(key);
  };

  auto first = orchestrator.RunInline(Keys(3), counting);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().cells_executed, 3);
  EXPECT_EQ(first.value().cells_resumed, 0);
  EXPECT_EQ(calls, 3);

  // Second run over a superset: only the new cell executes.
  auto second = orchestrator.RunInline(Keys(4), counting);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().cells_resumed, 3);
  EXPECT_EQ(second.value().cells_executed, 1);
  EXPECT_EQ(calls, 4);

  const std::vector<CellRecord> merged = LoadMerged(work_dir);
  ASSERT_EQ(merged.size(), 4u);
  for (size_t k = 0; k < merged.size(); ++k) {
    EXPECT_EQ(merged[k].key, Keys(4)[k]);  // caller key order
  }
}

TEST(MergeTest, ConflictingDuplicatesRefuseAndNameWorkers) {
  const std::string work_dir = FreshDir("orch_conflict");
  // Two surviving segments disagree on cell-000: a non-deterministic
  // executor (or a stale work_dir). The merge must refuse, naming the
  // cell and both worker ids, rather than silently picking one.
  {
    CheckpointStore w1(work_dir + "/segment-w1-g0.jsonl");
    w1.Append(ToyRecord("cell-000", 1.0, 1));
  }
  {
    CheckpointStore w2(work_dir + "/segment-w2-g0.jsonl");
    w2.Append(ToyRecord("cell-000", 2.0, 2));
  }
  OrchestratorOptions options;
  options.work_dir = work_dir;
  SweepOrchestrator orchestrator(options);
  auto result = orchestrator.RunInline({"cell-000"}, DeterministicCell);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  const std::string message(result.status().message());
  EXPECT_NE(message.find("refusing to merge"), std::string::npos) << message;
  EXPECT_NE(message.find("cell-000"), std::string::npos) << message;
  EXPECT_NE(message.find("1, 2"), std::string::npos) << message;
}

TEST(MergeTest, AgreeingDuplicatesKeepSmallestWorkerId) {
  const std::string work_dir = FreshDir("orch_agree");
  // The same cell finished on two workers (a re-dispatch where the
  // original worker had in fact persisted before dying). Identical
  // payloads: keep one, attributed to the smallest worker id.
  {
    CheckpointStore w3(work_dir + "/segment-w3-g0.jsonl");
    w3.Append(ToyRecord("cell-000", 4.0, 3));
  }
  {
    CheckpointStore w1(work_dir + "/segment-w1-g1.jsonl");
    w1.Append(ToyRecord("cell-000", 4.0, 1));
  }
  OrchestratorOptions options;
  options.work_dir = work_dir;
  SweepOrchestrator orchestrator(options);
  auto result = orchestrator.RunInline({"cell-000"}, DeterministicCell);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().cells_resumed, 1);
  const std::vector<CellRecord> merged = LoadMerged(work_dir);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].worker_id, 1);
}

#if defined(__unix__) || defined(__APPLE__)

/// The sweep_runner binary under test (compile definition from CMake).
std::string RunnerPath() { return MSOPDS_SWEEP_RUNNER_PATH; }

int RunCommand(const std::string& command) {
  const int status = std::system(command.c_str());  // NOLINT
  return status;
}

void ExpectSameRowsModuloWorker(const std::vector<CellRecord>& reference,
                                const std::vector<CellRecord>& actual) {
  ASSERT_EQ(reference.size(), actual.size());
  for (size_t k = 0; k < reference.size(); ++k) {
    EXPECT_EQ(Normalized(reference[k]), Normalized(actual[k]))
        << "row " << k << " differs";
  }
}

TEST(SweepRunnerTest, MultiprocessMatchesInlineModuloWorkerId) {
  const std::string inline_dir = FreshDir("runner_inline");
  const std::string master_dir = FreshDir("runner_master");
  const std::string common =
      " --cells=4 --users=32 --items=24 --epochs=3 --seed=11";

  ASSERT_EQ(RunCommand(RunnerPath() + " --mode=inline --work_dir=" +
                       inline_dir + common),
            0);
  ASSERT_EQ(RunCommand(RunnerPath() + " --mode=master --workers=2 --work_dir=" +
                       master_dir + common),
            0);

  const std::vector<CellRecord> inline_rows = LoadMerged(inline_dir);
  const std::vector<CellRecord> master_rows = LoadMerged(master_dir);
  ASSERT_EQ(inline_rows.size(), 4u);
  ExpectSameRowsModuloWorker(inline_rows, master_rows);
  for (const CellRecord& row : inline_rows) EXPECT_EQ(row.worker_id, 0);
  for (const CellRecord& row : master_rows) EXPECT_GE(row.worker_id, 1);
}

TEST(SweepRunnerTest, SurvivesSigkilledWorkerAndStillMatchesInline) {
  const std::string inline_dir = FreshDir("runner_kill_reference");
  const std::string kill_dir = FreshDir("runner_kill");
  const std::string common =
      " --cells=4 --users=32 --items=24 --epochs=3 --seed=13";
  const std::string marker = kill_dir + "/killed.marker";

  ASSERT_EQ(RunCommand(RunnerPath() + " --mode=inline --work_dir=" +
                       inline_dir + common),
            0);
  // One worker SIGKILLs itself before persisting its second cell; the
  // orchestrator must detect the hangup, re-dispatch the lost cell, and
  // finish with the same merged checkpoint.
  ASSERT_EQ(RunCommand(RunnerPath() + " --mode=master --workers=2 --work_dir=" +
                       kill_dir + common + " --fault_kill_cell=1" +
                       " --kill_marker=" + marker),
            0);
  EXPECT_TRUE(std::filesystem::exists(marker))
      << "fault injection never fired";

  ExpectSameRowsModuloWorker(LoadMerged(inline_dir), LoadMerged(kill_dir));
}

TEST(SweepRunnerTest, MasterResumesAfterItselfBeingRerun) {
  // Simulate an orchestrator death after a partial run: run once with a
  // kill (losing nothing merged if the master also completed — so here
  // just run twice and assert the second run resumes every cell).
  const std::string work_dir = FreshDir("runner_rerun");
  const std::string common =
      " --cells=3 --users=32 --items=24 --epochs=2 --seed=17";
  ASSERT_EQ(RunCommand(RunnerPath() + " --mode=master --workers=2 --work_dir=" +
                       work_dir + common),
            0);
  const std::vector<CellRecord> first = LoadMerged(work_dir);
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(RunCommand(RunnerPath() + " --mode=master --workers=2 --work_dir=" +
                       work_dir + common),
            0);
  const std::vector<CellRecord> second = LoadMerged(work_dir);
  ExpectSameRowsModuloWorker(first, second);
}

#endif  // defined(__unix__) || defined(__APPLE__)

}  // namespace
}  // namespace scale
}  // namespace msopds
