#include "scale/block_trainer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "scale/sharded_dataset.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace msopds {
namespace scale {
namespace {

constexpr uint64_t kInitSeed = 2024;

Dataset TrainingDataset() {
  SyntheticConfig config;
  config.name = "ooc-train";
  config.num_users = 60;
  config.num_items = 45;
  config.num_ratings = 500;
  config.num_social_links = 200;
  Rng rng(77);
  return GenerateSynthetic(config, &rng);
}

std::string FreshDir(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

MatrixFactorization FreshModel(const Dataset& dataset) {
  Rng init_rng(kInitSeed);
  return MatrixFactorization(dataset.num_users, dataset.num_items, MfConfig(),
                             3.0, &init_rng);
}

/// Bitwise tensor equality (memcmp, so NaN payloads and signed zeros
/// count too — this is the determinism contract, not a tolerance check).
void ExpectParamsBitIdentical(MatrixFactorization* expected,
                              MatrixFactorization* actual,
                              const std::string& context) {
  std::vector<Variable>* expected_params = expected->MutableParams();
  std::vector<Variable>* actual_params = actual->MutableParams();
  ASSERT_EQ(expected_params->size(), actual_params->size()) << context;
  const char* names[] = {"user_factors", "item_factors", "user_bias",
                         "item_bias"};
  for (size_t p = 0; p < expected_params->size(); ++p) {
    const Tensor& want = (*expected_params)[p].value();
    const Tensor& got = (*actual_params)[p].value();
    ASSERT_EQ(want.size(), got.size()) << context << " param " << names[p];
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          static_cast<size_t>(want.size()) * sizeof(double)),
              0)
        << context << ": param " << names[p] << " differs bitwise";
  }
}

/// Trains the whole-dataset reference (TrainModel over the canonical
/// user-major view) and the shard-streaming driver from identical
/// initializations, then asserts bitwise parameter identity plus an
/// identical loss trace.
void CheckBitIdentity(const Dataset& dataset,
                      const std::vector<std::string>& shard_paths,
                      const TrainOptions& options, bool resident,
                      const std::string& context) {
  MatrixFactorization reference = FreshModel(dataset);
  const TrainResult expected =
      TrainModel(&reference, UserMajorRatings(dataset), options);
  ASSERT_TRUE(expected.healthy) << context << ": " << expected.failure;

  MatrixFactorization streamed = FreshModel(dataset);
  auto result = TrainMfOutOfCore(&streamed, shard_paths, options, resident);
  ASSERT_TRUE(result.ok()) << context << ": " << result.status().ToString();
  const OutOfCoreResult& ooc = result.value();
  EXPECT_TRUE(ooc.healthy) << context << ": " << ooc.failure;
  EXPECT_EQ(ooc.retries, expected.retries) << context;

  ASSERT_EQ(ooc.loss_history.size(), expected.loss_history.size()) << context;
  for (size_t e = 0; e < expected.loss_history.size(); ++e) {
    EXPECT_EQ(ooc.loss_history[e], expected.loss_history[e])
        << context << ": loss differs at epoch " << e;
  }
  EXPECT_EQ(ooc.final_loss, expected.final_loss) << context;
  ExpectParamsBitIdentical(&reference, &streamed, context);
}

TEST(BlockTrainerTest, BitIdenticalAcrossShardCountsThreadsAndArena) {
  const Dataset dataset = TrainingDataset();
  for (int64_t shards : {1, 4}) {
    const std::string dir = FreshDir(
        StrFormat("ooc_shards_%lld", static_cast<long long>(shards)));
    auto paths = WriteShards(dataset, dir, shards);
    ASSERT_TRUE(paths.ok()) << paths.status().ToString();
    for (int threads : {1, 4}) {
      for (bool arena_on : {false, true}) {
        const bool previous = Arena::Global().SetEnabled(arena_on);
        TrainOptions options;
        options.epochs = 4;
        options.num_threads = threads;
        CheckBitIdentity(
            dataset, paths.value(), options, /*resident=*/false,
            StrFormat("shards=%lld threads=%d arena=%d",
                      static_cast<long long>(shards), threads,
                      arena_on ? 1 : 0));
        Arena::Global().SetEnabled(previous);
      }
    }
  }
}

TEST(BlockTrainerTest, ResidentModeIsAlsoBitIdentical) {
  const Dataset dataset = TrainingDataset();
  const std::string dir = FreshDir("ooc_resident");
  auto paths = WriteShards(dataset, dir, 4);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  TrainOptions options;
  options.epochs = 3;
  CheckBitIdentity(dataset, paths.value(), options, /*resident=*/true,
                   "resident");
}

TEST(BlockTrainerTest, ReportsShardTraffic) {
  const Dataset dataset = TrainingDataset();
  const std::string dir = FreshDir("ooc_traffic");
  auto paths = WriteShards(dataset, dir, 4);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  MatrixFactorization model = FreshModel(dataset);
  TrainOptions options;
  options.epochs = 3;
  auto result = TrainMfOutOfCore(&model, paths.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Each of the 3 epochs streams all 4 shards, plus the final loss pass.
  EXPECT_EQ(result.value().shards_visited, (3 + 1) * 4);
  EXPECT_GT(result.value().peak_shard_bytes, 0);
}

TEST(BlockTrainerTest, RejectsMiniBatchOptions) {
  const Dataset dataset = TrainingDataset();
  const std::string dir = FreshDir("ooc_minibatch");
  auto paths = WriteShards(dataset, dir, 2);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  MatrixFactorization model = FreshModel(dataset);
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;  // mini-batch shuffles across shard cuts
  auto result = TrainMfOutOfCore(&model, paths.value(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BlockTrainerTest, RejectsModelShapeMismatch) {
  const Dataset dataset = TrainingDataset();
  const std::string dir = FreshDir("ooc_shape");
  auto paths = WriteShards(dataset, dir, 2);
  ASSERT_TRUE(paths.ok()) << paths.status().ToString();
  Rng init_rng(kInitSeed);
  MatrixFactorization wrong_shape(dataset.num_users + 3, dataset.num_items,
                                  MfConfig(), 3.0, &init_rng);
  TrainOptions options;
  options.epochs = 1;
  auto result = TrainMfOutOfCore(&wrong_shape, paths.value(), options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace scale
}  // namespace msopds
