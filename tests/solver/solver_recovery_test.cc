#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "solver/conjugate_gradient.h"
#include "util/fault.h"
#include "util/rng.h"

namespace msopds {
namespace {

// Random symmetric positive definite matrix A = M M^T + d I.
Tensor RandomSpd(int64_t n, Rng* rng, double diag = 0.5) {
  Tensor m({n, n});
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-1, 1);
  Tensor a({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < n; ++k) s += m.at(i, k) * m.at(j, k);
      a.at(i, j) = s + (i == j ? diag : 0.0);
    }
  }
  return a;
}

LinearOperator MatVecOperator(const Tensor& a) {
  return [&a](const Tensor& x) {
    const int64_t n = a.dim(0);
    Tensor y({n});
    for (int64_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (int64_t j = 0; j < n; ++j) s += a.at(i, j) * x.at(j);
      y.at(i) = s;
    }
    return y;
  };
}

double ResidualNorm(const Tensor& a, const Tensor& x, const Tensor& b) {
  const Tensor ax = MatVecOperator(a)(x);
  double s = 0.0;
  for (int64_t i = 0; i < b.size(); ++i) {
    const double r = b.at(i) - ax.at(i);
    s += r * r;
  }
  return std::sqrt(s);
}

TEST(CgRecoveryTest, HealthySolveReportsConvergedWithNoRetries) {
  Rng rng(11);
  const Tensor a = RandomSpd(12, &rng);
  Tensor b({12});
  for (int64_t i = 0; i < b.size(); ++i) b.at(i) = rng.Uniform(-1, 1);

  const CgResult result = ConjugateGradient(MatVecOperator(a), b);
  EXPECT_EQ(result.outcome, CgOutcome::kConverged);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.breakdowns, 0);
  EXPECT_EQ(result.damping_retries, 0);
  EXPECT_LT(ResidualNorm(a, result.solution, b), 1e-4);
}

TEST(CgRecoveryTest, InjectedOperatorBreakdownRecoversViaDampingRestart) {
  Rng rng(12);
  const Tensor a = RandomSpd(10, &rng);
  Tensor b({10});
  for (int64_t i = 0; i < b.size(); ++i) b.at(i) = rng.Uniform(-1, 1);

  FaultConfig faults;
  faults.solver_breakdown_probability = 1.0;
  ScopedFaultInjection scope(faults);

  // The injected fault NaNs only the first operator application, so the
  // damping-escalated restart runs against the true operator and must
  // still produce an accurate solution.
  const CgResult result = ConjugateGradient(MatVecOperator(a), b);
  EXPECT_EQ(result.outcome, CgOutcome::kConverged);
  EXPECT_GE(result.breakdowns, 1);
  EXPECT_GE(result.damping_retries, 1);
  EXPECT_LT(ResidualNorm(a, result.solution, b), 1e-3);
}

TEST(CgRecoveryTest, IndefiniteOperatorFallsBackToDenseSolve) {
  // A = -I is as far from positive definite as it gets: every damped CG
  // attempt sees negative curvature, so the ladder must end in the dense
  // Gaussian-elimination fallback, which solves -x = b exactly.
  const int64_t n = 6;
  const LinearOperator negate = [](const Tensor& x) {
    Tensor y = x.Clone();
    for (int64_t i = 0; i < y.size(); ++i) y.data()[i] = -y.data()[i];
    return y;
  };
  Tensor b({n});
  for (int64_t i = 0; i < n; ++i) b.at(i) = static_cast<double>(i + 1);

  const CgResult result = ConjugateGradient(negate, b);
  EXPECT_EQ(result.outcome, CgOutcome::kDenseFallback);
  EXPECT_GE(result.breakdowns, 1);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.solution.at(i), -b.at(i), 1e-10);
  }
  EXPECT_LT(result.residual_norm, 1e-10);
}

TEST(CgRecoveryTest, BreakdownWithoutFallbackStaysFinite) {
  const LinearOperator negate = [](const Tensor& x) {
    Tensor y = x.Clone();
    for (int64_t i = 0; i < y.size(); ++i) y.data()[i] = -y.data()[i];
    return y;
  };
  const Tensor b = Tensor::FromVector({1.0, 2.0, 3.0});
  CgOptions options;
  options.dense_fallback_size = 0;  // disable the last rung

  const CgResult result = ConjugateGradient(negate, b, options);
  EXPECT_EQ(result.outcome, CgOutcome::kBreakdown);
  EXPECT_FALSE(result.converged);
  for (int64_t i = 0; i < result.solution.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.solution.data()[i]));
  }
}

TEST(CgRecoveryTest, NonFiniteRhsRejectedUpFront) {
  Tensor b = Tensor::FromVector({1.0, 2.0});
  b.at(1) = std::numeric_limits<double>::quiet_NaN();
  int applications = 0;
  const LinearOperator identity = [&applications](const Tensor& x) {
    ++applications;
    return x.Clone();
  };
  const CgResult result = ConjugateGradient(identity, b);
  EXPECT_EQ(result.outcome, CgOutcome::kBreakdown);
  EXPECT_EQ(applications, 0);
  EXPECT_TRUE(std::isnan(result.residual_norm));
  for (int64_t i = 0; i < result.solution.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.solution.data()[i], 0.0);
  }
}

}  // namespace
}  // namespace msopds
