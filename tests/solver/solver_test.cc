#include <gtest/gtest.h>

#include <cmath>

#include "solver/conjugate_gradient.h"
#include "solver/dense_solver.h"
#include "util/rng.h"

namespace msopds {
namespace {

// Random symmetric positive definite matrix A = M M^T + d I.
Tensor RandomSpd(int64_t n, Rng* rng, double diag = 0.5) {
  Tensor m({n, n});
  for (int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-1, 1);
  Tensor a({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < n; ++k) s += m.at(i, k) * m.at(j, k);
      a.at(i, j) = s + (i == j ? diag : 0.0);
    }
  }
  return a;
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  const int64_t n = a.dim(0);
  Tensor y({n});
  for (int64_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < n; ++j) s += a.at(i, j) * x.at(j);
    y.at(i) = s;
  }
  return y;
}

TEST(DenseSolverTest, SolvesKnownSystem) {
  const Tensor a = Tensor::FromMatrix(2, 2, {2, 1, 1, 3});
  const Tensor b = Tensor::FromVector({5, 10});
  auto x = SolveDense(a, b);
  ASSERT_TRUE(x.ok());
  // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
  EXPECT_NEAR(x.value().at(0), 1.0, 1e-10);
  EXPECT_NEAR(x.value().at(1), 3.0, 1e-10);
}

TEST(DenseSolverTest, SingularMatrixFails) {
  const Tensor a = Tensor::FromMatrix(2, 2, {1, 2, 2, 4});
  const Tensor b = Tensor::FromVector({1, 2});
  EXPECT_FALSE(SolveDense(a, b).ok());
}

TEST(DenseSolverTest, PivotingHandlesZeroDiagonal) {
  const Tensor a = Tensor::FromMatrix(2, 2, {0, 1, 1, 0});
  const Tensor b = Tensor::FromVector({3, 7});
  auto x = SolveDense(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value().at(0), 7.0, 1e-12);
  EXPECT_NEAR(x.value().at(1), 3.0, 1e-12);
}

TEST(DenseSolverTest, MaterializeReconstructsOperator) {
  const Tensor a = Tensor::FromMatrix(2, 2, {1, 2, 3, 4});
  const Tensor m =
      Materialize([&](const Tensor& v) { return MatVec(a, v); }, 2);
  EXPECT_TRUE(AllClose(m, a));
}

TEST(CgTest, SolvesIdentityInOneIteration) {
  const Tensor b = Tensor::FromVector({1, 2, 3});
  const CgResult result =
      ConjugateGradient([](const Tensor& v) { return v.Clone(); }, b);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 2);
  EXPECT_TRUE(AllClose(result.solution, b, 1e-8));
}

TEST(CgTest, ZeroRhsReturnsZero) {
  const Tensor b = Tensor::Zeros({4});
  const CgResult result =
      ConjugateGradient([](const Tensor& v) { return v.Clone(); }, b);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_TRUE(AllClose(result.solution, b));
}

TEST(CgTest, DampingSolvesShiftedSystem) {
  // A = I, damping 1 -> solves 2x = b.
  CgOptions options;
  options.damping = 1.0;
  const Tensor b = Tensor::FromVector({2, 4});
  const CgResult result =
      ConjugateGradient([](const Tensor& v) { return v.Clone(); }, b, options);
  EXPECT_TRUE(AllClose(result.solution, Tensor::FromVector({1, 2}), 1e-8));
}

class CgRandomSpdTest : public ::testing::TestWithParam<int> {};

TEST_P(CgRandomSpdTest, MatchesDenseSolver) {
  const int64_t n = 3 + GetParam() % 6;
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  const Tensor a = RandomSpd(n, &rng);
  Tensor b({n});
  for (int64_t i = 0; i < n; ++i) b.at(i) = rng.Uniform(-2, 2);

  CgOptions options;
  options.max_iterations = 200;
  options.relative_tolerance = 1e-10;
  const CgResult cg = ConjugateGradient(
      [&](const Tensor& v) { return MatVec(a, v); }, b, options);
  const auto dense = SolveDense(a, b);
  ASSERT_TRUE(dense.ok());
  EXPECT_TRUE(cg.converged);
  EXPECT_TRUE(AllClose(cg.solution, dense.value(), 1e-6))
      << "cg " << cg.solution.DebugString() << " dense "
      << dense.value().DebugString();
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, CgRandomSpdTest,
                         ::testing::Range(0, 12));

TEST(CgTest, RespectsIterationLimit) {
  Rng rng(99);
  const Tensor a = RandomSpd(8, &rng, 0.01);
  Tensor b({8});
  for (int64_t i = 0; i < 8; ++i) b.at(i) = rng.Uniform(-1, 1);
  CgOptions options;
  options.max_iterations = 2;
  options.relative_tolerance = 1e-14;
  const CgResult result = ConjugateGradient(
      [&](const Tensor& v) { return MatVec(a, v); }, b, options);
  EXPECT_LE(result.iterations, 2);
}

}  // namespace
}  // namespace msopds
