#include "util/sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace msopds {
namespace {

// The annotation macros must compile to working code on every toolchain
// (they expand to attributes on Clang and to nothing elsewhere); this
// struct is the canonical usage pattern the thread-safety build checks.
struct AnnotatedCounter {
  int Get() const MSOPDS_EXCLUDES(mu) {
    MutexLock lock(mu);
    return value;
  }
  void Increment() MSOPDS_EXCLUDES(mu) {
    MutexLock lock(mu);
    ++value;
  }

  mutable Mutex mu;
  int value MSOPDS_GUARDED_BY(mu) = 0;
};

TEST(SyncTest, MutexLockSerializesIncrements) {
  AnnotatedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIterations; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(), kThreads * kIterations);
}

TEST(SyncTest, MutexLockMidScopeUnlockRelock) {
  Mutex mu;
  int value = 0;
  MutexLock lock(mu);
  value = 1;
  lock.Unlock();
  // Another thread can take the mutex while this scope holds none.
  std::thread outsider([&mu, &value] {
    MutexLock inner(mu);
    value = 2;
  });
  outsider.join();
  lock.Lock();
  EXPECT_EQ(value, 2);
}

TEST(SyncTest, CondVarWaitSeesProducedValue) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int payload = 0;

  std::thread producer([&] {
    MutexLock lock(mu);
    payload = 42;
    ready = true;
    cv.NotifyOne();
  });

  {
    MutexLock lock(mu);
    // The canonical wait shape under the annotated layer: a manual
    // predicate loop (CondVar deliberately has no predicate overload —
    // Clang's analysis can't see the lock through a lambda).
    while (!ready) cv.Wait(lock);
    EXPECT_EQ(payload, 42);
  }
  producer.join();
}

TEST(SyncTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(lock, std::chrono::milliseconds(5)));
}

TEST(SyncTest, WaitUntilReportsNotifyBeforeDeadline) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });

  bool notified = false;
  {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!ready) {
      if (!cv.WaitUntil(lock, deadline)) break;
    }
    notified = ready;
  }
  producer.join();
  EXPECT_TRUE(notified);
}

}  // namespace
}  // namespace msopds
