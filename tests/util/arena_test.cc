// Tensor-buffer arena: size classes, free-list recycling, scoped bulk
// release, cross-thread frees, stats accounting, and the Debug/ASan
// poison contract for recycled blocks (DESIGN.md "Memory model").

#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "tensor/tensor.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MSOPDS_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define MSOPDS_TEST_ASAN 1
#endif

namespace msopds {
namespace {

// The arena is process-global and check.sh runs the suite with
// MSOPDS_ARENA=0 as well, so every test forces recycling on and
// restores the previous mode (these tests exercise the allocator
// itself; determinism with the pool off is memory_determinism_test's
// job).
class ArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = Arena::Global().SetEnabled(true);
    Arena::Global().Trim();
    Arena::Global().ResetStats();
  }
  void TearDown() override {
    Arena::Global().SetEnabled(previous_);
    Arena::Global().Trim();
  }

 private:
  bool previous_ = true;
};

TEST_F(ArenaTest, SizeClassesRoundUpToPowersOfTwo) {
  EXPECT_EQ(Arena::SizeClassCapacity(1), Arena::kMinClassDoubles);
  EXPECT_EQ(Arena::SizeClassCapacity(64), 64);
  EXPECT_EQ(Arena::SizeClassCapacity(65), 128);
  EXPECT_EQ(Arena::SizeClassCapacity(1000), 1024);
  EXPECT_EQ(Arena::SizeClassCapacity(1024), 1024);
  EXPECT_EQ(Arena::SizeClassCapacity(1025), 2048);
}

TEST_F(ArenaTest, RecyclesBlocksOfTheSameClass) {
  Arena& arena = Arena::Global();
  double* first = arena.Allocate(100);
  arena.Deallocate(first, 100);
  // 100 and 120 share the 128-double class, so the cached block is
  // handed back out.
  double* second = arena.Allocate(120);
  EXPECT_EQ(second, first);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.alloc_calls, 2);
  EXPECT_EQ(stats.pool_hits, 1);
  EXPECT_EQ(stats.heap_allocs(), 1);
  arena.Deallocate(second, 120);
}

TEST_F(ArenaTest, DifferentClassesDoNotShareBlocks) {
  Arena& arena = Arena::Global();
  double* small = arena.Allocate(64);
  arena.Deallocate(small, 64);
  double* large = arena.Allocate(512);
  EXPECT_NE(large, small);
  EXPECT_EQ(arena.stats().pool_hits, 0);
  arena.Deallocate(large, 512);
}

TEST_F(ArenaTest, DisabledModeBypassesThePool) {
  Arena& arena = Arena::Global();
  arena.SetEnabled(false);
  double* block = arena.Allocate(256);
  arena.Deallocate(block, 256);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.pool_hits, 0);
  EXPECT_EQ(stats.bytes_cached, 0);
  double* again = arena.Allocate(256);
  EXPECT_EQ(arena.stats().pool_hits, 0);
  arena.Deallocate(again, 256);
}

TEST_F(ArenaTest, StatsTrackLiveAndHighWaterBytes) {
  Arena& arena = Arena::Global();
  double* a = arena.Allocate(64);   // 512 payload bytes
  double* b = arena.Allocate(128);  // 1024 payload bytes
  ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.bytes_live, 512 + 1024);
  EXPECT_EQ(stats.high_water_bytes, 512 + 1024);
  arena.Deallocate(b, 128);
  stats = arena.stats();
  EXPECT_EQ(stats.bytes_live, 512);
  EXPECT_EQ(stats.high_water_bytes, 512 + 1024);
  arena.ResetPeak();
  EXPECT_EQ(arena.stats().high_water_bytes, 512);
  arena.Deallocate(a, 64);
}

TEST_F(ArenaTest, TrimReturnsCachedBlocksToTheHeap) {
  Arena& arena = Arena::Global();
  double* block = arena.Allocate(64);
  arena.Deallocate(block, 64);
  EXPECT_GT(arena.stats().bytes_cached, 0);
  arena.Trim();
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.bytes_cached, 0);
  EXPECT_EQ(stats.trims, 1);
}

TEST_F(ArenaTest, RegionTrimsOnOutermostExitOnly) {
  Arena& arena = Arena::Global();
  {
    ArenaRegion outer;
    double* block = arena.Allocate(64);
    arena.Deallocate(block, 64);
    {
      ArenaRegion inner;
      // Nested exit must not release the cache the outer phase is
      // still recycling from.
    }
    EXPECT_GT(arena.stats().bytes_cached, 0);
  }
  EXPECT_EQ(arena.stats().bytes_cached, 0);
}

TEST_F(ArenaTest, BlocksFreedOnAnotherThreadAreRecycled) {
  Arena& arena = Arena::Global();
  double* block = arena.Allocate(1024);
  std::thread worker([&] { arena.Deallocate(block, 1024); });
  worker.join();
  double* again = arena.Allocate(1024);
  EXPECT_EQ(again, block);
  EXPECT_EQ(arena.stats().pool_hits, 1);
  arena.Deallocate(again, 1024);
}

TEST_F(ArenaTest, TensorBuffersComeFromTheArena) {
  Arena& arena = Arena::Global();
  const ArenaStats before = arena.stats();
  {
    Tensor t({64});
    EXPECT_GT(arena.stats().bytes_live, before.bytes_live);
  }
  // The tensor's storage went back to the free lists, not the heap.
  EXPECT_EQ(arena.stats().bytes_live, before.bytes_live);
  EXPECT_GT(arena.stats().bytes_cached, before.bytes_cached);
}

#if !defined(NDEBUG) || defined(MSOPDS_TEST_ASAN)
TEST_F(ArenaTest, RecycledBlocksCarryThePoisonPattern) {
  Arena& arena = Arena::Global();
  double* block = arena.Allocate(64);
  for (int i = 0; i < 64; ++i) block[i] = 1.0;
  arena.Deallocate(block, 64);
  // Reading through the re-allocation is legal (the block is unpoisoned
  // again); the Debug scribble from the free must still be there, so a
  // kernel that relied on stale contents would have seen NaNs.
  double* again = arena.Allocate(64);
  ASSERT_EQ(again, block);
  const uint64_t* words = reinterpret_cast<const uint64_t*>(again);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(words[i], Arena::PoisonPattern()) << "word " << i;
  }
  arena.Deallocate(again, 64);
}
#endif

#ifdef MSOPDS_TEST_ASAN
TEST_F(ArenaTest, UseAfterFreeOfCachedBlockDiesUnderAsan) {
  // A stale pointer into a cached (recycled-but-unclaimed) block must
  // fault loudly instead of silently reading the free list's memory.
  EXPECT_DEATH(
      {
        Arena& arena = Arena::Global();
        double* block = arena.Allocate(64);
        arena.Deallocate(block, 64);
        volatile double stale = block[0];
        (void)stale;
      },
      "use-after-poison");
}
#endif

}  // namespace
}  // namespace msopds
