#include "util/json_writer.h"

#include <gtest/gtest.h>

namespace msopds {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String("msopds");
  json.Key("count").Int(3);
  json.Key("score").Double(1.5);
  json.Key("ok").Bool(true);
  json.Key("missing").Null();
  json.EndObject();
  EXPECT_EQ(json.TakeString(),
            "{\"name\":\"msopds\",\"count\":3,\"score\":1.5,\"ok\":true,"
            "\"missing\":null}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter json;
  json.BeginObject();
  json.Key("rows").BeginArray();
  json.BeginObject();
  json.Key("b").Int(2);
  json.EndObject();
  json.Int(7);
  json.BeginArray().Int(1).Int(2).EndArray();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.TakeString(), "{\"rows\":[{\"b\":2},7,[1,2]]}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  JsonWriter json;
  json.String("a\"b\\c\nd\te");
  EXPECT_EQ(json.TakeString(), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeExplicitStrings) {
  JsonWriter json;
  json.BeginArray();
  json.Double(std::numeric_limits<double>::infinity());
  json.Double(-std::numeric_limits<double>::infinity());
  json.Double(std::numeric_limits<double>::quiet_NaN());
  json.EndArray();
  EXPECT_EQ(json.TakeString(), "[\"inf\",\"-inf\",\"nan\"]");
}

TEST(JsonWriterTest, TopLevelScalarAllowed) {
  JsonWriter json;
  json.Int(42);
  EXPECT_EQ(json.TakeString(), "42");
}

TEST(JsonWriterTest, ResetAfterTake) {
  JsonWriter json;
  json.Int(1);
  EXPECT_EQ(json.TakeString(), "1");
  json.BeginArray().EndArray();
  EXPECT_EQ(json.TakeString(), "[]");
}

TEST(JsonWriterDeathTest, UnbalancedContainersDie) {
  JsonWriter json;
  json.BeginObject();
  EXPECT_DEATH(json.TakeString(), "unclosed");
}

TEST(JsonWriterDeathTest, ValueWithoutKeyInObjectDies) {
  JsonWriter json;
  json.BeginObject();
  EXPECT_DEATH(json.Int(1), "Key");
}

TEST(JsonWriterDeathTest, TwoKeysInARowDie) {
  JsonWriter json;
  json.BeginObject();
  json.Key("a");
  EXPECT_DEATH(json.Key("b"), "two keys");
}

}  // namespace
}  // namespace msopds
