#include "util/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

namespace msopds {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

CellRecord MakeRecord(const std::string& key, double rbar, double hr) {
  CellRecord record;
  record.key = key;
  record.mean_average_rating = rbar;
  record.mean_hit_rate = hr;
  record.repeats = 3;
  return record;
}

TEST(CellRecordTest, JsonRoundTrip) {
  CellRecord record = MakeRecord("ciao|MSOPDS|b=2", 3.75, 0.5);
  record.unhealthy_repeats = 1;
  auto parsed = ParseCellRecord(CellRecordToJson(record));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().key, record.key);
  EXPECT_TRUE(parsed.value().ok);
  EXPECT_DOUBLE_EQ(parsed.value().mean_average_rating, 3.75);
  EXPECT_DOUBLE_EQ(parsed.value().mean_hit_rate, 0.5);
  EXPECT_EQ(parsed.value().repeats, 3);
  EXPECT_EQ(parsed.value().unhealthy_repeats, 1);
  EXPECT_TRUE(parsed.value().error.empty());
}

TEST(CellRecordTest, FailureRecordRoundTrip) {
  CellRecord record;
  record.key = "epinions|MSOPDS|b=5";
  record.ok = false;
  record.error = "victim training: epoch 3 non-finite after 3 retries";
  auto parsed = ParseCellRecord(CellRecordToJson(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().ok);
  EXPECT_EQ(parsed.value().error, record.error);
}

TEST(CellRecordTest, NonFiniteMetricsRoundTrip) {
  CellRecord record = MakeRecord("k", std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::infinity());
  auto parsed = ParseCellRecord(CellRecordToJson(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isnan(parsed.value().mean_average_rating));
  EXPECT_TRUE(std::isinf(parsed.value().mean_hit_rate));
}

TEST(CellRecordTest, KeyWithQuotesAndBackslashesRoundTrips) {
  CellRecord record = MakeRecord("odd \"key\"\\with\tescapes", 1.0, 0.0);
  auto parsed = ParseCellRecord(CellRecordToJson(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().key, record.key);
}

TEST(CellRecordTest, ThreadsRoundTripsAndLegacyRecordsDefaultToOne) {
  CellRecord record = MakeRecord("k", 1.0, 0.5);
  record.threads = 4;
  auto parsed = ParseCellRecord(CellRecordToJson(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().threads, 4);
  // Records written before the parallel runtime carry no "threads" field:
  // those sweeps ran on the serial kernels.
  auto legacy = ParseCellRecord(
      "{\"key\":\"k\",\"ok\":true,\"rbar\":1.0,\"hr\":0.5,\"repeats\":3,"
      "\"unhealthy_repeats\":0,\"error\":\"\"}");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy.value().threads, 1);
}

TEST(CellRecordTest, WorkerIdRoundTripsAndLegacyRecordsDefaultToZero) {
  CellRecord record = MakeRecord("k", 1.0, 0.5);
  record.worker_id = 3;
  auto parsed = ParseCellRecord(CellRecordToJson(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().worker_id, 3);
  // Records written before the sweep orchestrator carry no "worker"
  // field: those came from the single-process driver, worker 0
  // (mirroring the `threads` precedent above).
  auto legacy = ParseCellRecord(
      "{\"key\":\"k\",\"ok\":true,\"rbar\":1.0,\"hr\":0.5,\"repeats\":3,"
      "\"unhealthy_repeats\":0,\"threads\":1,\"error\":\"\"}");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy.value().worker_id, 0);
}

TEST(CellRecordTest, MalformedLineRejected) {
  EXPECT_FALSE(ParseCellRecord("{\"key\":\"a\",\"ok\":tr").ok());
  EXPECT_FALSE(ParseCellRecord("not json at all").ok());
  EXPECT_FALSE(ParseCellRecord("").ok());
}

TEST(CellRecordTest, ParseErrorsCarryFileAndRowContext) {
  auto bad = ParseCellRecord("not json at all", "sweep.ckpt:12");
  ASSERT_FALSE(bad.ok());
  // The operator must be able to open the offending row directly.
  EXPECT_NE(bad.status().message().find("sweep.ckpt:12"), std::string::npos)
      << bad.status().ToString();
  auto missing_field = ParseCellRecord("{\"ok\":true}", "sweep.ckpt:3");
  ASSERT_FALSE(missing_field.ok());
  EXPECT_NE(missing_field.status().message().find("sweep.ckpt:3"),
            std::string::npos);
  EXPECT_NE(missing_field.status().message().find("key"), std::string::npos);
}

TEST(CheckpointStoreTest, InMemoryWhenPathEmpty) {
  CheckpointStore store("");
  EXPECT_FALSE(store.persistent());
  store.Append(MakeRecord("a", 1.0, 0.0));
  ASSERT_NE(store.Find("a"), nullptr);
  EXPECT_EQ(store.Find("missing"), nullptr);
}

TEST(CheckpointStoreTest, PersistsAndReloads) {
  const std::string path = TempPath("ckpt_reload.jsonl");
  std::remove(path.c_str());
  {
    CheckpointStore store(path);
    EXPECT_EQ(store.size(), 0u);
    store.Append(MakeRecord("a", 1.5, 0.25));
    store.Append(MakeRecord("b", 2.5, 0.75));
  }
  CheckpointStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
  ASSERT_NE(reloaded.Find("a"), nullptr);
  EXPECT_DOUBLE_EQ(reloaded.Find("a")->mean_average_rating, 1.5);
  ASSERT_NE(reloaded.Find("b"), nullptr);
  EXPECT_DOUBLE_EQ(reloaded.Find("b")->mean_hit_rate, 0.75);
  // Reloaded records know which row they came from (1-based), so resume
  // refusals can say "<file>:<row>"; fresh appends carry no source row.
  EXPECT_EQ(reloaded.Find("a")->source_line, 1);
  EXPECT_EQ(reloaded.Find("b")->source_line, 2);
}

TEST(CheckpointStoreTest, DuplicateKeysKeepTheLastRecord) {
  const std::string path = TempPath("ckpt_dupes.jsonl");
  std::remove(path.c_str());
  {
    CheckpointStore store(path);
    store.Append(MakeRecord("a", 1.0, 0.0));
    store.Append(MakeRecord("a", 9.0, 1.0));
  }
  CheckpointStore reloaded(path);
  ASSERT_NE(reloaded.Find("a"), nullptr);
  EXPECT_DOUBLE_EQ(reloaded.Find("a")->mean_average_rating, 9.0);
}

TEST(CheckpointStoreTest, TornTrailingLineIsDropped) {
  const std::string path = TempPath("ckpt_torn.jsonl");
  std::remove(path.c_str());
  {
    CheckpointStore store(path);
    store.Append(MakeRecord("whole", 1.0, 0.5));
  }
  // Simulate a crash mid-write: an unterminated, truncated record.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"key\":\"torn\",\"ok\":tru";
  }
  CheckpointStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_NE(reloaded.Find("whole"), nullptr);
  EXPECT_EQ(reloaded.Find("torn"), nullptr);
}

TEST(CheckpointStoreTest, MissingFileStartsEmpty) {
  CheckpointStore store(TempPath("ckpt_never_written.jsonl"));
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace msopds
