#include "util/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/tensor.h"

namespace msopds {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(AllFiniteTest, FiniteTensorPasses) {
  const Tensor t = Tensor::FromVector({1.0, -2.5, 0.0, 1e300});
  EXPECT_TRUE(AllFinite(t));
  EXPECT_EQ(CountNonFinite(t), 0);
}

TEST(AllFiniteTest, DetectsNanAndInf) {
  EXPECT_FALSE(AllFinite(Tensor::FromVector({1.0, kNan})));
  EXPECT_FALSE(AllFinite(Tensor::FromVector({kInf, 0.0})));
  EXPECT_FALSE(AllFinite(Tensor::FromVector({-kInf})));
  EXPECT_EQ(CountNonFinite(Tensor::FromVector({kNan, 1.0, kInf})), 2);
}

TEST(AllFiniteTest, VectorOverloadChecksEveryTensor) {
  std::vector<Tensor> healthy = {Tensor::FromVector({1.0}),
                                 Tensor::FromVector({2.0, 3.0})};
  EXPECT_TRUE(AllFinite(healthy));
  healthy.push_back(Tensor::FromVector({kNan}));
  EXPECT_FALSE(AllFinite(healthy));
}

TEST(DivergenceDetectorTest, HealthyLossSequencePasses) {
  DivergenceDetector detector(DivergenceOptions{});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(detector.Observe(1.0 / (1 + i)), Health::kHealthy);
  }
  EXPECT_EQ(detector.unhealthy_count(), 0);
}

TEST(DivergenceDetectorTest, NonFiniteLossFlagged) {
  DivergenceDetector detector(DivergenceOptions{});
  EXPECT_EQ(detector.Observe(kNan), Health::kNonFinite);
  EXPECT_EQ(detector.Observe(kInf), Health::kNonFinite);
  EXPECT_EQ(detector.unhealthy_count(), 2);
}

TEST(DivergenceDetectorTest, ExplosionAfterWindowFlagged) {
  DivergenceOptions options;
  options.window = 3;
  options.factor = 10.0;
  DivergenceDetector detector(options);
  EXPECT_EQ(detector.Observe(1.0), Health::kHealthy);
  EXPECT_EQ(detector.Observe(0.9), Health::kHealthy);
  EXPECT_EQ(detector.Observe(0.8), Health::kHealthy);
  // 0.8 * 10 + slack << 1000: diverged.
  EXPECT_EQ(detector.Observe(1000.0), Health::kDiverged);
}

TEST(DivergenceDetectorTest, NoFlagBeforeWindowFull) {
  DivergenceOptions options;
  options.window = 4;
  options.factor = 2.0;
  DivergenceDetector detector(options);
  // Big jump on the second observation: window not full yet, no verdict.
  EXPECT_EQ(detector.Observe(1.0), Health::kHealthy);
  EXPECT_EQ(detector.Observe(100.0), Health::kHealthy);
}

TEST(DivergenceDetectorTest, ResetClearsWindow) {
  DivergenceOptions options;
  options.window = 2;
  options.factor = 10.0;
  DivergenceDetector detector(options);
  detector.Observe(1.0);
  detector.Observe(1.0);
  detector.Reset();
  // After the reset the window refills from scratch, so a large loss is
  // not compared against the pre-reset window.
  EXPECT_EQ(detector.Observe(500.0), Health::kHealthy);
}

TEST(HealthToStringTest, AllValuesNamed) {
  EXPECT_FALSE(HealthToString(Health::kHealthy).empty());
  EXPECT_FALSE(HealthToString(Health::kNonFinite).empty());
  EXPECT_FALSE(HealthToString(Health::kDiverged).empty());
}

}  // namespace
}  // namespace msopds
