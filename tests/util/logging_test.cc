#include "util/logging.h"

#include <gtest/gtest.h>

namespace msopds {
namespace {

TEST(LoggingTest, SeverityRoundTrip) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, InfoDoesNotAbort) {
  MSOPDS_LOG(Info) << "informational message " << 42;
  MSOPDS_LOG(Warning) << "warning message";
  SUCCEED();
}

TEST(LoggingTest, PassingChecksDoNotAbort) {
  MSOPDS_CHECK(true) << "never shown";
  MSOPDS_CHECK_EQ(1, 1);
  MSOPDS_CHECK_NE(1, 2);
  MSOPDS_CHECK_LT(1, 2);
  MSOPDS_CHECK_LE(2, 2);
  MSOPDS_CHECK_GT(3, 2);
  MSOPDS_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(MSOPDS_CHECK(false) << "boom", "Check failed: false");
}

TEST(LoggingDeathTest, FailedCheckOpPrintsValues) {
  EXPECT_DEATH(MSOPDS_CHECK_EQ(1, 2), "1 vs 2");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(MSOPDS_LOG(Fatal) << "fatal message", "fatal message");
}

}  // namespace
}  // namespace msopds
