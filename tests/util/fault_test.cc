#include "util/fault.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "tensor/tensor.h"

namespace msopds {
namespace {

FaultConfig SurrogateOnly(uint64_t seed, double probability) {
  FaultConfig config;
  config.seed = seed;
  config.surrogate_nan_probability = probability;
  return config;
}

std::vector<bool> DrawSurrogate(int n) {
  std::vector<bool> draws;
  draws.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    draws.push_back(FaultInjector::Global().ShouldCorruptSurrogateStep());
  }
  return draws;
}

TEST(FaultInjectorTest, DisabledByDefaultAndInjectsNothing) {
  ScopedFaultInjection scope(FaultConfig{});
  EXPECT_FALSE(FaultInjector::Global().enabled());
  std::vector<Tensor> grads = {Tensor::FromVector({1.0, 2.0})};
  EXPECT_FALSE(FaultInjector::Global().MaybeCorruptTrainerGradients(&grads));
  EXPECT_DOUBLE_EQ(grads[0].at(0), 1.0);
  EXPECT_DOUBLE_EQ(grads[0].at(1), 2.0);
  EXPECT_EQ(FaultInjector::Global().total_injected(), 0);
}

TEST(FaultInjectorTest, InjectionSequenceIsDeterministicInSeed) {
  ScopedFaultInjection scope(SurrogateOnly(123, 0.5));
  const std::vector<bool> first = DrawSurrogate(200);
  FaultInjector::Global().Configure(SurrogateOnly(123, 0.5));
  const std::vector<bool> second = DrawSurrogate(200);
  EXPECT_EQ(first, second);

  FaultInjector::Global().Configure(SurrogateOnly(124, 0.5));
  const std::vector<bool> other_seed = DrawSurrogate(200);
  EXPECT_NE(first, other_seed);
}

TEST(FaultInjectorTest, SitesDrawFromIndependentStreams) {
  FaultConfig config = SurrogateOnly(9, 0.5);
  config.trainer_nan_probability = 0.5;
  ScopedFaultInjection scope(config);
  const std::vector<bool> baseline = DrawSurrogate(100);

  // Interleaving queries at the trainer site must not perturb the
  // surrogate site's stream.
  FaultInjector::Global().Configure(config);
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    std::vector<Tensor> grads = {Tensor::FromVector({1.0})};
    FaultInjector::Global().MaybeCorruptTrainerGradients(&grads);
    interleaved.push_back(
        FaultInjector::Global().ShouldCorruptSurrogateStep());
  }
  EXPECT_EQ(baseline, interleaved);
}

TEST(FaultInjectorTest, CertainTrainerFaultPutsNanInEveryTensor) {
  FaultConfig config;
  config.seed = 7;
  config.trainer_nan_probability = 1.0;
  ScopedFaultInjection scope(config);
  std::vector<Tensor> grads = {Tensor::FromVector({1.0, 2.0, 3.0}),
                               Tensor::FromVector({4.0})};
  EXPECT_TRUE(FaultInjector::Global().MaybeCorruptTrainerGradients(&grads));
  for (const Tensor& g : grads) {
    int nans = 0;
    for (int64_t i = 0; i < g.size(); ++i) {
      if (std::isnan(g.data()[i])) ++nans;
    }
    EXPECT_EQ(nans, 1);
  }
  EXPECT_EQ(
      FaultInjector::Global().injected_count(FaultSite::kTrainerGradient), 1);
}

TEST(FaultInjectorTest, CrashFiresOnceAtTheConfiguredCell) {
  FaultConfig config;
  config.crash_at_cell = 2;
  ScopedFaultInjection scope(config);
  FaultInjector& faults = FaultInjector::Global();
  EXPECT_FALSE(faults.ShouldCrashAtCell(0));
  EXPECT_FALSE(faults.ShouldCrashAtCell(1));
  EXPECT_TRUE(faults.ShouldCrashAtCell(2));
  // One-shot: a resumed run gets past the crash point.
  EXPECT_FALSE(faults.ShouldCrashAtCell(2));
  EXPECT_FALSE(faults.ShouldCrashAtCell(3));
}

TEST(ScopedFaultInjectionTest, RestoresDisabledInjectorOnExit) {
  {
    ScopedFaultInjection scope(SurrogateOnly(1, 1.0));
    EXPECT_TRUE(FaultInjector::Global().enabled());
    EXPECT_TRUE(FaultInjector::Global().ShouldCorruptSurrogateStep());
  }
  EXPECT_FALSE(FaultInjector::Global().enabled());
  EXPECT_FALSE(FaultInjector::Global().ShouldCorruptSurrogateStep());
}

// Regression for a latent race surfaced by the thread-safety
// annotations: config() used to return a const reference to config_,
// readable while a concurrent Configure() rewrote it. It now snapshots
// by value under the injector mutex, so every observed config is one
// that was actually installed — never a torn mix of two.
TEST(FaultInjectorTest, ConfigSnapshotIsRaceFree) {
  ScopedFaultInjection scope(SurrogateOnly(1, 0.25));
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    uint64_t flip = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const bool odd = (++flip % 2) == 1;
      FaultInjector::Global().Configure(
          SurrogateOnly(odd ? 2 : 1, odd ? 0.5 : 0.25));
    }
  });
  for (int i = 0; i < 5000; ++i) {
    const FaultConfig snapshot = FaultInjector::Global().config();
    const bool consistent =
        (snapshot.seed == 1 && snapshot.surrogate_nan_probability == 0.25) ||
        (snapshot.seed == 2 && snapshot.surrogate_nan_probability == 0.5);
    ASSERT_TRUE(consistent)
        << "torn config: seed=" << snapshot.seed
        << " p=" << snapshot.surrogate_nan_probability;
    ASSERT_TRUE(FaultInjector::Global().enabled());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace msopds
