// Tests of the deterministic parallel runtime (util/thread_pool):
// fixed chunk grid, bit-identical reductions at any thread count,
// exception propagation, and nested-parallelism rejection.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace msopds {
namespace {

TEST(NumChunksTest, GridIsPureFunctionOfTotalAndGrain) {
  EXPECT_EQ(NumChunks(0, 8), 0);
  EXPECT_EQ(NumChunks(1, 8), 1);
  EXPECT_EQ(NumChunks(8, 8), 1);
  EXPECT_EQ(NumChunks(9, 8), 2);
  EXPECT_EQ(NumChunks(64, 8), 8);
  EXPECT_EQ(NumChunks(65, 8), 9);
}

// The chunk boundaries handed to the functor must depend only on
// (total, grain), never on the thread count.
TEST(ThreadPoolTest, ChunkGridIndependentOfThreadCount) {
  constexpr int64_t kTotal = 1000;
  constexpr int64_t kGrain = 64;
  auto collect = [&](int threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::vector<int64_t>> chunks;
    pool.ParallelFor(kTotal, kGrain,
                     [&](int64_t begin, int64_t end, int64_t chunk) {
                       std::lock_guard<std::mutex> lock(mu);
                       chunks.push_back({chunk, begin, end});
                     });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = collect(1);
  EXPECT_EQ(serial.size(), static_cast<size_t>(NumChunks(kTotal, kGrain)));
  EXPECT_EQ(serial, collect(2));
  EXPECT_EQ(serial, collect(7));
}

TEST(ThreadPoolTest, ParallelForCoversEveryElementExactlyOnce) {
  constexpr int64_t kTotal = 4097;  // deliberately not a grain multiple
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(kTotal);
  pool.ParallelFor(kTotal, 256,
                   [&](int64_t begin, int64_t end, int64_t) {
                     for (int64_t i = begin; i < end; ++i) {
                       touched[static_cast<size_t>(i)].fetch_add(1);
                     }
                   });
  for (int64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(touched[static_cast<size_t>(i)].load(), 1) << "element " << i;
  }
}

TEST(ThreadPoolTest, ReduceSumBitIdenticalAcrossThreadCounts) {
  constexpr int64_t kTotal = 100000;
  constexpr int64_t kGrain = 1024;
  Rng rng(11);
  std::vector<double> values(kTotal);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  auto chunk_sum = [&values](int64_t begin, int64_t end) {
    double s = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      s += values[static_cast<size_t>(i)];
    }
    return s;
  };
  auto reduce = [&](int threads) {
    ThreadPool pool(threads);
    return pool.ParallelReduceSum(kTotal, kGrain, chunk_sum);
  };
  const double serial = reduce(1);
  for (int threads : {2, 3, 7}) {
    const double parallel = reduce(threads);
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "threads=" << threads << ": " << serial << " vs " << parallel;
  }
}

// One-chunk grids must match a plain serial accumulation exactly, so
// small tensors keep their pre-pool numerics bit for bit.
TEST(ThreadPoolTest, SingleChunkReduceMatchesPlainLoop) {
  const std::vector<double> values = {0.1, -0.7, 0.3, 1e-17, 0.9};
  double plain = 0.0;
  for (double v : values) plain += v;
  ThreadPool pool(4);
  const double reduced = pool.ParallelReduceSum(
      static_cast<int64_t>(values.size()), 1024,
      [&values](int64_t begin, int64_t end) {
        double s = 0.0;
        for (int64_t i = begin; i < end; ++i) {
          s += values[static_cast<size_t>(i)];
        }
        return s;
      });
  EXPECT_EQ(std::memcmp(&plain, &reduced, sizeof(double)), 0);
}

TEST(ThreadPoolTest, ReduceMaxFindsGlobalMax) {
  constexpr int64_t kTotal = 50000;
  Rng rng(5);
  std::vector<double> values(kTotal);
  for (double& v : values) v = rng.Uniform(-10.0, 10.0);
  values[31337] = 99.5;
  ThreadPool pool(3);
  const double best = pool.ParallelReduceMax(
      kTotal, 512, -1e300, [&values](int64_t begin, int64_t end) {
        double m = -1e300;
        for (int64_t i = begin; i < end; ++i) {
          m = std::max(m, values[static_cast<size_t>(i)]);
        }
        return m;
      });
  EXPECT_EQ(best, 99.5);
}

TEST(ThreadPoolTest, ExceptionFromChunkPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(1000, 64,
                         [](int64_t begin, int64_t, int64_t) {
                           if (begin == 640) {
                             throw std::runtime_error("chunk 10 failed");
                           }
                         }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool must stay usable after a failed region.
    std::atomic<int64_t> count{0};
    pool.ParallelFor(100, 10, [&count](int64_t begin, int64_t end, int64_t) {
      count.fetch_add(end - begin);
    });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, NestedParallelismRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 100;
  std::vector<int64_t> inner_sums(kOuter, 0);
  std::atomic<int> nested_regions_seen{0};
  pool.ParallelFor(kOuter, 1, [&](int64_t begin, int64_t, int64_t chunk) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // A nested ParallelFor is rejected as a parallel region: it runs its
    // chunks inline, serially, on this worker.
    int64_t local = 0;
    pool.ParallelFor(kInner, 16,
                     [&](int64_t inner_begin, int64_t inner_end, int64_t) {
                       EXPECT_TRUE(ThreadPool::InParallelRegion());
                       for (int64_t i = inner_begin; i < inner_end; ++i) {
                         local += i;
                       }
                     });
    inner_sums[static_cast<size_t>(begin)] = local;
    nested_regions_seen.fetch_add(1);
    (void)chunk;
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  EXPECT_EQ(nested_regions_seen.load(), kOuter);
  for (int64_t sum : inner_sums) {
    EXPECT_EQ(sum, kInner * (kInner - 1) / 2);
  }
}

TEST(ThreadPoolTest, SetNumThreadsClampsAndResizes) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.SetNumThreads(0);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.SetNumThreads(ThreadPool::kMaxThreads + 100);
  EXPECT_EQ(pool.num_threads(), ThreadPool::kMaxThreads);
  pool.SetNumThreads(2);
  std::atomic<int64_t> count{0};
  pool.ParallelFor(64, 4, [&count](int64_t begin, int64_t end, int64_t) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, DefaultNumThreadsHonorsEnvironment) {
  ::setenv("MSOPDS_THREADS", "5", /*overwrite=*/1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 5);
  ::setenv("MSOPDS_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
  ::unsetenv("MSOPDS_THREADS");
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

}  // namespace
}  // namespace msopds
