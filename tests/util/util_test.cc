#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "util/csv.h"
#include "util/status.h"
#include "util/string_util.h"

namespace msopds {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rating");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rating");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusTest, StatusOrHoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, StatusOrWorksWithoutDefaultConstructor) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  StatusOr<NoDefault> ok_case = NoDefault(7);
  ASSERT_TRUE(ok_case.ok());
  EXPECT_EQ(ok_case.value().value, 7);

  StatusOr<NoDefault> error_case = Status::Internal("boom");
  EXPECT_FALSE(error_case.ok());
  EXPECT_EQ(error_case.status().code(), StatusCode::kInternal);
}

TEST(StatusTest, StatusOrMoveExtractsValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  const auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \r\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

TEST(CsvTest, MissingFileReturnsNotFound) {
  auto rows = ReadDelimited("/nonexistent/path.tsv", '\t');
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, RoundTripSkipsCommentsAndBlanks) {
  const std::string path = ::testing::TempDir() + "/csv_test.tsv";
  ASSERT_TRUE(WriteDelimited(path, {{"1", "2", "3"}, {"a", "b", "c"}}, '\t')
                  .ok());
  // Append comment and blank line manually.
  {
    FILE* f = fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    fputs("# comment\n\n", f);
    fclose(f);
  }
  auto rows = ReadDelimited(path, '\t');
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][2], "3");
  EXPECT_EQ(rows.value()[1][0], "a");
  std::remove(path.c_str());
}

TEST(CsvTest, WithLinesTracksSourceLineNumbers) {
  const std::string path = ::testing::TempDir() + "/csv_lines_test.tsv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# header comment\nfirst\trow\n\nsecond\trow\n", f);
    fclose(f);
  }
  auto rows = ReadDelimitedWithLines(path, '\t');
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0].fields[0], "first");
  EXPECT_EQ(rows.value()[0].line, 2);  // the comment still counts a line
  EXPECT_EQ(rows.value()[1].fields[0], "second");
  EXPECT_EQ(rows.value()[1].line, 4);  // so does the blank line
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msopds
