#include "util/determinism_lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace msopds {
namespace {

namespace fs = std::filesystem;

// Writes injected fixture trees under the test temp dir and lints them.
// Each test asserts the linter fires on a planted violation and stays
// quiet once the violation is fixed or legitimately suppressed.
class DeterminismLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each test as its own process, possibly
    // in parallel, so a shared fixture path races on remove_all.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("determinism_lint_fixture_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << content;
  }

  LintReport Lint() { return RunDeterminismLint(root_.string()); }

  std::vector<std::string> Rules(const LintReport& report) {
    std::vector<std::string> rules;
    for (const LintFinding& finding : report.findings) {
      rules.push_back(finding.rule);
    }
    return rules;
  }

  fs::path root_;
};

TEST_F(DeterminismLintTest, CleanFileHasNoFindings) {
  WriteFile("core/clean.cc",
            "#include \"util/sync.h\"\n"
            "namespace msopds {\n"
            "int Twice(int x) { return 2 * x; }\n"
            "}  // namespace msopds\n");
  const LintReport report = Lint();
  EXPECT_EQ(report.files_scanned, 1);
  EXPECT_EQ(report.checks_run, kNumLintRules);
  EXPECT_TRUE(report.ok()) << FormatLintReport(report);
}

TEST_F(DeterminismLintTest, RawMutexOutsideSyncHeaderIsFlagged) {
  WriteFile("serve/raw.cc",
            "#include <mutex>\n"
            "std::mutex g_mu;\n"
            "void F() { std::lock_guard<std::mutex> lock(g_mu); }\n");
  const LintReport report = Lint();
  ASSERT_FALSE(report.ok());
  for (const std::string& rule : Rules(report)) {
    EXPECT_EQ(rule, "raw-sync");
  }
  EXPECT_GE(report.findings.size(), 2u);  // the include and the uses
}

TEST_F(DeterminismLintTest, SyncHeaderItselfIsExemptFromRawSync) {
  WriteFile("util/sync.h",
            "#include <mutex>\n"
            "class Mutex { std::mutex mu_; };\n");
  EXPECT_TRUE(Lint().ok());
}

TEST_F(DeterminismLintTest, AmbientRngIsFlaggedOutsideRngUnit) {
  WriteFile("attack/seedless.cc",
            "#include <cstdlib>\n"
            "int Draw() { return std::rand(); }\n"
            "long Now() { return time(nullptr); }\n");
  const LintReport report = Lint();
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.findings.size(), 2u);
  for (const std::string& rule : Rules(report)) {
    EXPECT_EQ(rule, "ambient-rng");
  }

  WriteFile("attack/seedless.cc", "int Draw(int x) { return x; }\n");
  WriteFile("util/rng.cc",
            "#include <random>\n"
            "unsigned Seed() { return std::random_device{}(); }\n");
  EXPECT_TRUE(Lint().ok());  // util/rng is the one sanctioned entropy tap
}

TEST_F(DeterminismLintTest, UnorderedIterationIsFlaggedUnlessMarked) {
  const std::string loop =
      "#include <unordered_map>\n"
      "#include <string>\n"
      "int Total(const std::unordered_map<std::string, int>& m) {\n"
      "  std::unordered_map<std::string, int> copy = m;\n"
      "  int total = 0;\n"
      "  for (const auto& entry : copy) total += entry.second;\n"
      "  return total;\n"
      "}\n";
  WriteFile("graph/iter.cc", loop);
  const LintReport report = Lint();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.findings[0].rule, "unordered-iteration");
  EXPECT_EQ(report.findings[0].file, "graph/iter.cc");

  // The same loop, proven commutative and annotated, passes.
  std::string marked = loop;
  marked.insert(marked.find("  for (const auto&"),
                "  // determinism-lint: order-insensitive (commutative +=)\n");
  WriteFile("graph/iter.cc", marked);
  EXPECT_TRUE(Lint().ok());
}

TEST_F(DeterminismLintTest, UnguardedMemberOfMutexOwnerIsFlagged) {
  WriteFile("serve/guarded.h",
            "#include \"util/sync.h\"\n"
            "class Engine {\n"
            "  Mutex mu_;\n"
            "  int guarded_ MSOPDS_GUARDED_BY(mu_) = 0;\n"
            "  int racy_ = 0;\n"
            "};\n");
  const LintReport report = Lint();
  ASSERT_EQ(report.findings.size(), 1u) << FormatLintReport(report);
  EXPECT_EQ(report.findings[0].rule, "unguarded-member");
  EXPECT_NE(report.findings[0].message.find("racy_"), std::string::npos);

  // Atomics, the documented-unguarded marker, and GUARDED_BY all pass.
  WriteFile("serve/guarded.h",
            "#include \"util/sync.h\"\n"
            "#include <atomic>\n"
            "class Engine {\n"
            "  Mutex mu_;\n"
            "  int guarded_ MSOPDS_GUARDED_BY(mu_) = 0;\n"
            "  std::atomic<int> counter_{0};\n"
            "  int racy_ = 0;  // determinism-lint: unguarded(set once "
            "before threads start)\n"
            "};\n");
  EXPECT_TRUE(Lint().ok());
}

TEST_F(DeterminismLintTest, RawSimdIntrinsicsFlaggedOutsideSimdHeader) {
  WriteFile("serve/fast_scorer.cc",
            "#include <immintrin.h>\n"
            "double DotFast(const double* a, const double* b) {\n"
            "  __m256d va = _mm256_loadu_pd(a);\n"
            "  __m256d vb = _mm256_loadu_pd(b);\n"
            "  __m256d prod = _mm256_mul_pd(va, vb);\n"
            "  (void)prod;\n"
            "  return 0.0;\n"
            "}\n");
  const LintReport report = Lint();
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.findings.size(), 4u);  // the include and the uses
  for (const std::string& rule : Rules(report)) {
    EXPECT_EQ(rule, "raw-simd");
  }
}

TEST_F(DeterminismLintTest, NeonIntrinsicsAndLaneTypesFlagged) {
  WriteFile("core/neon_hack.cc",
            "#include <arm_neon.h>\n"
            "double Sum2(const double* a) {\n"
            "  float64x2_t acc = vld1q_f64(a);\n"
            "  acc = vaddq_f64(acc, acc);\n"
            "  return vgetq_lane_f64(acc, 0);\n"
            "}\n");
  const LintReport report = Lint();
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.findings.size(), 3u);
  for (const std::string& rule : Rules(report)) {
    EXPECT_EQ(rule, "raw-simd");
  }
}

TEST_F(DeterminismLintTest, SimdHeaderItselfIsExemptFromRawSimd) {
  WriteFile("tensor/simd.h",
            "#include <immintrin.h>\n"
            "inline __m256d Two(__m256d x) { return _mm256_add_pd(x, x); }\n");
  EXPECT_TRUE(Lint().ok());
}

TEST_F(DeterminismLintTest, AllowSimdMarkerSuppressesRawSimd) {
  WriteFile("bench/lanes.cc",
            "// lint:allow-simd (measures raw lane throughput, not numerics)\n"
            "unsigned CacheLine() { return _mm_crc32_u8(0, 1); }\n");
  EXPECT_TRUE(Lint().ok());

  WriteFile("bench/lanes.cc",
            "// determinism-lint: allow(raw-simd) (same, generic marker)\n"
            "unsigned CacheLine() { return _mm_crc32_u8(0, 1); }\n");
  EXPECT_TRUE(Lint().ok());

  WriteFile("bench/lanes.cc",
            "unsigned CacheLine() { return _mm_crc32_u8(0, 1); }\n");
  EXPECT_FALSE(Lint().ok());
}

TEST_F(DeterminismLintTest, AllowMarkerSuppressesASingleLine) {
  WriteFile("solver/special.cc",
            "// determinism-lint: allow(ambient-rng) (wall-clock telemetry "
            "only, never numerics)\n"
            "long Stamp() { return time(nullptr); }\n");
  EXPECT_TRUE(Lint().ok());
}

TEST_F(DeterminismLintTest, ViolationsInsideCommentsAndStringsIgnored) {
  WriteFile("docs/commented.cc",
            "// std::mutex is banned; use util/sync.h instead.\n"
            "/* for (const auto& e : unordered) would be flagged */\n"
            "const char* kMessage = \"std::rand() and time() are banned\";\n");
  EXPECT_TRUE(Lint().ok());
}

TEST_F(DeterminismLintTest, ReportFormatNamesFileLineAndRule) {
  WriteFile("serve/raw.cc", "#include <mutex>\n");
  const LintReport report = Lint();
  ASSERT_FALSE(report.ok());
  const std::string text = FormatLintReport(report);
  EXPECT_NE(text.find("serve/raw.cc:1"), std::string::npos) << text;
  EXPECT_NE(text.find("[raw-sync]"), std::string::npos) << text;
}

}  // namespace
}  // namespace msopds
