#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace msopds {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const int64_t v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 30000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(29);
  const int n = 20000;
  std::vector<int> counts(50, 0);
  for (int i = 0; i < n; ++i) {
    const int64_t k = rng.Zipf(50, 1.1);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 50);
    ++counts[static_cast<size_t>(k)];
  }
  // Head heavier than tail.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0] + counts[1] + counts[2], n / 5);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(31);
  EXPECT_EQ(rng.Zipf(1, 1.0), 0);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(37);
  const std::vector<int64_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 9);
}

TEST(RngTest, SampleWithoutReplacementPartial) {
  Rng rng(41);
  const std::vector<int64_t> sample = rng.SampleWithoutReplacement(100, 5);
  EXPECT_EQ(sample.size(), 5u);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleFromPool) {
  Rng rng(43);
  const std::vector<int64_t> pool = {10, 20, 30, 40};
  const std::vector<int64_t> sample = rng.SampleFrom(pool, 2);
  EXPECT_EQ(sample.size(), 2u);
  for (int64_t v : sample) {
    EXPECT_TRUE(std::find(pool.begin(), pool.end(), v) != pool.end());
  }
  EXPECT_NE(sample[0], sample[1]);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(47);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  std::vector<int> sorted = values;
  rng.Shuffle(&values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, sorted);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(51);
  Rng b = a.Split();
  EXPECT_NE(a.Next(), b.Next());
}

}  // namespace
}  // namespace msopds
