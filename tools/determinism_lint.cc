// Determinism/concurrency linter CLI (see util/determinism_lint.h for
// the rule list and DESIGN.md §13 for the conventions it enforces).
// Run by tools/check.sh as the `determinism-lint` stage.
//
// Usage:
//   determinism_lint [--root=DIR] [--quiet]
//
// --root defaults to "src" relative to the current directory (check.sh
// runs from the repo root). Exits 0 when the tree is clean, 1 when any
// finding is reported, 2 on usage/IO errors.

#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "util/determinism_lint.h"

int main(int argc, char** argv) {
  std::string root = "src";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(std::strlen("--root="));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "usage: determinism_lint [--root=DIR] [--quiet]\n";
      return 2;
    }
  }
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "determinism_lint: no such directory: " << root << "\n";
    return 2;
  }
  const msopds::LintReport report = msopds::RunDeterminismLint(root);
  if (!quiet || !report.ok()) {
    std::cout << msopds::FormatLintReport(report);
  }
  return report.ok() ? 0 : 1;
}
