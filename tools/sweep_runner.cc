// Crash-safe multi-process sweep driver (DESIGN.md §17). One binary,
// three modes:
//
//   --mode=master  (default) farms the cells of a small deterministic MF
//                  sweep out to --workers=N subprocesses of itself via
//                  scale::SweepOrchestrator, then merges the per-worker
//                  segments into <work_dir>/sweep.ckpt;
//   --mode=worker  the subprocess side: speaks the CELL/DONE stdin/stdout
//                  protocol and appends finished cells to its --segment;
//   --mode=inline  single-process reference arm (RunInline, worker 0):
//                  same cells, same merge, no subprocesses.
//
// Fault seeding for the orchestrator tests and check.sh's sweep-smoke
// stage: --fault_kill_cell=N makes a worker SIGKILL itself before
// persisting its N-th executed cell — but only the first worker to grab
// --kill_marker (O_CREAT|O_EXCL), so one run loses exactly one in-flight
// cell and the respawned replacement does not crash again.
//
// Cells are deterministic in their key (synthetic dataset seeded by the
// cell index, full-batch MF training), so the master and inline arms
// produce byte-identical merged checkpoints modulo the worker id — the
// orchestrator's recovery contract, asserted by ctest -L scale.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "recsys/matrix_factorization.h"
#include "recsys/trainer.h"
#include "scale/orchestrator.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace msopds {
namespace {

struct RunnerFlags {
  std::string mode = "master";
  int workers = 2;
  std::string work_dir;
  int cells = 4;
  uint64_t seed = 7;
  int users = 48;
  int items = 32;
  int epochs = 4;
  // Worker-side flags appended by the orchestrator.
  int worker_id = 0;
  std::string segment;
  // Fault seeding.
  int fault_kill_cell = -1;
  std::string kill_marker;
};

RunnerFlags ParseFlags(int argc, char** argv) {
  RunnerFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + n;
      return nullptr;
    };
    if (const char* v = value_of("--mode=")) {
      flags.mode = v;
    } else if (const char* v = value_of("--workers=")) {
      flags.workers = std::atoi(v);
    } else if (const char* v = value_of("--work_dir=")) {
      flags.work_dir = v;
    } else if (const char* v = value_of("--cells=")) {
      flags.cells = std::atoi(v);
    } else if (const char* v = value_of("--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value_of("--users=")) {
      flags.users = std::atoi(v);
    } else if (const char* v = value_of("--items=")) {
      flags.items = std::atoi(v);
    } else if (const char* v = value_of("--epochs=")) {
      flags.epochs = std::atoi(v);
    } else if (const char* v = value_of("--worker_id=")) {
      flags.worker_id = std::atoi(v);
    } else if (const char* v = value_of("--segment=")) {
      flags.segment = v;
    } else if (const char* v = value_of("--fault_kill_cell=")) {
      flags.fault_kill_cell = std::atoi(v);
    } else if (const char* v = value_of("--kill_marker=")) {
      flags.kill_marker = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

std::vector<std::string> SweepKeys(const RunnerFlags& flags) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(flags.cells));
  for (int k = 0; k < flags.cells; ++k) {
    keys.push_back(StrFormat("cell-%03d", k));
  }
  return keys;
}

/// One deterministic sweep cell: a synthetic dataset seeded by the cell
/// index, full-batch MF training, loss metrics into the record. The
/// record is a pure function of the key, which is what makes crash
/// re-dispatch and the master/inline comparison sound. threads is pinned
/// to 1: the cell runs the serial kernels and must serialize identically
/// from every worker.
CellRecord ToyCell(const RunnerFlags& flags, const std::string& key) {
  int cell_index = 0;
  std::sscanf(key.c_str(), "cell-%d", &cell_index);

  SyntheticConfig config;
  config.name = key;
  config.num_users = flags.users;
  config.num_items = flags.items;
  config.num_ratings = flags.users * 6;
  config.num_social_links = flags.users * 2;
  Rng rng(flags.seed + static_cast<uint64_t>(cell_index) * 1000003ULL);
  const Dataset dataset = GenerateSynthetic(config, &rng);

  Rng init_rng(flags.seed ^ 0x5ca1eULL);
  MatrixFactorization model(dataset.num_users, dataset.num_items, MfConfig(),
                            3.0, &init_rng);
  TrainOptions options;
  options.epochs = flags.epochs;
  const TrainResult trained = TrainModel(&model, dataset.ratings, options);

  CellRecord record;
  record.key = key;
  record.ok = trained.healthy;
  record.mean_average_rating = trained.final_loss;
  record.mean_hit_rate =
      trained.loss_history.empty() ? 0.0 : trained.loss_history.front();
  record.repeats = 1;
  record.unhealthy_repeats = trained.healthy ? 0 : 1;
  record.threads = 1;
  record.error = trained.failure;
  return record;
}

/// SIGKILL seeding: fires before the record is persisted, and only for
/// the first worker to create the marker file — every worker shares the
/// same argv, so without the marker each one (and each respawn) would
/// crash in turn and the run could never finish.
void MaybeKillSelf(const RunnerFlags& flags, int executed_cell_index) {
#if defined(__unix__) || defined(__APPLE__)
  if (!FaultInjector::Global().ShouldCrashAtCell(executed_cell_index)) return;
  if (!flags.kill_marker.empty()) {
    const int fd =
        ::open(flags.kill_marker.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) return;  // another worker already took the crash
    ::close(fd);
  }
  std::fprintf(stderr, "[fault] worker %d SIGKILLing itself before cell %d\n",
               flags.worker_id, executed_cell_index);
  ::raise(SIGKILL);
#else
  (void)flags;
  (void)executed_cell_index;
#endif
}

int WorkerMain(const RunnerFlags& flags) {
  if (flags.segment.empty()) {
    std::fprintf(stderr, "--mode=worker needs --segment\n");
    return 2;
  }
  FaultConfig fault_config;
  fault_config.crash_at_cell = flags.fault_kill_cell;
  FaultInjector::Global().Configure(fault_config);
  CheckpointStore segment(flags.segment);
  int executed = 0;
  const scale::CellExecutor executor = [&](const std::string& key) {
    CellRecord record = ToyCell(flags, key);
    MaybeKillSelf(flags, executed);
    ++executed;
    return record;
  };
  // stdout is the protocol channel; all diagnostics go to stderr.
  return scale::RunWorkerLoop(std::cin, std::cout, &segment, flags.worker_id,
                              executor);
}

std::string SelfExecutable(const char* argv0) {
#if defined(__linux__)
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) {
    buffer[n] = '\0';
    return buffer;
  }
#endif
  return argv0;
}

int MasterMain(const RunnerFlags& flags, const char* argv0) {
  if (flags.work_dir.empty()) {
    std::fprintf(stderr, "--work_dir is required\n");
    return 2;
  }
  scale::OrchestratorOptions options;
  options.num_workers = flags.workers;
  options.work_dir = flags.work_dir;
  options.worker_argv = {
      SelfExecutable(argv0),
      "--mode=worker",
      StrFormat("--cells=%d", flags.cells),
      StrFormat("--seed=%llu", static_cast<unsigned long long>(flags.seed)),
      StrFormat("--users=%d", flags.users),
      StrFormat("--items=%d", flags.items),
      StrFormat("--epochs=%d", flags.epochs),
  };
  if (flags.fault_kill_cell >= 0) {
    options.worker_argv.push_back(
        StrFormat("--fault_kill_cell=%d", flags.fault_kill_cell));
    if (!flags.kill_marker.empty()) {
      options.worker_argv.push_back("--kill_marker=" + flags.kill_marker);
    }
  }

  scale::SweepOrchestrator orchestrator(options);
  const std::vector<std::string> keys = SweepKeys(flags);
  auto result = flags.workers > 0
                    ? orchestrator.Run(keys)
                    : orchestrator.RunInline(keys, [&](const std::string& k) {
                        return ToyCell(flags, k);
                      });
  if (!result.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const scale::OrchestratorResult& sweep = result.value();
  std::printf(
      "sweep done: %lld cells (%lld executed, %lld resumed), "
      "%lld worker(s) spawned, %lld crash(es), %lld re-dispatched\n",
      static_cast<long long>(sweep.cells_total),
      static_cast<long long>(sweep.cells_executed),
      static_cast<long long>(sweep.cells_resumed),
      static_cast<long long>(sweep.workers_spawned),
      static_cast<long long>(sweep.worker_crashes),
      static_cast<long long>(sweep.cells_redispatched));
  std::printf("merged checkpoint: %s\n", sweep.merged_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  const RunnerFlags flags = ParseFlags(argc, argv);
  if (flags.mode == "worker") return WorkerMain(flags);
  if (flags.mode == "master") return MasterMain(flags, argv[0]);
  if (flags.mode == "inline") {
    RunnerFlags inline_flags = flags;
    inline_flags.workers = 0;
    return MasterMain(inline_flags, argv[0]);
  }
  std::fprintf(stderr, "unknown --mode=%s (master|worker|inline)\n",
               flags.mode.c_str());
  return 2;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
