#!/usr/bin/env bash
# Repo-wide correctness gate: build + tests (serial and MSOPDS_THREADS=4),
# graph verifier + registry gradcheck, the serving (`serve`) and
# overload/chaos (`serve_fault`) suites at 1 and 4 kernel threads,
# the quantized-serving (`quant`) suite with the vector backends on and
# forced off plus the quant_check parity CLI (DESIGN.md §15),
# the million-user substrate (`scale`) suite plus a real 2-worker
# sweep_runner smoke sweep (DESIGN.md §17),
# the determinism linter and the parallel write-overlap sweep
# (DESIGN.md §13), a Clang -Wthread-safety build of the library,
# sanitizer matrix (MSOPDS_SANITIZE=address/undefined,
# each with a multi-threaded pass over the `parallel` suite, plus a
# ThreadSanitizer build running the `serve` and `serve_fault` labels so
# the engine's hot-swap and overload paths are race-checked when the
# toolchain ships TSan),
# clang-tidy over src/, and the Python-free lint. Prints a per-stage
# summary table and exits non-zero if any stage fails. Stages whose
# toolchain is missing (e.g. clang-tidy or clang++ not installed) are
# reported SKIP, not FAIL.
#
# Usage:
#   tools/check.sh                 full matrix (three builds; slow)
#   tools/check.sh --smoke         script self-checks + lint only (fast;
#                                  run by ctest so script rot fails tier-1)
#   tools/check.sh --no-sanitizers release build + tests + tidy + lint
set -u

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

SMOKE=0
SANITIZERS=1
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --no-sanitizers) SANITIZERS=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

STAGE_NAMES=()
STAGE_RESULTS=()
STAGE_SECONDS=()
overall=0

run_stage() {
  # run_stage <name> <command...>
  local name="$1"; shift
  local start end rc
  echo "=== stage: $name ==="
  start=$(date +%s)
  "$@"
  rc=$?
  end=$(date +%s)
  STAGE_NAMES+=("$name")
  STAGE_SECONDS+=($((end - start)))
  if [ $rc -eq 0 ]; then
    STAGE_RESULTS+=("PASS")
  else
    STAGE_RESULTS+=("FAIL")
    overall=1
  fi
  return $rc
}

skip_stage() {
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("SKIP")
  STAGE_SECONDS+=(0)
  echo "=== stage: $1 (skipped: $2) ==="
}

summary() {
  echo
  echo "===================== check.sh summary ====================="
  printf '%-28s %-6s %8s\n' "stage" "result" "seconds"
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '%-28s %-6s %8s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}" \
           "${STAGE_SECONDS[$i]}"
  done
  echo "============================================================"
  if [ $overall -eq 0 ]; then
    echo "check.sh: all stages passed"
  else
    echo "check.sh: FAILURES above"
  fi
}

# --- script self-checks (always run; catches rot in the scripts) ------------
shell_syntax() {
  bash -n tools/check.sh && bash -n tools/lint.sh
}
run_stage "shell-syntax" shell_syntax

# --- lint (always run; no build needed) -------------------------------------
run_stage "lint" bash tools/lint.sh

if [ $SMOKE -eq 1 ]; then
  summary
  exit $overall
fi

# --- release build + tests + graph verifier ---------------------------------
build_release() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
}
run_stage "build-release" build_release
if [ "${STAGE_RESULTS[-1]}" = "PASS" ]; then
  run_stage "ctest-release" ctest --test-dir build --output-on-failure -j
  # Same suite on the multi-threaded kernels: the parallel runtime's
  # contract is bit-identical results, so every expectation must hold
  # unchanged at MSOPDS_THREADS=4.
  ctest_mt() {
    MSOPDS_THREADS=4 ctest --test-dir build --output-on-failure -j
  }
  run_stage "ctest-release-mt4" ctest_mt
  # Same suite with buffer recycling off: the arena's contract is
  # bit-identical results, so the whole tier must also pass with every
  # allocation going straight to the heap.
  ctest_arena_off() {
    MSOPDS_ARENA=0 ctest --test-dir build --output-on-failure -j
  }
  run_stage "ctest-release-arena-off" ctest_arena_off
  # Same suite with the vector backends forced off at runtime: the
  # scalar/SIMD bit-exactness contract (DESIGN.md §14) means every
  # expectation must hold unchanged on the scalar reference kernels.
  ctest_simd_off() {
    MSOPDS_SIMD=0 ctest --test-dir build --output-on-failure -j
  }
  run_stage "ctest-release-simd-off" ctest_simd_off
  # SIMD/compiled-tape parity label on the probed (vector) backend: the
  # scalar-vs-vector and compiled-vs-eager bit contracts, kept as a
  # named stage so the gate is visible and runnable on its own.
  ctest_simd_parity() {
    ctest --test-dir build -L simd --output-on-failure -j
  }
  run_stage "ctest-simd-parity" ctest_simd_parity
  # Quantized-serving suite on the probed (vector) backend and with the
  # vector paths forced off: the per-precision bit-identity and ranking
  # parity bounds (DESIGN.md §15) must hold on both arms.
  ctest_quant() {
    ctest --test-dir build -L quant --output-on-failure -j
  }
  run_stage "ctest-quant" ctest_quant
  ctest_quant_simd_off() {
    MSOPDS_SIMD=0 ctest --test-dir build -L quant --output-on-failure -j
  }
  run_stage "ctest-quant-simd-off" ctest_quant_simd_off
  # Standalone quantization parity CLI: kernel dispatch bit parity over
  # every vector-tail remainder class, round-trip bounds, and end-to-end
  # top-K backend/thread parity.
  run_stage "quant-parity" ./build/tools/quant_check
  # Serving suite pinned to both thread counts: the engine's lists must
  # be bit-identical to the offline reference at any pool size, so the
  # label runs once serial and once multi-threaded.
  ctest_serve_t1() {
    MSOPDS_THREADS=1 ctest --test-dir build -L serve --output-on-failure -j
  }
  run_stage "ctest-serve-t1" ctest_serve_t1
  ctest_serve_t4() {
    MSOPDS_THREADS=4 ctest --test-dir build -L serve --output-on-failure -j
  }
  run_stage "ctest-serve-t4" ctest_serve_t4
  # Overload/chaos suite pinned to both thread counts: the chaos replay
  # contract is identical shed/reject/degraded traces at any pool size.
  # (`-L serve` above matches the serve_fault label too — regex match —
  # but the explicit stages keep the robustness gate visible and runnable
  # on its own.)
  ctest_serve_fault_t1() {
    MSOPDS_THREADS=1 ctest --test-dir build -L serve_fault \
      --output-on-failure -j
  }
  run_stage "ctest-serve-fault-t1" ctest_serve_fault_t1
  ctest_serve_fault_t4() {
    MSOPDS_THREADS=4 ctest --test-dir build -L serve_fault \
      --output-on-failure -j
  }
  run_stage "ctest-serve-fault-t4" ctest_serve_fault_t4
  # Million-user substrate suite (DESIGN.md §17): shard-merge and
  # out-of-core training bit-identity, streaming-ingest equivalence, and
  # the orchestrator's SIGKILL-a-worker recovery contract.
  ctest_scale() {
    ctest --test-dir build -L scale --output-on-failure -j
  }
  run_stage "ctest-scale" ctest_scale
  # Crash-safe sweep smoke: a real 2-worker subprocess sweep over a
  # 4-cell toy grid, exercising dispatch, segment merge, and clean
  # shutdown outside the test harness.
  sweep_smoke() {
    local dir
    dir=$(mktemp -d) || return 1
    ./build/tools/sweep_runner --mode=master --workers=2 \
      --work_dir="$dir" --cells=4 --users=32 --items=24 --epochs=2
    local rc=$?
    [ $rc -eq 0 ] && [ -s "$dir/sweep.ckpt" ]
    rc=$?
    rm -rf "$dir"
    return $rc
  }
  run_stage "sweep-smoke" sweep_smoke
  run_stage "verify-graph" ./build/tools/verify_graph
  # Determinism/concurrency linter over the whole source tree: raw sync
  # primitives outside util/sync.h, ambient RNG, unordered iteration
  # feeding output order, unguarded members of mutex-owning classes
  # (DESIGN.md §13).
  run_stage "determinism-lint" ./build/tools/determinism_lint
  # Write-overlap pass alone (also part of verify-graph above): every
  # registered parallel kernel's chunk grid proven disjoint, plus the
  # checker's planted-violation self-test.
  run_stage "overlap-verify" ./build/tools/verify_graph --overlap-only
  # Compiled-tape planning pass alone (also part of verify-graph above):
  # every registry example's tape compiled, its arena offsets checked
  # for lifetime overlap, and one replay bit-compared to an uncompiled
  # reference run.
  run_stage "compile-verify" ./build/tools/verify_graph --compile-only
else
  skip_stage "ctest-release" "build failed"
  skip_stage "ctest-release-mt4" "build failed"
  skip_stage "ctest-release-arena-off" "build failed"
  skip_stage "ctest-release-simd-off" "build failed"
  skip_stage "ctest-simd-parity" "build failed"
  skip_stage "ctest-quant" "build failed"
  skip_stage "ctest-quant-simd-off" "build failed"
  skip_stage "quant-parity" "build failed"
  skip_stage "ctest-serve-t1" "build failed"
  skip_stage "ctest-serve-t4" "build failed"
  skip_stage "ctest-serve-fault-t1" "build failed"
  skip_stage "ctest-serve-fault-t4" "build failed"
  skip_stage "ctest-scale" "build failed"
  skip_stage "sweep-smoke" "build failed"
  skip_stage "verify-graph" "build failed"
  skip_stage "determinism-lint" "build failed"
  skip_stage "overlap-verify" "build failed"
fi

# --- clang-tidy over src/ ----------------------------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
  tidy_src() {
    # compile_commands.json is exported by the release configure above.
    find src -name '*.cc' -print0 \
      | xargs -0 -n 8 -P "$(nproc)" clang-tidy -p build --quiet
  }
  run_stage "clang-tidy" tidy_src
else
  skip_stage "clang-tidy" "clang-tidy not installed"
fi

# --- Clang thread-safety analysis --------------------------------------------
# Compiles the library with -Wthread-safety -Werror=thread-safety so the
# util/sync.h annotations (DESIGN.md §13) are enforced, not decorative.
# Clang-only: gcc ignores the attributes, so the stage SKIPs without a
# clang++ on PATH.
if command -v clang++ > /dev/null 2>&1; then
  build_thread_safety() {
    cmake -B build-tsafety -S . -DCMAKE_BUILD_TYPE=Release \
          -DCMAKE_CXX_COMPILER=clang++ -DMSOPDS_THREAD_SAFETY=ON \
      && cmake --build build-tsafety -j --target msopds
  }
  run_stage "thread-safety" build_thread_safety
else
  skip_stage "thread-safety" "clang++ not installed (-Wthread-safety is Clang-only)"
fi

# --- sanitizer matrix: Debug builds so MSOPDS_CHECK/auto-verify stay in -----
# Each sanitizer also gets one multi-threaded pass over the parallel suite,
# so races in the runtime are caught even without a TSan toolchain.
if [ $SANITIZERS -eq 1 ]; then
  for san in address undefined; do
    dir="build-$san"
    build_san() {
      cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Debug \
            -DMSOPDS_SANITIZE="$san" \
        && cmake --build "$dir" -j
    }
    run_stage "build-$san" build_san
    if [ "${STAGE_RESULTS[-1]}" = "PASS" ]; then
      run_stage "ctest-$san" ctest --test-dir "$dir" --output-on-failure -j
      ctest_san_mt() {
        MSOPDS_THREADS=4 ctest --test-dir "$dir" -L parallel \
          --output-on-failure -j
      }
      run_stage "ctest-$san-mt4" ctest_san_mt
      # Memory suite under the sanitizer: recycled-buffer misuse (the
      # arena's poisoned free lists) must fault, not pass silently.
      ctest_san_memory() {
        ctest --test-dir "$dir" -L memory --output-on-failure -j
      }
      run_stage "ctest-$san-memory" ctest_san_memory
      # SIMD/compiled-tape suite under the sanitizer: intrinsic loads
      # past a buffer's end and slab-offset bugs in the tape planner are
      # exactly the class ASan/UBSan catch.
      ctest_san_simd() {
        ctest --test-dir "$dir" -L simd --output-on-failure -j
      }
      run_stage "ctest-$san-simd" ctest_san_simd
      # Quantized-serving suite under the sanitizer: the int8/fp16 tail
      # loads and the quantize-time buffer sizing are exactly the class
      # ASan/UBSan catch (plus UB from any out-of-range rounding).
      ctest_san_quant() {
        ctest --test-dir "$dir" -L quant --output-on-failure -j
      }
      run_stage "ctest-$san-quant" ctest_san_quant
      # Scale suite under the sanitizer: mmap'd shard payload reads,
      # the ingest spill buffers, and the orchestrator's fork/pipe
      # lifetime handling are exactly the class ASan/UBSan catch.
      ctest_san_scale() {
        ctest --test-dir "$dir" -L scale --output-on-failure -j
      }
      run_stage "ctest-$san-scale" ctest_san_scale
    else
      skip_stage "ctest-$san" "build failed"
      skip_stage "ctest-$san-mt4" "build failed"
      skip_stage "ctest-$san-memory" "build failed"
      skip_stage "ctest-$san-simd" "build failed"
      skip_stage "ctest-$san-quant" "build failed"
      skip_stage "ctest-$san-scale" "build failed"
    fi
  done
  # ThreadSanitizer leg: the serving engine is the repo's first
  # reader/writer-concurrent code path, so its hot-swap must be checked
  # by a race detector, not only by assertions. TSan and ASan cannot
  # share a build, hence a dedicated tree running the `serve` label.
  if echo 'int main(){return 0;}' | g++ -x c++ -fsanitize=thread - \
       -o /tmp/msopds_tsan_probe$$ > /dev/null 2>&1; then
    rm -f /tmp/msopds_tsan_probe$$
    build_thread() {
      cmake -B build-thread -S . -DCMAKE_BUILD_TYPE=Debug \
            -DMSOPDS_SANITIZE=thread \
        && cmake --build build-thread -j
    }
    run_stage "build-thread" build_thread
    if [ "${STAGE_RESULTS[-1]}" = "PASS" ]; then
      ctest_thread_serve() {
        MSOPDS_THREADS=4 ctest --test-dir build-thread -L serve \
          --output-on-failure -j
      }
      run_stage "ctest-thread-serve" ctest_thread_serve
      # Overload/chaos suite under TSan: rejection, shedding, degraded
      # routing, and retry/backoff all cross the queue mutex and the
      # snapshot/fallback slots concurrently — race-check them explicitly.
      ctest_thread_serve_fault() {
        MSOPDS_THREADS=4 ctest --test-dir build-thread -L serve_fault \
          --output-on-failure -j
      }
      run_stage "ctest-thread-serve-fault" ctest_thread_serve_fault
    else
      skip_stage "ctest-thread-serve" "build failed"
      skip_stage "ctest-thread-serve-fault" "build failed"
    fi
  else
    skip_stage "build-thread" "toolchain has no TSan runtime"
    skip_stage "ctest-thread-serve" "toolchain has no TSan runtime"
    skip_stage "ctest-thread-serve-fault" "toolchain has no TSan runtime"
  fi
else
  skip_stage "sanitizers" "--no-sanitizers"
fi

summary
exit $overall
