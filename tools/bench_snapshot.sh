#!/usr/bin/env bash
# Reproducible benchmark snapshot: builds the release tree and runs the
# scalar-vs-SIMD / eager-vs-compiled-tape A/B bench (bench/simd_bench.cc)
# at pinned seeds and one kernel thread, writing the committed
# BENCH_simd.json speedup table at the repo root. Seeds are compiled
# into the bench; the thread count is pinned here so the table measures
# kernel speed, not scheduling.
#
# Usage:
#   tools/bench_snapshot.sh           build + run, write BENCH_simd.json
#   tools/bench_snapshot.sh --quick   fewer repetitions (sanity runs;
#                                     don't commit the numbers)
#
# The JSON records the probed backend and machine facts alongside each
# pair, so a committed snapshot says what it was measured on. Re-run on
# the reference machine and commit the diff when the kernels change.
set -eu

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

MIN_TIME="0.5"
REPS=3
for arg in "$@"; do
  case "$arg" in
    --quick) MIN_TIME="0.05"; REPS=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target simd_bench

# MSOPDS_THREADS pins the kernel pool; the bench also pins it per case.
# MSOPDS_BENCH_SIMD_JSON places the table at the repo root for commit.
# The reporter keeps the fastest of $REPS repetitions per case, so the
# committed ratios don't wobble with background load.
MSOPDS_THREADS=1 MSOPDS_BENCH_SIMD_JSON="$ROOT/BENCH_simd.json" \
  ./build/bench/simd_bench --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS"

echo
echo "bench_snapshot: wrote $ROOT/BENCH_simd.json"
