#!/usr/bin/env bash
# Reproducible benchmark snapshot: builds the release tree and runs the
# scalar-vs-SIMD / eager-vs-compiled-tape A/B bench (bench/simd_bench.cc)
# at pinned seeds and one kernel thread, writing the committed
# BENCH_simd.json speedup table at the repo root, then the quantized-
# serving bench (bench/quant_bench.cc) writing BENCH_quant.json
# (bytes/user and serve-dot / top-K timings at fp64/fp16/int8). Seeds
# are compiled into the benches; the thread count is pinned here so the
# tables measure kernel speed, not scheduling (quant_bench pins its own
# pool per top-K cell).
#
# Usage:
#   tools/bench_snapshot.sh           build + run, write BENCH_simd.json
#                                     and BENCH_quant.json
#   tools/bench_snapshot.sh --quick   fewer repetitions (sanity runs;
#                                     don't commit the numbers)
#
# The JSON records the probed backend and machine facts alongside each
# pair, so a committed snapshot says what it was measured on. Re-run on
# the reference machine and commit the diff when the kernels change.
set -eu

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

MIN_TIME="0.5"
REPS=3
DOT_MS=50
for arg in "$@"; do
  case "$arg" in
    --quick) MIN_TIME="0.05"; REPS=1; DOT_MS=5 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target simd_bench quant_bench

# MSOPDS_THREADS pins the kernel pool; the bench also pins it per case.
# MSOPDS_BENCH_SIMD_JSON places the table at the repo root for commit.
# The reporter keeps the fastest of $REPS repetitions per case, so the
# committed ratios don't wobble with background load.
MSOPDS_THREADS=1 MSOPDS_BENCH_SIMD_JSON="$ROOT/BENCH_simd.json" \
  ./build/bench/simd_bench --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS"

echo
echo "bench_snapshot: wrote $ROOT/BENCH_simd.json"

# Quantized-serving table: per-precision snapshot bytes, the serve-dot
# hot path single-threaded, and top-K QPS at 1 and 4 kernel threads.
./build/bench/quant_bench --reps="$REPS" --dot_ms="$DOT_MS" \
  --json_out="$ROOT/BENCH_quant.json"

echo
echo "bench_snapshot: wrote $ROOT/BENCH_quant.json"
