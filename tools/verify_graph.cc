// verify_graph: static verification + exhaustive registry gradcheck CLI.
//
// Runs the GraphVerifier over a representative end-to-end graph (an
// unrolled two-step training loss, the shape MSO differentiates through),
// then sweeps every op in the shape-inference registry with first-order
// (MaxGradError) and second-order (MaxHvpError) finite-difference checks.
// Exits non-zero on any diagnostic or tolerance violation, so it can gate
// CI (tools/check.sh stage "verify").
//
// Between those stages it sweeps every parallel kernel's static write
// plan (OpSpec::write_plan at OpSpec::plan_example shapes) through
// VerifyWritePlan, proving no two chunks of any registered kernel write
// overlapping destination ranges, and self-tests the checker against
// planted-bad plans (an overlap, a gap, a permuted reduction lane) that
// it must reject.
//
// Flags:
//   --op=NAME            only gradcheck the named op
//   --dot=PATH           write the representative graph as Graphviz DOT
//   --max_grad_err=X     first-order tolerance (default 1e-6)
//   --max_hvp_err=X      second-order tolerance (default 1e-5)
//   --overlap-only       run only the write-overlap sweep + self-test
//   --compile-only       run only the compiled-tape planning sweep
//   --list               print the registry and exit
//
// The compiled-tape sweep (also run as part of the default matrix) dry-
// runs tensor/compile.h over every registry example: it compiles the
// example's forward+backward tape, checks the planned arena offsets for
// lifetime-overlap violations (CompiledTape::Validate), replays once,
// and requires the replayed bits to equal an uncompiled reference run.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "tensor/compile.h"
#include "tensor/grad.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/verify.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace {

struct Args {
  std::string op;
  std::string dot_path;
  double max_grad_err = 1e-6;
  double max_hvp_err = 1e-5;
  bool overlap_only = false;
  bool compile_only = false;
  bool list = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--op=", 0) == 0) {
      args.op = value_of("--op=");
    } else if (arg.rfind("--dot=", 0) == 0) {
      args.dot_path = value_of("--dot=");
    } else if (arg.rfind("--max_grad_err=", 0) == 0) {
      args.max_grad_err = std::atof(value_of("--max_grad_err=").c_str());
    } else if (arg.rfind("--max_hvp_err=", 0) == 0) {
      args.max_hvp_err = std::atof(value_of("--max_hvp_err=").c_str());
    } else if (arg == "--overlap-only") {
      args.overlap_only = true;
    } else if (arg == "--compile-only") {
      args.compile_only = true;
    } else if (arg == "--list") {
      args.list = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

// A miniature unrolled training loss touching the GNN kernels: two SGD-like
// functional updates of an embedding table driven by SpMM messages, then a
// ranking-style readout. Structurally this is PDS Algorithm 1's inner loop.
msopds::Variable BuildRepresentativeGraph(
    std::vector<msopds::Variable>* params) {
  using msopds::Constant;
  using msopds::MakeIndex;
  using msopds::Param;
  using msopds::Tensor;
  using msopds::Variable;

  Variable emb = Param(Tensor::FromMatrix(
      4, 2, {0.1, -0.2, 0.3, 0.4, -0.5, 0.2, 0.05, -0.15}));
  Variable w = Param(Tensor::FromVector({0.9, 0.3, -0.4, 0.7, 0.2}));
  params->assign({emb, w});

  const msopds::IndexVec dst = MakeIndex({0, 1, 2, 3, 0});
  const msopds::IndexVec src = MakeIndex({1, 0, 3, 2, 2});
  Variable h = emb;
  for (int step = 0; step < 2; ++step) {
    Variable messages = msopds::SpMM(dst, src, w, h, 4);
    Variable scores =
        msopds::EdgeDot(h, messages, MakeIndex({0, 1, 2, 3}),
                        MakeIndex({0, 1, 2, 3}));
    Variable loss = msopds::Sum(msopds::Square(
        msopds::Sub(scores, Constant(Tensor::FromVector(
                                {0.5, -0.1, 0.2, 0.3})))));
    // Functional gradient step (keeps the whole unroll differentiable).
    Variable grad = msopds::Grad(loss, {h})[0];
    h = msopds::Sub(h, msopds::ScalarMul(grad, 0.05));
  }
  return msopds::Add(msopds::Sum(msopds::Square(h)),
                     msopds::SquaredNorm(w));
}

// Sweeps every registered parallel kernel's write plan at its example
// shapes through VerifyWritePlan, then self-tests the checker on planted
// violations it must reject. Returns the number of failures.
int RunOverlapSweep(const std::vector<msopds::OpSpec>& registry) {
  int failures = 0;
  std::printf("\n%-16s %8s %8s %10s %7s  %s\n", "op", "units", "chunks",
              "elems", "covers", "overlap");
  for (const msopds::OpSpec& spec : registry) {
    if (!spec.write_plan) continue;  // non-parallel op: nothing to prove
    if (!spec.plan_example) {
      std::printf("%-16s: FAIL: parallel kernel without plan example\n",
                  spec.name.c_str());
      ++failures;
      continue;
    }
    const msopds::PlanExample example = spec.plan_example();
    const msopds::WritePlan plan =
        spec.write_plan(example.input_shapes, example.output_shape);
    const msopds::Status status = msopds::VerifyWritePlan(spec.name, plan);
    // A one-chunk grid proves nothing; the example shapes must exercise
    // real chunk boundaries.
    const bool multi_chunk = plan.num_chunks >= 2;
    std::printf("%-16s %8lld %8lld %10lld %7s  %s\n", spec.name.c_str(),
                static_cast<long long>(plan.units),
                static_cast<long long>(plan.num_chunks),
                static_cast<long long>(plan.output_elems),
                plan.covers_output ? "yes" : "no",
                !status.ok()          ? "FAIL"
                : multi_chunk         ? "disjoint"
                                      : "FAIL (one-chunk example)");
    if (!status.ok()) {
      std::printf("  %s\n", status.message().c_str());
      ++failures;
    } else if (!multi_chunk) {
      ++failures;
    }
  }

  // Self-test: the checker must reject planted-bad plans, or a passing
  // sweep means nothing.
  auto grid = [](int64_t units, int64_t grain, int64_t width) {
    msopds::WritePlan plan;
    plan.units = units;
    plan.grain = grain;
    plan.num_chunks = msopds::NumChunks(units, grain);
    plan.output_elems = units * width;
    for (int64_t c = 0; c < plan.num_chunks; ++c) {
      const int64_t begin = c * grain;
      const int64_t end = std::min(begin + grain, units);
      plan.writes.push_back({c, begin * width, end * width});
    }
    return plan;
  };
  struct PlantedCase {
    const char* name;
    msopds::WritePlan plan;
  };
  std::vector<PlantedCase> planted;
  {
    // Chunk 1 reaches one element into chunk 2's rows (the classic
    // off-by-one a fused kernel edit would introduce).
    msopds::WritePlan overlap = grid(100, 10, 8);
    overlap.writes[1].end += 1;
    planted.push_back({"planted overlap", overlap});
    // Full-coverage kernel that leaves a gap before its last chunk.
    msopds::WritePlan gap = grid(100, 10, 8);
    gap.writes[3].begin += 2;
    planted.push_back({"planted gap", gap});
    // Reduction combining partial slots in swapped lane order.
    msopds::WritePlan lanes = grid(100, 10, 1);
    lanes.reduction = true;
    for (int64_t c = 0; c < lanes.num_chunks; ++c) {
      lanes.reduction_lanes.push_back(c);
    }
    std::swap(lanes.reduction_lanes[2], lanes.reduction_lanes[5]);
    planted.push_back({"planted lane swap", lanes});
    // Grid arithmetic that disagrees with NumChunks.
    msopds::WritePlan arith = grid(100, 10, 8);
    arith.num_chunks += 1;
    arith.writes.push_back({arith.num_chunks - 1, 0, 0});
    planted.push_back({"planted grid mismatch", arith});
  }
  for (const PlantedCase& fixture : planted) {
    const msopds::Status status =
        msopds::VerifyWritePlan(fixture.name, fixture.plan);
    if (status.ok()) {
      std::printf("self-test FAIL: %s was not rejected\n", fixture.name);
      ++failures;
    } else {
      std::printf("self-test ok: rejected %s (%s)\n", fixture.name,
                  status.message().c_str());
    }
  }
  return failures;
}

bool BitsEqual(const msopds::Tensor& a, const msopds::Tensor& b) {
  if (!a.SameShape(b)) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(double)) == 0;
}

// Dry-runs the AOT tape compiler over every registry example: compile
// the forward+backward tape, validate the planned arena offsets (no two
// lifetime-overlapping allocations may share slab bytes), replay once,
// and require the replayed bits to match an uncompiled reference run.
// Returns the number of failures.
int RunCompileSweep(const std::vector<msopds::OpSpec>& registry) {
  int failures = 0;
  std::printf("\n%-16s %7s %9s %9s %6s %6s  %s\n", "op", "allocs", "slab",
              "naive", "reuse", "fused", "status");
  for (const msopds::OpSpec& spec : registry) {
    if (!spec.example) continue;
    const msopds::GradcheckCase c = spec.example();

    msopds::Tensor out_value;
    std::vector<msopds::Tensor> grad_values;
    const auto build = [&]() {
      std::vector<msopds::Variable> params;
      params.reserve(c.points.size());
      for (const msopds::Tensor& p : c.points) {
        params.push_back(msopds::Param(p.Clone()));
      }
      msopds::Variable out = c.fn(params);
      out_value = out.value();
      grad_values = msopds::GradValues(out, params);
      return out;
    };

    // Uncompiled reference run; the Tensor handles keep these arena
    // buffers alive across the compile/replay below.
    build();
    const msopds::Tensor ref_out = out_value;
    const std::vector<msopds::Tensor> ref_grads = grad_values;

    auto tape = msopds::CompiledTape::Compile(build);
    const msopds::Status status = tape->Validate();
    tape->Replay(build);

    bool bits_ok = BitsEqual(ref_out, out_value) &&
                   ref_grads.size() == grad_values.size();
    if (bits_ok) {
      for (size_t i = 0; i < ref_grads.size(); ++i) {
        bits_ok = bits_ok && BitsEqual(ref_grads[i], grad_values[i]);
      }
    }
    const msopds::TapeStats& stats = tape->stats();
    const bool plan_ok = status.ok() && stats.replay_fallbacks == 0 &&
                         stats.slab_doubles <= stats.naive_doubles;
    const double reuse =
        stats.naive_doubles > 0
            ? 100.0 * (1.0 - static_cast<double>(stats.slab_doubles) /
                                 static_cast<double>(stats.naive_doubles))
            : 0.0;
    std::printf("%-16s %7lld %9lld %9lld %5.1f%% %6lld  %s\n",
                spec.name.c_str(), static_cast<long long>(stats.allocations),
                static_cast<long long>(stats.slab_doubles),
                static_cast<long long>(stats.naive_doubles), reuse,
                static_cast<long long>(stats.fused_ops),
                !status.ok() ? "FAIL (plan)"
                : !plan_ok   ? "FAIL (replay fell back)"
                : !bits_ok   ? "FAIL (bits differ)"
                             : "ok");
    if (!status.ok()) std::printf("  %s\n", status.message().c_str());
    if (!plan_ok || !bits_ok) ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  const std::vector<msopds::OpSpec>& registry = msopds::OpRegistry();

  if (args.list) {
    std::printf("%-16s %-6s %-8s %s\n", "op", "arity", "example", "case");
    for (const msopds::OpSpec& spec : registry) {
      const msopds::GradcheckCase c =
          spec.example ? spec.example() : msopds::GradcheckCase{};
      std::printf("%-16s %-6d %-8s %s\n", spec.name.c_str(), spec.arity,
                  spec.example ? "yes" : "no", c.description.c_str());
    }
    return 0;
  }

  if (!args.op.empty() && msopds::FindOpSpec(args.op) == nullptr) {
    std::fprintf(stderr, "--op=%s: not in the registry (see --list)\n",
                 args.op.c_str());
    return 2;
  }

  int failures = 0;

  if (args.overlap_only) {
    failures = RunOverlapSweep(registry);
    std::printf("\nwrite-overlap sweep: %d failure(s)\n", failures);
    return failures == 0 ? 0 : 1;
  }

  if (args.compile_only) {
    failures = RunCompileSweep(registry);
    std::printf("\ncompile-plan sweep: %d failure(s)\n", failures);
    return failures == 0 ? 0 : 1;
  }

  // Stage 1: static verification of the representative graph.
  std::vector<msopds::Variable> params;
  msopds::Variable loss = BuildRepresentativeGraph(&params);
  const msopds::VerifyResult result =
      msopds::GraphVerifier().Verify(loss, params);
  std::printf("representative graph: %lld nodes, %lld edges, %lld params, "
              "%lld bytes, depth %lld, %lld parallel-kernel node(s)\n",
              static_cast<long long>(result.stats.num_nodes),
              static_cast<long long>(result.stats.num_edges),
              static_cast<long long>(result.stats.num_params),
              static_cast<long long>(result.stats.value_bytes),
              static_cast<long long>(result.stats.max_depth),
              static_cast<long long>(result.stats.num_parallel_kernel_nodes));
  std::printf("memory: %lld live bytes (deduped buffers), %lld releasable "
              "by backward\n",
              static_cast<long long>(result.stats.live_bytes),
              static_cast<long long>(result.stats.releasable_bytes));
  std::printf("write plans: %lld node(s) overlap-checked, %lld chunk "
              "disjointness obligation(s) discharged\n",
              static_cast<long long>(result.stats.num_write_planned_nodes),
              static_cast<long long>(result.stats.num_planned_chunks));
  if (!result.diagnostics.empty()) {
    std::printf("%s", result.Report().c_str());
  }
  if (!result.ok()) {
    std::printf("FAIL: representative graph has %d error diagnostic(s)\n",
                result.num_errors());
    ++failures;
  }
  if (!args.dot_path.empty()) {
    std::ofstream out(args.dot_path);
    out << msopds::GraphToDot(loss, result.diagnostics);
    std::printf("wrote DOT dump to %s\n", args.dot_path.c_str());
  }

  // Stage 2: write-overlap sweep over every parallel kernel in the
  // registry, plus the checker self-test.
  failures += RunOverlapSweep(registry);

  // Stage 3: compiled-tape planning sweep — arena offsets validated and
  // replayed bits checked against an uncompiled reference per example.
  failures += RunCompileSweep(registry);

  // Stage 4: exhaustive first- and second-order gradcheck over the
  // registry.
  std::printf("\n%-16s %-34s %12s %12s  %s\n", "op", "case", "grad_err",
              "hvp_err", "status");
  int checked = 0;
  int skipped = 0;
  for (const msopds::OpSpec& spec : registry) {
    if (!args.op.empty() && spec.name != args.op) continue;
    if (!spec.example) {
      ++skipped;
      std::printf("%-16s %-34s %12s %12s  %s\n", spec.name.c_str(),
                  "(backward of a checked op)", "-", "-", "skip");
      continue;
    }
    const msopds::GradcheckCase c = spec.example();
    const double grad_err = msopds::MaxGradError(c.fn, c.points);
    const msopds::Tensor direction =
        msopds::Tensor::Full(c.points[c.hvp_arg].shape(), 0.35);
    const double hvp_err =
        msopds::MaxHvpError(c.fn, c.points, c.hvp_arg, direction);
    const bool ok =
        grad_err <= args.max_grad_err && hvp_err <= args.max_hvp_err;
    std::printf("%-16s %-34s %12.3e %12.3e  %s\n", spec.name.c_str(),
                c.description.c_str(), grad_err, hvp_err,
                ok ? "ok" : "FAIL");
    if (!ok) ++failures;
    ++checked;
  }
  std::printf("\n%d op(s) gradchecked, %d exercised indirectly, %d "
              "failure(s)\n",
              checked, skipped, failures);
  return failures == 0 ? 0 : 1;
}
