#!/usr/bin/env bash
# Python-free repo lint: include-guard style, float-vs-double drift in the
# tensor kernels, and CHECK-macro misuse. Exits non-zero on any finding.
# Run from anywhere: paths are resolved relative to the repo root.
set -u

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

failures=0

report() {
  # report <check-name> <file:line-ish message>
  echo "lint: [$1] $2"
  failures=$((failures + 1))
}

# --- 1. Include-guard style -------------------------------------------------
# Every header under src/ must open with an include guard derived from its
# path: src/tensor/verify.h -> MSOPDS_TENSOR_VERIFY_H_.
while IFS= read -r header; do
  rel="${header#src/}"
  guard="MSOPDS_$(echo "$rel" | tr 'a-z/.' 'A-Z__' | tr -d '-')_"
  first_ifndef=$(grep -m1 '^#ifndef' "$header" | awk '{print $2}')
  if [ "$first_ifndef" != "$guard" ]; then
    report include-guard "$header: expected guard $guard, found ${first_ifndef:-none}"
  fi
  if ! grep -q "^#define $guard\$" "$header"; then
    report include-guard "$header: missing '#define $guard'"
  fi
done < <(find src -name '*.h' | sort)

# --- 2. float drift in tensor kernels --------------------------------------
# The autodiff engine is double end-to-end; a stray float silently truncates
# second-order gradients. (float in comments/strings is also banned: cheap
# and keeps the check grep-simple.)
while IFS= read -r match; do
  report float-drift "$match (tensor kernels are double-only)"
done < <(grep -rn --include='*.h' --include='*.cc' -w 'float' src/tensor)

# --- 3. CHECK misuse --------------------------------------------------------
# Bare glog/assert-style macros: everything must go through MSOPDS_CHECK so
# failures carry the streaming context and never compile away.
while IFS= read -r match; do
  report check-misuse "$match (use MSOPDS_CHECK*)"
done < <(grep -rnE --include='*.h' --include='*.cc' \
             '(^|[^A-Z_])(CHECK|DCHECK|CHECK_EQ|CHECK_NE)\(' src \
         | grep -v 'MSOPDS_CHECK')
while IFS= read -r match; do
  report check-misuse "$match (use MSOPDS_CHECK*, not assert)"
done < <(grep -rnE --include='*.h' --include='*.cc' '(^|[^_[:alnum:]])assert\(' src)
# Side effects inside MSOPDS_CHECK read as load-bearing but look removable;
# hoist the mutation out of the check.
while IFS= read -r match; do
  report check-misuse "$match (no ++/-- side effects inside checks)"
done < <(grep -rnE --include='*.h' --include='*.cc' \
             'MSOPDS_CHECK[A-Z_]*\([^)]*(\+\+|--)' src)

# --- 4. unbounded blocking waits in the serve path ---------------------------
# Serving code must never park a thread without a deadline: a missing
# wakeup becomes a hung request instead of a slow one. condition_variable
# waits must be wait_for/wait_until, and future .get()/.wait() needs an
# explicit '// lint:allow-blocking-wait' justifying why the wait is
# bounded by some other contract (e.g. the engine resolves every
# promise). The .get() pattern requires the ')' of a call chain before
# it, so shared_ptr/unique_ptr '.get()' on plain variables stays legal.
while IFS= read -r match; do
  report blocking-wait "$match (deadline-less wait in serve path; use wait_for/wait_until or annotate '// lint:allow-blocking-wait')"
done < <(grep -rnE --include='*.h' --include='*.cc' \
             '\.wait\(|\)\.get\(\)|\)\.wait\(\)' src/serve \
         | grep -v 'lint:allow-blocking-wait')

# --- Summary ---------------------------------------------------------------
if [ "$failures" -ne 0 ]; then
  echo "lint: $failures finding(s)"
  exit 1
fi
echo "lint: clean"
