#!/usr/bin/env bash
# Python-free repo lint: include-guard style, float-vs-double drift in the
# tensor kernels, and CHECK-macro misuse. Exits non-zero on any finding.
# Run from anywhere: paths are resolved relative to the repo root.
set -u

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

failures=0

report() {
  # report <check-name> <file:line-ish message>
  echo "lint: [$1] $2"
  failures=$((failures + 1))
}

# --- 1. Include-guard style -------------------------------------------------
# Every header under src/ must open with an include guard derived from its
# path: src/tensor/verify.h -> MSOPDS_TENSOR_VERIFY_H_.
while IFS= read -r header; do
  rel="${header#src/}"
  guard="MSOPDS_$(echo "$rel" | tr 'a-z/.' 'A-Z__' | tr -d '-')_"
  first_ifndef=$(grep -m1 '^#ifndef' "$header" | awk '{print $2}')
  if [ "$first_ifndef" != "$guard" ]; then
    report include-guard "$header: expected guard $guard, found ${first_ifndef:-none}"
  fi
  if ! grep -q "^#define $guard\$" "$header"; then
    report include-guard "$header: missing '#define $guard'"
  fi
done < <(find src -name '*.h' | sort)

# --- 2. float drift in tensor kernels --------------------------------------
# The autodiff engine is double end-to-end; a stray float silently truncates
# second-order gradients. (float in comments/strings is also banned: cheap
# and keeps the check grep-simple.)
while IFS= read -r match; do
  report float-drift "$match (tensor kernels are double-only)"
done < <(grep -rn --include='*.h' --include='*.cc' -w 'float' src/tensor)

# --- 3. CHECK misuse --------------------------------------------------------
# Bare glog/assert-style macros: everything must go through MSOPDS_CHECK so
# failures carry the streaming context and never compile away.
while IFS= read -r match; do
  report check-misuse "$match (use MSOPDS_CHECK*)"
done < <(grep -rnE --include='*.h' --include='*.cc' \
             '(^|[^A-Z_])(CHECK|DCHECK|CHECK_EQ|CHECK_NE)\(' src \
         | grep -v 'MSOPDS_CHECK')
while IFS= read -r match; do
  report check-misuse "$match (use MSOPDS_CHECK*, not assert)"
done < <(grep -rnE --include='*.h' --include='*.cc' '(^|[^_[:alnum:]])assert\(' src)
# Side effects inside MSOPDS_CHECK read as load-bearing but look removable;
# hoist the mutation out of the check.
while IFS= read -r match; do
  report check-misuse "$match (no ++/-- side effects inside checks)"
done < <(grep -rnE --include='*.h' --include='*.cc' \
             'MSOPDS_CHECK[A-Z_]*\([^)]*(\+\+|--)' src)

# --- 4. unbounded blocking waits (repo-wide) --------------------------------
# No code may park a thread without a deadline: a missing wakeup becomes
# a hang instead of a slowdown. Condition-variable waits go through
# CondVar::WaitFor/WaitUntil; a bare Wait() (or the underlying std wait)
# needs '// lint:allow-blocking-wait' naming the contract that bounds it
# (pool lifecycle, grid progress, the engine resolving every promise).
# Originally scoped to src/serve, now repo-wide since the annotated sync
# layer gave every subsystem the same wait vocabulary.
while IFS= read -r match; do
  report blocking-wait "$match (deadline-less wait; use WaitFor/WaitUntil or annotate '// lint:allow-blocking-wait')"
done < <(grep -rnE --include='*.h' --include='*.cc' \
             '\.wait\(|\.Wait\(' src \
         | grep -v 'lint:allow-blocking-wait')
# future .get()/.wait() is checked only in files that use <future>, with
# the ')' call-chain pattern, so shared_ptr/unique_ptr '.get()' on plain
# variables stays legal everywhere else.
while IFS= read -r future_file; do
  while IFS= read -r match; do
    report blocking-wait "$future_file:$match (deadline-less future wait; annotate '// lint:allow-blocking-wait')"
  done < <(grep -nE '\)\.get\(\)|\)\.wait\(\)' "$future_file" \
           | grep -v 'lint:allow-blocking-wait')
done < <(grep -rlE --include='*.h' --include='*.cc' \
             '^#include <future>' src)

# --- 5. raw SIMD intrinsics outside the dispatch header ---------------------
# Vendor intrinsics get exactly one home, src/tensor/simd.h, where every
# backend shares the fixed-lane reduction schedule (DESIGN.md §14). An
# intrinsic anywhere else can silently change associativity and break the
# scalar/SIMD bit-exactness contract. Escape hatch: '// lint:allow-simd'
# on or above the line, naming why the use is numerics-neutral. The C++
# linter (util/determinism_lint) applies the same rule comment-aware;
# this grep keeps it enforced even before the linter binary builds.
while IFS= read -r match; do
  report raw-simd "$match (intrinsics live in src/tensor/simd.h; annotate '// lint:allow-simd' if numerics-neutral)"
done < <(grep -rnE --include='*.h' --include='*.cc' \
             '#[[:space:]]*include[[:space:]]*<([a-z]+intrin|arm_neon|x86intrin)\.h>|[^A-Za-z0-9_]_mm(256|512)?_[a-z0-9_]+[[:space:]]*\(|__m(128|256|512)[di]?[^A-Za-z0-9_]|[^A-Za-z0-9_]v[a-z0-9_]+q_[fsu](8|16|32|64)[[:space:]]*\(' \
             src \
         | grep -v '^src/tensor/simd\.h:' \
         | grep -v 'lint:allow-simd')

# --- 6. util headers documented in DESIGN.md --------------------------------
# Every header in src/util is cross-cutting infrastructure; each must be
# referenced from DESIGN.md so the design doc stays the complete map of
# the utility layer (the doc names headers like util/sync.h).
while IFS= read -r header; do
  rel="${header#src/}"
  mod="${rel%.h}"  # DESIGN.md names modules without the extension
  if ! grep -q "$mod" DESIGN.md; then
    report design-doc "$header: not referenced in DESIGN.md (document $mod)"
  fi
done < <(find src/util -name '*.h' | sort)

# --- Summary ---------------------------------------------------------------
if [ "$failures" -ne 0 ]; then
  echo "lint: $failures finding(s)"
  exit 1
fi
echo "lint: clean"
