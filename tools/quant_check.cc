// quant_check: quantized-serving parity CLI (DESIGN.md §15).
//
// Gates CI (tools/check.sh stage "quant-parity") on three properties of
// the quantized snapshot path, exiting non-zero on the first violation:
//
//   1. Kernel dispatch parity — simd::DotI8 and simd::DotF16 return
//      bit-identical results from the active vector backend and the
//      pinned scalar reference, for every length n in [0, 64] (covers
//      every n mod 16 remainder class the vector tails branch on), over
//      seeded random inputs including the extreme codes ±127 / half
//      specials.
//   2. Round-trip bounds — DoubleToHalf∘HalfToDouble stays within the
//      binary16 half-ulp bound for normal values (relative error
//      ≤ 2^-11) and is exact on specials (0, powers of two, inf);
//      int8 quantize/dequantize stays within scale/2 per element.
//   3. End-to-end ranking parity — TopKForUsers over fp64/fp16/int8
//      snapshots of one synthetic MF model returns bit-identical
//      (item, score) lists with the vector backend active vs forced
//      scalar, and at 1 vs 4 kernel threads.
//
// Flags:
//   --users=N --items=N --dim=D   synthetic snapshot size (default
//                                 120 x 300 x 24)
//   --max_n=N                     kernel length sweep bound (default 64)
//   --seed=N                      RNG seed (default 11)

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "recsys/matrix_factorization.h"
#include "serve/model_snapshot.h"
#include "serve/quantize.h"
#include "serve/topk.h"
#include "tensor/simd.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

struct Args {
  int64_t users = 120;
  int64_t items = 300;
  int64_t dim = 24;
  int64_t max_n = 64;
  uint64_t seed = 11;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--users=", 0) == 0) {
      args.users = std::atoll(value_of("--users=").c_str());
    } else if (arg.rfind("--items=", 0) == 0) {
      args.items = std::atoll(value_of("--items=").c_str());
    } else if (arg.rfind("--dim=", 0) == 0) {
      args.dim = std::atoll(value_of("--dim=").c_str());
    } else if (arg.rfind("--max_n=", 0) == 0) {
      args.max_n = std::atoll(value_of("--max_n=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(value_of("--seed=").c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

int failures = 0;

void Fail(const char* stage, const std::string& detail) {
  std::fprintf(stderr, "[FAIL] %s: %s\n", stage, detail.c_str());
  ++failures;
}

// --- 1. kernel dispatch parity -------------------------------------------

void CheckKernelParity(const Args& args) {
  const simd::Backend active = simd::ActiveBackend();
  if (active == simd::Backend::kScalar) {
    std::printf("[quant_check] kernel parity: scalar-only build/host, "
                "dispatch parity is trivial\n");
  }
  Rng rng(args.seed);
  for (int64_t n = 0; n <= args.max_n; ++n) {
    std::vector<int8_t> qa(static_cast<size_t>(n)),
        qb(static_cast<size_t>(n));
    std::vector<uint16_t> ha(static_cast<size_t>(n)),
        hb(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      // Extreme codes at the ends so saturated rows are covered.
      qa[i] = static_cast<int8_t>(rng.UniformInt(255) - 127);
      qb[i] = static_cast<int8_t>(rng.UniformInt(255) - 127);
      if (i == 0) qa[i] = 127;
      if (i + 1 == n) qb[i] = -127;
      ha[i] = serve::DoubleToHalf(rng.Uniform() * 8.0 - 4.0);
      hb[i] = serve::DoubleToHalf(rng.Uniform() * 8.0 - 4.0);
    }
    const int32_t q_vec = simd::DotI8(qa.data(), qb.data(), n);
    const double h_vec = simd::DotF16(ha.data(), hb.data(), n);
    const simd::Backend prev =
        simd::internal::SetBackendForTesting(simd::Backend::kScalar);
    const int32_t q_ref = simd::DotI8(qa.data(), qb.data(), n);
    const double h_ref = simd::DotF16(ha.data(), hb.data(), n);
    simd::internal::SetBackendForTesting(prev);
    if (q_vec != q_ref) {
      Fail("DotI8 parity", "n=" + std::to_string(n) + " vector=" +
                               std::to_string(q_vec) + " scalar=" +
                               std::to_string(q_ref));
    }
    if (std::memcmp(&h_vec, &h_ref, sizeof(double)) != 0) {
      Fail("DotF16 parity", "n=" + std::to_string(n) + " vector=" +
                                std::to_string(h_vec) + " scalar=" +
                                std::to_string(h_ref));
    }
  }
  std::printf("[quant_check] kernel parity: n in [0, %lld] OK (backend %s)\n",
              static_cast<long long>(args.max_n), simd::BackendName());
}

// --- 2. round-trip bounds ------------------------------------------------

void CheckRoundTrip(const Args& args) {
  // Half round trip: relative error within 2^-11 on normals, exact on
  // representables.
  Rng rng(args.seed + 1);
  for (int i = 0; i < 20000; ++i) {
    const double v = (rng.Uniform() * 2.0 - 1.0) *
                     std::ldexp(1.0, rng.UniformInt(30) - 14);
    const double back = simd::HalfToDouble(serve::DoubleToHalf(v));
    const double err = std::fabs(back - v);
    const double bound = std::fabs(v) * std::ldexp(1.0, -11) +
                         std::ldexp(1.0, -24);  // + subnormal half-ulp
    if (err > bound) {
      Fail("half round trip",
           "v=" + std::to_string(v) + " back=" + std::to_string(back));
    }
  }
  const double exact_cases[] = {0.0,   -0.0, 1.0,    -1.0,   2.0,
                                0.5,   0.25, 1024.0, -512.0, 65504.0};
  for (const double v : exact_cases) {
    const double back = simd::HalfToDouble(serve::DoubleToHalf(v));
    if (back != v) {
      Fail("half exact case",
           "v=" + std::to_string(v) + " back=" + std::to_string(back));
    }
  }
  if (!std::isinf(
          simd::HalfToDouble(serve::DoubleToHalf(1e300)))) {
    Fail("half overflow", "1e300 must saturate to inf");
  }
  if (!std::isnan(simd::HalfToDouble(serve::DoubleToHalf(
          std::nan(""))))) {
    Fail("half nan", "NaN must round trip to NaN");
  }

  // Int8 round trip: |v - q*scale| <= scale/2 per element.
  const int64_t rows = 64, dim = args.dim;
  std::vector<double> block(static_cast<size_t>(rows * dim));
  for (double& v : block) v = rng.Uniform() * 6.0 - 3.0;
  // Planted all-zero row must dequantize to exact zeros.
  for (int64_t j = 0; j < dim; ++j) block[static_cast<size_t>(j)] = 0.0;
  std::vector<int8_t> q;
  std::vector<float> scales;
  serve::QuantizeRowsInt8(block.data(), rows, dim, &q, &scales);
  for (int64_t r = 0; r < rows; ++r) {
    const double scale = static_cast<double>(scales[static_cast<size_t>(r)]);
    for (int64_t j = 0; j < dim; ++j) {
      const double v = block[static_cast<size_t>(r * dim + j)];
      const double deq =
          static_cast<double>(q[static_cast<size_t>(r * dim + j)]) * scale;
      // scale picks up one binary32 rounding; widen the half-step bound
      // by one ulp's worth to absorb it.
      const double bound = scale * 0.5 * (1.0 + 1e-6);
      if (std::fabs(deq - v) > bound) {
        Fail("int8 round trip", "row=" + std::to_string(r) + " j=" +
                                    std::to_string(j) + " v=" +
                                    std::to_string(v) + " deq=" +
                                    std::to_string(deq));
      }
    }
  }
  for (int64_t j = 0; j < dim; ++j) {
    if (q[static_cast<size_t>(j)] != 0) {
      Fail("int8 zero row", "code " + std::to_string(j) + " not zero");
    }
  }
  std::printf("[quant_check] round-trip bounds OK\n");
}

// --- 3. end-to-end ranking parity ---------------------------------------

std::shared_ptr<const serve::ModelSnapshot> MakeSnapshot(const Args& args) {
  Rng rng(args.seed + 2);
  Dataset dataset;
  dataset.name = "quant_check";
  dataset.num_users = args.users;
  dataset.num_items = args.items;
  for (int64_t u = 0; u < args.users; ++u) {
    for (int r = 0; r < 10; ++r) {
      const int64_t item = rng.UniformInt(args.items);
      if (!dataset.HasRating(u, item)) {
        dataset.ratings.push_back({u, item, 5.0});
      }
    }
  }
  MfConfig config;
  config.latent_dim = args.dim;
  MatrixFactorization model(args.users, args.items, config, 3.5, &rng);
  serve::SnapshotOptions options;
  options.version = 1;
  options.source = "mf-quant-check";
  return serve::ModelSnapshot::FromModel(&model, dataset, options);
}

bool SameResult(const serve::TopKResult& a, const serve::TopKResult& b) {
  return a.k == b.k && a.items == b.items && a.counts == b.counts &&
         std::memcmp(a.scores.data(), b.scores.data(),
                     a.scores.size() * sizeof(double)) == 0;
}

void CheckTopKParity(const Args& args) {
  const auto fp64 = MakeSnapshot(args);
  std::vector<int64_t> users(static_cast<size_t>(args.users));
  std::iota(users.begin(), users.end(), 0);
  serve::TopKOptions options;
  options.k = 10;
  for (const serve::SnapshotPrecision precision :
       {serve::SnapshotPrecision::kFp64, serve::SnapshotPrecision::kFp16,
        serve::SnapshotPrecision::kInt8}) {
    const std::shared_ptr<const serve::ModelSnapshot> snapshot =
        precision == serve::SnapshotPrecision::kFp64
            ? fp64
            : serve::QuantizeSnapshot(*fp64, precision);
    const char* name = serve::SnapshotPrecisionName(precision);
    ThreadPool::Global().SetNumThreads(1);
    const serve::TopKResult vec1 =
        serve::TopKForUsers(*snapshot, users, options);
    ThreadPool::Global().SetNumThreads(4);
    const serve::TopKResult vec4 =
        serve::TopKForUsers(*snapshot, users, options);
    ThreadPool::Global().SetNumThreads(1);
    const simd::Backend prev =
        simd::internal::SetBackendForTesting(simd::Backend::kScalar);
    const serve::TopKResult scalar1 =
        serve::TopKForUsers(*snapshot, users, options);
    simd::internal::SetBackendForTesting(prev);
    if (!SameResult(vec1, vec4)) {
      Fail("topk thread parity", std::string(name) + ": threads 1 vs 4");
    }
    if (!SameResult(vec1, scalar1)) {
      Fail("topk backend parity",
           std::string(name) + ": vector vs scalar backend");
    }
  }
  std::printf("[quant_check] topk parity (backend x threads) OK\n");
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  CheckKernelParity(args);
  CheckRoundTrip(args);
  CheckTopKParity(args);
  if (failures > 0) {
    std::fprintf(stderr, "[quant_check] FAILED with %d finding(s)\n",
                 failures);
    return 1;
  }
  std::printf("[quant_check] all quantization parity checks passed\n");
  return 0;
}

}  // namespace
}  // namespace msopds

int main(int argc, char** argv) { return msopds::Main(argc, argv); }
