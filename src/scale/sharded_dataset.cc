#include "scale/sharded_dataset.h"

#include <algorithm>
#include <filesystem>
#include <queue>
#include <system_error>

#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {
namespace scale {

ShardRange PartitionRange(int64_t total, int64_t num_shards, int64_t shard) {
  MSOPDS_CHECK_GE(total, 0);
  MSOPDS_CHECK_GT(num_shards, 0);
  MSOPDS_CHECK_GE(shard, 0);
  MSOPDS_CHECK_LT(shard, num_shards);
  ShardRange range;
  range.begin = total * shard / num_shards;
  range.end = total * (shard + 1) / num_shards;
  return range;
}

int64_t OwnerShard(int64_t id, int64_t total, int64_t num_shards) {
  MSOPDS_CHECK_GE(id, 0);
  MSOPDS_CHECK_LT(id, total);
  // Initial guess from the inverse of begin = total*s/num_shards, then
  // nudge across the floor-division boundary (at most one step each way).
  int64_t shard = std::min(id * num_shards / total, num_shards - 1);
  while (shard + 1 < num_shards &&
         PartitionRange(total, num_shards, shard).end <= id) {
    ++shard;
  }
  while (shard > 0 && PartitionRange(total, num_shards, shard).begin > id) {
    --shard;
  }
  return shard;
}

std::vector<ShardContents> ShardDataset(const Dataset& dataset,
                                        int64_t num_shards) {
  MSOPDS_CHECK_GT(num_shards, 0);
  const int64_t num_users = dataset.num_users;
  const int64_t num_items = dataset.num_items;

  std::vector<ShardContents> shards(static_cast<size_t>(num_shards));
  for (int64_t s = 0; s < num_shards; ++s) {
    ShardContents& shard = shards[static_cast<size_t>(s)];
    shard.shard_index = s;
    shard.num_shards = num_shards;
    const ShardRange users = PartitionRange(num_users, num_shards, s);
    const ShardRange items = PartitionRange(num_items, num_shards, s);
    shard.user_begin = users.begin;
    shard.user_end = users.end;
    shard.item_begin = items.begin;
    shard.item_end = items.end;
    shard.num_users = num_users;
    shard.num_items = num_items;
    shard.total_ratings = static_cast<int64_t>(dataset.ratings.size());
    shard.name = dataset.name;
  }

  // Ratings: one counting pass, then per-user cursors fill the CSR in
  // original order (user-major with within-user order preserved, which
  // is exactly the stable user-major canonicalization).
  std::vector<int64_t> per_user(static_cast<size_t>(num_users), 0);
  for (const Rating& r : dataset.ratings) {
    ++per_user[static_cast<size_t>(r.user)];
  }
  for (ShardContents& shard : shards) {
    shard.rating_offsets.assign(static_cast<size_t>(shard.owned_users() + 1),
                                0);
    for (int64_t u = shard.user_begin; u < shard.user_end; ++u) {
      shard.rating_offsets[static_cast<size_t>(u - shard.user_begin + 1)] =
          shard.rating_offsets[static_cast<size_t>(u - shard.user_begin)] +
          per_user[static_cast<size_t>(u)];
    }
    const int64_t rows = shard.rating_offsets.back();
    shard.rating_items.resize(static_cast<size_t>(rows));
    shard.rating_values.resize(static_cast<size_t>(rows));
    shard.rating_seqs.resize(static_cast<size_t>(rows));
  }
  std::vector<int64_t> cursor(static_cast<size_t>(num_users), 0);
  for (size_t seq = 0; seq < dataset.ratings.size(); ++seq) {
    const Rating& r = dataset.ratings[seq];
    const int64_t s = OwnerShard(r.user, num_users, num_shards);
    ShardContents& shard = shards[static_cast<size_t>(s)];
    const int64_t row =
        shard.rating_offsets[static_cast<size_t>(r.user - shard.user_begin)] +
        cursor[static_cast<size_t>(r.user)];
    ++cursor[static_cast<size_t>(r.user)];
    shard.rating_items[static_cast<size_t>(row)] = r.item;
    shard.rating_values[static_cast<size_t>(row)] = r.value;
    shard.rating_seqs[static_cast<size_t>(row)] = static_cast<int64_t>(seq);
  }

  // Graph adjacency slices, copied verbatim (list order is part of the
  // merge bit-identity contract).
  for (ShardContents& shard : shards) {
    shard.social_offsets.assign(static_cast<size_t>(shard.owned_users() + 1),
                                0);
    for (int64_t u = shard.user_begin; u < shard.user_end; ++u) {
      const auto& neighbors = dataset.social.Neighbors(u);
      shard.social_offsets[static_cast<size_t>(u - shard.user_begin + 1)] =
          shard.social_offsets[static_cast<size_t>(u - shard.user_begin)] +
          static_cast<int64_t>(neighbors.size());
      shard.social_neighbors.insert(shard.social_neighbors.end(),
                                    neighbors.begin(), neighbors.end());
    }
    shard.item_offsets.assign(static_cast<size_t>(shard.owned_items() + 1),
                              0);
    for (int64_t i = shard.item_begin; i < shard.item_end; ++i) {
      const auto& neighbors = dataset.items.Neighbors(i);
      shard.item_offsets[static_cast<size_t>(i - shard.item_begin + 1)] =
          shard.item_offsets[static_cast<size_t>(i - shard.item_begin)] +
          static_cast<int64_t>(neighbors.size());
      shard.item_neighbors.insert(shard.item_neighbors.end(),
                                  neighbors.begin(), neighbors.end());
    }
  }
  return shards;
}

StatusOr<std::vector<std::string>> WriteShards(const Dataset& dataset,
                                               const std::string& directory,
                                               int64_t num_shards) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create shard directory " + directory +
                            ": " + ec.message());
  }
  const ShardWriter writer(directory);
  std::vector<std::string> paths;
  paths.reserve(static_cast<size_t>(num_shards));
  for (const ShardContents& shard : ShardDataset(dataset, num_shards)) {
    auto path = writer.Write(shard);
    if (!path.ok()) return path.status();
    paths.push_back(std::move(path).value());
  }
  return paths;
}

StatusOr<std::vector<std::string>> ListShardPaths(
    const std::string& directory) {
  // Find the shard count from any one member, then enumerate the fixed
  // file-name pattern — deterministic regardless of directory order.
  std::error_code ec;
  int64_t num_shards = -1;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    const std::string file = entry.path().filename().string();
    long long index = 0, total = 0;
    if (std::sscanf(file.c_str(), "shard-%05lld-of-%05lld.msd", &index,
                    &total) == 2) {
      num_shards = static_cast<int64_t>(total);
      break;
    }
  }
  if (ec) {
    return Status::NotFound("cannot list shard directory " + directory +
                            ": " + ec.message());
  }
  if (num_shards <= 0) {
    return Status::NotFound("no shard files under " + directory);
  }
  std::vector<std::string> paths;
  paths.reserve(static_cast<size_t>(num_shards));
  for (int64_t s = 0; s < num_shards; ++s) {
    paths.push_back(directory + "/" + ShardFileName(s, num_shards));
  }
  return paths;
}

namespace {

Status Inconsistent(const std::string& path, const std::string& what) {
  return Status::InvalidArgument(path + ": " + what);
}

}  // namespace

StatusOr<Dataset> MergeShards(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("MergeShards needs at least one shard");
  }
  std::vector<ShardReader> readers;
  readers.reserve(paths.size());
  for (const std::string& path : paths) {
    auto reader = ShardReader::Open(path);
    if (!reader.ok()) return reader.status();
    readers.push_back(std::move(reader).value());
  }

  const ShardReader& first = readers.front();
  const int64_t num_shards = first.num_shards();
  if (num_shards != static_cast<int64_t>(readers.size())) {
    return Inconsistent(
        first.path(),
        StrFormat("shard set is incomplete: %zu file(s) for num_shards %lld",
                  readers.size(), static_cast<long long>(num_shards)));
  }
  std::vector<bool> seen(static_cast<size_t>(num_shards), false);
  int64_t ratings_across_shards = 0;
  for (const ShardReader& reader : readers) {
    if (reader.num_shards() != num_shards ||
        reader.num_users() != first.num_users() ||
        reader.num_items() != first.num_items() ||
        reader.total_ratings() != first.total_ratings() ||
        reader.name() != first.name()) {
      return Inconsistent(reader.path(),
                          "shard disagrees with " + first.path() +
                              " on global metadata (different shard sets?)");
    }
    if (seen[static_cast<size_t>(reader.shard_index())]) {
      return Inconsistent(reader.path(),
                          StrFormat("duplicate shard index %lld",
                                    static_cast<long long>(
                                        reader.shard_index())));
    }
    seen[static_cast<size_t>(reader.shard_index())] = true;
    const ShardRange users = PartitionRange(first.num_users(), num_shards,
                                            reader.shard_index());
    const ShardRange items = PartitionRange(first.num_items(), num_shards,
                                            reader.shard_index());
    if (reader.user_begin() != users.begin ||
        reader.user_end() != users.end ||
        reader.item_begin() != items.begin ||
        reader.item_end() != items.end) {
      return Inconsistent(reader.path(),
                          "shard ranges do not match the canonical "
                          "partition for its index");
    }
    ratings_across_shards += reader.num_ratings();
  }
  if (ratings_across_shards != first.total_ratings()) {
    return Inconsistent(
        first.path(),
        StrFormat("shards hold %lld ratings but the header claims %lld",
                  static_cast<long long>(ratings_across_shards),
                  static_cast<long long>(first.total_ratings())));
  }

  Dataset dataset;
  dataset.name = first.name();
  dataset.num_users = first.num_users();
  dataset.num_items = first.num_items();

  // Ratings: per shard, a seq-sorted permutation of its rows; then a
  // k-way heap merge pops the globally smallest sequence number. Seqs
  // are unique by construction, so the pop order — and therefore the
  // merged rating order — is a pure function of the shard contents.
  struct ShardStream {
    std::vector<int64_t> by_seq;  // row indices sorted by rating_seqs
    std::vector<int64_t> row_user;
    size_t pos = 0;
  };
  std::vector<ShardStream> streams(readers.size());
  for (size_t si = 0; si < readers.size(); ++si) {
    const ShardReader& reader = readers[si];
    ShardStream& stream = streams[si];
    stream.by_seq.resize(static_cast<size_t>(reader.num_ratings()));
    stream.row_user.resize(static_cast<size_t>(reader.num_ratings()));
    for (int64_t u = reader.user_begin(); u < reader.user_end(); ++u) {
      const int64_t row_begin =
          reader.rating_offsets()[u - reader.user_begin()];
      const int64_t row_end =
          reader.rating_offsets()[u - reader.user_begin() + 1];
      for (int64_t row = row_begin; row < row_end; ++row) {
        stream.row_user[static_cast<size_t>(row)] = u;
      }
    }
    for (int64_t row = 0; row < reader.num_ratings(); ++row) {
      stream.by_seq[static_cast<size_t>(row)] = row;
    }
    const int64_t* seqs = reader.rating_seqs();
    std::sort(stream.by_seq.begin(), stream.by_seq.end(),
              [seqs](int64_t a, int64_t b) { return seqs[a] < seqs[b]; });
  }
  using HeapEntry = std::pair<int64_t, size_t>;  // (seq, shard stream)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (size_t si = 0; si < streams.size(); ++si) {
    if (!streams[si].by_seq.empty()) {
      heap.emplace(readers[si].rating_seqs()[streams[si].by_seq[0]], si);
    }
  }
  dataset.ratings.reserve(static_cast<size_t>(first.total_ratings()));
  int64_t previous_seq = -1;
  while (!heap.empty()) {
    const auto [seq, si] = heap.top();
    heap.pop();
    if (seq == previous_seq) {
      return Inconsistent(readers[si].path(),
                          StrFormat("duplicate rating sequence number %lld",
                                    static_cast<long long>(seq)));
    }
    previous_seq = seq;
    ShardStream& stream = streams[si];
    const ShardReader& reader = readers[si];
    const int64_t row = stream.by_seq[stream.pos];
    dataset.ratings.push_back({stream.row_user[static_cast<size_t>(row)],
                               reader.rating_items()[row],
                               reader.rating_values()[row]});
    ++stream.pos;
    if (stream.pos < stream.by_seq.size()) {
      heap.emplace(reader.rating_seqs()[stream.by_seq[stream.pos]], si);
    }
  }

  // Graphs: concatenate the stored adjacency slices (readers are already
  // verified to tile the user/item ranges) and rebuild with order
  // preserved.
  std::vector<std::vector<int64_t>> social(
      static_cast<size_t>(dataset.num_users));
  std::vector<std::vector<int64_t>> items(
      static_cast<size_t>(dataset.num_items));
  for (const ShardReader& reader : readers) {
    for (int64_t u = reader.user_begin(); u < reader.user_end(); ++u) {
      const int64_t begin = reader.social_offsets()[u - reader.user_begin()];
      const int64_t end =
          reader.social_offsets()[u - reader.user_begin() + 1];
      social[static_cast<size_t>(u)].assign(
          reader.social_neighbors() + begin, reader.social_neighbors() + end);
    }
    for (int64_t i = reader.item_begin(); i < reader.item_end(); ++i) {
      const int64_t begin = reader.item_offsets()[i - reader.item_begin()];
      const int64_t end = reader.item_offsets()[i - reader.item_begin() + 1];
      items[static_cast<size_t>(i)].assign(reader.item_neighbors() + begin,
                                           reader.item_neighbors() + end);
    }
  }
  auto social_graph = UndirectedGraph::FromAdjacency(std::move(social));
  if (!social_graph.ok()) {
    return Inconsistent(first.path(), "social adjacency slices invalid: " +
                                          social_graph.status().message());
  }
  dataset.social = std::move(social_graph).value();
  auto item_graph = UndirectedGraph::FromAdjacency(std::move(items));
  if (!item_graph.ok()) {
    return Inconsistent(first.path(), "item adjacency slices invalid: " +
                                          item_graph.status().message());
  }
  dataset.items = std::move(item_graph).value();
  return dataset;
}

bool DatasetsIdentical(const Dataset& a, const Dataset& b, std::string* why) {
  auto differ = [why](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (a.name != b.name) return differ("name differs");
  if (a.num_users != b.num_users) return differ("num_users differs");
  if (a.num_items != b.num_items) return differ("num_items differs");
  if (a.ratings.size() != b.ratings.size()) {
    return differ(StrFormat("rating count differs (%zu vs %zu)",
                            a.ratings.size(), b.ratings.size()));
  }
  for (size_t k = 0; k < a.ratings.size(); ++k) {
    if (!(a.ratings[k] == b.ratings[k])) {
      return differ(StrFormat(
          "rating %zu differs: (%lld,%lld,%.17g) vs (%lld,%lld,%.17g)", k,
          static_cast<long long>(a.ratings[k].user),
          static_cast<long long>(a.ratings[k].item), a.ratings[k].value,
          static_cast<long long>(b.ratings[k].user),
          static_cast<long long>(b.ratings[k].item), b.ratings[k].value));
    }
  }
  if (!a.social.SameStructure(b.social)) {
    return differ("social graph structure differs");
  }
  if (!a.items.SameStructure(b.items)) {
    return differ("item graph structure differs");
  }
  if (why != nullptr) why->clear();
  return true;
}

std::vector<Rating> UserMajorRatings(const Dataset& dataset) {
  std::vector<Rating> ratings = dataset.ratings;
  std::stable_sort(
      ratings.begin(), ratings.end(),
      [](const Rating& a, const Rating& b) { return a.user < b.user; });
  return ratings;
}

}  // namespace scale
}  // namespace msopds
