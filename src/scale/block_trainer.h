#ifndef MSOPDS_SCALE_BLOCK_TRAINER_H_
#define MSOPDS_SCALE_BLOCK_TRAINER_H_

#include <string>
#include <vector>

#include "recsys/matrix_factorization.h"
#include "recsys/trainer.h"
#include "util/status.h"

namespace msopds {
namespace scale {

/// Outcome of an out-of-core training run. The training fields mirror
/// TrainResult; the scale fields report what the shard-at-a-time driver
/// actually touched.
struct OutOfCoreResult {
  std::vector<double> loss_history;
  double final_loss = 0.0;
  int retries = 0;
  int fault_events = 0;
  bool healthy = true;
  std::string failure;

  /// Shard loads across all epochs (including the final-loss pass).
  int64_t shards_visited = 0;
  /// Largest single shard file touched — the out-of-core working set is
  /// bounded by this plus the model parameters, not by the dataset.
  int64_t peak_shard_bytes = 0;
};

/// Full-batch MF training that streams the dataset one shard at a time
/// instead of holding it in memory, bit-identical to
/// TrainModel(model, UserMajorRatings(dataset), options) at any shard
/// count (the equivalence contract of DESIGN.md §17, asserted by
/// ctest -L scale):
///
///  - the shard CSR enumerates ratings in exactly the canonical
///    user-major order, so the manual gradient loop replays the tape's
///    per-rating accumulation sequence;
///  - the loss replicates Tensor::Sum's fixed kReduceGrain chunk grid
///    and pairwise partial fold, streamed across shard boundaries, so
///    the scalar loss — and with it the divergence detector, the retry
///    trace, and fault-injection behavior — matches to the last bit.
///
/// Only full-batch runs are supported (options.batch_size must be 0;
/// mini-batch shuffling is a cross-shard permutation by design).
/// `resident` keeps every shard mapped for the whole run (the in-memory
/// comparison arm of BENCH_scale); the default re-maps one shard at a
/// time, bounding peak RSS by the largest shard.
///
/// For LightGCN / HetRecSys victims the graph propagation couples users
/// across shard cuts, so shard-local training is an approximation there;
/// the documented equivalence bound lives in DESIGN.md §17. This driver
/// is exact for MF.
StatusOr<OutOfCoreResult> TrainMfOutOfCore(
    MatrixFactorization* model, const std::vector<std::string>& shard_paths,
    const TrainOptions& options, bool resident = false);

}  // namespace scale
}  // namespace msopds

#endif  // MSOPDS_SCALE_BLOCK_TRAINER_H_
