#include "scale/ingest.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "data/dataset.h"
#include "graph/item_graph_builder.h"
#include "scale/sharded_dataset.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {
namespace scale {
namespace {

// Fixed-width binary spill records (plain int64/double members, no
// padding — asserted so the files are readable back with one read()).
struct RatingSpill {
  int64_t user;
  int64_t item;
  double value;
  int64_t ord;  // valid-row ordinal; monotone in source order
};
static_assert(sizeof(RatingSpill) == 32, "RatingSpill must be packed");

struct SocialSpill {
  int64_t owner;
  int64_t other;
  int64_t ord;
};
static_assert(sizeof(SocialSpill) == 24, "SocialSpill must be packed");

std::string RatingSpillPath(const std::string& dir, int64_t shard) {
  return dir + "/" + StrFormat("ratings-%05lld.spill",
                               static_cast<long long>(shard));
}

std::string SocialSpillPath(const std::string& dir, int64_t shard) {
  return dir + "/" + StrFormat("social-%05lld.spill",
                               static_cast<long long>(shard));
}

template <typename T>
StatusOr<std::vector<T>> ReadSpill(const std::string& path) {
  std::error_code ec;
  const uint64_t bytes = std::filesystem::file_size(path, ec);
  if (ec) return std::vector<T>();  // never written: shard had no rows
  if (bytes % sizeof(T) != 0) {
    return Status::Internal(path + ": spill size not a record multiple");
  }
  std::vector<T> records(bytes / sizeof(T));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::Internal("cannot reopen spill " + path);
  }
  in.read(reinterpret_cast<char*>(records.data()),
          static_cast<std::streamsize>(bytes));
  if (!in) return Status::Internal(path + ": short spill read");
  return records;
}

// Sorted + de-duplicated view of one shard's rating spill: last write
// wins per (user, item), sequence number = first-occurrence ordinal,
// rows ordered user-major by sequence (the shard CSR order).
struct DedupedRating {
  int64_t user;
  int64_t item;
  double value;
  int64_t seq;
};

std::vector<DedupedRating> DedupShardRatings(std::vector<RatingSpill> spill) {
  std::sort(spill.begin(), spill.end(),
            [](const RatingSpill& a, const RatingSpill& b) {
              if (a.user != b.user) return a.user < b.user;
              if (a.item != b.item) return a.item < b.item;
              return a.ord < b.ord;
            });
  std::vector<DedupedRating> rows;
  rows.reserve(spill.size());
  for (size_t k = 0; k < spill.size();) {
    size_t run_end = k + 1;
    while (run_end < spill.size() && spill[run_end].user == spill[k].user &&
           spill[run_end].item == spill[k].item) {
      ++run_end;
    }
    rows.push_back({spill[k].user, spill[k].item, spill[run_end - 1].value,
                    spill[k].ord});
    k = run_end;
  }
  std::sort(rows.begin(), rows.end(),
            [](const DedupedRating& a, const DedupedRating& b) {
              if (a.user != b.user) return a.user < b.user;
              return a.seq < b.seq;
            });
  return rows;
}

}  // namespace

StatusOr<IngestStats> IngestTsvToShards(const std::string& ratings_path,
                                        const std::string& trust_path,
                                        const std::string& shard_dir,
                                        const IngestOptions& options) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  const int64_t num_shards = options.num_shards;
  std::error_code ec;
  const std::string spill_dir = shard_dir + "/.ingest-spill";
  std::filesystem::create_directories(spill_dir, ec);
  if (ec) {
    return Status::Internal("cannot create spill directory " + spill_dir +
                            ": " + ec.message());
  }

  IngestStats stats;
  // Bad-row tolerance shared across both files, mirroring LoadTsv.
  int bad_rows = 0;
  auto tolerate = [&](const std::string& path, int64_t line, int64_t offset,
                      const std::string& reason) {
    ++bad_rows;
    const bool tolerated = bad_rows <= options.max_bad_rows;
    if (tolerated) {
      MSOPDS_LOG(Warning) << path << ":" << line << " (byte " << offset
                          << "): " << reason << " (skipped; bad row "
                          << bad_rows << "/" << options.max_bad_rows
                          << " tolerated)";
    }
    return tolerated;
  };
  auto located = [](const std::string& path, int64_t line, int64_t offset,
                    const std::string& reason) {
    return StrFormat("%s:%lld (byte %lld): %s", path.c_str(),
                     static_cast<long long>(line),
                     static_cast<long long>(offset), reason.c_str());
  };

  // ---- Pass 1: stream ratings, intern ids, validate. ------------------
  std::unordered_map<int64_t, int64_t> user_ids;
  std::unordered_map<int64_t, int64_t> item_ids;
  auto parse_rating = [&](const DelimitedRow& row, int64_t* raw_user,
                          int64_t* raw_item, double* value,
                          std::string* reason) {
    if (row.fields.size() < 3) {
      *reason = "ratings row needs 3 fields";
      return false;
    }
    if (!ParseInt64(row.fields[0], raw_user) ||
        !ParseInt64(row.fields[1], raw_item) ||
        !ParseDouble(row.fields[2], value)) {
      *reason = "malformed ratings row";
      return false;
    }
    if (*value < kMinRating || *value > kMaxRating) {
      *reason = StrFormat("rating %.3f outside [1,5]", *value);
      return false;
    }
    return true;
  };
  Status scan = ForEachDelimitedRow(
      ratings_path, options.delimiter,
      [&](const DelimitedRow& row, int64_t offset) {
        int64_t raw_user = 0, raw_item = 0;
        double value = 0.0;
        std::string reason;
        if (!parse_rating(row, &raw_user, &raw_item, &value, &reason)) {
          if (tolerate(ratings_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::InvalidArgument(
              located(ratings_path, row.line, offset, reason));
        }
        user_ids.emplace(raw_user, static_cast<int64_t>(user_ids.size()));
        item_ids.emplace(raw_item, static_cast<int64_t>(item_ids.size()));
        ++stats.rating_rows;
        return Status::Ok();
      });
  if (!scan.ok()) return scan;
  const int64_t num_users = static_cast<int64_t>(user_ids.size());
  const int64_t num_items = static_cast<int64_t>(item_ids.size());

  // ---- Pass 2: spill trust + ratings into per-shard files. Routing a
  // row to its owner shard needs the final user count, hence the second
  // streaming pass over the ratings file.
  std::vector<std::ofstream> rating_spills;
  std::vector<std::ofstream> social_spills;
  for (int64_t s = 0; s < num_shards; ++s) {
    rating_spills.emplace_back(RatingSpillPath(spill_dir, s),
                               std::ios::binary | std::ios::trunc);
    social_spills.emplace_back(SocialSpillPath(spill_dir, s),
                               std::ios::binary | std::ios::trunc);
    if (!rating_spills.back().is_open() || !social_spills.back().is_open()) {
      return Status::Internal("cannot open spill files under " + spill_dir);
    }
  }
  auto spill = [](std::ofstream* out, const void* record, size_t bytes) {
    out->write(reinterpret_cast<const char*>(record),
               static_cast<std::streamsize>(bytes));
  };

  int64_t trust_ord = 0;
  scan = ForEachDelimitedRow(
      trust_path, options.delimiter,
      [&](const DelimitedRow& row, int64_t offset) {
        if (row.fields.size() < 2) {
          const std::string reason = "trust row needs 2 fields";
          if (tolerate(trust_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::InvalidArgument(
              located(trust_path, row.line, offset, reason));
        }
        int64_t raw_a = 0, raw_b = 0;
        if (!ParseInt64(row.fields[0], &raw_a) ||
            !ParseInt64(row.fields[1], &raw_b)) {
          const std::string reason = "malformed trust row";
          if (tolerate(trust_path, row.line, offset, reason)) {
            return Status::Ok();
          }
          return Status::InvalidArgument(
              located(trust_path, row.line, offset, reason));
        }
        ++stats.trust_rows;
        // Only links between users in the rating records; self-loops are
        // no-ops, exactly as UndirectedGraph::AddEdge treats them.
        auto ia = user_ids.find(raw_a);
        auto ib = user_ids.find(raw_b);
        if (ia == user_ids.end() || ib == user_ids.end() ||
            ia->second == ib->second) {
          return Status::Ok();
        }
        const int64_t a = ia->second;
        const int64_t b = ib->second;
        // Both directions get the same ordinal, so the per-owner min-ord
        // de-duplication below reproduces AddEdge's first-occurrence
        // insertion order on both endpoints.
        const SocialSpill forward{a, b, trust_ord};
        const SocialSpill backward{b, a, trust_ord};
        ++trust_ord;
        spill(&social_spills[static_cast<size_t>(
                  OwnerShard(a, num_users, num_shards))],
              &forward, sizeof(forward));
        spill(&social_spills[static_cast<size_t>(
                  OwnerShard(b, num_users, num_shards))],
              &backward, sizeof(backward));
        return Status::Ok();
      });
  if (!scan.ok()) return scan;

  int64_t rating_ord = 0;
  scan = ForEachDelimitedRow(
      ratings_path, options.delimiter,
      [&](const DelimitedRow& row, int64_t /*offset*/) {
        int64_t raw_user = 0, raw_item = 0;
        double value = 0.0;
        std::string reason;
        if (!parse_rating(row, &raw_user, &raw_item, &value, &reason)) {
          // Pass 1 already charged the tolerance budget for this row.
          return Status::Ok();
        }
        const RatingSpill record{user_ids.at(raw_user), item_ids.at(raw_item),
                                 value, rating_ord};
        ++rating_ord;
        spill(&rating_spills[static_cast<size_t>(
                  OwnerShard(record.user, num_users, num_shards))],
              &record, sizeof(record));
        return Status::Ok();
      });
  if (!scan.ok()) return scan;
  for (auto& out : rating_spills) out.close();
  for (auto& out : social_spills) out.close();

  // ---- Finalize A: per-shard de-dup counts (the global rating total
  // goes into every shard header, so it must be known before any shard
  // is written), plus the co-rating records when the item graph is on.
  int64_t total_ratings = 0;
  std::vector<RaterRecord> item_records;  // ordered by seq below
  std::vector<int64_t> item_record_seqs;
  for (int64_t s = 0; s < num_shards; ++s) {
    auto spilled = ReadSpill<RatingSpill>(RatingSpillPath(spill_dir, s));
    if (!spilled.ok()) return spilled.status();
    const std::vector<DedupedRating> rows =
        DedupShardRatings(std::move(spilled).value());
    total_ratings += static_cast<int64_t>(rows.size());
    if (options.build_item_graph) {
      for (const DedupedRating& r : rows) {
        item_records.push_back({r.user, r.item});
        item_record_seqs.push_back(r.seq);
      }
    }
  }

  // The item graph is the one inherently global structure (see
  // IngestOptions::build_item_graph): sort the co-rating records back
  // into global first-occurrence order and build it in memory.
  UndirectedGraph item_graph(num_items);
  if (options.build_item_graph) {
    std::vector<size_t> by_seq(item_records.size());
    for (size_t k = 0; k < by_seq.size(); ++k) by_seq[k] = k;
    std::sort(by_seq.begin(), by_seq.end(), [&](size_t a, size_t b) {
      return item_record_seqs[a] < item_record_seqs[b];
    });
    std::vector<RaterRecord> ordered;
    ordered.reserve(item_records.size());
    for (size_t k : by_seq) ordered.push_back(item_records[k]);
    item_records.clear();
    item_records.shrink_to_fit();
    item_record_seqs.clear();
    item_record_seqs.shrink_to_fit();
    item_graph = BuildItemGraph(ordered, num_items);
  }

  // ---- Finalize B: build + write each shard (peak memory: one shard).
  std::filesystem::create_directories(shard_dir, ec);
  const ShardWriter writer(shard_dir);
  for (int64_t s = 0; s < num_shards; ++s) {
    ShardContents shard;
    shard.shard_index = s;
    shard.num_shards = num_shards;
    const ShardRange users = PartitionRange(num_users, num_shards, s);
    const ShardRange items = PartitionRange(num_items, num_shards, s);
    shard.user_begin = users.begin;
    shard.user_end = users.end;
    shard.item_begin = items.begin;
    shard.item_end = items.end;
    shard.num_users = num_users;
    shard.num_items = num_items;
    shard.total_ratings = total_ratings;
    shard.name = options.name;

    auto spilled = ReadSpill<RatingSpill>(RatingSpillPath(spill_dir, s));
    if (!spilled.ok()) return spilled.status();
    const std::vector<DedupedRating> rows =
        DedupShardRatings(std::move(spilled).value());
    shard.rating_offsets.assign(static_cast<size_t>(shard.owned_users() + 1),
                                0);
    for (const DedupedRating& r : rows) {
      ++shard.rating_offsets[static_cast<size_t>(r.user - users.begin + 1)];
      shard.rating_items.push_back(r.item);
      shard.rating_values.push_back(r.value);
      shard.rating_seqs.push_back(r.seq);
    }
    for (size_t u = 1; u < shard.rating_offsets.size(); ++u) {
      shard.rating_offsets[u] += shard.rating_offsets[u - 1];
    }

    auto social = ReadSpill<SocialSpill>(SocialSpillPath(spill_dir, s));
    if (!social.ok()) return social.status();
    std::vector<SocialSpill> edges = std::move(social).value();
    std::sort(edges.begin(), edges.end(),
              [](const SocialSpill& a, const SocialSpill& b) {
                if (a.owner != b.owner) return a.owner < b.owner;
                if (a.other != b.other) return a.other < b.other;
                return a.ord < b.ord;
              });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const SocialSpill& a, const SocialSpill& b) {
                              return a.owner == b.owner && a.other == b.other;
                            }),
                edges.end());
    std::sort(edges.begin(), edges.end(),
              [](const SocialSpill& a, const SocialSpill& b) {
                if (a.owner != b.owner) return a.owner < b.owner;
                return a.ord < b.ord;
              });
    shard.social_offsets.assign(static_cast<size_t>(shard.owned_users() + 1),
                                0);
    for (const SocialSpill& e : edges) {
      ++shard.social_offsets[static_cast<size_t>(e.owner - users.begin + 1)];
      shard.social_neighbors.push_back(e.other);
    }
    for (size_t u = 1; u < shard.social_offsets.size(); ++u) {
      shard.social_offsets[u] += shard.social_offsets[u - 1];
    }
    stats.social_edges += static_cast<int64_t>(edges.size());

    shard.item_offsets.assign(static_cast<size_t>(shard.owned_items() + 1),
                              0);
    for (int64_t i = items.begin; i < items.end; ++i) {
      const auto& neighbors = item_graph.Neighbors(i);
      shard.item_offsets[static_cast<size_t>(i - items.begin + 1)] =
          shard.item_offsets[static_cast<size_t>(i - items.begin)] +
          static_cast<int64_t>(neighbors.size());
      shard.item_neighbors.insert(shard.item_neighbors.end(),
                                  neighbors.begin(), neighbors.end());
    }

    auto path = writer.Write(shard);
    if (!path.ok()) return path.status();
    stats.shard_paths.push_back(std::move(path).value());
  }

  std::filesystem::remove_all(spill_dir, ec);
  stats.num_users = num_users;
  stats.num_items = num_items;
  stats.num_ratings = total_ratings;
  stats.bad_rows = bad_rows;
  stats.social_edges /= 2;  // each undirected edge was counted per endpoint
  return stats;
}

}  // namespace scale
}  // namespace msopds
