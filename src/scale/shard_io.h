#ifndef MSOPDS_SCALE_SHARD_IO_H_
#define MSOPDS_SCALE_SHARD_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace msopds {
namespace scale {

/// One user-range shard of a heterogeneous dataset in its serialized
/// form (DESIGN.md §17). Users are partitioned into contiguous ranges;
/// a shard owns the CSR rating rows and social adjacency of its user
/// range plus the item-graph adjacency of a contiguous item range.
/// Every rating carries a global sequence number (`rating_seqs`) — its
/// first-occurrence ordinal in the source — so the k-way merge can
/// reproduce the original `Dataset::ratings` order bit-exactly.
struct ShardContents {
  // Header metadata.
  int64_t shard_index = 0;
  int64_t num_shards = 1;
  int64_t user_begin = 0;  // owned user range [user_begin, user_end)
  int64_t user_end = 0;
  int64_t item_begin = 0;  // owned item range [item_begin, item_end)
  int64_t item_end = 0;
  int64_t num_users = 0;   // global counts
  int64_t num_items = 0;
  int64_t total_ratings = 0;
  std::string name;

  // Rating CSR over owned users: row u (user_begin + u) spans
  // [rating_offsets[u], rating_offsets[u + 1]).
  std::vector<int64_t> rating_offsets;  // size owned_users() + 1
  std::vector<int64_t> rating_items;
  std::vector<double> rating_values;
  std::vector<int64_t> rating_seqs;

  // Social adjacency slices of owned users, neighbor ids global, list
  // order identical to UndirectedGraph::Neighbors() of the source graph.
  std::vector<int64_t> social_offsets;  // size owned_users() + 1
  std::vector<int64_t> social_neighbors;

  // Item-graph adjacency slices of owned items (same layout).
  std::vector<int64_t> item_offsets;  // size owned_items() + 1
  std::vector<int64_t> item_neighbors;

  int64_t owned_users() const { return user_end - user_begin; }
  int64_t owned_items() const { return item_end - item_begin; }
  int64_t num_ratings() const {
    return static_cast<int64_t>(rating_items.size());
  }
};

/// Serialized layout (little-endian, all sections 8-byte aligned):
///   [0,8)    magic "MSOPDSH1"
///   [8,120)  14 int64 header fields (version, shard_index, num_shards,
///            user_begin, user_end, item_begin, item_end, num_users,
///            num_items, num_ratings, total_ratings, social_entries,
///            item_entries, name_len)
///   [120,128) header checksum: FNV-1a 64 over bytes [0, 120)
///   [128,136) payload checksum: FNV-1a 64 over bytes [136, EOF)
///   [136,..)  payload: name (zero-padded to 8), rating_offsets,
///            rating_items, rating_values, rating_seqs, social_offsets,
///            social_neighbors, item_offsets, item_neighbors
inline constexpr char kShardMagic[8] = {'M', 'S', 'O', 'P', 'D', 'S',
                                        'H', '1'};
inline constexpr int64_t kShardFormatVersion = 1;
inline constexpr int64_t kShardHeaderBytes = 136;

/// "shard-00003-of-00016.msd" — fixed-width so a sorted directory
/// listing is also shard-index order.
std::string ShardFileName(int64_t shard_index, int64_t num_shards);

/// Serializes one shard. Writes to `path + ".tmp"` and renames into
/// place, so a crash mid-write never leaves a half-written file under
/// the final name.
class ShardWriter {
 public:
  explicit ShardWriter(std::string directory);

  /// Writes `contents` as ShardFileName(...) under the directory;
  /// returns the final path.
  StatusOr<std::string> Write(const ShardContents& contents) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string directory_;
};

/// Read-only view of one serialized shard. Open() validates the magic,
/// version, both checksums, and section-size consistency before any
/// payload pointer is handed out; every rejection names the file and the
/// byte offset of the offending field ("path: offset 120: ..."). The
/// payload is mmap-backed where the platform supports it (so sequential
/// shard-at-a-time training keeps at most ~one shard resident), with a
/// heap read fallback elsewhere.
class ShardReader {
 public:
  static StatusOr<ShardReader> Open(const std::string& path);

  ShardReader(ShardReader&& other) noexcept;
  ShardReader& operator=(ShardReader&& other) noexcept;
  ShardReader(const ShardReader&) = delete;
  ShardReader& operator=(const ShardReader&) = delete;
  ~ShardReader();

  const std::string& path() const { return path_; }
  int64_t shard_index() const { return shard_index_; }
  int64_t num_shards() const { return num_shards_; }
  int64_t user_begin() const { return user_begin_; }
  int64_t user_end() const { return user_end_; }
  int64_t item_begin() const { return item_begin_; }
  int64_t item_end() const { return item_end_; }
  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t num_ratings() const { return num_ratings_; }
  int64_t total_ratings() const { return total_ratings_; }
  int64_t owned_users() const { return user_end_ - user_begin_; }
  int64_t owned_items() const { return item_end_ - item_begin_; }
  const std::string& name() const { return name_; }

  const int64_t* rating_offsets() const { return rating_offsets_; }
  const int64_t* rating_items() const { return rating_items_; }
  const double* rating_values() const { return rating_values_; }
  const int64_t* rating_seqs() const { return rating_seqs_; }
  const int64_t* social_offsets() const { return social_offsets_; }
  const int64_t* social_neighbors() const { return social_neighbors_; }
  int64_t social_entries() const { return social_entries_; }
  const int64_t* item_offsets() const { return item_offsets_; }
  const int64_t* item_neighbors() const { return item_neighbors_; }
  int64_t item_entries() const { return item_entries_; }

  /// Bytes of the underlying file (header + payload).
  int64_t file_bytes() const { return file_bytes_; }
  /// True when the payload is served from an mmap (vs a heap copy).
  bool mmapped() const { return mapped_addr_ != nullptr; }

  /// Deserializes everything into an owning ShardContents (the rewrite
  /// path of the ingester and the merge tests).
  ShardContents ToContents() const;

 private:
  ShardReader() = default;
  void Release();

  std::string path_;
  int64_t shard_index_ = 0;
  int64_t num_shards_ = 0;
  int64_t user_begin_ = 0;
  int64_t user_end_ = 0;
  int64_t item_begin_ = 0;
  int64_t item_end_ = 0;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t num_ratings_ = 0;
  int64_t total_ratings_ = 0;
  int64_t social_entries_ = 0;
  int64_t item_entries_ = 0;
  int64_t file_bytes_ = 0;
  std::string name_;

  const int64_t* rating_offsets_ = nullptr;
  const int64_t* rating_items_ = nullptr;
  const double* rating_values_ = nullptr;
  const int64_t* rating_seqs_ = nullptr;
  const int64_t* social_offsets_ = nullptr;
  const int64_t* social_neighbors_ = nullptr;
  const int64_t* item_offsets_ = nullptr;
  const int64_t* item_neighbors_ = nullptr;

  void* mapped_addr_ = nullptr;  // non-null iff mmap succeeded
  size_t mapped_len_ = 0;
  std::vector<uint8_t> heap_copy_;  // fallback storage
};

}  // namespace scale
}  // namespace msopds

#endif  // MSOPDS_SCALE_SHARD_IO_H_
