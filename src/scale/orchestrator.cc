#include "scale/orchestrator.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <system_error>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define MSOPDS_ORCH_HAVE_POSIX 1
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace msopds {
namespace scale {
namespace {

std::string SegmentFileName(int worker_id, int64_t generation) {
  return StrFormat("segment-w%d-g%lld.jsonl", worker_id,
                   static_cast<long long>(generation));
}

bool ParseSegmentFileName(const std::string& name, int* worker_id,
                          long long* generation) {
  // Reject trailing junk by re-rendering and comparing.
  if (std::sscanf(name.c_str(), "segment-w%d-g%lld.jsonl", worker_id,
                  generation) != 2) {
    return false;
  }
  return name == SegmentFileName(*worker_id, *generation);
}

/// Records compare equal when every field except worker_id (and the
/// source_line bookkeeping) matches — serialized form with the worker
/// field normalized, so double comparison is bitwise.
std::string NormalizedJson(const CellRecord& record) {
  CellRecord copy = record;
  copy.worker_id = 0;
  copy.source_line = 0;
  return CellRecordToJson(copy);
}

}  // namespace

SweepOrchestrator::SweepOrchestrator(OrchestratorOptions options)
    : options_(std::move(options)) {}

Status SweepOrchestrator::ScanSegments(
    std::vector<std::pair<std::string, CellRecord>>* records) const {
  std::error_code ec;
  std::vector<std::string> segment_names;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.work_dir, ec)) {
    int worker_id = 0;
    long long generation = 0;
    const std::string name = entry.path().filename().string();
    if (ParseSegmentFileName(name, &worker_id, &generation)) {
      segment_names.push_back(name);
    }
  }
  if (ec) {
    return Status::Internal("cannot list " + options_.work_dir + ": " +
                            ec.message());
  }
  std::sort(segment_names.begin(), segment_names.end());
  for (const std::string& name : segment_names) {
    const std::string path = options_.work_dir + "/" + name;
    // CheckpointStore drops torn trailing lines (a SIGKILLed worker's
    // in-flight write) and collapses duplicates within one segment.
    CheckpointStore store(path);
    for (const CellRecord& record : store.records()) {
      records->emplace_back(path, record);
    }
  }
  return Status::Ok();
}

StatusOr<std::string> SweepOrchestrator::MergeSegments(
    const std::vector<std::string>& keys) const {
  std::vector<std::pair<std::string, CellRecord>> all;
  Status status = ScanSegments(&all);
  if (!status.ok()) return status;

  std::unordered_map<std::string, std::vector<const CellRecord*>> by_key;
  for (const auto& [path, record] : all) {
    by_key[record.key].push_back(&record);
  }

  std::vector<const CellRecord*> merged;
  merged.reserve(keys.size());
  for (const std::string& key : keys) {
    auto it = by_key.find(key);
    if (it == by_key.end()) {
      return Status::Internal("merge: no segment holds cell '" + key + "'");
    }
    const CellRecord* chosen = it->second.front();
    const std::string reference = NormalizedJson(*chosen);
    bool conflict = false;
    for (const CellRecord* candidate : it->second) {
      if (NormalizedJson(*candidate) != reference) conflict = true;
      if (candidate->worker_id < chosen->worker_id) chosen = candidate;
    }
    if (conflict) {
      // List every worker id that reported the cell, sorted + deduped,
      // so the operator can find the stale or divergent segment.
      std::vector<int> workers;
      for (const CellRecord* candidate : it->second) {
        workers.push_back(candidate->worker_id);
      }
      std::sort(workers.begin(), workers.end());
      workers.erase(std::unique(workers.begin(), workers.end()),
                    workers.end());
      std::string listed;
      for (int w : workers) {
        if (!listed.empty()) listed += ", ";
        listed += std::to_string(w);
      }
      return Status::FailedPrecondition(StrFormat(
          "refusing to merge sweep segments: cell '%s' differs across "
          "workers [%s]; the executor is non-deterministic or a stale "
          "segment from an older sweep is present under %s",
          key.c_str(), listed.c_str(), options_.work_dir.c_str()));
    }
    merged.push_back(chosen);
  }

  const std::string path = options_.work_dir + "/sweep.ckpt";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot write " + tmp);
    }
    for (const CellRecord* record : merged) {
      out << CellRecordToJson(*record) << '\n';
    }
    out.flush();
    if (!out) return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename " + tmp + " into place");
  }
  return path;
}

StatusOr<OrchestratorResult> SweepOrchestrator::RunInline(
    const std::vector<std::string>& keys, const CellExecutor& executor) {
  std::error_code ec;
  std::filesystem::create_directories(options_.work_dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + options_.work_dir + ": " +
                            ec.message());
  }
  OrchestratorResult result;
  result.cells_total = static_cast<int64_t>(keys.size());

  std::vector<std::pair<std::string, CellRecord>> existing;
  Status status = ScanSegments(&existing);
  if (!status.ok()) return status;
  long long max_generation = -1;
  {
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.work_dir, ec)) {
      int worker_id = 0;
      long long generation = 0;
      if (ParseSegmentFileName(entry.path().filename().string(), &worker_id,
                               &generation)) {
        max_generation = std::max(max_generation, generation);
      }
    }
  }
  std::unordered_map<std::string, bool> done;
  for (const auto& [path, record] : existing) done[record.key] = true;

  CheckpointStore segment(options_.work_dir + "/" +
                          SegmentFileName(0, max_generation + 1));
  for (const std::string& key : keys) {
    if (done.count(key) > 0) {
      ++result.cells_resumed;
      continue;
    }
    CellRecord record = executor(key);
    record.key = key;
    record.worker_id = 0;
    segment.Append(record);
    ++result.cells_executed;
  }

  auto merged = MergeSegments(keys);
  if (!merged.ok()) return merged.status();
  result.merged_path = std::move(merged).value();
  return result;
}

#if MSOPDS_ORCH_HAVE_POSIX

namespace {

/// Ignore SIGPIPE for the lifetime of a Run (a worker dying between
/// dispatch and write would otherwise kill the orchestrator), restoring
/// the previous disposition on every exit path.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore_action;
    std::memset(&ignore_action, 0, sizeof(ignore_action));
    ignore_action.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ignore_action, &old_action_);
  }
  ~ScopedIgnoreSigpipe() { sigaction(SIGPIPE, &old_action_, nullptr); }

 private:
  struct sigaction old_action_;
};

struct Worker {
  int worker_id = -1;
  pid_t pid = -1;
  int to_child = -1;    // write end of the child's stdin
  int from_child = -1;  // read end of the child's stdout
  bool alive = false;
  std::string buffer;       // partial protocol line from the child
  std::string current_key;  // cell in flight, empty when idle
};

bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void CloseWorkerFds(Worker* worker) {
  if (worker->to_child >= 0) ::close(worker->to_child);
  if (worker->from_child >= 0) ::close(worker->from_child);
  worker->to_child = -1;
  worker->from_child = -1;
}

void KillAll(std::vector<Worker>* workers) {
  for (Worker& worker : *workers) {
    if (!worker.alive) continue;
    CloseWorkerFds(&worker);
    ::kill(worker.pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(worker.pid, &wstatus, 0);
    worker.alive = false;
  }
}

}  // namespace

StatusOr<OrchestratorResult> SweepOrchestrator::Run(
    const std::vector<std::string>& keys) {
  if (options_.num_workers <= 0) {
    return Status::InvalidArgument(
        "Run needs num_workers > 0 (RunInline is the 0-worker arm)");
  }
  if (options_.worker_argv.empty()) {
    return Status::InvalidArgument("worker_argv must name the worker binary");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.work_dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + options_.work_dir + ": " +
                            ec.message());
  }

  OrchestratorResult result;
  result.cells_total = static_cast<int64_t>(keys.size());

  // Resume: cells already recorded in surviving segments are not
  // re-dispatched. Generations continue past the highest survivor so a
  // respawn never appends to an old (possibly torn) file.
  std::vector<std::pair<std::string, CellRecord>> existing;
  Status status = ScanSegments(&existing);
  if (!status.ok()) return status;
  std::unordered_map<std::string, bool> done;
  for (const auto& [path, record] : existing) done[record.key] = true;
  long long next_generation = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.work_dir, ec)) {
    int worker_id = 0;
    long long generation = 0;
    if (ParseSegmentFileName(entry.path().filename().string(), &worker_id,
                             &generation)) {
      next_generation = std::max(next_generation, generation + 1);
    }
  }

  std::deque<std::string> pending;
  for (const std::string& key : keys) {
    if (done.count(key) > 0) {
      ++result.cells_resumed;
    } else {
      pending.push_back(key);
    }
  }
  int64_t remaining = static_cast<int64_t>(pending.size());

  ScopedIgnoreSigpipe ignore_sigpipe;
  std::vector<Worker> workers;
  std::unordered_map<std::string, int> attempts;

  auto spawn = [&](int worker_id) -> Status {
    const std::string segment =
        options_.work_dir + "/" + SegmentFileName(worker_id, next_generation);
    ++next_generation;
    int to_child_pipe[2], from_child_pipe[2];
    if (::pipe(to_child_pipe) != 0) {
      return Status::Internal("pipe() failed");
    }
    if (::pipe(from_child_pipe) != 0) {
      ::close(to_child_pipe[0]);
      ::close(to_child_pipe[1]);
      return Status::Internal("pipe() failed");
    }
    // The parent-side ends must not leak into later-spawned workers: a
    // sibling holding a duplicate of this worker's stdin write end would
    // keep that stdin open after the orchestrator closes it, so the
    // worker never sees EOF and the final reap deadlocks.
    ::fcntl(to_child_pipe[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(from_child_pipe[0], F_SETFD, FD_CLOEXEC);
    std::vector<std::string> argv_storage = options_.worker_argv;
    argv_storage.push_back(StrFormat("--worker_id=%d", worker_id));
    argv_storage.push_back("--segment=" + segment);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(to_child_pipe[0]);
      ::close(to_child_pipe[1]);
      ::close(from_child_pipe[0]);
      ::close(from_child_pipe[1]);
      return Status::Internal("fork() failed");
    }
    if (pid == 0) {
      // Child: wire the pipes to stdin/stdout and exec the worker. Only
      // async-signal-safe calls between fork and exec.
      ::dup2(to_child_pipe[0], STDIN_FILENO);
      ::dup2(from_child_pipe[1], STDOUT_FILENO);
      ::close(to_child_pipe[0]);
      ::close(to_child_pipe[1]);
      ::close(from_child_pipe[0]);
      ::close(from_child_pipe[1]);
      std::vector<char*> argv;
      argv.reserve(argv_storage.size() + 1);
      for (std::string& arg : argv_storage) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);
    }
    ::close(to_child_pipe[0]);
    ::close(from_child_pipe[1]);
    Worker worker;
    worker.worker_id = worker_id;
    worker.pid = pid;
    worker.to_child = to_child_pipe[1];
    worker.from_child = from_child_pipe[0];
    worker.alive = true;
    workers.push_back(std::move(worker));
    ++result.workers_spawned;
    return Status::Ok();
  };

  auto fail = [&](const std::string& message) -> Status {
    KillAll(&workers);
    return Status::Internal(message);
  };

  // A worker died (pipe hung up / reaped). Requeue its in-flight cell at
  // the front and account the attempt; the caller decides on respawn.
  auto handle_crash = [&](Worker* worker) -> Status {
    worker->alive = false;
    CloseWorkerFds(worker);
    int wstatus = 0;
    ::waitpid(worker->pid, &wstatus, 0);
    ++result.worker_crashes;
    if (!worker->current_key.empty()) {
      const std::string key = worker->current_key;
      worker->current_key.clear();
      const int tries = ++attempts[key];
      if (tries >= options_.max_attempts_per_cell) {
        return fail(StrFormat(
            "cell '%s' was in flight on %d crashed workers; giving up",
            key.c_str(), tries));
      }
      pending.push_front(key);
      ++result.cells_redispatched;
      MSOPDS_LOG(Warning) << "worker " << worker->worker_id << " (pid "
                          << worker->pid << ") died with cell '" << key
                          << "' in flight; re-dispatching";
    }
    return Status::Ok();
  };

  auto dispatch_idle = [&]() -> Status {
    for (Worker& worker : workers) {
      if (pending.empty()) break;
      if (!worker.alive || !worker.current_key.empty()) continue;
      const std::string key = pending.front();
      pending.pop_front();
      worker.current_key = key;
      if (!WriteAll(worker.to_child, "CELL " + key + "\n")) {
        const Status crash = handle_crash(&worker);
        if (!crash.ok()) return crash;
      }
    }
    return Status::Ok();
  };

  const int initial_workers = static_cast<int>(
      std::min<int64_t>(options_.num_workers, std::max<int64_t>(remaining, 0)));
  for (int w = 0; w < initial_workers; ++w) {
    const Status spawned = spawn(w + 1);  // worker ids start at 1; 0 = inline
    if (!spawned.ok()) {
      KillAll(&workers);
      return spawned;
    }
  }

  while (remaining > 0) {
    const Status dispatched = dispatch_idle();
    if (!dispatched.ok()) return dispatched;

    std::vector<struct pollfd> fds;
    std::vector<size_t> fd_worker;
    for (size_t w = 0; w < workers.size(); ++w) {
      if (!workers[w].alive) continue;
      fds.push_back({workers[w].from_child, POLLIN, 0});
      fd_worker.push_back(w);
    }
    if (fds.empty()) {
      // Every worker is dead but cells remain: respawn replacements
      // (ids reused, fresh generations) and go around again.
      for (int w = 0; w < options_.num_workers; ++w) {
        const Status spawned = spawn(w + 1);
        if (!spawned.ok()) {
          KillAll(&workers);
          return spawned;
        }
      }
      continue;
    }
    const int ready = ::poll(fds.data(), fds.size(), 1000);
    if (ready < 0 && errno != EINTR) {
      return fail("poll() failed");
    }

    for (size_t f = 0; f < fds.size(); ++f) {
      if (fds[f].revents == 0) continue;
      Worker& worker = workers[fd_worker[f]];
      if (!worker.alive) continue;
      // Drain everything readable first — the final DONE of a worker
      // that exited cleanly arrives together with the hangup.
      bool eof = false;
      if (fds[f].revents & (POLLIN | POLLHUP | POLLERR)) {
        char chunk[4096];
        while (true) {
          const ssize_t n = ::read(worker.from_child, chunk, sizeof(chunk));
          if (n > 0) {
            worker.buffer.append(chunk, static_cast<size_t>(n));
            if (static_cast<size_t>(n) < sizeof(chunk)) break;
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n == 0) eof = true;
          break;
        }
      }
      size_t newline;
      while ((newline = worker.buffer.find('\n')) != std::string::npos) {
        const std::string line = worker.buffer.substr(0, newline);
        worker.buffer.erase(0, newline + 1);
        if (line.rfind("DONE ", 0) != 0) {
          return fail("worker protocol violation: '" + line + "'");
        }
        const std::string key = line.substr(5);
        if (key != worker.current_key) {
          return fail("worker answered DONE for '" + key +
                      "' but was running '" + worker.current_key + "'");
        }
        worker.current_key.clear();
        ++result.cells_executed;
        --remaining;
      }
      if (eof) {
        const Status crash = handle_crash(&worker);
        if (!crash.ok()) return crash;
        if (!pending.empty()) {
          const Status spawned = spawn(worker.worker_id);
          if (!spawned.ok()) {
            KillAll(&workers);
            return spawned;
          }
        }
      }
    }
  }

  // All cells done: close stdins (workers see EOF and exit) and reap.
  for (Worker& worker : workers) {
    if (!worker.alive) continue;
    CloseWorkerFds(&worker);
    int wstatus = 0;
    ::waitpid(worker.pid, &wstatus, 0);
    worker.alive = false;
  }

  auto merged = MergeSegments(keys);
  if (!merged.ok()) return merged.status();
  result.merged_path = std::move(merged).value();
  return result;
}

#else  // !MSOPDS_ORCH_HAVE_POSIX

StatusOr<OrchestratorResult> SweepOrchestrator::Run(
    const std::vector<std::string>& keys) {
  (void)keys;
  return Status::Internal(
      "subprocess sweep orchestration requires a POSIX platform; "
      "use RunInline");
}

#endif  // MSOPDS_ORCH_HAVE_POSIX

int RunWorkerLoop(std::istream& in, std::ostream& out,
                  CheckpointStore* segment, int worker_id,
                  const CellExecutor& executor) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("CELL ", 0) != 0) return 1;
    const std::string key = line.substr(5);
    CellRecord record = executor(key);
    record.key = key;
    record.worker_id = worker_id;
    // Segment append (flushed) strictly before DONE: a kill after the
    // append but before the DONE merely re-runs a cell that is already
    // durable; the merge collapses the duplicate.
    segment->Append(record);
    out << "DONE " << key << "\n" << std::flush;
  }
  return 0;
}

}  // namespace scale
}  // namespace msopds
