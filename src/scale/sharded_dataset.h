#ifndef MSOPDS_SCALE_SHARDED_DATASET_H_
#define MSOPDS_SCALE_SHARDED_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "scale/shard_io.h"
#include "util/status.h"

namespace msopds {
namespace scale {

/// Half-open contiguous index range.
struct ShardRange {
  int64_t begin = 0;
  int64_t end = 0;
};

/// Deterministic per-user-range partition: shard s of S owns
/// [floor(U*s/S), floor(U*(s+1)/S)). Ranges tile [0, U) exactly for any
/// S >= 1, including non-divisors and S > U (then some shards are
/// empty). The same formula partitions items for the item-graph slices.
ShardRange PartitionRange(int64_t total, int64_t num_shards, int64_t shard);

/// Shard owning index `id` under PartitionRange(total, num_shards, ...).
int64_t OwnerShard(int64_t id, int64_t total, int64_t num_shards);

/// Slices an in-memory dataset into `num_shards` ShardContents. Rating
/// rows are stored user-major (CSR) with their original `ratings` index
/// as the global sequence number, so MergeShards can reproduce the exact
/// original order; social/item adjacency lists are copied verbatim.
std::vector<ShardContents> ShardDataset(const Dataset& dataset,
                                        int64_t num_shards);

/// ShardDataset + ShardWriter for every shard. Returns the shard paths
/// in shard-index order.
StatusOr<std::vector<std::string>> WriteShards(const Dataset& dataset,
                                               const std::string& directory,
                                               int64_t num_shards);

/// Shard files under `directory` in shard-index order (derived from the
/// fixed-width ShardFileName pattern; no unordered directory iteration).
StatusOr<std::vector<std::string>> ListShardPaths(
    const std::string& directory);

/// Deterministic k-way merge of a complete shard set back into one
/// in-memory Dataset, bit-identical to the dataset the shards were cut
/// from at any shard count: ratings come back in global-sequence order
/// (each shard's stream is seq-sorted and the k-way heap pops the unique
/// minimum), and both graphs are rebuilt from the stored adjacency
/// slices via UndirectedGraph::FromAdjacency, preserving neighbor order.
/// Validates that the set is complete and mutually consistent (same
/// global counts, every shard index exactly once, seqs unique).
StatusOr<Dataset> MergeShards(const std::vector<std::string>& paths);

/// Exact structural equality of two datasets: name, counts, the full
/// rating sequence (order-sensitive, double ==), and both graphs'
/// adjacency structure including neighbor order. On mismatch fills
/// `why` (when non-null) with the first difference found.
bool DatasetsIdentical(const Dataset& a, const Dataset& b, std::string* why);

/// The canonical user-major view of a dataset: ratings stably sorted by
/// user (within-user order preserved). This is the order the shard CSR
/// stores and the order block-sparse training consumes; full-batch
/// training over this view is the bit-identity reference for
/// TrainMfOutOfCore (DESIGN.md §17).
std::vector<Rating> UserMajorRatings(const Dataset& dataset);

}  // namespace scale
}  // namespace msopds

#endif  // MSOPDS_SCALE_SHARDED_DATASET_H_
