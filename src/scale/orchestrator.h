#ifndef MSOPDS_SCALE_ORCHESTRATOR_H_
#define MSOPDS_SCALE_ORCHESTRATOR_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/checkpoint.h"
#include "util/status.h"

namespace msopds {
namespace scale {

/// Computes one sweep cell. Implementations must be deterministic in the
/// key: the crash-recovery contract is that re-running a cell on another
/// worker yields the same record (modulo CellRecord::worker_id).
using CellExecutor = std::function<CellRecord(const std::string& key)>;

/// Options for SweepOrchestrator.
struct OrchestratorOptions {
  /// Worker subprocesses. 0 is rejected by Run (use RunInline).
  int num_workers = 2;
  /// Directory holding per-worker segment files and the merged
  /// checkpoint. Created if missing; segments surviving a killed
  /// orchestrator are picked up on the next Run (resume).
  std::string work_dir;
  /// argv of the worker binary (argv[0] = executable path). The
  /// orchestrator appends --worker_id=<id> and --segment=<path>; the
  /// worker must then speak the stdin/stdout protocol of RunWorkerLoop.
  std::vector<std::string> worker_argv;
  /// A cell that was in flight on this many crashed workers fails the
  /// run (guards against a cell that deterministically kills its host).
  int max_attempts_per_cell = 3;
};

/// Outcome of one orchestrated sweep.
struct OrchestratorResult {
  int64_t cells_total = 0;
  int64_t cells_executed = 0;   // dispatched and completed this run
  int64_t cells_resumed = 0;    // found already done in surviving segments
  int64_t cells_redispatched = 0;
  int64_t worker_crashes = 0;
  int64_t workers_spawned = 0;
  /// The merged checkpoint (work_dir + "/sweep.ckpt"), one record per
  /// key in the caller's key order.
  std::string merged_path;
};

/// Farms sweep cells out to worker subprocesses with work-stealing
/// dispatch, per-worker JSONL segments, crash detection, and a
/// deterministic merge (DESIGN.md §17 "Sweep orchestrator"). Protocol:
///
///   orchestrator -> worker stdin :  "CELL <key>\n"
///   worker       -> its segment  :  CellRecordToJson(record) + "\n"  (flushed)
///   worker       -> orch. stdout :  "DONE <key>\n"
///
/// The segment append happens before DONE, so a worker SIGKILLed at any
/// instant loses at most the cell in flight; the orchestrator sees the
/// pipe hang up, requeues that cell at the front of the queue, and
/// spawns a replacement worker writing a *fresh* generation-suffixed
/// segment (segment-w<id>-g<gen>.jsonl) — never appending to a file
/// whose last line may be torn. A killed *orchestrator* resumes the same
/// way: the next Run scans surviving segments and only dispatches the
/// missing cells.
class SweepOrchestrator {
 public:
  explicit SweepOrchestrator(OrchestratorOptions options);

  /// Runs `keys` across subprocess workers and merges the segments.
  StatusOr<OrchestratorResult> Run(const std::vector<std::string>& keys);

  /// Single-process reference arm: executes the missing cells inline (as
  /// worker 0) and runs the identical merge. The merged checkpoint of
  /// Run and RunInline over the same deterministic executor are equal
  /// modulo worker_id — asserted by ctest -L scale.
  StatusOr<OrchestratorResult> RunInline(const std::vector<std::string>& keys,
                                         const CellExecutor& executor);

 private:
  /// Loads every segment under work_dir; fills key -> completed records.
  Status ScanSegments(
      std::vector<std::pair<std::string, CellRecord>>* records) const;

  /// Deterministic merge of all segment records into
  /// work_dir/sweep.ckpt, in `keys` order. Duplicates that agree modulo
  /// worker_id keep the smallest worker_id; disagreeing duplicates
  /// refuse the merge, naming the key and every conflicting worker id.
  StatusOr<std::string> MergeSegments(
      const std::vector<std::string>& keys) const;

  OrchestratorOptions options_;
};

/// Worker side of the protocol: reads "CELL <key>" lines from `in`,
/// executes each, appends the record to `segment`, answers "DONE <key>"
/// on `out`. Returns 0 on clean EOF (orchestrator closed stdin), 1 on a
/// malformed command. sweep_runner wires this to its --worker mode.
int RunWorkerLoop(std::istream& in, std::ostream& out,
                  CheckpointStore* segment, int worker_id,
                  const CellExecutor& executor);

}  // namespace scale
}  // namespace msopds

#endif  // MSOPDS_SCALE_ORCHESTRATOR_H_
