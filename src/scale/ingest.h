#ifndef MSOPDS_SCALE_INGEST_H_
#define MSOPDS_SCALE_INGEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace msopds {
namespace scale {

/// Options for IngestTsvToShards. Delimiter / name / bad-row tolerance
/// mirror TsvOptions so the ingester accepts exactly the inputs LoadTsv
/// accepts.
struct IngestOptions {
  char delimiter = '\t';
  std::string name = "tsv";
  /// Rows (across both files) that may fail to parse before the ingest
  /// is abandoned, mirroring TsvOptions::max_bad_rows.
  int max_bad_rows = 0;
  int64_t num_shards = 1;
  /// The item co-rating graph is inherently global (co-rated pairs span
  /// user shards), so building it costs one O(total ratings) in-memory
  /// pass — the only stage of the ingest whose memory is not bounded by
  /// a single shard. Set false for strict per-shard memory; the shards
  /// then carry an empty item graph (documented in DESIGN.md §17).
  bool build_item_graph = true;
};

/// Summary of one ingest run.
struct IngestStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_ratings = 0;     // after (user, item) de-duplication
  int64_t rating_rows = 0;     // valid rating rows seen (pre-dedup)
  int64_t trust_rows = 0;      // valid trust rows seen
  int64_t bad_rows = 0;        // tolerated parse failures
  int64_t social_edges = 0;    // undirected, between known users
  std::vector<std::string> shard_paths;
};

/// Streams a ratings TSV + trust TSV directly into a sharded dataset
/// under `shard_dir`, without ever materializing the whole dataset:
///
///   pass 1  stream ratings: intern ids, validate, count (one line
///           resident at a time);
///   pass 2  stream trust, then re-stream ratings, spilling fixed-width
///           binary tuples into per-shard spill files (owner routing
///           needs the final user count, hence the second ratings pass);
///   finalize  per shard: sort + de-duplicate its spill (last write wins
///           per (user, item); sequence number = first occurrence) and
///           write the shard file. Peak memory here is one shard.
///
/// The resulting shard set merges (MergeShards) to a dataset bit-identical
/// to LoadTsv over the same files — same interning order, same rating
/// order, same social adjacency order — asserted by ctest -L scale.
StatusOr<IngestStats> IngestTsvToShards(const std::string& ratings_path,
                                        const std::string& trust_path,
                                        const std::string& shard_dir,
                                        const IngestOptions& options);

}  // namespace scale
}  // namespace msopds

#endif  // MSOPDS_SCALE_INGEST_H_
