#include "scale/block_trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "scale/shard_io.h"
#include "scale/sharded_dataset.h"
#include "tensor/optim.h"
#include "tensor/simd.h"
#include "util/arena.h"
#include "util/fault.h"
#include "util/health.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace msopds {
namespace scale {
namespace {

std::unique_ptr<Optimizer> MakeOptimizer(const TrainOptions& options,
                                         double learning_rate) {
  if (options.optimizer == OptimizerKind::kAdam) {
    return std::make_unique<Adam>(learning_rate);
  }
  return std::make_unique<Sgd>(learning_rate, options.momentum);
}

/// Streaming replica of Tensor::Sum — i.e. of
/// ParallelReduceSum(size, kReduceGrain, simd::Sum over each chunk)
/// followed by the exact pairwise partial fold. Values are buffered into
/// kReduceGrain-sized chunks as they arrive, so the chunk grid is a pure
/// function of the element index and is unchanged by shard boundaries.
class ChunkedSum {
 public:
  ChunkedSum() : buffer_(static_cast<size_t>(kReduceGrain)) {}

  void Push(double value) {
    buffer_[fill_++] = value;
    if (fill_ == static_cast<size_t>(kReduceGrain)) Flush();
  }

  double Result() {
    if (fill_ > 0) Flush();
    // ParallelReduceSum: zero chunks -> 0.0; one chunk -> its sum
    // directly; otherwise fold partials pairwise, odd tail carried.
    if (partials_.empty()) return 0.0;
    std::vector<double> partial = partials_;
    while (partial.size() > 1) {
      std::vector<double> next;
      const size_t half = partial.size() / 2;
      next.reserve(half + 1);
      for (size_t i = 0; i < half; ++i) {
        next.push_back(partial[2 * i] + partial[2 * i + 1]);
      }
      if (partial.size() % 2 == 1) next.push_back(partial.back());
      partial = std::move(next);
    }
    return partial[0];
  }

 private:
  void Flush() {
    partials_.push_back(simd::Sum(buffer_.data(),
                                  static_cast<int64_t>(fill_)));
    fill_ = 0;
  }

  std::vector<double> buffer_;
  size_t fill_ = 0;
  std::vector<double> partials_;
};

double SquaredNormChunked(const Tensor& t) {
  ChunkedSum sum;
  const double* x = t.data();
  for (int64_t j = 0; j < t.size(); ++j) sum.Push(x[j] * x[j]);
  return sum.Result();
}

}  // namespace

StatusOr<OutOfCoreResult> TrainMfOutOfCore(
    MatrixFactorization* model, const std::vector<std::string>& shard_paths,
    const TrainOptions& options, bool resident) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  if (options.epochs <= 0) {
    return Status::InvalidArgument("epochs must be positive");
  }
  if (options.batch_size != 0) {
    return Status::InvalidArgument(
        "out-of-core training is full-batch only (batch_size must be 0); "
        "mini-batch shuffling permutes ratings across shards");
  }
  if (options.max_retries < 0 || options.retry_decay <= 0.0 ||
      options.num_threads < 0) {
    return Status::InvalidArgument("invalid retry/thread options");
  }
  if (shard_paths.empty()) {
    return Status::InvalidArgument("no shard paths given");
  }
  if (options.num_threads > 0) {
    ThreadPool::Global().SetNumThreads(options.num_threads);
  }

  OutOfCoreResult result;

  // Validate the shard set once up front (complete, consistent, ranges
  // canonical) and record the global dimensions.
  int64_t num_users = 0, num_items = 0, total_ratings = 0;
  {
    std::vector<bool> seen(shard_paths.size(), false);
    int64_t ratings_across = 0;
    for (size_t k = 0; k < shard_paths.size(); ++k) {
      auto reader = ShardReader::Open(shard_paths[k]);
      if (!reader.ok()) return reader.status();
      const ShardReader& shard = reader.value();
      if (k == 0) {
        num_users = shard.num_users();
        num_items = shard.num_items();
        total_ratings = shard.total_ratings();
      }
      if (shard.num_shards() != static_cast<int64_t>(shard_paths.size()) ||
          shard.num_users() != num_users ||
          shard.num_items() != num_items ||
          shard.total_ratings() != total_ratings ||
          seen[static_cast<size_t>(shard.shard_index())]) {
        return Status::InvalidArgument(
            shard.path() + ": not a complete consistent shard set");
      }
      seen[static_cast<size_t>(shard.shard_index())] = true;
      ratings_across += shard.num_ratings();
      result.peak_shard_bytes =
          std::max(result.peak_shard_bytes, shard.file_bytes());
    }
    if (ratings_across != total_ratings) {
      return Status::InvalidArgument(
          "shard set holds a different rating count than its headers claim");
    }
  }

  const int64_t latent_dim = model->config().latent_dim;
  const double l2 = model->config().l2;
  const double mu = model->global_mean();
  std::vector<Variable>* params = model->MutableParams();
  if ((*params)[0].value().shape() !=
          std::vector<int64_t>{num_users, latent_dim} ||
      (*params)[1].value().shape() !=
          std::vector<int64_t>{num_items, latent_dim}) {
    return Status::InvalidArgument(
        StrFormat("model shape does not match shard set (%lld users, "
                  "%lld items)",
                  static_cast<long long>(num_users),
                  static_cast<long long>(num_items)));
  }

  // One arena region per run, mirroring TrainModel.
  ArenaRegion region;

  std::vector<ShardReader> resident_readers;
  if (resident) {
    for (const std::string& path : shard_paths) {
      auto reader = ShardReader::Open(path);
      if (!reader.ok()) return reader.status();
      resident_readers.push_back(std::move(reader).value());
    }
    result.shards_visited +=
        static_cast<int64_t>(resident_readers.size());
  }

  const double inv_n = 1.0 / static_cast<double>(total_ratings);

  // One full pass over all shards: streams the canonical user-major
  // rating order (shards ascending, owned users ascending, within-user
  // CSR order) through the loss replicator and — when `grads` is set —
  // the manual gradient loop, which replays the tape's accumulation
  // sequence exactly (see the prototype note in DESIGN.md §17).
  auto epoch_pass = [&](std::vector<Tensor>* grads) -> StatusOr<double> {
    const double* P = (*params)[0].value().data();
    const double* Q = (*params)[1].value().data();
    const double* BU = (*params)[2].value().data();
    const double* BI = (*params)[3].value().data();
    double* Pg = nullptr;
    double* Qg = nullptr;
    double* BUg = nullptr;
    double* BIg = nullptr;
    if (grads != nullptr) {
      for (Tensor& g : *grads) {
        std::fill(g.data(), g.data() + g.size(), 0.0);
      }
      Pg = (*grads)[0].data();
      Qg = (*grads)[1].data();
      BUg = (*grads)[2].data();
      BIg = (*grads)[3].data();
    }

    ChunkedSum squared_errors;
    auto consume = [&](const ShardReader& shard) {
      for (int64_t u = shard.user_begin(); u < shard.user_end(); ++u) {
        const int64_t row_begin =
            shard.rating_offsets()[u - shard.user_begin()];
        const int64_t row_end =
            shard.rating_offsets()[u - shard.user_begin() + 1];
        const double* pu = P + u * latent_dim;
        for (int64_t row = row_begin; row < row_end; ++row) {
          const int64_t i = shard.rating_items()[row];
          const double* qi = Q + i * latent_dim;
          const double dot = simd::Dot(pu, qi, latent_dim);
          const double pred = ((dot + BU[u]) + BI[i]) + mu;
          const double e = pred - shard.rating_values()[row];
          squared_errors.Push(e * e);
          if (grads != nullptr) {
            const double half = inv_n * e;
            const double dpred = half + half;
            simd::Axpy(dpred, qi, Pg + u * latent_dim, latent_dim);
            simd::Axpy(dpred, pu, Qg + i * latent_dim, latent_dim);
            BUg[u] += dpred;
            BIg[i] += dpred;
          }
        }
      }
    };
    if (resident) {
      for (const ShardReader& shard : resident_readers) consume(shard);
    } else {
      for (const std::string& path : shard_paths) {
        auto reader = ShardReader::Open(path);
        if (!reader.ok()) return reader.status();
        ++result.shards_visited;
        consume(reader.value());
        // reader unmaps here: at most one shard resident at a time
      }
    }

    // loss = Mean(Square(errors)) [+ ScalarMul(reg, l2)], replicating
    // MfLoss's composition order; each SquaredNorm is a chunked
    // Tensor::Sum over the squared parameter block.
    double loss = squared_errors.Result() * inv_n;
    if (l2 > 0.0) {
      const double reg =
          ((SquaredNormChunked((*params)[0].value()) +
            SquaredNormChunked((*params)[1].value())) +
           SquaredNormChunked((*params)[2].value())) +
          SquaredNormChunked((*params)[3].value());
      loss = loss + reg * l2;
      if (grads != nullptr) {
        // Tape accumulation order: the L2 term's contribution
        // (l2*x + l2*x) is folded in before the scatter-accumulated
        // data gradient for every element.
        for (size_t p = 0; p < params->size(); ++p) {
          const double* x = (*params)[p].value().data();
          double* g = (*grads)[p].data();
          for (int64_t j = 0; j < (*grads)[p].size(); ++j) {
            g[j] = (l2 * x[j] + l2 * x[j]) + g[j];
          }
        }
      }
    }
    return loss;
  };

  double learning_rate = options.learning_rate;
  std::unique_ptr<Optimizer> optimizer = MakeOptimizer(options, learning_rate);
  FaultInjector& faults = FaultInjector::Global();
  DivergenceDetector detector(options.divergence);
  int retries_left = options.max_retries;
  result.loss_history.reserve(static_cast<size_t>(options.epochs));

  std::vector<Tensor> step_grads;
  for (const Variable& param : *params) {
    step_grads.push_back(Tensor::Zeros(param.value().shape()));
  }

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<Tensor> snapshot;
    if (options.guard_numerics) {
      snapshot.reserve(params->size());
      for (const Variable& param : *params) {
        snapshot.push_back(param.value().Clone());
      }
    }

    auto loss = epoch_pass(&step_grads);
    if (!loss.ok()) return loss.status();
    const double epoch_loss = loss.value();
    Health health = Health::kHealthy;
    faults.MaybeCorruptTrainerGradients(&step_grads);
    if (options.guard_numerics &&
        (!std::isfinite(epoch_loss) || !AllFinite(step_grads))) {
      health = Health::kNonFinite;
    } else {
      optimizer->Step(params, step_grads);
    }
    if (options.guard_numerics && health == Health::kHealthy) {
      health = detector.Observe(epoch_loss);
    }

    if (health != Health::kHealthy) {
      ++result.fault_events;
      for (size_t i = 0; i < snapshot.size(); ++i) {
        (*params)[i].mutable_value() = snapshot[i].Clone();
      }
      if (retries_left == 0) {
        result.healthy = false;
        result.failure = StrFormat(
            "epoch %d %s after %d retries (learning rate %.3g)", epoch,
            HealthToString(health).c_str(), result.retries, learning_rate);
        MSOPDS_LOG(Warning) << "TrainMfOutOfCore giving up: "
                            << result.failure;
        break;
      }
      --retries_left;
      ++result.retries;
      learning_rate *= options.retry_decay;
      optimizer = MakeOptimizer(options, learning_rate);
      detector.Reset();
      MSOPDS_LOG(Warning) << "TrainMfOutOfCore epoch " << epoch << " "
                          << HealthToString(health)
                          << "; retrying with learning rate " << learning_rate;
      --epoch;
      continue;
    }

    result.loss_history.push_back(epoch_loss);
    if (options.log_every > 0 && (epoch + 1) % options.log_every == 0) {
      MSOPDS_LOG(Info) << "epoch " << (epoch + 1) << " loss " << epoch_loss;
    }
  }

  auto final_loss = epoch_pass(nullptr);
  if (!final_loss.ok()) return final_loss.status();
  result.final_loss = final_loss.value();
  if (!std::isfinite(result.final_loss) && result.healthy) {
    result.healthy = false;
    result.failure = "non-finite final loss";
  }
  return result;
}

}  // namespace scale
}  // namespace msopds
