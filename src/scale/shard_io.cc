#include "scale/shard_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/logging.h"
#include "util/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define MSOPDS_SHARD_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace msopds {
namespace scale {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(const uint8_t* data, size_t n, uint64_t hash = kFnvOffset) {
  for (size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

int64_t PaddedNameBytes(int64_t name_len) { return (name_len + 7) & ~int64_t{7}; }

void AppendInt64(std::vector<uint8_t>* out, int64_t value) {
  uint8_t bytes[8];
  std::memcpy(bytes, &value, sizeof(value));
  out->insert(out->end(), bytes, bytes + 8);
}

void AppendSection(std::vector<uint8_t>* out, const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + bytes);
}

Status Corrupt(const std::string& path, int64_t offset, const std::string& what) {
  return Status::InvalidArgument(StrFormat(
      "%s: offset %lld: %s", path.c_str(), static_cast<long long>(offset),
      what.c_str()));
}

int64_t ReadInt64(const uint8_t* base, int64_t offset) {
  int64_t value = 0;
  std::memcpy(&value, base + offset, sizeof(value));
  return value;
}

// Byte offsets of the int64 header fields after the magic.
enum HeaderField : int64_t {
  kOffVersion = 8,
  kOffShardIndex = 16,
  kOffNumShards = 24,
  kOffUserBegin = 32,
  kOffUserEnd = 40,
  kOffItemBegin = 48,
  kOffItemEnd = 56,
  kOffNumUsers = 64,
  kOffNumItems = 72,
  kOffNumRatings = 80,
  kOffTotalRatings = 88,
  kOffSocialEntries = 96,
  kOffItemEntries = 104,
  kOffNameLen = 112,
  kOffHeaderChecksum = 120,
  kOffPayloadChecksum = 128,
};

}  // namespace

std::string ShardFileName(int64_t shard_index, int64_t num_shards) {
  return StrFormat("shard-%05lld-of-%05lld.msd",
                   static_cast<long long>(shard_index),
                   static_cast<long long>(num_shards));
}

ShardWriter::ShardWriter(std::string directory)
    : directory_(std::move(directory)) {}

StatusOr<std::string> ShardWriter::Write(const ShardContents& c) const {
  MSOPDS_CHECK_GE(c.shard_index, 0);
  MSOPDS_CHECK_LT(c.shard_index, c.num_shards);
  MSOPDS_CHECK_EQ(static_cast<int64_t>(c.rating_offsets.size()),
                  c.owned_users() + 1);
  MSOPDS_CHECK_EQ(static_cast<int64_t>(c.social_offsets.size()),
                  c.owned_users() + 1);
  MSOPDS_CHECK_EQ(static_cast<int64_t>(c.item_offsets.size()),
                  c.owned_items() + 1);
  MSOPDS_CHECK_EQ(c.rating_items.size(), c.rating_values.size());
  MSOPDS_CHECK_EQ(c.rating_items.size(), c.rating_seqs.size());

  const int64_t name_len = static_cast<int64_t>(c.name.size());

  std::vector<uint8_t> payload;
  payload.reserve(static_cast<size_t>(
      PaddedNameBytes(name_len) +
      8 * (static_cast<int64_t>(c.rating_offsets.size()) +
           3 * c.num_ratings() +
           static_cast<int64_t>(c.social_offsets.size()) +
           static_cast<int64_t>(c.social_neighbors.size()) +
           static_cast<int64_t>(c.item_offsets.size()) +
           static_cast<int64_t>(c.item_neighbors.size()))));
  AppendSection(&payload, c.name.data(), static_cast<size_t>(name_len));
  payload.resize(static_cast<size_t>(PaddedNameBytes(name_len)), 0);
  AppendSection(&payload, c.rating_offsets.data(),
                c.rating_offsets.size() * 8);
  AppendSection(&payload, c.rating_items.data(), c.rating_items.size() * 8);
  AppendSection(&payload, c.rating_values.data(), c.rating_values.size() * 8);
  AppendSection(&payload, c.rating_seqs.data(), c.rating_seqs.size() * 8);
  AppendSection(&payload, c.social_offsets.data(),
                c.social_offsets.size() * 8);
  AppendSection(&payload, c.social_neighbors.data(),
                c.social_neighbors.size() * 8);
  AppendSection(&payload, c.item_offsets.data(), c.item_offsets.size() * 8);
  AppendSection(&payload, c.item_neighbors.data(),
                c.item_neighbors.size() * 8);

  std::vector<uint8_t> header;
  header.reserve(static_cast<size_t>(kShardHeaderBytes));
  AppendSection(&header, kShardMagic, sizeof(kShardMagic));
  AppendInt64(&header, kShardFormatVersion);
  AppendInt64(&header, c.shard_index);
  AppendInt64(&header, c.num_shards);
  AppendInt64(&header, c.user_begin);
  AppendInt64(&header, c.user_end);
  AppendInt64(&header, c.item_begin);
  AppendInt64(&header, c.item_end);
  AppendInt64(&header, c.num_users);
  AppendInt64(&header, c.num_items);
  AppendInt64(&header, c.num_ratings());
  AppendInt64(&header, c.total_ratings);
  AppendInt64(&header, static_cast<int64_t>(c.social_neighbors.size()));
  AppendInt64(&header, static_cast<int64_t>(c.item_neighbors.size()));
  AppendInt64(&header, name_len);
  AppendInt64(&header,
              static_cast<int64_t>(Fnv1a(header.data(), header.size())));
  AppendInt64(&header,
              static_cast<int64_t>(Fnv1a(payload.data(), payload.size())));
  MSOPDS_CHECK_EQ(static_cast<int64_t>(header.size()), kShardHeaderBytes);

  const std::string path =
      directory_ + "/" + ShardFileName(c.shard_index, c.num_shards);
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::NotFound("cannot open " + tmp_path + " for writing");
    }
    out.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("short write to " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename " + tmp_path + " to " + path);
  }
  return path;
}

ShardReader::ShardReader(ShardReader&& other) noexcept {
  *this = std::move(other);
}

ShardReader& ShardReader::operator=(ShardReader&& other) noexcept {
  if (this == &other) return *this;
  Release();
  path_ = std::move(other.path_);
  shard_index_ = other.shard_index_;
  num_shards_ = other.num_shards_;
  user_begin_ = other.user_begin_;
  user_end_ = other.user_end_;
  item_begin_ = other.item_begin_;
  item_end_ = other.item_end_;
  num_users_ = other.num_users_;
  num_items_ = other.num_items_;
  num_ratings_ = other.num_ratings_;
  total_ratings_ = other.total_ratings_;
  social_entries_ = other.social_entries_;
  item_entries_ = other.item_entries_;
  file_bytes_ = other.file_bytes_;
  name_ = std::move(other.name_);
  rating_offsets_ = other.rating_offsets_;
  rating_items_ = other.rating_items_;
  rating_values_ = other.rating_values_;
  rating_seqs_ = other.rating_seqs_;
  social_offsets_ = other.social_offsets_;
  social_neighbors_ = other.social_neighbors_;
  item_offsets_ = other.item_offsets_;
  item_neighbors_ = other.item_neighbors_;
  mapped_addr_ = other.mapped_addr_;
  mapped_len_ = other.mapped_len_;
  heap_copy_ = std::move(other.heap_copy_);
  other.mapped_addr_ = nullptr;
  other.mapped_len_ = 0;
  other.rating_offsets_ = nullptr;
  return *this;
}

ShardReader::~ShardReader() { Release(); }

void ShardReader::Release() {
#if MSOPDS_SHARD_HAVE_MMAP
  if (mapped_addr_ != nullptr) {
    munmap(mapped_addr_, mapped_len_);
  }
#endif
  mapped_addr_ = nullptr;
  mapped_len_ = 0;
}

StatusOr<ShardReader> ShardReader::Open(const std::string& path) {
  ShardReader reader;
  reader.path_ = path;

  const uint8_t* base = nullptr;
  int64_t file_bytes = 0;
#if MSOPDS_SHARD_HAVE_MMAP
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::NotFound("cannot open " + path);
    struct stat st;
    if (fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::Internal("cannot stat " + path);
    }
    file_bytes = static_cast<int64_t>(st.st_size);
    if (file_bytes > 0) {
      void* addr = mmap(nullptr, static_cast<size_t>(file_bytes), PROT_READ,
                        MAP_PRIVATE, fd, 0);
      if (addr != MAP_FAILED) {
        reader.mapped_addr_ = addr;
        reader.mapped_len_ = static_cast<size_t>(file_bytes);
        base = static_cast<const uint8_t*>(addr);
      }
    }
    ::close(fd);
  }
#endif
  if (base == nullptr) {
    // Portable fallback (and the mmap-failed path): read the whole file.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.is_open()) return Status::NotFound("cannot open " + path);
    file_bytes = static_cast<int64_t>(in.tellg());
    in.seekg(0);
    reader.heap_copy_.resize(static_cast<size_t>(file_bytes));
    if (file_bytes > 0) {
      in.read(reinterpret_cast<char*>(reader.heap_copy_.data()), file_bytes);
      if (!in.good()) return Status::Internal("short read from " + path);
    }
    base = reader.heap_copy_.data();
  }
  reader.file_bytes_ = file_bytes;

  if (file_bytes < kShardHeaderBytes) {
    return Corrupt(path, 0,
                   StrFormat("truncated header (%lld bytes, need %lld)",
                             static_cast<long long>(file_bytes),
                             static_cast<long long>(kShardHeaderBytes)));
  }
  if (std::memcmp(base, kShardMagic, sizeof(kShardMagic)) != 0) {
    return Corrupt(path, 0, "bad magic (not a MSOPDS shard file)");
  }
  const int64_t version = ReadInt64(base, kOffVersion);
  if (version != kShardFormatVersion) {
    return Corrupt(path, kOffVersion,
                   StrFormat("unsupported shard format version %lld "
                             "(this build reads version %lld)",
                             static_cast<long long>(version),
                             static_cast<long long>(kShardFormatVersion)));
  }
  const uint64_t header_checksum =
      static_cast<uint64_t>(ReadInt64(base, kOffHeaderChecksum));
  if (Fnv1a(base, kOffHeaderChecksum) != header_checksum) {
    return Corrupt(path, kOffHeaderChecksum, "header checksum mismatch");
  }

  reader.shard_index_ = ReadInt64(base, kOffShardIndex);
  reader.num_shards_ = ReadInt64(base, kOffNumShards);
  reader.user_begin_ = ReadInt64(base, kOffUserBegin);
  reader.user_end_ = ReadInt64(base, kOffUserEnd);
  reader.item_begin_ = ReadInt64(base, kOffItemBegin);
  reader.item_end_ = ReadInt64(base, kOffItemEnd);
  reader.num_users_ = ReadInt64(base, kOffNumUsers);
  reader.num_items_ = ReadInt64(base, kOffNumItems);
  reader.num_ratings_ = ReadInt64(base, kOffNumRatings);
  reader.total_ratings_ = ReadInt64(base, kOffTotalRatings);
  reader.social_entries_ = ReadInt64(base, kOffSocialEntries);
  reader.item_entries_ = ReadInt64(base, kOffItemEntries);
  const int64_t name_len = ReadInt64(base, kOffNameLen);

  if (reader.num_shards_ <= 0 || reader.shard_index_ < 0 ||
      reader.shard_index_ >= reader.num_shards_) {
    return Corrupt(path, kOffShardIndex, "shard index out of range");
  }
  if (reader.user_begin_ < 0 || reader.user_begin_ > reader.user_end_ ||
      reader.user_end_ > reader.num_users_) {
    return Corrupt(path, kOffUserBegin, "user range out of bounds");
  }
  if (reader.item_begin_ < 0 || reader.item_begin_ > reader.item_end_ ||
      reader.item_end_ > reader.num_items_) {
    return Corrupt(path, kOffItemBegin, "item range out of bounds");
  }
  if (reader.num_ratings_ < 0 || reader.social_entries_ < 0 ||
      reader.item_entries_ < 0 || name_len < 0) {
    return Corrupt(path, kOffNumRatings, "negative section size");
  }

  const int64_t expected_payload =
      PaddedNameBytes(name_len) +
      8 * ((reader.owned_users() + 1) +      // rating_offsets
           3 * reader.num_ratings_ +         // items, values, seqs
           (reader.owned_users() + 1) +      // social_offsets
           reader.social_entries_ +          // social_neighbors
           (reader.owned_items() + 1) +      // item_offsets
           reader.item_entries_);            // item_neighbors
  if (file_bytes != kShardHeaderBytes + expected_payload) {
    return Corrupt(
        path, kShardHeaderBytes,
        StrFormat("payload is %lld bytes but the header implies %lld",
                  static_cast<long long>(file_bytes - kShardHeaderBytes),
                  static_cast<long long>(expected_payload)));
  }
  const uint64_t payload_checksum =
      static_cast<uint64_t>(ReadInt64(base, kOffPayloadChecksum));
  if (Fnv1a(base + kShardHeaderBytes,
            static_cast<size_t>(expected_payload)) != payload_checksum) {
    return Corrupt(path, kOffPayloadChecksum, "payload checksum mismatch");
  }

  const uint8_t* cursor = base + kShardHeaderBytes;
  reader.name_.assign(reinterpret_cast<const char*>(cursor),
                      static_cast<size_t>(name_len));
  cursor += PaddedNameBytes(name_len);
  auto take_i64 = [&cursor](int64_t count) {
    const int64_t* p = reinterpret_cast<const int64_t*>(cursor);
    cursor += 8 * count;
    return p;
  };
  reader.rating_offsets_ = take_i64(reader.owned_users() + 1);
  reader.rating_items_ = take_i64(reader.num_ratings_);
  reader.rating_values_ = reinterpret_cast<const double*>(cursor);
  cursor += 8 * reader.num_ratings_;
  reader.rating_seqs_ = take_i64(reader.num_ratings_);
  reader.social_offsets_ = take_i64(reader.owned_users() + 1);
  reader.social_neighbors_ = take_i64(reader.social_entries_);
  reader.item_offsets_ = take_i64(reader.owned_items() + 1);
  reader.item_neighbors_ = take_i64(reader.item_entries_);

  // Offsets must be monotone prefix sums ending at the section size, or
  // every downstream loop would read out of bounds.
  auto check_offsets = [&path](const int64_t* offsets, int64_t rows,
                               int64_t entries,
                               const char* section) -> Status {
    if (offsets[0] != 0) {
      return Corrupt(path, kShardHeaderBytes,
                     StrFormat("%s offsets do not start at 0", section));
    }
    for (int64_t i = 0; i < rows; ++i) {
      if (offsets[i + 1] < offsets[i]) {
        return Corrupt(path, kShardHeaderBytes,
                       StrFormat("%s offsets decrease at row %lld", section,
                                 static_cast<long long>(i)));
      }
    }
    if (offsets[rows] != entries) {
      return Corrupt(
          path, kShardHeaderBytes,
          StrFormat("%s offsets end at %lld, section has %lld entries",
                    section, static_cast<long long>(offsets[rows]),
                    static_cast<long long>(entries)));
    }
    return Status::Ok();
  };
  Status status = check_offsets(reader.rating_offsets_, reader.owned_users(),
                                reader.num_ratings_, "rating");
  if (!status.ok()) return status;
  status = check_offsets(reader.social_offsets_, reader.owned_users(),
                         reader.social_entries_, "social");
  if (!status.ok()) return status;
  status = check_offsets(reader.item_offsets_, reader.owned_items(),
                         reader.item_entries_, "item");
  if (!status.ok()) return status;
  return reader;
}

ShardContents ShardReader::ToContents() const {
  ShardContents c;
  c.shard_index = shard_index_;
  c.num_shards = num_shards_;
  c.user_begin = user_begin_;
  c.user_end = user_end_;
  c.item_begin = item_begin_;
  c.item_end = item_end_;
  c.num_users = num_users_;
  c.num_items = num_items_;
  c.total_ratings = total_ratings_;
  c.name = name_;
  c.rating_offsets.assign(rating_offsets_,
                          rating_offsets_ + owned_users() + 1);
  c.rating_items.assign(rating_items_, rating_items_ + num_ratings_);
  c.rating_values.assign(rating_values_, rating_values_ + num_ratings_);
  c.rating_seqs.assign(rating_seqs_, rating_seqs_ + num_ratings_);
  c.social_offsets.assign(social_offsets_,
                          social_offsets_ + owned_users() + 1);
  c.social_neighbors.assign(social_neighbors_,
                            social_neighbors_ + social_entries_);
  c.item_offsets.assign(item_offsets_, item_offsets_ + owned_items() + 1);
  c.item_neighbors.assign(item_neighbors_, item_neighbors_ + item_entries_);
  return c;
}

}  // namespace scale
}  // namespace msopds
