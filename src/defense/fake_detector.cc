#include "defense/fake_detector.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"

namespace msopds {

std::vector<double> SuspicionScores(const Dataset& dataset,
                                    const FakeDetectorOptions& options) {
  const int64_t users = dataset.num_users;
  std::vector<double> extremity(static_cast<size_t>(users), 0.0);
  std::vector<double> deviation(static_cast<size_t>(users), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(users), 0);

  const std::vector<double> item_mean = dataset.ItemAverageRatings();
  for (const Rating& r : dataset.ratings) {
    const size_t u = static_cast<size_t>(r.user);
    ++count[u];
    if (r.value == kMinRating || r.value == kMaxRating) extremity[u] += 1.0;
    deviation[u] +=
        std::fabs(r.value - item_mean[static_cast<size_t>(r.item)]);
  }

  double mean_degree = 0.0;
  for (int64_t u = 0; u < users; ++u) {
    mean_degree += static_cast<double>(dataset.social.Degree(u));
  }
  mean_degree = std::max(1.0, mean_degree / std::max<int64_t>(1, users));

  std::vector<double> scores(static_cast<size_t>(users), 0.0);
  for (int64_t u = 0; u < users; ++u) {
    const size_t i = static_cast<size_t>(u);
    if (count[i] < options.min_ratings) continue;
    const double n = static_cast<double>(count[i]);
    const double extremity_rate = extremity[i] / n;
    // Normalize deviation to roughly [0, 1] (max deviation is 4 stars).
    const double deviation_rate = deviation[i] / n / 4.0;
    const double isolation =
        1.0 / (1.0 + static_cast<double>(dataset.social.Degree(u)) /
                         mean_degree);
    scores[i] = options.extremity_weight * extremity_rate +
                options.deviation_weight * deviation_rate +
                options.isolation_weight * isolation;
  }
  return scores;
}

std::vector<int64_t> DetectFakeUsers(const Dataset& dataset, int64_t count,
                                     const FakeDetectorOptions& options) {
  MSOPDS_CHECK_GE(count, 0);
  const std::vector<double> scores = SuspicionScores(dataset, options);
  std::vector<int64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  const int64_t k =
      std::min<int64_t>(count, static_cast<int64_t>(order.size()));
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int64_t a, int64_t b) {
                      const double sa = scores[static_cast<size_t>(a)];
                      const double sb = scores[static_cast<size_t>(b)];
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });
  order.resize(static_cast<size_t>(k));
  return order;
}

Dataset RemoveUsers(const Dataset& dataset, const std::vector<int64_t>& users,
                    std::vector<int64_t>* id_map) {
  const std::unordered_set<int64_t> removed(users.begin(), users.end());
  std::vector<int64_t> map(static_cast<size_t>(dataset.num_users), -1);
  int64_t next = 0;
  for (int64_t u = 0; u < dataset.num_users; ++u) {
    if (removed.count(u) == 0) map[static_cast<size_t>(u)] = next++;
  }

  Dataset out;
  out.name = dataset.name + "-moderated";
  out.num_users = next;
  out.num_items = dataset.num_items;
  out.items = dataset.items;
  out.social = UndirectedGraph(next);
  for (const auto& [a, b] : dataset.social.Edges()) {
    const int64_t na = map[static_cast<size_t>(a)];
    const int64_t nb = map[static_cast<size_t>(b)];
    if (na >= 0 && nb >= 0) out.social.AddEdge(na, nb);
  }
  for (const Rating& r : dataset.ratings) {
    const int64_t nu = map[static_cast<size_t>(r.user)];
    if (nu >= 0) out.ratings.push_back({nu, r.item, r.value});
  }
  if (id_map != nullptr) *id_map = std::move(map);
  return out;
}

}  // namespace msopds
