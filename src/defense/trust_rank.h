#ifndef MSOPDS_DEFENSE_TRUST_RANK_H_
#define MSOPDS_DEFENSE_TRUST_RANK_H_

#include <vector>

#include "data/dataset.h"

namespace msopds {

/// Options of the trust-propagation detector.
struct TrustRankOptions {
  /// Fraction of users (by social degree) used as trusted seeds.
  double seed_fraction = 0.1;
  /// Random-walk damping (probability of following an edge).
  double damping = 0.85;
  /// Power-iteration rounds.
  int iterations = 20;
};

/// TrustRank-style account scoring (extension, complementing the
/// behavioural detector in fake_detector.h): trust mass is seeded at the
/// most-embedded accounts and propagated over the social network with a
/// damped random walk. Freshly injected fake accounts — reachable only
/// through the few links their operator bought — accumulate little trust.
/// Returns per-user trust in [0, 1] (higher = more trusted); isolated
/// users get exactly 0 beyond the teleport mass.
std::vector<double> TrustScores(const Dataset& dataset,
                                const TrustRankOptions& options = {});

/// The `count` least-trusted users (ties by lower id).
std::vector<int64_t> DetectByTrust(const Dataset& dataset, int64_t count,
                                   const TrustRankOptions& options = {});

}  // namespace msopds

#endif  // MSOPDS_DEFENSE_TRUST_RANK_H_
