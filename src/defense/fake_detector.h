#ifndef MSOPDS_DEFENSE_FAKE_DETECTOR_H_
#define MSOPDS_DEFENSE_FAKE_DETECTOR_H_

#include <vector>

#include "data/dataset.h"

namespace msopds {

/// Extension of the paper's §VI-F observation ("website moderators
/// usually detect and remove fake user accounts"): a behavioural
/// fake-account detector in the spirit of graph-based Sybil/shill
/// detection. It scores every user by
///  - extremity: fraction of the user's ratings at the scale endpoints,
///  - deviation: mean |rating - item mean| against the crowd,
///  - isolation: social degree relative to the platform average,
/// and flags the highest-scoring accounts. Injected shilling profiles
/// (many 5-stars, weakly embedded) score high; hired *real* users score
/// like everyone else — which is exactly why the paper argues real-user
/// poisoning is the more durable channel (Fig. 9 discussion).
struct FakeDetectorOptions {
  double extremity_weight = 1.0;
  double deviation_weight = 1.0;
  double isolation_weight = 1.0;
  /// Users with fewer ratings than this are never flagged (too little
  /// evidence).
  int64_t min_ratings = 1;
};

/// Per-user suspicion scores in [0, ~3].
std::vector<double> SuspicionScores(const Dataset& dataset,
                                    const FakeDetectorOptions& options = {});

/// The `count` most suspicious users (ties by lower id).
std::vector<int64_t> DetectFakeUsers(const Dataset& dataset, int64_t count,
                                     const FakeDetectorOptions& options = {});

/// Moderation: removes the given users (their ratings and social links)
/// and compacts ids. Returns the cleaned dataset and, via `id_map`,
/// old-id -> new-id (-1 for removed users) when non-null.
Dataset RemoveUsers(const Dataset& dataset,
                    const std::vector<int64_t>& users,
                    std::vector<int64_t>* id_map = nullptr);

}  // namespace msopds

#endif  // MSOPDS_DEFENSE_FAKE_DETECTOR_H_
