#include "defense/trust_rank.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace msopds {

std::vector<double> TrustScores(const Dataset& dataset,
                                const TrustRankOptions& options) {
  MSOPDS_CHECK_GT(options.seed_fraction, 0.0);
  MSOPDS_CHECK_LE(options.seed_fraction, 1.0);
  MSOPDS_CHECK_GT(options.iterations, 0);
  MSOPDS_CHECK_GE(options.damping, 0.0);
  MSOPDS_CHECK_LT(options.damping, 1.0);

  const int64_t users = dataset.num_users;
  if (users == 0) return {};

  // Seeds: the highest-degree accounts (long-standing organic hubs).
  std::vector<int64_t> by_degree(static_cast<size_t>(users));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(), [&](int64_t a, int64_t b) {
    const int64_t da = dataset.social.Degree(a);
    const int64_t db = dataset.social.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  const int64_t num_seeds = std::max<int64_t>(
      1, static_cast<int64_t>(options.seed_fraction *
                              static_cast<double>(users)));
  std::vector<double> seed(static_cast<size_t>(users), 0.0);
  for (int64_t s = 0; s < num_seeds; ++s) {
    seed[static_cast<size_t>(by_degree[static_cast<size_t>(s)])] =
        1.0 / static_cast<double>(num_seeds);
  }

  // Damped push iteration: t <- (1-d) seed + d * A_norm^T t.
  std::vector<double> trust = seed;
  std::vector<double> next(static_cast<size_t>(users), 0.0);
  for (int round = 0; round < options.iterations; ++round) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int64_t u = 0; u < users; ++u) {
      const double mass = trust[static_cast<size_t>(u)];
      if (mass == 0.0) continue;
      const auto& neighbors = dataset.social.Neighbors(u);
      if (neighbors.empty()) continue;
      const double share =
          options.damping * mass / static_cast<double>(neighbors.size());
      for (int64_t v : neighbors) next[static_cast<size_t>(v)] += share;
    }
    for (int64_t u = 0; u < users; ++u) {
      next[static_cast<size_t>(u)] +=
          (1.0 - options.damping) * seed[static_cast<size_t>(u)];
    }
    trust.swap(next);
  }

  // Normalize to [0, 1] for comparability.
  const double max_trust = *std::max_element(trust.begin(), trust.end());
  if (max_trust > 0.0) {
    for (double& t : trust) t /= max_trust;
  }
  return trust;
}

std::vector<int64_t> DetectByTrust(const Dataset& dataset, int64_t count,
                                   const TrustRankOptions& options) {
  MSOPDS_CHECK_GE(count, 0);
  const std::vector<double> trust = TrustScores(dataset, options);
  std::vector<int64_t> order(trust.size());
  std::iota(order.begin(), order.end(), 0);
  const int64_t k =
      std::min<int64_t>(count, static_cast<int64_t>(order.size()));
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int64_t a, int64_t b) {
                      const double ta = trust[static_cast<size_t>(a)];
                      const double tb = trust[static_cast<size_t>(b)];
                      if (ta != tb) return ta < tb;
                      return a < b;
                    });
  order.resize(static_cast<size_t>(k));
  return order;
}

}  // namespace msopds
