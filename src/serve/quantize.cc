#include "serve/quantize.h"

#include <cmath>
#include <cstring>

#include "serve/model_snapshot.h"
#include "tensor/simd.h"
#include "util/logging.h"

namespace msopds {
namespace serve {

const char* SnapshotPrecisionName(SnapshotPrecision precision) {
  switch (precision) {
    case SnapshotPrecision::kFp64:
      return "fp64";
    case SnapshotPrecision::kFp16:
      return "fp16";
    case SnapshotPrecision::kInt8:
      return "int8";
  }
  return "fp64";
}

bool ParseSnapshotPrecision(const std::string& text, SnapshotPrecision* out) {
  MSOPDS_CHECK(out != nullptr);
  if (text == "fp64") {
    *out = SnapshotPrecision::kFp64;
  } else if (text == "fp16") {
    *out = SnapshotPrecision::kFp16;
  } else if (text == "int8") {
    *out = SnapshotPrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

namespace {

// binary32 bits → binary16 bits, round-to-nearest-even. The magic-number
// technique: normal halves round via an integer bias + mantissa-odd
// nudge; subnormal halves round via one float addition against a
// denormal magic constant (the float adder performs the RNE shift).
uint16_t SingleBitsToHalf(uint32_t bits) {
  const uint32_t kInfBits = 255u << 23;
  const uint32_t kHalfMaxBits = (127u + 16u) << 23;  // 2^16: overflows half
  const uint32_t kDenormMagicBits = ((127u - 15u) + (23u - 10u) + 1u) << 23;
  const uint32_t sign = bits & 0x80000000u;
  bits ^= sign;
  uint16_t half;
  if (bits >= kHalfMaxBits) {
    // Overflow → ±inf; NaN keeps a quiet payload.
    half = bits > kInfBits ? 0x7E00u : 0x7C00u;
  } else if (bits < (113u << 23)) {  // < 2^-14: subnormal half or zero
    float magic;
    std::memcpy(&magic, &kDenormMagicBits, sizeof(magic));
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    value += magic;
    std::memcpy(&bits, &value, sizeof(bits));
    half = static_cast<uint16_t>(bits - kDenormMagicBits);
  } else {
    const uint32_t mantissa_odd = (bits >> 13) & 1u;
    bits += (static_cast<uint32_t>(15 - 127) << 23) + 0xFFFu;
    bits += mantissa_odd;
    half = static_cast<uint16_t>(bits >> 13);
  }
  return static_cast<uint16_t>(half | (sign >> 16));
}

}  // namespace

uint16_t DoubleToHalf(double value) {
  // binary64 → binary32 is itself RNE; double rounding across the two
  // steps can differ from direct binary64 → binary16 RNE only in the
  // last binary16 ulp, which the round-trip tests bound. Factor values
  // here come out of training at O(1) magnitude, far from both edges.
  const float single = static_cast<float>(value);
  uint32_t bits;
  std::memcpy(&bits, &single, sizeof(bits));
  return SingleBitsToHalf(bits);
}

void QuantizeRowsHalf(const double* values, int64_t count,
                      std::vector<uint16_t>* out) {
  MSOPDS_CHECK(out != nullptr);
  MSOPDS_CHECK_GE(count, 0);
  out->resize(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    (*out)[static_cast<size_t>(i)] = DoubleToHalf(values[i]);
  }
}

void QuantizeRowsInt8(const double* rows, int64_t num_rows, int64_t dim,
                      std::vector<int8_t>* values,
                      std::vector<float>* scales) {
  MSOPDS_CHECK(values != nullptr);
  MSOPDS_CHECK(scales != nullptr);
  MSOPDS_CHECK_GE(num_rows, 0);
  MSOPDS_CHECK_GT(dim, 0);
  values->assign(static_cast<size_t>(num_rows * dim), 0);
  scales->assign(static_cast<size_t>(num_rows), 0.0f);
  for (int64_t r = 0; r < num_rows; ++r) {
    const double* row = rows + r * dim;
    const double max_abs = simd::MaxAbs(row, dim);
    if (!(max_abs > 0.0) || !std::isfinite(max_abs)) continue;
    // Scale is stored in binary32 (the published format); quantize with
    // the *stored* scale so dequantization q * scale reproduces the
    // codes' intent exactly.
    const float scale = static_cast<float>(max_abs / 127.0);
    (*scales)[static_cast<size_t>(r)] = scale;
    const double inv_scale = 1.0 / static_cast<double>(scale);
    int8_t* codes = values->data() + r * dim;
    for (int64_t d = 0; d < dim; ++d) {
      long long q = std::llround(row[d] * inv_scale);
      if (q > 127) q = 127;
      if (q < -127) q = -127;
      codes[d] = static_cast<int8_t>(q);
    }
  }
}

std::shared_ptr<const ModelSnapshot> QuantizeSnapshot(
    const ModelSnapshot& source, SnapshotPrecision target) {
  MSOPDS_CHECK(source.precision_ == SnapshotPrecision::kFp64);
  std::shared_ptr<ModelSnapshot> snap(new ModelSnapshot());
  snap->num_users_ = source.num_users_;
  snap->num_items_ = source.num_items_;
  snap->dim_ = source.dim_;
  snap->user_bias_ = source.user_bias_;
  snap->item_bias_ = source.item_bias_;
  snap->offset_ = source.offset_;
  snap->seen_ = source.seen_;
  snap->version_ = source.version_;
  snap->source_ = source.source_;
  snap->precision_ = target;
  switch (target) {
    case SnapshotPrecision::kFp64:
      snap->user_factors_ = source.user_factors_;
      snap->item_factors_ = source.item_factors_;
      break;
    case SnapshotPrecision::kFp16:
      QuantizeRowsHalf(source.user_factors_.data(),
                       source.num_users_ * source.dim_, &snap->user_half_);
      QuantizeRowsHalf(source.item_factors_.data(),
                       source.num_items_ * source.dim_, &snap->item_half_);
      break;
    case SnapshotPrecision::kInt8:
      QuantizeRowsInt8(source.user_factors_.data(), source.num_users_,
                       source.dim_, &snap->user_q8_, &snap->user_scale_);
      QuantizeRowsInt8(source.item_factors_.data(), source.num_items_,
                       source.dim_, &snap->item_q8_, &snap->item_scale_);
      break;
  }
  return snap;
}

}  // namespace serve
}  // namespace msopds
