#include "serve/degraded.h"

#include <algorithm>

#include "serve/topk.h"
#include "util/logging.h"

namespace msopds {
namespace serve {

std::shared_ptr<const PopularityCatalog> PopularityCatalog::FromSeen(
    const SeenItemsCsr& seen, int64_t num_items, uint64_t snapshot_version) {
  MSOPDS_CHECK_GE(num_items, 0);
  std::vector<int64_t> count_of(static_cast<size_t>(num_items), 0);
  for (int64_t item : seen.items) {
    MSOPDS_DCHECK_GE(item, 0);
    MSOPDS_DCHECK_LT(item, num_items);
    ++count_of[static_cast<size_t>(item)];
  }
  std::vector<ScoredItem> ranked;
  ranked.reserve(static_cast<size_t>(num_items));
  int64_t positive = 0;
  for (int64_t item = 0; item < num_items; ++item) {
    const int64_t count = count_of[static_cast<size_t>(item)];
    ranked.push_back({item, static_cast<double>(count)});
    if (count > 0) ++positive;
  }
  // Only the items with any interactions need comparison sorting: every
  // positive count ranks before every zero count, and the zero-count
  // tail under RanksBefore is just ascending item ids, which we can
  // write directly. partial_sort over the positive prefix is
  // O(N log P) instead of the full O(N log N) — the publish path
  // rebuilds this catalog on every hot swap.
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<std::ptrdiff_t>(positive),
                    ranked.end(), RanksBefore);
  int64_t tail = positive;
  for (int64_t item = 0; item < num_items; ++item) {
    if (count_of[static_cast<size_t>(item)] == 0) {
      ranked[static_cast<size_t>(tail++)] = {item, 0.0};
    }
  }
  MSOPDS_DCHECK_EQ(tail, num_items);
  auto catalog = std::make_shared<PopularityCatalog>();
  catalog->snapshot_version = snapshot_version;
  catalog->items.reserve(ranked.size());
  catalog->counts.reserve(ranked.size());
  for (const ScoredItem& entry : ranked) {
    catalog->items.push_back(entry.item);
    catalog->counts.push_back(entry.score);
  }
  return catalog;
}

std::shared_ptr<const PopularityCatalog> PopularityCatalog::FromSnapshot(
    const ModelSnapshot& snapshot) {
  return FromSeen(snapshot.seen(), snapshot.num_items(), snapshot.version());
}

void ServeFromPopularity(const PopularityCatalog* catalog,
                         const SeenItemsCsr* seen, const ServeRequest& request,
                         DegradedReason reason, ServeResponse* response) {
  MSOPDS_CHECK(response != nullptr);
  response->served_degraded = true;
  response->degraded_reason = reason;
  response->items.clear();
  response->scores.clear();
  if (catalog == nullptr) return;
  response->snapshot_version = catalog->snapshot_version;
  const bool exclude = request.exclude_seen && seen != nullptr &&
                       request.user >= 0 && request.user < seen->num_users();
  const int64_t k = request.k;
  for (size_t r = 0; r < catalog->items.size() &&
                     static_cast<int64_t>(response->items.size()) < k;
       ++r) {
    const int64_t item = catalog->items[r];
    if (exclude && seen->Contains(request.user, item)) continue;
    response->items.push_back(item);
    response->scores.push_back(catalog->counts[r]);
  }
}

}  // namespace serve
}  // namespace msopds
