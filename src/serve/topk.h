#ifndef MSOPDS_SERVE_TOPK_H_
#define MSOPDS_SERVE_TOPK_H_

#include <cstdint>
#include <vector>

#include "serve/model_snapshot.h"
#include "util/logging.h"

namespace msopds {
namespace serve {

/// One recommendation candidate.
struct ScoredItem {
  int64_t item = 0;
  double score = 0.0;

  friend bool operator==(const ScoredItem& a, const ScoredItem& b) {
    return a.item == b.item && a.score == b.score;
  }
};

/// THE ranking order of every top-K list in the repo: higher score first,
/// equal scores broken toward the lower item id. Because (score, item) is
/// a total order with no equal keys, the top-K set and its order are
/// unique — independent of scan order, tiling, and thread count.
inline bool RanksBefore(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

/// 1-based rank of a candidate scored `candidate_score` among `n`
/// competitor scores, with ties favoring the candidate (the paper's
/// HitRate@k convention, tests/recsys/ranking_metrics_test.cc
/// "TiesFavorTheTarget"): rank = 1 + #(strictly greater competitors).
/// This is the candidate-set rank used by the offline attack metrics;
/// full-catalog lists use RanksBefore (item-id ties) instead.
int64_t RankWithTiesFavoringCandidate(double candidate_score,
                                      const double* competitor_scores,
                                      int64_t n);

/// Bounded best-K selector over a stream of (item, score) offers: a
/// size-K binary heap keyed by RanksBefore with the *worst* retained
/// candidate at the root, so each offer is O(log K) and the selection is
/// deterministic for any offer order.
class TopKSelector {
 public:
  explicit TopKSelector(int k);

  void Offer(int64_t item, double score);

  int k() const { return k_; }
  int64_t size() const { return static_cast<int64_t>(heap_.size()); }

  /// The selected candidates sorted best-first; the selector resets to
  /// empty.
  std::vector<ScoredItem> Take();

 private:
  int k_ = 0;
  std::vector<ScoredItem> heap_;
};

/// Selects the top-k of a dense score vector (scores[i] = score of item
/// i) through TopKSelector, skipping the ids in `excluded_sorted`
/// (ascending, may be null/empty). Shared by the offline metrics path
/// (recsys/metrics.h TopKItems) so online and offline rankings are one
/// implementation.
std::vector<ScoredItem> SelectTopK(const double* scores, int64_t num_items,
                                   int k, const int64_t* excluded_sorted,
                                   int64_t num_excluded);

struct TopKOptions {
  int k = 10;
  /// Skip items the user already rated (snapshot seen-CSR).
  bool exclude_seen = true;
};

/// Fixed-stride (k) batch of per-user recommendation lists. Users with
/// fewer than k candidates (exclusion can consume the whole catalog) get
/// counts[u] < k; padding slots hold item -1 / score 0.
struct TopKResult {
  int k = 0;
  std::vector<int64_t> items;   // [num_users * k]
  std::vector<double> scores;   // [num_users * k]
  std::vector<int64_t> counts;  // [num_users]

  const int64_t* ItemsForUser(int64_t u) const {
    return items.data() + u * k;
  }
  const double* ScoresForUser(int64_t u) const {
    return scores.data() + u * k;
  }
};

/// Packs per-user best-first lists into the fixed-stride layout.
TopKResult PackTopK(const std::vector<std::vector<ScoredItem>>& per_user,
                    int k);

/// Blocked batched top-K scoring over a snapshot: users are partitioned
/// on the thread-pool's fixed chunk grid, and inside a chunk the item
/// catalog is scanned in cache-sized tiles with the tile's item rows
/// shared across the chunk's users. Seen-item exclusion rides the
/// ascending scan with one monotone CSR cursor per user. Scoring goes
/// through the snapshot's precision-erased UserRef handle, so quantized
/// (fp16/int8) snapshots ride the same tiling and hit their
/// width-matched kernels. Results are bit-identical at any thread count
/// and tile size (RanksBefore is a total order) for every precision.
TopKResult TopKForUsers(const ModelSnapshot& snapshot,
                        const std::vector<int64_t>& users,
                        const TopKOptions& options);

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_TOPK_H_
