#ifndef MSOPDS_SERVE_DEGRADED_H_
#define MSOPDS_SERVE_DEGRADED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/admission.h"
#include "serve/model_snapshot.h"

namespace msopds {
namespace serve {

/// Deterministic graceful-degradation source: the full item catalog
/// ranked by popularity (seen-item count descending, ties toward the
/// lower item id — the same RanksBefore total order as every other list
/// in the repo, with counts as scores). Built once per publish from the
/// snapshot's seen CSR, so serving from it costs a ranked-list walk with
/// no embedding math: when the engine is saturated, has no snapshot, or
/// a scoring pass fails, it answers from here instead of stalling.
///
/// Immutable after construction (same sharing contract as ModelSnapshot).
struct PopularityCatalog {
  /// All item ids, best (most seen) first.
  std::vector<int64_t> items;
  /// counts[r] = seen-item count of items[r] (the degraded "score").
  std::vector<double> counts;
  /// Version of the snapshot this ranking derives from.
  uint64_t snapshot_version = 0;

  /// Ranks [0, num_items) by seen-count over `seen` (items absent from
  /// every row rank by id at count 0).
  static std::shared_ptr<const PopularityCatalog> FromSeen(
      const SeenItemsCsr& seen, int64_t num_items, uint64_t snapshot_version);

  static std::shared_ptr<const PopularityCatalog> FromSnapshot(
      const ModelSnapshot& snapshot);
};

/// Fills `response` from the popularity ranking: the top-k catalog items,
/// skipping the user's seen items (via `seen`, when non-null and the user
/// is in range) if the request asks for exclusion. `catalog` may be null
/// (nothing ever published): the response is then an empty list. Always
/// stamps served_degraded/degraded_reason; never touches latency fields
/// or status. Deterministic: the output is a pure function of (catalog,
/// seen row, request).
void ServeFromPopularity(const PopularityCatalog* catalog,
                         const SeenItemsCsr* seen, const ServeRequest& request,
                         DegradedReason reason, ServeResponse* response);

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_DEGRADED_H_
