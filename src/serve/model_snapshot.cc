#include "serve/model_snapshot.h"

#include <algorithm>
#include <utility>

namespace msopds {
namespace serve {

SeenItemsCsr SeenItemsCsr::FromRatings(int64_t num_users, int64_t num_items,
                                       const std::vector<Rating>& ratings) {
  MSOPDS_CHECK_GE(num_users, 0);
  SeenItemsCsr csr;
  std::vector<int64_t> counts(static_cast<size_t>(num_users), 0);
  for (const Rating& r : ratings) {
    MSOPDS_CHECK_GE(r.user, 0);
    MSOPDS_CHECK_LT(r.user, num_users);
    MSOPDS_CHECK_GE(r.item, 0);
    MSOPDS_CHECK_LT(r.item, num_items);
    ++counts[static_cast<size_t>(r.user)];
  }
  csr.offsets.assign(static_cast<size_t>(num_users) + 1, 0);
  for (int64_t u = 0; u < num_users; ++u) {
    csr.offsets[static_cast<size_t>(u) + 1] =
        csr.offsets[static_cast<size_t>(u)] + counts[static_cast<size_t>(u)];
  }
  csr.items.resize(static_cast<size_t>(csr.offsets.back()));
  std::vector<int64_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const Rating& r : ratings) {
    csr.items[static_cast<size_t>(cursor[static_cast<size_t>(r.user)]++)] =
        r.item;
  }
  for (int64_t u = 0; u < num_users; ++u) {
    std::sort(csr.items.begin() + csr.offsets[static_cast<size_t>(u)],
              csr.items.begin() + csr.offsets[static_cast<size_t>(u) + 1]);
  }
  return csr;
}

bool SeenItemsCsr::Contains(int64_t user, int64_t item) const {
  const int64_t* begin = Row(user);
  const int64_t* end = begin + RowSize(user);
  return std::binary_search(begin, end, item);
}

namespace {

// Deep copy of a Tensor's elements into a detached heap vector (never
// shares TensorStorage, so the copy outlives arena regions).
std::vector<double> DetachedCopy(const Tensor& t) {
  if (!t.defined() || t.size() == 0) return {};
  return std::vector<double>(t.data(), t.data() + t.size());
}

}  // namespace

std::shared_ptr<const ModelSnapshot> ModelSnapshot::FromModel(
    RatingModel* model, const Dataset& dataset,
    const SnapshotOptions& options) {
  MSOPDS_CHECK(model != nullptr);
  ServingParams params = model->ExportServingParams();
  MSOPDS_CHECK(params.user_factors.defined());
  MSOPDS_CHECK(params.item_factors.defined());
  MSOPDS_CHECK_EQ(params.user_factors.rank(), 2);
  MSOPDS_CHECK_EQ(params.item_factors.rank(), 2);
  const int64_t num_users = params.user_factors.dim(0);
  const int64_t num_items = params.item_factors.dim(0);
  const int64_t dim = params.user_factors.dim(1);
  MSOPDS_CHECK_EQ(params.item_factors.dim(1), dim);
  MSOPDS_CHECK_EQ(num_users, dataset.num_users);
  MSOPDS_CHECK_EQ(num_items, dataset.num_items);
  if (params.user_bias.defined()) {
    MSOPDS_CHECK_EQ(params.user_bias.size(), num_users);
  }
  if (params.item_bias.defined()) {
    MSOPDS_CHECK_EQ(params.item_bias.size(), num_items);
  }
  auto full = std::make_shared<const ModelSnapshot>(
      num_users, num_items, dim, DetachedCopy(params.user_factors),
      DetachedCopy(params.item_factors), DetachedCopy(params.user_bias),
      DetachedCopy(params.item_bias), params.offset,
      SeenItemsCsr::FromRatings(num_users, num_items, dataset.ratings),
      options);
  if (options.precision == SnapshotPrecision::kFp64) return full;
  // Quantize once at export time; the binary64 intermediate is dropped.
  return QuantizeSnapshot(*full, options.precision);
}

ModelSnapshot::ModelSnapshot(int64_t num_users, int64_t num_items, int64_t dim,
                             std::vector<double> user_factors,
                             std::vector<double> item_factors,
                             std::vector<double> user_bias,
                             std::vector<double> item_bias, double offset,
                             SeenItemsCsr seen, const SnapshotOptions& options)
    : num_users_(num_users),
      num_items_(num_items),
      dim_(dim),
      user_factors_(std::move(user_factors)),
      item_factors_(std::move(item_factors)),
      user_bias_(std::move(user_bias)),
      item_bias_(std::move(item_bias)),
      offset_(offset),
      seen_(std::move(seen)),
      version_(options.version),
      source_(options.source) {
  MSOPDS_CHECK_GE(num_users_, 0);
  MSOPDS_CHECK_GE(num_items_, 0);
  MSOPDS_CHECK_GT(dim_, 0);
  MSOPDS_CHECK_EQ(static_cast<int64_t>(user_factors_.size()),
                  num_users_ * dim_);
  MSOPDS_CHECK_EQ(static_cast<int64_t>(item_factors_.size()),
                  num_items_ * dim_);
  MSOPDS_CHECK(user_bias_.empty() ||
               static_cast<int64_t>(user_bias_.size()) == num_users_);
  MSOPDS_CHECK(item_bias_.empty() ||
               static_cast<int64_t>(item_bias_.size()) == num_items_);
  MSOPDS_CHECK_EQ(seen_.num_users(), num_users_);
}

int64_t ModelSnapshot::FactorPayloadBytes() const {
  const int64_t f64_bytes = static_cast<int64_t>(sizeof(double)) *
                            static_cast<int64_t>(user_factors_.size() +
                                                 item_factors_.size());
  const int64_t f16_bytes =
      static_cast<int64_t>(sizeof(uint16_t)) *
      static_cast<int64_t>(user_half_.size() + item_half_.size());
  const int64_t q8_bytes = static_cast<int64_t>(
      user_q8_.size() + item_q8_.size());
  const int64_t scale_bytes =
      static_cast<int64_t>(sizeof(float)) *
      static_cast<int64_t>(user_scale_.size() + item_scale_.size());
  return f64_bytes + f16_bytes + q8_bytes + scale_bytes;
}

int64_t ModelSnapshot::PayloadBytes() const {
  const int64_t biases =
      static_cast<int64_t>(user_bias_.size() + item_bias_.size());
  const int64_t indices =
      static_cast<int64_t>(seen_.offsets.size() + seen_.items.size());
  return FactorPayloadBytes() + static_cast<int64_t>(sizeof(double)) * biases +
         static_cast<int64_t>(sizeof(int64_t)) * indices;
}

}  // namespace serve
}  // namespace msopds
