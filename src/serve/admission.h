#ifndef MSOPDS_SERVE_ADMISSION_H_
#define MSOPDS_SERVE_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "serve/quantize.h"
#include "util/logging.h"
#include "util/rng.h"

namespace msopds {
namespace serve {

class ServingEngine;

/// Terminal outcome of one serve request. Everything except kOk is an
/// explicit overload/lifecycle signal: the engine never drops a promise,
/// it resolves every request with one of these.
enum class ServeStatus {
  /// Scored (full fidelity or degraded — see ServeResponse.served_degraded).
  kOk = 0,
  /// Rejected at admission: the pending queue was at max_queue. The
  /// request never entered the queue; retry after backoff (RetryingClient).
  kResourceExhausted = 1,
  /// Shed at batch pickup: the request's deadline had already passed, so
  /// the engine refused to spend scoring work on a response the caller
  /// stopped waiting for.
  kDeadlineExceeded = 2,
  /// The engine stopped before the request could be scored.
  kCancelled = 3,
};

const char* ServeStatusName(ServeStatus status);

/// Why a response was served degraded (ServeResponse.served_degraded).
enum class DegradedReason {
  kNone = 0,
  /// No snapshot has ever been published (or the slot is empty).
  kNoSnapshot = 1,
  /// The pending queue was at/above degrade_queue_depth at admission, so
  /// the request was routed to the cheap popularity path.
  kSaturated = 2,
  /// The scoring pass threw (real worker exception or injected fault);
  /// the batch fell back to the popularity list instead of failing.
  kScoringFault = 3,
};

const char* DegradedReasonName(DegradedReason reason);

struct ServeRequest {
  int64_t user = 0;
  int k = 10;
  bool exclude_seen = true;
  /// Per-request latency budget; requests past it are shed before
  /// scoring. 0 = use the engine's default deadline_us.
  int64_t deadline_us = 0;
};

struct ServeResponse {
  /// Best-first recommendation list (≤ k entries; empty when rejected,
  /// shed, cancelled, or degraded with no fallback available).
  std::vector<int64_t> items;
  std::vector<double> scores;
  /// Version of the snapshot that served the request (0 = none). For
  /// degraded responses this is the version of the snapshot whose
  /// popularity list answered.
  uint64_t snapshot_version = 0;
  /// Storage precision of that snapshot (kFp64 when no snapshot has ever
  /// served). Paired with snapshot_version so hot-swap observers can
  /// assert which published mode answered each request.
  SnapshotPrecision snapshot_precision = SnapshotPrecision::kFp64;
  ServeStatus status = ServeStatus::kOk;
  /// True when the response came from the popularity fallback instead of
  /// the full scoring path. The bit-identical-to-offline guarantee is
  /// scoped to full-fidelity responses (served_degraded == false);
  /// degraded scores are seen-item counts, not model scores.
  bool served_degraded = false;
  DegradedReason degraded_reason = DegradedReason::kNone;
  /// Enqueue → batch pickup.
  int64_t queue_us = 0;
  /// Enqueue → response ready.
  int64_t total_us = 0;
  /// The effective deadline had passed by completion (shed responses
  /// always set it; a served response can also finish late).
  bool deadline_missed = false;

  bool ok() const { return status == ServeStatus::kOk; }
};

/// Admission-control policy knobs (a subset of EngineOptions; the engine
/// forwards them to its AdmissionController).
struct AdmissionOptions {
  /// Pending-queue cap; a Submit() that finds the queue at the cap is
  /// rejected with kResourceExhausted. 0 = unbounded (legacy behavior).
  int64_t max_queue = 0;
  /// Queue depth at/above which admitted requests are routed to the
  /// degraded popularity path instead of full scoring. 0 = disabled.
  /// Must be < max_queue to have any effect when both are set.
  int64_t degrade_queue_depth = 0;
};

enum class AdmissionDecision {
  kAdmit = 0,
  /// Admitted, but flagged for the degraded path (queue saturated).
  kAdmitDegraded = 1,
  kReject = 2,
};

/// Overload bookkeeping for the engine's Submit() path. Pure decision
/// logic plus counters — no locking; the engine calls it under its queue
/// mutex, so decisions are a deterministic function of observed depth.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Decision for a request arriving when `queue_depth` requests are
  /// already pending. Updates the admitted/rejected counters and the
  /// queue-depth high-water mark.
  AdmissionDecision Admit(int64_t queue_depth);

  int64_t admitted() const { return admitted_; }
  int64_t rejected() const { return rejected_; }
  int64_t max_queue_depth() const { return max_queue_depth_; }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  int64_t max_queue_depth_ = 0;
};

/// Client-side coping policy for kResourceExhausted rejections:
/// exponential backoff with seeded jitter, bounded by attempts and by a
/// total deadline budget.
struct RetryPolicy {
  /// Total tries (first attempt + retries). Must be >= 1.
  int max_attempts = 4;
  /// Backoff before retry #1; retry #n waits initial * multiplier^(n-1),
  /// scaled by jitter.
  int64_t initial_backoff_us = 200;
  double backoff_multiplier = 2.0;
  /// Uniform jitter factor in [1 - jitter, 1 + jitter]; 0 = none.
  double jitter = 0.5;
  /// Total budget across all attempts and backoffs; a retry whose
  /// backoff would overrun the budget is abandoned. 0 = unlimited.
  int64_t budget_us = 0;
};

/// Jittered exponential backoff before retry `attempt` (1-based). Pure
/// function of (policy, attempt, rng state) — seeded callers replay the
/// same schedule.
int64_t BackoffDelayUs(const RetryPolicy& policy, int attempt, Rng* rng);

/// Blocking serve client that retries rejected requests under a
/// RetryPolicy. Shed (kDeadlineExceeded) and kCancelled responses are
/// returned as-is: the deadline is already blown / the engine is gone,
/// so retrying cannot help. Not thread-safe; give each client thread its
/// own instance (with its own seed).
class RetryingClient {
 public:
  RetryingClient(ServingEngine* engine, const RetryPolicy& policy,
                 uint64_t seed);

  /// Submit + wait, retrying rejections with jittered backoff.
  ServeResponse Serve(const ServeRequest& request);

  /// Backoff-retries issued so far (across all Serve calls).
  int64_t retries() const { return retries_; }
  /// Serves that exhausted attempts/budget and returned a rejection.
  int64_t gave_up() const { return gave_up_; }

 private:
  ServingEngine* engine_;
  RetryPolicy policy_;
  Rng rng_;
  int64_t retries_ = 0;
  int64_t gave_up_ = 0;
};

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_ADMISSION_H_
