#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "serve/engine.h"

namespace msopds {
namespace serve {

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "OK";
    case ServeStatus::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ServeStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ServeStatus::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

const char* DegradedReasonName(DegradedReason reason) {
  switch (reason) {
    case DegradedReason::kNone: return "none";
    case DegradedReason::kNoSnapshot: return "no_snapshot";
    case DegradedReason::kSaturated: return "saturated";
    case DegradedReason::kScoringFault: return "scoring_fault";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  MSOPDS_CHECK_GE(options_.max_queue, 0);
  MSOPDS_CHECK_GE(options_.degrade_queue_depth, 0);
}

AdmissionDecision AdmissionController::Admit(int64_t queue_depth) {
  MSOPDS_DCHECK_GE(queue_depth, 0);
  if (options_.max_queue > 0 && queue_depth >= options_.max_queue) {
    ++rejected_;
    return AdmissionDecision::kReject;
  }
  ++admitted_;
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth + 1);
  if (options_.degrade_queue_depth > 0 &&
      queue_depth >= options_.degrade_queue_depth) {
    return AdmissionDecision::kAdmitDegraded;
  }
  return AdmissionDecision::kAdmit;
}

int64_t BackoffDelayUs(const RetryPolicy& policy, int attempt, Rng* rng) {
  MSOPDS_CHECK_GE(attempt, 1);
  MSOPDS_CHECK(rng != nullptr);
  const double base =
      static_cast<double>(policy.initial_backoff_us) *
      std::pow(policy.backoff_multiplier, static_cast<double>(attempt - 1));
  const double jitter = std::min(std::max(policy.jitter, 0.0), 1.0);
  const double factor =
      jitter > 0.0 ? rng->Uniform(1.0 - jitter, 1.0 + jitter) : 1.0;
  return std::max<int64_t>(0, static_cast<int64_t>(base * factor));
}

RetryingClient::RetryingClient(ServingEngine* engine,
                               const RetryPolicy& policy, uint64_t seed)
    : engine_(engine), policy_(policy), rng_(seed) {
  MSOPDS_CHECK(engine_ != nullptr);
  MSOPDS_CHECK_GE(policy_.max_attempts, 1);
}

ServeResponse RetryingClient::Serve(const ServeRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  for (int attempt = 1;; ++attempt) {
    ServeResponse response = engine_->ServeSync(request);
    if (response.status != ServeStatus::kResourceExhausted) return response;
    if (attempt >= policy_.max_attempts) {
      ++gave_up_;
      return response;
    }
    const int64_t backoff_us = BackoffDelayUs(policy_, attempt, &rng_);
    if (policy_.budget_us > 0) {
      const int64_t elapsed_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      // Deadline-budgeted: never start a backoff the budget cannot cover.
      if (elapsed_us + backoff_us > policy_.budget_us) {
        ++gave_up_;
        return response;
      }
    }
    ++retries_;
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
  }
}

}  // namespace serve
}  // namespace msopds
