#include "serve/engine.h"

#include <algorithm>
#include <exception>
#include <map>
#include <stdexcept>
#include <utility>

#include "util/fault.h"

namespace msopds {
namespace serve {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start)
      .count();
}

int64_t PercentileUs(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Cost of one request in batch-cost units (see EngineOptions).
int64_t RequestCost(const ServeRequest& request) {
  return std::max<int64_t>(1, request.k);
}

}  // namespace

ServingEngine::ServingEngine(const EngineOptions& options)
    : options_(options),
      admission_(AdmissionOptions{options.max_queue,
                                  options.degrade_queue_depth}) {
  MSOPDS_CHECK_GT(options_.max_batch_size, 0);
  MSOPDS_CHECK_GE(options_.max_wait_us, 0);
  MSOPDS_CHECK_GE(options_.deadline_us, 0);
  MSOPDS_CHECK_GE(options_.max_queue, 0);
  MSOPDS_CHECK_GE(options_.degrade_queue_depth, 0);
  MSOPDS_CHECK_GE(options_.max_batch_cost, 0);
  batcher_ = std::thread([this] { BatcherLoop(); });
}

ServingEngine::~ServingEngine() { Stop(); }

bool ServingEngine::Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  MSOPDS_CHECK(snapshot != nullptr);
  MutexLock lock(publish_mu_);
  if (FaultInjector::Global().ShouldFailPublish()) {
    // Rollback: the active snapshot and its popularity fallback stay
    // live; the caller can retry against an engine that kept serving.
    publish_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // The fallback swaps first: a batch that loads the new snapshot with
  // the old catalog degrades against a one-publish-stale popularity list
  // (documented contract), never against a torn structure.
  fallback_.Exchange(PopularityCatalog::FromSnapshot(*snapshot));
  // Release store: a batcher that acquire-loads the new pointer sees the
  // fully constructed snapshot. The previous snapshot moves to the
  // retired slot; the one retired before it is released here, strictly
  // after any batch that could have loaded it has moved on.
  retired_ = snapshot_.Exchange(std::move(snapshot));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<const ModelSnapshot> ServingEngine::CurrentSnapshot() const {
  return snapshot_.Load();
}

void ServingEngine::ResolveNow(Pending* pending, ServeStatus status) {
  ServeResponse response;
  response.status = status;
  response.total_us =
      MicrosSince(pending->enqueued, std::chrono::steady_clock::now());
  pending->promise.set_value(std::move(response));
}

std::future<ServeResponse> ServingEngine::Submit(const ServeRequest& request) {
  MSOPDS_CHECK_GT(request.k, 0);
  Pending pending;
  pending.request = request;
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<ServeResponse> future = pending.promise.get_future();
  bool cancelled = false;
  bool rejected = false;
  {
    MutexLock lock(queue_mu_);
    if (stopping_) {
      // Racing past (or arriving after) Stop(): resolve, never drop.
      cancelled = true;
    } else {
      switch (admission_.Admit(static_cast<int64_t>(queue_.size()))) {
        case AdmissionDecision::kReject:
          rejected = true;
          break;
        case AdmissionDecision::kAdmitDegraded:
          pending.degraded_hint = true;
          queue_.push_back(std::move(pending));
          break;
        case AdmissionDecision::kAdmit:
          queue_.push_back(std::move(pending));
          break;
      }
    }
  }
  if (cancelled || rejected) {
    ResolveNow(&pending, cancelled ? ServeStatus::kCancelled
                                   : ServeStatus::kResourceExhausted);
  }
  {
    MutexLock lock(stats_mu_);
    ++requests_;
    if (cancelled) ++cancelled_;
  }
  if (!cancelled && !rejected) queue_cv_.NotifyOne();
  return future;
}

ServeResponse ServingEngine::ServeSync(const ServeRequest& request) {
  // Bounded by the engine's promise-resolution contract: every Submit()
  // resolves (serve, reject, shed, or cancel).
  return Submit(request).get();  // lint:allow-blocking-wait
}

void ServingEngine::BatcherLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  // Idle housekeeping tick: the lint gate bans deadline-less blocking
  // waits in src/serve, so even the idle wait re-arms periodically.
  const auto idle_tick = std::chrono::milliseconds(50);
  MutexLock lock(queue_mu_);
  while (true) {
    if (!stopping_ && queue_.empty()) queue_cv_.WaitFor(lock, idle_tick);
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Micro-batch window: flush when full, when the oldest request has
    // dwelt max_wait_us, or on shutdown. Spurious wakeups re-check the
    // conditions and re-arm against the same deadline.
    const auto flush_at = queue_.front().enqueued + max_wait;
    while (!stopping_ &&
           static_cast<int>(queue_.size()) < options_.max_batch_size) {
      if (!queue_cv_.WaitUntil(lock, flush_at)) break;  // window elapsed
    }
    // Drain bounded by count and by cumulative cost: one huge-K request
    // closes its batch early instead of riding with (and starving) a
    // full complement of cheap ones.
    std::vector<Pending> batch;
    int64_t cost = 0;
    while (!queue_.empty() &&
           static_cast<int>(batch.size()) < options_.max_batch_size) {
      const int64_t next_cost = RequestCost(queue_.front().request);
      if (options_.max_batch_cost > 0 && !batch.empty() &&
          cost + next_cost > options_.max_batch_cost) {
        break;
      }
      cost += next_cost;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.Unlock();
    // Chaos point: injected latency spike between pickup and scoring —
    // queued deadlines keep running, so a spiked batch sheds.
    const int64_t delay_us = FaultInjector::Global().MaybeBatchFlushDelayUs();
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    ScoreBatch(std::move(batch));
    lock.Lock();
  }
}

void ServingEngine::ScoreBatch(std::vector<Pending> batch) {
  const auto picked_up = std::chrono::steady_clock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = snapshot_.Load();
  const std::shared_ptr<const PopularityCatalog> fallback = fallback_.Load();

  std::vector<ServeResponse> responses(batch.size());
  int64_t shed = 0;

  // Deadline enforcement: a request whose budget passed while it queued
  // is shed here, before any scoring work is spent on it.
  std::vector<size_t> full_members;
  std::vector<size_t> degraded_members;
  for (size_t i = 0; i < batch.size(); ++i) {
    const int64_t deadline_us = batch[i].request.deadline_us > 0
                                    ? batch[i].request.deadline_us
                                    : options_.deadline_us;
    if (deadline_us > 0 &&
        MicrosSince(batch[i].enqueued, picked_up) > deadline_us) {
      responses[i].status = ServeStatus::kDeadlineExceeded;
      responses[i].deadline_missed = true;
      ++shed;
      continue;
    }
    if (snapshot == nullptr) {
      responses[i].degraded_reason = DegradedReason::kNoSnapshot;
      degraded_members.push_back(i);
    } else if (batch[i].degraded_hint) {
      responses[i].degraded_reason = DegradedReason::kSaturated;
      degraded_members.push_back(i);
    } else {
      full_members.push_back(i);
    }
  }

  // Full-fidelity path, grouped by (k, exclude_seen) so each group is
  // one kernel call. A scoring failure — injected worker exception from
  // the chaos harness, or a real one propagated off the thread pool —
  // demotes the whole full-fidelity set to the popularity fallback
  // instead of failing the batch.
  if (!full_members.empty()) {
    try {
      if (FaultInjector::Global().ShouldFailScoring()) {
        throw std::runtime_error("injected scoring fault");
      }
      std::map<std::pair<int, bool>, std::vector<size_t>> groups;
      for (size_t i : full_members) {
        groups[{batch[i].request.k, batch[i].request.exclude_seen}]
            .push_back(i);
      }
      for (const auto& [key, members] : groups) {
        TopKOptions options;
        options.k = key.first;
        options.exclude_seen = key.second;
        std::vector<int64_t> users;
        users.reserve(members.size());
        for (size_t i : members) users.push_back(batch[i].request.user);
        const TopKResult result = TopKForUsers(*snapshot, users, options);
        for (size_t m = 0; m < members.size(); ++m) {
          ServeResponse& response = responses[members[m]];
          const int64_t count = result.counts[m];
          const auto local = static_cast<int64_t>(m);
          response.items.assign(result.ItemsForUser(local),
                                result.ItemsForUser(local) + count);
          response.scores.assign(result.ScoresForUser(local),
                                 result.ScoresForUser(local) + count);
          response.snapshot_version = snapshot->version();
          response.snapshot_precision = snapshot->precision();
        }
      }
    } catch (const std::exception&) {
      for (size_t i : full_members) {
        responses[i].degraded_reason = DegradedReason::kScoringFault;
        degraded_members.push_back(i);
      }
    }
  }

  // Degraded path: answer from the popularity catalog (stale snapshot's
  // seen CSR for exclusion when available) instead of stalling.
  for (size_t i : degraded_members) {
    ServeFromPopularity(fallback.get(),
                        snapshot != nullptr ? &snapshot->seen() : nullptr,
                        batch[i].request, responses[i].degraded_reason,
                        &responses[i]);
    if (snapshot != nullptr) {
      responses[i].snapshot_precision = snapshot->precision();
    }
  }

  const auto done = std::chrono::steady_clock::now();
  int64_t misses = 0;
  int64_t served_degraded = 0;
  std::vector<int64_t> latencies;
  latencies.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ServeResponse& response = responses[i];
    response.queue_us = MicrosSince(batch[i].enqueued, picked_up);
    response.total_us = MicrosSince(batch[i].enqueued, done);
    if (response.status == ServeStatus::kOk) {
      const int64_t deadline_us = batch[i].request.deadline_us > 0
                                      ? batch[i].request.deadline_us
                                      : options_.deadline_us;
      response.deadline_missed =
          deadline_us > 0 && response.total_us > deadline_us;
      if (response.served_degraded) ++served_degraded;
      latencies.push_back(response.total_us);
    }
    if (response.deadline_missed) ++misses;
  }
  {
    MutexLock lock(stats_mu_);
    batches_ += 1;
    batched_requests_ += static_cast<int64_t>(batch.size());
    deadline_misses_ += misses;
    shed_ += shed;
    degraded_ += served_degraded;
    latencies_us_.insert(latencies_us_.end(), latencies.begin(),
                         latencies.end());
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }
}

EngineStats ServingEngine::Stats() const {
  EngineStats stats;
  std::vector<int64_t> sorted;
  {
    MutexLock lock(stats_mu_);
    stats.requests = requests_;
    stats.batches = batches_;
    stats.deadline_misses = deadline_misses_;
    stats.shed = shed_;
    stats.degraded = degraded_;
    stats.cancelled = cancelled_;
    stats.mean_batch_size =
        batches_ > 0 ? static_cast<double>(batched_requests_) /
                           static_cast<double>(batches_)
                     : 0.0;
    sorted = latencies_us_;
  }
  {
    MutexLock lock(queue_mu_);
    stats.admitted = admission_.admitted();
    stats.rejected = admission_.rejected();
    stats.max_queue_depth = admission_.max_queue_depth();
  }
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  stats.publish_failures = publish_failures_.load(std::memory_order_relaxed);
  std::sort(sorted.begin(), sorted.end());
  stats.p50_us = PercentileUs(sorted, 0.50);
  stats.p95_us = PercentileUs(sorted, 0.95);
  stats.p99_us = PercentileUs(sorted, 0.99);
  stats.max_us = sorted.empty() ? 0 : sorted.back();
  return stats;
}

void ServingEngine::Stop() {
  // The thread handle is swapped out under queue_mu_ and joined on a
  // private copy: two concurrent Stop() calls (say destructor vs. an
  // explicit shutdown path) must never both reach join() on the same
  // std::thread, which is undefined behavior. The loser of the swap sees
  // an empty handle and only drains stragglers.
  std::thread batcher;
  {
    MutexLock lock(queue_mu_);
    if (stopping_ && !batcher_.joinable()) return;
    stopping_ = true;
    batcher.swap(batcher_);
  }
  queue_cv_.NotifyAll();
  if (batcher.joinable()) batcher.join();
  // The batcher drains by scoring until the queue is empty, but a Submit
  // that passed the stopping_ check before we set it can still land an
  // entry after the batcher's last look. Resolve such stragglers with
  // kCancelled — a promise is never dropped.
  std::deque<Pending> stragglers;
  {
    MutexLock lock(queue_mu_);
    stragglers.swap(queue_);
  }
  if (!stragglers.empty()) {
    for (Pending& pending : stragglers) {
      ResolveNow(&pending, ServeStatus::kCancelled);
    }
    MutexLock lock(stats_mu_);
    cancelled_ += static_cast<int64_t>(stragglers.size());
  }
}

}  // namespace serve
}  // namespace msopds
