#include "serve/engine.h"

#include <algorithm>
#include <map>
#include <utility>

namespace msopds {
namespace serve {

namespace {

int64_t MicrosSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration_cast<std::chrono::microseconds>(end - start)
      .count();
}

int64_t PercentileUs(const std::vector<int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

ServingEngine::ServingEngine(const EngineOptions& options)
    : options_(options) {
  MSOPDS_CHECK_GT(options_.max_batch_size, 0);
  MSOPDS_CHECK_GE(options_.max_wait_us, 0);
  MSOPDS_CHECK_GE(options_.deadline_us, 0);
  batcher_ = std::thread([this] { BatcherLoop(); });
}

ServingEngine::~ServingEngine() { Stop(); }

void ServingEngine::Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  MSOPDS_CHECK(snapshot != nullptr);
  std::lock_guard<std::mutex> lock(publish_mu_);
  // Release store: a batcher that acquire-loads the new pointer sees the
  // fully constructed snapshot. The previous snapshot moves to the
  // retired slot; the one retired before it is released here, strictly
  // after any batch that could have loaded it has moved on.
  retired_ = snapshot_.Exchange(std::move(snapshot));
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const ModelSnapshot> ServingEngine::CurrentSnapshot() const {
  return snapshot_.Load();
}

std::future<ServeResponse> ServingEngine::Submit(const ServeRequest& request) {
  MSOPDS_CHECK_GT(request.k, 0);
  Pending pending;
  pending.request = request;
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<ServeResponse> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    MSOPDS_CHECK(!stopping_) << "Submit() on a stopped ServingEngine";
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

ServeResponse ServingEngine::ServeSync(const ServeRequest& request) {
  return Submit(request).get();
}

void ServingEngine::BatcherLoop() {
  const auto max_wait = std::chrono::microseconds(options_.max_wait_us);
  std::unique_lock<std::mutex> lock(queue_mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Micro-batch window: flush when full, when the oldest request has
    // dwelt max_wait_us, or on shutdown.
    const auto flush_at = queue_.front().enqueued + max_wait;
    while (!stopping_ &&
           static_cast<int>(queue_.size()) < options_.max_batch_size &&
           queue_cv_.wait_until(lock, flush_at, [this] {
             return stopping_ || static_cast<int>(queue_.size()) >=
                                     options_.max_batch_size;
           })) {
    }
    std::vector<Pending> batch;
    const int take = std::min<int>(static_cast<int>(queue_.size()),
                                   options_.max_batch_size);
    batch.reserve(static_cast<size_t>(take));
    for (int i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    ScoreBatch(std::move(batch));
    lock.lock();
  }
}

void ServingEngine::ScoreBatch(std::vector<Pending> batch) {
  const auto picked_up = std::chrono::steady_clock::now();
  const std::shared_ptr<const ModelSnapshot> snapshot = snapshot_.Load();

  // Group by (k, exclude_seen) so each group is one kernel call; the
  // common case (uniform requests) is a single TopKForUsers pass.
  std::map<std::pair<int, bool>, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    groups[{batch[i].request.k, batch[i].request.exclude_seen}].push_back(i);
  }

  std::vector<ServeResponse> responses(batch.size());
  if (snapshot != nullptr) {
    for (const auto& [key, members] : groups) {
      TopKOptions options;
      options.k = key.first;
      options.exclude_seen = key.second;
      std::vector<int64_t> users;
      users.reserve(members.size());
      for (size_t i : members) users.push_back(batch[i].request.user);
      const TopKResult result = TopKForUsers(*snapshot, users, options);
      for (size_t m = 0; m < members.size(); ++m) {
        ServeResponse& response = responses[members[m]];
        const int64_t count = result.counts[m];
        const auto local = static_cast<int64_t>(m);
        response.items.assign(result.ItemsForUser(local),
                              result.ItemsForUser(local) + count);
        response.scores.assign(result.ScoresForUser(local),
                               result.ScoresForUser(local) + count);
        response.snapshot_version = snapshot->version();
      }
    }
  }

  const auto done = std::chrono::steady_clock::now();
  int64_t misses = 0;
  std::vector<int64_t> latencies;
  latencies.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ServeResponse& response = responses[i];
    response.queue_us = MicrosSince(batch[i].enqueued, picked_up);
    response.total_us = MicrosSince(batch[i].enqueued, done);
    response.deadline_missed =
        options_.deadline_us > 0 && response.total_us > options_.deadline_us;
    if (response.deadline_missed) ++misses;
    latencies.push_back(response.total_us);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    requests_ += static_cast<int64_t>(batch.size());
    batches_ += 1;
    deadline_misses_ += misses;
    latencies_us_.insert(latencies_us_.end(), latencies.begin(),
                         latencies.end());
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }
}

EngineStats ServingEngine::Stats() const {
  EngineStats stats;
  std::vector<int64_t> sorted;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.requests = requests_;
    stats.batches = batches_;
    stats.deadline_misses = deadline_misses_;
    sorted = latencies_us_;
  }
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  stats.mean_batch_size =
      stats.batches > 0 ? static_cast<double>(stats.requests) /
                              static_cast<double>(stats.batches)
                        : 0.0;
  std::sort(sorted.begin(), sorted.end());
  stats.p50_us = PercentileUs(sorted, 0.50);
  stats.p95_us = PercentileUs(sorted, 0.95);
  stats.p99_us = PercentileUs(sorted, 0.99);
  stats.max_us = sorted.empty() ? 0 : sorted.back();
  return stats;
}

void ServingEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ && !batcher_.joinable()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

}  // namespace serve
}  // namespace msopds
