#ifndef MSOPDS_SERVE_ENGINE_H_
#define MSOPDS_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/model_snapshot.h"
#include "serve/topk.h"

namespace msopds {
namespace serve {

struct EngineOptions {
  /// Micro-batch flush threshold: the batcher drains up to this many
  /// requests per scoring pass.
  int max_batch_size = 64;
  /// Maximum time the oldest queued request waits for the batch to fill
  /// before a partial batch is flushed.
  int64_t max_wait_us = 200;
  /// Per-request latency SLO; responses whose enqueue-to-completion time
  /// exceeds it are flagged (and counted in EngineStats). 0 disables.
  int64_t deadline_us = 0;
};

struct ServeRequest {
  int64_t user = 0;
  int k = 10;
  bool exclude_seen = true;
};

struct ServeResponse {
  /// Best-first recommendation list (≤ k entries; empty when no snapshot
  /// was published yet).
  std::vector<int64_t> items;
  std::vector<double> scores;
  /// Version of the snapshot that served the request (0 = none).
  uint64_t snapshot_version = 0;
  /// Enqueue → batch pickup.
  int64_t queue_us = 0;
  /// Enqueue → response ready.
  int64_t total_us = 0;
  bool deadline_missed = false;
};

struct EngineStats {
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t deadline_misses = 0;
  /// Snapshots published (hot-swaps) since construction.
  int64_t publishes = 0;
  double mean_batch_size = 0.0;
  /// Percentiles of enqueue-to-completion latency, microseconds.
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
};

/// Atomic shared_ptr slot for the active snapshot: a micro critical
/// section (lock = exchange-acquire on a bool, unlock = release store)
/// around a pointer copy/swap. Semantically this is
/// std::atomic<std::shared_ptr<T>>, deliberately hand-rolled: libstdc++'s
/// _Sp_atomic unlocks the *reader's* critical section with relaxed
/// ordering (shared_ptr_atomic.h, load() ends in
/// unlock(memory_order_relaxed)), so the reader's plain read of the
/// pointer field has no release edge toward a later writer's plain write
/// — formally a data race, and ThreadSanitizer reports it as one. Here
/// both sides release on unlock, making the protocol verifiable: the
/// serve suite runs under TSan in tools/check.sh. Hold times are a
/// shared_ptr copy (one refcount increment), so a publish can delay a
/// reader by nanoseconds but never blocks it behind scoring work.
class SnapshotSlot {
 public:
  /// Acquire-copies the current snapshot (may be null).
  std::shared_ptr<const ModelSnapshot> Load() const {
    Lock();
    std::shared_ptr<const ModelSnapshot> copy = value_;
    Unlock();
    return copy;
  }

  /// Installs `next`, returning the previously active snapshot.
  std::shared_ptr<const ModelSnapshot> Exchange(
      std::shared_ptr<const ModelSnapshot> next) {
    Lock();
    value_.swap(next);
    Unlock();
    return next;
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<const ModelSnapshot> value_;
};

/// Online top-K serving engine: a micro-batching request queue in front
/// of the blocked top-K kernel, reading from a hot-swappable immutable
/// snapshot.
///
/// Hot swap (the repo's first reader/writer-concurrent code path): the
/// active snapshot lives in a SnapshotSlot (an atomic shared_ptr with
/// TSan-verifiable acquire/release ordering — see above). Publish()
/// exchanges the new pointer in; the batcher loads it at the start of
/// every scoring pass, so a batch sees a fully-constructed snapshot or
/// the previous one — never a partial write — and requests already being
/// scored finish against the snapshot they started with. The engine
/// additionally pins the previously active snapshot (double buffering)
/// so the common retrain→republish cycle never pays a teardown on the
/// publish path; the old-old snapshot is released on the *next* publish,
/// by which time no batch can reference it (Publish happens-after every
/// batch that loaded it).
///
/// Determinism: scoring runs through serve/topk on the global thread
/// pool, so a response's item list is bit-identical to the offline
/// reference (recsys/metrics.h TopKItems) for the same snapshot at any
/// thread count; only latency varies.
class ServingEngine {
 public:
  explicit ServingEngine(const EngineOptions& options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Atomically replaces the active snapshot; never blocks readers.
  void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The currently active snapshot (nullptr before the first Publish).
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const;

  /// Enqueues a request; the future resolves once its micro-batch is
  /// scored. Requests submitted before any Publish() resolve with an
  /// empty list and snapshot_version 0.
  std::future<ServeResponse> Submit(const ServeRequest& request);

  /// Submit + wait.
  ServeResponse ServeSync(const ServeRequest& request);

  /// Aggregate counters and latency percentiles so far.
  EngineStats Stats() const;

  /// Drains the queue and joins the batcher. Called by the destructor;
  /// idempotent. Submit() after Stop() CHECK-fails.
  void Stop();

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void BatcherLoop();
  void ScoreBatch(std::vector<Pending> batch);

  const EngineOptions options_;

  SnapshotSlot snapshot_;
  // Double buffer: pins the previously active snapshot until the next
  // publish (see class comment). Only Publish() touches it.
  std::shared_ptr<const ModelSnapshot> retired_;
  std::mutex publish_mu_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  int64_t requests_ = 0;
  int64_t batches_ = 0;
  int64_t deadline_misses_ = 0;
  std::atomic<int64_t> publishes_{0};
  std::vector<int64_t> latencies_us_;

  std::thread batcher_;
};

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_ENGINE_H_
