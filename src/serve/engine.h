#ifndef MSOPDS_SERVE_ENGINE_H_
#define MSOPDS_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/degraded.h"
#include "serve/model_snapshot.h"
#include "serve/topk.h"
#include "util/sync.h"

namespace msopds {
namespace serve {

struct EngineOptions {
  /// Micro-batch flush threshold: the batcher drains up to this many
  /// requests per scoring pass.
  int max_batch_size = 64;
  /// Maximum time the oldest queued request waits for the batch to fill
  /// before a partial batch is flushed.
  int64_t max_wait_us = 200;
  /// Default per-request latency budget, ENFORCED: a request whose
  /// budget has already passed at batch pickup is shed with
  /// kDeadlineExceeded before any scoring work is spent on it (a served
  /// response can still finish late and is then only flagged). 0
  /// disables; ServeRequest::deadline_us overrides per request.
  int64_t deadline_us = 0;
  /// Pending-queue cap: Submit() on a full queue resolves immediately
  /// with kResourceExhausted instead of growing the queue without bound.
  /// 0 = unbounded (legacy behavior).
  int64_t max_queue = 0;
  /// Queue depth at/above which admitted requests are served from the
  /// popularity fallback instead of the full scoring path (see
  /// serve/degraded.h). 0 = disabled.
  int64_t degrade_queue_depth = 0;
  /// Cost cap per scoring batch, in units of requested k (each request
  /// costs max(1, k)): the batcher closes a batch early rather than let
  /// one huge-K request ride with (and starve) a full complement of
  /// small ones. A single request always flushes regardless of cost.
  /// 0 = disabled (batches bounded by max_batch_size only).
  int64_t max_batch_cost = 0;
};

struct EngineStats {
  int64_t requests = 0;
  int64_t batches = 0;
  int64_t deadline_misses = 0;
  /// Snapshots published (hot-swaps) since construction.
  int64_t publishes = 0;
  /// Publish() calls that failed (fault-injected) and rolled back.
  int64_t publish_failures = 0;
  /// Admission/overload counters. requests = admitted + rejected +
  /// cancelled-at-submit; admitted = scored (full or degraded) + shed +
  /// cancelled-after-admission.
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t shed = 0;
  int64_t degraded = 0;
  int64_t cancelled = 0;
  /// High-water mark of the pending queue depth.
  int64_t max_queue_depth = 0;
  double mean_batch_size = 0.0;
  /// Percentiles of enqueue-to-completion latency, microseconds, over
  /// served (kOk) responses only — rejected/shed/cancelled requests
  /// resolve fast by construction and would mask queueing latency.
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
};

/// Atomic shared_ptr slot: a micro critical section (lock =
/// exchange-acquire on a bool, unlock = release store) around a pointer
/// copy/swap. Semantically this is std::atomic<std::shared_ptr<T>>,
/// deliberately hand-rolled: libstdc++'s _Sp_atomic unlocks the
/// *reader's* critical section with relaxed ordering
/// (shared_ptr_atomic.h, load() ends in unlock(memory_order_relaxed)),
/// so the reader's plain read of the pointer field has no release edge
/// toward a later writer's plain write — formally a data race, and
/// ThreadSanitizer reports it as one. Here both sides release on unlock,
/// making the protocol verifiable: the serve suite runs under TSan in
/// tools/check.sh. Hold times are a shared_ptr copy (one refcount
/// increment), so a publish can delay a reader by nanoseconds but never
/// blocks it behind scoring work.
template <typename T>
class AtomicPtrSlot {
 public:
  /// Acquire-copies the current pointer (may be null).
  std::shared_ptr<T> Load() const {
    Lock();
    std::shared_ptr<T> copy = value_;
    Unlock();
    return copy;
  }

  /// Installs `next`, returning the previously active pointer.
  std::shared_ptr<T> Exchange(std::shared_ptr<T> next) {
    Lock();
    value_.swap(next);
    Unlock();
    return next;
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> value_;
};

/// The active-snapshot slot (see AtomicPtrSlot).
using SnapshotSlot = AtomicPtrSlot<const ModelSnapshot>;

/// Online top-K serving engine: a micro-batching request queue in front
/// of the blocked top-K kernel, reading from a hot-swappable immutable
/// snapshot, with admission control and graceful degradation so the
/// engine keeps answering — bounded queue, bounded latency — while the
/// operator retrains and attackers poison (the paper's multiplayer
/// setting assumes the victim serves throughout).
///
/// Hot swap: the active snapshot lives in a SnapshotSlot (an atomic
/// shared_ptr with TSan-verifiable acquire/release ordering — see
/// above). Publish() exchanges the new pointer in; the batcher loads it
/// at the start of every scoring pass, so a batch sees a
/// fully-constructed snapshot or the previous one — never a partial
/// write — and requests already being scored finish against the snapshot
/// they started with. The engine additionally pins the previously active
/// snapshot (double buffering) so the common retrain→republish cycle
/// never pays a teardown on the publish path; the old-old snapshot is
/// released on the *next* publish, by which time no batch can reference
/// it. A publish that fails (fault-injected) rolls back: the previous
/// snapshot and popularity fallback stay live untouched.
///
/// Overload: Submit() runs admission control (serve/admission.h) — a
/// full queue rejects with kResourceExhausted, a saturated queue routes
/// to the popularity fallback (serve/degraded.h), and requests whose
/// deadline passed while queued are shed at batch pickup instead of
/// scored. Every promise is resolved: shutdown drains unscored requests
/// with kCancelled, and Submit() during/after Stop() resolves
/// immediately with kCancelled rather than CHECK-failing.
///
/// Determinism: full-fidelity scoring runs through serve/topk on the
/// global thread pool, so a response's item list is bit-identical to the
/// offline reference (recsys/metrics.h TopKItems) for the same snapshot
/// at any thread count; degraded responses are a pure function of the
/// snapshot's seen CSR and carry served_degraded so the guarantee stays
/// scoped to full-fidelity responses.
class ServingEngine {
 public:
  explicit ServingEngine(const EngineOptions& options = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Atomically replaces the active snapshot (and rebuilds the
  /// popularity fallback from it); never blocks readers. Returns false —
  /// keeping the previous snapshot live — when the publish fails (the
  /// chaos harness injects failures here; see util/fault.h
  /// kSnapshotPublish).
  bool Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The currently active snapshot (nullptr before the first Publish).
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const;

  /// Enqueues a request; the future resolves once its micro-batch is
  /// scored, or immediately with kResourceExhausted (queue full) /
  /// kCancelled (engine stopped). Requests admitted before any Publish()
  /// resolve degraded with an empty list and snapshot_version 0.
  std::future<ServeResponse> Submit(const ServeRequest& request);

  /// Submit + wait. The engine resolves every promise (reject, shed,
  /// cancel, or serve), so this wait is bounded by the batcher's
  /// progress, not by the caller's luck.
  ServeResponse ServeSync(const ServeRequest& request);

  /// Aggregate counters and latency percentiles so far.
  EngineStats Stats() const;

  /// Stops the batcher: requests already queued are scored (graceful
  /// drain), anything the batcher cannot pick up — including requests
  /// that race past a completed drain — resolves with kCancelled, never
  /// a dropped promise. Called by the destructor; idempotent.
  void Stop();

 private:
  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Admission routed this request to the degraded path (saturation).
    bool degraded_hint = false;
  };

  void BatcherLoop() MSOPDS_EXCLUDES(queue_mu_);
  void ScoreBatch(std::vector<Pending> batch)
      MSOPDS_EXCLUDES(queue_mu_, stats_mu_);
  /// Resolves `pending` with an immediate non-scored response.
  void ResolveNow(Pending* pending, ServeStatus status);

  const EngineOptions options_;

  SnapshotSlot snapshot_;    // determinism-lint: unguarded(internally synchronized slot)
  /// Popularity fallback derived from the active snapshot (same slot
  /// protocol; rebuilt on every successful publish).
  AtomicPtrSlot<const PopularityCatalog> fallback_;  // determinism-lint: unguarded(internally synchronized slot)
  // Double buffer: pins the previously active snapshot until the next
  // publish (see class comment). Only Publish() touches it.
  std::shared_ptr<const ModelSnapshot> retired_ MSOPDS_GUARDED_BY(publish_mu_);
  Mutex publish_mu_;

  mutable Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<Pending> queue_ MSOPDS_GUARDED_BY(queue_mu_);
  AdmissionController admission_ MSOPDS_GUARDED_BY(queue_mu_);
  bool stopping_ MSOPDS_GUARDED_BY(queue_mu_) = false;

  mutable Mutex stats_mu_;
  int64_t requests_ MSOPDS_GUARDED_BY(stats_mu_) = 0;
  int64_t batches_ MSOPDS_GUARDED_BY(stats_mu_) = 0;
  int64_t batched_requests_ MSOPDS_GUARDED_BY(stats_mu_) = 0;
  int64_t deadline_misses_ MSOPDS_GUARDED_BY(stats_mu_) = 0;
  int64_t shed_ MSOPDS_GUARDED_BY(stats_mu_) = 0;
  int64_t degraded_ MSOPDS_GUARDED_BY(stats_mu_) = 0;
  int64_t cancelled_ MSOPDS_GUARDED_BY(stats_mu_) = 0;
  std::atomic<int64_t> publishes_{0};
  std::atomic<int64_t> publish_failures_{0};
  std::vector<int64_t> latencies_us_ MSOPDS_GUARDED_BY(stats_mu_);

  // Joined through a queue_mu_ handshake: Stop() swaps the handle out
  // under queue_mu_ and joins its private copy, so concurrent Stop()
  // calls never race on join() (latent discipline finding; see
  // engine_test.ConcurrentStopIsSafe).
  std::thread batcher_ MSOPDS_GUARDED_BY(queue_mu_);
};

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_ENGINE_H_
