#ifndef MSOPDS_SERVE_MODEL_SNAPSHOT_H_
#define MSOPDS_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "recsys/rating_model.h"
#include "serve/quantize.h"
#include "tensor/simd.h"
#include "util/logging.h"

namespace msopds {
namespace serve {

/// CSR of each user's already-rated ("seen") items, used by the top-K
/// scorer to exclude items the user has interacted with. Item ids are
/// sorted ascending within each row, so exclusion during an ascending
/// catalog scan is a single monotone cursor per user.
struct SeenItemsCsr {
  std::vector<int64_t> offsets;  // [num_users + 1]
  std::vector<int64_t> items;    // sorted ascending per row

  static SeenItemsCsr FromRatings(int64_t num_users, int64_t num_items,
                                  const std::vector<Rating>& ratings);

  int64_t num_users() const {
    return static_cast<int64_t>(offsets.size()) - 1;
  }

  /// Seen-item count of `user`.
  int64_t RowSize(int64_t user) const {
    return offsets[static_cast<size_t>(user) + 1] -
           offsets[static_cast<size_t>(user)];
  }

  /// Pointer to the first seen item of `user` (end = begin + RowSize).
  const int64_t* Row(int64_t user) const {
    return items.data() + offsets[static_cast<size_t>(user)];
  }

  /// Binary-search membership test.
  bool Contains(int64_t user, int64_t item) const;
};

/// Identity attached to a published snapshot.
struct SnapshotOptions {
  /// Monotonic publish version (the engine reports it per response).
  uint64_t version = 0;
  /// Free-form provenance tag, e.g. "mf", "lightgcn", "het_recsys",
  /// "het_recsys+poisoned".
  std::string source;
  /// Storage precision of the factor blocks. Non-kFp64 exports quantize
  /// once at FromModel time (serve/quantize.h).
  SnapshotPrecision precision = SnapshotPrecision::kFp64;
};

/// Immutable, tape-free, arena-detached export of a trained rating model.
///
/// FromModel() deep-copies the model's ServingParams into plain
/// std::vector<double> blocks: the snapshot never aliases TensorStorage,
/// so it stays valid after the training-side ArenaRegion exits, after the
/// model is destroyed, and after the arena recycles (and poisons) the
/// training buffers. All state is set once at build time and never
/// mutated, so concurrent readers need no synchronization beyond the
/// pointer hand-off (serve/engine.h).
///
/// Scoring follows the ServingParams recipe exactly — simd::Dot over the
/// latent dimension (the same fixed 4-lane reduction PairDot's RowSum
/// uses offline, DESIGN.md §14), then `+ user_bias`, `+ item_bias` (each
/// skipped when the model has none), then `+ offset` — which makes
/// Score() bit-identical to the model's PredictPairs.
///
/// A snapshot may also hold its factor blocks quantized (kFp16 / kInt8,
/// serve/quantize.h); the width-matched kernel then replaces simd::Dot:
///   kFp16: simd::DotF16 over the binary16 rows (exact widening, same
///          4-lane schedule — the only deviation from kFp64 is the
///          storage rounding applied once at quantize time);
///   kInt8: ((double)simd::DotI8 * user_scale) * item_scale — the dot is
///          exact integer arithmetic and the two scale multiplies use a
///          fixed association, so this too is bit-identical across
///          threads, SIMD on/off, and runs *within* the int8 snapshot.
/// Biases and offset stay binary64 in every mode. Cross-precision
/// fidelity is tolerance-bounded, never bit-scoped (DESIGN.md §15).
class ModelSnapshot {
 public:
  /// Exports `model` against `dataset` (which provides the seen-item CSR;
  /// its user/item counts must match the exported embedding tables).
  static std::shared_ptr<const ModelSnapshot> FromModel(
      RatingModel* model, const Dataset& dataset,
      const SnapshotOptions& options = {});

  /// Raw constructor for tests and custom exporters. Bias vectors may be
  /// empty (models without that term); non-empty sizes must match.
  ModelSnapshot(int64_t num_users, int64_t num_items, int64_t dim,
                std::vector<double> user_factors,
                std::vector<double> item_factors,
                std::vector<double> user_bias, std::vector<double> item_bias,
                double offset, SeenItemsCsr seen,
                const SnapshotOptions& options);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return dim_; }
  uint64_t version() const { return version_; }
  const std::string& source() const { return source_; }
  const SeenItemsCsr& seen() const { return seen_; }
  double offset() const { return offset_; }
  bool has_user_bias() const { return !user_bias_.empty(); }
  bool has_item_bias() const { return !item_bias_.empty(); }
  SnapshotPrecision precision() const { return precision_; }

  /// Full-precision row accessors — kFp64 snapshots only (quantized
  /// snapshots do not hold binary64 factor blocks).
  const double* UserRow(int64_t user) const {
    MSOPDS_DCHECK_GE(user, 0);
    MSOPDS_DCHECK_LT(user, num_users_);
    MSOPDS_DCHECK(precision_ == SnapshotPrecision::kFp64);
    return user_factors_.data() + user * dim_;
  }

  const double* ItemRow(int64_t item) const {
    MSOPDS_DCHECK_GE(item, 0);
    MSOPDS_DCHECK_LT(item, num_items_);
    MSOPDS_DCHECK(precision_ == SnapshotPrecision::kFp64);
    return item_factors_.data() + item * dim_;
  }

  /// Precision-erased handle to one user's factor row: exactly one of
  /// the pointers is set (matching precision()), and `scale` carries the
  /// user's int8 dequantization scale (0.0 otherwise). The tiled top-K
  /// kernel resolves the handle once per user and scores whole item
  /// tiles through it.
  struct UserRef {
    const double* f64 = nullptr;
    const uint16_t* f16 = nullptr;
    const int8_t* q8 = nullptr;
    double scale = 0.0;
  };

  UserRef UserRefFor(int64_t user) const {
    MSOPDS_DCHECK_GE(user, 0);
    MSOPDS_DCHECK_LT(user, num_users_);
    UserRef ref;
    switch (precision_) {
      case SnapshotPrecision::kFp64:
        ref.f64 = user_factors_.data() + user * dim_;
        break;
      case SnapshotPrecision::kFp16:
        ref.f16 = user_half_.data() + user * dim_;
        break;
      case SnapshotPrecision::kInt8:
        ref.q8 = user_q8_.data() + user * dim_;
        ref.scale =
            static_cast<double>(user_scale_[static_cast<size_t>(user)]);
        break;
    }
    return ref;
  }

  /// Predicted rating of (user, item). For kFp64 snapshots this is
  /// bit-identical to the exported model's PredictPairs (see class
  /// comment); quantized snapshots score through the width-matched
  /// kernel and are bit-stable within their own precision.
  double Score(int64_t user, int64_t item) const {
    return ScoreRef(UserRefFor(user), user, item);
  }

  /// Score() with the user row already resolved — the tiled top-K kernel
  /// keeps the handle across an item tile. The precision switch is one
  /// perfectly-predicted branch per score; the dot itself dominates.
  double ScoreRef(const UserRef& ref, int64_t user, int64_t item) const {
    MSOPDS_DCHECK_GE(item, 0);
    MSOPDS_DCHECK_LT(item, num_items_);
    double s = 0.0;
    switch (precision_) {
      case SnapshotPrecision::kFp64:
        s = simd::Dot(ref.f64, item_factors_.data() + item * dim_, dim_);
        break;
      case SnapshotPrecision::kFp16:
        s = simd::DotF16(ref.f16, item_half_.data() + item * dim_, dim_);
        break;
      case SnapshotPrecision::kInt8:
        // Fixed association: (dot * user_scale) * item_scale. The int
        // dot is exact; the two multiplies are the only rounding steps.
        s = (static_cast<double>(
                 simd::DotI8(ref.q8, item_q8_.data() + item * dim_, dim_)) *
             ref.scale) *
            static_cast<double>(item_scale_[static_cast<size_t>(item)]);
        break;
    }
    if (!user_bias_.empty()) s += user_bias_[static_cast<size_t>(user)];
    if (!item_bias_.empty()) s += item_bias_[static_cast<size_t>(item)];
    return s + offset_;
  }

  /// Score() with the user row already resolved — legacy kFp64-only
  /// entry point kept for exporters/tests that walk raw rows.
  double ScoreRow(const double* user_row, int64_t user, int64_t item) const {
    const double* item_row = ItemRow(item);
    double s = simd::Dot(user_row, item_row, dim_);
    if (!user_bias_.empty()) s += user_bias_[static_cast<size_t>(user)];
    if (!item_bias_.empty()) s += item_bias_[static_cast<size_t>(item)];
    return s + offset_;
  }

  /// Payload bytes held by this snapshot (factor blocks at their stored
  /// precision + int8 scales + biases + CSR), for capacity accounting.
  int64_t PayloadBytes() const;

  /// Bytes of the factor blocks alone (including int8 per-row scales) —
  /// the part quantization shrinks; BENCH_quant.json reports this per
  /// user row.
  int64_t FactorPayloadBytes() const;

 private:
  friend std::shared_ptr<const ModelSnapshot> QuantizeSnapshot(
      const ModelSnapshot& source, SnapshotPrecision target);

  /// Quantized snapshots are assembled field-by-field by
  /// QuantizeSnapshot; the public constructor stays kFp64-only.
  ModelSnapshot() = default;

  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  // Detached flat row-major blocks — never TensorStorage. Exactly one
  // factor representation is populated, matching precision_.
  std::vector<double> user_factors_;  // [U * D] (kFp64)
  std::vector<double> item_factors_;  // [I * D] (kFp64)
  std::vector<uint16_t> user_half_;   // [U * D] (kFp16, binary16 bits)
  std::vector<uint16_t> item_half_;   // [I * D] (kFp16)
  std::vector<int8_t> user_q8_;       // [U * D] (kInt8 codes)
  std::vector<int8_t> item_q8_;       // [I * D] (kInt8)
  std::vector<float> user_scale_;     // [U] per-row scales (kInt8)
  std::vector<float> item_scale_;     // [I] (kInt8)
  std::vector<double> user_bias_;     // [U] or empty (always binary64)
  std::vector<double> item_bias_;     // [I] or empty
  double offset_ = 0.0;
  SnapshotPrecision precision_ = SnapshotPrecision::kFp64;
  SeenItemsCsr seen_;
  uint64_t version_ = 0;
  std::string source_;
};

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_MODEL_SNAPSHOT_H_
