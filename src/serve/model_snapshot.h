#ifndef MSOPDS_SERVE_MODEL_SNAPSHOT_H_
#define MSOPDS_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "recsys/rating_model.h"
#include "tensor/simd.h"
#include "util/logging.h"

namespace msopds {
namespace serve {

/// CSR of each user's already-rated ("seen") items, used by the top-K
/// scorer to exclude items the user has interacted with. Item ids are
/// sorted ascending within each row, so exclusion during an ascending
/// catalog scan is a single monotone cursor per user.
struct SeenItemsCsr {
  std::vector<int64_t> offsets;  // [num_users + 1]
  std::vector<int64_t> items;    // sorted ascending per row

  static SeenItemsCsr FromRatings(int64_t num_users, int64_t num_items,
                                  const std::vector<Rating>& ratings);

  int64_t num_users() const {
    return static_cast<int64_t>(offsets.size()) - 1;
  }

  /// Seen-item count of `user`.
  int64_t RowSize(int64_t user) const {
    return offsets[static_cast<size_t>(user) + 1] -
           offsets[static_cast<size_t>(user)];
  }

  /// Pointer to the first seen item of `user` (end = begin + RowSize).
  const int64_t* Row(int64_t user) const {
    return items.data() + offsets[static_cast<size_t>(user)];
  }

  /// Binary-search membership test.
  bool Contains(int64_t user, int64_t item) const;
};

/// Identity attached to a published snapshot.
struct SnapshotOptions {
  /// Monotonic publish version (the engine reports it per response).
  uint64_t version = 0;
  /// Free-form provenance tag, e.g. "mf", "lightgcn", "het_recsys",
  /// "het_recsys+poisoned".
  std::string source;
};

/// Immutable, tape-free, arena-detached export of a trained rating model.
///
/// FromModel() deep-copies the model's ServingParams into plain
/// std::vector<double> blocks: the snapshot never aliases TensorStorage,
/// so it stays valid after the training-side ArenaRegion exits, after the
/// model is destroyed, and after the arena recycles (and poisons) the
/// training buffers. All state is set once at build time and never
/// mutated, so concurrent readers need no synchronization beyond the
/// pointer hand-off (serve/engine.h).
///
/// Scoring follows the ServingParams recipe exactly — simd::Dot over the
/// latent dimension (the same fixed 4-lane reduction PairDot's RowSum
/// uses offline, DESIGN.md §14), then `+ user_bias`, `+ item_bias` (each
/// skipped when the model has none), then `+ offset` — which makes
/// Score() bit-identical to the model's PredictPairs.
class ModelSnapshot {
 public:
  /// Exports `model` against `dataset` (which provides the seen-item CSR;
  /// its user/item counts must match the exported embedding tables).
  static std::shared_ptr<const ModelSnapshot> FromModel(
      RatingModel* model, const Dataset& dataset,
      const SnapshotOptions& options = {});

  /// Raw constructor for tests and custom exporters. Bias vectors may be
  /// empty (models without that term); non-empty sizes must match.
  ModelSnapshot(int64_t num_users, int64_t num_items, int64_t dim,
                std::vector<double> user_factors,
                std::vector<double> item_factors,
                std::vector<double> user_bias, std::vector<double> item_bias,
                double offset, SeenItemsCsr seen,
                const SnapshotOptions& options);

  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return dim_; }
  uint64_t version() const { return version_; }
  const std::string& source() const { return source_; }
  const SeenItemsCsr& seen() const { return seen_; }
  double offset() const { return offset_; }
  bool has_user_bias() const { return !user_bias_.empty(); }
  bool has_item_bias() const { return !item_bias_.empty(); }

  const double* UserRow(int64_t user) const {
    MSOPDS_DCHECK_GE(user, 0);
    MSOPDS_DCHECK_LT(user, num_users_);
    return user_factors_.data() + user * dim_;
  }

  const double* ItemRow(int64_t item) const {
    MSOPDS_DCHECK_GE(item, 0);
    MSOPDS_DCHECK_LT(item, num_items_);
    return item_factors_.data() + item * dim_;
  }

  /// Predicted rating of (user, item); bit-identical to the exported
  /// model's PredictPairs (see class comment).
  double Score(int64_t user, int64_t item) const {
    return ScoreRow(UserRow(user), user, item);
  }

  /// Score() with the user row already resolved — the tiled top-K kernel
  /// keeps the row pointer across an item tile.
  double ScoreRow(const double* user_row, int64_t user, int64_t item) const {
    const double* item_row = ItemRow(item);
    double s = simd::Dot(user_row, item_row, dim_);
    if (!user_bias_.empty()) s += user_bias_[static_cast<size_t>(user)];
    if (!item_bias_.empty()) s += item_bias_[static_cast<size_t>(item)];
    return s + offset_;
  }

  /// Payload bytes held by this snapshot (embedding blocks + biases +
  /// CSR), for capacity accounting.
  int64_t PayloadBytes() const;

 private:
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  int64_t dim_ = 0;
  // Detached flat row-major blocks — never TensorStorage.
  std::vector<double> user_factors_;  // [U * D]
  std::vector<double> item_factors_;  // [I * D]
  std::vector<double> user_bias_;     // [U] or empty
  std::vector<double> item_bias_;     // [I] or empty
  double offset_ = 0.0;
  SeenItemsCsr seen_;
  uint64_t version_ = 0;
  std::string source_;
};

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_MODEL_SNAPSHOT_H_
