#include "serve/topk.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace msopds {
namespace serve {
namespace {

// Items per scoring tile: one tile of item rows (kItemTile * dim doubles)
// stays cache-hot while every user of the chunk consumes it. The tile
// size never affects results — selection is order-independent.
constexpr int64_t kItemTile = 256;

// Users per chunk of the fixed grid: each user scans the whole catalog,
// so a handful of users is already enough work per chunk; the grid stays
// a pure function of the request size (determinism contract,
// util/thread_pool.h).
constexpr int64_t kUserGrain = 8;

// Heap comparator: RanksBefore as "less" puts the worst retained
// candidate at the heap root (std::*_heap keep the max at the front).
bool WorstAtFront(const ScoredItem& a, const ScoredItem& b) {
  return RanksBefore(a, b);
}

}  // namespace

int64_t RankWithTiesFavoringCandidate(double candidate_score,
                                      const double* competitor_scores,
                                      int64_t n) {
  int64_t better = 0;
  for (int64_t j = 0; j < n; ++j) {
    if (competitor_scores[j] > candidate_score) ++better;
  }
  return better + 1;
}

TopKSelector::TopKSelector(int k) : k_(k) {
  MSOPDS_CHECK_GT(k, 0);
  heap_.reserve(static_cast<size_t>(k));
}

void TopKSelector::Offer(int64_t item, double score) {
  const ScoredItem candidate{item, score};
  if (static_cast<int>(heap_.size()) < k_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), WorstAtFront);
    return;
  }
  if (!RanksBefore(candidate, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), WorstAtFront);
  heap_.back() = candidate;
  std::push_heap(heap_.begin(), heap_.end(), WorstAtFront);
}

std::vector<ScoredItem> TopKSelector::Take() {
  std::vector<ScoredItem> out = std::move(heap_);
  heap_.clear();
  // The move stole the capacity; re-reserve so a reused selector never
  // reallocates mid-offer-stream.
  heap_.reserve(static_cast<size_t>(k_));
  std::sort(out.begin(), out.end(), RanksBefore);
  return out;
}

std::vector<ScoredItem> SelectTopK(const double* scores, int64_t num_items,
                                   int k, const int64_t* excluded_sorted,
                                   int64_t num_excluded) {
  TopKSelector selector(k);
  int64_t cursor = 0;
  for (int64_t i = 0; i < num_items; ++i) {
    while (cursor < num_excluded && excluded_sorted[cursor] < i) ++cursor;
    if (cursor < num_excluded && excluded_sorted[cursor] == i) continue;
    selector.Offer(i, scores[i]);
  }
  return selector.Take();
}

TopKResult PackTopK(const std::vector<std::vector<ScoredItem>>& per_user,
                    int k) {
  MSOPDS_CHECK_GT(k, 0);
  const int64_t n = static_cast<int64_t>(per_user.size());
  TopKResult result;
  result.k = k;
  result.items.assign(static_cast<size_t>(n * k), -1);
  result.scores.assign(static_cast<size_t>(n * k), 0.0);
  result.counts.assign(static_cast<size_t>(n), 0);
  for (int64_t u = 0; u < n; ++u) {
    const std::vector<ScoredItem>& list = per_user[static_cast<size_t>(u)];
    MSOPDS_CHECK_LE(static_cast<int>(list.size()), k);
    result.counts[static_cast<size_t>(u)] =
        static_cast<int64_t>(list.size());
    for (size_t r = 0; r < list.size(); ++r) {
      result.items[static_cast<size_t>(u * k) + r] = list[r].item;
      result.scores[static_cast<size_t>(u * k) + r] = list[r].score;
    }
  }
  return result;
}

TopKResult TopKForUsers(const ModelSnapshot& snapshot,
                        const std::vector<int64_t>& users,
                        const TopKOptions& options) {
  MSOPDS_CHECK_GT(options.k, 0);
  const int64_t n = static_cast<int64_t>(users.size());
  const int64_t num_items = snapshot.num_items();
  std::vector<std::vector<ScoredItem>> per_user(static_cast<size_t>(n));

  ThreadPool::Global().ParallelFor(
      n, kUserGrain, [&](int64_t begin, int64_t end, int64_t) {
        const int64_t width = end - begin;
        std::vector<TopKSelector> selectors;
        selectors.reserve(static_cast<size_t>(width));
        std::vector<ModelSnapshot::UserRef> rows(static_cast<size_t>(width));
        std::vector<const int64_t*> seen(static_cast<size_t>(width), nullptr);
        std::vector<int64_t> seen_size(static_cast<size_t>(width), 0);
        std::vector<int64_t> seen_cursor(static_cast<size_t>(width), 0);
        for (int64_t a = begin; a < end; ++a) {
          const int64_t user = users[static_cast<size_t>(a)];
          MSOPDS_CHECK_GE(user, 0);
          MSOPDS_CHECK_LT(user, snapshot.num_users());
          const int64_t local = a - begin;
          selectors.emplace_back(options.k);
          rows[static_cast<size_t>(local)] = snapshot.UserRefFor(user);
          if (options.exclude_seen) {
            seen[static_cast<size_t>(local)] = snapshot.seen().Row(user);
            seen_size[static_cast<size_t>(local)] =
                snapshot.seen().RowSize(user);
          }
        }
        // Tile the catalog so a tile's item rows are consumed by every
        // user of the chunk while still cache-resident.
        for (int64_t tile = 0; tile < num_items; tile += kItemTile) {
          const int64_t tile_end = std::min(tile + kItemTile, num_items);
          for (int64_t local = 0; local < width; ++local) {
            const int64_t user = users[static_cast<size_t>(begin + local)];
            const ModelSnapshot::UserRef& row =
                rows[static_cast<size_t>(local)];
            const int64_t* excluded = seen[static_cast<size_t>(local)];
            const int64_t excluded_size =
                seen_size[static_cast<size_t>(local)];
            int64_t& cursor = seen_cursor[static_cast<size_t>(local)];
            TopKSelector& selector = selectors[static_cast<size_t>(local)];
            for (int64_t i = tile; i < tile_end; ++i) {
              while (cursor < excluded_size && excluded[cursor] < i) ++cursor;
              if (cursor < excluded_size && excluded[cursor] == i) continue;
              selector.Offer(i, snapshot.ScoreRef(row, user, i));
            }
          }
        }
        for (int64_t local = 0; local < width; ++local) {
          per_user[static_cast<size_t>(begin + local)] =
              selectors[static_cast<size_t>(local)].Take();
        }
      });

  return PackTopK(per_user, options.k);
}

}  // namespace serve
}  // namespace msopds
