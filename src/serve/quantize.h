#ifndef MSOPDS_SERVE_QUANTIZE_H_
#define MSOPDS_SERVE_QUANTIZE_H_

// Quantized snapshot export (DESIGN.md §15).
//
// A published ModelSnapshot can carry its factor blocks at one of three
// storage precisions:
//
//   kFp64  — the full-precision export (the repo's models train and
//            serve in IEEE binary64 end-to-end, so "full precision"
//            here is 8 bytes/element, stricter than the fp32 baseline
//            the quantization literature usually compares against);
//   kFp16  — IEEE binary16 storage, widened exactly to binary64 inside
//            the scoring kernel (4× smaller factors than kFp64);
//   kInt8  — per-row symmetric int8 with one binary32 scale per row
//            (scale = maxabs/127, value ≈ q * scale), ~8× smaller.
//
// Biases and the global offset always stay binary64: they are O(U + I)
// against the O((U + I) * D) factor blocks, and keeping them exact means
// quantization error is confined to the dot product.
//
// Quantization happens once, at export/publish time (QuantizeSnapshot);
// the serve hot path never converts storage, it just dispatches to the
// width-matched kernel (simd::Dot / simd::DotF16 / simd::DotI8).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace msopds {
namespace serve {

class ModelSnapshot;

/// Storage precision of a snapshot's factor blocks.
enum class SnapshotPrecision {
  kFp64 = 0,
  kFp16 = 1,
  kInt8 = 2,
};

const char* SnapshotPrecisionName(SnapshotPrecision precision);

/// Parses "fp64" / "fp16" / "int8" (as used by bench flags). Returns
/// false and leaves `*out` untouched on anything else.
bool ParseSnapshotPrecision(const std::string& text, SnapshotPrecision* out);

/// Round-to-nearest-even conversion of a binary64 value to an IEEE
/// binary16 bit pattern (via the exact binary64 → binary32 → binary16
/// path; overflow saturates to ±inf, NaN stays NaN). The inverse exact
/// widening is simd::HalfToDouble.
uint16_t DoubleToHalf(double value);

/// Converts `count` binary64 elements to binary16 bit patterns.
void QuantizeRowsHalf(const double* values, int64_t count,
                      std::vector<uint16_t>* out);

/// Per-row symmetric int8 quantization of a row-major [num_rows × dim]
/// block: scale[r] = maxabs(row r) / 127 stored in binary32, and
/// q = clamp(round(value / scale), -127, 127). All-zero (or non-finite
/// maxabs) rows get scale 0 and all-zero codes, so they dequantize to
/// exact zeros.
void QuantizeRowsInt8(const double* rows, int64_t num_rows, int64_t dim,
                      std::vector<int8_t>* values,
                      std::vector<float>* scales);

/// Re-exports `source` (which must be a kFp64 snapshot) at `target`
/// precision. Factor blocks are quantized once here; biases, offset,
/// seen-CSR, version, and source tag are copied unchanged. kFp64 target
/// returns a plain deep copy.
std::shared_ptr<const ModelSnapshot> QuantizeSnapshot(
    const ModelSnapshot& source, SnapshotPrecision target);

}  // namespace serve
}  // namespace msopds

#endif  // MSOPDS_SERVE_QUANTIZE_H_
