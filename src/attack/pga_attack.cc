#include "attack/pga_attack.h"

#include <cmath>

#include "attack/baselines.h"
#include "util/logging.h"

namespace msopds {

PgaAttack::PgaAttack(UnrolledMfOptions options) : options_(options) {}

PoisonPlan PgaAttack::Execute(Dataset* world, const Demographics& demo,
                              const AttackBudget& budget, Rng* rng) {
  const int64_t num_real_users = world->num_users;
  auto [fakes, plan] = InjectFakeUsers(world, demo, budget);

  // Fixed random filler set per fake user.
  std::vector<std::pair<int64_t, int64_t>> fake_pairs;
  for (int64_t fake : fakes) {
    const std::vector<int64_t> fillers = rng->SampleWithoutReplacement(
        world->num_items,
        std::min<int64_t>(budget.filler_items_per_fake, world->num_items));
    for (int64_t item : fillers) {
      if (item == demo.target_item) continue;
      fake_pairs.emplace_back(fake, item);
    }
  }
  if (fake_pairs.empty()) {
    plan.ApplyTo(world);
    return plan;
  }

  // Initial values from the fitted rating distribution.
  const RatingDistribution dist = FitRatingDistribution(*world);
  Tensor init({static_cast<int64_t>(fake_pairs.size())});
  for (int64_t i = 0; i < init.size(); ++i)
    init.at(i) = SampleRating(dist, rng);

  const Tensor optimized = OptimizeFakeRatings(
      *world, demo, fake_pairs, init, num_real_users, options_, rng);

  for (size_t i = 0; i < fake_pairs.size(); ++i) {
    plan.actions.push_back(
        {ActionType::kRating, fake_pairs[i].first, fake_pairs[i].second,
         std::round(optimized.at(static_cast<int64_t>(i)))});
  }
  plan.ApplyTo(world);
  return plan;
}

}  // namespace msopds
