#ifndef MSOPDS_ATTACK_POISONREC_ATTACK_H_
#define MSOPDS_ATTACK_POISONREC_ATTACK_H_

#include "attack/attack.h"
#include "recsys/matrix_factorization.h"

namespace msopds {

/// Options of the reinforcement-learning injection attack.
struct PoisonRecOptions {
  /// Black-box episodes (each trains a fresh surrogate and queries it).
  int episodes = 8;
  /// Policy learning rate for the REINFORCE update.
  double policy_learning_rate = 2.0;
  /// Moving-average factor of the reward baseline.
  double baseline_momentum = 0.7;
  /// Surrogate used as the black-box system in each episode.
  MfConfig mf;
  int surrogate_epochs = 12;
  double surrogate_learning_rate = 0.05;
};

/// EXTENSION baseline: PoisonRec (Song et al., ICDE'20 [40]) reduced to
/// its core mechanism — black-box poisoning by reinforcement learning
/// under limited information. The attacker maintains softmax propensities
/// over filler items; each episode samples a filler set, injects it,
/// trains a black-box surrogate, observes the target item's average
/// predicted rating as the reward, and reinforces the sampled items with
/// the advantage over a moving baseline. The final profile takes the
/// highest-propensity items. Unlike PGA/RevAdv it never differentiates
/// through the recommender. IA scenario.
class PoisonRecAttack : public Attack {
 public:
  explicit PoisonRecAttack(PoisonRecOptions options = {});

  std::string name() const override { return "PoisonRec"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;

 private:
  PoisonRecOptions options_;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_POISONREC_ATTACK_H_
