#ifndef MSOPDS_ATTACK_TRIAL_ATTACK_H_
#define MSOPDS_ATTACK_TRIAL_ATTACK_H_

#include "attack/attack.h"
#include "recsys/matrix_factorization.h"

namespace msopds {

/// Options for the Trial attack's candidate search.
struct TrialOptions {
  /// Candidate fake profiles generated per fake account slot.
  int candidates_per_fake = 6;
  /// Weight of the realism (discriminator) term against influence.
  double realism_weight = 0.5;
  /// Surrogate used by the influence module.
  MfConfig mf;
  int surrogate_epochs = 30;
  double surrogate_learning_rate = 0.05;
};

/// Trial Attack (Wu et al. [54]): triple adversarial learning reduced to
/// its selection objective — a *generator* samples candidate fake
/// profiles that imitate real rating behaviour, a *discriminator* scores
/// their realism (log-likelihood under per-item rating statistics), and
/// an *influence module* estimates each profile's effect on the attack
/// objective (first-order influence: the inner product of the profile's
/// training gradient with the gradient of the injection loss on a trained
/// surrogate). The best-scoring candidate is assigned to each fake
/// account. IA scenario.
class TrialAttack : public Attack {
 public:
  explicit TrialAttack(TrialOptions options = {});

  std::string name() const override { return "Trial"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;

 private:
  TrialOptions options_;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_TRIAL_ATTACK_H_
