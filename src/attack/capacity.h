#ifndef MSOPDS_ATTACK_CAPACITY_H_
#define MSOPDS_ATTACK_CAPACITY_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/demographics.h"

namespace msopds {

/// The three kinds of candidate poisoning actions a Het-RecSys attacker
/// can take (paper Fig. 2, bottom left).
enum class ActionType {
  /// Add a rating (u, i, r) — real hired user or fake account.
  kRating = 0,
  /// Add a social-network edge {u, v} to G_U.
  kSocialEdge = 1,
  /// Add an item-graph edge {i, j} to G_I.
  kItemEdge = 2,
};

/// One candidate poisoning action.
struct PoisonAction {
  ActionType type = ActionType::kRating;
  /// kRating: the rating user. kSocialEdge: first endpoint (base user).
  /// kItemEdge: first endpoint (product item).
  int64_t a = 0;
  /// kRating: the rated item. kSocialEdge: second endpoint (fake user).
  /// kItemEdge: second endpoint (target item).
  int64_t b = 0;
  /// Rating value (kRating only; the paper's preset r-hat).
  double rating = 0.0;
};

/// Per-action-type selection budget applied at binarization.
struct Budget {
  int64_t max_ratings = 0;
  int64_t max_social_edges = 0;
  int64_t max_item_edges = 0;
};

/// A player's capacity set C: the ordered list of candidate actions the
/// importance vector indexes into (paper §IV-A). Actions are grouped by
/// type: [ratings | social edges | item edges].
class CapacitySet {
 public:
  CapacitySet() = default;

  /// C_CA (paper Eq. (6)): hire customer-base users to rate the target
  /// item with `preset_rating`; connect base users to fake accounts on
  /// G_U; link company products to the target item on G_I. Candidates
  /// that already exist in `dataset` (prior rating / edge) are skipped.
  static CapacitySet MakeComprehensive(const Dataset& dataset,
                                       const Demographics& demo,
                                       const std::vector<int64_t>& fake_users,
                                       double preset_rating);

  /// A ratings-only capacity (used by the simplified opponents of
  /// §VI-A4: base users give 1-star ratings to the attacker's target).
  static CapacitySet MakeRatingOnly(const Dataset& dataset,
                                    const Demographics& demo,
                                    double preset_rating);

  const std::vector<PoisonAction>& actions() const { return actions_; }
  int64_t size() const { return static_cast<int64_t>(actions_.size()); }

  /// Index ranges per type within actions(): ratings occupy
  /// [0, num_ratings), social edges [num_ratings, num_ratings +
  /// num_social), item edges the rest.
  int64_t num_ratings() const { return num_ratings_; }
  int64_t num_social_edges() const { return num_social_edges_; }
  int64_t num_item_edges() const { return num_item_edges_; }

  /// Clamps a requested budget to the actually-available candidates.
  Budget ClampBudget(const Budget& requested) const;

  /// Restricts the capacity to a subset of action types (for the
  /// category-ablation experiments of paper Fig. 8/9).
  CapacitySet FilterTypes(bool keep_ratings, bool keep_social,
                          bool keep_item) const;

  std::string Summary() const;

 private:
  void Append(PoisonAction action);

  std::vector<PoisonAction> actions_;
  int64_t num_ratings_ = 0;
  int64_t num_social_edges_ = 0;
  int64_t num_item_edges_ = 0;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_CAPACITY_H_
