#include "attack/sattack.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "attack/baselines.h"
#include "util/logging.h"

namespace msopds {

PoisonPlan SAttack::Execute(Dataset* world, const Demographics& demo,
                            const AttackBudget& budget, Rng* rng) {
  auto [fakes, plan] = InjectFakeUsers(world, demo, budget);

  // Influence scores over items: one-hop propagation from items the
  // target audience rated, via the item co-rating graph, plus a weak
  // popularity prior (log count).
  const std::unordered_set<int64_t> audience(demo.target_audience.begin(),
                                             demo.target_audience.end());
  std::vector<double> seed(static_cast<size_t>(world->num_items), 0.0);
  for (const Rating& r : world->ratings) {
    if (audience.count(r.user) > 0) seed[static_cast<size_t>(r.item)] += 1.0;
  }
  const std::vector<int64_t> counts = world->ItemRatingCounts();
  std::vector<double> score(static_cast<size_t>(world->num_items), 0.0);
  for (int64_t i = 0; i < world->num_items; ++i) {
    double propagated = seed[static_cast<size_t>(i)];
    for (int64_t j : world->items.Neighbors(i)) {
      const double deg =
          static_cast<double>(world->items.Degree(j));
      propagated += seed[static_cast<size_t>(j)] / std::max(1.0, deg);
    }
    score[static_cast<size_t>(i)] =
        propagated +
        0.1 * std::log(1.0 + static_cast<double>(
                                 counts[static_cast<size_t>(i)]));
  }

  std::vector<int64_t> ranked(static_cast<size_t>(world->num_items));
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(), [&](int64_t a, int64_t b) {
    if (score[static_cast<size_t>(a)] != score[static_cast<size_t>(b)]) {
      return score[static_cast<size_t>(a)] > score[static_cast<size_t>(b)];
    }
    return a < b;
  });

  const RatingDistribution dist = FitRatingDistribution(*world);
  const int64_t fillers =
      std::min<int64_t>(budget.filler_items_per_fake, world->num_items - 1);
  for (int64_t fake : fakes) {
    int64_t taken = 0;
    for (int64_t item : ranked) {
      if (taken >= fillers) break;
      if (item == demo.target_item) continue;
      plan.actions.push_back(
          {ActionType::kRating, fake, item, SampleRating(dist, rng)});
      ++taken;
    }
  }
  plan.ApplyTo(world);
  return plan;
}

}  // namespace msopds
