#include "attack/poison_plan.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {

int64_t PoisonPlan::CountType(ActionType type) const {
  int64_t count = 0;
  for (const PoisonAction& action : actions) {
    if (action.type == type) ++count;
  }
  return count;
}

void PoisonPlan::ApplyTo(Dataset* dataset) const {
  MSOPDS_CHECK(dataset != nullptr);
  for (const PoisonAction& action : actions) {
    switch (action.type) {
      case ActionType::kRating: {
        bool replaced = false;
        for (Rating& r : dataset->ratings) {
          if (r.user == action.a && r.item == action.b) {
            r.value = action.rating;
            replaced = true;
            break;
          }
        }
        if (!replaced) {
          dataset->ratings.push_back({action.a, action.b, action.rating});
        }
        break;
      }
      case ActionType::kSocialEdge:
        dataset->social.AddEdge(action.a, action.b);
        break;
      case ActionType::kItemEdge:
        dataset->items.AddEdge(action.a, action.b);
        break;
    }
  }
}

std::string PoisonPlan::Summary() const {
  return StrFormat("plan: %lld ratings, %lld social edges, %lld item edges",
                   static_cast<long long>(CountType(ActionType::kRating)),
                   static_cast<long long>(CountType(ActionType::kSocialEdge)),
                   static_cast<long long>(CountType(ActionType::kItemEdge)));
}

std::vector<int64_t> AddFakeUsers(Dataset* dataset, int64_t count) {
  MSOPDS_CHECK(dataset != nullptr);
  MSOPDS_CHECK_GE(count, 0);
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(count));
  for (int64_t k = 0; k < count; ++k) {
    ids.push_back(dataset->num_users + k);
  }
  dataset->num_users += count;
  dataset->social.AddNodes(count);
  return ids;
}

}  // namespace msopds
