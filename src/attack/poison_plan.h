#ifndef MSOPDS_ATTACK_POISON_PLAN_H_
#define MSOPDS_ATTACK_POISON_PLAN_H_

#include <string>
#include <vector>

#include "attack/capacity.h"
#include "data/dataset.h"

namespace msopds {

/// A concrete set of poisoning actions X (paper notation X^p), ready to be
/// injected into a dataset.
struct PoisonPlan {
  std::vector<PoisonAction> actions;

  int64_t CountType(ActionType type) const;

  /// Injects the plan: ratings are appended (existing (u, i) pairs are
  /// overwritten with the poison value), edges are added to the graphs.
  void ApplyTo(Dataset* dataset) const;

  std::string Summary() const;
};

/// Appends `count` fake user accounts to the dataset (isolated nodes in
/// the social network) and returns their ids. Both IA and MCA inject fake
/// accounts before planning (paper §VI-A3).
std::vector<int64_t> AddFakeUsers(Dataset* dataset, int64_t count);

}  // namespace msopds

#endif  // MSOPDS_ATTACK_POISON_PLAN_H_
