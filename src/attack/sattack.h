#ifndef MSOPDS_ATTACK_SATTACK_H_
#define MSOPDS_ATTACK_SATTACK_H_

#include "attack/attack.h"

namespace msopds {

/// S-attack (Fang et al. [52]): influence-function-based proxy-item
/// selection against graph-based top-N recommenders. Filler items are
/// chosen to maximize an influence score that propagates from the target
/// audience's rated items through the item co-rating graph (one-hop
/// random-walk proximity plus a popularity prior); each proxy item is
/// rated from a normal distribution fitted to the real ratings (as in the
/// original paper). IA scenario.
class SAttack : public Attack {
 public:
  std::string name() const override { return "S-attack"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_SATTACK_H_
