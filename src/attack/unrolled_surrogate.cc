#include "attack/unrolled_surrogate.h"

#include <algorithm>

#include "tensor/grad.h"
#include "tensor/optim.h"
#include "tensor/remat.h"
#include "util/arena.h"
#include "util/logging.h"

namespace msopds {
namespace {

// One functional (recorded) SGD step: params' = params - lr * grad.
MfParams FunctionalSgdStep(const MfParams& params, const Variable& loss,
                           double learning_rate) {
  const std::vector<Variable> current = params.AsVector();
  const std::vector<Variable> grads = Grad(loss, current);
  MfParams next;
  next.user_factors =
      Sub(current[0], ScalarMul(grads[0], learning_rate));
  next.item_factors =
      Sub(current[1], ScalarMul(grads[1], learning_rate));
  next.user_bias = Sub(current[2], ScalarMul(grads[2], learning_rate));
  next.item_bias = Sub(current[3], ScalarMul(grads[3], learning_rate));
  next.global_mean = params.global_mean;
  return next;
}

// Detached pre-training of the surrogate on real + fake ratings.
MfParams Pretrain(const Dataset& world, const IndexVec& users,
                  const IndexVec& items, const Tensor& targets,
                  const UnrolledMfOptions& options, Rng* rng) {
  double mean = 3.0;
  if (targets.size() > 0) mean = targets.Sum() / targets.size();
  MfParams params = MakeMfParams(world.num_users, world.num_items, options.mf,
                                 mean, rng);
  std::vector<Variable> leaves = params.AsVector();
  Adam optimizer(options.pretrain_learning_rate);
  for (int epoch = 0; epoch < options.pretrain_epochs; ++epoch) {
    Variable loss = MfLoss(params, users, items,
                           Constant(targets.Clone()), options.mf.l2);
    const std::vector<Tensor> grads = GradValues(loss, leaves);
    optimizer.Step(&leaves, grads);
  }
  params.user_factors = leaves[0];
  params.item_factors = leaves[1];
  params.user_bias = leaves[2];
  params.item_bias = leaves[3];
  return params;
}

// Rebinds an AsVector()-ordered state (as handed out by the checkpointing
// driver) back into an MfParams view.
MfParams BindParams(const std::vector<Variable>& state, double global_mean) {
  MSOPDS_CHECK_EQ(state.size(), 4u);
  MfParams params;
  params.user_factors = state[0];
  params.item_factors = state[1];
  params.user_bias = state[2];
  params.item_bias = state[3];
  params.global_mean = global_mean;
  return params;
}

}  // namespace

Tensor OptimizeFakeRatings(
    const Dataset& world, const Demographics& demo,
    const std::vector<std::pair<int64_t, int64_t>>& fake_pairs,
    const Tensor& initial_values, int64_t num_real_users,
    const UnrolledMfOptions& options, Rng* rng) {
  MSOPDS_CHECK(!fake_pairs.empty());
  MSOPDS_CHECK_EQ(initial_values.size(),
                  static_cast<int64_t>(fake_pairs.size()));
  MSOPDS_CHECK_GT(num_real_users, 0);
  MSOPDS_CHECK_LE(num_real_users, world.num_users);

  // Index arrays: real ratings first, then the fake pairs.
  std::vector<int64_t> users, items;
  users.reserve(world.ratings.size() + fake_pairs.size());
  items.reserve(users.capacity());
  Tensor real_targets({static_cast<int64_t>(world.ratings.size())});
  for (size_t k = 0; k < world.ratings.size(); ++k) {
    users.push_back(world.ratings[k].user);
    items.push_back(world.ratings[k].item);
    real_targets.at(static_cast<int64_t>(k)) = world.ratings[k].value;
  }
  for (const auto& [fake_user, item] : fake_pairs) {
    users.push_back(fake_user);
    items.push_back(item);
  }
  const IndexVec all_users = MakeIndex(std::move(users));
  const IndexVec all_items = MakeIndex(std::move(items));

  // Injection loss targets: every real user paired with the target item.
  std::vector<int64_t> audience_users, audience_items;
  for (int64_t u = 0; u < num_real_users; ++u) {
    audience_users.push_back(u);
    audience_items.push_back(demo.target_item);
  }
  const IndexVec ia_users = MakeIndex(std::move(audience_users));
  const IndexVec ia_items = MakeIndex(std::move(audience_items));

  Tensor values = initial_values.Clone();
  auto project = [&](Tensor* v) {
    for (int64_t i = 0; i < v->size(); ++i) {
      const bool is_target =
          fake_pairs[static_cast<size_t>(i)].second == demo.target_item;
      double x = is_target ? kMaxRating : v->at(i);
      v->at(i) = std::min(kMaxRating, std::max(kMinRating, x));
    }
  };
  project(&values);

  auto concat_targets = [&](const Variable& fake_values) {
    return Concat1(Constant(real_targets.Clone()), fake_values);
  };

  // One arena region per attack trial: tape buffers recycle across outer
  // iterations and the free lists are trimmed when the trial ends.
  ArenaRegion region;
  MfParams pretrained;
  bool have_pretrained = false;
  for (int outer = 0; outer < options.outer_iterations; ++outer) {
    if (!have_pretrained ||
        (options.refresh_every > 0 && outer % options.refresh_every == 0)) {
      Tensor all_targets({static_cast<int64_t>(all_users->size())});
      for (int64_t i = 0; i < real_targets.size(); ++i)
        all_targets.at(i) = real_targets.at(i);
      for (int64_t i = 0; i < values.size(); ++i)
        all_targets.at(real_targets.size() + i) = values.at(i);
      pretrained =
          Pretrain(world, all_users, all_items, all_targets, options, rng);
      have_pretrained = true;
    }

    // Recorded unroll from the pretrained point, with optional gradient
    // checkpointing. The driver rebuilds the tape from leaf state either
    // way, so checkpoint_every only changes peak memory, not bits.
    Variable fake_values = Param(values.Clone());
    const double global_mean = pretrained.global_mean;
    const std::vector<Tensor> initial_state = {
        pretrained.user_factors.value().Clone(),
        pretrained.item_factors.value().Clone(),
        pretrained.user_bias.value().Clone(),
        pretrained.item_bias.value().Clone()};
    const CheckpointedGradResult unrolled = CheckpointedUnrollGrad(
        initial_state, {fake_values}, options.unroll_steps,
        options.checkpoint_every,
        [&](const std::vector<Variable>& state, int64_t) {
          MfParams params = BindParams(state, global_mean);
          Variable loss = MfLoss(params, all_users, all_items,
                                 concat_targets(fake_values), options.mf.l2);
          return FunctionalSgdStep(params, loss, options.inner_learning_rate)
              .AsVector();
        },
        // L_IA = -(1/|U|) sum_u R(u, target): minimize.
        [&](const std::vector<Variable>& state) {
          return Neg(Mean(
              MfPredict(BindParams(state, global_mean), ia_users, ia_items)));
        });
    const Tensor& gradient = unrolled.input_grads[0];
    for (int64_t i = 0; i < values.size(); ++i) {
      values.at(i) -= options.outer_learning_rate * gradient.at(i);
    }
    project(&values);
  }
  return values;
}

}  // namespace msopds
