#include "attack/importance_vector.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace msopds {
namespace {

// Marks the top-`budget` indices of values[lo, hi) in `mask`.
void MarkTopK(const Tensor& values, int64_t lo, int64_t hi, int64_t budget,
              Tensor* mask) {
  const int64_t count = hi - lo;
  if (budget <= 0 || count <= 0) return;
  std::vector<int64_t> order(static_cast<size_t>(count));
  std::iota(order.begin(), order.end(), lo);
  const int64_t k = std::min(budget, count);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int64_t a, int64_t b) {
                      const double va = values.at(a);
                      const double vb = values.at(b);
                      if (va != vb) return va > vb;
                      return a < b;
                    });
  for (int64_t i = 0; i < k; ++i) mask->at(order[static_cast<size_t>(i)]) = 1.0;
}

}  // namespace

ImportanceVector::ImportanceVector(const CapacitySet* capacity, Rng* rng,
                                   double init_scale)
    : capacity_(capacity) {
  MSOPDS_CHECK(capacity != nullptr);
  MSOPDS_CHECK(rng != nullptr);
  values_ = Tensor::Zeros({capacity->size()});
  for (int64_t i = 0; i < values_.size(); ++i) {
    values_.at(i) = rng->Uniform(0.0, init_scale);
  }
}

Tensor ImportanceVector::Binarize(const Budget& budget) const {
  Tensor mask = Tensor::Zeros({values_.size()});
  const Budget clamped = capacity_->ClampBudget(budget);
  const int64_t r = capacity_->num_ratings();
  const int64_t s = capacity_->num_social_edges();
  const int64_t t = capacity_->num_item_edges();
  MarkTopK(values_, 0, r, clamped.max_ratings, &mask);
  MarkTopK(values_, r, r + s, clamped.max_social_edges, &mask);
  MarkTopK(values_, r + s, r + s + t, clamped.max_item_edges, &mask);
  return mask;
}

Variable ImportanceVector::BinarizedParam(const Budget& budget) const {
  return Param(Binarize(budget));
}

void ImportanceVector::ApplyUpdate(const Tensor& gradient, double step) {
  MSOPDS_CHECK(gradient.SameShape(values_));
  MSOPDS_CHECK_GT(step, 0.0);
  for (int64_t i = 0; i < values_.size(); ++i) {
    values_.at(i) -= step * gradient.at(i);
  }
}

PoisonPlan ImportanceVector::ExtractPlan(const Budget& budget) const {
  const Tensor mask = Binarize(budget);
  PoisonPlan plan;
  for (int64_t i = 0; i < mask.size(); ++i) {
    if (mask.at(i) != 0.0) {
      plan.actions.push_back(capacity_->actions()[static_cast<size_t>(i)]);
    }
  }
  return plan;
}

}  // namespace msopds
