#ifndef MSOPDS_ATTACK_ATTACK_H_
#define MSOPDS_ATTACK_ATTACK_H_

#include <memory>
#include <string>

#include "attack/poison_plan.h"
#include "data/demographics.h"
#include "util/rng.h"

namespace msopds {

/// Budget derived from the paper's common parameter b (§VI-A3).
///
/// Both IA and MCA inject fake users amounting to b% of |U|, each giving a
/// 5-star rating to the target item. IA additionally rates filler items
/// with each fake user; MCA instead spends N = b * 5% * |U| on hiring real
/// raters, fake-account social links (N per fake account), and item-graph
/// links. All counts are clamped to the available capacity downstream.
struct AttackBudget {
  int64_t num_fake_users = 0;
  /// IA: filler items rated by each fake user (paper: 100).
  int64_t filler_items_per_fake = 0;
  /// CA/MCA: hired customer-base raters (N).
  int64_t hired_raters = 0;
  /// CA/MCA: total fake-base social links (N per fake account).
  int64_t social_links = 0;
  /// CA/MCA: product-to-target item-graph links (N).
  int64_t item_links = 0;
  /// Rating given to promoted items (r-hat; 5 promotes, 1 demotes).
  double promote_rating = 5.0;

  /// Instantiates the paper's formulas for budget level b on a dataset.
  static AttackBudget FromLevel(int level, const Dataset& dataset);

  /// Budget struct for binarizing a CapacitySet under this budget.
  Budget ToCapacityBudget() const {
    return Budget{hired_raters, social_links, item_links};
  }
};

/// A poisoning attack strategy. Execute() plans against the *current*
/// public state of the data (which may already contain other players'
/// poison) and injects its poison into `world` (fake accounts, ratings,
/// and/or graph edges). Returns the applied plan for reporting.
class Attack {
 public:
  virtual ~Attack() = default;

  virtual std::string name() const = 0;

  virtual PoisonPlan Execute(Dataset* world, const Demographics& demo,
                             const AttackBudget& budget, Rng* rng) = 0;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_ATTACK_H_
