#ifndef MSOPDS_ATTACK_IMPORTANCE_VECTOR_H_
#define MSOPDS_ATTACK_IMPORTANCE_VECTOR_H_

#include <vector>

#include "attack/capacity.h"
#include "attack/poison_plan.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace msopds {

/// The importance vector X of paper §IV-A: one continuous priority per
/// candidate action in a CapacitySet. MSO performs gradient updates on X;
/// PDS consumes the *binarized* copy X-hat (per-type top-k under the
/// budget) during surrogate training; updates computed w.r.t. X-hat are
/// applied back to X (the paper's straight-through scheme, Fig. 4).
class ImportanceVector {
 public:
  /// Initializes priorities with small random values (tie-breaking noise).
  ImportanceVector(const CapacitySet* capacity, Rng* rng,
                   double init_scale = 1e-3);

  const CapacitySet& capacity() const { return *capacity_; }
  const Tensor& values() const { return values_; }
  int64_t size() const { return values_.size(); }

  /// Binarized copy: 1 for the top-budget actions of each type, else 0.
  /// Ties break toward lower action index (deterministic).
  Tensor Binarize(const Budget& budget) const;

  /// Binarized copy as a trainable leaf (the X-hat fed into PDS).
  Variable BinarizedParam(const Budget& budget) const;

  /// Gradient step X <- X - step * gradient (gradient w.r.t. X-hat).
  void ApplyUpdate(const Tensor& gradient, double step);

  /// The concrete poisoning plan: actions selected by Binarize(budget).
  PoisonPlan ExtractPlan(const Budget& budget) const;

 private:
  const CapacitySet* capacity_;  // not owned
  Tensor values_;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_IMPORTANCE_VECTOR_H_
