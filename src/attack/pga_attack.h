#ifndef MSOPDS_ATTACK_PGA_ATTACK_H_
#define MSOPDS_ATTACK_PGA_ATTACK_H_

#include "attack/attack.h"
#include "attack/unrolled_surrogate.h"

namespace msopds {

/// Projected Gradient Ascent attack (Li et al. [13]): optimizes the fake
/// users' filler rating values over a matrix-factorization surrogate by
/// gradient steps projected into the valid rating range. Filler items are
/// a fixed random set per fake user; values are optimized through a short
/// recorded training unroll. Operates under the IA scenario.
class PgaAttack : public Attack {
 public:
  explicit PgaAttack(UnrolledMfOptions options = {});

  std::string name() const override { return "PGA"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;

 private:
  UnrolledMfOptions options_;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_PGA_ATTACK_H_
