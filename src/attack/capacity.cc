#include "attack/capacity.h"

#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {
namespace {

std::unordered_set<uint64_t> RatedPairs(const Dataset& dataset) {
  std::unordered_set<uint64_t> rated;
  rated.reserve(dataset.ratings.size() * 2);
  for (const Rating& r : dataset.ratings) {
    rated.insert((static_cast<uint64_t>(r.user) << 32) |
                 static_cast<uint64_t>(r.item));
  }
  return rated;
}

bool AlreadyRated(const std::unordered_set<uint64_t>& rated, int64_t user,
                  int64_t item) {
  return rated.count((static_cast<uint64_t>(user) << 32) |
                     static_cast<uint64_t>(item)) > 0;
}

}  // namespace

void CapacitySet::Append(PoisonAction action) {
  switch (action.type) {
    case ActionType::kRating:
      // Grouped layout invariant: ratings must precede edges.
      MSOPDS_CHECK_EQ(num_social_edges_, 0);
      MSOPDS_CHECK_EQ(num_item_edges_, 0);
      ++num_ratings_;
      break;
    case ActionType::kSocialEdge:
      MSOPDS_CHECK_EQ(num_item_edges_, 0);
      ++num_social_edges_;
      break;
    case ActionType::kItemEdge:
      ++num_item_edges_;
      break;
  }
  actions_.push_back(action);
}

CapacitySet CapacitySet::MakeComprehensive(
    const Dataset& dataset, const Demographics& demo,
    const std::vector<int64_t>& fake_users, double preset_rating) {
  CapacitySet capacity;
  const std::unordered_set<uint64_t> rated = RatedPairs(dataset);

  // Hire base users to rate the target item with the preset value.
  for (int64_t user : demo.customer_base) {
    if (AlreadyRated(rated, user, demo.target_item)) continue;
    capacity.Append(
        {ActionType::kRating, user, demo.target_item, preset_rating});
  }
  // Connect base users to fake accounts on the social network.
  for (int64_t user : demo.customer_base) {
    for (int64_t fake : fake_users) {
      if (dataset.social.HasEdge(user, fake)) continue;
      capacity.Append({ActionType::kSocialEdge, user, fake, 0.0});
    }
  }
  // Link company products to the target item on the item graph.
  for (int64_t product : demo.product_items) {
    if (product == demo.target_item) continue;
    if (dataset.items.HasEdge(product, demo.target_item)) continue;
    capacity.Append({ActionType::kItemEdge, product, demo.target_item, 0.0});
  }
  return capacity;
}

CapacitySet CapacitySet::MakeRatingOnly(const Dataset& dataset,
                                        const Demographics& demo,
                                        double preset_rating) {
  CapacitySet capacity;
  const std::unordered_set<uint64_t> rated = RatedPairs(dataset);
  for (int64_t user : demo.customer_base) {
    if (AlreadyRated(rated, user, demo.target_item)) continue;
    capacity.Append(
        {ActionType::kRating, user, demo.target_item, preset_rating});
  }
  return capacity;
}

Budget CapacitySet::ClampBudget(const Budget& requested) const {
  Budget clamped;
  clamped.max_ratings = std::min(requested.max_ratings, num_ratings_);
  clamped.max_social_edges =
      std::min(requested.max_social_edges, num_social_edges_);
  clamped.max_item_edges = std::min(requested.max_item_edges, num_item_edges_);
  return clamped;
}

CapacitySet CapacitySet::FilterTypes(bool keep_ratings, bool keep_social,
                                     bool keep_item) const {
  CapacitySet filtered;
  for (const PoisonAction& action : actions_) {
    const bool keep = (action.type == ActionType::kRating && keep_ratings) ||
                      (action.type == ActionType::kSocialEdge && keep_social) ||
                      (action.type == ActionType::kItemEdge && keep_item);
    if (keep) filtered.Append(action);
  }
  return filtered;
}

std::string CapacitySet::Summary() const {
  return StrFormat("capacity: %lld ratings, %lld social edges, %lld item edges",
                   static_cast<long long>(num_ratings_),
                   static_cast<long long>(num_social_edges_),
                   static_cast<long long>(num_item_edges_));
}

}  // namespace msopds
