#ifndef MSOPDS_ATTACK_UNROLLED_SURROGATE_H_
#define MSOPDS_ATTACK_UNROLLED_SURROGATE_H_

#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/demographics.h"
#include "recsys/matrix_factorization.h"
#include "util/rng.h"

namespace msopds {

/// Options for gradient-based injection attacks that differentiate the
/// injection objective through unrolled matrix-factorization training
/// (the mechanism shared by the PGA [13] and RevAdv [3] baselines).
struct UnrolledMfOptions {
  MfConfig mf;
  /// Ordinary (detached) surrogate pre-training epochs.
  int pretrain_epochs = 30;
  double pretrain_learning_rate = 0.05;
  /// Recorded inner training steps differentiated through.
  int unroll_steps = 3;
  double inner_learning_rate = 0.5;
  /// Outer gradient iterations on the fake rating values.
  int outer_iterations = 8;
  double outer_learning_rate = 0.5;
  /// Re-pretrain the surrogate every `refresh_every` outer iterations
  /// (0 = never; RevAdv refreshes, PGA does not).
  int refresh_every = 0;
  /// Gradient checkpointing for the unrolled inner loop: keep only every
  /// k-th step's parameters during the forward pass and rematerialize
  /// segments during backward (tensor/remat.h). 0 disables (full tape).
  /// Gradients are bit-identical at any setting; peak tape memory scales
  /// with the segment length instead of unroll_steps.
  int checkpoint_every = 0;
};

/// Optimizes the rating *values* of the fake (user, item) pairs to
/// minimize the Injection Attack loss (paper Eq. (3): maximize the average
/// predicted rating of the target item over all real users), by
/// backpropagating through `unroll_steps` recorded SGD steps of an MF
/// surrogate trained on `world` plus the fake pairs. Values are projected
/// into [1, 5] after every step; the target item's own fake ratings are
/// pinned at 5. Returns the optimized (still continuous) values aligned
/// with `fake_pairs`.
Tensor OptimizeFakeRatings(
    const Dataset& world, const Demographics& demo,
    const std::vector<std::pair<int64_t, int64_t>>& fake_pairs,
    const Tensor& initial_values, int64_t num_real_users,
    const UnrolledMfOptions& options, Rng* rng);

}  // namespace msopds

#endif  // MSOPDS_ATTACK_UNROLLED_SURROGATE_H_
