#ifndef MSOPDS_ATTACK_BASELINES_H_
#define MSOPDS_ATTACK_BASELINES_H_

#include <utility>
#include <vector>

#include "attack/attack.h"

namespace msopds {

/// Mean/stddev of the observed rating values, used by several baselines to
/// produce filler ratings "matching the real distribution" (paper §VI-A5,
/// following Fang et al. [49]).
struct RatingDistribution {
  double mean = 3.5;
  double stddev = 1.0;
};

RatingDistribution FitRatingDistribution(const Dataset& dataset);

/// Draws a discretized in-range rating from the fitted distribution.
double SampleRating(const RatingDistribution& dist, Rng* rng);

/// Shared Injection-Attack scaffolding: appends the fake accounts and
/// their unconditional 5-star rating on the target item (paper §VI-A3),
/// returning the fake ids and the partially-built plan.
std::pair<std::vector<int64_t>, PoisonPlan> InjectFakeUsers(
    Dataset* world, const Demographics& demo, const AttackBudget& budget);

/// "None": the attacker does nothing (clean-model reference row).
class NoneAttack : public Attack {
 public:
  std::string name() const override { return "None"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;
};

/// "Random": fake users rate random filler items with distribution-fitted
/// values (classic random shilling).
class RandomAttack : public Attack {
 public:
  std::string name() const override { return "Random"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;
};

/// "Popular" [49], [84]: 90% random + 10% most-popular filler items, which
/// couples the fake profiles to well-connected items.
class PopularAttack : public Attack {
 public:
  std::string name() const override { return "Popular"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_BASELINES_H_
