#include "attack/baselines.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <unordered_set>

#include "util/logging.h"

namespace msopds {

AttackBudget AttackBudget::FromLevel(int level, const Dataset& dataset) {
  MSOPDS_CHECK_GT(level, 0);
  AttackBudget budget;
  const double users = static_cast<double>(dataset.num_users);
  budget.num_fake_users = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(users * level / 100.0)));
  budget.filler_items_per_fake =
      std::min<int64_t>(100, std::max<int64_t>(5, dataset.num_items / 10));
  const int64_t n = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(users * level * 0.05)));
  budget.hired_raters = n;
  budget.social_links = n * budget.num_fake_users;
  budget.item_links = n;
  budget.promote_rating = kMaxRating;
  return budget;
}

RatingDistribution FitRatingDistribution(const Dataset& dataset) {
  RatingDistribution dist;
  if (dataset.ratings.empty()) return dist;
  double sum = 0.0;
  for (const Rating& r : dataset.ratings) sum += r.value;
  dist.mean = sum / static_cast<double>(dataset.ratings.size());
  double var = 0.0;
  for (const Rating& r : dataset.ratings) {
    const double d = r.value - dist.mean;
    var += d * d;
  }
  dist.stddev =
      std::sqrt(var / static_cast<double>(dataset.ratings.size()));
  if (dist.stddev < 0.25) dist.stddev = 0.25;
  return dist;
}

double SampleRating(const RatingDistribution& dist, Rng* rng) {
  const double raw = rng->Normal(dist.mean, dist.stddev);
  return std::round(std::min(kMaxRating, std::max(kMinRating, raw)));
}

std::pair<std::vector<int64_t>, PoisonPlan> InjectFakeUsers(
    Dataset* world, const Demographics& demo, const AttackBudget& budget) {
  PoisonPlan plan;
  std::vector<int64_t> fakes = AddFakeUsers(world, budget.num_fake_users);
  for (int64_t fake : fakes) {
    plan.actions.push_back(
        {ActionType::kRating, fake, demo.target_item, budget.promote_rating});
  }
  return {std::move(fakes), std::move(plan)};
}

PoisonPlan NoneAttack::Execute(Dataset* /*world*/,
                               const Demographics& /*demo*/,
                               const AttackBudget& /*budget*/, Rng* /*rng*/) {
  return PoisonPlan{};
}

namespace {

// Completes an injection attack given a filler-item chooser: rates the
// chosen fillers with distribution-fitted values and applies everything.
PoisonPlan FinishInjection(
    Dataset* world, const Demographics& demo, const AttackBudget& budget,
    Rng* rng,
    const std::function<std::vector<int64_t>(int64_t fake, Rng* rng)>&
        choose_fillers) {
  auto [fakes, plan] = InjectFakeUsers(world, demo, budget);
  const RatingDistribution dist = FitRatingDistribution(*world);
  for (int64_t fake : fakes) {
    const std::vector<int64_t> fillers = choose_fillers(fake, rng);
    for (int64_t item : fillers) {
      if (item == demo.target_item) continue;
      plan.actions.push_back(
          {ActionType::kRating, fake, item, SampleRating(dist, rng)});
    }
  }
  plan.ApplyTo(world);
  return plan;
}

}  // namespace

PoisonPlan RandomAttack::Execute(Dataset* world, const Demographics& demo,
                                 const AttackBudget& budget, Rng* rng) {
  const int64_t num_items = world->num_items;
  return FinishInjection(
      world, demo, budget, rng, [&](int64_t /*fake*/, Rng* r) {
        return r->SampleWithoutReplacement(
            num_items,
            std::min<int64_t>(budget.filler_items_per_fake, num_items));
      });
}

PoisonPlan PopularAttack::Execute(Dataset* world, const Demographics& demo,
                                  const AttackBudget& budget, Rng* rng) {
  // Popularity ranking of items by rating count.
  const std::vector<int64_t> counts = world->ItemRatingCounts();
  std::vector<int64_t> by_popularity(static_cast<size_t>(world->num_items));
  std::iota(by_popularity.begin(), by_popularity.end(), 0);
  std::sort(by_popularity.begin(), by_popularity.end(),
            [&](int64_t a, int64_t b) {
              if (counts[static_cast<size_t>(a)] !=
                  counts[static_cast<size_t>(b)]) {
                return counts[static_cast<size_t>(a)] >
                       counts[static_cast<size_t>(b)];
              }
              return a < b;
            });
  const int64_t num_items = world->num_items;
  return FinishInjection(
      world, demo, budget, rng, [&](int64_t /*fake*/, Rng* r) {
        const int64_t total =
            std::min<int64_t>(budget.filler_items_per_fake, num_items);
        const int64_t popular = std::min<int64_t>(total / 10, num_items);
        std::unordered_set<int64_t> chosen;
        std::vector<int64_t> fillers;
        for (int64_t i = 0; i < popular; ++i) {
          fillers.push_back(by_popularity[static_cast<size_t>(i)]);
          chosen.insert(fillers.back());
        }
        while (static_cast<int64_t>(fillers.size()) < total) {
          const int64_t item = r->UniformInt(num_items);
          if (chosen.insert(item).second) fillers.push_back(item);
        }
        return fillers;
      });
}

}  // namespace msopds
