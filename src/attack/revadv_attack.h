#ifndef MSOPDS_ATTACK_REVADV_ATTACK_H_
#define MSOPDS_ATTACK_REVADV_ATTACK_H_

#include "attack/attack.h"
#include "attack/unrolled_surrogate.h"

namespace msopds {

/// Revisit Attack (Tang et al. [3]): the state-of-the-art bilevel
/// adversarially-learned injection attack. Compared to PGA it (a) selects
/// filler items by popularity-biased sampling (fake profiles mimic real
/// profile structure), (b) runs more outer iterations with a deeper
/// recorded unroll, and (c) periodically re-solves the lower-level
/// (re-trains the surrogate to convergence on the current poison) — the
/// paper's "revisit" of the exact training trajectory. IA scenario.
class RevAdvAttack : public Attack {
 public:
  explicit RevAdvAttack(UnrolledMfOptions options = DefaultOptions());

  static UnrolledMfOptions DefaultOptions();

  std::string name() const override { return "RevAdv"; }
  PoisonPlan Execute(Dataset* world, const Demographics& demo,
                     const AttackBudget& budget, Rng* rng) override;

 private:
  UnrolledMfOptions options_;
};

}  // namespace msopds

#endif  // MSOPDS_ATTACK_REVADV_ATTACK_H_
