#include "attack/poisonrec_attack.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "attack/baselines.h"
#include "tensor/grad.h"
#include "tensor/optim.h"
#include "util/logging.h"

namespace msopds {
namespace {

// Trains a fresh MF surrogate on `ratings` and returns the target item's
// mean predicted rating over the real users: the black-box reward.
double BlackBoxReward(const std::vector<Rating>& ratings, int64_t num_users,
                      int64_t num_items, int64_t num_real_users,
                      int64_t target_item, const PoisonRecOptions& options,
                      Rng* rng) {
  double mean = 3.0;
  if (!ratings.empty()) {
    mean = 0.0;
    for (const Rating& r : ratings) mean += r.value;
    mean /= static_cast<double>(ratings.size());
  }
  MfParams params =
      MakeMfParams(num_users, num_items, options.mf, mean, rng);
  std::vector<Variable> leaves = params.AsVector();

  std::vector<int64_t> users, items;
  Tensor targets({static_cast<int64_t>(ratings.size())});
  for (size_t k = 0; k < ratings.size(); ++k) {
    users.push_back(ratings[k].user);
    items.push_back(ratings[k].item);
    targets.at(static_cast<int64_t>(k)) = ratings[k].value;
  }
  const IndexVec ui = MakeIndex(std::move(users));
  const IndexVec ii = MakeIndex(std::move(items));
  Adam optimizer(options.surrogate_learning_rate);
  for (int epoch = 0; epoch < options.surrogate_epochs; ++epoch) {
    Variable loss =
        MfLoss(params, ui, ii, Constant(targets.Clone()), options.mf.l2);
    optimizer.Step(&leaves, GradValues(loss, leaves));
  }
  params.user_factors = leaves[0];
  params.item_factors = leaves[1];
  params.user_bias = leaves[2];
  params.item_bias = leaves[3];

  std::vector<int64_t> qu(static_cast<size_t>(num_real_users));
  std::iota(qu.begin(), qu.end(), 0);
  std::vector<int64_t> qi(qu.size(), target_item);
  return Mean(MfPredict(params, MakeIndex(std::move(qu)),
                        MakeIndex(std::move(qi))))
      .value()
      .item();
}

// Samples `count` distinct items from the softmax over propensities.
std::vector<int64_t> SamplePolicy(const std::vector<double>& logits,
                                  int64_t count, int64_t exclude, Rng* rng) {
  std::vector<double> weights(logits.size());
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  for (size_t i = 0; i < logits.size(); ++i) {
    weights[i] = std::exp(logits[i] - max_logit);
  }
  if (exclude >= 0) weights[static_cast<size_t>(exclude)] = 0.0;
  std::vector<int64_t> chosen;
  for (int64_t k = 0; k < count; ++k) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) break;
    double u = rng->Uniform(0.0, total);
    size_t pick = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u <= 0.0) {
        pick = i;
        break;
      }
    }
    chosen.push_back(static_cast<int64_t>(pick));
    weights[pick] = 0.0;  // without replacement
  }
  return chosen;
}

}  // namespace

PoisonRecAttack::PoisonRecAttack(PoisonRecOptions options)
    : options_(options) {}

PoisonPlan PoisonRecAttack::Execute(Dataset* world, const Demographics& demo,
                                    const AttackBudget& budget, Rng* rng) {
  const int64_t num_real_users = world->num_users;
  auto [fakes, plan] = InjectFakeUsers(world, demo, budget);
  const int64_t fillers =
      std::min<int64_t>(budget.filler_items_per_fake, world->num_items - 1);
  if (fakes.empty() || fillers <= 0) {
    plan.ApplyTo(world);
    return plan;
  }

  const RatingDistribution dist = FitRatingDistribution(*world);
  std::vector<double> logits(static_cast<size_t>(world->num_items), 0.0);
  double baseline = 0.0;
  bool have_baseline = false;

  // The base episode ratings: the world plus the fakes' target 5-stars.
  std::vector<Rating> base_ratings = world->ratings;
  for (int64_t fake : fakes) {
    base_ratings.push_back({fake, demo.target_item, budget.promote_rating});
  }

  for (int episode = 0; episode < options_.episodes; ++episode) {
    // One shared filler set per episode (PoisonRec's session abstraction
    // collapsed to a single action set for tractability).
    const std::vector<int64_t> chosen =
        SamplePolicy(logits, fillers, demo.target_item, rng);
    std::vector<Rating> episode_ratings = base_ratings;
    for (int64_t fake : fakes) {
      for (int64_t item : chosen) {
        episode_ratings.push_back({fake, item, SampleRating(dist, rng)});
      }
    }
    Rng surrogate_rng = rng->Split();
    const double reward = BlackBoxReward(
        episode_ratings, world->num_users, world->num_items, num_real_users,
        demo.target_item, options_, &surrogate_rng);
    if (!have_baseline) {
      baseline = reward;
      have_baseline = true;
    }
    const double advantage = reward - baseline;
    baseline = options_.baseline_momentum * baseline +
               (1.0 - options_.baseline_momentum) * reward;
    for (int64_t item : chosen) {
      logits[static_cast<size_t>(item)] +=
          options_.policy_learning_rate * advantage /
          static_cast<double>(fillers);
    }
  }

  // Final profile: the top-propensity items.
  std::vector<int64_t> ranked(logits.size());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(), [&](int64_t a, int64_t b) {
    return logits[static_cast<size_t>(a)] > logits[static_cast<size_t>(b)];
  });
  for (int64_t fake : fakes) {
    int64_t taken = 0;
    for (int64_t item : ranked) {
      if (taken >= fillers) break;
      if (item == demo.target_item) continue;
      plan.actions.push_back(
          {ActionType::kRating, fake, item, SampleRating(dist, rng)});
      ++taken;
    }
  }
  plan.ApplyTo(world);
  return plan;
}

}  // namespace msopds
