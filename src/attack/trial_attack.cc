#include "attack/trial_attack.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "attack/baselines.h"
#include "tensor/grad.h"
#include "tensor/optim.h"
#include "util/logging.h"

namespace msopds {
namespace {

struct ItemStats {
  std::vector<double> mean;
  std::vector<double> stddev;
};

ItemStats FitItemStats(const Dataset& world) {
  ItemStats stats;
  stats.mean.assign(static_cast<size_t>(world.num_items), 0.0);
  stats.stddev.assign(static_cast<size_t>(world.num_items), 1.0);
  std::vector<int64_t> count(static_cast<size_t>(world.num_items), 0);
  for (const Rating& r : world.ratings) {
    stats.mean[static_cast<size_t>(r.item)] += r.value;
    ++count[static_cast<size_t>(r.item)];
  }
  const RatingDistribution global = FitRatingDistribution(world);
  std::vector<double> sq(static_cast<size_t>(world.num_items), 0.0);
  for (int64_t i = 0; i < world.num_items; ++i) {
    if (count[static_cast<size_t>(i)] > 0) {
      stats.mean[static_cast<size_t>(i)] /=
          static_cast<double>(count[static_cast<size_t>(i)]);
    } else {
      stats.mean[static_cast<size_t>(i)] = global.mean;
    }
  }
  for (const Rating& r : world.ratings) {
    const double d = r.value - stats.mean[static_cast<size_t>(r.item)];
    sq[static_cast<size_t>(r.item)] += d * d;
  }
  for (int64_t i = 0; i < world.num_items; ++i) {
    if (count[static_cast<size_t>(i)] > 1) {
      stats.stddev[static_cast<size_t>(i)] = std::max(
          0.3, std::sqrt(sq[static_cast<size_t>(i)] /
                         static_cast<double>(count[static_cast<size_t>(i)])));
    } else {
      stats.stddev[static_cast<size_t>(i)] = std::max(0.3, global.stddev);
    }
  }
  return stats;
}

double DotTensors(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (int64_t j = 0; j < a[i].size(); ++j) {
      total += a[i].data()[j] * b[i].data()[j];
    }
  }
  return total;
}

}  // namespace

TrialAttack::TrialAttack(TrialOptions options) : options_(options) {}

PoisonPlan TrialAttack::Execute(Dataset* world, const Demographics& demo,
                                const AttackBudget& budget, Rng* rng) {
  const int64_t num_real_users = world->num_users;
  auto [fakes, plan] = InjectFakeUsers(world, demo, budget);

  // --- Influence module: train an MF surrogate on the current world. ---
  double mean = 3.0;
  if (!world->ratings.empty()) {
    mean = 0.0;
    for (const Rating& r : world->ratings) mean += r.value;
    mean /= static_cast<double>(world->ratings.size());
  }
  MfParams surrogate = MakeMfParams(world->num_users, world->num_items,
                                    options_.mf, mean, rng);
  std::vector<Variable> leaves = surrogate.AsVector();
  {
    std::vector<int64_t> users, items;
    Tensor targets({static_cast<int64_t>(world->ratings.size())});
    for (size_t k = 0; k < world->ratings.size(); ++k) {
      users.push_back(world->ratings[k].user);
      items.push_back(world->ratings[k].item);
      targets.at(static_cast<int64_t>(k)) = world->ratings[k].value;
    }
    const IndexVec ui = MakeIndex(std::move(users));
    const IndexVec ii = MakeIndex(std::move(items));
    Adam optimizer(options_.surrogate_learning_rate);
    for (int epoch = 0; epoch < options_.surrogate_epochs; ++epoch) {
      Variable loss = MfLoss(surrogate, ui, ii, Constant(targets.Clone()),
                             options_.mf.l2);
      optimizer.Step(&leaves, GradValues(loss, leaves));
    }
  }
  surrogate.user_factors = leaves[0];
  surrogate.item_factors = leaves[1];
  surrogate.user_bias = leaves[2];
  surrogate.item_bias = leaves[3];

  // Gradient of the injection objective w.r.t. surrogate parameters.
  std::vector<Tensor> ia_gradient;
  {
    std::vector<int64_t> users(static_cast<size_t>(num_real_users));
    std::iota(users.begin(), users.end(), 0);
    std::vector<int64_t> items(users.size(), demo.target_item);
    Variable loss = Neg(
        Mean(MfPredict(surrogate, MakeIndex(std::move(users)),
                       MakeIndex(std::move(items)))));
    ia_gradient = GradValues(loss, leaves);
  }

  // --- Generator + discriminator: candidate profiles per fake account. ---
  const ItemStats stats = FitItemStats(*world);
  const int64_t fillers =
      std::min<int64_t>(budget.filler_items_per_fake, world->num_items - 1);

  for (int64_t fake : fakes) {
    double best_score = -1e300;
    std::vector<std::pair<int64_t, double>> best_profile;
    for (int candidate = 0; candidate < options_.candidates_per_fake;
         ++candidate) {
      // Generator: sample items uniformly, values near per-item means.
      std::vector<std::pair<int64_t, double>> profile;
      double realism = 0.0;
      for (int64_t item : rng->SampleWithoutReplacement(
               world->num_items, std::min(fillers, world->num_items))) {
        if (item == demo.target_item) continue;
        const double sigma = stats.stddev[static_cast<size_t>(item)];
        const double value = std::round(std::min(
            kMaxRating,
            std::max(kMinRating,
                     rng->Normal(stats.mean[static_cast<size_t>(item)],
                                 sigma))));
        profile.emplace_back(item, value);
        const double z =
            (value - stats.mean[static_cast<size_t>(item)]) / sigma;
        realism -= 0.5 * z * z;
      }
      if (profile.empty()) continue;
      realism /= static_cast<double>(profile.size());

      // Influence: an SGD step on this profile's loss moves the injection
      // objective by -eta * <grad L_profile, grad L_IA>; larger dot means
      // the profile helps the attack more.
      std::vector<int64_t> users, items;
      Tensor targets({static_cast<int64_t>(profile.size())});
      for (size_t k = 0; k < profile.size(); ++k) {
        users.push_back(fake);
        items.push_back(profile[k].first);
        targets.at(static_cast<int64_t>(k)) = profile[k].second;
      }
      Variable profile_loss =
          MfLoss(surrogate, MakeIndex(std::move(users)),
                 MakeIndex(std::move(items)), Constant(std::move(targets)),
                 /*l2=*/0.0);
      const std::vector<Tensor> profile_gradient =
          GradValues(profile_loss, leaves);
      const double influence = DotTensors(profile_gradient, ia_gradient);

      const double score = influence + options_.realism_weight * realism;
      if (score > best_score) {
        best_score = score;
        best_profile = std::move(profile);
      }
    }
    for (const auto& [item, value] : best_profile) {
      plan.actions.push_back({ActionType::kRating, fake, item, value});
    }
  }
  plan.ApplyTo(world);
  return plan;
}

}  // namespace msopds
