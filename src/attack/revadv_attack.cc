#include "attack/revadv_attack.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "attack/baselines.h"
#include "util/logging.h"

namespace msopds {

UnrolledMfOptions RevAdvAttack::DefaultOptions() {
  UnrolledMfOptions options;
  options.unroll_steps = 5;
  options.outer_iterations = 12;
  options.outer_learning_rate = 0.4;
  options.refresh_every = 4;  // "revisit" the lower-level solution
  return options;
}

RevAdvAttack::RevAdvAttack(UnrolledMfOptions options) : options_(options) {}

PoisonPlan RevAdvAttack::Execute(Dataset* world, const Demographics& demo,
                                 const AttackBudget& budget, Rng* rng) {
  const int64_t num_real_users = world->num_users;
  auto [fakes, plan] = InjectFakeUsers(world, demo, budget);

  // Popularity-biased filler choice: fake profiles look like real ones.
  const std::vector<int64_t> counts = world->ItemRatingCounts();
  std::vector<double> cumulative(static_cast<size_t>(world->num_items), 0.0);
  double total = 0.0;
  for (int64_t i = 0; i < world->num_items; ++i) {
    total += static_cast<double>(counts[static_cast<size_t>(i)]) + 1.0;
    cumulative[static_cast<size_t>(i)] = total;
  }
  auto sample_item = [&](Rng* r) {
    const double u = r->Uniform(0.0, total);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<int64_t>(it - cumulative.begin());
  };

  std::vector<std::pair<int64_t, int64_t>> fake_pairs;
  for (int64_t fake : fakes) {
    std::unordered_set<int64_t> chosen;
    const int64_t want =
        std::min<int64_t>(budget.filler_items_per_fake, world->num_items - 1);
    int64_t guard = 0;
    while (static_cast<int64_t>(chosen.size()) < want &&
           guard++ < want * 50) {
      const int64_t item = sample_item(rng);
      if (item == demo.target_item) continue;
      if (chosen.insert(item).second) fake_pairs.emplace_back(fake, item);
    }
  }
  if (fake_pairs.empty()) {
    plan.ApplyTo(world);
    return plan;
  }

  const RatingDistribution dist = FitRatingDistribution(*world);
  Tensor init({static_cast<int64_t>(fake_pairs.size())});
  for (int64_t i = 0; i < init.size(); ++i)
    init.at(i) = SampleRating(dist, rng);

  const Tensor optimized = OptimizeFakeRatings(
      *world, demo, fake_pairs, init, num_real_users, options_, rng);

  for (size_t i = 0; i < fake_pairs.size(); ++i) {
    plan.actions.push_back(
        {ActionType::kRating, fake_pairs[i].first, fake_pairs[i].second,
         std::round(optimized.at(static_cast<int64_t>(i)))});
  }
  plan.ApplyTo(world);
  return plan;
}

}  // namespace msopds
