#ifndef MSOPDS_RECSYS_HET_RECSYS_H_
#define MSOPDS_RECSYS_HET_RECSYS_H_

#include <vector>

#include "data/dataset.h"
#include "recsys/rating_model.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace msopds {

/// Hyperparameters of the heterogeneous GNN recommender.
struct HetRecSysConfig {
  int64_t embedding_dim = 16;
  double init_stddev = 0.1;
  /// L2 regularization strength (lambda of paper Eq. (1)).
  double l2 = 1e-4;
  /// ConsisRec-style consistency attention over neighbors; when false,
  /// falls back to degree-normalized mean aggregation.
  bool use_attention = true;
  /// Graph-convolution layers ("iteratively computes the embeddings");
  /// each layer has its own projection matrices.
  int num_layers = 1;
  /// Apply tanh between layers (identity when false; the final layer is
  /// always linear so predictions keep full range).
  bool tanh_between_layers = false;
  /// Predictions are offset + <h_u, h_i>; offsetting at mid-scale makes
  /// early training stable on 1..5 ratings.
  double prediction_offset = 3.0;
};

/// The threat (victim) Het-RecSys: a ConsisRec-like GNN (paper §VI-A1).
///
/// It learns one embedding per user and item, aggregates first-hop
/// neighbors on the social network G_U and the item graph G_I with a
/// consistency attention (softmax over scaled embedding dot products),
/// projects [self ⊕ aggregate] to the final embeddings, and predicts
/// ratings by dot product. Trained with MSE + L2 per paper Eq. (1).
class HetRecSys : public RatingModel {
 public:
  /// Captures graph structure from `dataset` (edges are copied; later
  /// mutation of `dataset` does not affect the model).
  HetRecSys(const Dataset& dataset, const HetRecSysConfig& config, Rng* rng);

  std::vector<Variable>* MutableParams() override { return &params_; }
  Variable TrainingLoss(const std::vector<Rating>& ratings) override;
  Tensor PredictPairs(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items) override;

  /// Final post-convolution embeddings (one Forward() pass) with the
  /// prediction offset; no per-user/item biases.
  ServingParams ExportServingParams() override;

  const HetRecSysConfig& config() const { return config_; }
  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }

 private:
  struct FinalEmbeddings {
    Variable users;  // [U, D]
    Variable items;  // [I, D]
  };

  /// One full graph-convolution pass with current parameters.
  FinalEmbeddings Forward() const;

  /// Aggregated neighbor features for one graph.
  Variable Aggregate(const Variable& features, const IndexVec& dst,
                     const IndexVec& src, int64_t num_nodes) const;

  HetRecSysConfig config_;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  // params_[0] = user embeddings, [1] = item embeddings, then per layer
  // l: [2 + 2l] = W_U^l, [3 + 2l] = W_I^l.
  std::vector<Variable> params_;
  IndexVec social_dst_;
  IndexVec social_src_;
  IndexVec item_dst_;
  IndexVec item_src_;
};

}  // namespace msopds

#endif  // MSOPDS_RECSYS_HET_RECSYS_H_
