#ifndef MSOPDS_RECSYS_EMBEDDING_H_
#define MSOPDS_RECSYS_EMBEDDING_H_

#include "tensor/variable.h"
#include "util/rng.h"

namespace msopds {

/// Creates an [count, dim] embedding table initialized N(0, stddev^2) as a
/// trainable leaf Variable.
Variable MakeEmbedding(int64_t count, int64_t dim, double stddev, Rng* rng);

/// Creates a [rows, cols] dense projection matrix with Glorot-style
/// initialization as a trainable leaf Variable.
Variable MakeProjection(int64_t rows, int64_t cols, Rng* rng);

}  // namespace msopds

#endif  // MSOPDS_RECSYS_EMBEDDING_H_
