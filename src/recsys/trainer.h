#ifndef MSOPDS_RECSYS_TRAINER_H_
#define MSOPDS_RECSYS_TRAINER_H_

#include <string>
#include <vector>

#include "recsys/rating_model.h"
#include "util/health.h"

namespace msopds {

/// Optimizer choice for full-batch training.
enum class OptimizerKind { kAdam, kSgd };

/// Training options (paper Eq. (1): minimize MSE + L2 to convergence).
struct TrainOptions {
  int epochs = 60;
  double learning_rate = 0.05;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double momentum = 0.9;  // only for kSgd
  /// Mini-batch size; 0 trains full-batch (the default — the victim
  /// models here are small enough that full-batch is both faster and
  /// deterministic). Batches are re-shuffled each epoch from
  /// `shuffle_seed`.
  int batch_size = 0;
  uint64_t shuffle_seed = 1;
  /// Log loss every `log_every` epochs (0 = silent).
  int log_every = 0;
  /// Kernel thread count for this run: > 0 resizes the global ThreadPool
  /// before training (overriding MSOPDS_THREADS); 0 leaves the pool
  /// untouched. Results are bit-identical at any setting — the parallel
  /// runtime's determinism contract (DESIGN.md "Parallel runtime").
  int num_threads = 0;
  /// Full-batch runs rebuild the same loss+backward tape every epoch, so
  /// epoch 0 compiles it (tensor/compile.h): the allocation timeline is
  /// recorded and every temporary gets a planned slab offset; later
  /// epochs replay the plan with zero arena traffic. Bit-identical to
  /// the eager path — the plan changes where buffers live, never what is
  /// computed (DESIGN.md §14). Ignored for mini-batch runs (the last
  /// partial batch changes the tape shape every epoch).
  bool compile_tape = true;

  // --- Resilience (numerical-health guard + retry policy) ---
  /// Scan every epoch's loss and gradients for NaN/inf and watch the
  /// loss for divergence. An unhealthy epoch is rolled back (parameters
  /// restored to their pre-epoch values) and retried with the learning
  /// rate multiplied by `retry_decay` — exponential backoff across
  /// retries — up to `max_retries` times per run. The guard changes
  /// nothing on a healthy run: the update sequence is identical.
  bool guard_numerics = true;
  int max_retries = 3;
  double retry_decay = 0.5;
  DivergenceOptions divergence;
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<double> loss_history;
  double final_loss = 0.0;

  /// Epochs rolled back and retried by the numerical-health guard.
  int retries = 0;
  /// Unhealthy epochs observed (non-finite loss/gradients or divergence),
  /// including the final one when the retry budget ran out.
  int fault_events = 0;
  /// False when the retry budget was exhausted; the model then holds the
  /// last healthy parameters (training stopped early) and `failure`
  /// describes the terminal event.
  bool healthy = true;
  std::string failure;
};

/// Full-batch first-order training of any RatingModel. This is the
/// *victim* training path: gradients are detached each step (no unrolled
/// graph), unlike the PDS surrogate's recorded inner loop. With
/// guard_numerics set (the default) a NaN injected into any step — real
/// or via FaultInjector — can never reach the returned parameters: the
/// epoch is rolled back and retried at a lower learning rate, and
/// exhaustion is reported in the TrainResult instead of returning NaNs.
TrainResult TrainModel(RatingModel* model, const std::vector<Rating>& ratings,
                       const TrainOptions& options = {});

}  // namespace msopds

#endif  // MSOPDS_RECSYS_TRAINER_H_
