#ifndef MSOPDS_RECSYS_TRAINER_H_
#define MSOPDS_RECSYS_TRAINER_H_

#include <vector>

#include "recsys/rating_model.h"

namespace msopds {

/// Optimizer choice for full-batch training.
enum class OptimizerKind { kAdam, kSgd };

/// Training options (paper Eq. (1): minimize MSE + L2 to convergence).
struct TrainOptions {
  int epochs = 60;
  double learning_rate = 0.05;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  double momentum = 0.9;  // only for kSgd
  /// Mini-batch size; 0 trains full-batch (the default — the victim
  /// models here are small enough that full-batch is both faster and
  /// deterministic). Batches are re-shuffled each epoch from
  /// `shuffle_seed`.
  int batch_size = 0;
  uint64_t shuffle_seed = 1;
  /// Log loss every `log_every` epochs (0 = silent).
  int log_every = 0;
};

/// Outcome of a training run.
struct TrainResult {
  std::vector<double> loss_history;
  double final_loss = 0.0;
};

/// Full-batch first-order training of any RatingModel. This is the
/// *victim* training path: gradients are detached each step (no unrolled
/// graph), unlike the PDS surrogate's recorded inner loop.
TrainResult TrainModel(RatingModel* model, const std::vector<Rating>& ratings,
                       const TrainOptions& options = {});

}  // namespace msopds

#endif  // MSOPDS_RECSYS_TRAINER_H_
