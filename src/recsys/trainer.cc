#include "recsys/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "tensor/compile.h"
#include "tensor/grad.h"
#include "tensor/optim.h"
#include "util/arena.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace msopds {
namespace {

std::unique_ptr<Optimizer> MakeOptimizer(const TrainOptions& options,
                                         double learning_rate) {
  if (options.optimizer == OptimizerKind::kAdam) {
    return std::make_unique<Adam>(learning_rate);
  }
  return std::make_unique<Sgd>(learning_rate, options.momentum);
}

}  // namespace

TrainResult TrainModel(RatingModel* model, const std::vector<Rating>& ratings,
                       const TrainOptions& options) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK_GT(options.epochs, 0);
  MSOPDS_CHECK_GE(options.batch_size, 0);
  MSOPDS_CHECK_GE(options.max_retries, 0);
  MSOPDS_CHECK_GT(options.retry_decay, 0.0);
  MSOPDS_CHECK_GE(options.num_threads, 0);
  if (options.num_threads > 0) {
    ThreadPool::Global().SetNumThreads(options.num_threads);
  }

  // One arena region per training run: per-epoch tape buffers recycle
  // through the free lists and are trimmed in bulk when training ends.
  ArenaRegion region;

  double learning_rate = options.learning_rate;
  std::unique_ptr<Optimizer> optimizer = MakeOptimizer(options, learning_rate);

  Rng shuffle_rng(options.shuffle_seed);
  std::vector<Rating> shuffled = ratings;

  std::vector<Variable>* params = model->MutableParams();
  FaultInjector& faults = FaultInjector::Global();
  DivergenceDetector detector(options.divergence);
  int retries_left = options.max_retries;

  TrainResult result;
  result.loss_history.reserve(static_cast<size_t>(options.epochs));

  // Full-batch epochs all build the same tape; compile it on the first
  // epoch and replay the planned slab afterwards. The epoch-0 compile IS
  // the epoch-0 eager run (its captured outputs are used directly), and
  // replays are bit-identical to eager epochs, so the flag changes no
  // numbers. Health rollbacks and retries replay the same tape; if a
  // replay ever diverges from the recorded allocation sequence it falls
  // back to the arena for that run (CompiledTape contract).
  std::shared_ptr<CompiledTape> tape;
  double step_loss = 0.0;
  std::vector<Tensor> step_grads;
  auto build_step = [&]() -> Variable {
    Variable loss = model->TrainingLoss(ratings);
    step_loss = loss.value().item();
    step_grads = GradValues(loss, *params);
    return loss;
  };

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Pre-epoch snapshot so an unhealthy epoch can be rolled back; a NaN
    // that slips into the parameters is unrecoverable otherwise.
    std::vector<Tensor> snapshot;
    if (options.guard_numerics) {
      snapshot.reserve(params->size());
      for (const Variable& param : *params) {
        snapshot.push_back(param.value().Clone());
      }
    }

    Health health = Health::kHealthy;
    double epoch_loss = 0.0;
    if (options.batch_size == 0 ||
        options.batch_size >= static_cast<int>(ratings.size())) {
      if (!options.compile_tape) {
        Variable root = build_step();
      } else if (tape == nullptr) {
        tape = CompiledTape::Compile(build_step);
      } else {
        tape->Replay(build_step);
      }
      epoch_loss = step_loss;
      // The gradient tensors live in the tape's slab when replayed; the
      // fault hook and optimizer only read them (or mutate in place)
      // before the next replay overwrites them, so no copy is needed.
      faults.MaybeCorruptTrainerGradients(&step_grads);
      if (options.guard_numerics &&
          (!std::isfinite(epoch_loss) || !AllFinite(step_grads))) {
        health = Health::kNonFinite;
      } else {
        optimizer->Step(params, step_grads);
      }
    } else {
      shuffle_rng.Shuffle(&shuffled);
      int batches = 0;
      for (size_t start = 0; start < shuffled.size();
           start += static_cast<size_t>(options.batch_size)) {
        const size_t end = std::min(
            shuffled.size(), start + static_cast<size_t>(options.batch_size));
        const std::vector<Rating> batch(shuffled.begin() + start,
                                        shuffled.begin() + end);
        Variable loss = model->TrainingLoss(batch);
        const double batch_loss = loss.value().item();
        epoch_loss += batch_loss;
        ++batches;
        std::vector<Tensor> grads = GradValues(loss, *params);
        faults.MaybeCorruptTrainerGradients(&grads);
        if (options.guard_numerics &&
            (!std::isfinite(batch_loss) || !AllFinite(grads))) {
          health = Health::kNonFinite;
          break;
        }
        optimizer->Step(params, grads);
      }
      epoch_loss /= std::max(1, batches);
    }
    if (options.guard_numerics && health == Health::kHealthy) {
      health = detector.Observe(epoch_loss);
    }

    if (health != Health::kHealthy) {
      ++result.fault_events;
      for (size_t i = 0; i < snapshot.size(); ++i) {
        (*params)[i].mutable_value() = snapshot[i].Clone();
      }
      if (retries_left == 0) {
        result.healthy = false;
        result.failure = StrFormat(
            "epoch %d %s after %d retries (learning rate %.3g)", epoch,
            HealthToString(health).c_str(), result.retries, learning_rate);
        MSOPDS_LOG(Warning) << "TrainModel giving up: " << result.failure;
        break;
      }
      --retries_left;
      ++result.retries;
      learning_rate *= options.retry_decay;
      optimizer = MakeOptimizer(options, learning_rate);
      detector.Reset();
      MSOPDS_LOG(Warning) << "TrainModel epoch " << epoch << " "
                          << HealthToString(health)
                          << "; retrying with learning rate " << learning_rate;
      --epoch;  // retry the same epoch at the decayed learning rate
      continue;
    }

    result.loss_history.push_back(epoch_loss);
    if (options.log_every > 0 && (epoch + 1) % options.log_every == 0) {
      MSOPDS_LOG(Info) << "epoch " << (epoch + 1) << " loss " << epoch_loss;
    }
  }
  Variable final_loss = model->TrainingLoss(ratings);
  result.final_loss = final_loss.value().item();
  // Even with the guard off, a non-finite model must never be reported
  // as healthy (the "no silent NaN" contract).
  if (!std::isfinite(result.final_loss) && result.healthy) {
    result.healthy = false;
    result.failure = "non-finite final loss";
  }
  return result;
}

}  // namespace msopds
