#include "recsys/trainer.h"

#include <algorithm>
#include <memory>

#include "tensor/grad.h"
#include "tensor/optim.h"
#include "util/logging.h"
#include "util/rng.h"

namespace msopds {

TrainResult TrainModel(RatingModel* model, const std::vector<Rating>& ratings,
                       const TrainOptions& options) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK_GT(options.epochs, 0);
  MSOPDS_CHECK_GE(options.batch_size, 0);

  std::unique_ptr<Optimizer> optimizer;
  if (options.optimizer == OptimizerKind::kAdam) {
    optimizer = std::make_unique<Adam>(options.learning_rate);
  } else {
    optimizer =
        std::make_unique<Sgd>(options.learning_rate, options.momentum);
  }

  Rng shuffle_rng(options.shuffle_seed);
  std::vector<Rating> shuffled = ratings;

  std::vector<Variable>* params = model->MutableParams();
  TrainResult result;
  result.loss_history.reserve(static_cast<size_t>(options.epochs));
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    if (options.batch_size == 0 ||
        options.batch_size >= static_cast<int>(ratings.size())) {
      Variable loss = model->TrainingLoss(ratings);
      epoch_loss = loss.value().item();
      optimizer->Step(params, GradValues(loss, *params));
    } else {
      shuffle_rng.Shuffle(&shuffled);
      int batches = 0;
      for (size_t start = 0; start < shuffled.size();
           start += static_cast<size_t>(options.batch_size)) {
        const size_t end = std::min(
            shuffled.size(), start + static_cast<size_t>(options.batch_size));
        const std::vector<Rating> batch(shuffled.begin() + start,
                                        shuffled.begin() + end);
        Variable loss = model->TrainingLoss(batch);
        epoch_loss += loss.value().item();
        ++batches;
        optimizer->Step(params, GradValues(loss, *params));
      }
      epoch_loss /= std::max(1, batches);
    }
    result.loss_history.push_back(epoch_loss);
    if (options.log_every > 0 && (epoch + 1) % options.log_every == 0) {
      MSOPDS_LOG(Info) << "epoch " << (epoch + 1) << " loss " << epoch_loss;
    }
  }
  Variable final_loss = model->TrainingLoss(ratings);
  result.final_loss = final_loss.value().item();
  return result;
}

}  // namespace msopds
