#ifndef MSOPDS_RECSYS_RATING_MODEL_H_
#define MSOPDS_RECSYS_RATING_MODEL_H_

#include <vector>

#include "data/dataset.h"
#include "tensor/variable.h"

namespace msopds {

/// Dense scoring view of a trained model, sufficient to reproduce
/// PredictPairs for any (user, item) pair as
///
///   (((<user_factors[u], item_factors[i]>  (fixed 4-lane order over D,
///      + user_bias[u])                      simd::Dot — DESIGN.md §14)
///     + item_bias[i])                      (each bias skipped when
///    + offset)                              undefined)
///
/// with each partial sum associating exactly as the model's recorded op
/// sequence (PairDot = RowSum of stored products — the same 4-lane
/// reduction as simd::Dot — then Add / AddScalar), so a scorer that
/// follows this recipe is bit-identical to PredictPairs.
/// For factorization models these are the parameter tables themselves;
/// for the GNNs they are the *final* embeddings after the forward pass
/// (the graph convolutions are baked in at export time). The Tensors may
/// alias live training buffers — serving snapshots deep-copy them
/// (serve/model_snapshot.h).
///
/// The export is always full binary64 precision; quantized serving
/// (fp16/int8 snapshots, serve/quantize.h) rounds *after* this export,
/// once per publish, so every model feeds the quantizer through this one
/// interface and the bit-identical-to-PredictPairs recipe above stays
/// scoped to full-precision snapshots.
struct ServingParams {
  Tensor user_factors;  // [U, D]
  Tensor item_factors;  // [I, D]
  Tensor user_bias;     // [U]; undefined when the model has no user bias
  Tensor item_bias;     // [I]; undefined when the model has no item bias
  double offset = 0.0;
};

/// Interface of a trainable rating predictor (paper Eq. (1)): both the
/// Het-RecSys victim and the basic matrix-factorization model implement
/// it, so the Trainer and the evaluation metrics are model-agnostic.
class RatingModel {
 public:
  virtual ~RatingModel() = default;

  /// Trainable leaf parameters (theta). The Trainer mutates them in place.
  virtual std::vector<Variable>* MutableParams() = 0;

  /// Full training objective on `ratings` including regularization; the
  /// returned Variable carries the graph for backprop.
  virtual Variable TrainingLoss(const std::vector<Rating>& ratings) = 0;

  /// Predicted ratings for aligned (users[k], items[k]) pairs.
  virtual Tensor PredictPairs(const std::vector<int64_t>& users,
                              const std::vector<int64_t>& items) = 0;

  /// Dense view of the current parameters for the serving layer. The
  /// default CHECK-fails; every shipped model overrides it.
  virtual ServingParams ExportServingParams();
};

}  // namespace msopds

#endif  // MSOPDS_RECSYS_RATING_MODEL_H_
