#ifndef MSOPDS_RECSYS_RATING_MODEL_H_
#define MSOPDS_RECSYS_RATING_MODEL_H_

#include <vector>

#include "data/dataset.h"
#include "tensor/variable.h"

namespace msopds {

/// Interface of a trainable rating predictor (paper Eq. (1)): both the
/// Het-RecSys victim and the basic matrix-factorization model implement
/// it, so the Trainer and the evaluation metrics are model-agnostic.
class RatingModel {
 public:
  virtual ~RatingModel() = default;

  /// Trainable leaf parameters (theta). The Trainer mutates them in place.
  virtual std::vector<Variable>* MutableParams() = 0;

  /// Full training objective on `ratings` including regularization; the
  /// returned Variable carries the graph for backprop.
  virtual Variable TrainingLoss(const std::vector<Rating>& ratings) = 0;

  /// Predicted ratings for aligned (users[k], items[k]) pairs.
  virtual Tensor PredictPairs(const std::vector<int64_t>& users,
                              const std::vector<int64_t>& items) = 0;
};

}  // namespace msopds

#endif  // MSOPDS_RECSYS_RATING_MODEL_H_
