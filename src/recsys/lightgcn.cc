#include "recsys/lightgcn.h"

#include <cmath>

#include "recsys/embedding.h"
#include "util/logging.h"

namespace msopds {

LightGcn::LightGcn(const Dataset& dataset, const LightGcnConfig& config,
                   Rng* rng)
    : config_(config),
      num_users_(dataset.num_users),
      num_items_(dataset.num_items) {
  MSOPDS_CHECK(rng != nullptr);
  MSOPDS_CHECK_GE(config.num_layers, 0);
  const Status status = dataset.Validate();
  MSOPDS_CHECK(status.ok()) << status.ToString();

  params_.push_back(MakeEmbedding(num_users_, config.embedding_dim,
                                  config.init_stddev, rng));
  params_.push_back(MakeEmbedding(num_items_, config.embedding_dim,
                                  config.init_stddev, rng));

  // Interaction degrees.
  std::vector<int64_t> user_degree(static_cast<size_t>(num_users_), 0);
  std::vector<int64_t> item_degree(static_cast<size_t>(num_items_), 0);
  for (const Rating& r : dataset.ratings) {
    ++user_degree[static_cast<size_t>(r.user)];
    ++item_degree[static_cast<size_t>(r.item)];
  }

  std::vector<int64_t> ui_dst, ui_src, iu_dst, iu_src;
  std::vector<double> ui_w, iu_w;
  for (const Rating& r : dataset.ratings) {
    const double norm =
        1.0 / std::sqrt(static_cast<double>(
                            user_degree[static_cast<size_t>(r.user)]) *
                        static_cast<double>(
                            item_degree[static_cast<size_t>(r.item)]));
    ui_dst.push_back(r.user);
    ui_src.push_back(r.item);
    ui_w.push_back(norm);
    iu_dst.push_back(r.item);
    iu_src.push_back(r.user);
    iu_w.push_back(norm);
  }
  ui_dst_ = MakeIndex(std::move(ui_dst));
  ui_src_ = MakeIndex(std::move(ui_src));
  ui_weight_ = Tensor::FromVector(std::move(ui_w));
  iu_dst_ = MakeIndex(std::move(iu_dst));
  iu_src_ = MakeIndex(std::move(iu_src));
  iu_weight_ = Tensor::FromVector(std::move(iu_w));

  std::vector<int64_t> s_dst, s_src;
  dataset.social.AppendDirectedEdges(&s_dst, &s_src);
  std::vector<double> s_w(s_dst.size(), 0.0);
  for (size_t e = 0; e < s_dst.size(); ++e) {
    s_w[e] = 1.0 / static_cast<double>(dataset.social.Degree(s_dst[e]));
  }
  social_dst_ = MakeIndex(std::move(s_dst));
  social_src_ = MakeIndex(std::move(s_src));
  social_weight_ = Tensor::FromVector(std::move(s_w));
}

LightGcn::FinalEmbeddings LightGcn::Forward() const {
  Variable user_layer = params_[0];
  Variable item_layer = params_[1];
  Variable user_sum = user_layer;
  Variable item_sum = item_layer;

  for (int layer = 0; layer < config_.num_layers; ++layer) {
    Variable next_user =
        ui_weight_.size() > 0
            ? SpMM(ui_dst_, ui_src_, Constant(ui_weight_.Clone()), item_layer,
                   num_users_)
            : Constant(
                  Tensor::Zeros({num_users_, config_.embedding_dim}));
    if (config_.social_weight != 0.0 && social_weight_.size() > 0) {
      Variable social = SpMM(social_dst_, social_src_,
                             Constant(social_weight_.Clone()), user_layer,
                             num_users_);
      next_user = Add(next_user, ScalarMul(social, config_.social_weight));
    }
    Variable next_item =
        iu_weight_.size() > 0
            ? SpMM(iu_dst_, iu_src_, Constant(iu_weight_.Clone()), user_layer,
                   num_items_)
            : Constant(
                  Tensor::Zeros({num_items_, config_.embedding_dim}));
    user_layer = next_user;
    item_layer = next_item;
    user_sum = Add(user_sum, user_layer);
    item_sum = Add(item_sum, item_layer);
  }
  const double scale = 1.0 / static_cast<double>(config_.num_layers + 1);
  FinalEmbeddings final;
  final.users = ScalarMul(user_sum, scale);
  final.items = ScalarMul(item_sum, scale);
  return final;
}

Variable LightGcn::TrainingLoss(const std::vector<Rating>& ratings) {
  MSOPDS_CHECK(!ratings.empty());
  const FinalEmbeddings final = Forward();
  std::vector<int64_t> users, items;
  Tensor targets({static_cast<int64_t>(ratings.size())});
  for (size_t k = 0; k < ratings.size(); ++k) {
    users.push_back(ratings[k].user);
    items.push_back(ratings[k].item);
    targets.at(static_cast<int64_t>(k)) = ratings[k].value;
  }
  Variable predictions = AddScalar(
      PairDot(GatherRows(final.users, MakeIndex(std::move(users))),
              GatherRows(final.items, MakeIndex(std::move(items)))),
      config_.prediction_offset);
  Variable loss = Mean(Square(Sub(predictions, Constant(std::move(targets)))));
  if (config_.l2 > 0.0) {
    Variable reg =
        Add(SquaredNorm(params_[0]), SquaredNorm(params_[1]));
    loss = Add(loss, ScalarMul(reg, config_.l2));
  }
  return loss;
}

Tensor LightGcn::PredictPairs(const std::vector<int64_t>& users,
                              const std::vector<int64_t>& items) {
  MSOPDS_CHECK_EQ(users.size(), items.size());
  if (users.empty()) return Tensor::Zeros({0});
  const FinalEmbeddings final = Forward();
  return AddScalar(PairDot(GatherRows(final.users, MakeIndex(users)),
                           GatherRows(final.items, MakeIndex(items))),
                   config_.prediction_offset)
      .value();
}

ServingParams LightGcn::ExportServingParams() {
  const FinalEmbeddings final = Forward();
  ServingParams out;
  out.user_factors = final.users.value();
  out.item_factors = final.items.value();
  out.offset = config_.prediction_offset;
  return out;
}

}  // namespace msopds
