#include "recsys/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace msopds {
namespace {

double Clamp(double value) {
  return std::min(kMaxRating, std::max(kMinRating, value));
}

}  // namespace

double AverageTargetRating(RatingModel* model,
                           const std::vector<int64_t>& audience,
                           int64_t target_item) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK(!audience.empty());
  const std::vector<int64_t> items(audience.size(), target_item);
  const Tensor predictions = model->PredictPairs(audience, items);
  double total = 0.0;
  for (int64_t i = 0; i < predictions.size(); ++i) {
    total += Clamp(predictions.at(i));
  }
  return total / static_cast<double>(predictions.size());
}

double HitRateAtK(RatingModel* model, const std::vector<int64_t>& audience,
                  int64_t target_item, const std::vector<int64_t>& compete,
                  int k) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK(!audience.empty());
  MSOPDS_CHECK_GT(k, 0);

  // One batched prediction call: for each user, target then competitors.
  const int64_t block = 1 + static_cast<int64_t>(compete.size());
  std::vector<int64_t> users, items;
  users.reserve(audience.size() * static_cast<size_t>(block));
  items.reserve(users.capacity());
  for (int64_t user : audience) {
    users.insert(users.end(), static_cast<size_t>(block), user);
    items.push_back(target_item);
    items.insert(items.end(), compete.begin(), compete.end());
  }
  const Tensor predictions = model->PredictPairs(users, items);

  int64_t hits = 0;
  for (size_t a = 0; a < audience.size(); ++a) {
    const int64_t offset = static_cast<int64_t>(a) * block;
    const double target_score = predictions.at(offset);
    int better = 0;
    for (int64_t j = 1; j < block; ++j) {
      if (predictions.at(offset + j) > target_score) ++better;
    }
    if (better < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(audience.size());
}

namespace {

// Target rank per audience member (1 = best; ties favor the target),
// shared by the rank-based metrics.
std::vector<int> TargetRanks(RatingModel* model,
                             const std::vector<int64_t>& audience,
                             int64_t target_item,
                             const std::vector<int64_t>& compete) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK(!audience.empty());
  const int64_t block = 1 + static_cast<int64_t>(compete.size());
  std::vector<int64_t> users, items;
  users.reserve(audience.size() * static_cast<size_t>(block));
  items.reserve(users.capacity());
  for (int64_t user : audience) {
    users.insert(users.end(), static_cast<size_t>(block), user);
    items.push_back(target_item);
    items.insert(items.end(), compete.begin(), compete.end());
  }
  const Tensor predictions = model->PredictPairs(users, items);
  std::vector<int> ranks;
  ranks.reserve(audience.size());
  for (size_t a = 0; a < audience.size(); ++a) {
    const int64_t offset = static_cast<int64_t>(a) * block;
    const double target_score = predictions.at(offset);
    int better = 0;
    for (int64_t j = 1; j < block; ++j) {
      if (predictions.at(offset + j) > target_score) ++better;
    }
    ranks.push_back(better + 1);
  }
  return ranks;
}

}  // namespace

double PrecisionAtK(RatingModel* model, const std::vector<int64_t>& audience,
                    int64_t target_item, const std::vector<int64_t>& compete,
                    int k) {
  MSOPDS_CHECK_GT(k, 0);
  const std::vector<int> ranks =
      TargetRanks(model, audience, target_item, compete);
  double total = 0.0;
  for (int rank : ranks) {
    if (rank <= k) total += 1.0 / static_cast<double>(k);
  }
  return total / static_cast<double>(ranks.size());
}

double NdcgAtK(RatingModel* model, const std::vector<int64_t>& audience,
               int64_t target_item, const std::vector<int64_t>& compete,
               int k) {
  MSOPDS_CHECK_GT(k, 0);
  const std::vector<int> ranks =
      TargetRanks(model, audience, target_item, compete);
  double total = 0.0;
  for (int rank : ranks) {
    if (rank <= k) {
      total += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
    }
  }
  return total / static_cast<double>(ranks.size());
}

double Rmse(RatingModel* model, const std::vector<Rating>& ratings) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK(!ratings.empty());
  std::vector<int64_t> users, items;
  users.reserve(ratings.size());
  items.reserve(ratings.size());
  for (const Rating& r : ratings) {
    users.push_back(r.user);
    items.push_back(r.item);
  }
  const Tensor predictions = model->PredictPairs(users, items);
  double total = 0.0;
  for (size_t i = 0; i < ratings.size(); ++i) {
    const double error =
        predictions.at(static_cast<int64_t>(i)) - ratings[i].value;
    total += error * error;
  }
  return std::sqrt(total / static_cast<double>(ratings.size()));
}

}  // namespace msopds
