#include "recsys/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace msopds {
namespace {

double Clamp(double value) {
  return std::min(kMaxRating, std::max(kMinRating, value));
}

}  // namespace

double AverageTargetRating(RatingModel* model,
                           const std::vector<int64_t>& audience,
                           int64_t target_item) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK(!audience.empty());
  const std::vector<int64_t> items(audience.size(), target_item);
  const Tensor predictions = model->PredictPairs(audience, items);
  double total = 0.0;
  for (int64_t i = 0; i < predictions.size(); ++i) {
    total += Clamp(predictions.at(i));
  }
  return total / static_cast<double>(predictions.size());
}

namespace {

// Target rank per audience member (1 = best; ties favor the target, the
// paper's convention) through the shared serve/topk rank primitive. One
// batched prediction call: for each user, target then competitors.
std::vector<int> TargetRanks(RatingModel* model,
                             const std::vector<int64_t>& audience,
                             int64_t target_item,
                             const std::vector<int64_t>& compete) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK(!audience.empty());
  const int64_t block = 1 + static_cast<int64_t>(compete.size());
  std::vector<int64_t> users, items;
  users.reserve(audience.size() * static_cast<size_t>(block));
  items.reserve(users.capacity());
  for (int64_t user : audience) {
    users.insert(users.end(), static_cast<size_t>(block), user);
    items.push_back(target_item);
    items.insert(items.end(), compete.begin(), compete.end());
  }
  const Tensor predictions = model->PredictPairs(users, items);
  const ConstTensorSpan scores = predictions.span();
  std::vector<int> ranks;
  ranks.reserve(audience.size());
  for (size_t a = 0; a < audience.size(); ++a) {
    const int64_t offset = static_cast<int64_t>(a) * block;
    ranks.push_back(static_cast<int>(serve::RankWithTiesFavoringCandidate(
        scores[offset], scores.begin() + offset + 1, block - 1)));
  }
  return ranks;
}

}  // namespace

double HitRateAtK(RatingModel* model, const std::vector<int64_t>& audience,
                  int64_t target_item, const std::vector<int64_t>& compete,
                  int k) {
  MSOPDS_CHECK_GT(k, 0);
  const std::vector<int> ranks =
      TargetRanks(model, audience, target_item, compete);
  int64_t hits = 0;
  for (int rank : ranks) {
    if (rank <= k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ranks.size());
}

double PrecisionAtK(RatingModel* model, const std::vector<int64_t>& audience,
                    int64_t target_item, const std::vector<int64_t>& compete,
                    int k) {
  MSOPDS_CHECK_GT(k, 0);
  const std::vector<int> ranks =
      TargetRanks(model, audience, target_item, compete);
  double total = 0.0;
  for (int rank : ranks) {
    if (rank <= k) total += 1.0 / static_cast<double>(k);
  }
  return total / static_cast<double>(ranks.size());
}

double NdcgAtK(RatingModel* model, const std::vector<int64_t>& audience,
               int64_t target_item, const std::vector<int64_t>& compete,
               int k) {
  MSOPDS_CHECK_GT(k, 0);
  const std::vector<int> ranks =
      TargetRanks(model, audience, target_item, compete);
  double total = 0.0;
  for (int rank : ranks) {
    if (rank <= k) {
      total += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
    }
  }
  return total / static_cast<double>(ranks.size());
}

double Rmse(RatingModel* model, const std::vector<Rating>& ratings) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK(!ratings.empty());
  std::vector<int64_t> users, items;
  users.reserve(ratings.size());
  items.reserve(ratings.size());
  for (const Rating& r : ratings) {
    users.push_back(r.user);
    items.push_back(r.item);
  }
  const Tensor predictions = model->PredictPairs(users, items);
  double total = 0.0;
  for (size_t i = 0; i < ratings.size(); ++i) {
    const double error =
        predictions.at(static_cast<int64_t>(i)) - ratings[i].value;
    total += error * error;
  }
  return std::sqrt(total / static_cast<double>(ratings.size()));
}

serve::TopKResult TopKItems(RatingModel* model, const Dataset& dataset,
                            const std::vector<int64_t>& users,
                            const serve::TopKOptions& options) {
  MSOPDS_CHECK(model != nullptr);
  MSOPDS_CHECK_GT(options.k, 0);
  const int64_t num_items = dataset.num_items;
  const serve::SeenItemsCsr seen = serve::SeenItemsCsr::FromRatings(
      dataset.num_users, num_items, dataset.ratings);

  std::vector<int64_t> catalog(static_cast<size_t>(num_items));
  for (int64_t i = 0; i < num_items; ++i) {
    catalog[static_cast<size_t>(i)] = i;
  }

  std::vector<std::vector<serve::ScoredItem>> per_user(users.size());
  for (size_t a = 0; a < users.size(); ++a) {
    const int64_t user = users[a];
    MSOPDS_CHECK_GE(user, 0);
    MSOPDS_CHECK_LT(user, dataset.num_users);
    // One PredictPairs call per user over the whole catalog (one forward
    // pass each for the GNN models), then the shared selection kernel.
    const std::vector<int64_t> repeated(static_cast<size_t>(num_items), user);
    const Tensor scores = model->PredictPairs(repeated, catalog);
    per_user[a] = serve::SelectTopK(
        scores.data(), num_items, options.k,
        options.exclude_seen ? seen.Row(user) : nullptr,
        options.exclude_seen ? seen.RowSize(user) : 0);
  }
  return serve::PackTopK(per_user, options.k);
}

}  // namespace msopds
