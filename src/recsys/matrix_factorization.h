#ifndef MSOPDS_RECSYS_MATRIX_FACTORIZATION_H_
#define MSOPDS_RECSYS_MATRIX_FACTORIZATION_H_

#include <vector>

#include "data/dataset.h"
#include "recsys/rating_model.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace msopds {

/// Hyperparameters of the basic matrix-factorization recommender.
struct MfConfig {
  int64_t latent_dim = 8;
  double init_stddev = 0.1;
  double l2 = 1e-4;
};

/// Functional parameter bundle so attacks can unroll MF training with
/// fresh Variables per inner step (PGA / RevAdv surrogates).
struct MfParams {
  Variable user_factors;  // [U, D]
  Variable item_factors;  // [I, D]
  Variable user_bias;     // [U]
  Variable item_bias;     // [I]
  double global_mean = 3.0;

  std::vector<Variable> AsVector() const {
    return {user_factors, item_factors, user_bias, item_bias};
  }
};

/// Fresh randomly-initialized parameters.
MfParams MakeMfParams(int64_t num_users, int64_t num_items,
                      const MfConfig& config, double global_mean, Rng* rng);

/// Predicted ratings for aligned index vectors:
/// mu + b_u + b_i + <p_u, q_i>.
Variable MfPredict(const MfParams& params, const IndexVec& users,
                   const IndexVec& items);

/// MSE over (users, items, targets) plus L2 on all four parameter blocks.
/// `targets` may be a Variable (differentiable fake ratings) or a constant.
Variable MfLoss(const MfParams& params, const IndexVec& users,
                const IndexVec& items, const Variable& targets, double l2);

/// The baseline "basic RecSys" of the paper's related work (rating records
/// only — no graphs): biased matrix factorization trained with MSE + L2.
/// Surrogate model of the PGA and RevAdv baseline attacks.
class MatrixFactorization : public RatingModel {
 public:
  MatrixFactorization(int64_t num_users, int64_t num_items,
                      const MfConfig& config, double global_mean, Rng* rng);

  std::vector<Variable>* MutableParams() override { return &params_; }
  Variable TrainingLoss(const std::vector<Rating>& ratings) override;
  Tensor PredictPairs(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items) override;

  /// Factor tables, both bias vectors, and the global mean as the offset.
  ServingParams ExportServingParams() override;

  const MfConfig& config() const { return config_; }
  double global_mean() const { return global_mean_; }

 private:
  MfParams Bundle() const;

  MfConfig config_;
  double global_mean_;
  std::vector<Variable> params_;
};

}  // namespace msopds

#endif  // MSOPDS_RECSYS_MATRIX_FACTORIZATION_H_
