#include "recsys/matrix_factorization.h"

#include "recsys/embedding.h"
#include "util/logging.h"

namespace msopds {

MfParams MakeMfParams(int64_t num_users, int64_t num_items,
                      const MfConfig& config, double global_mean, Rng* rng) {
  MfParams params;
  params.user_factors =
      MakeEmbedding(num_users, config.latent_dim, config.init_stddev, rng);
  params.item_factors =
      MakeEmbedding(num_items, config.latent_dim, config.init_stddev, rng);
  params.user_bias = Param(Tensor::Zeros({num_users}));
  params.item_bias = Param(Tensor::Zeros({num_items}));
  params.global_mean = global_mean;
  return params;
}

Variable MfPredict(const MfParams& params, const IndexVec& users,
                   const IndexVec& items) {
  Variable interaction = PairDot(GatherRows(params.user_factors, users),
                                 GatherRows(params.item_factors, items));
  Variable biased = Add(interaction, Gather1(params.user_bias, users));
  biased = Add(biased, Gather1(params.item_bias, items));
  return AddScalar(biased, params.global_mean);
}

Variable MfLoss(const MfParams& params, const IndexVec& users,
                const IndexVec& items, const Variable& targets, double l2) {
  Variable errors = Sub(MfPredict(params, users, items), targets);
  Variable loss = Mean(Square(errors));
  if (l2 > 0.0) {
    Variable reg = Add(SquaredNorm(params.user_factors),
                       SquaredNorm(params.item_factors));
    reg = Add(reg, SquaredNorm(params.user_bias));
    reg = Add(reg, SquaredNorm(params.item_bias));
    loss = Add(loss, ScalarMul(reg, l2));
  }
  return loss;
}

MatrixFactorization::MatrixFactorization(int64_t num_users, int64_t num_items,
                                         const MfConfig& config,
                                         double global_mean, Rng* rng)
    : config_(config), global_mean_(global_mean) {
  const MfParams bundle =
      MakeMfParams(num_users, num_items, config, global_mean, rng);
  params_ = bundle.AsVector();
}

MfParams MatrixFactorization::Bundle() const {
  MSOPDS_CHECK_EQ(params_.size(), 4u);
  MfParams bundle;
  bundle.user_factors = params_[0];
  bundle.item_factors = params_[1];
  bundle.user_bias = params_[2];
  bundle.item_bias = params_[3];
  bundle.global_mean = global_mean_;
  return bundle;
}

Variable MatrixFactorization::TrainingLoss(const std::vector<Rating>& ratings) {
  MSOPDS_CHECK(!ratings.empty());
  std::vector<int64_t> users, items;
  Tensor targets({static_cast<int64_t>(ratings.size())});
  users.reserve(ratings.size());
  items.reserve(ratings.size());
  for (size_t k = 0; k < ratings.size(); ++k) {
    users.push_back(ratings[k].user);
    items.push_back(ratings[k].item);
    targets.at(static_cast<int64_t>(k)) = ratings[k].value;
  }
  return MfLoss(Bundle(), MakeIndex(std::move(users)),
                MakeIndex(std::move(items)), Constant(std::move(targets)),
                config_.l2);
}

Tensor MatrixFactorization::PredictPairs(const std::vector<int64_t>& users,
                                         const std::vector<int64_t>& items) {
  MSOPDS_CHECK_EQ(users.size(), items.size());
  if (users.empty()) return Tensor::Zeros({0});
  return MfPredict(Bundle(), MakeIndex(users), MakeIndex(items)).value();
}

ServingParams MatrixFactorization::ExportServingParams() {
  const MfParams bundle = Bundle();
  ServingParams out;
  out.user_factors = bundle.user_factors.value();
  out.item_factors = bundle.item_factors.value();
  out.user_bias = bundle.user_bias.value();
  out.item_bias = bundle.item_bias.value();
  out.offset = bundle.global_mean;
  return out;
}

}  // namespace msopds
