#ifndef MSOPDS_RECSYS_LIGHTGCN_H_
#define MSOPDS_RECSYS_LIGHTGCN_H_

#include <vector>

#include "data/dataset.h"
#include "recsys/rating_model.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace msopds {

/// Hyperparameters of the LightGCN-style recommender.
struct LightGcnConfig {
  int64_t embedding_dim = 16;
  /// Propagation layers; the final embedding averages layers 0..L.
  int num_layers = 2;
  /// Weight of social-network propagation mixed into the user update
  /// (0 = pure LightGCN on the interaction graph).
  double social_weight = 0.5;
  double init_stddev = 0.1;
  double l2 = 1e-4;
  double prediction_offset = 3.0;
};

/// A second victim family: LightGCN (He et al. [68], cited by the paper
/// as a representative graph recommender), extended with optional social
/// propagation so it consumes the same heterogeneous data. Used by the
/// transfer_study example to test whether plans optimized on the PDS
/// surrogate transfer to a victim with a different architecture.
///
/// Propagation (symmetric-normalized, no feature transforms, as in
/// LightGCN):
///   e_u^{k+1} = sum_{i in N_R(u)} e_i^k / sqrt(|N_R(u)||N_R(i)|)
///              + social_weight * mean_{v in N_S(u)} e_v^k
///   e_i^{k+1} = sum_{u in N_R(i)} e_u^k / sqrt(|N_R(i)||N_R(u)|)
/// and the final embedding is the mean over layers 0..num_layers.
class LightGcn : public RatingModel {
 public:
  LightGcn(const Dataset& dataset, const LightGcnConfig& config, Rng* rng);

  std::vector<Variable>* MutableParams() override { return &params_; }
  Variable TrainingLoss(const std::vector<Rating>& ratings) override;
  Tensor PredictPairs(const std::vector<int64_t>& users,
                      const std::vector<int64_t>& items) override;

  /// Layer-averaged propagation embeddings (one Forward() pass) with the
  /// prediction offset; no per-user/item biases.
  ServingParams ExportServingParams() override;

  const LightGcnConfig& config() const { return config_; }

 private:
  struct FinalEmbeddings {
    Variable users;
    Variable items;
  };
  FinalEmbeddings Forward() const;

  LightGcnConfig config_;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  std::vector<Variable> params_;  // [0] user table, [1] item table

  // Interaction graph, both directions, with 1/sqrt(du*di) weights.
  IndexVec ui_dst_;  // user <- item
  IndexVec ui_src_;
  Tensor ui_weight_;
  IndexVec iu_dst_;  // item <- user
  IndexVec iu_src_;
  Tensor iu_weight_;
  // Social graph (degree-normalized mean).
  IndexVec social_dst_;
  IndexVec social_src_;
  Tensor social_weight_;
};

}  // namespace msopds

#endif  // MSOPDS_RECSYS_LIGHTGCN_H_
