#include "recsys/embedding.h"

#include <cmath>

#include "util/logging.h"

namespace msopds {

Variable MakeEmbedding(int64_t count, int64_t dim, double stddev, Rng* rng) {
  MSOPDS_CHECK_GT(count, 0);
  MSOPDS_CHECK_GT(dim, 0);
  MSOPDS_CHECK(rng != nullptr);
  Tensor table({count, dim});
  for (int64_t i = 0; i < table.size(); ++i) {
    table.data()[i] = rng->Normal(0.0, stddev);
  }
  return Param(std::move(table));
}

Variable MakeProjection(int64_t rows, int64_t cols, Rng* rng) {
  MSOPDS_CHECK_GT(rows, 0);
  MSOPDS_CHECK_GT(cols, 0);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  Tensor table({rows, cols});
  for (int64_t i = 0; i < table.size(); ++i) {
    table.data()[i] = rng->Uniform(-limit, limit);
  }
  return Param(std::move(table));
}

}  // namespace msopds
