#include "recsys/rating_model.h"

#include "util/logging.h"

namespace msopds {

ServingParams RatingModel::ExportServingParams() {
  MSOPDS_CHECK(false)
      << "this RatingModel does not support serving export; override "
         "ExportServingParams() to publish it through serve/";
  return ServingParams{};
}

}  // namespace msopds
