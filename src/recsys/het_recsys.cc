#include "recsys/het_recsys.h"

#include <cmath>

#include "recsys/embedding.h"
#include "util/logging.h"

namespace msopds {

HetRecSys::HetRecSys(const Dataset& dataset, const HetRecSysConfig& config,
                     Rng* rng)
    : config_(config),
      num_users_(dataset.num_users),
      num_items_(dataset.num_items) {
  MSOPDS_CHECK(rng != nullptr);
  const Status status = dataset.Validate();
  MSOPDS_CHECK(status.ok()) << status.ToString();

  MSOPDS_CHECK_GE(config.num_layers, 1);
  params_.push_back(MakeEmbedding(num_users_, config.embedding_dim,
                                  config.init_stddev, rng));
  params_.push_back(MakeEmbedding(num_items_, config.embedding_dim,
                                  config.init_stddev, rng));
  for (int layer = 0; layer < config.num_layers; ++layer) {
    params_.push_back(
        MakeProjection(2 * config.embedding_dim, config.embedding_dim, rng));
    params_.push_back(
        MakeProjection(2 * config.embedding_dim, config.embedding_dim, rng));
  }

  std::vector<int64_t> dst, src;
  dataset.social.AppendDirectedEdges(&dst, &src);
  social_dst_ = MakeIndex(std::move(dst));
  social_src_ = MakeIndex(std::move(src));

  std::vector<int64_t> idst, isrc;
  dataset.items.AppendDirectedEdges(&idst, &isrc);
  item_dst_ = MakeIndex(std::move(idst));
  item_src_ = MakeIndex(std::move(isrc));
}

Variable HetRecSys::Aggregate(const Variable& features, const IndexVec& dst,
                              const IndexVec& src, int64_t num_nodes) const {
  const int64_t num_edges = static_cast<int64_t>(dst->size());
  if (num_edges == 0) {
    return Constant(
        Tensor::Zeros({num_nodes, features.value().dim(1)}));
  }
  Variable weights;
  if (config_.use_attention) {
    const double inv_sqrt_dim =
        1.0 / std::sqrt(static_cast<double>(config_.embedding_dim));
    Variable scores =
        ScalarMul(EdgeDot(features, features, dst, src), inv_sqrt_dim);
    weights = SegmentSoftmax(scores, dst, num_nodes);
  } else {
    // Degree-normalized mean.
    std::vector<int64_t> degree(static_cast<size_t>(num_nodes), 0);
    for (int64_t e = 0; e < num_edges; ++e)
      ++degree[static_cast<size_t>((*dst)[static_cast<size_t>(e)])];
    Tensor w({num_edges});
    for (int64_t e = 0; e < num_edges; ++e) {
      w.at(e) = 1.0 / static_cast<double>(
                          degree[static_cast<size_t>(
                              (*dst)[static_cast<size_t>(e)])]);
    }
    weights = Constant(std::move(w));
  }
  return SpMM(dst, src, weights, features, num_nodes);
}

HetRecSys::FinalEmbeddings HetRecSys::Forward() const {
  Variable users = params_[0];
  Variable items = params_[1];
  for (int layer = 0; layer < config_.num_layers; ++layer) {
    const Variable& w_user = params_[static_cast<size_t>(2 + 2 * layer)];
    const Variable& w_item = params_[static_cast<size_t>(3 + 2 * layer)];
    Variable user_agg = Aggregate(users, social_dst_, social_src_, num_users_);
    Variable item_agg = Aggregate(items, item_dst_, item_src_, num_items_);
    users = MatMul(ConcatCols(users, user_agg), w_user);
    items = MatMul(ConcatCols(items, item_agg), w_item);
    const bool is_last = layer + 1 == config_.num_layers;
    if (config_.tanh_between_layers && !is_last) {
      // tanh(x) = 2 sigmoid(2x) - 1, composed from recorded ops.
      users = AddScalar(ScalarMul(Sigmoid(ScalarMul(users, 2.0)), 2.0), -1.0);
      items = AddScalar(ScalarMul(Sigmoid(ScalarMul(items, 2.0)), 2.0), -1.0);
    }
  }
  FinalEmbeddings final;
  final.users = users;
  final.items = items;
  return final;
}

Variable HetRecSys::TrainingLoss(const std::vector<Rating>& ratings) {
  MSOPDS_CHECK(!ratings.empty());
  const FinalEmbeddings final = Forward();

  std::vector<int64_t> users, items;
  Tensor targets({static_cast<int64_t>(ratings.size())});
  users.reserve(ratings.size());
  items.reserve(ratings.size());
  for (size_t k = 0; k < ratings.size(); ++k) {
    users.push_back(ratings[k].user);
    items.push_back(ratings[k].item);
    targets.at(static_cast<int64_t>(k)) = ratings[k].value;
  }

  Variable user_rows = GatherRows(final.users, MakeIndex(std::move(users)));
  Variable item_rows = GatherRows(final.items, MakeIndex(std::move(items)));
  Variable predictions =
      AddScalar(PairDot(user_rows, item_rows), config_.prediction_offset);
  Variable errors = Sub(predictions, Constant(std::move(targets)));
  Variable loss = Mean(Square(errors));

  if (config_.l2 > 0.0) {
    Variable reg = SquaredNorm(params_[0]);
    for (size_t i = 1; i < params_.size(); ++i) {
      reg = Add(reg, SquaredNorm(params_[i]));
    }
    loss = Add(loss, ScalarMul(reg, config_.l2));
  }
  return loss;
}

Tensor HetRecSys::PredictPairs(const std::vector<int64_t>& users,
                               const std::vector<int64_t>& items) {
  MSOPDS_CHECK_EQ(users.size(), items.size());
  if (users.empty()) return Tensor::Zeros({0});
  const FinalEmbeddings final = Forward();
  Variable user_rows = GatherRows(final.users, MakeIndex(users));
  Variable item_rows = GatherRows(final.items, MakeIndex(items));
  Variable predictions =
      AddScalar(PairDot(user_rows, item_rows), config_.prediction_offset);
  return predictions.value();
}

ServingParams HetRecSys::ExportServingParams() {
  const FinalEmbeddings final = Forward();
  ServingParams out;
  out.user_factors = final.users.value();
  out.item_factors = final.items.value();
  out.offset = config_.prediction_offset;
  return out;
}

}  // namespace msopds
