#ifndef MSOPDS_RECSYS_METRICS_H_
#define MSOPDS_RECSYS_METRICS_H_

#include <vector>

#include "recsys/rating_model.h"
#include "serve/topk.h"

namespace msopds {

/// Average predicted rating of `target_item` over the target audience
/// (paper metric r-bar, §VI-A6). Predictions are clamped to the valid
/// rating range [1, 5] before averaging.
double AverageTargetRating(RatingModel* model,
                           const std::vector<int64_t>& audience,
                           int64_t target_item);

/// HitRate@k (paper §VI-A6): the fraction of the audience for whom the
/// target item ranks within the top-k positions against the competing
/// items (strictly-greater competitor predictions push the target down;
/// ties favor the target).
double HitRateAtK(RatingModel* model, const std::vector<int64_t>& audience,
                  int64_t target_item, const std::vector<int64_t>& compete,
                  int k = 3);

/// Root-mean-squared error of predictions over held-out ratings (used for
/// recommendation-quality sanity checks, not a paper attack metric).
double Rmse(RatingModel* model, const std::vector<Rating>& ratings);

/// Precision@k of the target item's placement, averaged over the
/// audience: 1/k if the target makes each user's top-k against the
/// competitors, else 0 (a rank-sensitive companion to HitRate@k).
double PrecisionAtK(RatingModel* model, const std::vector<int64_t>& audience,
                    int64_t target_item, const std::vector<int64_t>& compete,
                    int k = 3);

/// NDCG@k of the target item against the competitors, averaged over the
/// audience, with the target as the single relevant item: 1/log2(rank+1)
/// when the target ranks within the top k, else 0.
double NdcgAtK(RatingModel* model, const std::vector<int64_t>& audience,
               int64_t target_item, const std::vector<int64_t>& compete,
               int k = 3);

/// Offline full-catalog top-K recommendation lists for `users`: scores
/// every item of `dataset` with PredictPairs and selects through the
/// shared serve/topk kernel (higher score first, ties broken toward the
/// lower item id, seen items excluded per `options`). This is the
/// reference ranking the online serving engine reproduces bit-identically
/// from a snapshot of the same model (serve/engine.h).
serve::TopKResult TopKItems(RatingModel* model, const Dataset& dataset,
                            const std::vector<int64_t>& users,
                            const serve::TopKOptions& options = {});

}  // namespace msopds

#endif  // MSOPDS_RECSYS_METRICS_H_
