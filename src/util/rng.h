#ifndef MSOPDS_UTIL_RNG_H_
#define MSOPDS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace msopds {

/// Deterministic, seedable pseudo-random generator (xoshiro256++ seeded via
/// SplitMix64). Every stochastic component in the library draws from an Rng
/// passed in explicitly so that experiments are reproducible from one seed.
class Rng {
 public:
  /// Seeds the four-word state from `seed` with SplitMix64 expansion.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output (xoshiro256++).
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller.
  double Normal();

  /// Normal with the given mean and (non-negative) standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Zipf-like rank sample over [0, n): P(k) proportional to (k+1)^-alpha.
  /// Used for power-law degree and popularity distributions.
  int64_t Zipf(int64_t n, double alpha);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Samples k distinct values from [0, n) uniformly (k <= n), in random
  /// order. Uses a partial Fisher–Yates over an index pool.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Samples k distinct elements from `pool` uniformly (k <= pool.size()).
  std::vector<int64_t> SampleFrom(const std::vector<int64_t>& pool, int64_t k);

  /// Splits off an independent generator (for sub-streams) deterministically.
  Rng Split();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_RNG_H_
