#ifndef MSOPDS_UTIL_LOGGING_H_
#define MSOPDS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

// Minimal glog-style logging and CHECK macros.
//
// The library follows the Google C++ style guide and does not use
// exceptions: invariant violations terminate via MSOPDS_CHECK* after
// printing a diagnostic with the failing expression and location.

namespace msopds {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Returns the current minimum severity that is actually printed.
LogSeverity MinLogSeverity();

/// Sets the minimum severity printed by LOG(); kFatal always aborts.
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

// Accumulates one log line and emits it (and aborts for kFatal) in the
// destructor. Instances only live for a single statement.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed message when the severity is below the minimum.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace msopds

#define MSOPDS_LOG(severity)                                          \
  ::msopds::internal::LogMessage(::msopds::LogSeverity::k##severity, \
                                 __FILE__, __LINE__)                  \
      .stream()

#define MSOPDS_CHECK(condition)                                   \
  if (!(condition))                                               \
  MSOPDS_LOG(Fatal) << "Check failed: " #condition " "

#define MSOPDS_CHECK_OP(op, a, b)                                           \
  if (!((a)op(b)))                                                          \
  MSOPDS_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a)       \
                    << " vs " << (b) << ") "

#define MSOPDS_CHECK_EQ(a, b) MSOPDS_CHECK_OP(==, a, b)
#define MSOPDS_CHECK_NE(a, b) MSOPDS_CHECK_OP(!=, a, b)
#define MSOPDS_CHECK_LT(a, b) MSOPDS_CHECK_OP(<, a, b)
#define MSOPDS_CHECK_LE(a, b) MSOPDS_CHECK_OP(<=, a, b)
#define MSOPDS_CHECK_GT(a, b) MSOPDS_CHECK_OP(>, a, b)
#define MSOPDS_CHECK_GE(a, b) MSOPDS_CHECK_OP(>=, a, b)

// Debug-only checks: full MSOPDS_CHECKs in Debug builds, compiled out in
// Release (NDEBUG). Used on kernel hot paths (e.g. TensorSpan indexing)
// where per-element bounds checks are too expensive to ship.
#ifdef NDEBUG
#define MSOPDS_DCHECK(condition) \
  while (false) MSOPDS_CHECK(condition)
#define MSOPDS_DCHECK_OP(op, a, b) \
  while (false) MSOPDS_CHECK_OP(op, a, b)
#else
#define MSOPDS_DCHECK(condition) MSOPDS_CHECK(condition)
#define MSOPDS_DCHECK_OP(op, a, b) MSOPDS_CHECK_OP(op, a, b)
#endif

#define MSOPDS_DCHECK_EQ(a, b) MSOPDS_DCHECK_OP(==, a, b)
#define MSOPDS_DCHECK_LT(a, b) MSOPDS_DCHECK_OP(<, a, b)
#define MSOPDS_DCHECK_LE(a, b) MSOPDS_DCHECK_OP(<=, a, b)
#define MSOPDS_DCHECK_GT(a, b) MSOPDS_DCHECK_OP(>, a, b)
#define MSOPDS_DCHECK_GE(a, b) MSOPDS_DCHECK_OP(>=, a, b)

#endif  // MSOPDS_UTIL_LOGGING_H_
