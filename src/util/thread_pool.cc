#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "util/logging.h"

namespace msopds {
namespace {

// Set while the current thread executes chunk functors; makes nested
// ParallelFor calls run inline (rejection of nested parallelism).
thread_local bool tls_in_parallel_region = false;

}  // namespace

int64_t NumChunks(int64_t total, int64_t grain) {
  MSOPDS_CHECK_GT(grain, 0);
  MSOPDS_CHECK_GE(total, 0);
  if (total == 0) return 0;
  return (total + grain - 1) / grain;
}

// One parallel region. Published to the workers as a shared_ptr so a
// worker that wakes up late can still safely inspect an already-finished
// job.
struct ThreadPool::Job {
  // The region shape is written once, before the job is published to the
  // workers under mu_, and read-only afterwards.
  const std::function<void(int64_t, int64_t, int64_t)>* fn = nullptr;
  int64_t total = 0;       // determinism-lint: unguarded(immutable after publish)
  int64_t grain = 0;       // determinism-lint: unguarded(immutable after publish)
  int64_t num_chunks = 0;  // determinism-lint: unguarded(immutable after publish)

  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> finished_chunks{0};
  std::atomic<bool> cancelled{false};

  // Lowest-indexed exception observed across chunks; rethrown by the
  // caller so a failing chunk behaves like the serial path reaching it.
  Mutex error_mu;
  int64_t error_chunk MSOPDS_GUARDED_BY(error_mu) = -1;
  std::exception_ptr error MSOPDS_GUARDED_BY(error_mu);
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool* const pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("MSOPDS_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return std::min(parsed, kMaxThreads);
    MSOPDS_LOG(Warning) << "ignoring invalid MSOPDS_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : std::min<int>(static_cast<int>(hw), kMaxThreads);
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads_ = std::clamp(num_threads, 1, kMaxThreads);
  StartWorkers();
}

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::SetNumThreads(int num_threads) {
  MSOPDS_CHECK(!InParallelRegion())
      << "SetNumThreads inside a parallel region";
  num_threads = std::clamp(num_threads, 1, kMaxThreads);
  if (num_threads == num_threads_) return;
  StopWorkers();
  num_threads_ = num_threads;
  StartWorkers();
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void ThreadPool::StartWorkers() {
  {
    MutexLock lock(mu_);
    stopping_ = false;
  }
  const int helpers = num_threads_ - 1;  // the caller is worker zero
  workers_.reserve(static_cast<size_t>(std::max(helpers, 0)));
  for (int i = 0; i < helpers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::StopWorkers() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      // Bounded by the pool's lifecycle contract: StopWorkers() sets
      // stopping_ and notifies before joining.
      while (!stopping_ && job_ == nullptr) {
        job_cv_.Wait(lock);  // lint:allow-blocking-wait (lifecycle-bounded)
      }
      if (stopping_) return;
      job = job_;
    }
    RunChunks(job.get());
    {
      MutexLock lock(mu_);
      // Drop the drained job so we block instead of spinning on it.
      if (job_ == job &&
          job->next_chunk.load(std::memory_order_relaxed) >=
              job->num_chunks) {
        job_ = nullptr;
      }
    }
    done_cv_.NotifyAll();
  }
}

// Claims chunks off the shared counter until the grid is drained. Chunk
// *assignment* to threads is dynamic; chunk *content* is fixed by the
// grid, so dynamic scheduling never affects results.
void ThreadPool::RunChunks(Job* job) {
  tls_in_parallel_region = true;
  while (true) {
    const int64_t chunk =
        job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job->num_chunks) break;
    if (!job->cancelled.load(std::memory_order_relaxed)) {
      const int64_t begin = chunk * job->grain;
      const int64_t end = std::min(begin + job->grain, job->total);
      try {
        (*job->fn)(begin, end, chunk);
      } catch (...) {
        job->cancelled.store(true, std::memory_order_relaxed);
        MutexLock lock(job->error_mu);
        if (job->error_chunk < 0 || chunk < job->error_chunk) {
          job->error_chunk = chunk;
          job->error = std::current_exception();
        }
      }
    }
    job->finished_chunks.fetch_add(1, std::memory_order_acq_rel);
  }
  tls_in_parallel_region = false;
}

void ThreadPool::ParallelFor(
    int64_t total, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  const int64_t num_chunks = NumChunks(total, grain);
  if (num_chunks == 0) return;
  // Serial fast path: one chunk, a serial pool, or a nested call. Same
  // grid, same per-chunk code, executed inline in chunk order.
  if (num_chunks == 1 || num_threads_ == 1 || tls_in_parallel_region ||
      workers_.empty()) {
    const bool was_inside = tls_in_parallel_region;
    tls_in_parallel_region = true;
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      const int64_t begin = chunk * grain;
      const int64_t end = std::min(begin + grain, total);
      fn(begin, end, chunk);
    }
    tls_in_parallel_region = was_inside;
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->total = total;
  job->grain = grain;
  job->num_chunks = num_chunks;
  {
    MutexLock lock(mu_);
    MSOPDS_CHECK(job_ == nullptr) << "concurrent top-level ParallelFor";
    job_ = job;
  }
  job_cv_.NotifyAll();

  RunChunks(job.get());  // the calling thread is worker zero

  {
    MutexLock lock(mu_);
    // Bounded by grid progress: every chunk increments finished_chunks,
    // and workers notify after draining the job.
    while (job->finished_chunks.load(std::memory_order_acquire) <
           job->num_chunks) {
      done_cv_.Wait(lock);  // lint:allow-blocking-wait (grid-progress-bounded)
    }
    if (job_ == job) job_ = nullptr;
  }

  std::exception_ptr error;
  {
    MutexLock lock(job->error_mu);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

double ThreadPool::ParallelReduceSum(
    int64_t total, int64_t grain,
    const std::function<double(int64_t, int64_t)>& fn) {
  const int64_t num_chunks = NumChunks(total, grain);
  if (num_chunks == 0) return 0.0;
  if (num_chunks == 1) return fn(0, total);

  std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
  ParallelFor(total, grain,
              [&partial, &fn](int64_t begin, int64_t end, int64_t chunk) {
                partial[static_cast<size_t>(chunk)] = fn(begin, end);
              });
  // Fixed-shape pairwise tree over the chunk grid; an odd tail is carried
  // unchanged (never "+ 0.0", which would lose -0.0).
  while (partial.size() > 1) {
    const size_t half = partial.size() / 2;
    std::vector<double> next;
    next.reserve(half + 1);
    for (size_t i = 0; i < half; ++i) {
      next.push_back(partial[2 * i] + partial[2 * i + 1]);
    }
    if (partial.size() % 2 == 1) next.push_back(partial.back());
    partial = std::move(next);
  }
  return partial[0];
}

double ThreadPool::ParallelReduceMax(
    int64_t total, int64_t grain, double identity,
    const std::function<double(int64_t, int64_t)>& fn) {
  const int64_t num_chunks = NumChunks(total, grain);
  if (num_chunks == 0) return identity;
  if (num_chunks == 1) return fn(0, total);
  std::vector<double> partial(static_cast<size_t>(num_chunks), identity);
  ParallelFor(total, grain,
              [&partial, &fn](int64_t begin, int64_t end, int64_t chunk) {
                partial[static_cast<size_t>(chunk)] = fn(begin, end);
              });
  double best = identity;
  for (double value : partial) best = std::max(best, value);
  return best;
}

}  // namespace msopds
