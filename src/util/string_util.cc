#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace msopds {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t' ||
                         text[begin] == '\r' || text[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* value) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *value = parsed;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  const std::string buffer(StripWhitespace(text));
  if (buffer.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *value = parsed;
  return true;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace msopds
