#ifndef MSOPDS_UTIL_CHECKPOINT_H_
#define MSOPDS_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace msopds {

/// One completed benchmark cell persisted to a checkpoint file. A cell is
/// either a valid metric pair (ok = true) or an explicit recorded failure
/// (ok = false with a human-readable error) — never a silent NaN.
struct CellRecord {
  /// Unique cell identity within one sweep, e.g. "ciao|MSOPDS|b=2".
  std::string key;
  bool ok = true;
  double mean_average_rating = 0.0;
  double mean_hit_rate = 0.0;
  int repeats = 0;
  /// Repeats whose victim training needed the recovery path but still
  /// produced finite metrics (diagnostics; does not fail the cell).
  int unhealthy_repeats = 0;
  /// Kernel thread count the cell ran at. Results are bit-identical at
  /// any thread count (the parallel runtime's determinism contract), but
  /// timings are not, so resumed sweeps refuse to mix thread counts.
  /// Records written before this field existed parse as 1.
  int threads = 1;
  /// Sweep-orchestrator worker that produced the cell (0 = the
  /// single-process driver). Diagnostics only — merged sweeps compare
  /// records modulo this field. Records written before it existed parse
  /// as 0, mirroring the `threads` precedent above.
  int worker_id = 0;
  /// Failure description when !ok.
  std::string error;
  /// 1-based line number this record was loaded from (0 for records that
  /// never round-tripped through a file). Not serialized; populated by
  /// CheckpointStore so resume-refusal diagnostics can point at the
  /// offending row of the offending file.
  int64_t source_line = 0;
};

/// Serializes one record as a single-line JSON object (no newline).
/// source_line is bookkeeping, not schema, and is not written.
std::string CellRecordToJson(const CellRecord& record);

/// Parses a line produced by CellRecordToJson. Understands the writer's
/// "nan"/"inf"/"-inf" string encoding for non-finite metrics. Returns
/// InvalidArgument on malformed input; when `context` is non-empty
/// (e.g. "bench.ckpt:12", the source path and row) it prefixes the error
/// message so the operator can open the offending line directly.
StatusOr<CellRecord> ParseCellRecord(const std::string& line,
                                     const std::string& context = "");

/// Append-only JSONL checkpoint store backing resumable benchmark
/// sweeps. Construction loads any existing records from `path` (missing
/// file = empty store; a torn trailing line from a crash mid-write is
/// dropped with a warning). Append() writes one line and flushes, so a
/// killed process loses at most the cell in flight. Duplicate keys keep
/// the last record.
///
/// An empty path disables persistence: the store works purely in memory,
/// which lets the same driver code run with and without checkpointing.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string path);

  const std::string& path() const { return path_; }
  bool persistent() const { return !path_.empty(); }
  size_t size() const { return records_.size(); }

  /// Record for `key`, or nullptr when the cell has not completed yet.
  const CellRecord* Find(const std::string& key) const;

  /// All records in insertion order (duplicates already collapsed to the
  /// last write). The orchestrator's segment merge iterates this.
  const std::vector<CellRecord>& records() const { return records_; }

  /// Records one completed cell (and persists it when backed by a file).
  void Append(const CellRecord& record);

 private:
  std::string path_;
  std::vector<CellRecord> records_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_CHECKPOINT_H_
