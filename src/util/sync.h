#ifndef MSOPDS_UTIL_SYNC_H_
#define MSOPDS_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Annotated synchronization layer (see DESIGN.md §13).
///
/// This header is the only place in src/ allowed to name std::mutex or
/// std::condition_variable (enforced by tools/determinism_lint). All
/// other code uses the Mutex / MutexLock / CondVar wrappers below, which
/// carry Clang thread-safety attributes so lock discipline is checked at
/// compile time under `-Wthread-safety` (CMake option
/// MSOPDS_THREAD_SAFETY; the attributes compile to nothing on other
/// compilers, so GCC builds are unchanged).
///
/// Annotation conventions:
///   - Every mutex-guarded member is declared with
///     `MSOPDS_GUARDED_BY(mu_)` (enforced by determinism_lint for any
///     class owning a Mutex).
///   - A private helper that asserts "caller holds mu_" declares
///     `MSOPDS_REQUIRES(mu_)`; a public method that takes mu_ itself
///     declares `MSOPDS_EXCLUDES(mu_)` when deadlock with a re-entrant
///     caller is plausible.
///   - Members synchronized by something other than a mutex (atomics,
///     join handshakes, "only mutated while workers are stopped") carry
///     a `// determinism-lint: unguarded(<why>)` marker instead.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MSOPDS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MSOPDS_THREAD_ANNOTATION
#define MSOPDS_THREAD_ANNOTATION(x)
#endif

#define MSOPDS_CAPABILITY(x) MSOPDS_THREAD_ANNOTATION(capability(x))
#define MSOPDS_SCOPED_CAPABILITY MSOPDS_THREAD_ANNOTATION(scoped_lockable)
#define MSOPDS_GUARDED_BY(x) MSOPDS_THREAD_ANNOTATION(guarded_by(x))
#define MSOPDS_PT_GUARDED_BY(x) MSOPDS_THREAD_ANNOTATION(pt_guarded_by(x))
#define MSOPDS_REQUIRES(...) \
  MSOPDS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MSOPDS_EXCLUDES(...) \
  MSOPDS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MSOPDS_ACQUIRE(...) \
  MSOPDS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MSOPDS_RELEASE(...) \
  MSOPDS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MSOPDS_RETURN_CAPABILITY(x) MSOPDS_THREAD_ANNOTATION(lock_returned(x))
#define MSOPDS_NO_THREAD_SAFETY_ANALYSIS \
  MSOPDS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace msopds {

class CondVar;
class MutexLock;

/// std::mutex carrying the Clang `capability` attribute, so
/// MSOPDS_GUARDED_BY(mu_) declarations on members are checkable.
/// Prefer MutexLock over manual Lock()/Unlock().
class MSOPDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MSOPDS_ACQUIRE() { mu_.lock(); }
  void Unlock() MSOPDS_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a Mutex (replaces std::lock_guard /
/// std::unique_lock). Supports the mid-scope Unlock()/Lock() pattern the
/// serving batcher uses to drop the queue mutex while scoring.
class MSOPDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MSOPDS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() MSOPDS_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex; must be balanced by Lock() or be
  /// the last touch before destruction (unique_lock tolerates both).
  void Unlock() MSOPDS_RELEASE() { lock_.unlock(); }
  void Lock() MSOPDS_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable used with MutexLock. The wait methods take the
/// lock object itself so a caller cannot wait on a mutex it does not
/// hold. Predicates are deliberately *not* taken as callables: re-check
/// the condition in a `while` loop around the wait, which keeps every
/// guarded-member read inside the annotated caller where the analysis
/// can see the lock is held (a lambda body is analyzed as a lock-free
/// function and would warn).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Unbounded wait for a notification (spurious wakeups possible).
  /// Callers outside util/ must justify the missing deadline per the
  /// lint gate's blocking-wait rule.
  void Wait(MutexLock& lock) {
    cv_.wait(lock.lock_);  // lint:allow-blocking-wait (bound is the caller's contract)
  }

  /// Waits up to `timeout`; returns false on timeout, true when
  /// notified (or woken spuriously) before it.
  template <class Rep, class Period>
  bool WaitFor(MutexLock& lock, std::chrono::duration<Rep, Period> timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }

  /// Waits until `deadline`; returns false on timeout.
  template <class Clock, class Duration>
  bool WaitUntil(MutexLock& lock,
                 std::chrono::time_point<Clock, Duration> deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_SYNC_H_
