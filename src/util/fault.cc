#include "util/fault.h"

#include <limits>

#include "tensor/tensor.h"
#include "util/logging.h"

namespace msopds {
namespace {

// Mixes the base seed with the site id so each site gets an independent
// stream (golden-ratio odd constant, as in SplitMix64).
uint64_t SiteSeed(uint64_t seed, FaultSite site) {
  return seed ^ (0x9e3779b97f4a7c15ULL *
                 (static_cast<uint64_t>(site) + 1));
}

}  // namespace

FaultInjector::FaultInjector() { Configure(FaultConfig()); }

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Configure(const FaultConfig& config) {
  MutexLock lock(mu_);
  config_ = config;
  streams_.clear();
  for (int site = 0; site < kNumFaultSites; ++site) {
    streams_.push_back(
        Rng(SiteSeed(config.seed, static_cast<FaultSite>(site))));
  }
  injected_.assign(kNumFaultSites, 0);
  crash_fired_ = false;
}

FaultConfig FaultInjector::config() const {
  MutexLock lock(mu_);
  return config_;
}

bool FaultInjector::enabled() const {
  MutexLock lock(mu_);
  return config_.any_enabled();
}

Rng& FaultInjector::stream(FaultSite site) {
  return streams_[static_cast<size_t>(site)];
}

void FaultInjector::RecordInjection(FaultSite site) {
  ++injected_[static_cast<size_t>(site)];
}

bool FaultInjector::MaybeCorruptTrainerGradients(std::vector<Tensor>* grads) {
  MutexLock lock(mu_);
  if (config_.trainer_nan_probability <= 0.0) return false;
  MSOPDS_CHECK(grads != nullptr);
  Rng& rng = stream(FaultSite::kTrainerGradient);
  if (!rng.Bernoulli(config_.trainer_nan_probability)) return false;
  for (Tensor& grad : *grads) {
    if (grad.size() == 0) continue;
    grad.data()[rng.UniformInt(grad.size())] =
        std::numeric_limits<double>::quiet_NaN();
  }
  RecordInjection(FaultSite::kTrainerGradient);
  return true;
}

bool FaultInjector::ShouldCorruptSurrogateStep() {
  MutexLock lock(mu_);
  if (config_.surrogate_nan_probability <= 0.0) return false;
  if (!stream(FaultSite::kSurrogateGradient)
           .Bernoulli(config_.surrogate_nan_probability)) {
    return false;
  }
  RecordInjection(FaultSite::kSurrogateGradient);
  return true;
}

bool FaultInjector::ShouldBreakSolver() {
  MutexLock lock(mu_);
  if (config_.solver_breakdown_probability <= 0.0) return false;
  if (!stream(FaultSite::kSolver)
           .Bernoulli(config_.solver_breakdown_probability)) {
    return false;
  }
  RecordInjection(FaultSite::kSolver);
  return true;
}

bool FaultInjector::ShouldFailPublish() {
  MutexLock lock(mu_);
  if (config_.publish_fail_probability <= 0.0) return false;
  if (!stream(FaultSite::kSnapshotPublish)
           .Bernoulli(config_.publish_fail_probability)) {
    return false;
  }
  RecordInjection(FaultSite::kSnapshotPublish);
  return true;
}

int64_t FaultInjector::MaybeBatchFlushDelayUs() {
  MutexLock lock(mu_);
  if (config_.batch_delay_probability <= 0.0 || config_.batch_delay_us <= 0) {
    return 0;
  }
  if (!stream(FaultSite::kBatchFlush)
           .Bernoulli(config_.batch_delay_probability)) {
    return 0;
  }
  RecordInjection(FaultSite::kBatchFlush);
  return config_.batch_delay_us;
}

bool FaultInjector::ShouldFailScoring() {
  MutexLock lock(mu_);
  if (config_.scoring_error_probability <= 0.0) return false;
  if (!stream(FaultSite::kScoring)
           .Bernoulli(config_.scoring_error_probability)) {
    return false;
  }
  RecordInjection(FaultSite::kScoring);
  return true;
}

bool FaultInjector::ShouldCrashAtCell(int executed_cell_index) {
  MutexLock lock(mu_);
  if (config_.crash_at_cell < 0 || crash_fired_) return false;
  if (executed_cell_index != config_.crash_at_cell) return false;
  crash_fired_ = true;
  RecordInjection(FaultSite::kSweepCell);
  return true;
}

int64_t FaultInjector::injected_count(FaultSite site) const {
  MutexLock lock(mu_);
  return injected_[static_cast<size_t>(site)];
}

int64_t FaultInjector::total_injected() const {
  MutexLock lock(mu_);
  int64_t total = 0;
  for (int64_t count : injected_) total += count;
  return total;
}

ScopedFaultInjection::ScopedFaultInjection(const FaultConfig& config) {
  FaultInjector::Global().Configure(config);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Global().Configure(FaultConfig());
}

}  // namespace msopds
