#ifndef MSOPDS_UTIL_THREAD_POOL_H_
#define MSOPDS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace msopds {

/// Number of chunks in the fixed chunk grid for `total` elements at chunk
/// size `grain`. The grid is a pure function of (total, grain) — never of
/// the thread count — which is the cornerstone of the determinism
/// contract: every kernel partitions its work on this grid, each chunk
/// writes a disjoint output region (or produces one partial combined in
/// fixed chunk order), so results are bit-identical at any thread count.
int64_t NumChunks(int64_t total, int64_t grain);

/// Persistent worker-thread pool behind every parallel kernel.
///
/// Determinism contract (see DESIGN.md "Parallel runtime"):
///   - Work is split on the fixed chunk grid above; threads only decide
///     *which OS thread* executes a chunk, never what a chunk computes.
///   - Reductions combine per-chunk partials with a fixed-shape binary
///     tree over the chunk grid, so `MSOPDS_THREADS=1` and `=N` agree to
///     the last bit.
///   - No atomics touch payload data: scatter kernels bucket their edges
///     by destination chunk up front and each chunk owns its rows.
///
/// Fault behaviour matches the serial path: an MSOPDS_CHECK failure in a
/// worker aborts the process exactly like the serial loop would, and an
/// exception thrown by a chunk functor (test code; the library itself
/// does not throw) is captured, the region is cancelled, and the
/// lowest-indexed captured exception is rethrown on the calling thread.
///
/// Nested parallelism is rejected: a ParallelFor issued from inside a
/// worker (or from inside another region on the calling thread) runs its
/// chunks inline and serially — same grid, same results, no deadlock.
class ThreadPool {
 public:
  /// The process-wide pool used by all tensor kernels. First use reads
  /// MSOPDS_THREADS (>= 1); unset or invalid falls back to the hardware
  /// concurrency.
  static ThreadPool& Global();

  /// Thread count from the environment (MSOPDS_THREADS) or hardware.
  static int DefaultNumThreads();

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Resizes the pool (1 = fully serial). Joins and respawns workers;
  /// must not be called from inside a parallel region. Values are
  /// clamped to [1, kMaxThreads].
  void SetNumThreads(int num_threads);

  /// True while the current thread is executing a chunk functor.
  static bool InParallelRegion();

  /// Runs fn(begin, end, chunk) over every chunk of the fixed grid.
  /// Chunks may run concurrently and in any order; fn must only write
  /// state owned by its chunk.
  void ParallelFor(int64_t total, int64_t grain,
                   const std::function<void(int64_t begin, int64_t end,
                                            int64_t chunk)>& fn);

  /// Deterministic sum reduction: evaluates fn(begin, end) per chunk
  /// (possibly concurrently), then folds the partials with a fixed
  /// binary tree over the chunk grid. Single-chunk grids degenerate to a
  /// plain serial call, so small inputs are bit-identical to pre-pool
  /// code.
  double ParallelReduceSum(int64_t total, int64_t grain,
                           const std::function<double(int64_t begin,
                                                      int64_t end)>& fn);

  /// Like ParallelReduceSum but folds with max (exact for doubles, so
  /// the tree shape is irrelevant; kept on the same grid for symmetry).
  /// Returns `identity` for empty ranges.
  double ParallelReduceMax(int64_t total, int64_t grain, double identity,
                           const std::function<double(int64_t begin,
                                                      int64_t end)>& fn);

  static constexpr int kMaxThreads = 256;

 private:
  struct Job;

  void WorkerLoop() MSOPDS_EXCLUDES(mu_);
  static void RunChunks(Job* job);
  void StartWorkers() MSOPDS_EXCLUDES(mu_);
  void StopWorkers() MSOPDS_EXCLUDES(mu_);

  // Pool shape: only mutated by SetNumThreads() with every worker
  // joined, and read by ParallelFor() callers that are externally
  // serialized against resizing (the pool rejects nested regions).
  int num_threads_ = 1;              // determinism-lint: unguarded(mutated only with workers joined)
  std::vector<std::thread> workers_;  // determinism-lint: unguarded(mutated only with workers joined)

  Mutex mu_;
  CondVar job_cv_;    // workers wait here for a job
  CondVar done_cv_;   // the caller waits here for chunks
  std::shared_ptr<Job> job_ MSOPDS_GUARDED_BY(mu_);  // current region
  bool stopping_ MSOPDS_GUARDED_BY(mu_) = false;
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_THREAD_POOL_H_
