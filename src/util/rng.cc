#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace msopds {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  MSOPDS_CHECK_GT(n, 0);
  // Rejection sampling removes modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t r = Next();
  while (r >= limit) r = Next();
  return static_cast<int64_t>(r % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MSOPDS_CHECK_LE(lo, hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  MSOPDS_CHECK_GE(stddev, 0.0);
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

int64_t Rng::Zipf(int64_t n, double alpha) {
  MSOPDS_CHECK_GT(n, 0);
  if (n == 1) return 0;
  // Inverse-CDF on the (unnormalized) continuous envelope, then clamp.
  // Accurate enough for workload generation; statistical tests cover shape.
  const double u = Uniform();
  if (alpha == 1.0) {
    const double h = std::log(static_cast<double>(n) + 1.0);
    int64_t k = static_cast<int64_t>(std::exp(u * h)) - 1;
    return std::min<int64_t>(std::max<int64_t>(k, 0), n - 1);
  }
  const double one_minus = 1.0 - alpha;
  const double total = (std::pow(static_cast<double>(n) + 1.0, one_minus) - 1.0);
  const double x = std::pow(1.0 + u * total, 1.0 / one_minus) - 1.0;
  int64_t k = static_cast<int64_t>(x);
  return std::min<int64_t>(std::max<int64_t>(k, 0), n - 1);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  MSOPDS_CHECK_GE(n, 0);
  MSOPDS_CHECK_GE(k, 0);
  MSOPDS_CHECK_LE(k, n);
  std::vector<int64_t> pool(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  return SampleFrom(pool, k);
}

std::vector<int64_t> Rng::SampleFrom(const std::vector<int64_t>& pool,
                                     int64_t k) {
  MSOPDS_CHECK_LE(k, static_cast<int64_t>(pool.size()));
  std::vector<int64_t> scratch = pool;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  const int64_t n = static_cast<int64_t>(scratch.size());
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = UniformInt(i, n - 1);
    std::swap(scratch[static_cast<size_t>(i)], scratch[static_cast<size_t>(j)]);
    out.push_back(scratch[static_cast<size_t>(i)]);
  }
  return out;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace msopds
