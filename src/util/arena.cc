#include "util/arena.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MSOPDS_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define MSOPDS_ARENA_ASAN 1
#endif

#ifdef MSOPDS_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace msopds {
namespace {

// Freed blocks are scribbled in Debug and sanitizer builds; Release
// builds skip the memset (recycling is a hot path there).
#if !defined(NDEBUG) || defined(MSOPDS_ARENA_ASAN)
constexpr bool kPoisonFreedBlocks = true;
#else
constexpr bool kPoisonFreedBlocks = false;
#endif

// Quiet-NaN bit pattern: a stale read of a recycled buffer propagates
// NaNs instead of silently reusing old values.
constexpr uint64_t kPoisonPattern = 0x7FF8DEADBEEFDEADull;

// log2 of the size class serving `capacity` doubles (capacity must be a
// power of two within the pooled range).
int ClassIndex(int64_t capacity) {
  int index = 0;
  while ((int64_t{1} << index) < capacity) ++index;
  return index;
}

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("MSOPDS_ARENA");
    if (env == nullptr) return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
  }();
  return enabled;
}

void FillPoison(double* block, int64_t capacity) {
  if (!kPoisonFreedBlocks) return;
  uint64_t* words = reinterpret_cast<uint64_t*>(block);
  for (int64_t i = 0; i < capacity; ++i) words[i] = kPoisonPattern;
}

void PoisonRange(double* block, int64_t capacity) {
#ifdef MSOPDS_ARENA_ASAN
  __asan_poison_memory_region(block, static_cast<size_t>(capacity) * 8);
#else
  (void)block;
  (void)capacity;
#endif
}

void UnpoisonRange(double* block, int64_t capacity) {
#ifdef MSOPDS_ARENA_ASAN
  __asan_unpoison_memory_region(block, static_cast<size_t>(capacity) * 8);
#else
  (void)block;
  (void)capacity;
#endif
}

}  // namespace

Arena& Arena::Global() {
  static Arena* arena = new Arena();
  return *arena;
}

Arena::~Arena() { Trim(); }

int64_t Arena::SizeClassCapacity(int64_t num_doubles) {
  int64_t capacity = kMinClassDoubles;
  while (capacity < num_doubles) capacity <<= 1;
  return capacity;
}

uint64_t Arena::PoisonPattern() { return kPoisonPattern; }

double* Arena::Allocate(int64_t num_doubles) {
  MSOPDS_CHECK_GE(num_doubles, 0);
  if (num_doubles == 0) return nullptr;
  const int64_t capacity = SizeClassCapacity(num_doubles);
  const int64_t payload_bytes = num_doubles * 8;

  MutexLock lock(mutex_);
  ++stats_.alloc_calls;
  stats_.bytes_live += payload_bytes;
  stats_.high_water_bytes = std::max(stats_.high_water_bytes,
                                     stats_.bytes_live);
  const bool pooled = (enabled_override_ == -1 ? EnvEnabled()
                                               : enabled_override_ != 0) &&
                      capacity <= kMaxClassDoubles;
  if (pooled) {
    std::vector<double*>& list = free_lists_[ClassIndex(capacity)];
    if (!list.empty()) {
      double* block = list.back();
      list.pop_back();
      stats_.bytes_cached -= capacity * 8;
      ++stats_.pool_hits;
      UnpoisonRange(block, capacity);
      return block;
    }
  }
  return new double[static_cast<size_t>(capacity)];
}

void Arena::Deallocate(double* block, int64_t num_doubles) {
  if (block == nullptr || num_doubles == 0) return;
  const int64_t capacity = SizeClassCapacity(num_doubles);

  MutexLock lock(mutex_);
  stats_.bytes_live -= num_doubles * 8;
  const bool pooled = (enabled_override_ == -1 ? EnvEnabled()
                                               : enabled_override_ != 0) &&
                      capacity <= kMaxClassDoubles;
  if (!pooled) {
    delete[] block;
    return;
  }
  FillPoison(block, capacity);
  PoisonRange(block, capacity);
  free_lists_[ClassIndex(capacity)].push_back(block);
  stats_.bytes_cached += capacity * 8;
}

void Arena::Trim() {
  MutexLock lock(mutex_);
  bool freed_any = false;
  for (int c = 0; c < kNumClasses; ++c) {
    for (double* block : free_lists_[c]) {
      UnpoisonRange(block, int64_t{1} << c);
      delete[] block;
      freed_any = true;
    }
    free_lists_[c].clear();
    free_lists_[c].shrink_to_fit();
  }
  stats_.bytes_cached = 0;
  if (freed_any) ++stats_.trims;
}

ArenaStats Arena::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void Arena::ResetStats() {
  MutexLock lock(mutex_);
  const int64_t live = stats_.bytes_live;
  const int64_t cached = stats_.bytes_cached;
  stats_ = ArenaStats{};
  stats_.bytes_live = live;
  stats_.bytes_cached = cached;
  stats_.high_water_bytes = live;
}

void Arena::ResetPeak() {
  MutexLock lock(mutex_);
  stats_.high_water_bytes = stats_.bytes_live;
}

bool Arena::enabled() const {
  MutexLock lock(mutex_);
  return enabled_override_ == -1 ? EnvEnabled() : enabled_override_ != 0;
}

bool Arena::SetEnabled(bool enabled) {
  MutexLock lock(mutex_);
  const bool previous =
      enabled_override_ == -1 ? EnvEnabled() : enabled_override_ != 0;
  enabled_override_ = enabled ? 1 : 0;
  return previous;
}

namespace {
thread_local int g_region_depth = 0;
}  // namespace

ArenaRegion::ArenaRegion() { ++g_region_depth; }

ArenaRegion::~ArenaRegion() {
  if (--g_region_depth == 0) Arena::Global().Trim();
}

}  // namespace msopds
