#ifndef MSOPDS_UTIL_STATUS_H_
#define MSOPDS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace msopds {

/// Error codes for recoverable failures (mostly I/O and user input).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
};

/// A lightweight absl::Status-alike. Library code returns Status for
/// recoverable conditions and uses MSOPDS_CHECK for programming errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: bad rating".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value or an error Status. value() CHECK-fails on error.
/// The value lives in a std::optional, so T does not need to be
/// default-constructible (error StatusOrs simply hold no value).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value/status mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    MSOPDS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MSOPDS_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    MSOPDS_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MSOPDS_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace msopds

/// Early-returns the evaluated Status when it is not OK. For use in
/// functions returning Status (e.g. the op shape-inference registry).
#define MSOPDS_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::msopds::Status status_macro_internal_ = (expr);  \
    if (!status_macro_internal_.ok())                  \
      return status_macro_internal_;                   \
  } while (false)

#endif  // MSOPDS_UTIL_STATUS_H_
