#ifndef MSOPDS_UTIL_HEALTH_H_
#define MSOPDS_UTIL_HEALTH_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace msopds {

class Tensor;

/// Numerical health verdict used by the resilience runtime. Components
/// that consume a verdict treat anything but kHealthy as a failed step.
enum class Health {
  kHealthy = 0,
  /// A NaN or infinity was observed in a loss or gradient.
  kNonFinite = 1,
  /// The loss blew up relative to the recent window (training unstable).
  kDiverged = 2,
};

/// Human-readable verdict name ("healthy", "non-finite", "diverged").
std::string HealthToString(Health health);

/// True iff every element of `t` is finite (no NaN / +-inf).
bool AllFinite(const Tensor& t);

/// True iff every tensor in `ts` is entirely finite.
bool AllFinite(const std::vector<Tensor>& ts);

/// Number of non-finite elements in `t` (diagnostics).
int64_t CountNonFinite(const Tensor& t);

/// Configuration of the loss-divergence detector.
struct DivergenceOptions {
  /// Number of most recent losses the detector compares against. The
  /// detector never fires before it has seen `window` losses.
  int window = 5;
  /// A loss is divergent when it exceeds `factor` times the best (lowest)
  /// loss in the window plus `slack` (the slack keeps near-zero losses
  /// from tripping the ratio test on harmless noise).
  double factor = 100.0;
  double slack = 1e-3;
};

/// Streaming loss-divergence detector with a configurable window.
///
/// Feed every epoch/step loss through Observe(); it returns kNonFinite on
/// NaN/inf, kDiverged when the loss exceeds the windowed threshold, and
/// kHealthy otherwise. Unhealthy observations are NOT added to the
/// window, so a caller that retries the step resumes from a clean state.
class DivergenceDetector {
 public:
  explicit DivergenceDetector(const DivergenceOptions& options = {});

  /// Observes one loss value and classifies it.
  Health Observe(double loss);

  /// Forgets all history (e.g. after a learning-rate reset).
  void Reset();

  /// Total unhealthy observations since construction (diagnostics).
  int64_t unhealthy_count() const { return unhealthy_count_; }

 private:
  DivergenceOptions options_;
  std::deque<double> window_;
  int64_t unhealthy_count_ = 0;
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_HEALTH_H_
