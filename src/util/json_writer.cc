#include "util/json_writer.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/string_util.h"

namespace msopds {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  const Context context = stack_.back();
  if (context == Context::kObject) {
    MSOPDS_CHECK(pending_key_) << "object values need a Key() first";
    pending_key_ = false;
    return;
  }
  if (context == Context::kArray) {
    if (needs_comma_.back()) Append(",");
    needs_comma_.back() = true;
    return;
  }
  MSOPDS_CHECK(!top_value_written_) << "only one top-level JSON value";
  top_value_written_ = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  Append("{");
  stack_.push_back(Context::kObject);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  MSOPDS_CHECK(stack_.back() == Context::kObject) << "unbalanced EndObject";
  MSOPDS_CHECK(!pending_key_) << "dangling Key() before EndObject";
  stack_.pop_back();
  needs_comma_.pop_back();
  Append("}");
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  Append("[");
  stack_.push_back(Context::kArray);
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  MSOPDS_CHECK(stack_.back() == Context::kArray) << "unbalanced EndArray";
  stack_.pop_back();
  needs_comma_.pop_back();
  Append("]");
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  MSOPDS_CHECK(stack_.back() == Context::kObject) << "Key() outside object";
  MSOPDS_CHECK(!pending_key_) << "two keys in a row";
  if (needs_comma_.back()) Append(",");
  needs_comma_.back() = true;
  Append("\"" + JsonEscape(name) + "\":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  Append("\"" + JsonEscape(value) + "\"");
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  Append(StrFormat("%lld", static_cast<long long>(value)));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (std::isnan(value)) {
    // JSON has no NaN/Inf literals. Checkpoint readers must be able to
    // tell "metric was NaN" (a recorded failure) from "metric missing"
    // (null), so non-finite doubles round-trip as explicit strings.
    Append("\"nan\"");
  } else if (std::isinf(value)) {
    Append(value > 0 ? "\"inf\"" : "\"-inf\"");
  } else {
    Append(StrFormat("%.10g", value));
  }
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  Append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  Append("null");
  return *this;
}

bool ParseJsonDouble(const std::string& token, double* value) {
  MSOPDS_CHECK(value != nullptr);
  if (token == "\"nan\"") {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (token == "\"inf\"") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "\"-inf\"") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  return ParseDouble(token, value);
}

std::string JsonWriter::TakeString() {
  MSOPDS_CHECK_EQ(stack_.size(), 1u) << "unclosed JSON containers";
  MSOPDS_CHECK(!pending_key_);
  std::string out = std::move(out_);
  out_.clear();
  stack_ = {Context::kTop};
  needs_comma_ = {false};
  pending_key_ = false;
  top_value_written_ = false;
  return out;
}

}  // namespace msopds
