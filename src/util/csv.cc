#include "util/csv.h"

#include <fstream>

#include "util/string_util.h"

namespace msopds {

StatusOr<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delimiter) {
  auto with_lines = ReadDelimitedWithLines(path, delimiter);
  if (!with_lines.ok()) return with_lines.status();
  std::vector<std::vector<std::string>> rows;
  rows.reserve(with_lines.value().size());
  for (auto& row : with_lines.value()) {
    rows.push_back(std::move(row.fields));
  }
  return rows;
}

StatusOr<std::vector<DelimitedRow>> ReadDelimitedWithLines(
    const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  std::vector<DelimitedRow> rows;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    rows.push_back({StrSplit(stripped, delimiter), line_number});
  }
  return rows;
}

Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      MSOPDS_CHECK(row[i].find(delimiter) == std::string::npos &&
                   row[i].find('\n') == std::string::npos)
          << "field contains delimiter or newline: " << row[i];
      if (i > 0) out << delimiter;
      out << row[i];
    }
    out << '\n';
  }
  return Status::Ok();
}

}  // namespace msopds
