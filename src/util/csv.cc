#include "util/csv.h"

#include <fstream>

#include "util/string_util.h"

namespace msopds {

StatusOr<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    rows.push_back(StrSplit(stripped, delimiter));
  }
  return rows;
}

Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      MSOPDS_CHECK(row[i].find(delimiter) == std::string::npos &&
                   row[i].find('\n') == std::string::npos)
          << "field contains delimiter or newline: " << row[i];
      if (i > 0) out << delimiter;
      out << row[i];
    }
    out << '\n';
  }
  return Status::Ok();
}

}  // namespace msopds
