#include "util/csv.h"

#include <fstream>

#include "util/string_util.h"

namespace msopds {

StatusOr<std::vector<std::vector<std::string>>> ReadDelimited(
    const std::string& path, char delimiter) {
  auto with_lines = ReadDelimitedWithLines(path, delimiter);
  if (!with_lines.ok()) return with_lines.status();
  std::vector<std::vector<std::string>> rows;
  rows.reserve(with_lines.value().size());
  for (auto& row : with_lines.value()) {
    rows.push_back(std::move(row.fields));
  }
  return rows;
}

StatusOr<std::vector<DelimitedRow>> ReadDelimitedWithLines(
    const std::string& path, char delimiter) {
  std::vector<DelimitedRow> rows;
  const Status status = ForEachDelimitedRow(
      path, delimiter, [&rows](const DelimitedRow& row, int64_t) {
        rows.push_back(row);
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return rows;
}

Status ForEachDelimitedRow(
    const std::string& path, char delimiter,
    const std::function<Status(const DelimitedRow& row, int64_t byte_offset)>&
        fn) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  DelimitedRow row;
  std::string line;
  int64_t offset = 0;
  while (std::getline(in, line)) {
    const int64_t line_offset = offset;
    // +1 for the newline getline consumed; if the final line has no
    // trailing newline there is no subsequent callback to observe it.
    offset += static_cast<int64_t>(line.size()) + 1;
    ++row.line;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    row.fields = StrSplit(stripped, delimiter);
    const Status status = fn(row, line_offset);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status WriteDelimited(const std::string& path,
                      const std::vector<std::vector<std::string>>& rows,
                      char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      MSOPDS_CHECK(row[i].find(delimiter) == std::string::npos &&
                   row[i].find('\n') == std::string::npos)
          << "field contains delimiter or newline: " << row[i];
      if (i > 0) out << delimiter;
      out << row[i];
    }
    out << '\n';
  }
  return Status::Ok();
}

}  // namespace msopds
