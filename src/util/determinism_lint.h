#ifndef MSOPDS_UTIL_DETERMINISM_LINT_H_
#define MSOPDS_UTIL_DETERMINISM_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msopds {

/// One determinism/concurrency violation found by the linter.
struct LintFinding {
  /// Path relative to the scanned root (e.g. "serve/engine.cc").
  std::string file;
  /// 1-based line number of the offending line.
  int64_t line = 0;
  /// Rule id: "raw-sync", "ambient-rng", "unordered-iteration",
  /// "raw-simd", or "unguarded-member".
  std::string rule;
  std::string message;
};

/// Result of one linter run over a source tree.
struct LintReport {
  int64_t files_scanned = 0;
  /// Rule applications (files_scanned x number of rules): the "pass
  /// count" exported into bench JSON is checks_run - findings.
  int64_t checks_run = 0;
  std::vector<LintFinding> findings;

  bool ok() const { return findings.empty(); }
};

/// Number of rules applied per file.
constexpr int64_t kNumLintRules = 5;

/// Scans every `.h`/`.cc` under `src_root` (recursively, in sorted path
/// order) for compile-time-detectable nondeterminism (see DESIGN.md
/// §13). The rules are line-based heuristics over comment- and
/// string-stripped source:
///
///   raw-sync            std::mutex / std::condition_variable /
///                       std::lock_guard / std::unique_lock /
///                       std::scoped_lock (or their includes) anywhere
///                       but util/sync.h — all sync goes through the
///                       annotated wrappers.
///   ambient-rng         std::rand / srand / std::random_device /
///                       time(...) outside util/rng — all randomness is
///                       seed-driven through util/rng streams.
///   unordered-iteration range-for over a variable declared in the same
///                       file as unordered_map/unordered_set — hash
///                       iteration order feeding output or accumulation
///                       order breaks cross-toolchain determinism.
///                       Suppress a proven-commutative loop with a
///                       `// determinism-lint: order-insensitive`
///                       comment on the loop header or the line above.
///   raw-simd            vendor SIMD intrinsics, vector register types,
///                       or their includes (the immintrin/arm_neon
///                       headers and their intrinsic families) anywhere
///                       but tensor/simd.h — hand vectorization outside
///                       the dispatch header can change reduction
///                       associativity and break the scalar/SIMD
///                       bit-exactness contract (DESIGN.md §14).
///                       Suppress with `// lint:allow-simd` (or the
///                       generic allow marker below).
///   unguarded-member    a member of a class that owns a Mutex, with no
///                       MSOPDS_GUARDED_BY token. Members synchronized
///                       by other means carry
///                       `// determinism-lint: unguarded(<why>)`.
///                       (Atomics, const, Mutex/CondVar, std::thread,
///                       and static members are exempt.)
///
/// A rule can also be suppressed line-by-line with
/// `// determinism-lint: allow(<rule>)`.
LintReport RunDeterminismLint(const std::string& src_root);

/// Renders findings one per line ("file:line: [rule] message") plus a
/// summary line; used by the CLI and tests.
std::string FormatLintReport(const LintReport& report);

}  // namespace msopds

#endif  // MSOPDS_UTIL_DETERMINISM_LINT_H_
