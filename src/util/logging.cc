#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace msopds {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace msopds
