#include "util/health.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor.h"
#include "util/logging.h"

namespace msopds {

std::string HealthToString(Health health) {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kNonFinite:
      return "non-finite";
    case Health::kDiverged:
      return "diverged";
  }
  return "unknown";
}

bool AllFinite(const Tensor& t) {
  const double* data = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

bool AllFinite(const std::vector<Tensor>& ts) {
  for (const Tensor& t : ts) {
    if (!AllFinite(t)) return false;
  }
  return true;
}

int64_t CountNonFinite(const Tensor& t) {
  int64_t count = 0;
  const double* data = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    if (!std::isfinite(data[i])) ++count;
  }
  return count;
}

DivergenceDetector::DivergenceDetector(const DivergenceOptions& options)
    : options_(options) {
  MSOPDS_CHECK_GT(options.window, 0);
  MSOPDS_CHECK_GT(options.factor, 1.0);
}

Health DivergenceDetector::Observe(double loss) {
  if (!std::isfinite(loss)) {
    ++unhealthy_count_;
    return Health::kNonFinite;
  }
  if (static_cast<int>(window_.size()) >= options_.window) {
    const double best = *std::min_element(window_.begin(), window_.end());
    if (loss > options_.factor * std::fabs(best) + options_.slack) {
      ++unhealthy_count_;
      return Health::kDiverged;
    }
  }
  window_.push_back(loss);
  while (static_cast<int>(window_.size()) > options_.window) {
    window_.pop_front();
  }
  return Health::kHealthy;
}

void DivergenceDetector::Reset() { window_.clear(); }

}  // namespace msopds
