#ifndef MSOPDS_UTIL_FAULT_H_
#define MSOPDS_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/sync.h"

namespace msopds {

class Tensor;

/// Where a fault can be injected. Each site draws from its own
/// deterministic RNG stream so adding probes at one site never perturbs
/// the injection pattern of another.
enum class FaultSite {
  /// Victim-trainer gradient step (TrainModel).
  kTrainerGradient = 0,
  /// PDS surrogate recorded inner-loop gradient step (TrainUnrolled).
  kSurrogateGradient = 1,
  /// Conjugate-gradient solve (simulated operator breakdown).
  kSolver = 2,
  /// Benchmark sweep cell boundary (simulated harness crash).
  kSweepCell = 3,
  /// ServingEngine::Publish (simulated snapshot publish failure; the
  /// engine keeps the previous snapshot live).
  kSnapshotPublish = 4,
  /// Serving micro-batch flush (injected latency spike between pickup
  /// and scoring, so queued requests blow their deadlines).
  kBatchFlush = 5,
  /// Serving batch scoring (simulated worker exception; the engine
  /// degrades the batch to the popularity fallback).
  kScoring = 6,
};

constexpr int kNumFaultSites = 7;

/// Deterministic, seed-driven fault plan. All probabilities default to
/// zero, so a default-constructed config injects nothing.
struct FaultConfig {
  /// Base seed of the per-site injection streams.
  uint64_t seed = 0;
  /// Probability that one trainer gradient step gets a NaN injected.
  double trainer_nan_probability = 0.0;
  /// Probability that one surrogate inner-loop step gets a NaN injected.
  double surrogate_nan_probability = 0.0;
  /// Probability that one CG solve sees a simulated operator breakdown
  /// (the operator output is replaced by NaNs).
  double solver_breakdown_probability = 0.0;
  /// Simulated harness crash: the sweep driver exits before completing
  /// its `crash_at_cell`-th executed (non-resumed) cell. -1 disables.
  int crash_at_cell = -1;
  /// Probability that one ServingEngine::Publish fails (rolled back: the
  /// previous snapshot stays live and Publish returns false).
  double publish_fail_probability = 0.0;
  /// Probability that one micro-batch flush gets `batch_delay_us` of
  /// injected latency between pickup and scoring.
  double batch_delay_probability = 0.0;
  int64_t batch_delay_us = 0;
  /// Probability that one batch's scoring pass throws a simulated worker
  /// exception (the engine serves the batch degraded instead).
  double scoring_error_probability = 0.0;

  bool any_enabled() const {
    return trainer_nan_probability > 0.0 || surrogate_nan_probability > 0.0 ||
           solver_breakdown_probability > 0.0 || crash_at_cell >= 0 ||
           publish_fail_probability > 0.0 || batch_delay_probability > 0.0 ||
           scoring_error_probability > 0.0;
  }
};

/// Process-wide deterministic fault injector (the chaos layer of the
/// resilience runtime). Production code consults the hook points below;
/// with the default (disabled) config every hook is a cheap no-op that
/// never perturbs numerics, so fault-free runs are bit-identical to a
/// build without the injector.
///
/// Determinism: each FaultSite owns an independent Rng seeded from
/// (config.seed, site), advanced once per query, so the injection
/// pattern is a pure function of the config and the query order at that
/// site.
///
/// Thread-safety: hook queries and Configure are serialized by an
/// internal mutex, so a ThreadPool worker that consults a hook is safe.
/// Determinism still requires a fixed query *order*, which holds because
/// every hook point sits outside the pool's chunk functors (trainer
/// steps, CG solves, sweep cells, serving publishes and per-batch serve
/// hooks — all issued from the calling thread, never inside a chunk);
/// a fault observed inside a parallel region propagates to the caller
/// exactly like the serial path (see util/thread_pool.h). The serve
/// sites are queried by the engine's single batcher (and publisher)
/// thread in batch order, so a sequentially driven engine replays one
/// fault trace bit-for-bit at any kernel thread count.
class FaultInjector {
 public:
  /// The process-wide injector consulted by library hook points.
  static FaultInjector& Global();

  /// Installs a new plan and resets all per-site streams and counters.
  void Configure(const FaultConfig& config);

  /// Snapshot of the installed plan. Returns by value under the mutex:
  /// a reference would let the caller read config_ while a concurrent
  /// Configure() rewrites it (latent race surfaced by the thread-safety
  /// annotations; see fault_test.ConfigSnapshotIsRaceFree).
  FaultConfig config() const MSOPDS_EXCLUDES(mu_);
  bool enabled() const MSOPDS_EXCLUDES(mu_);

  /// Trainer hook: corrupts `grads` with probability
  /// trainer_nan_probability (one NaN into one deterministic element of
  /// each tensor). Returns true when a fault was injected.
  bool MaybeCorruptTrainerGradients(std::vector<Tensor>* grads);

  /// Surrogate hook: should this recorded inner-loop step be poisoned?
  /// (The surrogate injects the NaN through its own graph so that the
  /// corruption propagates exactly like a real numerical failure.)
  bool ShouldCorruptSurrogateStep();

  /// Solver hook: should this CG solve see a simulated breakdown?
  bool ShouldBreakSolver();

  /// Sweep hook: should the driver simulate a crash before executing the
  /// cell with this 0-based executed-cell index? Fires at most once per
  /// process so a resumed run can get past the crash point.
  bool ShouldCrashAtCell(int executed_cell_index);

  /// Serving hook: should this snapshot publish fail? The engine keeps
  /// the previous snapshot live (rollback) when it fires.
  bool ShouldFailPublish();

  /// Serving hook: injected latency (microseconds) for this micro-batch
  /// flush; 0 = no spike. Queried once per batch by the batcher thread,
  /// so the spike pattern is a pure function of the batch sequence.
  int64_t MaybeBatchFlushDelayUs();

  /// Serving hook: should this batch's scoring pass throw a simulated
  /// worker exception?
  bool ShouldFailScoring();

  /// Count of faults injected per site since the last Configure().
  int64_t injected_count(FaultSite site) const;
  /// Total faults injected since the last Configure().
  int64_t total_injected() const;

 private:
  FaultInjector();

  Rng& stream(FaultSite site) MSOPDS_REQUIRES(mu_);
  void RecordInjection(FaultSite site) MSOPDS_REQUIRES(mu_);

  mutable Mutex mu_;
  FaultConfig config_ MSOPDS_GUARDED_BY(mu_);
  std::vector<Rng> streams_ MSOPDS_GUARDED_BY(mu_);
  std::vector<int64_t> injected_ MSOPDS_GUARDED_BY(mu_);
  bool crash_fired_ MSOPDS_GUARDED_BY(mu_) = false;
};

/// RAII installer for tests and drivers: installs `config` on
/// construction and restores a fully-disabled injector on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_FAULT_H_
