#ifndef MSOPDS_UTIL_FAULT_H_
#define MSOPDS_UTIL_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"

namespace msopds {

class Tensor;

/// Where a fault can be injected. Each site draws from its own
/// deterministic RNG stream so adding probes at one site never perturbs
/// the injection pattern of another.
enum class FaultSite {
  /// Victim-trainer gradient step (TrainModel).
  kTrainerGradient = 0,
  /// PDS surrogate recorded inner-loop gradient step (TrainUnrolled).
  kSurrogateGradient = 1,
  /// Conjugate-gradient solve (simulated operator breakdown).
  kSolver = 2,
  /// Benchmark sweep cell boundary (simulated harness crash).
  kSweepCell = 3,
};

constexpr int kNumFaultSites = 4;

/// Deterministic, seed-driven fault plan. All probabilities default to
/// zero, so a default-constructed config injects nothing.
struct FaultConfig {
  /// Base seed of the per-site injection streams.
  uint64_t seed = 0;
  /// Probability that one trainer gradient step gets a NaN injected.
  double trainer_nan_probability = 0.0;
  /// Probability that one surrogate inner-loop step gets a NaN injected.
  double surrogate_nan_probability = 0.0;
  /// Probability that one CG solve sees a simulated operator breakdown
  /// (the operator output is replaced by NaNs).
  double solver_breakdown_probability = 0.0;
  /// Simulated harness crash: the sweep driver exits before completing
  /// its `crash_at_cell`-th executed (non-resumed) cell. -1 disables.
  int crash_at_cell = -1;

  bool any_enabled() const {
    return trainer_nan_probability > 0.0 || surrogate_nan_probability > 0.0 ||
           solver_breakdown_probability > 0.0 || crash_at_cell >= 0;
  }
};

/// Process-wide deterministic fault injector (the chaos layer of the
/// resilience runtime). Production code consults the hook points below;
/// with the default (disabled) config every hook is a cheap no-op that
/// never perturbs numerics, so fault-free runs are bit-identical to a
/// build without the injector.
///
/// Determinism: each FaultSite owns an independent Rng seeded from
/// (config.seed, site), advanced once per query, so the injection
/// pattern is a pure function of the config and the query order at that
/// site.
///
/// Thread-safety: hook queries and Configure are serialized by an
/// internal mutex, so a ThreadPool worker that consults a hook is safe.
/// Determinism still requires a fixed query *order*, which holds because
/// every hook point sits outside the pool's chunk functors (trainer
/// steps, CG solves, sweep cells — all issued from the calling thread);
/// a fault observed inside a parallel region propagates to the caller
/// exactly like the serial path (see util/thread_pool.h).
class FaultInjector {
 public:
  /// The process-wide injector consulted by library hook points.
  static FaultInjector& Global();

  /// Installs a new plan and resets all per-site streams and counters.
  void Configure(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.any_enabled(); }

  /// Trainer hook: corrupts `grads` with probability
  /// trainer_nan_probability (one NaN into one deterministic element of
  /// each tensor). Returns true when a fault was injected.
  bool MaybeCorruptTrainerGradients(std::vector<Tensor>* grads);

  /// Surrogate hook: should this recorded inner-loop step be poisoned?
  /// (The surrogate injects the NaN through its own graph so that the
  /// corruption propagates exactly like a real numerical failure.)
  bool ShouldCorruptSurrogateStep();

  /// Solver hook: should this CG solve see a simulated breakdown?
  bool ShouldBreakSolver();

  /// Sweep hook: should the driver simulate a crash before executing the
  /// cell with this 0-based executed-cell index? Fires at most once per
  /// process so a resumed run can get past the crash point.
  bool ShouldCrashAtCell(int executed_cell_index);

  /// Count of faults injected per site since the last Configure().
  int64_t injected_count(FaultSite site) const;
  /// Total faults injected since the last Configure().
  int64_t total_injected() const;

 private:
  FaultInjector();

  Rng& stream(FaultSite site);
  void RecordInjection(FaultSite site);

  mutable std::mutex mu_;
  FaultConfig config_;
  std::vector<Rng> streams_;
  std::vector<int64_t> injected_;
  bool crash_fired_ = false;
};

/// RAII installer for tests and drivers: installs `config` on
/// construction and restores a fully-disabled injector on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace msopds

#endif  // MSOPDS_UTIL_FAULT_H_
